package qsrmine_test

import (
	"strings"
	"testing"

	qsrmine "repro"
	"repro/internal/datagen"
	"repro/internal/transact"
)

// TestCityScaleIntegration drives the full production path on a
// city-sized synthetic scene: 400 districts, five feature layers,
// parallel R-tree-accelerated extraction, KC+ mining, and rule
// generation. It asserts the semantic guarantees end to end.
func TestCityScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale integration skipped in -short mode")
	}
	cfg := datagen.DefaultScene(20, 20, 2026)
	cfg.IrregularPolygons = true
	scene, err := datagen.GenerateScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := scene.Validate(); err != nil {
		t.Fatalf("scene invalid: %v", err)
	}

	opts := qsrmine.DefaultExtractOptions()
	opts.Parallelism = 0 // all cores
	out, err := qsrmine.Run(scene, qsrmine.Config{
		Extraction:    opts,
		Algorithm:     qsrmine.AprioriKCPlus,
		MinSupport:    0.05,
		GenerateRules: true,
		MinConfidence: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Len() != 400 {
		t.Fatalf("transactions = %d, want 400", out.Table.Len())
	}
	if out.Result.NumFrequent(2) == 0 || len(out.Rules) == 0 {
		t.Fatal("no patterns or rules at city scale")
	}

	// Semantic guarantee 1: no same-feature itemset anywhere.
	for _, f := range out.Result.Frequent {
		if f.Items.HasSameFeaturePair(out.DB.Dict) {
			t.Errorf("same-feature itemset leaked: %s", f.Items.Format(out.DB.Dict))
		}
	}
	// Semantic guarantee 2: every emitted item parses back to a known
	// predicate or attribute.
	for _, it := range out.Table.Items() {
		if strings.ContainsRune(it, '=') {
			continue
		}
		if _, err := qsrmine.ParsePredicate(it); err != nil {
			t.Errorf("unparseable extracted item %q", it)
		}
	}
	// Semantic guarantee 3: the baseline finds strictly more patterns.
	base, err := qsrmine.RunTable(out.Table, qsrmine.Config{
		Algorithm:  qsrmine.Apriori,
		MinSupport: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.NumFrequent(2) <= out.Result.NumFrequent(2) {
		t.Errorf("Apriori %d <= KC+ %d patterns", base.Result.NumFrequent(2), out.Result.NumFrequent(2))
	}
	// Cross-check with sequential extraction on a spot sample: the
	// parallel result is authoritative per TestParallelExtraction*, but
	// verify one row here against an independent sequential run.
	seqOpts := transact.DefaultOptions()
	seqOpts.Parallelism = 1
	seq, err := qsrmine.Extract(scene, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(seq.Transactions[123].Items, "|") != strings.Join(out.Table.Transactions[123].Items, "|") {
		t.Error("parallel and sequential extraction disagree")
	}
}
