package qsrmine_test

import (
	"testing"

	qsrmine "repro"
)

// TestPublicAPIQuickstart exercises the documented quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	scene := qsrmine.PortoAlegreScene()
	out, err := qsrmine.Run(scene, qsrmine.Config{
		Algorithm:  qsrmine.AprioriKCPlus,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.NumFrequent(2) == 0 {
		t.Fatal("no frequent itemsets")
	}
	for _, f := range out.Result.Frequent {
		if f.Items.HasSameFeaturePair(out.DB.Dict) {
			t.Errorf("same-feature itemset in KC+ output: %s", f.Items.Format(out.DB.Dict))
		}
	}
}

func TestPublicGeometryAPI(t *testing.T) {
	district := qsrmine.Rect(0, 0, 10, 10)
	slum := qsrmine.Rect(2, 2, 4, 4)
	rel, ok := qsrmine.Topological(district, slum)
	if !ok || rel != qsrmine.Contains {
		t.Errorf("Topological = %v, %v", rel, ok)
	}
	m := qsrmine.Relate(district, slum)
	if !m.IsContains() {
		t.Errorf("Relate = %s", m)
	}
	g, err := qsrmine.ParseWKT("POINT (1 2)")
	if err != nil {
		t.Fatal(err)
	}
	if qsrmine.GeomDistance(g, qsrmine.Pt(1, 2)) != 0 {
		t.Error("distance to self")
	}
	p := qsrmine.Predicate{Relation: qsrmine.Touches, FeatureType: "school"}
	if p.String() != "touches_school" {
		t.Errorf("predicate = %q", p.String())
	}
}

func TestPublicGainAPI(t *testing.T) {
	g, err := qsrmine.MinGain([]int{2, 2, 2}, 2)
	if err != nil || g != 148 {
		t.Errorf("MinGain = %d, %v", g, err)
	}
	lb, err := qsrmine.TotalLowerBound(6)
	if err != nil || lb != 57 {
		t.Errorf("TotalLowerBound = %d, %v", lb, err)
	}
	if len(qsrmine.GainTable3()) != 10 {
		t.Error("GainTable3 shape wrong")
	}
}

func TestPublicTableAPI(t *testing.T) {
	table := qsrmine.NewTable([]qsrmine.Transaction{
		{RefID: "a", Items: []string{"contains_slum", "touches_slum", "crimeRate=high"}},
		{RefID: "b", Items: []string{"contains_slum", "crimeRate=high"}},
	})
	out, err := qsrmine.RunTable(table, qsrmine.Config{
		Algorithm:     qsrmine.AprioriKCPlus,
		MinSupport:    0.5,
		GenerateRules: true,
		MinConfidence: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) == 0 {
		t.Error("expected rules")
	}
	alg, err := qsrmine.ParseAlgorithm("apriori-kc+")
	if err != nil || alg != qsrmine.AprioriKCPlus {
		t.Errorf("ParseAlgorithm = %v, %v", alg, err)
	}
}
