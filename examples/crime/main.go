// Crime analysis: the paper's motivating scenario from Section 1.
//
// "Our objective is to investigate possible associations between the high
// criminality rates in different districts with slums, schools, and
// police centers. In our initial hypothesis, districts that have high
// criminality rates will be spatially related to slums, and districts
// with low criminality rate contain schools and police centers."
//
// This example builds a synthetic city of 12x12 districts with slums,
// schools, police centers, rivers and streets; extracts topological AND
// qualitative distance predicates (veryCloseTo/closeTo/farFrom police
// centers, like the paper's Cristal/Cavalhada discussion); and contrasts
// the rules found by plain Apriori with those of Apriori-KC+.
//
// Run with: go run ./examples/crime
package main

import (
	"fmt"
	"log"
	"strings"

	qsrmine "repro"
	"repro/internal/datagen"
)

func main() {
	// A 12x12-district synthetic city (the real Porto Alegre data the
	// paper used is not publicly available).
	scene, err := datagen.GenerateScene(datagen.DefaultScene(12, 12, 42))
	if err != nil {
		log.Fatal(err)
	}

	// Extract topological + distance predicates. Thresholds are scaled
	// to the district size (10): contained police centers are
	// veryCloseTo, neighbours closeTo, the rest farFrom.
	opts := qsrmine.DefaultExtractOptions()
	opts.Distance = true
	opts.Thresholds = qsrmine.DistanceThresholds{VeryCloseMax: 1, CloseMax: 6}
	opts.IncludeFarFrom = false // the city is large; farFrom would hold everywhere

	cfg := qsrmine.Config{
		Extraction:    opts,
		Algorithm:     qsrmine.AprioriKCPlus,
		MinSupport:    0.30,
		GenerateRules: true,
		MinConfidence: 0.9,
	}
	plus, err := qsrmine.Run(scene, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Algorithm = qsrmine.Apriori
	full, err := qsrmine.Run(scene, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Districts: %d, distinct items: %d\n",
		plus.Table.Len(), len(plus.Table.Items()))
	fmt.Printf("Apriori:     %5d frequent itemsets, %5d rules\n",
		full.Result.NumFrequent(2), len(full.Rules))
	fmt.Printf("Apriori-KC+: %5d frequent itemsets, %5d rules (%.0f%% fewer)\n\n",
		plus.Result.NumFrequent(2), len(plus.Rules),
		100*(1-float64(plus.Result.NumFrequent(2))/float64(full.Result.NumFrequent(2))))

	// Meaningless rules Apriori generates but KC+ never does.
	fmt.Println("Meaningless same-feature rules Apriori produced (KC+ filters these):")
	shown := 0
	for _, r := range full.Rules {
		if sameFeatureRule(r, full) {
			fmt.Printf("  %-64s conf %.2f\n", r.Format(full.DB.Dict), r.Confidence)
			if shown++; shown == 5 {
				break
			}
		}
	}

	// The hypothesis: crime vs slums / schools / police.
	fmt.Println("\nCrime-related rules surviving KC+ filtering:")
	shown = 0
	for _, r := range plus.Rules {
		txt := r.Format(plus.DB.Dict)
		if strings.Contains(txt, "crimeRate") {
			fmt.Printf("  %-64s conf %.2f lift %.2f\n", txt, r.Confidence, r.Lift)
			if shown++; shown == 12 {
				break
			}
		}
	}
}

// sameFeatureRule reports whether a rule's item union holds two spatial
// predicates over one feature type.
func sameFeatureRule(r qsrmine.Rule, out *qsrmine.Outcome) bool {
	all := r.Antecedent.Union(r.Consequent)
	return all.HasSameFeaturePair(out.DB.Dict)
}
