// Quickstart: mine the paper's Porto Alegre sample end-to-end.
//
// The scene is real geometry (district polygons, slum polygons, school
// and police-center points); the library extracts the qualitative
// topological predicates of Table 1 and mines them with Apriori-KC+,
// which filters meaningless same-feature patterns like
// {contains_slum, touches_slum} during candidate generation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	qsrmine "repro"
)

func main() {
	scene := qsrmine.PortoAlegreScene()

	out, err := qsrmine.Run(scene, qsrmine.Config{
		Algorithm:     qsrmine.AprioriKCPlus,
		MinSupport:    0.5,
		GenerateRules: true,
		MinConfidence: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Transactions extracted from the scene:")
	for _, tx := range out.Table.Transactions {
		fmt.Printf("  %-12s %v\n", tx.RefID, tx.Items)
	}

	res := out.Result
	fmt.Printf("\nApriori-KC+ found %d frequent itemsets (size >= 2), largest %d\n",
		res.NumFrequent(2), res.MaxLen())
	fmt.Printf("Same-feature pairs pruned at k=2: %d\n\n", res.PrunedSameFeature)

	fmt.Println("Frequent itemsets:")
	for _, f := range res.Frequent {
		if len(f.Items) >= 2 {
			fmt.Printf("  %-70s support %d/6\n", f.Items.Format(out.DB.Dict), f.Support)
		}
	}

	fmt.Printf("\nTop association rules (confidence >= 80%%):\n")
	for i, r := range out.Rules {
		if i == 10 {
			break
		}
		fmt.Printf("  %-70s conf %.2f lift %.2f\n", r.Format(out.DB.Dict), r.Confidence, r.Lift)
	}
}
