// Hydrology & infrastructure: background-knowledge dependencies (Φ).
//
// The paper's Figure 1 scenario: districts, streets, and illumination
// points, where "illumination points are adjacent to streets, and all
// streets are related to at least one district" — well-known geographic
// dependencies that generate non-interesting patterns like
//
//	is_a_District ∧ contains_Street -> contains_IlluminationPoints.
//
// This example mines the paper's first experimental dataset (13 spatial
// predicates, 9 same-feature pairs, 4 dependencies) with all three
// algorithms and shows the two-stage reduction: Apriori-KC removes the
// Φ-pair patterns, Apriori-KC+ additionally removes the same-feature
// patterns — no background knowledge needed for the latter.
//
// Run with: go run ./examples/hydrology
package main

import (
	"fmt"
	"log"

	qsrmine "repro"
	"repro/internal/datagen"
)

func main() {
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, 1000)
	if err != nil {
		log.Fatal(err)
	}
	// Φ: the well-known dependencies, given as background knowledge.
	deps := make([]qsrmine.DependencyPair, len(datagen.Dataset1Dependencies))
	for i, d := range datagen.Dataset1Dependencies {
		deps[i] = qsrmine.DependencyPair{A: d.A, B: d.B}
	}

	fmt.Println("Φ (background knowledge dependencies):")
	for _, d := range deps {
		fmt.Printf("  %s <-> %s\n", d.A, d.B)
	}
	fmt.Println()

	fmt.Printf("%-14s %10s %10s %12s %12s\n",
		"algorithm", "frequent", "reduction", "pruned-deps", "pruned-same")
	var base int
	for _, alg := range []qsrmine.Algorithm{
		qsrmine.Apriori, qsrmine.AprioriKC, qsrmine.AprioriKCPlus,
	} {
		out, err := qsrmine.RunTable(table, qsrmine.Config{
			Algorithm:    alg,
			MinSupport:   0.10,
			Dependencies: deps,
		})
		if err != nil {
			log.Fatal(err)
		}
		n := out.Result.NumFrequent(2)
		if alg == qsrmine.Apriori {
			base = n
		}
		fmt.Printf("%-14s %10d %9.1f%% %12d %12d\n",
			alg, n, 100*(1-float64(n)/float64(base)),
			out.Result.PrunedDeps, out.Result.PrunedSameFeature)
	}

	// Show what each stage eliminated, concretely.
	full, _ := qsrmine.RunTable(table, qsrmine.Config{Algorithm: qsrmine.Apriori, MinSupport: 0.10})
	fmt.Println("\nExamples of patterns each stage eliminates:")
	depShown, sameShown := 0, 0
	for _, f := range full.Result.Frequent {
		if len(f.Items) != 2 {
			continue
		}
		names := f.Items.Names(full.DB.Dict)
		if depShown < 2 && isDep(names, deps) {
			fmt.Printf("  [KC]  %-55s (well-known dependency)\n", f.Items.Format(full.DB.Dict))
			depShown++
		}
		if sameShown < 3 && f.Items.HasSameFeaturePair(full.DB.Dict) {
			fmt.Printf("  [KC+] %-55s (same feature type)\n", f.Items.Format(full.DB.Dict))
			sameShown++
		}
	}
}

// isDep reports whether the two item names form a Φ pair.
func isDep(names []string, deps []qsrmine.DependencyPair) bool {
	for _, d := range deps {
		if (names[0] == d.A && names[1] == d.B) || (names[0] == d.B && names[1] == d.A) {
			return true
		}
	}
	return false
}
