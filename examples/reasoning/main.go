// Qualitative spatial reasoning with RCC8: the calculus behind the
// paper's title.
//
// The mining side of the paper reasons over predicate *semantics* (same
// feature type). This example shows the deeper reasoning machinery the
// library also provides: the region connection calculus with its
// composition table, algebraic-closure (path consistency) inference over
// constraint networks, and conceptual-neighborhood plausibility checks.
//
// Scenario: a city knows some facts about a district, a slum, and a
// flood zone, and wants to infer the possible slum/flood-zone
// relationships without any geometry — then cross-checks against actual
// geometry.
//
// Run with: go run ./examples/reasoning
package main

import (
	"fmt"

	qsrmine "repro"
	"repro/internal/qsr"
)

func main() {
	// --- Inference from pure constraints -----------------------------
	// Regions: 0 = slum, 1 = district, 2 = flood zone.
	net := qsrmine.NewRCC8Network(3)
	// Known: the slum is a non-tangential proper part of the district.
	net.Constrain(0, 1, qsr.NewRCC8Set(qsr.NTPP))
	// Known: the district is externally connected to the flood zone.
	net.Constrain(1, 2, qsr.NewRCC8Set(qsr.EC))

	fmt.Println("Constraints: slum NTPP district, district EC floodZone")
	fmt.Println("Before closure, slum vs floodZone:", net.Constraint(0, 2))
	if !net.PathConsistent() {
		panic("unexpectedly inconsistent")
	}
	fmt.Println("After closure,  slum vs floodZone:", net.Constraint(0, 2))
	fmt.Println("  (a slum strictly inside a district can only be disconnected")
	fmt.Println("   from anything merely touching that district)")
	fmt.Println()

	// --- Detecting inconsistent reports ------------------------------
	// A report claims the slum overlaps the flood zone. Algebra says no.
	report := qsrmine.NewRCC8Network(3)
	report.Constrain(0, 1, qsr.NewRCC8Set(qsr.NTPP))
	report.Constrain(1, 2, qsr.NewRCC8Set(qsr.EC))
	report.Constrain(0, 2, qsr.NewRCC8Set(qsr.PO))
	fmt.Println("Adding a report 'slum PO floodZone':")
	if report.PathConsistent() {
		fmt.Println("  consistent (unexpected!)")
	} else {
		fmt.Println("  inconsistent — the report contradicts the known facts")
	}
	fmt.Println()

	// --- Geometry agrees with the algebra ----------------------------
	district := qsrmine.Rect(0, 0, 10, 10)
	slum := qsrmine.Rect(2, 2, 4, 4)
	flood := qsrmine.Rect(10, 0, 16, 10)
	observed := qsrmine.RCC8NetworkFromScene([]qsrmine.Geometry{slum, district, flood})
	fmt.Println("Observed from geometry:")
	fmt.Println("  slum vs district:  ", observed.Constraint(0, 1))
	fmt.Println("  district vs flood: ", observed.Constraint(1, 2))
	fmt.Println("  slum vs flood:     ", observed.Constraint(0, 2))
	fmt.Println()

	// --- Conceptual neighborhood: motion plausibility ----------------
	// A tracked encampment is reported DC, then NTPP, of the flood zone
	// in consecutive surveys. Continuity says something was missed.
	fmt.Println("Survey sequence DC -> NTPP plausible?",
		qsr.PlausibleSequence([]qsr.RCC8{qsr.DC, qsr.NTPP}))
	fmt.Println("Full approach DC -> EC -> PO -> TPP -> NTPP plausible?",
		qsr.PlausibleSequence([]qsr.RCC8{qsr.DC, qsr.EC, qsr.PO, qsr.TPP, qsr.NTPP}))
	fmt.Println("Neighborhood distance DC to NTPP:",
		qsr.NeighborhoodDistance(qsr.DC, qsr.NTPP), "steps")
}
