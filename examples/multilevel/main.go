// Multi-level mining: feature-type concept hierarchies.
//
// The paper mines "at more general granularity levels" (Section 1, citing
// Han's multi-level mining): predicates name feature *types*, not
// instances. Concept hierarchies push this further — "slum" and "favela"
// both generalise to "settlement", so patterns invisible at the specific
// level (each sibling type too rare on its own) become frequent at the
// general level. Crucially, generalisation *creates* same-feature pairs:
// contains_slum and touches_favela collapse to contains_settlement and
// touches_settlement, which the KC+ filter then rightly removes.
//
// Run with: go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"math/rand"

	qsrmine "repro"
)

func main() {
	// A table over specific feature types. Each district relates to one
	// of several specific settlement kinds, so no single kind is
	// frequent, but the general concept is.
	rng := rand.New(rand.NewSource(4))
	kinds := []string{"slum", "favela", "tentCamp"}
	var rows []qsrmine.Transaction
	for i := 0; i < 200; i++ {
		var items []string
		if rng.Float64() < 0.7 { // 70% of districts have some settlement
			kind := kinds[rng.Intn(len(kinds))]
			items = append(items, "contains_"+kind)
			if rng.Float64() < 0.6 {
				items = append(items, "touches_"+kinds[rng.Intn(len(kinds))])
			}
			items = append(items, "crimeRate=high")
		} else {
			items = append(items, "crimeRate=low")
			if rng.Float64() < 0.5 {
				items = append(items, "contains_park")
			}
		}
		rows = append(rows, qsrmine.Transaction{RefID: fmt.Sprintf("d%d", i), Items: items})
	}
	table := qsrmine.NewTable(rows)

	// The concept hierarchy: every settlement kind -> settlement.
	tax := qsrmine.NewTaxonomy()
	for _, kind := range kinds {
		if err := tax.Add(kind, "settlement"); err != nil {
			log.Fatal(err)
		}
	}

	mine := func(tbl *qsrmine.Table, label string) {
		out, err := qsrmine.RunTable(tbl, qsrmine.Config{
			Algorithm:  qsrmine.AprioriKCPlus,
			MinSupport: 0.4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d frequent itemsets (size >= 2), %d same-feature pairs pruned\n",
			label, out.Result.NumFrequent(2), out.Result.PrunedSameFeature)
		for _, f := range out.Result.Frequent {
			if len(f.Items) >= 2 {
				fmt.Printf("  %-55s support %d/200\n", f.Items.Format(out.DB.Dict), f.Support)
			}
		}
	}

	fmt.Println("== specific level (slum / favela / tentCamp) ==")
	mine(table, "specific")
	fmt.Println()
	fmt.Println("== generalised to settlement level ==")
	general := qsrmine.GeneralizeTable(table, tax, 0)
	mine(general, "general")
	fmt.Println()
	fmt.Println("Note how the settlement/crime association only exists at the")
	fmt.Println("general level, and how KC+ prunes the contains/touches pair that")
	fmt.Println("generalisation created.")
}
