// Co-location with qualitative distance relations.
//
// The paper contrasts its qualitative approach with quantitative
// co-location mining (Huang/Shekhar/Xiong), which "may not generate this
// kind of meaningless patterns [but] has the disadvantage of considering
// only quantitative distance relationships and its input is restricted to
// point datasets". This example shows the qualitative side handling the
// same workload: point features (cafés, bus stops, ATMs) around reference
// city blocks, with veryCloseTo/closeTo/farFrom predicates — and shows
// why the same-feature filter matters even more for distance relations
// (the paper: "with distance relationships we can have rules with even
// less meaning", e.g. closeTo_PoliceCenter ∧ farFrom_PoliceCenter).
//
// Run with: go run ./examples/colocation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	qsrmine "repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Reference layer: a 10x10 grid of city blocks.
	blocks := qsrmine.NewLayer("block")
	const blockSize = 10.0
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			ox, oy := float64(x)*blockSize, float64(y)*blockSize
			blocks.Add(qsrmine.Feature{
				ID:       fmt.Sprintf("block_%d_%d", x, y),
				Geometry: qsrmine.Rect(ox, oy, ox+blockSize, oy+blockSize),
			})
		}
	}
	// Point layers: clustered cafés (downtown), uniform bus stops,
	// sparse ATMs.
	cafes := qsrmine.NewLayer("cafe")
	for i := 0; i < 60; i++ {
		cafes.AddGeometry(qsrmine.Pt(30+rng.Float64()*40, 30+rng.Float64()*40))
	}
	stops := qsrmine.NewLayer("busStop")
	for i := 0; i < 80; i++ {
		stops.AddGeometry(qsrmine.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	atms := qsrmine.NewLayer("atm")
	for i := 0; i < 15; i++ {
		atms.AddGeometry(qsrmine.Pt(20+rng.Float64()*60, 20+rng.Float64()*60))
	}

	ds := &qsrmine.Dataset{
		Reference: blocks,
		Relevant:  []*qsrmine.Layer{cafes, stops, atms},
	}

	// Qualitative distance extraction only — the co-location setting.
	opts := qsrmine.ExtractOptions{
		Distance:       true,
		Thresholds:     qsrmine.DistanceThresholds{VeryCloseMax: 0, CloseMax: 15},
		IncludeFarFrom: true,
	}

	for _, alg := range []qsrmine.Algorithm{qsrmine.Apriori, qsrmine.AprioriKCPlus} {
		out, err := qsrmine.Run(ds, qsrmine.Config{
			Extraction:    opts,
			Algorithm:     alg,
			MinSupport:    0.25,
			GenerateRules: true,
			MinConfidence: 0.8,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d frequent itemsets, %d rules\n",
			alg, out.Result.NumFrequent(2), len(out.Rules))
		if alg == qsrmine.Apriori {
			// The paper's "even less meaning" patterns.
			fmt.Println("  meaningless distance patterns Apriori generates:")
			shown := 0
			for _, f := range out.Result.Frequent {
				if len(f.Items) == 2 && f.Items.HasSameFeaturePair(out.DB.Dict) {
					fmt.Printf("    %s (support %d)\n", f.Items.Format(out.DB.Dict), f.Support)
					if shown++; shown == 4 {
						break
					}
				}
			}
		} else {
			fmt.Println("  surviving cross-feature co-locations:")
			shown := 0
			for _, r := range out.Rules {
				txt := r.Format(out.DB.Dict)
				if strings.Contains(txt, "closeTo") {
					fmt.Printf("    %-58s conf %.2f lift %.2f\n", txt, r.Confidence, r.Lift)
					if shown++; shown == 6 {
						break
					}
				}
			}
		}
		fmt.Println()
	}
}
