package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/server"
)

func newNode(t *testing.T) *client.Client {
	t.Helper()
	s := server.New(server.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return client.New(ts.URL)
}

// TestClientRoundTrip drives the full happy path through the typed
// client: upload, sync mine, async job, metadata, metrics.
func TestClientRoundTrip(t *testing.T) {
	c := newNode(t)
	ctx := context.Background()

	info, err := c.UploadDataset(ctx, api.KindTable, []byte("r1,a,b\nr2,a,b\nr3,a,c\n"))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if info.Kind != api.KindTable || info.Rows != 3 || len(info.Digest) != 64 {
		t.Fatalf("upload info = %+v", info)
	}
	back, err := c.GetDataset(ctx, info.Digest)
	if err != nil || back != info {
		t.Fatalf("GetDataset = %+v, %v", back, err)
	}

	req := api.MineRequest{Dataset: info.Digest, Config: core.Config{MinSupport: 0.5}}
	resp, err := c.Mine(ctx, req)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if resp.Transactions != 3 || len(resp.Frequent) == 0 {
		t.Fatalf("mine response = %+v", resp)
	}

	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c.WaitJob(waitCtx, st.ID, time.Millisecond)
	if err != nil || final.State != api.JobDone {
		t.Fatalf("WaitJob = %+v, %v", final, err)
	}
	// Identical request: the async run filled the cache.
	if !final.Result.Cached && final.Result.Transactions != resp.Transactions {
		t.Errorf("async result diverged from sync: %+v", final.Result)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Role != "node" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Store.Entries != 1 || m.Jobs.Done != 1 || m.Ring != nil {
		t.Errorf("metrics = store %+v jobs %+v ring %v", m.Store, m.Jobs, m.Ring)
	}
}

// TestClientTypedErrors: non-2xx responses surface as *APIError with
// the machine code, message, and request ID from the envelope.
func TestClientTypedErrors(t *testing.T) {
	c := newNode(t)
	ctx := context.Background()

	_, err := c.Mine(ctx, api.MineRequest{Dataset: "beef", Config: core.Config{MinSupport: 0.5}})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if ae.Status != http.StatusNotFound || ae.Code != api.CodeNotFound || ae.RequestID == "" {
		t.Errorf("APIError = %+v", ae)
	}
	if !client.IsNotFound(err) || client.IsRetryable(err) {
		t.Errorf("classification wrong for %v", err)
	}
	if client.ErrCode(err) != api.CodeNotFound {
		t.Errorf("ErrCode = %q", client.ErrCode(err))
	}

	// A validation failure maps to bad_request.
	_, err = c.Mine(ctx, api.MineRequest{Dataset: "beef", Config: core.Config{MinSupport: 7}})
	if client.ErrCode(err) != api.CodeBadRequest {
		t.Errorf("bad minsup ErrCode = %q, want bad_request", client.ErrCode(err))
	}

	// Unknown upload kind is rejected client-side.
	if _, err := c.UploadDataset(ctx, api.DatasetKind("tape"), nil); err == nil {
		t.Error("unknown dataset kind accepted")
	}
}

// TestClientDrainingAndRetryable: a draining node's 503 decodes to the
// draining code, is marked retryable, carries the Retry-After hint —
// and Health still reports the draining document instead of erroring.
func TestClientDrainingAndRetryable(t *testing.T) {
	s := server.New(server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	c := client.New(ts.URL)

	_, err := c.UploadDataset(ctx, api.KindTable, []byte("r1,a\n"))
	if client.ErrCode(err) != api.CodeDraining || !client.IsRetryable(err) {
		t.Fatalf("draining upload err = %v", err)
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.RetryAfter == 0 {
		t.Error("draining error missing RetryAfter")
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "draining" {
		t.Errorf("Health on draining node = %+v, %v", h, err)
	}
}

// TestClientDefaultDeadline: WithTimeout bounds calls whose context has
// no deadline; a caller-supplied deadline is never overridden.
func TestClientDefaultDeadline(t *testing.T) {
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold every request until the client hangs up
	}))
	defer stuck.Close()

	c := client.New(stuck.URL, client.WithTimeout(30*time.Millisecond))
	begin := time.Now()
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("call against a stuck server returned")
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("default deadline did not bound the call (%v)", took)
	}

	// An explicit (longer) caller deadline wins over the default.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	begin = time.Now()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("call against a stuck server returned")
	}
	if took := time.Since(begin); took < 100*time.Millisecond {
		t.Fatalf("caller deadline overridden by the shorter default (%v)", took)
	}
}

// TestClientAgainstFrontNode: the same typed client drives a multi-node
// front without changes — the symmetry the /v1 contract guarantees.
func TestClientAgainstFrontNode(t *testing.T) {
	s := server.New(server.Options{Workers: 2})
	node := httptest.NewServer(s.Handler())
	defer node.Close()
	defer s.Shutdown(context.Background())
	front, err := server.NewProxy(server.ProxyOptions{Peers: []string{node.URL}, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()

	c := client.New(fts.URL)
	ctx := context.Background()
	info, err := c.UploadDataset(ctx, api.KindTable, []byte("r1,a,b\nr2,a,b\n"))
	if err != nil {
		t.Fatalf("upload via front: %v", err)
	}
	resp, err := c.Mine(ctx, api.MineRequest{Dataset: info.Digest, Config: core.Config{MinSupport: 0.5}})
	if err != nil || resp.Transactions != 2 {
		t.Fatalf("mine via front = %+v, %v", resp, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Role != "front" {
		t.Errorf("front health = %+v, %v", h, err)
	}
}

// TestClientDatasetLifecycle drives the PATCH / list / delete surface:
// patch a scene through the typed client, mine the successor, then
// delete the parent and check the *APIError mapping on the gone digest.
func TestClientDatasetLifecycle(t *testing.T) {
	c := newNode(t)
	ctx := context.Background()

	var buf bytes.Buffer
	if err := dataset.PortoAlegreScene().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(ctx, api.KindScene, buf.Bytes())
	if err != nil {
		t.Fatalf("upload: %v", err)
	}

	pr, err := c.PatchDataset(ctx, info.Digest, api.PatchRequest{Ops: []dataset.Op{
		{Action: dataset.OpInsert, Layer: "slum", ID: "slumX", WKT: "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"},
	}})
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if pr.Parent != info.Digest || pr.Dataset.Digest == info.Digest || pr.Changed != 1 {
		t.Fatalf("patch response = %+v", pr)
	}
	if _, err := c.Mine(ctx, api.MineRequest{Dataset: pr.Dataset.Digest, Config: core.Config{MinSupport: 0.3}}); err != nil {
		t.Fatalf("mine successor: %v", err)
	}

	list, err := c.ListDatasets(ctx)
	if err != nil || len(list) != 2 {
		t.Fatalf("list = %+v, %v (want parent + successor)", list, err)
	}

	// Error mapping: unknown digest -> not_found; bad batch -> bad_request.
	if _, err := c.PatchDataset(ctx, "deadbeef", api.PatchRequest{Ops: []dataset.Op{{Action: dataset.OpDelete, Layer: "slum", ID: "x"}}}); !client.IsNotFound(err) {
		t.Fatalf("patch unknown digest: %v", err)
	}
	if _, err := c.PatchDataset(ctx, info.Digest, api.PatchRequest{}); client.ErrCode(err) != api.CodeBadRequest {
		t.Fatalf("empty patch: %v", err)
	}

	del, err := c.DeleteDataset(ctx, info.Digest)
	if err != nil || !del.Deleted {
		t.Fatalf("delete = %+v, %v", del, err)
	}
	if _, err := c.DeleteDataset(ctx, info.Digest); !client.IsNotFound(err) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := c.GetDataset(ctx, info.Digest); !client.IsNotFound(err) {
		t.Fatalf("get after delete: %v", err)
	}
}

// TestClientLifecycleViaFront checks the same surface through a
// multi-node front: PATCH routes by parent digest, the successor mines
// on the peer holding the parent, and DELETE merges invalidation counts
// across replicas.
func TestClientLifecycleViaFront(t *testing.T) {
	var nodes []*server.Server
	var peers []string
	for i := 0; i < 2; i++ {
		s := server.New(server.Options{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { s.Shutdown(context.Background()) })
		nodes = append(nodes, s)
		peers = append(peers, ts.URL)
	}
	front, err := server.NewProxy(server.ProxyOptions{Peers: peers, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(fts.Close)

	c := client.New(fts.URL)
	ctx := context.Background()
	var buf bytes.Buffer
	if err := dataset.PortoAlegreScene().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(ctx, api.KindScene, buf.Bytes())
	if err != nil {
		t.Fatalf("upload via front: %v", err)
	}
	cfg := core.Config{MinSupport: 0.3}
	if _, err := c.Mine(ctx, api.MineRequest{Dataset: info.Digest, Config: cfg}); err != nil {
		t.Fatalf("mine parent via front: %v", err)
	}
	pr, err := c.PatchDataset(ctx, info.Digest, api.PatchRequest{Ops: []dataset.Op{
		{Action: dataset.OpInsert, Layer: "school", ID: "schoolX", WKT: "POINT (2 2)"},
	}})
	if err != nil {
		t.Fatalf("patch via front: %v", err)
	}
	// The successor digest hashes to its own ring position, but lineage
	// routing must send this to the peers holding the parent + patch.
	resp, err := c.Mine(ctx, api.MineRequest{Dataset: pr.Dataset.Digest, Config: cfg})
	if err != nil {
		t.Fatalf("mine successor via front: %v", err)
	}
	if resp.Transactions == 0 {
		t.Fatalf("successor mine = %+v", resp)
	}

	list, err := c.ListDatasets(ctx)
	if err != nil || len(list) != 2 {
		t.Fatalf("merged list = %+v, %v", list, err)
	}

	del, err := c.DeleteDataset(ctx, pr.Dataset.Digest)
	if err != nil || !del.Deleted {
		t.Fatalf("delete via front = %+v, %v", del, err)
	}
	// Replicas 2: the successor (and its cached result) existed on both
	// peers; the merged count sums each peer's invalidation.
	if del.ResultsInvalidated == 0 {
		t.Errorf("delete invalidated nothing: %+v", del)
	}
	if _, err := c.GetDataset(ctx, pr.Dataset.Digest); !client.IsNotFound(err) {
		t.Fatalf("successor survived cluster delete: %v", err)
	}
}
