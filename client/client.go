// Package client is the typed Go client for the qsrmined /v1 HTTP API.
// It speaks the wire contract defined in repro/api — the same package
// the server compiles against — so client and server cannot drift: the
// multi-node proxy and the server's own end-to-end tests are built on
// this client.
//
//	c := client.New("http://localhost:8080")
//	info, err := c.UploadDataset(ctx, api.KindScene, sceneJSON)
//	resp, err := c.Mine(ctx, api.MineRequest{Dataset: info.Digest, Config: cfg})
//
// Every call is context-aware; WithTimeout installs a default per-call
// deadline applied whenever the caller's context has none. Non-2xx
// responses surface as *APIError carrying the machine-readable code,
// message, and request ID from the /v1 error envelope.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/api"
)

// Client talks to one qsrmined node (or front router). Safe for
// concurrent use.
type Client struct {
	base    string
	httpc   *http.Client
	timeout time.Duration
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (connection pools, TLS,
// test doubles). The default is a dedicated http.Client with no global
// timeout — deadlines come from contexts.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithTimeout sets the default per-call deadline, applied only when the
// caller's context carries none. Zero means no default deadline.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// New returns a Client for the node at baseURL (scheme://host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		httpc: &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the node address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx /v1 response, decoded from the uniform error
// envelope. Code is "" when the body was not an envelope (e.g. a
// plain-text 405 from the mux).
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error class.
	Code api.ErrorCode
	// Message is the human-readable explanation.
	Message string
	// RequestID correlates the failure across nodes and logs.
	RequestID string
	// RetryAfter is the server's back-off hint in seconds (0 if none).
	RetryAfter int
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("qsrmined: HTTP %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("qsrmined: %s (HTTP %d): %s", e.Code, e.Status, e.Message)
}

// ErrCode extracts the machine code from err ("" when err is not an
// *APIError).
func ErrCode(err error) api.ErrorCode {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsNotFound reports whether err is a /v1 not_found error.
func IsNotFound(err error) bool { return ErrCode(err) == api.CodeNotFound }

// IsRetryable reports whether err signals a transient condition the
// caller may retry after a back-off (draining node, full queue,
// unreachable upstream).
func IsRetryable(err error) bool {
	switch ErrCode(err) {
	case api.CodeDraining, api.CodeQueueFull, api.CodeUpstream:
		return true
	}
	return false
}

// RawResponse is an uninterpreted upstream response: status, headers,
// and the exact body bytes. The multi-node proxy forwards these to its
// own client unchanged, which is what makes front-node responses
// byte-identical to direct single-node responses.
type RawResponse struct {
	Status int
	Header http.Header
	Body   []byte
}

// Forward performs one HTTP exchange without interpreting the response:
// the returned error is non-nil only for transport failures (connection
// refused, deadline, ...), never for HTTP error statuses. header may be
// nil; a Content-Type of application/json is assumed for non-empty
// bodies unless header overrides it.
func (c *Client) Forward(ctx context.Context, method, path string, header http.Header, body []byte) (*RawResponse, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building %s %s: %w", method, path, err)
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s%s: %w", method, c.base, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	return &RawResponse{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// callCtx applies the default per-call deadline when ctx has none.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return ctx, func() {}
	}
	if _, has := ctx.Deadline(); has {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// apiErr converts a non-2xx RawResponse into an *APIError.
func apiErr(raw *RawResponse) *APIError {
	ae := &APIError{Status: raw.Status}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw.Body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		ae.RequestID = env.Error.RequestID
	} else {
		ae.Message = strings.TrimSpace(string(raw.Body))
	}
	if ra := raw.Header.Get("Retry-After"); ra != "" {
		fmt.Sscanf(ra, "%d", &ae.RetryAfter)
	}
	return ae
}

// doJSON performs one typed call: marshal in (unless nil), decode the
// 2xx response into out (unless nil), map everything else to *APIError.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s %s request: %w", method, path, err)
		}
	}
	raw, err := c.Forward(ctx, method, path, nil, body)
	if err != nil {
		return err
	}
	if raw.Status >= 300 {
		return apiErr(raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw.Body, out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// UploadDataset uploads a dataset body of the given kind (api.KindScene
// for WKT-JSON scenes, api.KindTable for transaction CSVs) and returns
// its content-addressed metadata. Re-uploading identical bytes is
// idempotent and yields the same digest.
func (c *Client) UploadDataset(ctx context.Context, kind api.DatasetKind, body []byte) (api.DatasetInfo, error) {
	var path string
	switch kind {
	case api.KindScene:
		path = "/v1/datasets/scene"
	case api.KindTable:
		path = "/v1/datasets/table"
	default:
		return api.DatasetInfo{}, fmt.Errorf("client: unknown dataset kind %q", kind)
	}
	raw, err := c.Forward(ctx, http.MethodPost, path, nil, body)
	if err != nil {
		return api.DatasetInfo{}, err
	}
	if raw.Status >= 300 {
		return api.DatasetInfo{}, apiErr(raw)
	}
	var info api.DatasetInfo
	if err := json.Unmarshal(raw.Body, &info); err != nil {
		return api.DatasetInfo{}, fmt.Errorf("client: decoding upload response: %w", err)
	}
	return info, nil
}

// GetDataset fetches upload metadata for a stored digest.
func (c *Client) GetDataset(ctx context.Context, digest string) (api.DatasetInfo, error) {
	var info api.DatasetInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/datasets/"+digest, nil, &info)
	return info, err
}

// ListDatasets enumerates the stored datasets (merged across the
// cluster when talking to a front node), ordered by digest.
func (c *Client) ListDatasets(ctx context.Context) ([]api.DatasetInfo, error) {
	var list api.DatasetList
	if err := c.doJSON(ctx, http.MethodGet, "/v1/datasets", nil, &list); err != nil {
		return nil, err
	}
	return list.Datasets, nil
}

// PatchDataset applies a mutation batch to a stored scene and returns
// the content-addressed successor with its lineage. The parent dataset
// is immutable and stays stored; mining the successor digest reuses the
// parent's extraction and mining state through the delta pipeline.
func (c *Client) PatchDataset(ctx context.Context, digest string, req api.PatchRequest) (*api.PatchResponse, error) {
	var resp api.PatchResponse
	if err := c.doJSON(ctx, http.MethodPatch, "/v1/datasets/"+digest, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteDataset removes a stored dataset and invalidates every cached
// mining result derived from it (summed across replicas when talking
// to a front node).
func (c *Client) DeleteDataset(ctx context.Context, digest string) (*api.DeleteResponse, error) {
	var resp api.DeleteResponse
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/datasets/"+digest, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Mine runs a synchronous mining request.
func (c *Client) Mine(ctx context.Context, req api.MineRequest) (*api.MineResponse, error) {
	var resp api.MineResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/mine", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Colocate runs a synchronous co-location mining request; the result's
// Colocation block carries the prevalent feature-type sets. The
// config's Engine knob ("joinless" or "clique") only picks the
// candidate-evaluation strategy — results are identical, and the
// server caches them under one entry regardless of engine.
func (c *Client) Colocate(ctx context.Context, req api.ColocateRequest) (*api.MineResponse, error) {
	var resp api.MineResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/colocate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitColocateJob enqueues an async co-location job; poll and cancel
// it through the shared /v1/jobs/{id} surface (PollJob, WaitJob,
// CancelJob).
func (c *Client) SubmitColocateJob(ctx context.Context, req api.ColocateRequest) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/colocate/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitJob enqueues an async mining job and returns its initial
// status (state queued or running).
func (c *Client) SubmitJob(ctx context.Context, req api.MineRequest) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// PollJob fetches a job's current status (result included once done).
func (c *Client) PollJob(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// CancelJob requests cancellation of a queued or running job and
// returns the state observed at cancellation time.
func (c *Client) CancelJob(ctx context.Context, id string) (api.JobState, error) {
	var out struct {
		State api.JobState `json:"state"`
	}
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return "", err
	}
	return out.State, nil
}

// WaitJob polls a job every interval until it reaches a terminal state
// or ctx ends. A non-positive interval polls every 10ms.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (*api.JobStatus, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.PollJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Health fetches the liveness document. Unlike the other calls it
// decodes the body even on 503: a draining node answers its health
// document with that status, and callers want the "draining" marker,
// not an error.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	raw, err := c.Forward(ctx, http.MethodGet, "/v1/healthz", nil, nil)
	if err != nil {
		return api.Health{}, err
	}
	var h api.Health
	if jsonErr := json.Unmarshal(raw.Body, &h); jsonErr == nil && h.Status != "" {
		return h, nil
	}
	if raw.Status >= 300 {
		return api.Health{}, apiErr(raw)
	}
	return api.Health{}, fmt.Errorf("client: undecodable health document %q", raw.Body)
}

// Metrics fetches the client-side view of /v1/metrics (obs counters
// plus store/cache/job — and, on a front node, ring — statistics).
func (c *Client) Metrics(ctx context.Context) (api.Metrics, error) {
	var m api.Metrics
	err := c.doJSON(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}
