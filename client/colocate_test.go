package client_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/colocation"
	"repro/internal/dataset"
)

// TestClientColocate drives co-location mining through the typed
// client: sync endpoint, async job, and the shared result cache
// between the two.
func TestClientColocate(t *testing.T) {
	c := newNode(t)
	ctx := context.Background()

	var scene bytes.Buffer
	if err := dataset.PortoAlegreScene().WriteJSON(&scene); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(ctx, api.KindScene, scene.Bytes())
	if err != nil {
		t.Fatalf("upload: %v", err)
	}

	req := api.ColocateRequest{Dataset: info.Digest, Config: colocation.Config{Distance: 3, MinPI: 0.2}}
	resp, err := c.Colocate(ctx, req)
	if err != nil {
		t.Fatalf("colocate: %v", err)
	}
	if resp.Algorithm != "colocation" || resp.Colocation == nil || len(resp.Colocation.Prevalent) == 0 {
		t.Fatalf("colocate response = %+v", resp)
	}

	st, err := c.SubmitColocateJob(ctx, req)
	if err != nil {
		t.Fatalf("submit colocate job: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c.WaitJob(waitCtx, st.ID, time.Millisecond)
	if err != nil || final.State != api.JobDone || final.Result == nil {
		t.Fatalf("WaitJob = %+v, %v", final, err)
	}
	// Identical request: the sync run already filled the cache.
	if !final.Result.Cached {
		t.Errorf("async colocate did not hit the shared cache: %+v", final.Result)
	}
	if len(final.Result.Colocation.Prevalent) != len(resp.Colocation.Prevalent) {
		t.Errorf("async result diverged from sync: %+v vs %+v",
			final.Result.Colocation, resp.Colocation)
	}
}

// TestClientColocateErrors: the colocate endpoint's failures surface
// as typed APIErrors like every other endpoint's.
func TestClientColocateErrors(t *testing.T) {
	c := newNode(t)
	ctx := context.Background()

	_, err := c.Colocate(ctx, api.ColocateRequest{Dataset: "beef", Config: colocation.Config{Distance: 1, MinPI: 0.5}})
	var ae *client.APIError
	if !errors.As(err, &ae) || !client.IsNotFound(err) {
		t.Fatalf("unknown dataset: err = %T %v, want not-found APIError", err, err)
	}

	info, err := c.UploadDataset(ctx, api.KindTable, []byte("r1,a,b\nr2,a,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Colocate(ctx, api.ColocateRequest{Dataset: info.Digest, Config: colocation.Config{Distance: 1, MinPI: 0.5}})
	if !errors.As(err, &ae) || ae.Code != api.CodeConfigInvalid {
		t.Fatalf("table dataset: err = %v, want config_invalid", err)
	}
}
