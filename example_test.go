package qsrmine_test

import (
	"fmt"

	qsrmine "repro"
)

// ExampleRunTable mines the paper's Table 2 dataset with Apriori-KC+ and
// prints the reduction the same-feature filter achieves.
func ExampleRunTable() {
	table := qsrmine.Table2Reconstruction()
	full, _ := qsrmine.RunTable(table, qsrmine.Config{
		Algorithm: qsrmine.Apriori, MinSupport: 0.5,
	})
	plus, _ := qsrmine.RunTable(table, qsrmine.Config{
		Algorithm: qsrmine.AprioriKCPlus, MinSupport: 0.5,
	})
	fmt.Printf("apriori: %d itemsets\n", full.Result.NumFrequent(2))
	fmt.Printf("apriori-kc+: %d itemsets\n", plus.Result.NumFrequent(2))
	fmt.Printf("same-feature pairs pruned: %d\n", plus.Result.PrunedSameFeature)
	// Output:
	// apriori: 60 itemsets
	// apriori-kc+: 30 itemsets
	// same-feature pairs pruned: 4
}

// ExampleTopological classifies the canonical topological relation
// between a district and a slum, as the predicate extraction does.
func ExampleTopological() {
	district := qsrmine.Rect(0, 0, 10, 10)
	slum := qsrmine.Rect(8, 4, 12, 6) // straddles the boundary
	rel, _ := qsrmine.Topological(district, slum)
	p := qsrmine.Predicate{Relation: rel, FeatureType: "slum"}
	fmt.Println(p)
	// Output:
	// overlaps_slum
}

// ExampleMinGain evaluates the paper's Formula 1 for the Section 4.2
// composition: three feature types with two relations each plus two other
// items.
func ExampleMinGain() {
	gain, _ := qsrmine.MinGain([]int{2, 2, 2}, 2)
	fmt.Println(gain)
	// Output:
	// 148
}

// ExampleRCC8Of shows the region-connection-calculus view of the same
// topological classification.
func ExampleRCC8Of() {
	district := qsrmine.Rect(0, 0, 10, 10)
	inner := qsrmine.Rect(2, 2, 4, 4)
	r, _ := qsrmine.RCC8Of(inner, district)
	fmt.Println(r)
	fmt.Println(qsrmine.ComposeRCC8(r, r))
	// Output:
	// NTPP
	// {NTPP}
}

// ExampleExtract runs predicate extraction over a tiny hand-built scene.
func ExampleExtract() {
	districts := qsrmine.NewLayer("district")
	districts.Add(qsrmine.Feature{ID: "D1", Geometry: qsrmine.Rect(0, 0, 10, 10)})
	schools := qsrmine.NewLayer("school")
	schools.Add(qsrmine.Feature{ID: "s1", Geometry: qsrmine.Pt(5, 5)})
	table, _ := qsrmine.Extract(&qsrmine.Dataset{
		Reference: districts,
		Relevant:  []*qsrmine.Layer{schools},
	}, qsrmine.DefaultExtractOptions())
	fmt.Println(table.Transactions[0].RefID, table.Transactions[0].Items)
	// Output:
	// D1 [contains_school]
}
