// Cancellation and observability tests over the public API: a cancelled
// context stops extraction and in-flight mining promptly, and a traced
// run reports every stage.
package qsrmine_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	qsrmine "repro"
	"repro/internal/datagen"
)

func TestPublicRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := qsrmine.Config{Algorithm: qsrmine.AprioriKCPlus, MinSupport: 0.5}
	if _, err := qsrmine.RunContext(ctx, qsrmine.PortoAlegreScene(), cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext err = %v, want context.Canceled", err)
	}
	if _, err := qsrmine.RunTableContext(ctx, qsrmine.PortoAlegreTable(), cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTableContext err = %v, want context.Canceled", err)
	}
	if _, err := qsrmine.ExtractContext(ctx, qsrmine.PortoAlegreScene(), qsrmine.DefaultExtractOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExtractContext err = %v, want context.Canceled", err)
	}
}

func TestPublicRunContextMatchesRun(t *testing.T) {
	cfg := qsrmine.Config{Algorithm: qsrmine.AprioriKCPlus, MinSupport: 0.5}
	plain, err := qsrmine.Run(qsrmine.PortoAlegreScene(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := qsrmine.RunContext(context.Background(), qsrmine.PortoAlegreScene(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Result.Frequent) != len(traced.Result.Frequent) {
		t.Fatalf("Run %d vs RunContext %d frequent itemsets",
			len(plain.Result.Frequent), len(traced.Result.Frequent))
	}
}

func TestPublicTraceEndToEnd(t *testing.T) {
	var text strings.Builder
	collector := qsrmine.NewTraceCollector()
	tr := qsrmine.NewTrace(qsrmine.MultiTraceSink(qsrmine.NewTextTraceSink(&text), collector))
	ctx := qsrmine.WithTrace(context.Background(), tr)
	if qsrmine.TraceFromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through the public context helpers")
	}
	_, err := qsrmine.RunContext(ctx, qsrmine.PortoAlegreScene(), qsrmine.Config{
		Algorithm: qsrmine.AprioriKCPlus, MinSupport: 0.5, GenerateRules: true, MinConfidence: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stages := make(map[string]bool)
	for _, s := range collector.Stages() {
		stages[s.Name] = true
	}
	for _, want := range []string{"extract", "intern", "mine", "postfilter", "rules"} {
		if !stages[want] {
			t.Errorf("stage %q missing from trace (got %v)", want, stages)
		}
	}
	if len(collector.Passes()) == 0 {
		t.Error("no pass events collected")
	}
	if !strings.Contains(text.String(), "stage extract") || !strings.Contains(text.String(), "pass k=2") {
		t.Errorf("text trace incomplete:\n%s", text.String())
	}
	if tr.Counter("extract.rows") != 6 {
		t.Errorf("extract.rows = %d, want 6", tr.Counter("extract.rows"))
	}
}

// TestPublicFPGrowthTraced: the FP-growth engine also reports per-size
// pass events (acceptance: per-pass counts for all four algorithms).
func TestPublicFPGrowthTraced(t *testing.T) {
	collector := qsrmine.NewTraceCollector()
	ctx := qsrmine.WithTrace(context.Background(), qsrmine.NewTrace(collector))
	out, err := qsrmine.RunTableContext(ctx, qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm: qsrmine.FPGrowthKCPlus, MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	passes := collector.Passes()
	if len(passes) != out.Result.MaxLen() {
		t.Fatalf("pass events = %d, want %d (one per itemset size)", len(passes), out.Result.MaxLen())
	}
	total := 0
	for _, p := range passes {
		total += p.Frequent
	}
	if total != len(out.Result.Frequent) {
		t.Errorf("pass frequent totals %d != %d itemsets", total, len(out.Result.Frequent))
	}
}

// TestPublicDeterminismUnderCancellationRace: mining a larger synthetic
// dataset with a deadline that cannot fire must equal the undeadlined
// run — the ctx checks themselves must not perturb results. Run under
// -race in CI this also exercises the parallel counting pool.
func TestPublicDeterminismUnderCancellationRace(t *testing.T) {
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, datagen.DefaultRows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := qsrmine.Config{Algorithm: qsrmine.Apriori, MinSupport: 0.05}
	base, err := qsrmine.RunTable(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	timed, err := qsrmine.RunTableContext(ctx, table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Result.Frequent) != len(timed.Result.Frequent) {
		t.Fatalf("deadlined run diverged: %d vs %d itemsets",
			len(base.Result.Frequent), len(timed.Result.Frequent))
	}
	for i := range base.Result.Frequent {
		a, b := base.Result.Frequent[i], timed.Result.Frequent[i]
		if !a.Items.Equal(b.Items) || a.Support != b.Support {
			t.Fatalf("itemset %d differs", i)
		}
	}
}
