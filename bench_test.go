// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation benches called out in DESIGN.md §5.
//
// Naming maps to the paper:
//
//	BenchmarkTable2*   — mining the Table 2 data at 50% support
//	BenchmarkTable3*   — the analytic gain grid
//	BenchmarkFigure3*  — the gain surface
//	BenchmarkFigure4And5* — dataset 1, three algorithms, minsup sweep
//	                        (Figure 4 counts are reported as bench
//	                        metrics; Figure 5 is the ns/op itself)
//	BenchmarkFigure6And7* — dataset 2, two algorithms, minsup sweep
//	BenchmarkCounting*    — tidset vs horizontal support counting
//	BenchmarkFilterPlacement* — apriori (k=2) vs aposteriori filtering
//	BenchmarkJoin*        — R-tree vs grid vs nested-loop extraction
//	BenchmarkSensitivity* — gain vs number of same-feature relations
package qsrmine_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/gain"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/transact"
)

// Lazily built shared inputs, outside all timing loops.
var (
	benchOnce  sync.Once
	benchData1 *dataset.Table
	benchData2 *dataset.Table
	benchDeps  []mining.Pair
	benchScene *dataset.Dataset
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchData1, err = datagen.PaperDataset1(datagen.DefaultSeed, datagen.DefaultRows)
		if err != nil {
			panic(err)
		}
		benchData2, err = datagen.PaperDataset2(datagen.DefaultSeed, datagen.DefaultRows)
		if err != nil {
			panic(err)
		}
		for _, d := range datagen.Dataset1Dependencies {
			benchDeps = append(benchDeps, mining.Pair{A: d.A, B: d.B})
		}
		benchScene, err = datagen.GenerateScene(datagen.DefaultScene(12, 12, 7))
		if err != nil {
			panic(err)
		}
	})
}

// mineBench runs one algorithm repeatedly and reports the frequent-set
// count as a bench metric (the Figure 4/6 series).
func mineBench(b *testing.B, table *dataset.Table, cfg mining.Config,
	alg func(*itemset.DB, mining.Config) (*mining.Result, error)) {
	b.Helper()
	db := itemset.NewDB(table)
	db.BuildTidsets()
	var frequent int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := alg(db, cfg)
		if err != nil {
			b.Fatal(err)
		}
		frequent = res.NumFrequent(2)
	}
	b.ReportMetric(float64(frequent), "frequent-sets")
}

// BenchmarkTable2Apriori mines the Table 2 reconstruction with the
// baseline (the workload behind Table 2 itself).
func BenchmarkTable2Apriori(b *testing.B) {
	mineBench(b, dataset.Table2Reconstruction(), mining.Config{MinSupport: 0.5}, mining.Apriori)
}

// BenchmarkTable2KCPlus mines the same data with the paper's algorithm.
func BenchmarkTable2KCPlus(b *testing.B) {
	mineBench(b, dataset.Table2Reconstruction(), mining.Config{MinSupport: 0.5}, mining.AprioriKCPlus)
}

// BenchmarkTable3Gain regenerates the full Table 3 grid.
func BenchmarkTable3Gain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := gain.Table3(); got[9][6] != 252928 {
			b.Fatal("table 3 corner value wrong")
		}
	}
}

// BenchmarkFigure3Surface regenerates the Figure 3 gain surface.
func BenchmarkFigure3Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := gain.Surface(8, 10)
		if err != nil || len(pts) != 80 {
			b.Fatal("surface wrong")
		}
	}
}

// BenchmarkFigure4And5 sweeps dataset 1 with the three algorithms: the
// reported frequent-sets metric regenerates Figure 4, and ns/op is the
// Figure 5 timing series.
func BenchmarkFigure4And5(b *testing.B) {
	benchSetup(b)
	algs := []struct {
		name string
		fn   func(*itemset.DB, mining.Config) (*mining.Result, error)
	}{
		{"Apriori", mining.Apriori},
		{"KC", mining.AprioriKC},
		{"KCPlus", mining.AprioriKCPlus},
	}
	for _, alg := range algs {
		for _, ms := range []float64{0.05, 0.10, 0.15} {
			b.Run(fmt.Sprintf("%s/minsup=%.0f%%", alg.name, ms*100), func(b *testing.B) {
				mineBench(b, benchData1, mining.Config{MinSupport: ms, Dependencies: benchDeps}, alg.fn)
			})
		}
	}
}

// BenchmarkFigure6And7 sweeps dataset 2 with Apriori and KC+: the
// frequent-sets metric regenerates Figure 6, ns/op is Figure 7.
func BenchmarkFigure6And7(b *testing.B) {
	benchSetup(b)
	algs := []struct {
		name string
		fn   func(*itemset.DB, mining.Config) (*mining.Result, error)
	}{
		{"Apriori", mining.Apriori},
		{"KCPlus", mining.AprioriKCPlus},
	}
	for _, alg := range algs {
		for _, ms := range []float64{0.05, 0.08, 0.11, 0.14, 0.17} {
			b.Run(fmt.Sprintf("%s/minsup=%.0f%%", alg.name, ms*100), func(b *testing.B) {
				mineBench(b, benchData2, mining.Config{MinSupport: ms}, alg.fn)
			})
		}
	}
}

// BenchmarkTable1Extraction measures the geometric pipeline behind
// Table 1: scene -> DE-9IM relate -> transactions.
func BenchmarkTable1Extraction(b *testing.B) {
	scene := dataset.PortoAlegreScene()
	for i := 0; i < b.N; i++ {
		if _, err := transact.Extract(scene, transact.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounting compares the two support-counting strategies
// (DESIGN.md ablation 1).
func BenchmarkCounting(b *testing.B) {
	benchSetup(b)
	for _, strat := range []struct {
		name string
		c    mining.CountingStrategy
	}{
		{"Vertical", mining.VerticalCounting},
		{"Horizontal", mining.HorizontalCounting},
	} {
		b.Run(strat.name, func(b *testing.B) {
			db := itemset.NewDB(benchData1)
			db.BuildTidsets()
			cfg := mining.Config{MinSupport: 0.10, Counting: strat.c}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mining.Apriori(db, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterPlacement compares the paper's apriori (k=2) filter
// placement against the aposteriori placement (DESIGN.md ablation 2):
// the aposteriori variant pays for mining the full lattice first.
func BenchmarkFilterPlacement(b *testing.B) {
	benchSetup(b)
	b.Run("AprioriPlacement", func(b *testing.B) {
		db := itemset.NewDB(benchData1)
		db.BuildTidsets()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mining.AprioriKCPlus(db, mining.Config{MinSupport: 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AposterioriPlacement", func(b *testing.B) {
		db := itemset.NewDB(benchData1)
		db.BuildTidsets()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mining.Apriori(db, mining.Config{MinSupport: 0.05})
			if err != nil {
				b.Fatal(err)
			}
			mining.FilterSameFeaturePost(res.Frequent, db.Dict)
		}
	})
}

// BenchmarkJoin compares the spatial-join candidate filters during
// predicate extraction (DESIGN.md ablation 3).
func BenchmarkJoin(b *testing.B) {
	benchSetup(b)
	for _, idx := range []struct {
		name string
		kind transact.IndexKind
	}{
		{"RTree", transact.RTreeIndex},
		{"Grid", transact.GridIndex},
		{"NestedLoop", transact.NoIndex},
	} {
		b.Run(idx.name, func(b *testing.B) {
			opts := transact.DefaultOptions()
			opts.Index = idx.kind
			for i := 0; i < b.N; i++ {
				if _, err := transact.Extract(benchScene, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSensitivitySamePairs quantifies the paper's closing remark
// ("the higher the number of ... meaningless combinations, the more
// efficient is Apriori-KC+") by mining vocabularies with increasing
// relations-per-feature-type (DESIGN.md ablation 4).
func BenchmarkSensitivitySamePairs(b *testing.B) {
	for _, rels := range []int{1, 2, 3, 4} {
		table := sensitivityTable(b, rels)
		b.Run(fmt.Sprintf("relationsPerType=%d", rels), func(b *testing.B) {
			mineBench(b, table, mining.Config{MinSupport: 0.10}, mining.AprioriKCPlus)
		})
	}
}

// sensitivityTable builds a synthetic table with 4 feature types and the
// given number of co-occurring relations per type.
func sensitivityTable(tb testing.TB, relationsPerType int) *dataset.Table {
	tb.Helper()
	relations := []string{"contains", "touches", "overlaps", "covers"}
	var preds []string
	probs := map[string]float64{}
	for _, ft := range []string{"slum", "school", "river", "market"} {
		for r := 0; r < relationsPerType; r++ {
			p := relations[r] + "_" + ft
			preds = append(preds, p)
			probs[p] = 0.5
		}
	}
	table, err := datagen.Generate(datagen.TransactionConfig{
		Rows:       500,
		Seed:       13,
		Predicates: preds,
		BaseProb:   0.05,
		Profiles:   []datagen.Profile{{Weight: 1, Probs: probs}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return table
}

// BenchmarkExperimentTable2 measures the full Table 2 report generation,
// covering the experiments harness itself.
func BenchmarkExperimentTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r, ok := experiments.ByID("table2"); !ok || len(r.Lines) == 0 {
			b.Fatal("experiment failed")
		}
	}
}

// BenchmarkScalingRows measures how KC+ mining scales with the number of
// reference objects (transactions) on the dataset 1 vocabulary.
func BenchmarkScalingRows(b *testing.B) {
	for _, rows := range []int{500, 2000, 8000} {
		table, err := datagen.PaperDataset1(datagen.DefaultSeed, rows)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			mineBench(b, table, mining.Config{MinSupport: 0.10}, mining.AprioriKCPlus)
		})
	}
}

// BenchmarkFPGrowthVsApriori contrasts the engines on the dense
// low-support end where tree projection and vertical diffsets pay off.
func BenchmarkFPGrowthVsApriori(b *testing.B) {
	benchSetup(b)
	b.Run("Apriori", func(b *testing.B) {
		mineBench(b, benchData1, mining.Config{MinSupport: 0.03}, mining.Apriori)
	})
	b.Run("FPGrowth", func(b *testing.B) {
		mineBench(b, benchData1, mining.Config{MinSupport: 0.03}, mining.FPGrowth)
	})
	b.Run("Eclat", func(b *testing.B) {
		mineBench(b, benchData1, mining.Config{MinSupport: 0.03}, mining.Eclat)
	})
}

// BenchmarkEclatParallelScaling measures the sharded equivalence-class
// walk across worker counts on a large generated dataset — the scaling
// series appended to BENCH_mining.json. Each top-level subtree is
// independent, so on multi-core hardware wall time drops with
// Parallelism; the frequent-sets metric pins output equivalence across
// all settings.
func BenchmarkEclatParallelScaling(b *testing.B) {
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, 8000)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			mineBench(b, table, mining.Config{MinSupport: 0.03, Parallelism: par}, mining.Eclat)
		})
	}
}

// supportBenchCandidates builds the sorted, prefix-sharing k=3 candidate
// stream (the aprioriGen output shape) over dataset 1's frequent items.
func supportBenchCandidates(b *testing.B, db *itemset.DB) []itemset.Itemset {
	b.Helper()
	counts := db.ItemCounts()
	var items []int32
	for id, c := range counts {
		if c >= 25 && len(items) < 16 {
			items = append(items, int32(id))
		}
	}
	if len(items) < 4 {
		b.Fatal("not enough frequent items for the support benchmark")
	}
	var cands []itemset.Itemset
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			for k := j + 1; k < len(items); k++ {
				cands = append(cands, itemset.Itemset{items[i], items[j], items[k]})
			}
		}
	}
	return cands
}

// BenchmarkSupportVerticalBaseline counts a sorted candidate stream with
// the per-call SupportVertical path (fresh intersection per candidate) —
// the pre-overhaul behaviour, kept as the comparison baseline for
// BenchmarkSupportVerticalPrefix.
func BenchmarkSupportVerticalBaseline(b *testing.B) {
	benchSetup(b)
	db := itemset.NewDB(benchData1)
	db.BuildTidsets()
	cands := supportBenchCandidates(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			db.SupportVertical(c)
		}
	}
	b.ReportMetric(float64(len(cands)), "candidates")
}

// BenchmarkSupportVerticalPrefix counts the same stream with the
// prefix-cached VerticalCounter: shared (k-1)-prefix intersections are
// reused and steady-state counting is allocation-free.
func BenchmarkSupportVerticalPrefix(b *testing.B) {
	benchSetup(b)
	db := itemset.NewDB(benchData1)
	db.BuildTidsets()
	cands := supportBenchCandidates(b, db)
	vc := db.NewVerticalCounter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			vc.Support(c)
		}
	}
	b.ReportMetric(float64(len(cands)), "candidates")
}
