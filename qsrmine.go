// Package qsrmine is a library for mining frequent spatial patterns from
// geographic data with qualitative spatial reasoning, reproducing
// Bogorny, Moelans & Alvares, "Filtering Frequent Spatial Patterns with
// Qualitative Spatial Reasoning" (ICDE 2007).
//
// The library covers the full pipeline of the paper:
//
//   - a planar geometry engine with DE-9IM topological reasoning
//     (Egenhofer & Franzosa 9-intersection relations), qualitative
//     distance and directional relations;
//   - spatial predicate extraction: reference objects (e.g. districts)
//     become transactions whose items are non-spatial attribute values and
//     qualitative spatial predicates against relevant feature types
//     ("contains_slum", "closeTo_policeCenter"), accelerated by an R-tree;
//   - frequent pattern mining with Apriori, Apriori-KC (background
//     knowledge dependency filtering), and Apriori-KC+ — the paper's
//     contribution, which additionally removes every candidate pair whose
//     predicates share a feature type, so that meaningless patterns like
//     {contains_slum, touches_slum} are never generated;
//   - association rule generation with standard interestingness measures,
//     closed/maximal post-filters, and the analytic gain bound of the
//     paper's Formula 1.
//
// Quick start:
//
//	scene := qsrmine.PortoAlegreScene()
//	out, err := qsrmine.Run(scene, qsrmine.Config{
//		Algorithm:  qsrmine.AprioriKCPlus,
//		MinSupport: 0.5,
//	})
//	for _, f := range out.Result.Frequent {
//		fmt.Println(f.Items.Format(out.DB.Dict), f.Support)
//	}
//
// See the examples directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package qsrmine

import (
	"repro/internal/colocation"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/de9im"
	"repro/internal/gain"
	"repro/internal/geom"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/qsr"
	"repro/internal/taxonomy"
	"repro/internal/transact"
)

// Geometry types. See the geom package documentation for details; these
// aliases are the supported public surface.
type (
	// Geometry is any planar geometry value.
	Geometry = geom.Geometry
	// Point is a single position (and a Geometry).
	Point = geom.Point
	// MultiPoint is a point collection.
	MultiPoint = geom.MultiPoint
	// LineString is a polyline.
	LineString = geom.LineString
	// MultiLineString is a polyline collection.
	MultiLineString = geom.MultiLineString
	// Polygon is an area with optional holes.
	Polygon = geom.Polygon
	// MultiPolygon is a polygon collection.
	MultiPolygon = geom.MultiPolygon
	// Envelope is an axis-aligned bounding box.
	Envelope = geom.Envelope
)

// Geometry constructors and helpers.
var (
	// Pt constructs a Point.
	Pt = geom.Pt
	// Line constructs a LineString from coordinates.
	Line = geom.Line
	// Poly constructs a hole-free Polygon from shell coordinates.
	Poly = geom.Poly
	// Rect constructs an axis-aligned rectangular Polygon.
	Rect = geom.Rect
	// ParseWKT parses well-known text.
	ParseWKT = geom.ParseWKT
	// MustParseWKT parses WKT and panics on error.
	MustParseWKT = geom.MustParseWKT
	// MarshalWKB encodes a geometry as well-known binary.
	MarshalWKB = geom.MarshalWKB
	// UnmarshalWKB decodes well-known binary.
	UnmarshalWKB = geom.UnmarshalWKB
	// ValidateGeometry checks structural validity.
	ValidateGeometry = geom.Validate
	// GeomDistance returns the minimal distance between two geometries.
	GeomDistance = geom.Distance
	// GeomIntersects reports whether two geometries share a point.
	GeomIntersects = geom.Intersects
)

// DE9IM is a computed 9-intersection matrix.
type DE9IM = de9im.Matrix

// PreparedGeometry caches derived structures (envelope, segment soup,
// sample points, an edge R-tree) for a geometry that takes part in many
// comparisons, e.g. one side of a spatial join. Build one with Prepare;
// it is immutable and safe for concurrent use.
type PreparedGeometry = geom.Prepared

var (
	// Relate computes the DE-9IM matrix of two geometries.
	Relate = de9im.Relate
	// Prepare builds the derived structures that accelerate repeated
	// relates, distances, and point locations against one geometry.
	Prepare = geom.Prepare
	// RelatePrepared computes the DE-9IM matrix from prepared operands;
	// the result is byte-identical to Relate on the raw geometries.
	RelatePrepared = de9im.RelatePrepared
)

// Qualitative relation vocabulary.
type (
	// Relation is a qualitative spatial relation (topological, distance,
	// or directional).
	Relation = qsr.Relation
	// Predicate couples a relation with a relevant feature type.
	Predicate = qsr.Predicate
	// DistanceThresholds cuts distances into veryCloseTo/closeTo/farFrom.
	DistanceThresholds = qsr.DistanceThresholds
)

// Topological relations (the canonical, mutually exclusive Egenhofer set).
const (
	Equals    = qsr.Equals
	Disjoint  = qsr.Disjoint
	Touches   = qsr.Touches
	Contains  = qsr.Contains
	Within    = qsr.Within
	Covers    = qsr.Covers
	CoveredBy = qsr.CoveredBy
	Crosses   = qsr.Crosses
	Overlaps  = qsr.Overlaps
	VeryClose = qsr.VeryClose
	CloseTo   = qsr.CloseTo
	FarFrom   = qsr.FarFrom
	NorthOf   = qsr.NorthOf
	SouthOf   = qsr.SouthOf
	EastOf    = qsr.EastOf
	WestOf    = qsr.WestOf
)

// Relation computations.
var (
	// Topological classifies the canonical topological relation.
	Topological = qsr.Topological
	// DistanceRelation classifies the qualitative distance.
	DistanceRelation = qsr.DistanceRelation
	// Directional classifies the dominant cardinal direction.
	Directional = qsr.Directional
	// TopologicalPrepared, DistanceRelationPrepared, and
	// DirectionalPrepared are the prepared-operand forms of the three
	// classifiers; they return exactly what the unprepared forms return.
	TopologicalPrepared      = qsr.TopologicalPrepared
	DistanceRelationPrepared = qsr.DistanceRelationPrepared
	DirectionalPrepared      = qsr.DirectionalPrepared
	// ParsePredicate parses "contains_slum" notation.
	ParsePredicate = qsr.ParsePredicate
)

// Spatial data model.
type (
	// Dataset is a mining input: a reference layer plus relevant layers.
	Dataset = dataset.Dataset
	// Layer is a homogeneous feature collection of one feature type.
	Layer = dataset.Layer
	// Feature is one spatial object with attributes.
	Feature = dataset.Feature
	// Value is a non-spatial attribute value (string or numeric), the
	// element type of Feature.Attrs and Op.Attrs.
	Value = dataset.Value
	// Table is a transaction table (the miner's direct input).
	Table = dataset.Table
	// Transaction is one row of a Table.
	Transaction = dataset.Transaction
	// Op is one dataset mutation (insert/update/delete of a feature).
	Op = dataset.Op
	// Mutation is an atomic batch of ops (the -mutate file format).
	Mutation = dataset.Mutation
	// ChangeSet is the structured diff between a dataset and its
	// mutated successor, as produced by Dataset.ApplyOps.
	ChangeSet = dataset.ChangeSet
	// LayerDiff is the per-layer slice of a ChangeSet.
	LayerDiff = dataset.LayerDiff
)

// Mutation op actions, the Op.Action values.
const (
	OpInsert = dataset.OpInsert
	OpUpdate = dataset.OpUpdate
	OpDelete = dataset.OpDelete
)

// Data model constructors and samples.
var (
	// NewLayer constructs an empty layer of a feature type.
	NewLayer = dataset.NewLayer
	// NewTable normalises raw transactions into a Table.
	NewTable = dataset.NewTable
	// LoadDataset reads a dataset from a JSON file (WKT geometries).
	LoadDataset = dataset.LoadJSON
	// LoadTable reads a transaction table from a CSV file.
	LoadTable = dataset.LoadTableCSV
	// ReadGeoJSONLayer parses a GeoJSON FeatureCollection into a layer.
	ReadGeoJSONLayer = dataset.ReadGeoJSON
	// LoadMutation reads a mutation batch ({"ops":[...]}) from a JSON
	// file.
	LoadMutation = dataset.LoadMutation
	// PortoAlegreTable is the paper's Table 1, verbatim.
	PortoAlegreTable = dataset.PortoAlegreTable
	// PortoAlegreScene is a geometric scene extracting to Table 1.
	PortoAlegreScene = dataset.PortoAlegreScene
	// Table2Reconstruction is the Table 2-consistent 6-district dataset.
	Table2Reconstruction = dataset.Table2Reconstruction
)

// Predicate extraction.
type (
	// ExtractOptions configures predicate extraction.
	ExtractOptions = transact.Options
	// Granularity selects type-level or instance-level predicates.
	Granularity = transact.Granularity
	// ExtractState is a reusable extraction state: a full extraction
	// that can absorb dataset mutations incrementally via Apply,
	// recomputing only the rows whose dirty region a change touches.
	ExtractState = transact.State
	// TableDelta describes what one Apply changed: the old→new row
	// mapping plus per-row item edits, with reuse counters.
	TableDelta = transact.TableDelta
)

// Extraction helpers.
var (
	// Extract computes the transaction table of a dataset.
	Extract = transact.Extract
	// ExtractContext is Extract with cancellation and tracing.
	ExtractContext = transact.ExtractContext
	// DefaultExtractOptions is topological extraction at type
	// granularity with R-tree acceleration.
	DefaultExtractOptions = transact.DefaultOptions
	// NewExtractState runs a full extraction and keeps the
	// intermediate structures for incremental re-extraction.
	NewExtractState = transact.NewState
	// NewExtractStateContext is NewExtractState with cancellation and
	// tracing.
	NewExtractStateContext = transact.NewStateContext
)

// Extraction granularities.
const (
	// TypeLevel names predicates by feature type ("contains_slum").
	TypeLevel = transact.TypeLevel
	// InstanceLevel names predicates by instance ("contains_slum159").
	InstanceLevel = transact.InstanceLevel
)

// Mining.
type (
	// Config parameterises a pipeline run. It round-trips through JSON
	// with deterministic encoding: enums use their textual names (the
	// same ones the CLI flags accept), the built-in discretizers encode
	// as a tagged union, and unknown fields or enum names are rejected
	// with a descriptive error. This is the wire format of the qsrmined
	// HTTP service and the canonical form its result cache keys on.
	Config = core.Config
	// Outcome bundles the pipeline products.
	Outcome = core.Outcome
	// Algorithm selects the mining variant.
	Algorithm = core.Algorithm
	// DependencyPair is one Φ entry (a well-known dependency).
	DependencyPair = mining.Pair
	// MiningResult is a mining result with pass statistics.
	MiningResult = mining.Result
	// FrequentItemset couples an itemset with its support count.
	FrequentItemset = mining.FrequentItemset
	// CountingStrategy selects how the Apriori engines count supports.
	CountingStrategy = mining.CountingStrategy
	// Rule is an association rule with interestingness measures.
	Rule = mining.Rule
	// Itemset is a set of interned items.
	Itemset = itemset.Itemset
	// Dictionary interns item strings and their semantics.
	Dictionary = itemset.Dictionary
	// DB is an interned transaction database.
	DB = itemset.DB
)

// Algorithms.
const (
	// Apriori is the unfiltered baseline.
	Apriori = core.AlgApriori
	// AprioriKC filters the dependency set Φ at pass k=2.
	AprioriKC = core.AlgAprioriKC
	// AprioriKCPlus additionally filters same-feature-type pairs — the
	// paper's contribution.
	AprioriKCPlus = core.AlgAprioriKCPlus
	// FPGrowthKCPlus mines the Apriori-KC+ pattern set with the
	// FP-growth engine.
	FPGrowthKCPlus = core.AlgFPGrowthKCPlus
	// EclatKCPlus mines the Apriori-KC+ pattern set with the vertical
	// Eclat engine (tidsets with dEclat diffset switching).
	EclatKCPlus = core.AlgEclatKCPlus
)

// Counting strategies.
const (
	// VerticalCounting intersects per-item row bitmaps (the default).
	VerticalCounting = mining.VerticalCounting
	// HorizontalCounting scans transactions per candidate as Listing 1
	// of the paper does (Apriori engines only; the Eclat engine rejects
	// it).
	HorizontalCounting = mining.HorizontalCounting
)

// Post filters (the paper's future-work redundancy elimination).
const (
	// NoPostFilter keeps all frequent itemsets.
	NoPostFilter = core.NoPostFilter
	// ClosedFilter keeps only closed itemsets.
	ClosedFilter = core.ClosedFilter
	// MaximalFilter keeps only maximal itemsets.
	MaximalFilter = core.MaximalFilter
)

// Pipeline entry points and mining helpers.
var (
	// Run executes extraction + mining (+ rules) on a dataset.
	Run = core.Run
	// RunContext is Run honouring context cancellation/deadlines and
	// emitting observability events (see NewTrace / WithTrace).
	RunContext = core.RunContext
	// RunTable executes mining (+ rules) on a transaction table.
	RunTable = core.RunTable
	// RunTableContext is RunTable with cancellation and tracing.
	RunTableContext = core.RunTableContext
	// ParseAlgorithm parses "apriori", "apriori-kc", "apriori-kc+".
	ParseAlgorithm = core.ParseAlgorithm
	// ParsePostFilter parses "none", "closed", "maximal".
	ParsePostFilter = core.ParsePostFilter
	// GenerateRules derives association rules from a mining result.
	GenerateRules = mining.GenerateRules
	// ClosedOnly filters to closed itemsets.
	ClosedOnly = mining.ClosedOnly
	// MaximalOnly filters to maximal itemsets.
	MaximalOnly = mining.MaximalOnly
	// NonRedundantRules drops rules implied by more general equal-quality
	// rules.
	NonRedundantRules = mining.NonRedundantRules
	// MineTopK mines the k best-supported itemsets without a threshold.
	MineTopK = mining.MineTopK
	// ProfileTable summarises a table's predicate statistics.
	ProfileTable = transact.Profile
)

// Spatial co-location mining: prevalent feature-type sets under a
// neighborhood distance, measured by the anti-monotone participation
// index — the sibling workload to the reference-feature transaction
// pipeline (every layer a peer type, no extraction, no transactions).
type (
	// ColocationConfig parameterises a co-location run (distance, minPI,
	// optional maxSize, parallelism, engine, and topK); its JSON form is
	// the wire configuration of POST /v1/colocate.
	ColocationConfig = colocation.Config
	// ColocationEngine selects the candidate-evaluation strategy
	// (joinless or clique); both return identical results.
	ColocationEngine = colocation.Engine
	// ColocationResult is a co-location run's output.
	ColocationResult = colocation.Result
	// ColocationPattern is one prevalent co-location.
	ColocationPattern = colocation.Pattern
)

// Co-location engines.
const (
	// ColocationJoinless screens candidates with the star-participation
	// upper bound before materializing row instances (the default).
	ColocationJoinless = colocation.EngineJoinless
	// ColocationClique materializes every candidate's row table.
	ColocationClique = colocation.EngineClique
)

var (
	// Colocate mines co-location patterns over a dataset's layers.
	Colocate = mining.Colocation
	// ColocateContext is Colocate with cancellation and tracing.
	ColocateContext = mining.ColocationContext
	// ColocateBruteForce is the exhaustive oracle the engine is
	// cross-checked against.
	ColocateBruteForce = colocation.MineBruteForce
	// ParseColocationConfig strictly decodes a JSON co-location config.
	ParseColocationConfig = colocation.ParseConfig
)

// Gain analysis (the paper's Formula 1).
var (
	// MinGain is the minimal number of itemsets the same-feature filter
	// eliminates, from the largest itemset's composition.
	MinGain = gain.MinGain
	// GainTable3 regenerates the paper's Table 3 grid.
	GainTable3 = gain.Table3
	// TotalLowerBound is the sum-of-binomials bound of Section 4.1.
	TotalLowerBound = gain.TotalLowerBound
)

// Observability: stage tracing, pass metrics, and counters for
// context-aware pipeline runs. Attach a Trace to a context with
// WithTrace and pass it to RunContext/RunTableContext/ExtractContext.
type (
	// Trace is the per-run observability handle (nil is a valid no-op).
	Trace = obs.Trace
	// TraceSink receives trace events; see NewTraceCollector,
	// NewTextTraceSink, NewJSONTraceSink.
	TraceSink = obs.Sink
	// TraceEvent is one observation (stage begin/end or mining pass).
	TraceEvent = obs.Event
	// TraceCollector retains events in memory with typed views.
	TraceCollector = obs.Collector
	// PassEvent carries one mining pass's candidate/pruned/frequent
	// counts.
	PassEvent = obs.PassEvent
	// StageRecord is one completed pipeline stage with its wall time.
	StageRecord = obs.StageRecord
	// TraceMetrics is the machine-readable summary of a traced run.
	TraceMetrics = obs.Metrics
)

// Observability constructors and helpers.
var (
	// NewTrace creates a Trace emitting to a sink (nil sink: counters
	// only).
	NewTrace = obs.New
	// WithTrace attaches a Trace to a context.
	WithTrace = obs.WithTrace
	// TraceFromContext recovers the attached Trace (nil when absent).
	TraceFromContext = obs.FromContext
	// NewTraceCollector creates an in-memory event collector.
	NewTraceCollector = obs.NewCollector
	// NewTextTraceSink streams human-readable trace lines to a writer.
	NewTextTraceSink = obs.NewTextSink
	// NewJSONTraceSink streams NDJSON trace events to a writer.
	NewJSONTraceSink = obs.NewJSONSink
	// MultiTraceSink fans events out to several sinks.
	MultiTraceSink = obs.Multi
	// FormatTraceCounters renders a counter snapshot as sorted lines.
	FormatTraceCounters = obs.FormatCounters
)

// Interestingness measures (the transactional filtering approach the
// paper contrasts with).
type Measure = mining.Measure

// Measure evaluation helpers.
var (
	// EvaluateMeasure computes a measure for a rule against a result.
	EvaluateMeasure = mining.Evaluate
	// RankRules orders rules by a measure, descending.
	RankRules = mining.RankRules
	// AllMeasures lists the supported measures.
	AllMeasures = mining.AllMeasures
)

// RCC8 qualitative spatial reasoning (region connection calculus).
type (
	// RCC8 is a base relation of the region connection calculus.
	RCC8 = qsr.RCC8
	// RCC8Set is a disjunction of RCC8 base relations.
	RCC8Set = qsr.RCC8Set
	// RCC8Network is a constraint network with a path-consistency solver.
	RCC8Network = qsr.Network
)

// Taxonomy is a feature-type concept hierarchy for multi-level mining
// (the paper's "general granularity levels").
type Taxonomy = taxonomy.Hierarchy

// Taxonomy helpers.
var (
	// NewTaxonomy creates an empty feature-type hierarchy.
	NewTaxonomy = taxonomy.NewHierarchy
	// GeneralizeTable rewrites a table's spatial predicates to a
	// granularity level of the hierarchy.
	GeneralizeTable = taxonomy.GeneralizeTable
)

// RCC8 helpers.
var (
	// RCC8Of classifies two region geometries into RCC8.
	RCC8Of = qsr.RCC8Of
	// ComposeRCC8 returns the composition-table entry of two relations.
	ComposeRCC8 = qsr.Compose
	// NewRCC8Network creates an unconstrained constraint network.
	NewRCC8Network = qsr.NewNetwork
	// RCC8NetworkFromScene observes the network of a set of regions.
	RCC8NetworkFromScene = qsr.NetworkFromScene
)
