// Command experiments reproduces every table and figure of the paper's
// evaluation, printing paper-versus-measured rows.
//
// Usage:
//
//	experiments              # run everything in paper order
//	experiments -run table2  # run one experiment
//	experiments -list        # list experiment identifiers
//	experiments -timing      # append per-stage wall time and a summary
//	experiments -bench-json BENCH_mining.json   # machine-readable mining benchmarks
//	experiments -bench-extract-json BENCH_extract.json   # spatial-join extraction benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment identifier to run (default: all)")
	list := flag.Bool("list", false, "list available experiment identifiers")
	timing := flag.Bool("timing", false, "print per-experiment wall time and a timing summary")
	benchJSON := flag.String("bench-json", "", "measure the Figure 4-7 mining workloads and write JSON results (ns/op, allocs/op, pass stats) to this file, then exit")
	benchExtractJSON := flag.String("bench-extract-json", "", "measure the spatial-join extraction workloads (per-pair relate and whole-scene extraction, prepared vs unprepared) and write JSON results to this file, then exit")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *benchExtractJSON != "" {
		if err := writeExtractBenchJSON(*benchExtractJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run != "" {
		if _, ok := experiments.ByID(*run); !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		runOne(*run, *timing)
		return
	}
	// Run stage by stage (rather than experiments.All at once) so each
	// stage's wall time is attributable.
	var total time.Duration
	var lines []string
	for _, id := range experiments.IDs() {
		elapsed := runOne(id, *timing)
		total += elapsed
		lines = append(lines, fmt.Sprintf("  %-12s %12v", id, elapsed.Round(time.Microsecond)))
		fmt.Println()
	}
	if *timing {
		fmt.Println("== timing: per-stage wall time ==")
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("  %-12s %12v\n", "total", total.Round(time.Microsecond))
	}
}

// writeBenchJSON measures the mining workloads and writes the results
// to path ("-" for stdout).
func writeBenchJSON(path string) error {
	if path == "-" {
		return experiments.WriteMiningBenchJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteMiningBenchJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExtractBenchJSON measures the spatial-join extraction workloads
// and writes the results to path ("-" for stdout).
func writeExtractBenchJSON(path string) error {
	if path == "-" {
		return experiments.WriteExtractBenchJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteExtractBenchJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runOne executes and prints one experiment, returning its wall time.
func runOne(id string, timing bool) time.Duration {
	start := time.Now()
	report, _ := experiments.ByID(id)
	elapsed := time.Since(start)
	fmt.Print(report.Format())
	if timing {
		fmt.Printf("-- stage %s: %v --\n", id, elapsed.Round(time.Microsecond))
	}
	return elapsed
}
