// Command experiments reproduces every table and figure of the paper's
// evaluation, printing paper-versus-measured rows.
//
// Usage:
//
//	experiments              # run everything in paper order
//	experiments -run table2  # run one experiment
//	experiments -list        # list experiment identifiers
//	experiments -timing      # append per-stage wall time and a summary
//	experiments -bench-json BENCH_mining.json   # machine-readable mining benchmarks
//	experiments -bench-extract-json BENCH_extract.json   # spatial-join extraction benchmarks
//	experiments -bench-incremental-json BENCH_incremental.json   # delta vs from-scratch re-extraction
//	experiments -bench-colocation-json BENCH_colocation.json   # co-location mining workloads
//	experiments -bench-diff .                   # perf gate: re-measure vs committed baselines
//	experiments -bench-diff . -update-baseline  # refresh the committed baselines
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment identifier to run (default: all)")
	list := flag.Bool("list", false, "list available experiment identifiers")
	timing := flag.Bool("timing", false, "print per-experiment wall time and a timing summary")
	benchJSON := flag.String("bench-json", "", "measure the Figure 4-7 mining workloads and write JSON results (ns/op, allocs/op, pass stats) to this file, then exit")
	benchExtractJSON := flag.String("bench-extract-json", "", "measure the spatial-join extraction workloads (per-pair relate and whole-scene extraction, prepared vs unprepared) and write JSON results to this file, then exit")
	benchIncrementalJSON := flag.String("bench-incremental-json", "", "measure incremental re-extraction against from-scratch extraction over deterministic mutation chains and write JSON results to this file, then exit")
	benchColocationJSON := flag.String("bench-colocation-json", "", "measure the co-location mining workloads (scene shape x engine x parallelism) and write JSON results to this file, then exit")
	benchDiff := flag.String("bench-diff", "", "re-measure the mining, extraction, and co-location workloads and compare ns/op against the committed baselines (BENCH_mining.json, BENCH_extract.json, BENCH_colocation.json) in this directory; exit 1 when a workload regresses beyond the tolerance or disappears")
	updateBaseline := flag.Bool("update-baseline", false, "with -bench-diff: rewrite the baseline files from the fresh measurements instead of comparing")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeTo(*benchJSON, experiments.WriteMiningBenchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *benchExtractJSON != "" {
		if err := writeTo(*benchExtractJSON, experiments.WriteExtractBenchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *benchIncrementalJSON != "" {
		if err := writeTo(*benchIncrementalJSON, experiments.WriteIncrementalBenchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *benchColocationJSON != "" {
		if err := writeTo(*benchColocationJSON, experiments.WriteColocationBenchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *benchDiff != "" {
		if err := runBenchDiff(*benchDiff, *updateBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run != "" {
		if _, ok := experiments.ByID(*run); !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		runOne(*run, *timing)
		return
	}
	// Run stage by stage (rather than experiments.All at once) so each
	// stage's wall time is attributable.
	var total time.Duration
	var lines []string
	for _, id := range experiments.IDs() {
		elapsed := runOne(id, *timing)
		total += elapsed
		lines = append(lines, fmt.Sprintf("  %-12s %12v", id, elapsed.Round(time.Microsecond)))
		fmt.Println()
	}
	if *timing {
		fmt.Println("== timing: per-stage wall time ==")
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("  %-12s %12v\n", "total", total.Round(time.Microsecond))
	}
}

// writeTo runs one benchmark emitter and writes its output to path
// ("-" for stdout).
func writeTo(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runBenchDiff is the perf regression gate: re-measure each suite,
// compare against the committed baseline in dir, and fail on any
// regression beyond experiments.DiffTolerance or any workload the
// fresh run lost. With update set, rewrite the baselines instead.
func runBenchDiff(dir string, update bool) error {
	suites := []struct {
		file string
		emit func(io.Writer) error
	}{
		{"BENCH_mining.json", experiments.WriteMiningBenchJSON},
		{"BENCH_extract.json", experiments.WriteExtractBenchJSON},
		{"BENCH_colocation.json", experiments.WriteColocationBenchJSON},
	}
	failed := false
	for _, s := range suites {
		var buf bytes.Buffer
		if err := s.emit(&buf); err != nil {
			return fmt.Errorf("%s: %w", s.file, err)
		}
		path := filepath.Join(dir, s.file)
		if update {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				return err
			}
			fmt.Printf("updated %s\n", path)
			continue
		}
		findings, err := experiments.BenchDiff(path, buf.Bytes())
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n", s.file)
		if experiments.FormatDiff(os.Stdout, findings) {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("bench diff: regression beyond %.0f%% tolerance (rerun on a quiet machine, or refresh with -bench-diff %s -update-baseline if the change is intended)",
			experiments.DiffTolerance*100, dir)
	}
	return nil
}

// runOne executes and prints one experiment, returning its wall time.
func runOne(id string, timing bool) time.Duration {
	start := time.Now()
	report, _ := experiments.ByID(id)
	elapsed := time.Since(start)
	fmt.Print(report.Format())
	if timing {
		fmt.Printf("-- stage %s: %v --\n", id, elapsed.Round(time.Microsecond))
	}
	return elapsed
}
