// Command experiments reproduces every table and figure of the paper's
// evaluation, printing paper-versus-measured rows.
//
// Usage:
//
//	experiments              # run everything in paper order
//	experiments -run table2  # run one experiment
//	experiments -list        # list experiment identifiers
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment identifier to run (default: all)")
	list := flag.Bool("list", false, "list available experiment identifiers")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run != "" {
		report, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		fmt.Print(report.Format())
		return
	}
	for _, report := range experiments.All() {
		fmt.Print(report.Format())
		fmt.Println()
	}
}
