package main

import "testing"

func TestParseGrid(t *testing.T) {
	w, h, err := parseGrid("10x20")
	if err != nil || w != 10 || h != 20 {
		t.Errorf("parseGrid = %d, %d, %v", w, h, err)
	}
	// Upper-case separator accepted.
	w, h, err = parseGrid("3X4")
	if err != nil || w != 3 || h != 4 {
		t.Errorf("parseGrid upper = %d, %d, %v", w, h, err)
	}
	for _, bad := range []string{"", "10", "x10", "10x", "axb"} {
		if _, _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) should fail", bad)
		}
	}
}
