// Command spatialgen generates synthetic spatial mining inputs: the
// paper's two experiment transaction tables, or a full geometric scene
// (districts, slums, schools, rivers, ...) as a dataset JSON file.
//
// Usage:
//
//	spatialgen -kind dataset1 -rows 1000 -seed 2007 -out d1.csv
//	spatialgen -kind dataset2 -rows 1000 > d2.csv
//	spatialgen -kind scene -grid 20x20 -seed 7 -out city.json
//	spatialgen -colocate -clusters 20 -noise 10 -seed 7 -out coloc.json
//
// -colocate generates a clustered multi-feature-type point scene with
// planted co-location patterns: sites where the planted type sets
// co-occur within -spread of each other, plus uniform noise. At a
// mining distance >= 2*spread the planted sets are prevalent — the
// workload the co-location oracle and property tests sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spatialgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind     = flag.String("kind", "dataset1", "what to generate: dataset1, dataset2, scene")
		rows     = flag.Int("rows", datagen.DefaultRows, "transaction count (dataset1/dataset2)")
		seed     = flag.Int64("seed", datagen.DefaultSeed, "generator seed")
		grid     = flag.String("grid", "10x10", "district grid for -kind scene (WxH)")
		colocate = flag.Bool("colocate", false, "generate a clustered point scene with planted co-location patterns")
		types    = flag.String("types", "", "comma-separated feature type names (-colocate; default: the built-in four)")
		clusters = flag.Int("clusters", 12, "planted cluster sites (-colocate)")
		noise    = flag.Int("noise", 6, "uniform noise instances per type (-colocate)")
		extent   = flag.Float64("extent", 100, "world side length (-colocate)")
		spread   = flag.Float64("spread", 0.5, "max member offset from a cluster site (-colocate)")
		outPath  = flag.String("out", "", "output file (default: stdout)")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	if *colocate {
		cfg := datagen.DefaultColocationScene(*seed)
		cfg.Clusters = *clusters
		cfg.Noise = *noise
		cfg.Extent = *extent
		cfg.ClusterSpread = *spread
		if *types != "" {
			cfg.Types = strings.Split(*types, ",")
			cfg.Planted = nil // plant the full custom type set at every site
		}
		scene, err := datagen.GenerateColocationScene(cfg)
		if err != nil {
			return err
		}
		return scene.WriteJSON(out)
	}
	switch *kind {
	case "dataset1":
		table, err := datagen.PaperDataset1(*seed, *rows)
		if err != nil {
			return err
		}
		return table.WriteTableCSV(out)
	case "dataset2":
		table, err := datagen.PaperDataset2(*seed, *rows)
		if err != nil {
			return err
		}
		return table.WriteTableCSV(out)
	case "scene":
		w, h, err := parseGrid(*grid)
		if err != nil {
			return err
		}
		scene, err := datagen.GenerateScene(datagen.DefaultScene(w, h, *seed))
		if err != nil {
			return err
		}
		return scene.WriteJSON(out)
	}
	return fmt.Errorf("unknown kind %q (want dataset1, dataset2, or scene)", *kind)
}

// parseGrid parses "WxH".
func parseGrid(s string) (w, h int, err error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad grid %q (want WxH)", s)
	}
	w, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid width %q", parts[0])
	}
	h, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid height %q", parts[1])
	}
	return w, h, nil
}
