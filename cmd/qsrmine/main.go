// Command qsrmine mines frequent spatial patterns from a geographic
// dataset file (JSON with WKT geometries; see dataset.WriteJSON) or from
// the built-in Porto Alegre sample.
//
// Usage:
//
//	qsrmine -sample -minsup 0.5 -alg apriori-kc+
//	qsrmine -data city.json -minsup 0.1 -alg apriori -rules -minconf 0.7
//	qsrmine -table transactions.csv -minsup 0.05
//	qsrmine -data city.json -deps "contains_street:contains_illuminationPoint,..."
//	qsrmine -data city.json -alg eclat -parallelism 8   # shard the mining fan-out
//	qsrmine -data city.json -mutate edits.json          # apply edits, re-extract incrementally
//	qsrmine -data city.json -colocate -dist 2 -minpi 0.4   # co-location mining (participation index)
//	qsrmine -sample -trace                  # per-stage wall time + per-pass counts
//	qsrmine -sample -json-metrics           # machine-readable stage/pass metrics
//	qsrmine -data city.json -timeout 30s    # abort runaway low-support runs
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	qsrmine "repro"
	"repro/internal/buildinfo"
	"repro/internal/mining"
)

// errUsage marks command-line parse failures; the FlagSet has already
// printed the message and usage to stderr, so main only sets the
// conventional exit code 2.
var errUsage = errors.New("bad command line")

func main() {
	// Errors (including bad flag combinations) go to stderr and exit
	// non-zero; stdout carries only mining results.
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "qsrmine:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qsrmine", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath  = fs.String("data", "", "dataset JSON file (WKT geometries)")
		mutate    = fs.String("mutate", "", `mutation JSON file ({"ops":[...]}) applied to the scene before mining via incremental re-extraction`)
		tablePath = fs.String("table", "", "transaction table CSV file (refID,item,item,...)")
		sample    = fs.Bool("sample", false, "use the built-in Porto Alegre sample scene")
		minsup    = fs.Float64("minsup", 0.5, "relative minimum support in (0, 1]")
		depsFlag  = fs.String("deps", "", "dependency pairs Φ: a:b,c:d,... (item names)")
		rules     = fs.Bool("rules", false, "generate association rules")
		minconf   = fs.Float64("minconf", 0.7, "minimum rule confidence")
		maxShow   = fs.Int("top", 30, "maximum itemsets/rules to print (0 = all)")
		closed    = fs.Bool("closed", false, "keep only closed frequent itemsets")
		maximal   = fs.Bool("maximal", false, "keep only maximal frequent itemsets")
		format    = fs.String("format", "text", "output format: text or json")
		profile   = fs.Bool("profile", false, "print the transaction-table profile before mining")
		trace     = fs.Bool("trace", false, "stream per-stage wall time and per-pass counts to stderr")
		jsonMet   = fs.Bool("json-metrics", false, "print stage/pass/counter metrics as JSON after the results")
		timeout   = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		parallel  = fs.Int("parallelism", 0, "mining worker fan-out for all engines (apriori counting pool, eclat walk, co-location candidate expansion): 1 = sequential, 0 = GOMAXPROCS")
		colocate  = fs.Bool("colocate", false, "mine spatial co-location patterns (prevalent feature-type sets under -dist, measured by the participation index) instead of transaction itemsets")
		dist      = fs.Float64("dist", 1.0, "co-location neighborhood distance threshold (-colocate)")
		minPI     = fs.Float64("minpi", 0.3, "minimum participation index in (0, 1] (-colocate)")
		colocMax  = fs.Int("coloc-maxsize", 0, "largest co-location size to mine, 0 = unlimited (-colocate)")
		colocEng  = fs.String("coloc-engine", "joinless", "co-location candidate engine: joinless (star-neighborhood upper-bound prune) or clique; results are identical (-colocate)")
		colocTopK = fs.Int("coloc-topk", 0, "keep only the k highest-PI prevalent co-locations, 0 = all (-colocate)")
		version   = fs.Bool("version", false, "print version and exit")
	)
	// Algorithm and PostFilter implement encoding.TextMarshaler /
	// TextUnmarshaler, so the flag package parses and prints them
	// directly.
	alg := qsrmine.AprioriKCPlus
	fs.TextVar(&alg, "alg", alg, "algorithm: apriori, apriori-kc, apriori-kc+, fpgrowth-kc+, eclat-kc+")
	postFilter := qsrmine.NoPostFilter
	fs.TextVar(&postFilter, "postfilter", postFilter, "post filter: none, closed, maximal")
	counting := qsrmine.VerticalCounting
	fs.TextVar(&counting, "counting", counting, "support counting strategy: vertical or horizontal (apriori engines only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if *version {
		fmt.Fprintln(stdout, "qsrmine", buildinfo.String())
		return nil
	}

	deps, err := parseDeps(*depsFlag)
	if err != nil {
		return err
	}
	cfg := qsrmine.Config{
		Algorithm:     alg,
		MinSupport:    *minsup,
		Dependencies:  deps,
		GenerateRules: *rules,
		MinConfidence: *minconf,
		PostFilter:    postFilter,
		Counting:      counting,
		Parallelism:   *parallel,
	}
	switch {
	case *closed && *maximal:
		return fmt.Errorf("choose at most one of -closed and -maximal")
	case *closed:
		cfg.PostFilter = qsrmine.ClosedFilter
	case *maximal:
		cfg.PostFilter = qsrmine.MaximalFilter
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var (
		tr        *qsrmine.Trace
		collector *qsrmine.TraceCollector
	)
	if *trace || *jsonMet {
		var sinks []qsrmine.TraceSink
		if *trace {
			sinks = append(sinks, qsrmine.NewTextTraceSink(stderr))
		}
		if *jsonMet {
			collector = qsrmine.NewTraceCollector()
			sinks = append(sinks, collector)
		}
		tr = qsrmine.NewTrace(qsrmine.MultiTraceSink(sinks...))
		ctx = qsrmine.WithTrace(ctx, tr)
	}

	var out *qsrmine.Outcome
	switch {
	case *sample, *dataPath != "":
		var ds *qsrmine.Dataset
		if *sample {
			ds = qsrmine.PortoAlegreScene()
		} else {
			if ds, err = qsrmine.LoadDataset(*dataPath); err != nil {
				return err
			}
		}
		if *colocate {
			if *mutate != "" {
				return fmt.Errorf("-colocate and -mutate are mutually exclusive")
			}
			ccfg := qsrmine.ColocationConfig{
				Distance:    *dist,
				MinPI:       *minPI,
				MaxSize:     *colocMax,
				Parallelism: *parallel,
				Engine:      qsrmine.ColocationEngine(*colocEng),
				TopK:        *colocTopK,
			}
			if err := runColocate(ctx, stdout, stderr, ds, ccfg, *format, *maxShow, *trace, collector, tr); err != nil {
				return err
			}
			return nil
		}
		if *mutate != "" {
			out, err = runMutated(ctx, ds, *mutate, cfg)
		} else {
			out, err = qsrmine.RunContext(ctx, ds, cfg)
		}
	case *tablePath != "":
		if *mutate != "" {
			return fmt.Errorf("-mutate needs a geometric scene (-data or -sample), not -table")
		}
		if *colocate {
			return fmt.Errorf("-colocate needs a geometric scene (-data or -sample), not -table")
		}
		table, loadErr := qsrmine.LoadTable(*tablePath)
		if loadErr != nil {
			return loadErr
		}
		out, err = qsrmine.RunTableContext(ctx, table, cfg)
	default:
		return fmt.Errorf("provide -data FILE, -table FILE, or -sample")
	}
	if err != nil {
		return err
	}
	if *trace {
		fmt.Fprint(stderr, qsrmine.FormatTraceCounters(tr.Counters()))
	}
	if *profile && *format != "json" {
		fmt.Fprintln(stdout, "-- table profile --")
		fmt.Fprint(stdout, qsrmine.ProfileTable(out.Table).Format())
		fmt.Fprintln(stdout)
	}
	if *format == "json" {
		if err := writeJSON(stdout, alg.String(), out, *rules); err != nil {
			return err
		}
		return writeMetrics(stdout, collector, tr)
	}
	if *format != "text" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	res := out.Result
	fmt.Fprintf(stdout, "algorithm:            %s\n", alg)
	fmt.Fprintf(stdout, "transactions:         %d\n", res.NumTransactions)
	fmt.Fprintf(stdout, "minimum support:      %.1f%% (count %d)\n", *minsup*100, res.MinSupportCount)
	fmt.Fprintf(stdout, "frequent itemsets:    %d (size >= 2: %d, largest %d)\n",
		len(res.Frequent), res.NumFrequent(2), res.MaxLen())
	fmt.Fprintf(stdout, "pruned dependencies:  %d\n", res.PrunedDeps)
	fmt.Fprintf(stdout, "pruned same-feature:  %d\n", res.PrunedSameFeature)
	fmt.Fprintf(stdout, "mining time:          %v\n", res.Duration)
	fmt.Fprintln(stdout)

	shown := 0
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		if *maxShow > 0 && shown >= *maxShow {
			fmt.Fprintf(stdout, "... (%d more)\n", res.NumFrequent(2)-shown)
			break
		}
		fmt.Fprintf(stdout, "  %-70s support %d\n", f.Items.Format(out.DB.Dict), f.Support)
		shown++
	}

	if *rules {
		fmt.Fprintf(stdout, "\nassociation rules (confidence >= %.0f%%): %d\n", *minconf*100, len(out.Rules))
		for i, r := range out.Rules {
			if *maxShow > 0 && i >= *maxShow {
				fmt.Fprintf(stdout, "... (%d more)\n", len(out.Rules)-i)
				break
			}
			fmt.Fprintf(stdout, "  %-70s conf %.2f lift %.2f sup %.2f\n",
				r.Format(out.DB.Dict), r.Confidence, r.Lift, r.Support)
		}
	}
	return writeMetrics(stdout, collector, tr)
}

// runColocate is the -colocate mode: co-location mining over the
// scene's layers, with the same text/json output split and metrics
// plumbing as transaction mining.
func runColocate(ctx context.Context, stdout, stderr io.Writer, ds *qsrmine.Dataset, cfg qsrmine.ColocationConfig, format string, maxShow int, trace bool, collector *qsrmine.TraceCollector, tr *qsrmine.Trace) error {
	res, err := qsrmine.ColocateContext(ctx, ds, cfg)
	if err != nil {
		return err
	}
	if trace {
		fmt.Fprint(stderr, qsrmine.FormatTraceCounters(tr.Counters()))
	}
	switch format {
	case "json":
		if err := writeColocateJSON(stdout, res); err != nil {
			return err
		}
		return writeMetrics(stdout, collector, tr)
	case "text":
	default:
		return fmt.Errorf("unknown format %q (want text or json)", format)
	}
	fmt.Fprintf(stdout, "co-location mining:    distance %v, min PI %v\n", res.Distance, res.MinPI)
	fmt.Fprintf(stdout, "feature types:         %d (%d instances)\n", len(res.Types), res.Instances)
	fmt.Fprintf(stdout, "neighbor pairs:        %d candidates -> %d within distance\n", res.CandidatePairs, res.RefinedPairs)
	fmt.Fprintf(stdout, "prevalent patterns:    %d (of %d candidate sets)\n", len(res.Prevalent), res.Candidates)
	fmt.Fprintf(stdout, "mining time:           %v\n", res.Duration)
	fmt.Fprintln(stdout)
	for i, p := range res.Prevalent {
		if maxShow > 0 && i >= maxShow {
			fmt.Fprintf(stdout, "... (%d more)\n", len(res.Prevalent)-i)
			break
		}
		fmt.Fprintf(stdout, "  {%s}%*s PI %.3f  rows %d\n",
			strings.Join(p.Types, ", "), max(1, 50-len(strings.Join(p.Types, ", "))), "", p.PI, p.Rows)
	}
	return writeMetrics(stdout, collector, tr)
}

// colocJSONOutput is the -colocate machine-readable schema; its
// prevalent entries use the same field names as the /v1/colocate wire
// form, so CLI and daemon output compare directly.
type colocJSONOutput struct {
	Distance       float64         `json:"distance"`
	MinPI          float64         `json:"minPI"`
	Types          []string        `json:"types"`
	Instances      int             `json:"instances"`
	CandidatePairs int64           `json:"candidatePairs"`
	RefinedPairs   int64           `json:"refinedPairs"`
	DurationMicros int64           `json:"miningMicros"`
	Prevalent      []colocJSONItem `json:"prevalent"`
}

type colocJSONItem struct {
	Types              []string `json:"types"`
	ParticipationIndex float64  `json:"participationIndex"`
	RowInstances       int      `json:"rowInstances"`
}

func writeColocateJSON(w io.Writer, res *qsrmine.ColocationResult) error {
	jo := colocJSONOutput{
		Distance:       res.Distance,
		MinPI:          res.MinPI,
		Types:          res.Types,
		Instances:      res.Instances,
		CandidatePairs: res.CandidatePairs,
		RefinedPairs:   res.RefinedPairs,
		DurationMicros: res.Duration.Microseconds(),
		Prevalent:      make([]colocJSONItem, 0, len(res.Prevalent)),
	}
	for _, p := range res.Prevalent {
		jo.Prevalent = append(jo.Prevalent, colocJSONItem{
			Types:              p.Types,
			ParticipationIndex: p.PI,
			RowInstances:       p.Rows,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jo)
}

// runMutated applies the -mutate file to the scene and mines the
// successor through the incremental path: a full extraction of the
// original dataset builds an ExtractState, Apply re-extracts only the
// rows whose dirty region the edits touch (visible as delta.* counters
// under -trace / -json-metrics), and mining runs on the patched table.
func runMutated(ctx context.Context, ds *qsrmine.Dataset, path string, cfg qsrmine.Config) (*qsrmine.Outcome, error) {
	m, err := qsrmine.LoadMutation(path)
	if err != nil {
		return nil, err
	}
	opts := cfg.Extraction
	if opts.IsZero() {
		opts = qsrmine.DefaultExtractOptions()
	}
	st, err := qsrmine.NewExtractStateContext(ctx, ds, opts)
	if err != nil {
		return nil, err
	}
	nd, cs, err := ds.ApplyOps(m.Ops)
	if err != nil {
		return nil, err
	}
	if _, err := st.Apply(ctx, nd, cs); err != nil {
		return nil, err
	}
	return qsrmine.RunTableContext(ctx, st.Table(), cfg)
}

// writeMetrics prints the collected stage/pass/counter metrics as one
// JSON document; a nil collector (no -json-metrics) is a no-op.
func writeMetrics(w io.Writer, collector *qsrmine.TraceCollector, tr *qsrmine.Trace) error {
	if collector == nil {
		return nil
	}
	return collector.WriteJSON(w, tr)
}

// parseDeps parses "a:b,c:d" into Φ pairs (":" separates the pair so
// that "attr=value" item names stay unambiguous).
func parseDeps(s string) ([]mining.Pair, error) {
	if s == "" {
		return nil, nil
	}
	var deps []mining.Pair
	for _, part := range strings.Split(s, ",") {
		ab := strings.SplitN(part, ":", 2)
		if len(ab) != 2 || ab[0] == "" || ab[1] == "" {
			return nil, fmt.Errorf("bad dependency %q (want itemA:itemB)", part)
		}
		deps = append(deps, mining.Pair{A: ab[0], B: ab[1]})
	}
	return deps, nil
}

// jsonOutput is the machine-readable result schema.
type jsonOutput struct {
	Algorithm         string        `json:"algorithm"`
	Transactions      int           `json:"transactions"`
	MinSupportCount   int           `json:"minSupportCount"`
	PrunedDeps        int           `json:"prunedDependencies"`
	PrunedSameFeature int           `json:"prunedSameFeature"`
	DurationMicros    int64         `json:"miningMicros"`
	Frequent          []jsonItemset `json:"frequent"`
	Rules             []jsonRule    `json:"rules,omitempty"`
}

type jsonItemset struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

type jsonRule struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift"`
}

// writeJSON emits the outcome as one JSON document.
func writeJSON(w io.Writer, alg string, out *qsrmine.Outcome, withRules bool) error {
	res := out.Result
	jo := jsonOutput{
		Algorithm:         alg,
		Transactions:      res.NumTransactions,
		MinSupportCount:   res.MinSupportCount,
		PrunedDeps:        res.PrunedDeps,
		PrunedSameFeature: res.PrunedSameFeature,
		DurationMicros:    res.Duration.Microseconds(),
	}
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		jo.Frequent = append(jo.Frequent, jsonItemset{Items: f.Items.Names(out.DB.Dict), Support: f.Support})
	}
	if withRules {
		for _, r := range out.Rules {
			jo.Rules = append(jo.Rules, jsonRule{
				Antecedent: r.Antecedent.Names(out.DB.Dict),
				Consequent: r.Consequent.Names(out.DB.Dict),
				Support:    r.Support,
				Confidence: r.Confidence,
				Lift:       r.Lift,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jo)
}
