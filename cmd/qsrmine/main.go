// Command qsrmine mines frequent spatial patterns from a geographic
// dataset file (JSON with WKT geometries; see dataset.WriteJSON) or from
// the built-in Porto Alegre sample.
//
// Usage:
//
//	qsrmine -sample -minsup 0.5 -alg apriori-kc+
//	qsrmine -data city.json -minsup 0.1 -alg apriori -rules -minconf 0.7
//	qsrmine -table transactions.csv -minsup 0.05
//	qsrmine -data city.json -deps "contains_street:contains_illuminationPoint,..."
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	qsrmine "repro"
	"repro/internal/mining"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qsrmine:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath  = flag.String("data", "", "dataset JSON file (WKT geometries)")
		tablePath = flag.String("table", "", "transaction table CSV file (refID,item,item,...)")
		sample    = flag.Bool("sample", false, "use the built-in Porto Alegre sample scene")
		algName   = flag.String("alg", "apriori-kc+", "algorithm: apriori, apriori-kc, apriori-kc+")
		minsup    = flag.Float64("minsup", 0.5, "relative minimum support in (0, 1]")
		depsFlag  = flag.String("deps", "", "dependency pairs Φ: a:b,c:d,... (item names)")
		rules     = flag.Bool("rules", false, "generate association rules")
		minconf   = flag.Float64("minconf", 0.7, "minimum rule confidence")
		maxShow   = flag.Int("top", 30, "maximum itemsets/rules to print (0 = all)")
		closed    = flag.Bool("closed", false, "keep only closed frequent itemsets")
		maximal   = flag.Bool("maximal", false, "keep only maximal frequent itemsets")
		format    = flag.String("format", "text", "output format: text or json")
		profile   = flag.Bool("profile", false, "print the transaction-table profile before mining")
	)
	flag.Parse()

	alg, err := qsrmine.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	deps, err := parseDeps(*depsFlag)
	if err != nil {
		return err
	}
	cfg := qsrmine.Config{
		Algorithm:     alg,
		MinSupport:    *minsup,
		Dependencies:  deps,
		GenerateRules: *rules,
		MinConfidence: *minconf,
	}
	switch {
	case *closed && *maximal:
		return fmt.Errorf("choose at most one of -closed and -maximal")
	case *closed:
		cfg.PostFilter = qsrmine.ClosedFilter
	case *maximal:
		cfg.PostFilter = qsrmine.MaximalFilter
	}

	var out *qsrmine.Outcome
	switch {
	case *sample:
		out, err = qsrmine.Run(qsrmine.PortoAlegreScene(), cfg)
	case *dataPath != "":
		ds, loadErr := qsrmine.LoadDataset(*dataPath)
		if loadErr != nil {
			return loadErr
		}
		out, err = qsrmine.Run(ds, cfg)
	case *tablePath != "":
		table, loadErr := qsrmine.LoadTable(*tablePath)
		if loadErr != nil {
			return loadErr
		}
		out, err = qsrmine.RunTable(table, cfg)
	default:
		return fmt.Errorf("provide -data FILE, -table FILE, or -sample")
	}
	if err != nil {
		return err
	}
	if *profile && *format != "json" {
		fmt.Println("-- table profile --")
		fmt.Print(qsrmine.ProfileTable(out.Table).Format())
		fmt.Println()
	}
	if *format == "json" {
		return writeJSON(os.Stdout, alg.String(), out, *rules)
	}
	if *format != "text" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	res := out.Result
	fmt.Printf("algorithm:            %s\n", alg)
	fmt.Printf("transactions:         %d\n", res.NumTransactions)
	fmt.Printf("minimum support:      %.1f%% (count %d)\n", *minsup*100, res.MinSupportCount)
	fmt.Printf("frequent itemsets:    %d (size >= 2: %d, largest %d)\n",
		len(res.Frequent), res.NumFrequent(2), res.MaxLen())
	fmt.Printf("pruned dependencies:  %d\n", res.PrunedDeps)
	fmt.Printf("pruned same-feature:  %d\n", res.PrunedSameFeature)
	fmt.Printf("mining time:          %v\n", res.Duration)
	fmt.Println()

	shown := 0
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		if *maxShow > 0 && shown >= *maxShow {
			fmt.Printf("... (%d more)\n", res.NumFrequent(2)-shown)
			break
		}
		fmt.Printf("  %-70s support %d\n", f.Items.Format(out.DB.Dict), f.Support)
		shown++
	}

	if *rules {
		fmt.Printf("\nassociation rules (confidence >= %.0f%%): %d\n", *minconf*100, len(out.Rules))
		for i, r := range out.Rules {
			if *maxShow > 0 && i >= *maxShow {
				fmt.Printf("... (%d more)\n", len(out.Rules)-i)
				break
			}
			fmt.Printf("  %-70s conf %.2f lift %.2f sup %.2f\n",
				r.Format(out.DB.Dict), r.Confidence, r.Lift, r.Support)
		}
	}
	return nil
}

// parseDeps parses "a:b,c:d" into Φ pairs (":" separates the pair so
// that "attr=value" item names stay unambiguous).
func parseDeps(s string) ([]mining.Pair, error) {
	if s == "" {
		return nil, nil
	}
	var deps []mining.Pair
	for _, part := range strings.Split(s, ",") {
		ab := strings.SplitN(part, ":", 2)
		if len(ab) != 2 || ab[0] == "" || ab[1] == "" {
			return nil, fmt.Errorf("bad dependency %q (want itemA:itemB)", part)
		}
		deps = append(deps, mining.Pair{A: ab[0], B: ab[1]})
	}
	return deps, nil
}

// jsonOutput is the machine-readable result schema.
type jsonOutput struct {
	Algorithm         string        `json:"algorithm"`
	Transactions      int           `json:"transactions"`
	MinSupportCount   int           `json:"minSupportCount"`
	PrunedDeps        int           `json:"prunedDependencies"`
	PrunedSameFeature int           `json:"prunedSameFeature"`
	DurationMicros    int64         `json:"miningMicros"`
	Frequent          []jsonItemset `json:"frequent"`
	Rules             []jsonRule    `json:"rules,omitempty"`
}

type jsonItemset struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

type jsonRule struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift"`
}

// writeJSON emits the outcome as one JSON document.
func writeJSON(w io.Writer, alg string, out *qsrmine.Outcome, withRules bool) error {
	res := out.Result
	jo := jsonOutput{
		Algorithm:         alg,
		Transactions:      res.NumTransactions,
		MinSupportCount:   res.MinSupportCount,
		PrunedDeps:        res.PrunedDeps,
		PrunedSameFeature: res.PrunedSameFeature,
		DurationMicros:    res.Duration.Microseconds(),
	}
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		jo.Frequent = append(jo.Frequent, jsonItemset{Items: f.Items.Names(out.DB.Dict), Support: f.Support})
	}
	if withRules {
		for _, r := range out.Rules {
			jo.Rules = append(jo.Rules, jsonRule{
				Antecedent: r.Antecedent.Names(out.DB.Dict),
				Consequent: r.Consequent.Names(out.DB.Dict),
				Support:    r.Support,
				Confidence: r.Confidence,
				Lift:       r.Lift,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jo)
}
