package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	qsrmine "repro"
)

func TestParseDeps(t *testing.T) {
	deps, err := parseDeps("a:b,contains_street:contains_illuminationPoint")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 || deps[0].A != "a" || deps[0].B != "b" ||
		deps[1].A != "contains_street" {
		t.Errorf("deps = %+v", deps)
	}
	// Item names containing '=' work because ':' separates pairs.
	deps, err = parseDeps("murderRate=high:contains_slum")
	if err != nil {
		t.Fatal(err)
	}
	if deps[0].A != "murderRate=high" {
		t.Errorf("attr item dep = %+v", deps[0])
	}
	if got, err := parseDeps(""); err != nil || got != nil {
		t.Error("empty spec must be a nil no-op")
	}
	for _, bad := range []string{"justoneitem", "a:", ":b", "a:b,,"} {
		if _, err := parseDeps(bad); err == nil {
			t.Errorf("parseDeps(%q) should fail", bad)
		}
	}
}

func TestEclatAlgorithmSelectable(t *testing.T) {
	// -alg eclat resolves through the TextUnmarshaler to the Eclat
	// engine and mines the same pattern set as apriori-kc+.
	var alg qsrmine.Algorithm
	for _, spelling := range []string{"eclat", "eclat-kc+"} {
		if err := alg.UnmarshalText([]byte(spelling)); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", spelling, err)
		}
		if alg != qsrmine.EclatKCPlus {
			t.Fatalf("%q parsed to %v", spelling, alg)
		}
	}
	ec, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.EclatKCPlus,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.AprioriKCPlus,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ec.Result.Frequent) != len(ap.Result.Frequent) {
		t.Errorf("eclat mined %d itemsets, apriori-kc+ %d",
			len(ec.Result.Frequent), len(ap.Result.Frequent))
	}
}

func TestCountingStrategyFlag(t *testing.T) {
	// -counting parses via encoding.TextUnmarshaler, like -alg.
	var c qsrmine.CountingStrategy
	for spelling, want := range map[string]qsrmine.CountingStrategy{
		"vertical":   qsrmine.VerticalCounting,
		"horizontal": qsrmine.HorizontalCounting,
	} {
		if err := c.UnmarshalText([]byte(spelling)); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", spelling, err)
		}
		if c != want {
			t.Errorf("%q parsed to %v", spelling, c)
		}
	}
	if err := c.UnmarshalText([]byte("diagonal")); err == nil {
		t.Error("bogus counting strategy must fail to parse")
	}
}

func TestEclatRejectsHorizontalCountingConfig(t *testing.T) {
	// An explicitly requested horizontal strategy cannot be honoured by
	// the vertical eclat engine: the run must fail with a clear config
	// error instead of silently dropping the setting.
	_, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.EclatKCPlus,
		MinSupport: 0.5,
		Counting:   qsrmine.HorizontalCounting,
	})
	if err == nil {
		t.Fatal("eclat with horizontal counting must fail")
	}
	if !strings.Contains(err.Error(), "horizontal") {
		t.Errorf("error %q does not name the strategy", err)
	}
	// The apriori engines still honour it.
	out, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.AprioriKCPlus,
		MinSupport: 0.5,
		Counting:   qsrmine.HorizontalCounting,
	})
	if err != nil {
		t.Fatalf("apriori with horizontal counting: %v", err)
	}
	if len(out.Result.Frequent) == 0 {
		t.Error("horizontal apriori mined nothing")
	}
}

func TestParallelismPlumbsToEclat(t *testing.T) {
	// -parallelism reaches the eclat walk through core.Config and the
	// results match the sequential run exactly.
	run := func(par int) *qsrmine.Outcome {
		t.Helper()
		out, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
			Algorithm:   qsrmine.EclatKCPlus,
			MinSupport:  0.34,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	if len(seq.Result.Frequent) != len(par.Result.Frequent) {
		t.Fatalf("sequential %d vs parallel %d itemsets",
			len(seq.Result.Frequent), len(par.Result.Frequent))
	}
	for i := range seq.Result.Frequent {
		a, b := seq.Result.Frequent[i], par.Result.Frequent[i]
		if !a.Items.Equal(b.Items) || a.Support != b.Support {
			t.Fatalf("itemset %d differs: %v/%d vs %v/%d", i, a.Items, a.Support, b.Items, b.Support)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	out, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:     qsrmine.AprioriKCPlus,
		MinSupport:    0.5,
		GenerateRules: true,
		MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, "apriori-kc+", out, true); err != nil {
		t.Fatal(err)
	}
	var decoded jsonOutput
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.Algorithm != "apriori-kc+" || decoded.Transactions != 6 {
		t.Errorf("decoded header = %+v", decoded)
	}
	if len(decoded.Frequent) != 30 {
		t.Errorf("frequent itemsets in JSON = %d, want 30", len(decoded.Frequent))
	}
	if decoded.PrunedSameFeature != 4 {
		t.Errorf("prunedSameFeature = %d", decoded.PrunedSameFeature)
	}
	if len(decoded.Rules) == 0 {
		t.Error("rules missing from JSON")
	}
	// Without rules, the field is omitted.
	buf.Reset()
	if err := writeJSON(&buf, "apriori", out, false); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"rules"`)) {
		t.Error("rules present despite withRules=false")
	}
}

// TestRunBadFlagsErrorNotOnStdout pins the CLI contract: bad flag
// combinations make run return an error (main then exits non-zero and
// prints it to stderr) while stdout stays clean of error text.
func TestRunBadFlagsErrorNotOnStdout(t *testing.T) {
	cases := [][]string{
		{"-sample", "-closed", "-maximal"}, // mutually exclusive post filters
		{},                                 // no input selected
		{"-sample", "-format", "sideways"}, // unknown output format
		{"-sample", "-deps", "broken"},     // malformed dependency spec
		{"-alg", "bogus", "-sample"},       // unknown algorithm (flag parse error)
		{"-table", "/no/such/file.csv"},    // unreadable input
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
			continue
		}
		if strings.Contains(stdout.String(), err.Error()) {
			t.Errorf("run(%q) wrote its error to stdout: %q", args, stdout.String())
		}
	}
	// Flag parse failures (as opposed to post-parse validation) carry
	// errUsage so main exits 2, the usual usage-error code.
	var pout, perr bytes.Buffer
	if err := run([]string{"-alg", "bogus", "-sample"}, &pout, &perr); !errors.Is(err, errUsage) {
		t.Errorf("flag parse failure %v is not errUsage", err)
	}
	// The unknown-format case must not have mined to stdout before
	// failing either.
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "-format", "sideways"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown format must fail")
	} else if !strings.Contains(err.Error(), "sideways") {
		t.Errorf("error %q does not name the bad format", err)
	}
}

// TestRunVersionFlag: -version prints the build stamp to stdout and
// exits successfully without mining.
func TestRunVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "qsrmine ") {
		t.Errorf("-version stdout = %q", stdout.String())
	}
	if strings.Contains(stdout.String(), "frequent itemsets") {
		t.Error("-version must not mine")
	}
}

// TestRunSampleToBuffers smoke-tests the happy path through the
// injectable writers: results on stdout, trace on stderr.
func TestRunSampleToBuffers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "-minsup", "0.5", "-trace"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "frequent itemsets") {
		t.Errorf("stdout missing results: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "[trace]") {
		t.Errorf("stderr missing trace lines: %q", stderr.String())
	}
}

func TestRunMutateFlag(t *testing.T) {
	// -mutate applies the ops file before mining and goes through the
	// incremental re-extraction path, so the trace carries delta.*
	// counters and the mined table reflects the edit.
	dir := t.TempDir()
	path := filepath.Join(dir, "edits.json")
	ops := `{"ops":[{"action":"insert","layer":"slum","id":"slumX","wkt":"POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"}]}`
	if err := os.WriteFile(path, []byte(ops), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "-minsup", "0.3", "-mutate", path, "-trace"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "frequent itemsets") {
		t.Errorf("stdout missing results: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "delta.rows.total") {
		t.Errorf("stderr missing incremental-extraction counters: %q", stderr.String())
	}

	// The mutated run must equal mining the mutated dataset from
	// scratch (oracle check over the JSON output).
	var mutated, oracle bytes.Buffer
	if err := run([]string{"-sample", "-minsup", "0.3", "-mutate", path, "-format", "json"}, &mutated, io.Discard); err != nil {
		t.Fatal(err)
	}
	ds := qsrmine.PortoAlegreScene()
	m, err := qsrmine.LoadMutation(path)
	if err != nil {
		t.Fatal(err)
	}
	nd, _, err := ds.ApplyOps(m.Ops)
	if err != nil {
		t.Fatal(err)
	}
	f := filepath.Join(dir, "mutated.json")
	w, err := os.Create(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.WriteJSON(w); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := run([]string{"-data", f, "-minsup", "0.3", "-format", "json"}, &oracle, io.Discard); err != nil {
		t.Fatal(err)
	}
	if got, want := stripTiming(t, mutated.Bytes()), stripTiming(t, oracle.Bytes()); got != want {
		t.Errorf("mutated run diverged from from-scratch oracle:\n%s\nvs\n%s", got, want)
	}
}

// stripTiming removes the wall-clock field from a JSON result so runs
// compare on substance.
func stripTiming(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "miningMicros")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunMutateFlagErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "edits.json")
	if err := os.WriteFile(good, []byte(`{"ops":[{"action":"delete","layer":"slum","id":"nope"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// -mutate is a scene operation: combined with -table it must fail.
	csv := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csv, []byte("r1,a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", csv, "-mutate", good}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-mutate") {
		t.Errorf("-table with -mutate: err = %v", err)
	}
	// Deleting a feature that does not exist fails atomically.
	if err := run([]string{"-sample", "-mutate", good}, io.Discard, io.Discard); err == nil {
		t.Error("deleting unknown feature should fail")
	}
	// Unknown fields and empty batches are rejected by the loader.
	for name, body := range map[string]string{
		"typo.json":  `{"opps":[]}`,
		"empty.json": `{"ops":[]}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-sample", "-mutate", p}, io.Discard, io.Discard); err == nil {
			t.Errorf("%s should fail to load", name)
		}
	}
	if err := run([]string{"-sample", "-mutate", filepath.Join(dir, "missing.json")}, io.Discard, io.Discard); err == nil {
		t.Error("missing mutation file should fail")
	}
}
