package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	qsrmine "repro"
)

func TestParseDeps(t *testing.T) {
	deps, err := parseDeps("a:b,contains_street:contains_illuminationPoint")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 || deps[0].A != "a" || deps[0].B != "b" ||
		deps[1].A != "contains_street" {
		t.Errorf("deps = %+v", deps)
	}
	// Item names containing '=' work because ':' separates pairs.
	deps, err = parseDeps("murderRate=high:contains_slum")
	if err != nil {
		t.Fatal(err)
	}
	if deps[0].A != "murderRate=high" {
		t.Errorf("attr item dep = %+v", deps[0])
	}
	if got, err := parseDeps(""); err != nil || got != nil {
		t.Error("empty spec must be a nil no-op")
	}
	for _, bad := range []string{"justoneitem", "a:", ":b", "a:b,,"} {
		if _, err := parseDeps(bad); err == nil {
			t.Errorf("parseDeps(%q) should fail", bad)
		}
	}
}

func TestEclatAlgorithmSelectable(t *testing.T) {
	// -alg eclat resolves through the TextUnmarshaler to the Eclat
	// engine and mines the same pattern set as apriori-kc+.
	var alg qsrmine.Algorithm
	for _, spelling := range []string{"eclat", "eclat-kc+"} {
		if err := alg.UnmarshalText([]byte(spelling)); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", spelling, err)
		}
		if alg != qsrmine.EclatKCPlus {
			t.Fatalf("%q parsed to %v", spelling, alg)
		}
	}
	ec, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.EclatKCPlus,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.AprioriKCPlus,
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ec.Result.Frequent) != len(ap.Result.Frequent) {
		t.Errorf("eclat mined %d itemsets, apriori-kc+ %d",
			len(ec.Result.Frequent), len(ap.Result.Frequent))
	}
}

func TestCountingStrategyFlag(t *testing.T) {
	// -counting parses via encoding.TextUnmarshaler, like -alg.
	var c qsrmine.CountingStrategy
	for spelling, want := range map[string]qsrmine.CountingStrategy{
		"vertical":   qsrmine.VerticalCounting,
		"horizontal": qsrmine.HorizontalCounting,
	} {
		if err := c.UnmarshalText([]byte(spelling)); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", spelling, err)
		}
		if c != want {
			t.Errorf("%q parsed to %v", spelling, c)
		}
	}
	if err := c.UnmarshalText([]byte("diagonal")); err == nil {
		t.Error("bogus counting strategy must fail to parse")
	}
}

func TestEclatRejectsHorizontalCountingConfig(t *testing.T) {
	// An explicitly requested horizontal strategy cannot be honoured by
	// the vertical eclat engine: the run must fail with a clear config
	// error instead of silently dropping the setting.
	_, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.EclatKCPlus,
		MinSupport: 0.5,
		Counting:   qsrmine.HorizontalCounting,
	})
	if err == nil {
		t.Fatal("eclat with horizontal counting must fail")
	}
	if !strings.Contains(err.Error(), "horizontal") {
		t.Errorf("error %q does not name the strategy", err)
	}
	// The apriori engines still honour it.
	out, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:  qsrmine.AprioriKCPlus,
		MinSupport: 0.5,
		Counting:   qsrmine.HorizontalCounting,
	})
	if err != nil {
		t.Fatalf("apriori with horizontal counting: %v", err)
	}
	if len(out.Result.Frequent) == 0 {
		t.Error("horizontal apriori mined nothing")
	}
}

func TestParallelismPlumbsToEclat(t *testing.T) {
	// -parallelism reaches the eclat walk through core.Config and the
	// results match the sequential run exactly.
	run := func(par int) *qsrmine.Outcome {
		t.Helper()
		out, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
			Algorithm:   qsrmine.EclatKCPlus,
			MinSupport:  0.34,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	if len(seq.Result.Frequent) != len(par.Result.Frequent) {
		t.Fatalf("sequential %d vs parallel %d itemsets",
			len(seq.Result.Frequent), len(par.Result.Frequent))
	}
	for i := range seq.Result.Frequent {
		a, b := seq.Result.Frequent[i], par.Result.Frequent[i]
		if !a.Items.Equal(b.Items) || a.Support != b.Support {
			t.Fatalf("itemset %d differs: %v/%d vs %v/%d", i, a.Items, a.Support, b.Items, b.Support)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	out, err := qsrmine.RunTable(qsrmine.Table2Reconstruction(), qsrmine.Config{
		Algorithm:     qsrmine.AprioriKCPlus,
		MinSupport:    0.5,
		GenerateRules: true,
		MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, "apriori-kc+", out, true); err != nil {
		t.Fatal(err)
	}
	var decoded jsonOutput
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.Algorithm != "apriori-kc+" || decoded.Transactions != 6 {
		t.Errorf("decoded header = %+v", decoded)
	}
	if len(decoded.Frequent) != 30 {
		t.Errorf("frequent itemsets in JSON = %d, want 30", len(decoded.Frequent))
	}
	if decoded.PrunedSameFeature != 4 {
		t.Errorf("prunedSameFeature = %d", decoded.PrunedSameFeature)
	}
	if len(decoded.Rules) == 0 {
		t.Error("rules missing from JSON")
	}
	// Without rules, the field is omitted.
	buf.Reset()
	if err := writeJSON(&buf, "apriori", out, false); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"rules"`)) {
		t.Error("rules present despite withRules=false")
	}
}

// TestRunBadFlagsErrorNotOnStdout pins the CLI contract: bad flag
// combinations make run return an error (main then exits non-zero and
// prints it to stderr) while stdout stays clean of error text.
func TestRunBadFlagsErrorNotOnStdout(t *testing.T) {
	cases := [][]string{
		{"-sample", "-closed", "-maximal"}, // mutually exclusive post filters
		{},                                 // no input selected
		{"-sample", "-format", "sideways"}, // unknown output format
		{"-sample", "-deps", "broken"},     // malformed dependency spec
		{"-alg", "bogus", "-sample"},       // unknown algorithm (flag parse error)
		{"-table", "/no/such/file.csv"},    // unreadable input
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
			continue
		}
		if strings.Contains(stdout.String(), err.Error()) {
			t.Errorf("run(%q) wrote its error to stdout: %q", args, stdout.String())
		}
	}
	// Flag parse failures (as opposed to post-parse validation) carry
	// errUsage so main exits 2, the usual usage-error code.
	var pout, perr bytes.Buffer
	if err := run([]string{"-alg", "bogus", "-sample"}, &pout, &perr); !errors.Is(err, errUsage) {
		t.Errorf("flag parse failure %v is not errUsage", err)
	}
	// The unknown-format case must not have mined to stdout before
	// failing either.
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "-format", "sideways"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown format must fail")
	} else if !strings.Contains(err.Error(), "sideways") {
		t.Errorf("error %q does not name the bad format", err)
	}
}

// TestRunVersionFlag: -version prints the build stamp to stdout and
// exits successfully without mining.
func TestRunVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "qsrmine ") {
		t.Errorf("-version stdout = %q", stdout.String())
	}
	if strings.Contains(stdout.String(), "frequent itemsets") {
		t.Error("-version must not mine")
	}
}

// TestRunSampleToBuffers smoke-tests the happy path through the
// injectable writers: results on stdout, trace on stderr.
func TestRunSampleToBuffers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "-minsup", "0.5", "-trace"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "frequent itemsets") {
		t.Errorf("stdout missing results: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "[trace]") {
		t.Errorf("stderr missing trace lines: %q", stderr.String())
	}
}
