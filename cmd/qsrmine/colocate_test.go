package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunColocateSample: -colocate on the sample scene prints the
// co-location report, and the result is independent of -parallelism.
func TestRunColocateSample(t *testing.T) {
	var base bytes.Buffer
	var stderr bytes.Buffer
	if err := run([]string{"-sample", "-colocate", "-dist", "3", "-minpi", "0.2"}, &base, &stderr); err != nil {
		t.Fatal(err)
	}
	out := base.String()
	for _, want := range []string{"co-location mining:", "prevalent patterns:", "PI "} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "frequent itemsets") {
		t.Error("-colocate must not run transaction mining")
	}

	// Same flags at -parallelism 4: identical patterns (the timing line
	// differs, so compare everything after it).
	var par bytes.Buffer
	if err := run([]string{"-sample", "-colocate", "-dist", "3", "-minpi", "0.2", "-parallelism", "4"}, &par, &stderr); err != nil {
		t.Fatal(err)
	}
	if basePat, parPat := afterTimingLine(out), afterTimingLine(par.String()); basePat != parPat {
		t.Errorf("patterns differ across parallelism:\n--- par=default\n%s\n--- par=4\n%s", basePat, parPat)
	}

	// Same flags on the clique engine: identical patterns (the default
	// above ran joinless).
	var clique bytes.Buffer
	if err := run([]string{"-sample", "-colocate", "-dist", "3", "-minpi", "0.2", "-coloc-engine", "clique"}, &clique, &stderr); err != nil {
		t.Fatal(err)
	}
	if basePat, cliquePat := afterTimingLine(out), afterTimingLine(clique.String()); basePat != cliquePat {
		t.Errorf("patterns differ across engines:\n--- joinless\n%s\n--- clique\n%s", basePat, cliquePat)
	}
}

// TestRunColocateTopK: -coloc-topk truncates the report to k patterns.
func TestRunColocateTopK(t *testing.T) {
	var full, topk, stderr bytes.Buffer
	if err := run([]string{"-sample", "-colocate", "-dist", "3", "-minpi", "0.2", "-format", "json"}, &full, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sample", "-colocate", "-dist", "3", "-minpi", "0.2", "-format", "json", "-coloc-topk", "1"}, &topk, &stderr); err != nil {
		t.Fatal(err)
	}
	var a, b struct {
		Prevalent []json.RawMessage `json:"prevalent"`
	}
	if err := json.Unmarshal(full.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(topk.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Prevalent) < 2 {
		t.Fatalf("sample scene too sparse to test truncation: %d prevalent", len(a.Prevalent))
	}
	if len(b.Prevalent) != 1 {
		t.Fatalf("-coloc-topk 1 kept %d patterns", len(b.Prevalent))
	}
}

// afterTimingLine drops everything up to and including the wall-time
// line, leaving only deterministic output.
func afterTimingLine(s string) string {
	_, rest, ok := strings.Cut(s, "mining time:")
	if !ok {
		return s
	}
	_, rest, _ = strings.Cut(rest, "\n")
	return rest
}

// TestRunColocateJSON: -format json emits the wire-shaped schema with
// sorted prevalent patterns.
func TestRunColocateJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "-colocate", "-dist", "3", "-minpi", "0.2", "-format", "json"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Distance  float64 `json:"distance"`
		MinPI     float64 `json:"minPI"`
		Instances int     `json:"instances"`
		Prevalent []struct {
			Types              []string `json:"types"`
			ParticipationIndex float64  `json:"participationIndex"`
			RowInstances       int      `json:"rowInstances"`
		} `json:"prevalent"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("output is not the colocate JSON schema: %v\n%s", err, stdout.String())
	}
	if got.Distance != 3 || got.MinPI != 0.2 || got.Instances == 0 || len(got.Prevalent) == 0 {
		t.Fatalf("unexpected JSON result: %+v", got)
	}
	for _, p := range got.Prevalent {
		if len(p.Types) == 0 || p.ParticipationIndex < 0.2 || p.RowInstances == 0 {
			t.Errorf("implausible pattern %+v", p)
		}
	}
}

// TestRunColocateFlagErrors: the -colocate flag combinations that must
// be rejected before any mining happens.
func TestRunColocateFlagErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-table", "x.csv", "-colocate"}, "geometric scene"},
		{[]string{"-sample", "-colocate", "-mutate", "edits.json"}, "mutually exclusive"},
		{[]string{"-sample", "-colocate", "-dist", "-1"}, "distance"},
		{[]string{"-sample", "-colocate", "-minpi", "0"}, "minPI"},
		{[]string{"-sample", "-colocate", "-format", "sideways"}, "sideways"},
		{[]string{"-sample", "-colocate", "-coloc-engine", "starjoin"}, "engine"},
		{[]string{"-sample", "-colocate", "-coloc-topk", "-2"}, "topK"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		err := run(tc.args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%q) succeeded, want error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%q) error %q, want mention of %q", tc.args, err, tc.want)
		}
		if stdout.String() != "" && strings.Contains(stdout.String(), "co-location") {
			t.Errorf("run(%q) mined before failing: %q", tc.args, stdout.String())
		}
	}
}
