// Command qsrmined is the long-running HTTP mining service: upload
// datasets (WKT-JSON scenes or transaction CSVs), mine them
// synchronously or as cancellable async jobs, and scrape live metrics.
//
// Usage:
//
//	qsrmined -addr :8080
//	qsrmined -addr :8080 -workers 4 -queue 128 -default-timeout 30s
//	qsrmined -dump-sample scene.json   # write the Porto Alegre sample scene and exit
//	qsrmined -version
//
// A quick session against a running daemon:
//
//	qsrmined -dump-sample scene.json
//	curl -s -X POST --data-binary @scene.json localhost:8080/datasets/scene
//	curl -s -X POST -d '{"dataset":"<digest>","config":{"algorithm":"eclat-kc+","minSupport":0.3}}' localhost:8080/mine
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, in-flight
// jobs finish (or are cancelled at the drain deadline), the listener
// closes cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/server"
)

// errUsage marks command-line parse failures; the FlagSet has already
// printed the message and usage to stderr, so main only sets the
// conventional exit code 2.
var errUsage = errors.New("bad command line")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "qsrmined:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qsrmined", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		queueCap     = fs.Int("queue", 64, "async job queue capacity")
		storeEntries = fs.Int("store-max-entries", 64, "dataset store entry cap")
		storeBytes   = fs.Int64("store-max-bytes", 256<<20, "dataset store byte cap")
		cacheEntries = fs.Int("cache-max-entries", 256, "result cache entry cap")
		maxUpload    = fs.Int64("max-upload", 32<<20, "maximum request body bytes")
		defTimeout   = fs.Duration("default-timeout", 60*time.Second, "default per-request mining deadline")
		drainWait    = fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain deadline")
		dumpSample   = fs.String("dump-sample", "", "write the built-in Porto Alegre sample scene JSON to FILE (or - for stdout) and exit")
		version      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if *version {
		fmt.Fprintln(stdout, "qsrmined", buildinfo.String())
		return nil
	}
	if *dumpSample != "" {
		return writeSample(*dumpSample, stdout)
	}

	srv := server.New(server.Options{
		Workers:         *workers,
		QueueCap:        *queueCap,
		StoreMaxEntries: *storeEntries,
		StoreMaxBytes:   *storeBytes,
		CacheMaxEntries: *cacheEntries,
		MaxUploadBytes:  *maxUpload,
		DefaultTimeout:  *defTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "qsrmined %s listening on %s\n", buildinfo.Version, *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed to start (port in use, ...)
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "qsrmined: draining (deadline %v)\n", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Order: flip to draining first so new submissions see 503 while the
	// listener is still up, then drain jobs, then close the listener
	// (which waits for in-flight HTTP handlers).
	jobsErr := srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("closing listener: %w", err)
	}
	if jobsErr != nil {
		fmt.Fprintf(stderr, "qsrmined: drain deadline hit, remaining jobs cancelled (%v)\n", jobsErr)
	}
	fmt.Fprintln(stderr, "qsrmined: shut down cleanly")
	return nil
}

// writeSample writes the built-in Porto Alegre scene as WKT-JSON, the
// exact format POST /datasets/scene accepts.
func writeSample(path string, stdout io.Writer) error {
	scene := dataset.PortoAlegreScene()
	if path == "-" {
		return scene.WriteJSON(stdout)
	}
	return scene.SaveJSON(path)
}
