// Command qsrmined is the long-running HTTP mining service: upload
// datasets (WKT-JSON scenes or transaction CSVs), mine them
// synchronously or as cancellable async jobs, and scrape live metrics.
// The API lives under /v1/; the unprefixed legacy paths still answer
// but carry a Deprecation header.
//
// Usage:
//
//	qsrmined -addr :8080
//	qsrmined -addr :8080 -workers 4 -queue 128 -default-timeout 30s
//	qsrmined -addr :8080 -batch-window 2ms -batch-max 32   # micro-batch small sync mines
//	qsrmined -addr :8080 -data-dir /var/lib/qsrmined   # durable node: survive restarts
//	qsrmined -addr :8090 -peers localhost:8081,localhost:8082   # front node: route, don't mine
//	qsrmined -dump-sample scene.json   # write the Porto Alegre sample scene and exit
//	qsrmined -version
//
// A quick session against a running daemon:
//
//	qsrmined -dump-sample scene.json
//	curl -s -X POST --data-binary @scene.json localhost:8080/v1/datasets/scene
//	curl -s -X POST -d '{"dataset":"<digest>","config":{"algorithm":"eclat-kc+","minSupport":0.3}}' localhost:8080/v1/mine
//	curl -s -X POST -d '{"dataset":"<digest>","config":{"distance":3,"minPI":0.3}}' localhost:8080/v1/colocate
//
// /v1/colocate mines spatial co-location patterns (prevalent
// feature-type sets under a neighborhood distance, measured by the
// participation index) instead of transaction itemsets; POST the same
// body to /v1/colocate/jobs for the cancellable async variant. Both
// share the dataset store, result cache, and persistence tier with
// /v1/mine.
//
// With -peers the process becomes a front node: it stores and mines
// nothing itself, but consistent-hashes each dataset digest onto the
// peer list, replicates uploads to -replicas peers, and fails over to
// the next ring candidate when a peer is down. Responses are forwarded
// byte-for-byte.
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, in-flight
// jobs finish (or are cancelled at the drain deadline), the listener
// closes cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/server/persist"
)

// errUsage marks command-line parse failures; the FlagSet has already
// printed the message and usage to stderr, so main only sets the
// conventional exit code 2.
var errUsage = errors.New("bad command line")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "qsrmined:", err)
		os.Exit(1)
	}
}

// drainable is what run needs from either role: mining node or front.
type drainable interface {
	Handler() http.Handler
	Shutdown(ctx context.Context) error
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qsrmined", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		queueCap     = fs.Int("queue", 64, "async job queue capacity")
		storeEntries = fs.Int("store-max-entries", 64, "dataset store entry cap")
		storeBytes   = fs.Int64("store-max-bytes", 256<<20, "dataset store byte cap")
		cacheEntries = fs.Int("cache-max-entries", 256, "result cache entry cap")
		maxUpload    = fs.Int64("max-upload", 32<<20, "maximum request body bytes")
		defTimeout   = fs.Duration("default-timeout", 60*time.Second, "default per-request mining deadline")
		drainWait    = fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain deadline")
		batchWindow  = fs.Duration("batch-window", 0, "micro-batch window for sync /v1/mine (0 = batching off)")
		batchMax     = fs.Int("batch-max", 16, "maximum requests per micro-batch")
		dataDir      = fs.String("data-dir", "", "directory for durable state (datasets, results, job journal); empty = memory-only")
		peerList     = fs.String("peers", "", "comma-separated peer base URLs; non-empty makes this a routing front node")
		replicas     = fs.Int("replicas", 2, "dataset replicas per digest (front node)")
		accessLog    = fs.Bool("access-log", false, "log one line per request to stderr")
		dumpSample   = fs.String("dump-sample", "", "write the built-in Porto Alegre sample scene JSON to FILE (or - for stdout) and exit")
		version      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if *version {
		fmt.Fprintln(stdout, "qsrmined", buildinfo.String())
		return nil
	}
	if *dumpSample != "" {
		return writeSample(*dumpSample, stdout)
	}

	var logw io.Writer
	if *accessLog {
		logw = stderr
	}

	var node drainable
	role := "node"
	if *peerList != "" {
		if *dataDir != "" {
			fmt.Fprintln(stderr, "qsrmined: -data-dir applies to mining nodes; a -peers front node stores nothing")
			fs.Usage()
			return errUsage
		}
		peers := splitPeers(*peerList)
		front, err := server.NewProxy(server.ProxyOptions{
			Peers:          peers,
			Replicas:       *replicas,
			MaxUploadBytes: *maxUpload,
			AccessLog:      logw,
		})
		if err != nil {
			return err
		}
		node = front
		role = fmt.Sprintf("front (%d peers, %d replicas)", len(peers), *replicas)
	} else {
		opts := server.Options{
			Workers:         *workers,
			QueueCap:        *queueCap,
			StoreMaxEntries: *storeEntries,
			StoreMaxBytes:   *storeBytes,
			CacheMaxEntries: *cacheEntries,
			MaxUploadBytes:  *maxUpload,
			DefaultTimeout:  *defTimeout,
			BatchWindow:     *batchWindow,
			BatchMax:        *batchMax,
			AccessLog:       logw,
		}
		if *dataDir != "" {
			dir, err := persist.Open(*dataDir)
			if err != nil {
				return fmt.Errorf("opening -data-dir: %w", err)
			}
			defer dir.Close()
			opts.Persistence = dir
			role = fmt.Sprintf("node (durable, data-dir %s)", *dataDir)
		}
		node = server.New(opts)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: node.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "qsrmined %s listening on %s as %s\n", buildinfo.Version, *addr, role)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed to start (port in use, ...)
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "qsrmined: draining (deadline %v)\n", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Order: flip to draining first so new submissions see 503 while the
	// listener is still up, then drain jobs, then close the listener
	// (which waits for in-flight HTTP handlers).
	jobsErr := node.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("closing listener: %w", err)
	}
	if jobsErr != nil {
		fmt.Fprintf(stderr, "qsrmined: drain deadline hit, remaining jobs cancelled (%v)\n", jobsErr)
	}
	fmt.Fprintln(stderr, "qsrmined: shut down cleanly")
	return nil
}

// splitPeers parses the -peers list, defaulting schemeless entries to
// http:// so "-peers host1:8081,host2:8081" just works.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, p)
	}
	return peers
}

// writeSample writes the built-in Porto Alegre scene as WKT-JSON, the
// exact format POST /v1/datasets/scene accepts.
func writeSample(path string, stdout io.Writer) error {
	scene := dataset.PortoAlegreScene()
	if path == "-" {
		return scene.WriteJSON(stdout)
	}
	return scene.SaveJSON(path)
}
