package main

import (
	"bytes"
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "qsrmined ") {
		t.Errorf("stdout = %q", stdout.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr = %q, want empty", stderr.String())
	}
}

func TestRunDumpSampleStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dump-sample", "-"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// The dumped document is exactly what POST /datasets/scene accepts.
	ds, err := dataset.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("dump is not a readable scene: %v", err)
	}
	want := dataset.PortoAlegreScene()
	if ds.Reference.Len() != want.Reference.Len() || len(ds.Relevant) != len(want.Relevant) {
		t.Errorf("dumped scene shape %d/%d, want %d/%d",
			ds.Reference.Len(), len(ds.Relevant), want.Reference.Len(), len(want.Relevant))
	}
}

func TestRunDumpSampleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scene.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dump-sample", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadJSON(path)
	if err != nil {
		t.Fatalf("dumped file unreadable: %v", err)
	}
	if ds.Reference.Len() == 0 {
		t.Error("dumped scene is empty")
	}
}

func TestRunDataDirConflictsWithPeers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-peers", "localhost:8081", "-data-dir", t.TempDir()}, &stdout, &stderr)
	if !errors.Is(err, errUsage) {
		t.Fatalf("front node with -data-dir: err = %v, want errUsage", err)
	}
	if !strings.Contains(stderr.String(), "-data-dir") {
		t.Errorf("stderr %q does not explain the conflict", stderr.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-no-such-flag"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
	if errors.Is(err, flag.ErrHelp) {
		t.Fatal("bad flag reported as -help")
	}
	if !errors.Is(err, errUsage) {
		t.Errorf("parse failure %v is not errUsage (main must exit 2)", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("flag errors leaked to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "no-such-flag") {
		t.Errorf("stderr %q does not name the bad flag", stderr.String())
	}
}
