package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server/persist"
)

// --- Satellite: eviction must invalidate derived state -------------------

// TestStoreEvictionInvalidatesDerivedState pins the eviction-invalidation
// fix: a dataset the store's LRU pushes out under capacity pressure must
// take its cached mining results and delta-pipeline artefacts with it,
// counted under server.cache.invalidated — exactly like an explicit
// DELETE. Before the fix, evicted digests silently pinned stale results.
func TestStoreEvictionInvalidatesDerivedState(t *testing.T) {
	s := New(Options{StoreMaxEntries: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	var a datasetInfo
	if status, raw := doJSON(t, client, "POST", ts.URL+"/datasets/table", []byte("r1,a,b\nr2,a,c\n"), &a); status != http.StatusCreated {
		t.Fatalf("upload A: %d %s", status, raw)
	}
	cfg := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.5}
	var first MineResponse
	if status, raw := doJSON(t, client, "POST", ts.URL+"/mine", mineBody(t, a.Digest, cfg), &first); status != http.StatusOK {
		t.Fatalf("mine A: %d %s", status, raw)
	}
	// Seed delta-pipeline state derived from A.
	s.deltas.recordLineage(a.Digest, "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff", nil)
	s.deltas.putState(a.Digest+"|opts", nil)
	key, err := CacheKey(a.Digest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.cache.Get(key); !ok {
		t.Fatal("mine did not populate the result cache")
	}

	// Upload B: the 1-entry store evicts A.
	var b datasetInfo
	if status, raw := doJSON(t, client, "POST", ts.URL+"/datasets/table", []byte("r9,x,y\n"), &b); status != http.StatusCreated {
		t.Fatalf("upload B: %d %s", status, raw)
	}
	if st := s.store.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("store stats = %+v, want 1 entry / 1 eviction", st)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Error("evicted dataset's cached result survived")
	}
	if _, _, ok := s.deltas.parentOf(a.Digest); ok {
		t.Error("evicted dataset's lineage record survived")
	}
	var m ServerMetrics
	if status, raw := doJSON(t, client, "GET", ts.URL+"/metrics", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, raw)
	}
	if got := m.Obs.Counters["server.cache.invalidated"]; got != 1 {
		t.Errorf("server.cache.invalidated = %d, want 1", got)
	}
}

// TestStoreListDoesNotTouchRecency pins the List fix at the store level:
// enumerating datasets between two uploads must not protect an old entry
// from eviction.
func TestStoreListDoesNotTouchRecency(t *testing.T) {
	s := NewStore(2, 0)
	old := putTable(t, s, tableBody("old"))
	putTable(t, s, tableBody("new"))
	if got := s.List(); len(got) != 2 {
		t.Fatalf("List = %d entries, want 2", len(got))
	}
	// Had List refreshed "old", this upload would evict "new" instead.
	putTable(t, s, tableBody("next"))
	if _, ok := s.Get(old.Digest); ok {
		t.Error("List refreshed recency: oldest entry survived the eviction")
	}
}

// --- WAL replay through the job manager ----------------------------------

// TestJobManagerRecover replays a journal holding one job per fate:
// finished (kept terminal), in-flight at the crash (reported lost), and
// submitted-but-never-started (re-enqueued and run to completion).
func TestJobManagerRecover(t *testing.T) {
	dir, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	req := &MineRequest{Dataset: "d1"}
	now := time.Now()
	for _, rec := range []persist.JobRecord{
		{Type: persist.RecSubmitted, ID: "j-done", Time: now, Req: req},
		{Type: persist.RecStarted, ID: "j-done", Time: now},
		{Type: persist.RecFinished, ID: "j-done", Time: now, State: JobDone},
		{Type: persist.RecSubmitted, ID: "j-inflight", Time: now, Req: req},
		{Type: persist.RecStarted, ID: "j-inflight", Time: now},
		{Type: persist.RecSubmitted, ID: "j-queued", Time: now, Req: req},
	} {
		if err := dir.AppendJob(rec); err != nil {
			t.Fatal(err)
		}
	}

	m := NewJobManager(context.Background(), 1, 4, func(ctx context.Context, req MineRequest) (*MineResponse, error) {
		return &MineResponse{Dataset: req.Dataset, Transactions: 42}, nil
	})
	defer m.Shutdown(context.Background())
	if err := m.Recover(dir); err != nil {
		t.Fatal(err)
	}

	// The finished job kept its terminal state (result bodies live in
	// the result cache, not the journal).
	jd, ok := m.Get("j-done")
	if !ok {
		t.Fatal("terminal job forgotten")
	}
	if st := m.Status(jd); st.State != JobDone || st.Lost || st.Result != nil {
		t.Errorf("terminal job = %+v", st)
	}

	// The in-flight job is failed with the lost marker.
	ji, ok := m.Get("j-inflight")
	if !ok {
		t.Fatal("in-flight job forgotten")
	}
	if st := m.Status(ji); st.State != JobFailed || !st.Lost || !strings.Contains(st.Error, "lost") {
		t.Errorf("in-flight job = %+v, want failed+lost", st)
	}

	// The queued job re-entered the queue under its original ID and ran.
	jq, ok := m.Get("j-queued")
	if !ok {
		t.Fatal("queued job forgotten")
	}
	waitState(t, m, jq, JobDone)
	if st := m.Status(jq); st.Result == nil || st.Result.Transactions != 42 {
		t.Errorf("recovered job result = %+v", st.Result)
	}

	if recovered, lost := m.RecoveryStats(); recovered != 1 || lost != 1 {
		t.Errorf("recovery stats = %d/%d, want 1 recovered / 1 lost", recovered, lost)
	}

	// The compacted journal replays to the same picture, now including
	// the recovered job's own completion.
	recs, err := dir.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	var sawQueuedDone bool
	for _, rec := range recs {
		if rec.ID == "j-queued" && rec.Type == persist.RecFinished && rec.State == JobDone {
			sawQueuedDone = true
		}
	}
	if !sawQueuedDone {
		t.Errorf("compacted journal missing the recovered job's completion: %+v", recs)
	}
}

// TestJobManagerRecoverQueueOverflow: recovery must not silently drop a
// journaled submission that no longer fits the queue — it is reported
// failed with the lost marker instead.
func TestJobManagerRecoverQueueOverflow(t *testing.T) {
	dir, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	req := &MineRequest{Dataset: "d1"}
	for _, id := range []string{"j-q1", "j-q2"} {
		if err := dir.AppendJob(persist.JobRecord{Type: persist.RecSubmitted, ID: id, Time: time.Now(), Req: req}); err != nil {
			t.Fatal(err)
		}
	}

	started := make(chan string, 8)
	release := make(chan struct{})
	m := NewJobManager(context.Background(), 1, 1, blockingRun(started, release))
	defer m.Shutdown(context.Background())
	// Fill the worker and the 1-slot queue before recovery.
	if _, err := m.Submit(MineRequest{Dataset: "live1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(MineRequest{Dataset: "live2"}); err != nil {
		t.Fatal(err)
	}

	if err := m.Recover(dir); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"j-q1", "j-q2"} {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("overflowed job %s vanished", id)
		}
		if st := m.Status(j); st.State != JobFailed || !st.Lost || !strings.Contains(st.Error, "queue full") {
			t.Errorf("overflowed job %s = %+v, want failed+lost (queue full)", id, st)
		}
	}
	if recovered, lost := m.RecoveryStats(); recovered != 0 || lost != 2 {
		t.Errorf("recovery stats = %d/%d, want 0 recovered / 2 lost", recovered, lost)
	}
	close(release)
}

// --- End-to-end restart ---------------------------------------------------

// TestServerRestartDurability is the PR's acceptance path: against a
// -data-dir server, upload a scene, mine it synchronously, then crash
// the process (abandoned without Shutdown — no terminal journal records)
// with one job mid-run and one queued. A second server on the same
// directory must serve the dataset by digest (lazy re-parse), report the
// in-flight job failed with lost: true, finish the queued job under its
// original ID, and serve the persisted result as a verified cache hit.
func TestServerRestartDurability(t *testing.T) {
	root := t.TempDir()
	dir1, err := persist.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer dir1.Close()

	s1 := New(Options{Workers: 1, Persistence: dir1})
	// Unblock s1's stuck job at the end (its journal handle points at the
	// pre-compaction inode by then, so the late records land nowhere).
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		s1.Shutdown(ctx)
	}()
	var block atomic.Bool
	blocked := make(chan struct{}, 8)
	s1.mineHook = func(ctx context.Context) error {
		if !block.Load() {
			return nil
		}
		blocked <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	}
	ts1 := httptest.NewServer(s1.Handler())
	client := ts1.Client()

	info := uploadSampleScene(t, client, ts1.URL)
	cfgMined := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.3}
	var before MineResponse
	if status, raw := doJSON(t, client, "POST", ts1.URL+"/mine", mineBody(t, info.Digest, cfgMined), &before); status != http.StatusOK {
		t.Fatalf("pre-crash mine: %d %s", status, raw)
	}

	// One job mid-run, one queued behind the single worker.
	block.Store(true)
	var inflight, queued JobStatus
	if status, raw := doJSON(t, client, "POST", ts1.URL+"/jobs",
		mineBody(t, info.Digest, core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.4}), &inflight); status != http.StatusAccepted {
		t.Fatalf("submit in-flight job: %d %s", status, raw)
	}
	<-blocked // its started record is journaled before the hook runs
	if status, raw := doJSON(t, client, "POST", ts1.URL+"/jobs",
		mineBody(t, info.Digest, core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.5}), &queued); status != http.StatusAccepted {
		t.Fatalf("submit queued job: %d %s", status, raw)
	}
	// Crash: close the listener and abandon s1 without Shutdown, so the
	// journal ends with started-but-unfinished and queued records.
	ts1.Close()

	dir2, err := persist.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer dir2.Close()
	s2 := New(Options{Workers: 1, Persistence: dir2})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	client2 := ts2.Client()

	// The dataset listing knows the digest before any body is re-read.
	var list struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if status, raw := doJSON(t, client2, "GET", ts2.URL+"/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: %d %s", status, raw)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Digest != info.Digest || list.Datasets[0].Rows != info.Rows {
		t.Fatalf("restarted listing = %+v, want the persisted dataset", list.Datasets)
	}
	// Fetching by digest lazily re-parses the persisted body.
	var meta datasetInfo
	if status, raw := doJSON(t, client2, "GET", ts2.URL+"/datasets/"+info.Digest, nil, &meta); status != http.StatusOK {
		t.Fatalf("dataset after restart: %d %s", status, raw)
	}
	if meta.Rows != info.Rows || meta.Bytes != info.Bytes {
		t.Errorf("reloaded metadata = %+v, want %+v", meta, info)
	}

	// The in-flight job is failed + lost; the queued one finishes under
	// its original ID.
	var st JobStatus
	if status, raw := doJSON(t, client2, "GET", ts2.URL+"/jobs/"+inflight.ID, nil, &st); status != http.StatusOK {
		t.Fatalf("poll lost job: %d %s", status, raw)
	}
	if st.State != JobFailed || !st.Lost || !strings.Contains(st.Error, "lost") {
		t.Fatalf("crashed-in-flight job = %+v, want failed+lost", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st = JobStatus{} // omitempty fields must not leak between polls
		if status, raw := doJSON(t, client2, "GET", ts2.URL+"/jobs/"+queued.ID, nil, &st); status != http.StatusOK {
			t.Fatalf("poll recovered job: %d %s", status, raw)
		}
		if st.State == JobDone {
			break
		}
		if st.State == JobFailed || st.State == JobCancelled || time.Now().After(deadline) {
			t.Fatalf("recovered job = %+v, want done", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Result == nil || st.Lost {
		t.Errorf("recovered job = %+v, want a result and no lost marker", st)
	}

	// The pre-crash result is served from disk, digest chain verified.
	var after MineResponse
	if status, raw := doJSON(t, client2, "POST", ts2.URL+"/mine", mineBody(t, info.Digest, cfgMined), &after); status != http.StatusOK {
		t.Fatalf("post-restart mine: %d %s", status, raw)
	}
	if !after.Cached {
		t.Error("persisted result was recomputed instead of served from disk")
	}
	if len(after.Frequent) != len(before.Frequent) || after.Transactions != before.Transactions {
		t.Errorf("persisted result differs: %d itemsets / %d transactions, want %d / %d",
			len(after.Frequent), after.Transactions, len(before.Frequent), before.Transactions)
	}

	var m ServerMetrics
	if status, raw := doJSON(t, client2, "GET", ts2.URL+"/metrics", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, raw)
	}
	if m.Persist == nil || !m.Persist.Enabled {
		t.Fatalf("metrics missing the persist block: %+v", m.Persist)
	}
	if m.Persist.JobsLost != 1 || m.Persist.JobsRecovered != 1 {
		t.Errorf("persist jobs = %+v, want 1 lost / 1 recovered", m.Persist)
	}
	if m.Persist.VerifyFailures != 0 {
		t.Errorf("verifyFailures = %d, want 0", m.Persist.VerifyFailures)
	}
	if m.Persist.ResultHits < 1 || m.Obs.Counters["server.persist.result_hits"] < 1 {
		t.Errorf("persisted result hit not counted: %+v / %v", m.Persist, m.Obs.Counters)
	}
	if m.Persist.Datasets != 1 {
		t.Errorf("persisted datasets = %d, want 1", m.Persist.Datasets)
	}

	// Healthz advertises the durable role.
	var h healthz
	if status, raw := doJSON(t, client2, "GET", ts2.URL+"/healthz", nil, &h); status != http.StatusOK || h.Persist != "disk" {
		t.Fatalf("healthz = %d %s %+v, want persist: disk", status, raw, h)
	}
}

// TestPersistedResultVerifyFailureRecomputes corrupts a persisted result
// on disk between two server generations: the restarted server must
// refuse to serve it (counting the verification failure), recompute, and
// re-persist a good entry.
func TestPersistedResultVerifyFailureRecomputes(t *testing.T) {
	root := t.TempDir()
	dir1, err := persist.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Persistence: dir1})
	ts1 := httptest.NewServer(s1.Handler())
	client := ts1.Client()

	var info datasetInfo
	if status, raw := doJSON(t, client, "POST", ts1.URL+"/datasets/table", []byte("r1,a,b\nr2,a,b\nr3,a,c\n"), &info); status != http.StatusCreated {
		t.Fatalf("upload: %d %s", status, raw)
	}
	cfg := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.5}
	var before MineResponse
	if status, raw := doJSON(t, client, "POST", ts1.URL+"/mine", mineBody(t, info.Digest, cfg), &before); status != http.StatusOK {
		t.Fatalf("mine: %d %s", status, raw)
	}
	s1.Shutdown(context.Background())
	ts1.Close()
	dir1.Close()

	// Corrupt the one persisted result.
	files, err := filepath.Glob(filepath.Join(root, "results", "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted results = %v (%v), want exactly 1", files, err)
	}
	if err := os.WriteFile(files[0], []byte(`{"chain":{"dataset":"bad"},"response":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	dir2, err := persist.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer dir2.Close()
	s2 := New(Options{Persistence: dir2})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var resp MineResponse
	if status, raw := doJSON(t, ts2.Client(), "POST", ts2.URL+"/mine", mineBody(t, info.Digest, cfg), &resp); status != http.StatusOK {
		t.Fatalf("mine after corruption: %d %s", status, raw)
	}
	if resp.Cached {
		t.Error("corrupt persisted entry was served as a cache hit")
	}
	if len(resp.Frequent) != len(before.Frequent) {
		t.Errorf("recomputed %d itemsets, want %d", len(resp.Frequent), len(before.Frequent))
	}
	var m ServerMetrics
	if status, raw := doJSON(t, ts2.Client(), "GET", ts2.URL+"/metrics", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, raw)
	}
	if m.Persist == nil || m.Persist.VerifyFailures != 1 {
		t.Fatalf("verifyFailures = %+v, want exactly 1", m.Persist)
	}
	if got := m.Obs.Counters["server.persist.verify_failures"]; got != 1 {
		t.Errorf("trace counter server.persist.verify_failures = %d, want 1", got)
	}

	// The recompute re-persisted a good entry: a third generation serves
	// it from disk again.
	s3 := func() *Server {
		dir3, err := persist.Open(root)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dir3.Close() })
		return New(Options{Persistence: dir3})
	}()
	defer s3.Shutdown(context.Background())
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	var again MineResponse
	if status, raw := doJSON(t, ts3.Client(), "POST", ts3.URL+"/mine", mineBody(t, info.Digest, cfg), &again); status != http.StatusOK {
		t.Fatalf("third-generation mine: %d %s", status, raw)
	}
	if !again.Cached {
		t.Error("re-persisted result not served from disk")
	}
}
