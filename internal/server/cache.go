package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/api"
	"repro/internal/core"
	"repro/internal/mining"
)

// CacheKey canonicalises a mining request to its result-cache key:
// the dataset digest plus the deterministic JSON encoding of the config
// with the dependency set Φ normalised (each unordered pair spelled
// smaller-item-first, pairs sorted, duplicates dropped). Two requests
// that cannot produce different results therefore share a key.
func CacheKey(digest string, cfg core.Config) (string, error) {
	if len(cfg.Dependencies) > 0 {
		deps := make([]mining.Pair, len(cfg.Dependencies))
		copy(deps, cfg.Dependencies)
		for i, p := range deps {
			if p.B < p.A {
				deps[i] = mining.Pair{A: p.B, B: p.A}
			}
		}
		sort.Slice(deps, func(i, j int) bool {
			if deps[i].A != deps[j].A {
				return deps[i].A < deps[j].A
			}
			return deps[i].B < deps[j].B
		})
		uniq := deps[:1]
		for _, p := range deps[1:] {
			if p != uniq[len(uniq)-1] {
				uniq = append(uniq, p)
			}
		}
		cfg.Dependencies = uniq
	}
	canonical, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("server: canonicalising config: %w", err)
	}
	return digest + "|" + string(canonical), nil
}

// ResultCache memoises mining responses by CacheKey with LRU eviction,
// so repeated identical requests are served without re-mining. Cached
// responses are immutable; readers receive shallow copies with the
// Cached flag set. Safe for concurrent use.
type ResultCache struct {
	mu                      sync.Mutex
	lru                     *lru[string, *MineResponse]
	hits, misses, evictions int64
}

// NewResultCache returns a cache capped at maxEntries (0 = unlimited).
func NewResultCache(maxEntries int) *ResultCache {
	return &ResultCache{lru: newLRU[string, *MineResponse](maxEntries, 0)}
}

// Get returns a copy of the cached response for key, counting the hit
// or miss.
func (c *ResultCache) Get(key string) (*MineResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, ok := c.lru.get(key)
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	cp := *resp
	cp.Cached = true
	return &cp, true
}

// Put stores a response under key.
func (c *ResultCache) Put(key string, resp *MineResponse) {
	c.mu.Lock()
	c.evictions += int64(c.lru.put(key, resp, 0))
	c.mu.Unlock()
}

// InvalidateDataset drops every cached response computed from digest
// (cache keys are "digest|canonical-config", so a prefix scan finds
// exactly the dependents) and returns the number of entries removed.
func (c *ResultCache) InvalidateDataset(digest string) int {
	prefix := digest + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, key := range c.lru.keys() {
		if strings.HasPrefix(key, prefix) && c.lru.remove(key) {
			n++
		}
	}
	return n
}

// CacheStats is the cache's /metrics snapshot.
type CacheStats = api.CacheStats

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.lru.len(), Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
