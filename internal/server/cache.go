package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/api"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/server/persist"
)

// CacheKey canonicalises a mining request to its result-cache key:
// the dataset digest plus the deterministic JSON encoding of the config
// with the dependency set Φ normalised (each unordered pair spelled
// smaller-item-first, pairs sorted, duplicates dropped). Two requests
// that cannot produce different results therefore share a key.
func CacheKey(digest string, cfg core.Config) (string, error) {
	if len(cfg.Dependencies) > 0 {
		deps := make([]mining.Pair, len(cfg.Dependencies))
		copy(deps, cfg.Dependencies)
		for i, p := range deps {
			if p.B < p.A {
				deps[i] = mining.Pair{A: p.B, B: p.A}
			}
		}
		sort.Slice(deps, func(i, j int) bool {
			if deps[i].A != deps[j].A {
				return deps[i].A < deps[j].A
			}
			return deps[i].B < deps[j].B
		})
		uniq := deps[:1]
		for _, p := range deps[1:] {
			if p != uniq[len(uniq)-1] {
				uniq = append(uniq, p)
			}
		}
		cfg.Dependencies = uniq
	}
	canonical, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("server: canonicalising config: %w", err)
	}
	return digest + "|" + string(canonical), nil
}

// ResultCache memoises mining responses by CacheKey with LRU eviction,
// so repeated identical requests are served without re-mining. Cached
// responses are immutable; readers receive shallow copies with the
// Cached flag set. With a ResultPersistence attached, fills write
// through to disk and a memory miss falls back to the persisted entry
// — served only after its digest chain verifies; a corrupt or
// mismatched entry is discarded, counted under
// server.persist.verify_failures, and recomputed. Safe for concurrent
// use.
type ResultCache struct {
	mu                      sync.Mutex
	lru                     *lru[string, *MineResponse]
	hits, misses, evictions int64
	persist                 ResultPersistence // nil = memory-only
	trace                   *obs.Trace        // persist counter sink (may be nil)
}

// NewResultCache returns a cache capped at maxEntries (0 = unlimited).
func NewResultCache(maxEntries int) *ResultCache {
	return &ResultCache{lru: newLRU[string, *MineResponse](maxEntries, 0)}
}

// Persist attaches the durable tier (and the trace its verification
// and hit counters flow to). Set before serving traffic.
func (c *ResultCache) Persist(p ResultPersistence, trace *obs.Trace) {
	c.persist = p
	c.trace = trace
}

func (c *ResultCache) count(name string) {
	if c.trace != nil {
		c.trace.Add(name, 1)
	}
}

// Get returns a copy of the cached response for key, counting the hit
// or miss. A memory miss consults the durable tier; a verified
// persisted entry is re-admitted to memory and served as a hit.
func (c *ResultCache) Get(key string) (*MineResponse, bool) {
	c.mu.Lock()
	if resp, ok := c.lru.get(key); ok {
		c.hits++
		c.mu.Unlock()
		cp := *resp
		cp.Cached = true
		return &cp, true
	}
	c.mu.Unlock()
	if c.persist != nil {
		resp, err := c.persist.LoadResult(key)
		switch {
		case err == nil:
			c.count("server.persist.result_hits")
			c.mu.Lock()
			c.lru.put(key, resp, 0) // memory-tier eviction only; disk copies stay
			c.hits++
			c.mu.Unlock()
			cp := *resp
			cp.Cached = true
			return &cp, true
		case errors.Is(err, persist.ErrVerifyFailed):
			c.count("server.persist.verify_failures")
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a response under key, writing through to the durable
// tier when one is attached. A failed persistence write degrades that
// entry to memory-only and is counted, never surfaced to the request.
func (c *ResultCache) Put(key string, resp *MineResponse) {
	c.mu.Lock()
	c.evictions += int64(len(c.lru.put(key, resp, 0)))
	c.mu.Unlock()
	if c.persist != nil {
		if err := c.persist.SaveResult(key, resp); err != nil {
			c.count("server.persist.save_errors")
		}
	}
}

// InvalidateDataset drops every cached response computed from digest
// (cache keys are "digest|canonical-config", so a prefix scan finds
// exactly the dependents) and returns the number of entries removed.
// Only the memory tier is touched: persisted entries are verifiable
// and stay correct for a re-uploaded identical dataset; DELETE removes
// them explicitly via ResultPersistence.DeleteResults.
func (c *ResultCache) InvalidateDataset(digest string) int {
	prefix := digest + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, key := range c.lru.keys() {
		if strings.HasPrefix(key, prefix) && c.lru.remove(key) {
			n++
		}
	}
	return n
}

// CacheStats is the cache's /metrics snapshot.
type CacheStats = api.CacheStats

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.lru.len(), Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
