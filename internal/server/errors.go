package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/obs"
)

// ridKey is the private context key for the request ID.
type ridKey struct{}

// requestIDHeader is the wire header carrying the request ID in both
// directions: clients may send one, the server always answers with one,
// and a front node forwards it to the peer so one ID spans the cluster.
const requestIDHeader = "X-Request-ID"

var ridFallback atomic.Uint64

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a process-local counter rather than panicking in a handler.
		return fmt.Sprintf("rid-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// RequestIDFromContext returns the request ID attached by the request
// middleware ("" outside a request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// requestMiddleware assigns (or adopts) the X-Request-ID, echoes it on
// the response, threads it through the request context for error
// envelopes, emits a per-request obs annotation, and — when logw is
// non-nil — writes one access-log line per request.
func requestMiddleware(next http.Handler, trace *obs.Trace, logw io.Writer, logmu *sync.Mutex) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(requestIDHeader)
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		trace.Annotate("server.request",
			fmt.Sprintf("%s %s status=%d rid=%s", r.Method, r.URL.Path, rec.status, rid))
		if logw != nil {
			logmu.Lock()
			fmt.Fprintf(logw, "%s %s %s %d %v rid=%s\n",
				start.Format(time.RFC3339Nano), r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond), rid)
			logmu.Unlock()
		}
	})
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

// writeError writes the uniform /v1 error envelope, echoing the
// request's ID for cross-node correlation. 503s carry a Retry-After
// hint so well-behaved clients and front nodes back off instead of
// hammering a draining or saturated node.
func writeError(w http.ResponseWriter, r *http.Request, status int, code api.ErrorCode, format string, args ...any) {
	if status == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	var rid string
	if r != nil {
		rid = RequestIDFromContext(r.Context())
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: api.ErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: rid,
	}})
}
