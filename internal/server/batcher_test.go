package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// echoRun is a canned batch runner that records the requests it saw.
type echoRun struct {
	mu   sync.Mutex
	reqs []MineRequest
}

func (e *echoRun) run(ctx context.Context, req MineRequest) (*MineResponse, error) {
	e.mu.Lock()
	e.reqs = append(e.reqs, req)
	e.mu.Unlock()
	return &MineResponse{Dataset: req.Dataset}, nil
}

// TestBatcherSoloWindowFlush: a lone request is held for the window,
// then flushed with reason "window" and answered.
func TestBatcherSoloWindowFlush(t *testing.T) {
	e := &echoRun{}
	trace := testTrace()
	b := newBatcher(5*time.Millisecond, 16, trace, e.run)
	defer b.Close()

	begin := time.Now()
	resp, err := b.Do(context.Background(), MineRequest{Dataset: "d1"})
	if err != nil || resp.Dataset != "d1" {
		t.Fatalf("Do = %v, %v", resp, err)
	}
	if took := time.Since(begin); took < 4*time.Millisecond {
		t.Errorf("solo request answered after %v, before the window closed", took)
	}
	c := trace.Counters()
	if c["batch.flushes"] != 1 || c["batch.flush.window"] != 1 || c["batch.requests"] != 1 {
		t.Errorf("counters = %v, want one window flush of one request", c)
	}
}

// TestBatcherFullFlushesEarly: reaching max items flushes immediately —
// no caller waits out a window that is already full.
func TestBatcherFullFlushesEarly(t *testing.T) {
	e := &echoRun{}
	trace := testTrace()
	b := newBatcher(time.Hour, 2, trace, e.run) // window effectively never fires
	defer b.Close()

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Do(context.Background(), MineRequest{Dataset: fmt.Sprint(i)}); err != nil {
				t.Errorf("Do %d: %v", i, err)
			}
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full batch never flushed despite the hour-long window")
	}
	c := trace.Counters()
	if c["batch.flush.full"] != 1 || c["batch.requests"] != 2 {
		t.Errorf("counters = %v, want one full-flush of two requests", c)
	}
}

// TestBatcherCancelMidWindow: a request cancelled while queued returns
// its context error promptly and is counted, without disturbing the
// rest of the batch.
func TestBatcherCancelMidWindow(t *testing.T) {
	e := &echoRun{}
	trace := testTrace()
	b := newBatcher(time.Hour, 16, trace, e.run)

	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan error, 1)
	go func() {
		_, err := b.Do(ctx, MineRequest{Dataset: "doomed"})
		out <- err
	}()
	time.Sleep(2 * time.Millisecond) // let it enqueue
	cancel()
	select {
	case err := <-out:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Do = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request stayed blocked in the window")
	}
	// Close flushes the pending window; the dead item must be skipped,
	// not executed.
	b.Close()
	e.mu.Lock()
	ran := len(e.reqs)
	e.mu.Unlock()
	if ran != 0 {
		t.Errorf("cancelled request still executed (%d runs)", ran)
	}
	if c := trace.Counters(); c["batch.cancelled"] != 1 {
		t.Errorf("batch.cancelled = %d, want 1", c["batch.cancelled"])
	}
}

// TestBatcherAfterCloseFallsThrough: once closed, Do degrades to the
// direct path instead of failing.
func TestBatcherAfterCloseFallsThrough(t *testing.T) {
	e := &echoRun{}
	b := newBatcher(time.Hour, 16, testTrace(), e.run)
	b.Close()
	resp, err := b.Do(context.Background(), MineRequest{Dataset: "late"})
	if err != nil || resp.Dataset != "late" {
		t.Fatalf("post-close Do = %v, %v", resp, err)
	}
}

// TestBatchedMatchesUnbatched is the batcher's correctness contract:
// the same request against a batching server and a plain server yields
// the same response document (modulo the wall-clock timing field).
func TestBatchedMatchesUnbatched(t *testing.T) {
	plain := New(Options{})
	batched := New(Options{BatchWindow: 2 * time.Millisecond, BatchMax: 8})
	tsPlain := httptest.NewServer(plain.Handler())
	tsBatched := httptest.NewServer(batched.Handler())
	defer tsPlain.Close()
	defer tsBatched.Close()
	defer plain.Shutdown(context.Background())
	defer batched.Shutdown(context.Background())
	client := tsPlain.Client()

	table := []byte("r1,a,b\nr2,a,b\nr3,a,c\nr4,b,c\n")
	mine := func(base string) MineResponse {
		t.Helper()
		var info datasetInfo
		if status, raw := doJSON(t, client, "POST", base+"/v1/datasets/table", table, &info); status != http.StatusCreated {
			t.Fatalf("upload: %d %s", status, raw)
		}
		req := fmt.Sprintf(`{"dataset":%q,"config":{"minSupport":0.5,"generateRules":true,"minConfidence":0.6}}`, info.Digest)
		var resp MineResponse
		if status, raw := doJSON(t, client, "POST", base+"/v1/mine", []byte(req), &resp); status != http.StatusOK {
			t.Fatalf("mine: %d %s", status, raw)
		}
		resp.MiningMicros = 0 // wall clock, legitimately differs
		return resp
	}
	got, want := mine(tsBatched.URL), mine(tsPlain.URL)
	if !reflect.DeepEqual(got, want) {
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		t.Errorf("batched response differs from unbatched:\n%s\nvs\n%s", gb, wb)
	}
	if c := batched.trace.Counters(); c["batch.requests"] != 1 {
		t.Errorf("batched server counters = %v, want the request batched", c)
	}
	if c := plain.trace.Counters(); c["batch.requests"] != 0 {
		t.Errorf("plain server ran a batcher: %v", c)
	}
}

// TestBatcherGroupsWithinWindow: requests arriving inside one window
// share a flush (and identical ones share a single-flight computation),
// proven end-to-end via the counters.
func TestBatcherGroupsWithinWindow(t *testing.T) {
	const n = 4
	s := New(Options{BatchWindow: 50 * time.Millisecond, BatchMax: n})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	var info datasetInfo
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/datasets/table", []byte("r1,a,b\nr2,a,b\n"), &info); status != http.StatusCreated {
		t.Fatalf("upload: %d %s", status, raw)
	}
	body := fmt.Sprintf(`{"dataset":%q,"config":{"minSupport":0.5}}`, info.Digest)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", []byte(body), nil); status != http.StatusOK {
				t.Errorf("mine: %d %s", status, raw)
			}
		}()
	}
	wg.Wait()
	c := s.trace.Counters()
	if c["batch.requests"] != n {
		t.Errorf("batch.requests = %d, want %d", c["batch.requests"], n)
	}
	// All n were identical: however they landed in windows, exactly one
	// computation may have run (coalescing + result cache).
	if c["server.mine.runs"] != 1 {
		t.Errorf("server.mine.runs = %d, want 1 for %d identical batched requests", c["server.mine.runs"], n)
	}
}
