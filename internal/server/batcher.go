package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// batchItem is one synchronous mining request waiting in the batcher's
// collection window.
type batchItem struct {
	ctx context.Context
	req MineRequest
	out chan batchOut // buffered(1): flush never blocks on delivery
}

// batchOut is the per-request outcome delivered back to the handler.
type batchOut struct {
	resp *MineResponse
	err  error
}

// Batcher groups small synchronous /v1/mine requests arriving within a
// max-wait window into one flush, so the server processes fewer, fatter
// units of work: one obs span and one bookkeeping pass cover the whole
// batch, and identical requests landing in the same window are aligned
// onto the same single-flight computation instead of racing the result
// cache one after another. Every request still runs under its own
// context and receives a response byte-identical to the unbatched path.
//
// The collection rule is the classic channel + max-wait idiom: the
// first request opens a window of length window; the batch flushes when
// the window expires or when it reaches max items, whichever comes
// first. A request cancelled while queued is answered with its context
// error and does not hold up the rest of the batch.
//
// Counters (through obs to /v1/metrics):
//
//	batch.flushes        batches executed
//	batch.requests       requests that went through the batcher
//	batch.flush.window   flushes triggered by the max-wait window
//	batch.flush.full     flushes triggered by reaching max items
//	batch.flush.close    flushes triggered by shutdown
//	batch.cancelled      requests cancelled while waiting in a window
//
// Each flush also emits a "server.batch" stage span plus an annotation
// event carrying the batch size and flush reason.
type Batcher struct {
	window time.Duration
	max    int
	run    func(context.Context, MineRequest) (*MineResponse, error)
	trace  *obs.Trace

	in       chan *batchItem
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	flushes  sync.WaitGroup
}

// newBatcher starts a batcher collecting into windows of the given
// length, flushing early at max items. window must be positive (a
// server with batching disabled holds a nil *Batcher instead).
func newBatcher(window time.Duration, max int, trace *obs.Trace, run func(context.Context, MineRequest) (*MineResponse, error)) *Batcher {
	if max < 1 {
		max = 1
	}
	b := &Batcher{
		window:   window,
		max:      max,
		run:      run,
		trace:    trace,
		in:       make(chan *batchItem),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go b.loop()
	return b
}

// Do submits one request and waits for its response. The wait (and the
// request's slot in the batch) is bounded by ctx; after Close, requests
// fall through to the direct unbatched path.
func (b *Batcher) Do(ctx context.Context, req MineRequest) (*MineResponse, error) {
	it := &batchItem{ctx: ctx, req: req, out: make(chan batchOut, 1)}
	select {
	case b.in <- it:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.stop:
		return b.run(ctx, req)
	}
	select {
	case o := <-it.out:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// loop is the collector: it owns the current batch and its window timer.
func (b *Batcher) loop() {
	defer close(b.loopDone)
	var (
		batch []*batchItem
		timer *time.Timer
		timeC <-chan time.Time
	)
	flush := func(reason string) {
		if timer != nil {
			timer.Stop()
			timer, timeC = nil, nil
		}
		if len(batch) == 0 {
			return
		}
		items := batch
		batch = nil
		b.flushes.Add(1)
		go b.flush(items, reason)
	}
	for {
		select {
		case it := <-b.in:
			batch = append(batch, it)
			if len(batch) == 1 {
				timer = time.NewTimer(b.window)
				timeC = timer.C
			}
			if len(batch) >= b.max {
				flush("full")
			}
		case <-timeC:
			timer, timeC = nil, nil
			flush("window")
		case <-b.stop:
			flush("close")
			return
		}
	}
}

// flush executes one batch. Items run concurrently, each under its own
// request context — identical items coalesce through the single-flight
// group, so batching changes scheduling, never results.
func (b *Batcher) flush(items []*batchItem, reason string) {
	defer b.flushes.Done()
	span := b.trace.Stage("server.batch")
	defer span.End()
	b.trace.Annotate("server.batch", fmt.Sprintf("size=%d reason=%s", len(items), reason))
	b.trace.Add("batch.flushes", 1)
	b.trace.Add("batch.requests", int64(len(items)))
	b.trace.Add("batch.flush."+reason, 1)
	var wg sync.WaitGroup
	for _, it := range items {
		if err := it.ctx.Err(); err != nil {
			b.trace.Add("batch.cancelled", 1)
			it.out <- batchOut{err: err}
			continue
		}
		wg.Add(1)
		go func(it *batchItem) {
			defer wg.Done()
			resp, err := b.run(it.ctx, it.req)
			it.out <- batchOut{resp: resp, err: err}
		}(it)
	}
	wg.Wait()
}

// Close stops the collector, flushing any partially filled window, and
// waits for in-flight flushes. The server calls this after cancelling
// its base context, so stuck computations are already unwinding.
func (b *Batcher) Close() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.loopDone
	b.flushes.Wait()
}
