package server

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

func tableBody(ref string) []byte {
	return []byte(ref + ",a,b\n" + ref + "2,a,c\n")
}

func mustTable(t *testing.T, body []byte) *dataset.Table {
	t.Helper()
	tab, err := dataset.ReadTableCSV(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// putTable uploads body as a table, failing the test on a persistence
// error (impossible for the memory-only stores used here).
func putTable(t *testing.T, s *Store, body []byte) *StoredDataset {
	t.Helper()
	sd, err := s.PutTable(body, mustTable(t, body))
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

func TestStoreContentAddressing(t *testing.T) {
	s := NewStore(0, 0)
	body := tableBody("r")
	sd := putTable(t, s, body)
	if len(sd.Digest) != 64 {
		t.Fatalf("digest %q is not hex sha256", sd.Digest)
	}
	if sd.Rows != 2 || sd.Bytes != int64(len(body)) || sd.Kind != KindTable {
		t.Errorf("stored metadata = %+v", sd)
	}
	// Identical bytes address the same entry (idempotent re-upload).
	again := putTable(t, s, body)
	if again.Digest != sd.Digest {
		t.Error("identical upload produced a different digest")
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Errorf("re-upload duplicated the entry: %+v", st)
	}
	got, ok := s.Get(sd.Digest)
	if !ok || got.Table.Len() != 2 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get("feedbeef"); ok {
		t.Error("unknown digest must miss")
	}
	// A scene upload is distinguishable by kind.
	scene := dataset.PortoAlegreScene()
	sceneBody := []byte("scene-bytes")
	ssd, err := s.PutScene(sceneBody, scene)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Kind != KindScene || ssd.Rows != scene.Reference.Len() {
		t.Errorf("scene metadata = %+v", ssd)
	}
}

func TestStoreLRUEvictionByEntries(t *testing.T) {
	s := NewStore(2, 0)
	bodies := [][]byte{tableBody("a"), tableBody("b"), tableBody("c")}
	var digests []string
	for _, b := range bodies {
		digests = append(digests, putTable(t, s, b).Digest)
	}
	if st := s.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	if _, ok := s.Get(digests[0]); ok {
		t.Error("oldest entry must have been evicted")
	}
	for _, d := range digests[1:] {
		if _, ok := s.Get(d); !ok {
			t.Errorf("digest %s evicted unexpectedly", d[:8])
		}
	}
	// Touching an entry protects it from the next eviction.
	s.Get(digests[1])
	b := tableBody("d")
	putTable(t, s, b)
	if _, ok := s.Get(digests[1]); !ok {
		t.Error("recently used entry was evicted ahead of the older one")
	}
	if _, ok := s.Get(digests[2]); ok {
		t.Error("least recently used entry survived")
	}
}

func TestStoreLRUEvictionByBytes(t *testing.T) {
	small := tableBody("aa") // distinct bodies, equal length
	other := tableBody("bb")
	s := NewStore(0, int64(len(small)+len(other)))
	putTable(t, s, small)
	putTable(t, s, other)
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("under the byte cap, no eviction expected: %+v", st)
	}
	third := tableBody("cc")
	putTable(t, s, third)
	st := s.Stats()
	if st.Evictions != 1 || st.Bytes > int64(len(small)+len(other)) {
		t.Errorf("byte cap not enforced: %+v", st)
	}
}

func TestCacheKeyCanonicalisation(t *testing.T) {
	base := core.Config{Algorithm: core.AlgAprioriKC, MinSupport: 0.5}
	a := base
	a.Dependencies = []mining.Pair{{A: "x", B: "y"}, {A: "q", B: "p"}}
	b := base
	b.Dependencies = []mining.Pair{{A: "p", B: "q"}, {A: "y", B: "x"}, {A: "x", B: "y"}}

	ka, err := CacheKey("d", a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := CacheKey("d", b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("equivalent Φ sets keyed differently:\n  %s\n  %s", ka, kb)
	}
	// Different minsup must key differently.
	c := base
	c.MinSupport = 0.4
	kc, _ := CacheKey("d", c)
	if kc == ka {
		t.Error("different configs share a key")
	}
	// Different dataset digests must key differently.
	kd, _ := CacheKey("e", base)
	ke, _ := CacheKey("d", base)
	if kd == ke {
		t.Error("different datasets share a key")
	}
}

func TestResultCacheCountersAndEviction(t *testing.T) {
	c := NewResultCache(2)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k1", &MineResponse{Algorithm: "apriori"})
	c.Put("k2", &MineResponse{})
	got, ok := c.Get("k1") // bumps k1 ahead of k2
	if !ok || !got.Cached {
		t.Fatalf("cached response = %+v, %v (Cached flag must be set on hits)", got, ok)
	}
	c.Put("k3", &MineResponse{}) // over the cap of 2: evicts k2, the LRU
	if _, ok := c.Get("k2"); ok {
		t.Error("least recently used entry must be evicted")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("recently hit entry was evicted")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}
