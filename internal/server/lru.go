package server

import "container/list"

// lru is a least-recently-used map with optional entry-count and
// byte-size caps, shared by the dataset store and the result cache. It
// is not safe for concurrent use; owners hold their own lock.
type lru[K comparable, V any] struct {
	maxEntries int   // 0 = unlimited
	maxBytes   int64 // 0 = unlimited
	ll         *list.List
	items      map[K]*list.Element
	bytes      int64
}

type lruEntry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// newLRU returns an empty cache with the given caps (0 = unlimited).
func newLRU[K comparable, V any](maxEntries int, maxBytes int64) *lru[K, V] {
	return &lru[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[K]*list.Element),
	}
}

// get returns the value for key and marks it most recently used.
func (l *lru[K, V]) get(key K) (V, bool) {
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts (or refreshes) key with the given accounted size and
// evicts least-recently-used entries until the caps hold again. It
// returns the evicted keys, oldest first, so owners can invalidate
// state derived from them (nil when nothing was evicted). The inserted
// or refreshed entry itself is never evicted: an entry larger than
// maxBytes on its own is still stored — it simply evicts everything
// else; the caller enforces per-upload limits.
func (l *lru[K, V]) put(key K, val V, size int64) (evicted []K) {
	if el, ok := l.items[key]; ok {
		ent := el.Value.(*lruEntry[K, V])
		l.bytes += size - ent.size
		ent.val, ent.size = val, size
		l.ll.MoveToFront(el)
	} else {
		l.items[key] = l.ll.PushFront(&lruEntry[K, V]{key: key, val: val, size: size})
		l.bytes += size
	}
	for l.ll.Len() > 1 && (l.overEntries() || l.overBytes()) {
		if k, ok := l.removeOldest(); ok {
			evicted = append(evicted, k)
		}
	}
	return evicted
}

func (l *lru[K, V]) overEntries() bool { return l.maxEntries > 0 && l.ll.Len() > l.maxEntries }
func (l *lru[K, V]) overBytes() bool   { return l.maxBytes > 0 && l.bytes > l.maxBytes }

// removeOldest drops the least-recently-used entry and reports which
// key it held.
func (l *lru[K, V]) removeOldest() (K, bool) {
	el := l.ll.Back()
	if el == nil {
		var zero K
		return zero, false
	}
	ent := el.Value.(*lruEntry[K, V])
	l.ll.Remove(el)
	delete(l.items, ent.key)
	l.bytes -= ent.size
	return ent.key, true
}

// peek returns the value for key without touching recency, so
// enumeration (Store.List and wrappers around the lru) cannot perturb
// the eviction order.
func (l *lru[K, V]) peek(key K) (V, bool) {
	if el, ok := l.items[key]; ok {
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// remove drops key and reports whether it was present.
func (l *lru[K, V]) remove(key K) bool {
	el, ok := l.items[key]
	if !ok {
		return false
	}
	ent := el.Value.(*lruEntry[K, V])
	l.ll.Remove(el)
	delete(l.items, ent.key)
	l.bytes -= ent.size
	return true
}

// keys snapshots every key, most recently used first.
func (l *lru[K, V]) keys() []K {
	out := make([]K, 0, l.ll.Len())
	for el := l.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[K, V]).key)
	}
	return out
}

// len reports the number of entries; size reports the accounted bytes.
func (l *lru[K, V]) len() int    { return l.ll.Len() }
func (l *lru[K, V]) size() int64 { return l.bytes }
