package server

import (
	"repro/api"
	"repro/internal/server/persist"
)

// The persistence interfaces decouple the three in-memory owners —
// dataset Store, ResultCache, JobManager — from how (and whether)
// their state survives a restart. A Server built without a Persistence
// (the default, and the only mode before -data-dir existed) behaves
// byte-identically to the historical memory-only service; with one,
// every owner writes through and lazily reads back.
//
// persist.Dir is the disk-backed implementation; tests substitute
// fakes to inject failures.

// DatasetPersistence is the durable tier behind the dataset Store:
// content-addressed upload bodies plus a kind/rows sidecar. LoadDataset
// reports fs.ErrNotExist for unknown digests and
// persist.ErrVerifyFailed for stored bytes that no longer hash to
// their content address (the entry is discarded by the implementation).
type DatasetPersistence interface {
	SaveDataset(digest string, body []byte, kind DatasetKind, rows int) error
	LoadDataset(digest string) (body []byte, kind DatasetKind, rows int, err error)
	DeleteDataset(digest string) bool
	ListDatasets() []api.DatasetInfo
}

// ResultPersistence is the durable tier behind the ResultCache:
// responses stamped with a {dataset, config, result} digest chain that
// LoadResult verifies before returning. A corrupt or mismatched entry
// is discarded and reported as persist.ErrVerifyFailed so the caller
// recomputes; a missing one reports fs.ErrNotExist.
type ResultPersistence interface {
	SaveResult(key string, resp *MineResponse) error
	LoadResult(key string) (*MineResponse, error)
	DeleteResults(digest string) int
}

// JobJournal is the write-ahead journal behind the JobManager: every
// job state transition is appended (and fsynced) before the transition
// is acknowledged, so a startup replay can re-enqueue never-started
// jobs and mark in-flight ones lost.
type JobJournal interface {
	AppendJob(rec persist.JobRecord) error
	ReplayJobs() ([]persist.JobRecord, error)
	CompactJobs(recs []persist.JobRecord) error
}

// Persistence is the full pluggable persistence tier a Server can be
// built over (Options.Persistence). persist.Open provides the
// disk-backed implementation.
type Persistence interface {
	DatasetPersistence
	ResultPersistence
	JobJournal
	// PersistStats snapshots the tier for /v1/metrics.
	PersistStats() api.PersistStats
}

var _ Persistence = (*persist.Dir)(nil)
