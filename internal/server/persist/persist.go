// Package persist is the disk-backed persistence tier of qsrmined. A
// Dir owns one data directory and provides the three durability
// facets the server plugs in behind its in-memory owners:
//
//   - content-addressed dataset files (the original upload bytes plus a
//     small kind/rows sidecar, lazily re-parsed on first access after a
//     restart),
//   - a write-ahead job journal (jobs.wal, append-only JSON records
//     fsynced on every state transition, replayed on startup), and
//   - persisted result-cache entries stamped with a digest chain
//     {dataset, config, result} that is verified on load — a corrupt or
//     mismatched entry is discarded and recomputed, never served.
//
// Layout under the root directory:
//
//	datasets/<digest>            raw upload body (content address = SHA-256)
//	datasets/<digest>.meta.json  {"kind":"scene","rows":42}
//	results/<digest>-<keyhash>.json
//	                             {"chain":{...},"response":{...}}
//	jobs.wal                     one JSON record per line
//
// Every artifact is a pure function of (dataset digest, canonical
// config), so persistence is plain files plus the journal: writes are
// atomic (temp file + rename), re-writes of identical content are
// idempotent, and nothing in this package interprets mining semantics.
package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/api"
)

// ErrVerifyFailed reports that a persisted entry existed but failed
// digest-chain (or content-address) verification. The offending file
// has already been discarded; the caller recomputes.
var ErrVerifyFailed = errors.New("persist: digest verification failed")

// Dir is a disk-backed persistence root. Safe for concurrent use; the
// write-ahead journal is the only serialised resource.
type Dir struct {
	root string

	walMu sync.Mutex
	wal   *os.File

	// Counters for the /metrics persist block.
	walRecords     atomic.Int64
	walTruncated   atomic.Int64
	datasetReloads atomic.Int64
	resultHits     atomic.Int64
	verifyFailures atomic.Int64
	saveErrors     atomic.Int64
}

// Open prepares root as a persistence directory (creating it and its
// sub-directories as needed) and opens the job journal for appending.
func Open(root string) (*Dir, error) {
	for _, sub := range []string{"", "datasets", "results"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, fmt.Errorf("persist: preparing %s: %w", root, err)
		}
	}
	wal, err := os.OpenFile(filepath.Join(root, "jobs.wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening job journal: %w", err)
	}
	return &Dir{root: root, wal: wal}, nil
}

// Root returns the directory this Dir persists into.
func (d *Dir) Root() string { return d.root }

// Close releases the journal handle. Appends after Close fail.
func (d *Dir) Close() error {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}

// hashHex is the digest primitive of the chain: lowercase hex SHA-256.
func hashHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// validDigest guards path construction: content addresses are exactly
// 64 lowercase hex characters, never path fragments.
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeFileAtomic writes data to path via a temp file + rename, so a
// crash mid-write never leaves a half-written artifact under its final
// name.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// datasetMeta is the kind/rows sidecar next to a dataset body. Bytes is
// recoverable from the body file's size and deliberately not stored.
type datasetMeta struct {
	Kind api.DatasetKind `json:"kind"`
	Rows int             `json:"rows"`
}

func (d *Dir) datasetPath(digest string) string {
	return filepath.Join(d.root, "datasets", digest)
}

// SaveDataset persists an upload body and its kind/rows sidecar under
// its content address. Saving an already-present digest is a cheap
// no-op (identical bytes by construction).
func (d *Dir) SaveDataset(digest string, body []byte, kind api.DatasetKind, rows int) error {
	if !validDigest(digest) {
		return fmt.Errorf("persist: invalid dataset digest %q", digest)
	}
	path := d.datasetPath(digest)
	if _, err := os.Stat(path + ".meta.json"); err == nil {
		if _, err := os.Stat(path); err == nil {
			return nil
		}
	}
	if err := writeFileAtomic(path, body); err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: writing dataset body: %w", err)
	}
	meta, err := json.Marshal(datasetMeta{Kind: kind, Rows: rows})
	if err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: encoding dataset sidecar: %w", err)
	}
	if err := writeFileAtomic(path+".meta.json", meta); err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: writing dataset sidecar: %w", err)
	}
	return nil
}

// LoadDataset reads a persisted upload back, re-verifying that the
// body still hashes to its content address. A body that no longer
// matches (bit rot, tampering) is discarded with ErrVerifyFailed; a
// digest never saved reports fs.ErrNotExist.
func (d *Dir) LoadDataset(digest string) (body []byte, kind api.DatasetKind, rows int, err error) {
	if !validDigest(digest) {
		return nil, "", 0, fs.ErrNotExist
	}
	path := d.datasetPath(digest)
	body, err = os.ReadFile(path)
	if err != nil {
		return nil, "", 0, err
	}
	if hashHex(body) != digest {
		d.discard(digest, path, path+".meta.json")
		return nil, "", 0, ErrVerifyFailed
	}
	metaRaw, err := os.ReadFile(path + ".meta.json")
	if err != nil {
		return nil, "", 0, err
	}
	var meta datasetMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		d.discard(digest, path, path+".meta.json")
		return nil, "", 0, ErrVerifyFailed
	}
	d.datasetReloads.Add(1)
	return body, meta.Kind, meta.Rows, nil
}

// DeleteDataset removes a persisted dataset, reporting whether it was
// present.
func (d *Dir) DeleteDataset(digest string) bool {
	if !validDigest(digest) {
		return false
	}
	path := d.datasetPath(digest)
	err := os.Remove(path)
	os.Remove(path + ".meta.json")
	return err == nil
}

// ListDatasets enumerates the persisted datasets' metadata, ordered by
// digest. Bodies are not read (rows come from the sidecar, bytes from
// the file size).
func (d *Dir) ListDatasets() []api.DatasetInfo {
	entries, err := os.ReadDir(filepath.Join(d.root, "datasets"))
	if err != nil {
		return nil
	}
	var out []api.DatasetInfo
	for _, e := range entries {
		digest := e.Name()
		if !validDigest(digest) {
			continue // sidecars, temp files
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		metaRaw, err := os.ReadFile(d.datasetPath(digest) + ".meta.json")
		if err != nil {
			continue // body without sidecar: half-saved, skip
		}
		var meta datasetMeta
		if err := json.Unmarshal(metaRaw, &meta); err != nil {
			continue
		}
		out = append(out, api.DatasetInfo{Digest: digest, Kind: meta.Kind, Rows: meta.Rows, Bytes: fi.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// discard removes files that failed verification and counts the event.
func (d *Dir) discard(what string, paths ...string) {
	for _, p := range paths {
		os.Remove(p)
	}
	d.verifyFailures.Add(1)
}

// resultChain is the verification stamp on a persisted result: SHA-256
// over the dataset's content address, the canonical config JSON, and
// the canonical response JSON. On load all three links are recomputed
// from the requested cache key and the stored response and must match.
type resultChain struct {
	Dataset string `json:"dataset"`
	Config  string `json:"config"`
	Result  string `json:"result"`
}

// resultFile is the on-disk form of one result-cache entry.
type resultFile struct {
	Chain    resultChain       `json:"chain"`
	Response *api.MineResponse `json:"response"`
}

// splitKey takes a result-cache key ("digest|canonical-config-json")
// apart.
func splitKey(key string) (digest, cfg string, ok bool) {
	i := strings.IndexByte(key, '|')
	if i < 0 || !validDigest(key[:i]) {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}

func (d *Dir) resultPath(digest, key string) string {
	return filepath.Join(d.root, "results", digest+"-"+hashHex([]byte(key))+".json")
}

// canonicalResponse is the byte form the result link of the chain is
// computed over: the response with the transport-only Cached flag
// cleared, in the struct's fixed field order.
func canonicalResponse(resp *api.MineResponse) ([]byte, error) {
	cp := *resp
	cp.Cached = false
	return json.Marshal(&cp)
}

// SaveResult persists a mining response under its cache key, stamped
// with the digest chain.
func (d *Dir) SaveResult(key string, resp *api.MineResponse) error {
	digest, cfg, ok := splitKey(key)
	if !ok {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: malformed cache key %q", key)
	}
	resJSON, err := canonicalResponse(resp)
	if err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: encoding result: %w", err)
	}
	doc, err := json.Marshal(resultFile{
		Chain: resultChain{
			Dataset: digest,
			Config:  hashHex([]byte(cfg)),
			Result:  hashHex(resJSON),
		},
		Response: resp,
	})
	if err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: encoding result file: %w", err)
	}
	if err := writeFileAtomic(d.resultPath(digest, key), doc); err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: writing result: %w", err)
	}
	return nil
}

// LoadResult reads the persisted response for a cache key, verifying
// its digest chain link by link. A missing entry reports fs.ErrNotExist;
// an entry that fails verification is deleted and reports
// ErrVerifyFailed so the caller recomputes.
func (d *Dir) LoadResult(key string) (*api.MineResponse, error) {
	digest, cfg, ok := splitKey(key)
	if !ok {
		return nil, fs.ErrNotExist
	}
	path := d.resultPath(digest, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file resultFile
	if err := json.Unmarshal(raw, &file); err != nil || file.Response == nil {
		d.discard(digest, path)
		return nil, ErrVerifyFailed
	}
	resJSON, err := canonicalResponse(file.Response)
	if err != nil {
		d.discard(digest, path)
		return nil, ErrVerifyFailed
	}
	want := resultChain{Dataset: digest, Config: hashHex([]byte(cfg)), Result: hashHex(resJSON)}
	if file.Chain != want {
		d.discard(digest, path)
		return nil, ErrVerifyFailed
	}
	d.resultHits.Add(1)
	file.Response.Cached = false // transport flag; the cache re-marks copies
	return file.Response, nil
}

// DeleteResults removes every persisted result computed from digest
// (file names are digest-prefixed, mirroring the in-memory prefix
// scan) and returns the number removed.
func (d *Dir) DeleteResults(digest string) int {
	if !validDigest(digest) {
		return 0
	}
	entries, err := os.ReadDir(filepath.Join(d.root, "results"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), digest+"-") {
			if os.Remove(filepath.Join(d.root, "results", e.Name())) == nil {
				n++
			}
		}
	}
	return n
}

// PersistStats snapshots the persistence tier for /metrics.
func (d *Dir) PersistStats() api.PersistStats {
	st := api.PersistStats{
		Enabled:        true,
		WALRecords:     d.walRecords.Load(),
		WALTruncated:   d.walTruncated.Load(),
		DatasetReloads: d.datasetReloads.Load(),
		ResultHits:     d.resultHits.Load(),
		VerifyFailures: d.verifyFailures.Load(),
		SaveErrors:     d.saveErrors.Load(),
	}
	if entries, err := os.ReadDir(filepath.Join(d.root, "datasets")); err == nil {
		for _, e := range entries {
			if validDigest(e.Name()) {
				st.Datasets++
			}
		}
	}
	if entries, err := os.ReadDir(filepath.Join(d.root, "results")); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				st.Results++
			}
		}
	}
	return st
}
