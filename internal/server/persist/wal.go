package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/api"
)

// Job journal record types. The journal grammar is one JSON object per
// line:
//
//	submitted: {"t":"submitted","id":ID,"time":RFC3339,"req":MineRequest}
//	started:   {"t":"started","id":ID,"time":RFC3339}
//	finished:  {"t":"finished","id":ID,"time":RFC3339,
//	            "state":"done"|"failed","error":STR?,"lost":BOOL?}
//	cancelled: {"t":"cancelled","id":ID,"time":RFC3339}
//
// Records are append-only and fsynced per append; replay folds them by
// ID, last state winning. A half-written trailing record (torn by a
// crash) is tolerated: replay stops at the first undecodable line and
// the next compaction truncates it away.
const (
	RecSubmitted = "submitted"
	RecStarted   = "started"
	RecFinished  = "finished"
	RecCancelled = "cancelled"
)

// JobRecord is one journal line.
type JobRecord struct {
	Type  string           `json:"t"`
	ID    string           `json:"id"`
	Time  time.Time        `json:"time"`
	Req   *api.MineRequest `json:"req,omitempty"`
	State api.JobState     `json:"state,omitempty"`
	Error string           `json:"error,omitempty"`
	Lost  bool             `json:"lost,omitempty"`
}

// maxWALLine bounds one journal record (a submitted record embeds the
// full mining request, which is itself bounded by the upload cap).
const maxWALLine = 4 << 20

// AppendJob appends one record to the journal and fsyncs it, so an
// acknowledged state transition survives a crash immediately after.
func (d *Dir) AppendJob(rec JobRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.wal == nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: journal is closed")
	}
	if _, err := d.wal.Write(line); err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: appending journal record: %w", err)
	}
	if err := d.wal.Sync(); err != nil {
		d.saveErrors.Add(1)
		return fmt.Errorf("persist: syncing journal: %w", err)
	}
	d.walRecords.Add(1)
	return nil
}

// ReplayJobs reads the journal back in append order. Replay stops at
// the first record that does not decode — a torn tail write from a
// crash — and reports what was readable up to that point; the torn
// tail is counted and dropped by the next CompactJobs.
func (d *Dir) ReplayJobs() ([]JobRecord, error) {
	f, err := os.Open(filepath.Join(d.root, "jobs.wal"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: opening journal for replay: %w", err)
	}
	defer f.Close()
	var recs []JobRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxWALLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Type == "" || rec.ID == "" {
			d.walTruncated.Add(1)
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && len(recs) == 0 {
		return nil, fmt.Errorf("persist: reading journal: %w", err)
	}
	return recs, nil
}

// CompactJobs atomically replaces the journal with the given records
// (the live set a replay distilled), dropping history — including any
// torn tail — and re-opens the append handle on the new file. A stale
// handle held by a previous process generation keeps writing to the
// unlinked old inode, harmlessly.
func (d *Dir) CompactJobs(recs []JobRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("persist: encoding compacted journal: %w", err)
		}
	}
	path := filepath.Join(d.root, "jobs.wal")
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("persist: compacting journal: %w", err)
	}
	wal, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: reopening compacted journal: %w", err)
	}
	d.walMu.Lock()
	if d.wal != nil {
		d.wal.Close()
	}
	d.wal = wal
	d.walMu.Unlock()
	return nil
}
