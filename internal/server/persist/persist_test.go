package persist

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/api"
)

// digestOf mirrors the server's content addressing for test bodies.
func digestOf(body []byte) string { return hashHex(body) }

func openDir(t *testing.T) *Dir {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDatasetRoundTrip(t *testing.T) {
	d := openDir(t)
	body := []byte("r1,a,b\nr2,a,c\n")
	digest := digestOf(body)

	if err := d.SaveDataset(digest, body, api.KindTable, 2); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-save (identical bytes by content addressing).
	if err := d.SaveDataset(digest, body, api.KindTable, 2); err != nil {
		t.Fatal(err)
	}
	got, kind, rows, err := d.LoadDataset(digest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) || kind != api.KindTable || rows != 2 {
		t.Errorf("round trip = %q kind %q rows %d", got, kind, rows)
	}

	list := d.ListDatasets()
	if len(list) != 1 || list[0].Digest != digest || list[0].Rows != 2 || list[0].Bytes != int64(len(body)) {
		t.Errorf("ListDatasets = %+v", list)
	}

	// Unknown digest: not-exist, not a verification failure.
	if _, _, _, err := d.LoadDataset(digestOf([]byte("other"))); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing dataset err = %v, want fs.ErrNotExist", err)
	}
	// Digests are the only accepted names — no path fragments.
	if err := d.SaveDataset("../../etc/passwd", body, api.KindTable, 2); err == nil {
		t.Error("non-digest name accepted")
	}

	if !d.DeleteDataset(digest) {
		t.Error("delete reported absent")
	}
	if d.DeleteDataset(digest) {
		t.Error("double delete reported present")
	}
}

func TestDatasetCorruptionDetected(t *testing.T) {
	d := openDir(t)
	body := []byte("r1,a,b\n")
	digest := digestOf(body)
	if err := d.SaveDataset(digest, body, api.KindTable, 1); err != nil {
		t.Fatal(err)
	}
	// Flip the stored bytes: the content address no longer matches.
	path := filepath.Join(d.Root(), "datasets", digest)
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.LoadDataset(digest); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("corrupt dataset err = %v, want ErrVerifyFailed", err)
	}
	// The corrupt file was discarded: the next load is a clean miss.
	if _, _, _, err := d.LoadDataset(digest); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("after discard err = %v, want fs.ErrNotExist", err)
	}
	if st := d.PersistStats(); st.VerifyFailures != 1 {
		t.Errorf("verifyFailures = %d, want 1", st.VerifyFailures)
	}
}

func TestResultRoundTripAndChainVerification(t *testing.T) {
	d := openDir(t)
	digest := digestOf([]byte("dataset"))
	key := digest + `|{"minSupport":0.5}`
	resp := &api.MineResponse{Algorithm: "eclat-kc+", Transactions: 7, Cached: true}

	if err := d.SaveResult(key, resp); err != nil {
		t.Fatal(err)
	}
	got, err := d.LoadResult(key)
	if err != nil {
		t.Fatal(err)
	}
	// The Cached flag is transport-only: excluded from the chain and
	// cleared on load (the cache re-marks served copies).
	if got.Cached {
		t.Error("persisted result came back pre-marked cached")
	}
	if got.Algorithm != resp.Algorithm || got.Transactions != resp.Transactions {
		t.Errorf("round trip = %+v", got)
	}

	// A different config under the same dataset is a distinct entry.
	if _, err := d.LoadResult(digest + `|{"minSupport":0.6}`); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("other config err = %v, want fs.ErrNotExist", err)
	}

	// Corrupt the stored response: the result link of the chain breaks.
	path := d.resultPath(digest, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(raw))
	copy(tampered, []byte(`{"chain":{"dataset":"x`))
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadResult(key); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("tampered result err = %v, want ErrVerifyFailed", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Error("tampered result file was not discarded")
	}
	if st := d.PersistStats(); st.VerifyFailures != 1 || st.ResultHits != 1 {
		t.Errorf("stats = %+v, want 1 verify failure / 1 result hit", st)
	}
}

func TestResultChainRejectsSwappedKey(t *testing.T) {
	d := openDir(t)
	digest := digestOf([]byte("dataset"))
	keyA := digest + `|{"minSupport":0.5}`
	keyB := digest + `|{"minSupport":0.9}`
	if err := d.SaveResult(keyA, &api.MineResponse{Transactions: 1}); err != nil {
		t.Fatal(err)
	}
	// Serve A's file under B's key: the config link must catch it.
	if err := os.Rename(d.resultPath(digest, keyA), d.resultPath(digest, keyB)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadResult(keyB); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("swapped result err = %v, want ErrVerifyFailed", err)
	}
}

func TestDeleteResultsByDataset(t *testing.T) {
	d := openDir(t)
	a, b := digestOf([]byte("a")), digestOf([]byte("b"))
	for _, key := range []string{a + "|c1", a + "|c2", b + "|c1"} {
		if err := d.SaveResult(key, &api.MineResponse{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.DeleteResults(a); n != 2 {
		t.Errorf("DeleteResults(a) = %d, want 2", n)
	}
	if _, err := d.LoadResult(b + "|c1"); err != nil {
		t.Errorf("unrelated dataset's result was deleted: %v", err)
	}
}

func TestWALAppendReplayCompact(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	req := &api.MineRequest{Dataset: digestOf([]byte("d"))}
	now := time.Now().UTC().Truncate(time.Second)
	records := []JobRecord{
		{Type: RecSubmitted, ID: "j1", Time: now, Req: req},
		{Type: RecStarted, ID: "j1", Time: now},
		{Type: RecFinished, ID: "j1", Time: now, State: api.JobDone},
		{Type: RecSubmitted, ID: "j2", Time: now, Req: req},
		{Type: RecCancelled, ID: "j2", Time: now},
	}
	for _, rec := range records {
		if err := d.AppendJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	// A second process generation replays exactly what was appended.
	d2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i, rec := range got {
		if rec.Type != records[i].Type || rec.ID != records[i].ID || rec.State != records[i].State {
			t.Errorf("record %d = %+v, want %+v", i, rec, records[i])
		}
	}
	if got[0].Req == nil || got[0].Req.Dataset != req.Dataset {
		t.Error("submitted record lost its request")
	}

	// Compaction rewrites the journal to the retained set; appends keep
	// working on the new file.
	if err := d2.CompactJobs(got[:1]); err != nil {
		t.Fatal(err)
	}
	if err := d2.AppendJob(JobRecord{Type: RecStarted, ID: "j1", Time: now}); err != nil {
		t.Fatal(err)
	}
	again, err := d2.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0].Type != RecSubmitted || again[1].Type != RecStarted {
		t.Errorf("post-compaction journal = %+v", again)
	}
}

func TestWALToleratesTornTail(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendJob(JobRecord{Type: RecSubmitted, ID: "j1", Time: time.Now(), Req: &api.MineRequest{}}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Simulate a crash mid-append: a half-written trailing record.
	f, err := os.OpenFile(filepath.Join(root, "jobs.wal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"started","id":"j1","ti`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	recs, err := d2.ReplayJobs()
	if err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if len(recs) != 1 || recs[0].Type != RecSubmitted {
		t.Errorf("replay with torn tail = %+v, want the 1 intact record", recs)
	}
	if st := d2.PersistStats(); st.WALTruncated != 1 {
		t.Errorf("walTruncated = %d, want 1", st.WALTruncated)
	}
}
