package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/api"
)

// decodeEnvelope parses a /v1 error body, failing the test on anything
// that is not the uniform envelope.
func decodeEnvelope(t *testing.T, raw string) api.ErrorBody {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal([]byte(raw), &env); err != nil || env.Error.Code == "" {
		t.Fatalf("body %q is not the error envelope (err %v)", raw, err)
	}
	return env.Error
}

// TestRouteTableBothSurfaces enumerates the endpoint table and requires
// every route to answer on its /v1 path without deprecation markers and
// on its legacy alias WITH them — same status either way. This is the
// contract test for the /v1 migration: adding an endpoint to one
// surface but not the other fails here.
func TestRouteTableBothSurfaces(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	// Fill the path placeholders with values that at worst 404; the
	// point is routing parity, not happy paths.
	fill := func(p string) string {
		p = strings.ReplaceAll(p, "{digest}", "beef")
		return strings.ReplaceAll(p, "{id}", "j000000-00000042")
	}
	for _, rt := range s.routeTable() {
		rt := rt
		t.Run(rt.Method+" "+rt.V1, func(t *testing.T) {
			do := func(path string) *http.Response {
				req, err := http.NewRequest(rt.Method, ts.URL+fill(path), strings.NewReader(""))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := client.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				return resp
			}
			v1 := do(rt.V1)
			legacy := do(rt.Legacy)
			if v1.StatusCode != legacy.StatusCode {
				t.Errorf("status diverges: /v1 %d vs legacy %d", v1.StatusCode, legacy.StatusCode)
			}
			if v1.StatusCode == http.StatusMethodNotAllowed {
				t.Errorf("%s %s not routed", rt.Method, rt.V1)
			}
			if got := v1.Header.Get("Deprecation"); got != "" {
				t.Errorf("/v1 path carries Deprecation %q", got)
			}
			if got := legacy.Header.Get("Deprecation"); got != "true" {
				t.Errorf("legacy alias Deprecation = %q, want true", got)
			}
			wantLink := "<" + rt.V1 + `>; rel="successor-version"`
			if got := legacy.Header.Get("Link"); got != wantLink {
				t.Errorf("legacy Link = %q, want %q", got, wantLink)
			}
		})
	}
	if n := s.trace.Counters()["server.legacy.requests"]; n != int64(len(s.routeTable())) {
		t.Errorf("server.legacy.requests = %d, want %d", n, len(s.routeTable()))
	}
}

// TestErrorEnvelopeCodes pins the machine-readable code for each error
// class the API can emit.
func TestErrorEnvelopeCodes(t *testing.T) {
	s := New(Options{MaxUploadBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	var info datasetInfo
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/datasets/table", []byte("r1,a,b\nr2,a,b\n"), &info); status != http.StatusCreated {
		t.Fatalf("upload: %d %s", status, raw)
	}
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 api.ErrorCode
	}{
		{"unknown route", "GET", "/v1/nope", "", 404, api.CodeNotFound},
		{"garbage body", "POST", "/v1/mine", "}{", 400, api.CodeBadRequest},
		{"unknown dataset", "POST", "/v1/mine", `{"dataset":"beef","config":{"minSupport":0.5}}`, 404, api.CodeNotFound},
		{"unknown job", "GET", "/v1/jobs/j000000-00000042", "", 404, api.CodeNotFound},
		{"engine config error", "POST", "/v1/mine",
			fmt.Sprintf(`{"dataset":%q,"config":{"algorithm":"eclat-kc+","minSupport":0.5,"counting":"horizontal"}}`, info.Digest),
			422, api.CodeConfigInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, client, tc.method, ts.URL+tc.path, []byte(tc.body), nil)
			if status != tc.wantStatus {
				t.Fatalf("status %d %s, want %d", status, raw, tc.wantStatus)
			}
			eb := decodeEnvelope(t, raw)
			if eb.Code != tc.wantCode {
				t.Errorf("code %q, want %q", eb.Code, tc.wantCode)
			}
			if eb.RequestID == "" {
				t.Error("envelope missing requestId")
			}
		})
	}
}

// TestRequestIDAdoptedAndGenerated: a caller-supplied X-Request-ID is
// echoed on the response and into error envelopes; absent one, the
// middleware mints an ID.
func TestRequestIDAdoptedAndGenerated(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	req, _ := http.NewRequest("GET", ts.URL+"/v1/datasets/beef", nil)
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("response X-Request-ID = %q, want the caller's", got)
	}
	if env.Error.RequestID != "trace-me-42" {
		t.Errorf("envelope requestId = %q, want the caller's", env.Error.RequestID)
	}

	resp2, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", got)
	}
}

// TestRetryAfterOn503 requires every 503 — draining and queue-full — to
// carry a Retry-After hint and the matching machine code.
func TestRetryAfterOn503(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		s := New(Options{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/mine", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("draining 503 missing Retry-After")
		}
		var env api.ErrorEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		if env.Error.Code != api.CodeDraining {
			t.Errorf("code %q, want draining", env.Error.Code)
		}
	})

	t.Run("queue full", func(t *testing.T) {
		s := New(Options{Workers: 1, QueueCap: 1})
		release := make(chan struct{})
		s.mineHook = func(ctx context.Context) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer func() {
			close(release) // unblock the pool before draining
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		client := ts.Client()

		var info datasetInfo
		doJSON(t, client, "POST", ts.URL+"/v1/datasets/table", []byte("r1,a,b\n"), &info)
		body := fmt.Sprintf(`{"dataset":%q,"config":{"minSupport":0.5}}`, info.Digest)
		// One running + one queued fill the pool; the next submission
		// must bounce with 503 queue_full and a Retry-After hint.
		var last *http.Response
		for i := 0; i < 8; i++ {
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				last = resp
				break
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: status %d", i, resp.StatusCode)
			}
		}
		if last == nil {
			t.Fatal("queue never filled")
		}
		defer last.Body.Close()
		if last.Header.Get("Retry-After") == "" {
			t.Error("queue-full 503 missing Retry-After")
		}
		var env api.ErrorEnvelope
		json.NewDecoder(last.Body).Decode(&env)
		if env.Error.Code != api.CodeQueueFull {
			t.Errorf("code %q, want queue_full", env.Error.Code)
		}
	})
}
