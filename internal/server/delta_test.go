package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/api"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

// uploadSampleTable uploads a small transaction-table CSV.
func uploadSampleTable(t *testing.T, client *http.Client, base string) datasetInfo {
	t.Helper()
	csv := []byte("r1,a,b\nr2,a,c\nr3,a,b\nr4,b,c\nr5,a,b,c\n")
	var info datasetInfo
	status, raw := doJSON(t, client, "POST", base+"/datasets/table", csv, &info)
	if status != http.StatusCreated {
		t.Fatalf("table upload: %d %s", status, raw)
	}
	return info
}

// uploadGeneratedScene uploads a deterministic datagen scene large
// enough that a single-feature edit dirties only a minority of rows.
func uploadGeneratedScene(t *testing.T, client *http.Client, base string, seed int64) (datasetInfo, *dataset.Dataset) {
	t.Helper()
	d, err := datagen.GenerateScene(datagen.DefaultScene(6, 5, seed))
	if err != nil {
		t.Fatalf("GenerateScene: %v", err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var info datasetInfo
	status, raw := doJSON(t, client, "POST", base+"/datasets/scene", buf.Bytes(), &info)
	if status != http.StatusCreated {
		t.Fatalf("scene upload: %d %s", status, raw)
	}
	return info, d
}

// singleMoveOps nudges the first feature of the first relevant layer.
func singleMoveOps(d *dataset.Dataset) []dataset.Op {
	layer := d.Relevant[0]
	f := layer.Features[0]
	env := f.Geometry.Envelope()
	wkt := fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))",
		env.MinX+1, env.MinY, env.MaxX+1, env.MinY,
		env.MaxX+1, env.MaxY, env.MinX+1, env.MaxY, env.MinX+1, env.MinY)
	return []dataset.Op{{Action: dataset.OpUpdate, Layer: layer.Type, ID: f.ID, WKT: wkt}}
}

// TestPatchThenMineUsesDeltaPipeline is the delta pipeline's acceptance
// path: upload a scene, mine it, PATCH one feature, mine the successor,
// and require (a) the delta counters to prove sparse re-extraction and
// result patching happened, and (b) the delta-served response to be
// identical to a cold mine of the successor on a fresh server.
func TestPatchThenMineUsesDeltaPipeline(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	info, scene := uploadGeneratedScene(t, client, ts.URL+"/v1", 17)
	cfg := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.2}

	var parentResp MineResponse
	status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, info.Digest, cfg), &parentResp)
	if status != http.StatusOK {
		t.Fatalf("parent mine: %d %s", status, raw)
	}

	ops, err := json.Marshal(api.PatchRequest{Ops: singleMoveOps(scene)})
	if err != nil {
		t.Fatal(err)
	}
	var patched api.PatchResponse
	status, raw = doJSON(t, client, "PATCH", ts.URL+"/v1/datasets/"+info.Digest, ops, &patched)
	if status != http.StatusCreated {
		t.Fatalf("patch: %d %s", status, raw)
	}
	if patched.Parent != info.Digest || patched.Dataset.Digest == info.Digest {
		t.Fatalf("patch lineage wrong: %+v", patched)
	}
	if patched.Changed != 1 || patched.Dataset.Kind != KindScene {
		t.Fatalf("patch response wrong: %+v", patched)
	}

	var deltaResp MineResponse
	status, raw = doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, patched.Dataset.Digest, cfg), &deltaResp)
	if status != http.StatusOK {
		t.Fatalf("successor mine: %d %s", status, raw)
	}

	// The counters prove the delta pipeline ran: only a minority of rows
	// re-extracted, prepared geometries were reused, and the parent's
	// mining result was patched rather than recomputed.
	c := s.Metrics().Obs.Counters
	if c["delta.rows.dirty"] == 0 || c["delta.rows.dirty"] >= c["delta.rows.total"] {
		t.Errorf("dirty rows = %d of %d; want sparse non-zero", c["delta.rows.dirty"], c["delta.rows.total"])
	}
	if c["delta.prepared.reused"] == 0 {
		t.Errorf("delta.prepared.reused = 0, want > 0")
	}
	if c["delta.mine.patched"] != 1 {
		t.Errorf("delta.mine.patched = %d, want 1 (counters: %v)", c["delta.mine.patched"], c)
	}

	// Cold reference: a fresh server mining the successor from scratch.
	s2 := New(Options{Workers: 1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Shutdown(context.Background())
	client2 := ts2.Client()

	nd, _, err := scene.ApplyOps(singleMoveOps(scene))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nd.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var info2 datasetInfo
	if status, raw := doJSON(t, client2, "POST", ts2.URL+"/v1/datasets/scene", buf.Bytes(), &info2); status != http.StatusCreated {
		t.Fatalf("cold upload: %d %s", status, raw)
	}
	if info2.Digest != patched.Dataset.Digest {
		t.Fatalf("successor digest %s differs from independent serialisation %s", patched.Dataset.Digest, info2.Digest)
	}
	var coldResp MineResponse
	if status, raw := doJSON(t, client2, "POST", ts2.URL+"/v1/mine", mineBody(t, info2.Digest, cfg), &coldResp); status != http.StatusOK {
		t.Fatalf("cold mine: %d %s", status, raw)
	}
	if deltaResp.Transactions != coldResp.Transactions || deltaResp.MinSupportCount != coldResp.MinSupportCount {
		t.Fatalf("headline mismatch: delta %+v cold %+v", deltaResp, coldResp)
	}
	if len(deltaResp.Frequent) != len(coldResp.Frequent) {
		t.Fatalf("frequent count %d, cold %d", len(deltaResp.Frequent), len(coldResp.Frequent))
	}
	for i := range coldResp.Frequent {
		g, w := deltaResp.Frequent[i], coldResp.Frequent[i]
		if g.Support != w.Support || fmt.Sprint(g.Items) != fmt.Sprint(w.Items) {
			t.Fatalf("frequent[%d] = %v(%d), cold %v(%d)", i, g.Items, g.Support, w.Items, w.Support)
		}
	}

	// The delta-served response is cached: an identical re-request hits.
	var again MineResponse
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, patched.Dataset.Digest, cfg), &again); status != http.StatusOK {
		t.Fatalf("re-mine: %d %s", status, raw)
	}
	if !again.Cached {
		t.Errorf("second successor mine should be a cache hit")
	}
}

// TestPatchChainMinesIncrementally mines after every patch in a chain
// and requires each step past the first parent to patch, not rewalk the
// whole database from scratch.
func TestPatchChainMinesIncrementally(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	info, scene := uploadGeneratedScene(t, client, ts.URL+"/v1", 31)
	cfg := core.Config{Algorithm: core.AlgAprioriKCPlus, MinSupport: 0.25}
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, info.Digest, cfg), nil); status != http.StatusOK {
		t.Fatalf("parent mine: %d %s", status, raw)
	}

	digest := info.Digest
	for step := 0; step < 3; step++ {
		layer := scene.Relevant[step%len(scene.Relevant)]
		f := layer.Features[step%layer.Len()]
		op := dataset.Op{Action: dataset.OpUpdate, Layer: layer.Type, ID: f.ID,
			WKT: fmt.Sprintf("POLYGON ((%d 1, %d 1, %d 3, %d 3, %d 1))", step*3, step*3+2, step*3+2, step*3, step*3)}
		body, _ := json.Marshal(api.PatchRequest{Ops: []dataset.Op{op}})
		var pr api.PatchResponse
		if status, raw := doJSON(t, client, "PATCH", ts.URL+"/v1/datasets/"+digest, body, &pr); status != http.StatusCreated {
			t.Fatalf("step %d patch: %d %s", step, status, raw)
		}
		if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, pr.Dataset.Digest, cfg), nil); status != http.StatusOK {
			t.Fatalf("step %d mine: %d %s", step, status, raw)
		}
		scene, _, _ = scene.ApplyOps([]dataset.Op{op})
		digest = pr.Dataset.Digest
	}
	c := s.Metrics().Obs.Counters
	if c["delta.mine.patched"] != 3 {
		t.Errorf("delta.mine.patched = %d, want 3 (counters: %v)", c["delta.mine.patched"], c)
	}
	if c["delta.state.reused"] != 0 {
		// Each mine consumes the parent state via Apply; direct state
		// reuse happens on re-mining the same digest, not here.
		t.Logf("note: delta.state.reused = %d", c["delta.state.reused"])
	}
}

// TestDatasetLifecycle exercises GET /v1/datasets and DELETE
// /v1/datasets/{digest}, requiring deletion to invalidate the cached
// results of exactly that digest (counter-verified).
func TestDatasetLifecycle(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	sceneInfo := uploadSampleScene(t, client, ts.URL+"/v1")
	tableInfo := uploadSampleTable(t, client, ts.URL+"/v1")

	var list api.DatasetList
	if status, raw := doJSON(t, client, "GET", ts.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: %d %s", status, raw)
	}
	if len(list.Datasets) != 2 {
		t.Fatalf("list has %d datasets, want 2: %+v", len(list.Datasets), list)
	}
	if list.Datasets[0].Digest > list.Datasets[1].Digest {
		t.Errorf("list not ordered by digest: %+v", list)
	}

	// Two distinct configs fill two cache entries for the scene.
	for _, ms := range []float64{0.3, 0.5} {
		cfg := core.Config{Algorithm: core.AlgAprioriKCPlus, MinSupport: ms}
		if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, sceneInfo.Digest, cfg), nil); status != http.StatusOK {
			t.Fatalf("mine: %d %s", status, raw)
		}
	}
	tcfg := core.Config{Algorithm: core.AlgApriori, MinSupport: 0.4}
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, tableInfo.Digest, tcfg), nil); status != http.StatusOK {
		t.Fatalf("table mine: %d %s", status, raw)
	}

	var del api.DeleteResponse
	if status, raw := doJSON(t, client, "DELETE", ts.URL+"/v1/datasets/"+sceneInfo.Digest, nil, &del); status != http.StatusOK {
		t.Fatalf("delete: %d %s", status, raw)
	}
	if !del.Deleted || del.ResultsInvalidated != 2 {
		t.Fatalf("delete response %+v, want deleted with 2 results invalidated", del)
	}
	c := s.Metrics().Obs.Counters
	if c["server.cache.invalidated"] != 2 || c["server.datasets.deletes"] != 1 {
		t.Errorf("counters invalidated=%d deletes=%d, want 2 and 1",
			c["server.cache.invalidated"], c["server.datasets.deletes"])
	}

	// The dataset is gone; its cached results are gone; the table's
	// cached result survives.
	if status, _ := doJSON(t, client, "GET", ts.URL+"/v1/datasets/"+sceneInfo.Digest, nil, nil); status != http.StatusNotFound {
		t.Errorf("metadata after delete: %d, want 404", status)
	}
	cfg := core.Config{Algorithm: core.AlgAprioriKCPlus, MinSupport: 0.3}
	if status, _ := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, sceneInfo.Digest, cfg), nil); status != http.StatusNotFound {
		t.Errorf("mine after delete: %d, want 404", status)
	}
	if status, _ := doJSON(t, client, "DELETE", ts.URL+"/v1/datasets/"+sceneInfo.Digest, nil, nil); status != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", status)
	}
	var tresp MineResponse
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, tableInfo.Digest, tcfg), &tresp); status != http.StatusOK {
		t.Fatalf("table re-mine: %d %s", status, raw)
	}
	if !tresp.Cached {
		t.Errorf("unrelated cached result was invalidated by the delete")
	}
	if status, raw := doJSON(t, client, "GET", ts.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: %d %s", status, raw)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Digest != tableInfo.Digest {
		t.Fatalf("list after delete: %+v", list)
	}
}

// TestDeleteParentThenMineSuccessor deletes a PATCH parent and checks
// the successor still mines correctly via the full pipeline (its
// lineage was forgotten with the parent).
func TestDeleteParentThenMineSuccessor(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	info, scene := uploadGeneratedScene(t, client, ts.URL+"/v1", 5)
	cfg := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.25}
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, info.Digest, cfg), nil); status != http.StatusOK {
		t.Fatalf("parent mine: %d %s", status, raw)
	}
	body, _ := json.Marshal(api.PatchRequest{Ops: singleMoveOps(scene)})
	var pr api.PatchResponse
	if status, raw := doJSON(t, client, "PATCH", ts.URL+"/v1/datasets/"+info.Digest, body, &pr); status != http.StatusCreated {
		t.Fatalf("patch: %d %s", status, raw)
	}
	if status, raw := doJSON(t, client, "DELETE", ts.URL+"/v1/datasets/"+info.Digest, nil, nil); status != http.StatusOK {
		t.Fatalf("delete parent: %d %s", status, raw)
	}
	var resp MineResponse
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", mineBody(t, pr.Dataset.Digest, cfg), &resp); status != http.StatusOK {
		t.Fatalf("successor mine: %d %s", status, raw)
	}
	if c := s.Metrics().Obs.Counters; c["delta.mine.patched"] != 0 {
		t.Errorf("successor mine used a forgotten parent: %v", c)
	}
	if len(resp.Frequent) == 0 {
		t.Errorf("successor mine returned nothing")
	}
}

// TestPatchValidation covers the PATCH error surface.
func TestPatchValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	sceneInfo := uploadSampleScene(t, client, ts.URL+"/v1")
	tableInfo := uploadSampleTable(t, client, ts.URL+"/v1")
	good, _ := json.Marshal(api.PatchRequest{Ops: []dataset.Op{
		{Action: dataset.OpDelete, Layer: "slum", ID: "nope"},
	}})

	cases := []struct {
		name   string
		digest string
		body   []byte
		want   int
	}{
		{"unknown digest", "deadbeef", good, http.StatusNotFound},
		{"table dataset", tableInfo.Digest, good, http.StatusBadRequest},
		{"bad json", sceneInfo.Digest, []byte("{"), http.StatusBadRequest},
		{"unknown field", sceneInfo.Digest, []byte(`{"ops":[],"extra":1}`), http.StatusBadRequest},
		{"empty batch", sceneInfo.Digest, []byte(`{"ops":[]}`), http.StatusBadRequest},
		{"invalid op", sceneInfo.Digest, good, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, client, "PATCH", ts.URL+"/v1/datasets/"+tc.digest, tc.body, nil)
			if status != tc.want {
				t.Fatalf("PATCH = %d, want %d (%s)", status, tc.want, raw)
			}
		})
	}
}
