package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/buildinfo"
	"repro/internal/obs"
)

// ProxyOptions configures a front node.
type ProxyOptions struct {
	// Peers are the base URLs of the mining nodes ("http://host:port").
	// At least one is required.
	Peers []string
	// Replicas is how many peers each dataset digest is stored on and
	// routed to (default 2, capped at len(Peers)).
	Replicas int
	// MaxUploadBytes bounds one request body (default 32 MiB).
	MaxUploadBytes int64
	// EventLimit bounds the obs event ring (default 4096).
	EventLimit int
	// HTTPClient, when non-nil, is the shared transport for peer calls.
	HTTPClient *http.Client
	// PeerTimeout bounds one forwarded call when the incoming request
	// carries no deadline (default 120s — above the peers' own mining
	// default, so the peer's 504 wins over a proxy-side cut).
	PeerTimeout time.Duration
	// AccessLog, when non-nil, receives one line per proxied request.
	AccessLog io.Writer
}

// Proxy is a qsrmined front node: it owns no datasets and mines
// nothing, but consistent-hashes every request onto its peers by
// dataset digest, replicating uploads to R peers and failing over to
// the next ring candidate when a peer is unreachable or answers 5xx.
// Responses are forwarded byte-for-byte, so a client cannot tell a
// front from a mining node — except through /v1/healthz, which reports
// role "front", and /v1/metrics, which carries ring statistics.
//
// Counters (through obs to /v1/metrics):
//
//	proxy.forwarded     requests answered by a peer
//	proxy.failovers     peer attempts skipped over a connection error or 5xx
//	proxy.errors        requests for which every candidate failed
//	proxy.replicas      upload copies stored beyond the first
//
// Job routing: job IDs carry a per-node random prefix, so the front
// remembers id → peer at submission and routes polls and cancellations
// to the owning node.
type Proxy struct {
	opts      ProxyOptions
	ring      *ring
	clients   map[string]*client.Client
	trace     *obs.Trace
	collector *obs.Collector
	mux       *http.ServeMux
	started   time.Time
	draining  atomic.Bool
	logmu     sync.Mutex

	// jobPeer (job ID -> peer base URL) and childOf (PATCH successor
	// digest -> parent digest) are bounded LRUs, mirroring the node-side
	// DeltaManager caches: a long-running front must not grow routing
	// state without bound. Eviction only costs routing quality — an
	// evicted job polls as 404, an evicted lineage record routes the
	// successor by its own digest (a cold mine on another peer).
	mu      sync.Mutex
	jobPeer *lru[string, string]
	childOf *lru[string, string]
}

// Caps for the front's routing LRUs.
const (
	proxyJobEntries     = 4096
	proxyLineageEntries = 1024
)

// NewProxy assembles a front node for the given peers.
func NewProxy(opts ProxyOptions) (*Proxy, error) {
	if len(opts.Peers) == 0 {
		return nil, errors.New("server: a front node needs at least one peer")
	}
	peers := make([]string, 0, len(opts.Peers))
	seen := map[string]bool{}
	for _, p := range opts.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, errors.New("server: peer list is empty after normalisation")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(peers) {
		opts.Replicas = len(peers)
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 32 << 20
	}
	if opts.EventLimit <= 0 {
		opts.EventLimit = 4096
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = 120 * time.Second
	}
	opts.Peers = peers
	collector := obs.NewRingCollector(opts.EventLimit)
	p := &Proxy{
		opts:      opts,
		ring:      newRing(peers),
		clients:   make(map[string]*client.Client, len(peers)),
		trace:     obs.New(collector),
		collector: collector,
		started:   time.Now(),
		jobPeer:   newLRU[string, string](proxyJobEntries, 0),
		childOf:   newLRU[string, string](proxyLineageEntries, 0),
	}
	httpc := opts.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	for _, peer := range peers {
		p.clients[peer] = client.New(peer, client.WithHTTPClient(httpc), client.WithTimeout(opts.PeerTimeout))
	}
	p.mux = http.NewServeMux()
	p.routes()
	return p, nil
}

// routes wires the same endpoint table as a mining node (with legacy
// aliases), backed by forwarding handlers.
func (p *Proxy) routes() {
	table := []route{
		{"GET", "/v1/healthz", "/healthz", p.handleHealthz},
		{"GET", "/v1/metrics", "/metrics", p.handleMetrics},
		{"POST", "/v1/datasets/scene", "/datasets/scene", p.uploadHandler("/v1/datasets/scene")},
		{"POST", "/v1/datasets/table", "/datasets/table", p.uploadHandler("/v1/datasets/table")},
		{"GET", "/v1/datasets", "/datasets", p.handleListDatasets},
		{"GET", "/v1/datasets/{digest}", "/datasets/{digest}", p.handleGetDataset},
		{"PATCH", "/v1/datasets/{digest}", "/datasets/{digest}", p.handlePatchDataset},
		{"DELETE", "/v1/datasets/{digest}", "/datasets/{digest}", p.handleDeleteDataset},
		{"POST", "/v1/mine", "/mine", p.mineHandler("/v1/mine")},
		{"POST", "/v1/colocate", "/colocate", p.mineHandler("/v1/colocate")},
		{"POST", "/v1/jobs", "/jobs", p.mineHandler("/v1/jobs")},
		{"POST", "/v1/colocate/jobs", "/colocate/jobs", p.mineHandler("/v1/colocate/jobs")},
		{"GET", "/v1/jobs/{id}", "/jobs/{id}", p.handleJobByID},
		{"DELETE", "/v1/jobs/{id}", "/jobs/{id}", p.handleJobByID},
	}
	for _, rt := range table {
		p.mux.HandleFunc(rt.Method+" "+rt.V1, rt.handler)
		p.mux.HandleFunc(rt.Method+" "+rt.Legacy, deprecatedAlias(p.trace, rt.V1, rt.handler))
	}
	p.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "no such endpoint %s %s", r.Method, r.URL.Path)
	})
}

// Handler returns the front node's HTTP handler.
func (p *Proxy) Handler() http.Handler {
	return requestMiddleware(p.mux, p.trace, p.opts.AccessLog, &p.logmu)
}

// Draining reports whether Shutdown has begun.
func (p *Proxy) Draining() bool { return p.draining.Load() }

// Shutdown flips the front into draining: new requests get 503 while
// the caller closes the listener (which waits out in-flight forwards).
// The peers drain independently — a front holds no mining state.
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.draining.Store(true)
	return nil
}

// rejectDraining mirrors the mining node's drain behaviour.
func (p *Proxy) rejectDraining(w http.ResponseWriter, r *http.Request) bool {
	if !p.Draining() {
		return false
	}
	writeError(w, r, http.StatusServiceUnavailable, api.CodeDraining, "front is shutting down")
	return true
}

// readBody reads a size-capped request body.
func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.opts.MaxUploadBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, api.CodeTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// forward sends one exchange to a peer, propagating the request ID so
// one X-Request-ID spans front and node logs. The error is non-nil only
// for transport failures.
func (p *Proxy) forward(r *http.Request, peer, method, path string, body []byte) (*client.RawResponse, error) {
	hdr := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		hdr.Set("Content-Type", ct)
	}
	if rid := RequestIDFromContext(r.Context()); rid != "" {
		hdr.Set(requestIDHeader, rid)
	}
	return p.clients[peer].Forward(r.Context(), method, path, hdr, body)
}

// respondRaw relays a peer response byte-for-byte.
func respondRaw(w http.ResponseWriter, raw *client.RawResponse) {
	if ct := raw.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := raw.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(raw.Status)
	_, _ = w.Write(raw.Body)
}

// tryCandidates walks peers in ring order, forwarding until one answers
// with anything below 500. Connection errors and 5xx responses count as
// failovers and move on; the first definitive response (2xx–4xx) is
// relayed unchanged. onSuccess (optional) observes the peer and raw
// response that won. Returns false when every candidate failed — the
// caller has then already been answered with 502.
func (p *Proxy) tryCandidates(w http.ResponseWriter, r *http.Request, cands []string, method, path string, body []byte, onSuccess func(peer string, raw *client.RawResponse)) bool {
	var lastErr string
	for i, peer := range cands {
		raw, err := p.forward(r, peer, method, path, body)
		if err != nil {
			lastErr = err.Error()
			p.trace.Add("proxy.failovers", 1)
			p.trace.Annotate("proxy.failover", fmt.Sprintf("%s %s peer=%s err=%v", method, path, peer, err))
			continue
		}
		if raw.Status >= 500 {
			lastErr = fmt.Sprintf("%s answered %d", peer, raw.Status)
			p.trace.Add("proxy.failovers", 1)
			p.trace.Annotate("proxy.failover", fmt.Sprintf("%s %s peer=%s status=%d", method, path, peer, raw.Status))
			continue
		}
		if i > 0 {
			// Served by a non-primary candidate; the counters above
			// already recorded each skip.
			p.trace.Add("proxy.rerouted", 1)
		}
		p.trace.Add("proxy.forwarded", 1)
		if onSuccess != nil {
			onSuccess(peer, raw)
		}
		respondRaw(w, raw)
		return true
	}
	p.trace.Add("proxy.errors", 1)
	writeError(w, r, http.StatusBadGateway, api.CodeUpstream,
		"no peer of %d could serve %s %s (last: %s)", len(cands), method, path, lastErr)
	return false
}

// uploadHandler stores an upload on the digest's R replicas: the first
// reachable candidates in ring order each receive a copy, and the first
// success is relayed to the client. Content addressing makes the copies
// idempotent — every replica derives the same digest.
func (p *Proxy) uploadHandler(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.rejectDraining(w, r) {
			return
		}
		body, ok := p.readBody(w, r)
		if !ok {
			return
		}
		digest := Digest(body)
		cands := p.ring.candidates(digest)
		replicated := 0
		answered := p.tryCandidates(w, r, cands, http.MethodPost, path, body, func(winner string, raw *client.RawResponse) {
			if raw.Status >= 300 {
				return // the body was rejected; don't replicate garbage
			}
			replicated = 1
			// Best-effort copies on the remaining replicas, past the
			// winner's position in ring order.
			idx := 0
			for i, c := range cands {
				if c == winner {
					idx = i
					break
				}
			}
			for _, peer := range cands[idx+1:] {
				if replicated >= p.opts.Replicas {
					break
				}
				if raw2, err := p.forward(r, peer, http.MethodPost, path, body); err == nil && raw2.Status < 300 {
					replicated++
					p.trace.Add("proxy.replicas", 1)
				} else {
					p.trace.Add("proxy.failovers", 1)
				}
			}
		})
		if answered && replicated > 0 {
			p.trace.Annotate("proxy.upload", fmt.Sprintf("digest=%s replicas=%d", digest[:12], replicated))
		}
	}
}

// mineHandler routes POST /v1/mine and POST /v1/jobs by the dataset
// digest named in the body, with ring-order failover. Successful job
// submissions are remembered so later polls route to the owning node.
func (p *Proxy) mineHandler(path string) http.HandlerFunc {
	isJob := strings.HasSuffix(path, "/jobs")
	return func(w http.ResponseWriter, r *http.Request) {
		if p.rejectDraining(w, r) {
			return
		}
		body, ok := p.readBody(w, r)
		if !ok {
			return
		}
		var probe struct {
			Dataset string `json:"dataset"`
		}
		if err := json.Unmarshal(body, &probe); err != nil {
			writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "decoding request: %v", err)
			return
		}
		if probe.Dataset == "" {
			writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "request needs a %q digest from a dataset upload", "dataset")
			return
		}
		cands := p.routeDigest(probe.Dataset)
		p.tryCandidates(w, r, cands, http.MethodPost, path, body, func(peer string, raw *client.RawResponse) {
			if !isJob || raw.Status != http.StatusAccepted {
				return
			}
			var st struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(raw.Body, &st); err == nil && st.ID != "" {
				p.mu.Lock()
				p.jobPeer.put(st.ID, peer, 0)
				p.mu.Unlock()
			}
		})
	}
}

// handleJobByID routes GET/DELETE /v1/jobs/{id} to the node that
// accepted the submission.
func (p *Proxy) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p.mu.Lock()
	peer, ok := p.jobPeer.get(id)
	p.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown job %q", id)
		return
	}
	raw, err := p.forward(r, peer, r.Method, "/v1/jobs/"+id, nil)
	if err != nil {
		p.trace.Add("proxy.errors", 1)
		writeError(w, r, http.StatusBadGateway, api.CodeUpstream, "job %q lives on %s, which is unreachable: %v", id, peer, err)
		return
	}
	p.trace.Add("proxy.forwarded", 1)
	respondRaw(w, raw)
}

// handleGetDataset routes dataset metadata by digest with failover.
func (p *Proxy) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	p.tryCandidates(w, r, p.routeDigest(digest), http.MethodGet, "/v1/datasets/"+digest, nil, nil)
}

// routeDigest resolves a digest's ring candidates, following recorded
// PATCH lineage: a successor created by PATCH lives on the replicas of
// its root ancestor (where the patch was applied), not at its own ring
// position, so requests for it must route by the root.
func (p *Proxy) routeDigest(digest string) []string {
	p.mu.Lock()
	root := digest
	for hops := 0; hops < 64; hops++ {
		parent, ok := p.childOf.get(root)
		if !ok {
			break
		}
		root = parent
	}
	p.mu.Unlock()
	return p.ring.candidates(root)
}

// handlePatchDataset routes a scene mutation by the parent digest with
// ring failover, records the successor's lineage for later routing, and
// replicates the patch to the remaining candidates. Content addressing
// makes replication idempotent: applying the same ops to the same
// parent derives the same successor digest on every peer.
func (p *Proxy) handlePatchDataset(w http.ResponseWriter, r *http.Request) {
	if p.rejectDraining(w, r) {
		return
	}
	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	digest := r.PathValue("digest")
	path := "/v1/datasets/" + digest
	cands := p.routeDigest(digest)
	p.tryCandidates(w, r, cands, http.MethodPatch, path, body, func(winner string, raw *client.RawResponse) {
		if raw.Status != http.StatusCreated {
			return
		}
		var pr api.PatchResponse
		if err := json.Unmarshal(raw.Body, &pr); err != nil || pr.Dataset.Digest == "" {
			return
		}
		if pr.Dataset.Digest != digest {
			p.mu.Lock()
			p.childOf.put(pr.Dataset.Digest, digest, 0)
			p.mu.Unlock()
		}
		// Best-effort copies on the remaining candidates.
		replicated := 1
		idx := 0
		for i, c := range cands {
			if c == winner {
				idx = i
				break
			}
		}
		for _, peer := range cands[idx+1:] {
			if replicated >= p.opts.Replicas {
				break
			}
			if raw2, err := p.forward(r, peer, http.MethodPatch, path, body); err == nil && raw2.Status < 300 {
				replicated++
				p.trace.Add("proxy.replicas", 1)
			} else {
				p.trace.Add("proxy.failovers", 1)
			}
		}
		p.trace.Annotate("proxy.patch", fmt.Sprintf("parent=%s child=%s replicas=%d",
			digest[:min(12, len(digest))], pr.Dataset.Digest[:min(12, len(pr.Dataset.Digest))], replicated))
	})
}

// handleDeleteDataset fans a deletion out to every candidate holding a
// replica, merging the per-peer invalidation counts into one response.
// Any peer answering 200 makes the merged response a success; if none
// held the dataset the last definitive answer (the 404) is relayed.
func (p *Proxy) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if p.rejectDraining(w, r) {
		return
	}
	digest := r.PathValue("digest")
	path := "/v1/datasets/" + digest
	merged := api.DeleteResponse{Digest: digest}
	var last *client.RawResponse
	attempts := 0
	for _, peer := range p.routeDigest(digest) {
		attempts++
		raw, err := p.forward(r, peer, http.MethodDelete, path, nil)
		if err != nil || raw.Status >= 500 {
			p.trace.Add("proxy.failovers", 1)
			continue
		}
		last = raw
		if raw.Status == http.StatusOK {
			var dr api.DeleteResponse
			if json.Unmarshal(raw.Body, &dr) == nil {
				merged.Deleted = true
				merged.ResultsInvalidated += dr.ResultsInvalidated
			}
		}
	}
	switch {
	case merged.Deleted:
		p.trace.Add("proxy.forwarded", 1)
		writeJSON(w, http.StatusOK, merged)
	case last != nil:
		p.trace.Add("proxy.forwarded", 1)
		respondRaw(w, last)
	default:
		p.trace.Add("proxy.errors", 1)
		writeError(w, r, http.StatusBadGateway, api.CodeUpstream,
			"no peer of %d could serve DELETE %s", attempts, path)
	}
}

// handleListDatasets merges every peer's dataset listing, deduplicating
// replicated digests, ordered by digest like a single node's answer.
func (p *Proxy) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	seen := make(map[string]api.DatasetInfo)
	reached := 0
	for _, peer := range p.opts.Peers {
		raw, err := p.forward(r, peer, http.MethodGet, "/v1/datasets", nil)
		if err != nil || raw.Status != http.StatusOK {
			p.trace.Add("proxy.failovers", 1)
			continue
		}
		reached++
		var list api.DatasetList
		if json.Unmarshal(raw.Body, &list) != nil {
			continue
		}
		for _, di := range list.Datasets {
			seen[di.Digest] = di
		}
	}
	if reached == 0 {
		p.trace.Add("proxy.errors", 1)
		writeError(w, r, http.StatusBadGateway, api.CodeUpstream, "no peer of %d could list datasets", len(p.opts.Peers))
		return
	}
	list := api.DatasetList{Datasets: make([]api.DatasetInfo, 0, len(seen))}
	for _, di := range seen {
		list.Datasets = append(list.Datasets, di)
	}
	sort.Slice(list.Datasets, func(i, j int) bool { return list.Datasets[i].Digest < list.Datasets[j].Digest })
	p.trace.Add("proxy.forwarded", 1)
	writeJSON(w, http.StatusOK, list)
}

// handleHealthz reports the front's own liveness, marked role "front".
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := api.Health{
		Status:       "ok",
		Version:      buildinfo.String(),
		UptimeMillis: time.Since(p.started).Milliseconds(),
		Role:         "front",
		Peers:        len(p.opts.Peers),
	}
	status := http.StatusOK
	if p.Draining() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Metrics snapshots the front's routing state.
func (p *Proxy) Metrics() api.Metrics {
	p.mu.Lock()
	tracked := p.jobPeer.len()
	p.mu.Unlock()
	counters := p.trace.Counters()
	return api.Metrics{
		Obs: api.ObsCounters{Counters: counters},
		Ring: &api.RingStats{
			Peers:       p.opts.Peers,
			Replicas:    p.opts.Replicas,
			Forwarded:   counters["proxy.forwarded"],
			Failovers:   counters["proxy.failovers"],
			Errors:      counters["proxy.errors"],
			TrackedJobs: tracked,
		},
		UptimeMillis: time.Since(p.started).Milliseconds(),
	}
}

// handleMetrics serves the routing snapshot.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Metrics())
}
