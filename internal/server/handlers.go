package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// routes wires the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /datasets/scene", s.handleUploadScene)
	s.mux.HandleFunc("POST /datasets/table", s.handleUploadTable)
	s.mux.HandleFunc("GET /datasets/{digest}", s.handleGetDataset)
	s.mux.HandleFunc("POST /mine", s.handleMine)
	s.mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancelJob)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// rejectDraining writes the shutdown 503 and reports whether it did.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.Draining() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	return true
}

// readBody reads a size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// datasetInfo is the upload / metadata response.
type datasetInfo struct {
	Digest string      `json:"digest"`
	Kind   DatasetKind `json:"kind"`
	Rows   int         `json:"rows"`
	Bytes  int64       `json:"bytes"`
}

func infoOf(sd *StoredDataset) datasetInfo {
	return datasetInfo{Digest: sd.Digest, Kind: sd.Kind, Rows: sd.Rows, Bytes: sd.Bytes}
}

// handleUploadScene stores a WKT-JSON scene (see dataset.WriteJSON).
func (s *Server) handleUploadScene(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	d, err := dataset.ReadJSON(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := d.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.trace.Add("server.datasets.scene_uploads", 1)
	writeJSON(w, http.StatusCreated, infoOf(s.store.PutScene(body, d)))
}

// handleUploadTable stores a transaction-table CSV (refID,item,...).
func (s *Server) handleUploadTable(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	t, err := dataset.ReadTableCSV(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if t.Len() == 0 {
		writeError(w, http.StatusBadRequest, "table has no transactions")
		return
	}
	s.trace.Add("server.datasets.table_uploads", 1)
	writeJSON(w, http.StatusCreated, infoOf(s.store.PutTable(body, t)))
}

// handleGetDataset returns upload metadata for a stored digest.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	sd, ok := s.store.Get(r.PathValue("digest"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("digest"))
		return
	}
	writeJSON(w, http.StatusOK, infoOf(sd))
}

// decodeMineRequest parses and sanity-checks a mining request body.
func (s *Server) decodeMineRequest(w http.ResponseWriter, r *http.Request) (MineRequest, bool) {
	body, ok := s.readBody(w, r)
	if !ok {
		return MineRequest{}, false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req MineRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return MineRequest{}, false
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "request needs a %q digest from a dataset upload", "dataset")
		return MineRequest{}, false
	}
	if req.Config.MinSupport <= 0 || req.Config.MinSupport > 1 {
		writeError(w, http.StatusBadRequest, "minSupport must be in (0, 1]")
		return MineRequest{}, false
	}
	return req, true
}

// handleMine mines synchronously under the request deadline.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	req, ok := s.decodeMineRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req))
	defer cancel()
	resp, err := s.mine(ctx, req)
	if err != nil {
		s.writeMineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeMineError maps a mining failure to a status code.
func (s *Server) writeMineError(w http.ResponseWriter, err error) {
	var unknown errUnknownDataset
	switch {
	case errors.As(err, &unknown):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "mining exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "mining was cancelled")
	default:
		// Remaining failures are configuration/data errors from the
		// pipeline (bad minsup, counting/engine mismatch, ...).
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

// handleSubmitJob enqueues an async mining job.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	req, ok := s.decodeMineRequest(w, r)
	if !ok {
		return
	}
	if _, ok := s.store.Get(req.Dataset); !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (upload it first)", req.Dataset)
		return
	}
	j, err := s.jobs.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.trace.Add("server.jobs.submitted", 1)
	st := s.jobs.Status(j)
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleGetJob returns a job's status (and result once done).
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.Status(j))
}

// handleCancelJob cancels a queued or running job.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	state, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.trace.Add("server.jobs.cancel_requests", 1)
	writeJSON(w, http.StatusOK, map[string]any{"id": r.PathValue("id"), "state": state})
}

// healthz is the liveness document.
type healthz struct {
	Status       string `json:"status"`
	Version      string `json:"version"`
	UptimeMillis int64  `json:"uptimeMillis"`
}

// handleHealthz reports liveness and the build version. A draining
// server answers "draining" with 503 so load balancers stop routing.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthz{
		Status:       "ok",
		Version:      buildinfo.String(),
		UptimeMillis: time.Since(s.started).Milliseconds(),
	}
	status := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// ServerMetrics is the /metrics document: the obs snapshot (stage
// spans, mining passes, counters — including the eclat worker fan-out
// counters) plus the service-level store/cache/job statistics.
type ServerMetrics struct {
	Obs          obs.Metrics `json:"obs"`
	Store        StoreStats  `json:"store"`
	Cache        CacheStats  `json:"cache"`
	Jobs         JobStats    `json:"jobs"`
	UptimeMillis int64       `json:"uptimeMillis"`
}

// Metrics snapshots the server state (also used by tests).
func (s *Server) Metrics() ServerMetrics {
	return ServerMetrics{
		Obs:          s.collector.Metrics(s.trace),
		Store:        s.store.Stats(),
		Cache:        s.cache.Stats(),
		Jobs:         s.jobs.Stats(),
		UptimeMillis: time.Since(s.started).Milliseconds(),
	}
}

// handleMetrics serves the metrics snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
