package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/api"
	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// route is one entry of the endpoint table: the canonical /v1 pattern
// and its deprecated unprefixed alias. The table is data so the routing
// test can enumerate both surfaces without guessing.
type route struct {
	Method  string
	V1      string
	Legacy  string
	handler http.HandlerFunc
}

// routeTable enumerates every endpoint once.
func (s *Server) routeTable() []route {
	return []route{
		{"GET", "/v1/healthz", "/healthz", s.handleHealthz},
		{"GET", "/v1/metrics", "/metrics", s.handleMetrics},
		{"POST", "/v1/datasets/scene", "/datasets/scene", s.handleUploadScene},
		{"POST", "/v1/datasets/table", "/datasets/table", s.handleUploadTable},
		{"GET", "/v1/datasets", "/datasets", s.handleListDatasets},
		{"GET", "/v1/datasets/{digest}", "/datasets/{digest}", s.handleGetDataset},
		{"PATCH", "/v1/datasets/{digest}", "/datasets/{digest}", s.handlePatchDataset},
		{"DELETE", "/v1/datasets/{digest}", "/datasets/{digest}", s.handleDeleteDataset},
		{"POST", "/v1/mine", "/mine", s.handleMine},
		{"POST", "/v1/colocate", "/colocate", s.handleColocate},
		{"POST", "/v1/jobs", "/jobs", s.handleSubmitJob},
		{"POST", "/v1/colocate/jobs", "/colocate/jobs", s.handleSubmitColocateJob},
		{"GET", "/v1/jobs/{id}", "/jobs/{id}", s.handleGetJob},
		{"DELETE", "/v1/jobs/{id}", "/jobs/{id}", s.handleCancelJob},
	}
}

// routes wires the endpoint table: every handler under its /v1 path,
// plus the legacy unprefixed alias answering identically but with a
// Deprecation header pointing at the successor.
func (s *Server) routes() {
	for _, rt := range s.routeTable() {
		s.mux.HandleFunc(rt.Method+" "+rt.V1, rt.handler)
		s.mux.HandleFunc(rt.Method+" "+rt.Legacy, deprecatedAlias(s.trace, rt.V1, rt.handler))
	}
	// Unknown paths answer with the structured envelope instead of the
	// mux's plain-text default.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "no such endpoint %s %s", r.Method, r.URL.Path)
	})
}

// deprecatedAlias wraps a /v1 handler for its legacy unprefixed path:
// same behaviour, plus the Deprecation marker and a successor link.
func deprecatedAlias(trace *obs.Trace, v1Path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+v1Path+`>; rel="successor-version"`)
		trace.Add("server.legacy.requests", 1)
		h(w, r)
	}
}

// rejectDraining writes the shutdown 503 and reports whether it did.
func (s *Server) rejectDraining(w http.ResponseWriter, r *http.Request) bool {
	if !s.Draining() {
		return false
	}
	writeError(w, r, http.StatusServiceUnavailable, api.CodeDraining, "server is shutting down")
	return true
}

// readBody reads a size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, api.CodeTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// datasetInfo is the upload / metadata response.
type datasetInfo = api.DatasetInfo

func infoOf(sd *StoredDataset) datasetInfo {
	return datasetInfo{Digest: sd.Digest, Kind: sd.Kind, Rows: sd.Rows, Bytes: sd.Bytes}
}

// handleUploadScene stores a WKT-JSON scene (see dataset.WriteJSON).
func (s *Server) handleUploadScene(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	d, err := dataset.ReadJSON(bytes.NewReader(body))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if err := d.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	sd, err := s.store.PutScene(body, d)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.trace.Add("server.datasets.scene_uploads", 1)
	writeJSON(w, http.StatusCreated, infoOf(sd))
}

// handleUploadTable stores a transaction-table CSV (refID,item,...).
func (s *Server) handleUploadTable(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	t, err := dataset.ReadTableCSV(bytes.NewReader(body))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if t.Len() == 0 {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "table has no transactions")
		return
	}
	sd, err := s.store.PutTable(body, t)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.trace.Add("server.datasets.table_uploads", 1)
	writeJSON(w, http.StatusCreated, infoOf(sd))
}

// handleGetDataset returns upload metadata for a stored digest.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	sd, ok := s.store.Get(r.PathValue("digest"))
	if !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown dataset %q", r.PathValue("digest"))
		return
	}
	writeJSON(w, http.StatusOK, infoOf(sd))
}

// handleListDatasets enumerates the stored datasets, ordered by digest.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	stored := s.store.List()
	list := api.DatasetList{Datasets: make([]api.DatasetInfo, 0, len(stored))}
	for _, sd := range stored {
		list.Datasets = append(list.Datasets, infoOf(sd))
	}
	writeJSON(w, http.StatusOK, list)
}

// handlePatchDataset applies a mutation batch to a stored scene and
// stores the content-addressed successor, recording its lineage so a
// later mine of the successor can run the delta pipeline instead of
// recomputing the world. The parent dataset is immutable and remains
// stored.
func (s *Server) handlePatchDataset(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	digest := r.PathValue("digest")
	sd, ok := s.store.Get(digest)
	if !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown dataset %q", digest)
		return
	}
	if sd.Kind != KindScene {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "dataset %q is a %s; only scenes can be patched", digest, sd.Kind)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req api.PatchRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "decoding patch: %v", err)
		return
	}
	nd, cs, err := sd.Scene.ApplyOps(req.Ops)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := nd.WriteJSON(&buf); err != nil {
		writeError(w, r, http.StatusInternalServerError, api.CodeInternal, "serialising successor: %v", err)
		return
	}
	if int64(buf.Len()) > s.opts.MaxUploadBytes {
		writeError(w, r, http.StatusRequestEntityTooLarge, api.CodeTooLarge, "successor exceeds %d bytes", s.opts.MaxUploadBytes)
		return
	}
	child, err := s.store.PutScene(buf.Bytes(), nd)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.deltas.recordLineage(child.Digest, digest, cs)
	s.trace.Add("server.datasets.patches", 1)
	writeJSON(w, http.StatusCreated, api.PatchResponse{
		Parent:  digest,
		Dataset: infoOf(child),
		Changed: cs.Count(),
		ByLayer: cs.ByLayer,
	})
}

// handleDeleteDataset removes a stored dataset — from memory and the
// durable tier — and invalidates every cached mining result and
// delta-pipeline artefact derived from it, persisted entries included.
func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !s.store.Delete(digest) {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown dataset %q", digest)
		return
	}
	invalidated := s.cache.InvalidateDataset(digest)
	if s.persist != nil {
		invalidated += s.persist.DeleteResults(digest)
	}
	s.deltas.forget(digest)
	s.trace.Add("server.datasets.deletes", 1)
	if invalidated > 0 {
		s.trace.Add("server.cache.invalidated", int64(invalidated))
	}
	writeJSON(w, http.StatusOK, api.DeleteResponse{
		Digest:             digest,
		Deleted:            true,
		ResultsInvalidated: invalidated,
	})
}

// decodeMineRequest parses and sanity-checks a mining request body.
func (s *Server) decodeMineRequest(w http.ResponseWriter, r *http.Request) (MineRequest, bool) {
	body, ok := s.readBody(w, r)
	if !ok {
		return MineRequest{}, false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req MineRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "decoding request: %v", err)
		return MineRequest{}, false
	}
	if req.Dataset == "" {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "request needs a %q digest from a dataset upload", "dataset")
		return MineRequest{}, false
	}
	if req.Colocate != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "co-location requests go to POST /v1/colocate")
		return MineRequest{}, false
	}
	if req.Config.MinSupport <= 0 || req.Config.MinSupport > 1 {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "minSupport must be in (0, 1]")
		return MineRequest{}, false
	}
	return req, true
}

// handleMine mines synchronously under the request deadline, routing
// through the micro-batcher when one is configured.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	req, ok := s.decodeMineRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req))
	defer cancel()
	var resp *MineResponse
	var err error
	if s.batcher != nil {
		resp, err = s.batcher.Do(ctx, req)
	} else {
		resp, err = s.mine(ctx, req)
	}
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeMineError maps a mining failure to a status code and error code.
func (s *Server) writeMineError(w http.ResponseWriter, r *http.Request, err error) {
	var unknown errUnknownDataset
	switch {
	case errors.As(err, &unknown):
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusGatewayTimeout, api.CodeTimeout, "mining exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		writeError(w, r, http.StatusServiceUnavailable, api.CodeCancelled, "mining was cancelled")
	default:
		// Remaining failures are configuration/data errors from the
		// pipeline (bad minsup, counting/engine mismatch, ...).
		writeError(w, r, http.StatusUnprocessableEntity, api.CodeConfigInvalid, "%v", err)
	}
}

// handleSubmitJob enqueues an async mining job.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	req, ok := s.decodeMineRequest(w, r)
	if !ok {
		return
	}
	if _, ok := s.store.Get(req.Dataset); !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown dataset %q (upload it first)", req.Dataset)
		return
	}
	j, err := s.jobs.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, r, http.StatusServiceUnavailable, api.CodeDraining, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, r, http.StatusServiceUnavailable, api.CodeQueueFull, "%v", err)
		return
	case err != nil:
		writeError(w, r, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.trace.Add("server.jobs.submitted", 1)
	st := s.jobs.Status(j)
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleGetJob returns a job's status (and result once done).
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.Status(j))
}

// handleCancelJob cancels a queued or running job.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	state, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.trace.Add("server.jobs.cancel_requests", 1)
	writeJSON(w, http.StatusOK, map[string]any{"id": r.PathValue("id"), "state": state})
}

// healthz is the liveness document.
type healthz = api.Health

// handleHealthz reports liveness and the build version. A draining
// server answers "draining" with 503 so load balancers stop routing.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthz{
		Status:       "ok",
		Version:      buildinfo.String(),
		UptimeMillis: time.Since(s.started).Milliseconds(),
		Role:         "node",
	}
	if s.persist != nil {
		h.Persist = "disk"
	}
	status := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// ServerMetrics is the /metrics document: the obs snapshot (stage
// spans, mining passes, counters — including the coalesce.*, batch.*
// and eclat worker fan-out counters) plus the service-level
// store/cache/job statistics and, on a node with -data-dir, the
// persistence-tier block.
type ServerMetrics struct {
	Obs          obs.Metrics       `json:"obs"`
	Store        api.StoreStats    `json:"store"`
	Cache        api.CacheStats    `json:"cache"`
	Jobs         api.JobStats      `json:"jobs"`
	Persist      *api.PersistStats `json:"persist,omitempty"`
	UptimeMillis int64             `json:"uptimeMillis"`
}

// Metrics snapshots the server state (also used by tests).
func (s *Server) Metrics() ServerMetrics {
	m := ServerMetrics{
		Obs:          s.collector.Metrics(s.trace),
		Store:        s.store.Stats(),
		Cache:        s.cache.Stats(),
		Jobs:         s.jobs.Stats(),
		UptimeMillis: time.Since(s.started).Milliseconds(),
	}
	if s.persist != nil {
		ps := s.persist.PersistStats()
		ps.JobsRecovered, ps.JobsLost = s.jobs.RecoveryStats()
		m.Persist = &ps
	}
	return m
}

// handleMetrics serves the metrics snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
