// Package server implements qsrmined: the HTTP/JSON mining service over
// the qsrmine pipeline. It offers content-addressed dataset uploads
// (WKT-JSON scenes, transaction-table CSVs) held in an LRU-capped
// in-memory store, synchronous mining with single-flight coalescing and
// optional micro-batching, an async job manager with a bounded worker
// pool and cancellation wired to context cancellation mid-DFS, a result
// cache keyed by (dataset digest, canonical config), and health/metrics
// endpoints snapshotting the obs collector. A separate Proxy type turns
// a node started with peers into a front router that consistent-hashes
// requests across a cluster by dataset digest.
//
// Endpoints (canonical under /v1; the unprefixed legacy paths answer
// identically with a Deprecation header):
//
//	POST   /v1/datasets/scene    upload a WKT-JSON scene      -> {digest,...}
//	POST   /v1/datasets/table    upload a transaction CSV     -> {digest,...}
//	GET    /v1/datasets          list stored datasets
//	GET    /v1/datasets/{digest} dataset metadata
//	PATCH  /v1/datasets/{digest} mutate a scene               -> successor digest
//	DELETE /v1/datasets/{digest} delete + invalidate results
//	POST   /v1/mine              mine synchronously           -> MineResponse
//	POST   /v1/jobs              submit an async mining job   -> JobStatus (202)
//	GET    /v1/jobs/{id}         poll job status/result
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/healthz           liveness + version
//	GET    /v1/metrics           obs snapshot + store/cache/job stats
//
// Errors are the uniform JSON envelope
// {"error":{"code","message","requestId"}} with machine-readable codes
// (repro/api.ErrorCode); every response carries an X-Request-ID.
package server

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options configures a Server. The zero value is usable; every field
// has a sensible default.
type Options struct {
	// Workers is the job pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the async submission queue (default 64).
	QueueCap int
	// StoreMaxEntries / StoreMaxBytes cap the dataset store
	// (defaults 64 entries, 256 MiB).
	StoreMaxEntries int
	StoreMaxBytes   int64
	// CacheMaxEntries caps the result cache (default 256).
	CacheMaxEntries int
	// MaxUploadBytes bounds one upload or request body (default 32 MiB).
	MaxUploadBytes int64
	// DefaultTimeout bounds a mining run when the request does not
	// (default 60s).
	DefaultTimeout time.Duration
	// EventLimit bounds the obs event ring (default 4096).
	EventLimit int
	// BatchWindow enables the sync-mine micro-batcher: requests arriving
	// within this window are flushed as one batch. 0 (the default)
	// disables batching.
	BatchWindow time.Duration
	// BatchMax caps one batch; a full batch flushes before the window
	// expires (default 16; only meaningful with BatchWindow > 0).
	BatchMax int
	// AccessLog, when non-nil, receives one line per HTTP request
	// (time, method, path, status, duration, request ID).
	AccessLog io.Writer
	// Persistence, when non-nil, is the durable tier behind the dataset
	// store, the result cache, and the job manager (cmd/qsrmined wires a
	// persist.Dir here for -data-dir). Nil keeps the historical
	// memory-only behaviour, byte-identical.
	Persistence Persistence
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.StoreMaxEntries <= 0 {
		o.StoreMaxEntries = 64
	}
	if o.StoreMaxBytes <= 0 {
		o.StoreMaxBytes = 256 << 20
	}
	if o.CacheMaxEntries <= 0 {
		o.CacheMaxEntries = 256
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.EventLimit <= 0 {
		o.EventLimit = 4096
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 16
	}
	return o
}

// Server is the qsrmined service state. Create with New, expose with
// Handler, stop with Shutdown.
type Server struct {
	opts      Options
	store     *Store
	cache     *ResultCache
	deltas    *DeltaManager
	persist   Persistence // nil = memory-only
	jobs      *JobManager
	flights   *flightGroup
	batcher   *Batcher // nil when batching is disabled
	trace     *obs.Trace
	collector *obs.Collector
	mux       *http.ServeMux
	started   time.Time
	draining  atomic.Bool
	baseCtx   context.Context
	stopBase  context.CancelFunc
	logmu     sync.Mutex

	// mineHook is a test seam invoked (when non-nil) before a cache-miss
	// mine runs; returning an error aborts the run with it.
	mineHook func(context.Context) error
}

// New assembles a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	collector := obs.NewRingCollector(opts.EventLimit)
	s := &Server{
		opts:      opts,
		store:     NewStore(opts.StoreMaxEntries, opts.StoreMaxBytes),
		cache:     NewResultCache(opts.CacheMaxEntries),
		deltas:    newDeltaManager(),
		persist:   opts.Persistence,
		trace:     obs.New(collector),
		collector: collector,
		started:   time.Now(),
	}
	if s.persist != nil {
		s.store.Persist(s.persist)
		s.cache.Persist(s.persist, s.trace)
	}
	// Capacity eviction must not leak derived state: a digest the LRU
	// pushed out invalidates its cached results and delta-pipeline
	// artefacts, exactly like an explicit DELETE (the durable tier, when
	// present, is untouched — its entries are re-verified on load).
	s.store.OnEvict(func(digests []string) {
		for _, digest := range digests {
			if n := s.cache.InvalidateDataset(digest); n > 0 {
				s.trace.Add("server.cache.invalidated", int64(n))
			}
			s.deltas.forget(digest)
		}
	})
	s.flights = newFlightGroup(s.trace)
	s.baseCtx, s.stopBase = context.WithCancel(context.Background())
	s.jobs = NewJobManager(s.baseCtx, opts.Workers, opts.QueueCap, s.runJob)
	if s.persist != nil {
		// Replay the write-ahead journal: never-started jobs re-enter the
		// queue, in-flight ones are reported lost. Replay errors degrade
		// durability, never startup.
		if err := s.jobs.Recover(s.persist); err != nil {
			s.trace.Add("server.persist.recover_errors", 1)
		}
		recovered, lost := s.jobs.RecoveryStats()
		s.trace.Add("server.persist.jobs_recovered", recovered)
		s.trace.Add("server.persist.jobs_lost", lost)
	}
	if opts.BatchWindow > 0 {
		s.batcher = newBatcher(opts.BatchWindow, opts.BatchMax, s.trace, s.mine)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the service's HTTP handler: the endpoint mux wrapped
// in the request-ID / access-log middleware.
func (s *Server) Handler() http.Handler {
	return requestMiddleware(s.mux, s.trace, s.opts.AccessLog, &s.logmu)
}

// runJob executes one async job under the request (or default) timeout.
func (s *Server) runJob(ctx context.Context, req MineRequest) (*MineResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req))
	defer cancel()
	return s.mine(ctx, req)
}

// timeout resolves a request's mining deadline.
func (s *Server) timeout(req MineRequest) time.Duration {
	if req.TimeoutMillis > 0 {
		return time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	return s.opts.DefaultTimeout
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully stops the service: new submissions (and uploads
// and synchronous mining) are rejected with 503 immediately, queued and
// running jobs are drained, and when ctx expires first the remaining
// jobs are cancelled through their contexts — the mining engines
// observe cancellation mid-DFS, so even that path returns promptly.
// Cancelling the base context also unwinds any detached single-flight
// computations, after which the batcher (if any) flushes and stops.
// The HTTP listener itself is owned by the caller (cmd/qsrmined closes
// it around this call). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.Shutdown(ctx)
	s.stopBase()
	if s.batcher != nil {
		s.batcher.Close()
	}
	return err
}
