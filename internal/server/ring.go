package server

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual nodes per peer. 128 points per
// peer keeps the per-peer share of the key space close to uniform for
// small clusters while the ring stays tiny (a sorted slice
// binary-searched per request).
const ringVnodes = 128

// ring is a consistent-hash ring over peer base URLs. Datasets are
// immutable and content-addressed by SHA-256 digest, so hashing the
// digest gives free, stable shard routing: the same digest always maps
// to the same replica set, and adding or removing one peer only remaps
// the keys that peer owned.
type ring struct {
	peers  []string
	points []ringPoint // sorted ascending by hash
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// newRing builds the ring for the given peer base URLs (order is
// irrelevant to placement; hashing is by URL string).
func newRing(peers []string) *ring {
	r := &ring{peers: peers, points: make([]ringPoint, 0, len(peers)*ringVnodes)}
	for i, p := range peers {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(p + "#" + strconv.Itoa(v)), peer: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// ringHash is 64-bit FNV-1a with a splitmix64 finalizer — stable across
// processes and platforms, which multi-node routing requires (every
// front must agree). The finalizer matters: raw FNV of near-identical
// strings ("url#0", "url#1", ...) clusters on the ring and skews peer
// shares badly; the avalanche step spreads the vnode points evenly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// candidates returns every peer exactly once, in ring order starting at
// key's position: the first R entries are the key's replica set, the
// rest the failover tail a front node walks when replicas are down.
func (r *ring) candidates(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	out := make([]string, 0, len(r.peers))
	seen := make([]bool, len(r.peers))
	for n := 0; n < len(r.points) && len(out) < len(r.peers); n++ {
		pt := r.points[(i+n)%len(r.points)]
		if !seen[pt.peer] {
			seen[pt.peer] = true
			out = append(out, r.peers[pt.peer])
		}
	}
	return out
}
