package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/core"
	"repro/internal/dataset"
)

// cluster is a 3-node test fixture: three real mining servers behind
// one front.
type cluster struct {
	nodes   []*Server
	nodeTS  []*httptest.Server
	front   *Proxy
	frontTS *httptest.Server
}

func newCluster(t *testing.T, replicas int) *cluster {
	t.Helper()
	c := &cluster{}
	peers := make([]string, 3)
	for i := 0; i < 3; i++ {
		s := New(Options{Workers: 2})
		ts := httptest.NewServer(s.Handler())
		c.nodes = append(c.nodes, s)
		c.nodeTS = append(c.nodeTS, ts)
		peers[i] = ts.URL
		t.Cleanup(ts.Close)
		t.Cleanup(func() { s.Shutdown(context.Background()) })
	}
	front, err := NewProxy(ProxyOptions{Peers: peers, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	c.front = front
	c.frontTS = httptest.NewServer(front.Handler())
	t.Cleanup(c.frontTS.Close)
	return c
}

func sampleSceneJSON(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.PortoAlegreScene().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// normalizeMicros zeroes the wall-clock field, the one part of a mining
// response that legitimately differs between two executions.
func normalizeMicros(r *api.MineResponse) *api.MineResponse {
	cp := *r
	cp.MiningMicros = 0
	return &cp
}

// TestProxyFrontMatchesDirect is the multi-node acceptance test: the
// same upload + mine through the front yields a response identical to a
// direct single-node run (modulo wall-clock timing), and the upload is
// replicated to R peers.
func TestProxyFrontMatchesDirect(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	frontC := client.New(c.frontTS.URL)
	scene := sampleSceneJSON(t)

	// Direct reference run against a standalone node.
	direct := New(Options{})
	directTS := httptest.NewServer(direct.Handler())
	defer directTS.Close()
	defer direct.Shutdown(ctx)
	directC := client.New(directTS.URL)

	info, err := frontC.UploadDataset(ctx, api.KindScene, scene)
	if err != nil {
		t.Fatalf("upload via front: %v", err)
	}
	wantInfo, err := directC.UploadDataset(ctx, api.KindScene, scene)
	if err != nil {
		t.Fatal(err)
	}
	if info != wantInfo {
		t.Fatalf("front upload document %+v differs from direct %+v", info, wantInfo)
	}

	// The upload landed on exactly the digest's first R ring candidates.
	cands := c.front.ring.candidates(info.Digest)
	holders := 0
	for i, ts := range c.nodeTS {
		_, has := c.nodes[i].store.Get(info.Digest)
		isReplica := ts.URL == cands[0] || ts.URL == cands[1]
		if has != isReplica {
			t.Errorf("peer %s holds dataset = %v, want %v (candidates %v)", ts.URL, has, isReplica, cands)
		}
		if has {
			holders++
		}
	}
	if holders != 2 {
		t.Errorf("dataset on %d peers, want 2 replicas", holders)
	}

	req := api.MineRequest{Dataset: info.Digest, Config: core.Config{
		Algorithm: core.AlgEclatKCPlus, MinSupport: 0.3, GenerateRules: true, MinConfidence: 0.7,
	}}
	got, err := frontC.Mine(ctx, req)
	if err != nil {
		t.Fatalf("mine via front: %v", err)
	}
	want, err := directC.Mine(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(normalizeMicros(got))
	wb, _ := json.Marshal(normalizeMicros(want))
	if !bytes.Equal(gb, wb) {
		t.Errorf("front response differs from direct:\n%s\nvs\n%s", gb, wb)
	}

	// GET dataset metadata routes too.
	back, err := frontC.GetDataset(ctx, info.Digest)
	if err != nil || back != info {
		t.Errorf("GetDataset via front = %+v, %v", back, err)
	}

	// The front's health and metrics identify it as a router.
	h, err := frontC.Health(ctx)
	if err != nil || h.Role != "front" || h.Peers != 3 {
		t.Errorf("front health = %+v, %v", h, err)
	}
	m, err := frontC.Metrics(ctx)
	if err != nil || m.Ring == nil {
		t.Fatalf("front metrics = %+v, %v", m, err)
	}
	if m.Ring.Replicas != 2 || len(m.Ring.Peers) != 3 || m.Ring.Forwarded == 0 {
		t.Errorf("ring stats = %+v", m.Ring)
	}
}

// TestProxyJobLifecycle: async jobs submitted through the front are
// routed back to their owning node for polling and cancellation.
func TestProxyJobLifecycle(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	frontC := client.New(c.frontTS.URL)

	info, err := frontC.UploadDataset(ctx, api.KindTable, []byte("r1,a,b\nr2,a,b\nr3,a,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	req := api.MineRequest{Dataset: info.Digest, Config: core.Config{MinSupport: 0.5}}
	st, err := frontC.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit via front: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := frontC.WaitJob(waitCtx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait via front: %v", err)
	}
	if final.State != api.JobDone || final.Result == nil {
		t.Fatalf("job ended %q (%s), want done with result", final.State, final.Error)
	}
	if final.Result.Transactions != 3 {
		t.Errorf("result transactions = %d, want 3", final.Result.Transactions)
	}
	// The front tracked the routing.
	if m := c.front.Metrics(); m.Ring.TrackedJobs != 1 {
		t.Errorf("tracked jobs = %d, want 1", m.Ring.TrackedJobs)
	}
	// Unknown job IDs 404 with the envelope, not a routing panic.
	if _, err := frontC.PollJob(ctx, "j999999-00000001"); !client.IsNotFound(err) {
		t.Errorf("unknown job poll err = %v, want not_found", err)
	}
}

// TestProxyFailover kills the primary replica of a dataset mid-test and
// requires the front to fail over to the surviving replica: same
// results, Failovers counted, no client-visible error.
func TestProxyFailover(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	frontC := client.New(c.frontTS.URL)

	info, err := frontC.UploadDataset(ctx, api.KindTable, []byte("r1,a,b\nr2,a,b\nr3,b,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	req := api.MineRequest{Dataset: info.Digest, Config: core.Config{MinSupport: 0.5}}
	before, err := frontC.Mine(ctx, req)
	if err != nil {
		t.Fatalf("mine before failover: %v", err)
	}

	// Kill the digest's primary peer.
	cands := c.front.ring.candidates(info.Digest)
	for i, ts := range c.nodeTS {
		if ts.URL == cands[0] {
			ts.Close()
			c.nodes[i].Shutdown(ctx)
		}
	}

	after, err := frontC.Mine(ctx, req)
	if err != nil {
		t.Fatalf("mine after killing the primary: %v", err)
	}
	gb, _ := json.Marshal(normalizeMicros(after))
	wb, _ := json.Marshal(normalizeMicros(before))
	// The surviving replica mined independently; only the timing (and
	// its own cache state) may differ.
	afterN, beforeN := *normalizeMicros(after), *normalizeMicros(before)
	afterN.Cached, beforeN.Cached = false, false
	gb, _ = json.Marshal(afterN)
	wb, _ = json.Marshal(beforeN)
	if !bytes.Equal(gb, wb) {
		t.Errorf("failover response differs:\n%s\nvs\n%s", gb, wb)
	}
	m := c.front.Metrics()
	if m.Ring.Failovers == 0 {
		t.Error("failover not counted in ring stats")
	}
	if m.Ring.Errors != 0 {
		t.Errorf("ring errors = %d, want 0 (a replica survived)", m.Ring.Errors)
	}

	// With BOTH replicas dead the client gets a typed 502.
	for i, ts := range c.nodeTS {
		if ts.URL == cands[1] {
			ts.Close()
			c.nodes[i].Shutdown(ctx)
		}
	}
	// The third node never stored the dataset: expect upstream or
	// not_found depending on ring order — but never a transport error.
	_, err = frontC.Mine(ctx, req)
	if err == nil {
		t.Fatal("mine with both replicas dead succeeded")
	}
	if code := client.ErrCode(err); code != api.CodeUpstream && code != api.CodeNotFound {
		t.Errorf("err = %v (code %q), want upstream_unavailable or not_found", err, code)
	}
}

// TestProxyDraining: a draining front rejects new work with the
// envelope 503 + Retry-After while its peers stay untouched.
func TestProxyDraining(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	if err := c.front.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	frontC := client.New(c.frontTS.URL)
	_, err := frontC.UploadDataset(ctx, api.KindTable, []byte("r1,a,b\n"))
	if client.ErrCode(err) != api.CodeDraining {
		t.Fatalf("upload on draining front err = %v, want draining", err)
	}
	var ae *client.APIError
	if !asAPIErr(err, &ae) || ae.RetryAfter == 0 {
		t.Errorf("draining 503 missing Retry-After (err %v)", err)
	}
	h, err := frontC.Health(ctx)
	if err != nil || h.Status != "draining" {
		t.Errorf("draining front health = %+v, %v", h, err)
	}
	// Peers still answer directly.
	if _, err := client.New(c.nodeTS[0].URL).Health(ctx); err != nil {
		t.Errorf("peer unhealthy after front drain: %v", err)
	}
}

func asAPIErr(err error, target **client.APIError) bool {
	ae, ok := err.(*client.APIError)
	if ok {
		*target = ae
	}
	return ok
}

// TestProxyPatchLineageRouting pins the delta pipeline across the ring
// with Replicas 1: the parent scene lives on exactly one node, the
// successor digest hashes to a (likely different) ring position, and
// lineage routing must still send the successor's mine to the node
// holding the parent — where it runs incrementally, proven by that
// node's delta counters.
func TestProxyPatchLineageRouting(t *testing.T) {
	cl := newCluster(t, 1)
	c := client.New(cl.frontTS.URL)
	ctx := context.Background()

	info, err := c.UploadDataset(ctx, api.KindScene, sampleSceneJSON(t))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	cfg := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.3}
	if _, err := c.Mine(ctx, api.MineRequest{Dataset: info.Digest, Config: cfg}); err != nil {
		t.Fatalf("mine parent: %v", err)
	}

	digest := info.Digest
	for step := 0; step < 2; step++ {
		pr, err := c.PatchDataset(ctx, digest, api.PatchRequest{Ops: []dataset.Op{
			{Action: dataset.OpInsert, Layer: "slum", ID: "slumP" + string(rune('a'+step)), WKT: "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"},
		}})
		if err != nil {
			t.Fatalf("patch step %d: %v", step, err)
		}
		resp, err := c.Mine(ctx, api.MineRequest{Dataset: pr.Dataset.Digest, Config: cfg})
		if err != nil {
			t.Fatalf("mine successor step %d: %v", step, err)
		}
		if resp.Transactions == 0 {
			t.Fatalf("step %d: empty response %+v", step, resp)
		}
		digest = pr.Dataset.Digest
	}

	// Exactly one node owns the whole chain and patched both mines.
	var patched, holders int64
	for _, n := range cl.nodes {
		cs := n.Metrics().Obs.Counters
		patched += cs["delta.mine.patched"]
		if cs["server.datasets.patches"] > 0 {
			holders++
		}
	}
	if patched != 2 {
		t.Errorf("delta.mine.patched across cluster = %d, want 2", patched)
	}
	if holders != 1 {
		t.Errorf("%d nodes served patches, want exactly 1 (replicas=1)", holders)
	}

	// Cluster-wide delete of the root removes the parent; the successors
	// live on the same node and remain mineable from scratch.
	if _, err := c.DeleteDataset(ctx, info.Digest); err != nil {
		t.Fatalf("delete root: %v", err)
	}
	if _, err := c.Mine(ctx, api.MineRequest{Dataset: digest, Config: cfg}); err != nil {
		t.Fatalf("mine orphaned successor: %v", err)
	}
}

// TestProxyPatchShortDigestNoPanic pins the annotation guard in
// handlePatchDataset: a misbehaving peer answering 201 with a truncated
// successor digest must be relayed, recorded, and not panic the handler.
func TestProxyPatchShortDigestNoPanic(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		io.WriteString(w, `{"parent":"p","dataset":{"digest":"short"}}`)
	}))
	defer peer.Close()
	front, err := NewProxy(ProxyOptions{Peers: []string{peer.URL}, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/deadbeef", bytes.NewReader([]byte(`{"ops":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PATCH: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	front.mu.Lock()
	_, ok := front.childOf.get("short")
	front.mu.Unlock()
	if !ok {
		t.Error("successor lineage not recorded")
	}
}

// TestProxyRoutingStateBounded pins that the front's job and lineage
// routing state is LRU-capped instead of growing without bound.
func TestProxyRoutingStateBounded(t *testing.T) {
	front, err := NewProxy(ProxyOptions{Peers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	front.mu.Lock()
	for i := 0; i < proxyJobEntries+100; i++ {
		front.jobPeer.put(fmt.Sprintf("j-%d", i), "peer", 0)
	}
	for i := 0; i < proxyLineageEntries+100; i++ {
		front.childOf.put(fmt.Sprintf("d-%d", i), "parent", 0)
	}
	jobs, lineage := front.jobPeer.len(), front.childOf.len()
	front.mu.Unlock()
	if jobs != proxyJobEntries {
		t.Errorf("jobPeer entries = %d, want cap %d", jobs, proxyJobEntries)
	}
	if lineage != proxyLineageEntries {
		t.Errorf("childOf entries = %d, want cap %d", lineage, proxyLineageEntries)
	}
}
