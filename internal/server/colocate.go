package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/api"
	"repro/internal/colocation"
	"repro/internal/obs"
)

// ColocateCacheKey canonicalises a co-location request to its
// result-cache key: the dataset digest plus the deterministic JSON
// encoding of the config wrapped in a {"colocate": ...} envelope. The
// wrapper keeps co-location keys disjoint from transaction-mining keys
// for the same dataset (core.Config's canonical JSON never starts with
// that member), while persist.splitKey still sees digest | config.
// The Engine knob is stripped before marshalling: both engines return
// identical results, so a clique run and a joinless run of the same
// config share one cache entry.
func ColocateCacheKey(digest string, cfg colocation.Config) (string, error) {
	cfg.Engine = ""
	canonical, err := json.Marshal(struct {
		Colocate colocation.Config `json:"colocate"`
	}{cfg})
	if err != nil {
		return "", fmt.Errorf("server: canonicalising colocate config: %w", err)
	}
	return digest + "|" + string(canonical), nil
}

// computeColocation runs the co-location engine once for a cache-missing
// key and fills the result cache, mirroring compute for the transaction
// pipeline. Runs are tallied separately (server.colocate.runs) so
// coalescing tests can pin each workload's execution count.
func (s *Server) computeColocation(ctx context.Context, ds *StoredDataset, key string, cfg colocation.Config) (*MineResponse, error) {
	s.trace.Add("server.colocate.runs", 1)
	if s.mineHook != nil {
		// Same test seam as compute: lets tests hold a running
		// computation open deterministically.
		if err := s.mineHook(ctx); err != nil {
			return nil, err
		}
	}
	if ds.Kind != KindScene {
		return nil, fmt.Errorf("server: dataset %q is a %s; co-location needs a scene", ds.Digest, ds.Kind)
	}
	ctx = obs.WithTrace(ctx, s.trace)
	res, err := colocation.MineContext(ctx, ds.Scene, cfg)
	if err != nil {
		return nil, err
	}
	resp := buildColocateResponse(ds.Digest, res)
	s.cache.Put(key, resp)
	return resp, nil
}

// buildColocateResponse converts an engine result to the wire form.
func buildColocateResponse(digest string, res *colocation.Result) *MineResponse {
	cr := &api.ColocationResult{
		Distance:       res.Distance,
		MinPI:          res.MinPI,
		Types:          res.Types,
		Instances:      res.Instances,
		CandidatePairs: res.CandidatePairs,
		RefinedPairs:   res.RefinedPairs,
		Prevalent:      make([]api.ColocationPattern, 0, len(res.Prevalent)),
	}
	for _, p := range res.Prevalent {
		cr.Prevalent = append(cr.Prevalent, api.ColocationPattern{
			Types:              p.Types,
			ParticipationIndex: p.PI,
			RowInstances:       p.Rows,
		})
	}
	return &MineResponse{
		Algorithm:    "colocation",
		Dataset:      digest,
		MiningMicros: res.Duration.Microseconds(),
		Frequent:     []ItemsetResult{},
		Colocation:   cr,
	}
}

// decodeColocateRequest parses and sanity-checks a co-location request
// body, returning it converted to the internal MineRequest form the
// cache, single-flight group, and job manager all share.
func (s *Server) decodeColocateRequest(w http.ResponseWriter, r *http.Request) (MineRequest, bool) {
	body, ok := s.readBody(w, r)
	if !ok {
		return MineRequest{}, false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req api.ColocateRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "decoding request: %v", err)
		return MineRequest{}, false
	}
	if req.Dataset == "" {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "request needs a %q digest from a dataset upload", "dataset")
		return MineRequest{}, false
	}
	if err := req.Config.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return MineRequest{}, false
	}
	cfg := req.Config
	return MineRequest{Dataset: req.Dataset, TimeoutMillis: req.TimeoutMillis, Colocate: &cfg}, true
}

// handleColocate mines co-locations synchronously under the request
// deadline (POST /v1/colocate).
func (s *Server) handleColocate(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	req, ok := s.decodeColocateRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req))
	defer cancel()
	resp, err := s.mine(ctx, req)
	if err != nil {
		s.writeMineError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSubmitColocateJob enqueues an async co-location job (POST
// /v1/colocate/jobs). The job rides the same manager, queue, journal,
// and /v1/jobs/{id} poll/cancel surface as transaction-mining jobs.
func (s *Server) handleSubmitColocateJob(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w, r) {
		return
	}
	req, ok := s.decodeColocateRequest(w, r)
	if !ok {
		return
	}
	if _, ok := s.store.Get(req.Dataset); !ok {
		writeError(w, r, http.StatusNotFound, api.CodeNotFound, "unknown dataset %q (upload it first)", req.Dataset)
		return
	}
	j, err := s.jobs.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, r, http.StatusServiceUnavailable, api.CodeDraining, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, r, http.StatusServiceUnavailable, api.CodeQueueFull, "%v", err)
		return
	case err != nil:
		writeError(w, r, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.trace.Add("server.jobs.submitted", 1)
	st := s.jobs.Status(j)
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}
