package server

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingCandidatesDeterministicAndComplete: the same peers and key
// always yield the same candidate order, and every peer appears exactly
// once.
func TestRingCandidatesDeterministicAndComplete(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1, r2 := newRing(peers), newRing(peers)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("digest-%d", i)
		c1, c2 := r1.candidates(key), r2.candidates(key)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("key %q: rings disagree: %v vs %v", key, c1, c2)
		}
		if len(c1) != len(peers) {
			t.Fatalf("key %q: %d candidates, want all %d peers", key, len(c1), len(peers))
		}
		seen := map[string]bool{}
		for _, p := range c1 {
			if seen[p] {
				t.Fatalf("key %q: peer %s listed twice", key, p)
			}
			seen[p] = true
		}
	}
}

// TestRingBalance: with 64 vnodes per peer, no peer's primary share of
// the key space may collapse (each of 3 peers should own a healthy
// fraction of 3000 keys).
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(peers)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.candidates(fmt.Sprintf("%064d", i))[0]]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.15 {
			t.Errorf("peer %s owns only %.1f%% of keys (counts %v)", p, 100*share, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one peer must not move keys whose
// primary was a surviving peer — the consistency property that makes
// digest routing safe across cluster resizes.
func TestRingMinimalDisruption(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	without := []string{"http://a:1", "http://b:1", "http://d:1"} // c removed
	rAll, rLess := newRing(all), newRing(without)
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("digest-%d", i)
		before := rAll.candidates(key)[0]
		after := rLess.candidates(key)[0]
		if before == "http://c:1" {
			continue // its keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys with surviving primaries were remapped", moved)
	}
}

// TestRingFailoverOrder: for any key, dropping the primary promotes
// exactly the next candidate — the failover walk a front node performs.
func TestRingFailoverOrder(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(peers)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("digest-%d", i)
		cands := r.candidates(key)
		survivors := []string{}
		for _, p := range peers {
			if p != cands[0] {
				survivors = append(survivors, p)
			}
		}
		if got := newRing(survivors).candidates(key)[0]; got != cands[1] {
			t.Fatalf("key %q: after losing %s, primary = %s, want next candidate %s",
				key, cands[0], got, cands[1])
		}
	}
}
