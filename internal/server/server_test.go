package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// --- HTTP test helpers ---------------------------------------------------

func doJSON(t *testing.T, client *http.Client, method, url string, body []byte, out any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func uploadSampleScene(t *testing.T, client *http.Client, base string) datasetInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.PortoAlegreScene().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var info datasetInfo
	status, raw := doJSON(t, client, "POST", base+"/datasets/scene", buf.Bytes(), &info)
	if status != http.StatusCreated {
		t.Fatalf("scene upload: %d %s", status, raw)
	}
	return info
}

func mineBody(t *testing.T, digest string, cfg core.Config) []byte {
	t.Helper()
	body, err := json.Marshal(MineRequest{Dataset: digest, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// --- End-to-end ----------------------------------------------------------

// TestEndToEndAsyncJobMatchesLibraryRun is the PR's acceptance path:
// upload the Porto Alegre scene, submit an async job, poll it to
// completion, and require the served result to be identical to
// qsrmine.Run (core.Run) on the same inputs; then re-request the same
// (dataset, config) and require a cache hit, asserted via the counters.
func TestEndToEndAsyncJobMatchesLibraryRun(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	info := uploadSampleScene(t, client, ts.URL)
	cfg := core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.3, GenerateRules: true, MinConfidence: 0.7}

	// Submit the async job.
	var st JobStatus
	status, raw := doJSON(t, client, "POST", ts.URL+"/jobs", mineBody(t, info.Digest, cfg), &st)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}

	// Poll to completion.
	deadline := time.Now().Add(30 * time.Second)
	for st.State != JobDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if status, raw = doJSON(t, client, "GET", ts.URL+"/jobs/"+st.ID, nil, &st); status != http.StatusOK {
			t.Fatalf("poll: %d %s", status, raw)
		}
		if st.State == JobFailed || st.State == JobCancelled {
			t.Fatalf("job ended %q: %s", st.State, st.Error)
		}
	}
	if st.Result == nil {
		t.Fatal("done job carries no result")
	}

	// The reference: the library run on the same scene and config.
	want, err := core.Run(dataset.PortoAlegreScene(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Transactions != want.Result.NumTransactions ||
		st.Result.MinSupportCount != want.Result.MinSupportCount ||
		st.Result.PrunedSameFeature != want.Result.PrunedSameFeature {
		t.Errorf("headline numbers differ: %+v vs %+v", st.Result, want.Result)
	}
	if len(st.Result.Frequent) != len(want.Result.Frequent) {
		t.Fatalf("served %d itemsets, library mined %d", len(st.Result.Frequent), len(want.Result.Frequent))
	}
	for i, f := range want.Result.Frequent {
		got := st.Result.Frequent[i]
		if got.Support != f.Support || strings.Join(got.Items, "|") != strings.Join(f.Items.Names(want.DB.Dict), "|") {
			t.Fatalf("itemset %d differs: %v/%d vs %v/%d",
				i, got.Items, got.Support, f.Items.Names(want.DB.Dict), f.Support)
		}
	}
	if len(st.Result.Rules) != len(want.Rules) {
		t.Errorf("served %d rules, library generated %d", len(st.Result.Rules), len(want.Rules))
	}
	if st.Result.Cached {
		t.Error("first mining of a config must not be marked cached")
	}

	// A second identical request — this time synchronous — must be a
	// cache hit and not re-mine.
	var second MineResponse
	if status, raw = doJSON(t, client, "POST", ts.URL+"/mine", mineBody(t, info.Digest, cfg), &second); status != http.StatusOK {
		t.Fatalf("cached mine: %d %s", status, raw)
	}
	if !second.Cached {
		t.Error("identical request must be served from the result cache")
	}
	if len(second.Frequent) != len(st.Result.Frequent) {
		t.Error("cached response differs from the original")
	}
	var m ServerMetrics
	if status, raw = doJSON(t, client, "GET", ts.URL+"/metrics", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, raw)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss", m.Cache)
	}
	if m.Obs.Counters["server.cache.hits"] != 1 {
		t.Errorf("trace counter server.cache.hits = %d", m.Obs.Counters["server.cache.hits"])
	}
	// The obs snapshot saw the pipeline stages of the one real run.
	if m.Obs.Counters["mine.frequent"] == 0 {
		t.Error("obs counters missing mining pass data")
	}
	// The extraction stage's filter-and-refine tallies flow through too:
	// exact relates performed and prepared geometries built.
	if m.Obs.Counters["extract.relates"] == 0 {
		t.Errorf("obs counters missing extract.relates (counters: %v)", m.Obs.Counters)
	}
	if m.Obs.Counters["extract.prepared.builds"] == 0 {
		t.Errorf("obs counters missing extract.prepared.builds (counters: %v)", m.Obs.Counters)
	}
	var sawMine bool
	for _, sr := range m.Obs.Stages {
		if sr.Name == "mine" {
			sawMine = true
		}
	}
	if !sawMine {
		t.Error("obs snapshot missing the mine stage span")
	}
	if m.Jobs.Done != 1 || m.Jobs.Submitted != 1 {
		t.Errorf("job stats = %+v", m.Jobs)
	}
	if m.Store.Entries != 1 {
		t.Errorf("store stats = %+v", m.Store)
	}

	// A config that differs (other minsup) misses the cache.
	other := cfg
	other.MinSupport = 0.5
	var third MineResponse
	if status, raw = doJSON(t, client, "POST", ts.URL+"/mine", mineBody(t, info.Digest, other), &third); status != http.StatusOK {
		t.Fatalf("third mine: %d %s", status, raw)
	}
	if third.Cached {
		t.Error("different config must not hit the cache")
	}
}

// TestCancelRunningJobPromptAndLeakFree cancels a mid-run job via
// DELETE /jobs/{id} and requires (a) prompt termination and (b) no
// leaked goroutines — PR 3's leak-check pattern at the service level.
func TestCancelRunningJobPromptAndLeakFree(t *testing.T) {
	s := New(Options{Workers: 1})
	// Deterministic "long" mine: block until the job context is
	// cancelled, exactly like a heavy DFS that polls ctx.
	started := make(chan struct{}, 8)
	s.mineHook = func(ctx context.Context) error {
		started <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := []byte(`r1,a,b
r2,a,c
r3,b,c
`)
	var info datasetInfo
	if status, raw := doJSON(t, client, "POST", ts.URL+"/datasets/table", body, &info); status != http.StatusCreated {
		t.Fatalf("table upload: %d %s", status, raw)
	}

	before := runtime.NumGoroutine()
	var st JobStatus
	status, raw := doJSON(t, client, "POST", ts.URL+"/jobs",
		mineBody(t, info.Digest, core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.5}), &st)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	<-started // the job is now provably mid-"DFS"

	if status, raw = doJSON(t, client, "DELETE", ts.URL+"/jobs/"+st.ID, nil, nil); status != http.StatusOK {
		t.Fatalf("cancel: %d %s", status, raw)
	}
	j, ok := s.jobs.Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job did not terminate promptly")
	}
	if got := s.jobs.Status(j); got.State != JobCancelled {
		t.Fatalf("state = %q, want cancelled", got.State)
	}
	// GET after cancel reports the terminal state to pollers.
	if status, raw = doJSON(t, client, "GET", ts.URL+"/jobs/"+st.ID, nil, &st); status != http.StatusOK || st.State != JobCancelled {
		t.Fatalf("poll after cancel: %d %s", status, raw)
	}
	// No goroutines may outlive the cancelled job (HTTP keep-alive
	// conns are reaped asynchronously, so poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdown pins the drain semantics: during Shutdown the
// in-flight job completes (within the drain deadline), new submissions
// and uploads get 503, and the listener closes cleanly.
func TestGracefulShutdown(t *testing.T) {
	s := New(Options{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.mineHook = func(ctx context.Context) error {
		started <- struct{}{}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Real listener + http.Server, exactly as cmd/qsrmined wires it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	var buf bytes.Buffer
	if err := dataset.PortoAlegreScene().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var info datasetInfo
	if status, raw := doJSON(t, client, "POST", base+"/datasets/scene", buf.Bytes(), &info); status != http.StatusCreated {
		t.Fatalf("upload: %d %s", status, raw)
	}
	body := mineBody(t, info.Digest, core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.3})
	var st JobStatus
	if status, raw := doJSON(t, client, "POST", base+"/jobs", body, &st); status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	<-started // job is mid-run

	// Begin draining with a generous deadline.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Wait until the drain flag is visible.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New submissions are rejected with 503 while the listener is up.
	if status, raw := doJSON(t, client, "POST", base+"/jobs", body, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %s, want 503", status, raw)
	}
	if status, _ := doJSON(t, client, "POST", base+"/mine", body, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("mine while draining: %d, want 503", status)
	}
	if status, _ := doJSON(t, client, "POST", base+"/datasets/scene", buf.Bytes(), nil); status != http.StatusServiceUnavailable {
		t.Fatalf("upload while draining: %d, want 503", status)
	}
	// Health flips to draining/503 so load balancers stop routing.
	if status, raw := doJSON(t, client, "GET", base+"/healthz", nil, nil); status != http.StatusServiceUnavailable || !strings.Contains(raw, "draining") {
		t.Fatalf("healthz while draining: %d %s", status, raw)
	}
	// Polling the in-flight job still works during the drain.
	if status, _ := doJSON(t, client, "GET", base+"/jobs/"+st.ID, nil, &st); status != http.StatusOK {
		t.Fatalf("poll while draining: %d", status)
	}

	// Let the in-flight job finish: the drain completes without error.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, _ := s.jobs.Get(st.ID)
	if got := s.jobs.Status(j); got.State != JobDone {
		t.Fatalf("in-flight job ended %q (err %q), want done", got.State, got.Error)
	}

	// Close the listener cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("listener close: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 500*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownDeadlineCancelsStuckJob: when the drain deadline expires
// first, the running job is cancelled through its context and shutdown
// still returns (with ctx.Err()) instead of hanging.
func TestShutdownDeadlineCancelsStuckJob(t *testing.T) {
	s := New(Options{Workers: 1})
	started := make(chan struct{}, 1)
	s.mineHook = func(ctx context.Context) error {
		started <- struct{}{}
		<-ctx.Done() // never finishes on its own
		return ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := []byte("r1,a,b\n")
	var info datasetInfo
	doJSON(t, client, "POST", ts.URL+"/datasets/table", body, &info)
	var st JobStatus
	if status, raw := doJSON(t, client, "POST", ts.URL+"/jobs",
		mineBody(t, info.Digest, core.Config{MinSupport: 0.5}), &st); status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	err := s.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("shutdown with stuck job took %v", took)
	}
	j, _ := s.jobs.Get(st.ID)
	if got := s.jobs.Status(j); got.State != JobCancelled {
		t.Fatalf("stuck job state = %q, want cancelled", got.State)
	}
}

// TestRequestValidationAndErrors covers the unhappy HTTP paths.
func TestRequestValidationAndErrors(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	cases := []struct {
		name, method, path string
		body               string
		wantStatus         int
		wantErr            string
	}{
		{"mine unknown dataset", "POST", "/mine", `{"dataset":"beef","config":{"minSupport":0.5}}`, 404, "unknown dataset"},
		{"job unknown dataset", "POST", "/jobs", `{"dataset":"beef","config":{"minSupport":0.5}}`, 404, "unknown dataset"},
		{"mine bad algorithm", "POST", "/mine", `{"dataset":"beef","config":{"algorithm":"quantum","minSupport":0.5}}`, 400, "unknown algorithm"},
		{"mine unknown body field", "POST", "/mine", `{"dataset":"beef","config":{"minSupport":0.5},"cfg":{}}`, 400, "unknown field"},
		{"mine missing dataset", "POST", "/mine", `{"config":{"minSupport":0.5}}`, 400, "dataset"},
		{"mine bad minsup", "POST", "/mine", `{"dataset":"beef","config":{"minSupport":7}}`, 400, "minSupport"},
		{"mine garbage body", "POST", "/mine", `}{`, 400, "decoding"},
		{"scene garbage body", "POST", "/datasets/scene", `not json`, 400, "decoding"},
		{"scene bad wkt", "POST", "/datasets/scene", `{"reference":{"type":"d","features":[{"id":"x","wkt":"POINT(huh)"}]}}`, 400, "parsing WKT"},
		{"table empty", "POST", "/datasets/table", "\n# nothing\n", 400, "no transactions"},
		{"table bad row", "POST", "/datasets/table", ",a,b\n", 400, "empty reference ID"},
		{"poll unknown job", "GET", "/jobs/j777", "", 404, "unknown job"},
		{"cancel unknown job", "DELETE", "/jobs/j777", "", 404, "unknown job"},
		{"dataset metadata unknown", "GET", "/datasets/beef", "", 404, "unknown dataset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, client, tc.method, ts.URL+tc.path, []byte(tc.body), nil)
			if status != tc.wantStatus {
				t.Fatalf("%s %s: status %d %s, want %d", tc.method, tc.path, status, raw, tc.wantStatus)
			}
			if !strings.Contains(raw, tc.wantErr) {
				t.Errorf("body %q missing %q", raw, tc.wantErr)
			}
		})
	}

	// A config error surfaced by the engine itself (eclat rejects
	// horizontal counting) maps to 422.
	body := []byte("r1,a,b\nr2,a,b\n")
	var info datasetInfo
	doJSON(t, client, "POST", ts.URL+"/datasets/table", body, &info)
	req := fmt.Sprintf(`{"dataset":%q,"config":{"algorithm":"eclat-kc+","minSupport":0.5,"counting":"horizontal"}}`, info.Digest)
	if status, raw := doJSON(t, client, "POST", ts.URL+"/mine", []byte(req), nil); status != http.StatusUnprocessableEntity {
		t.Errorf("engine config error: %d %s, want 422", status, raw)
	}
	// Upload body cap: 413 with the limit named.
	small := New(Options{MaxUploadBytes: 16})
	tss := httptest.NewServer(small.Handler())
	defer tss.Close()
	defer small.Shutdown(context.Background())
	if status, raw := doJSON(t, client, "POST", tss.URL+"/datasets/table", bytes.Repeat([]byte("a"), 64), nil); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: %d %s, want 413", status, raw)
	}
}

// TestHealthzReportsVersion: /healthz answers ok with the build stamp.
func TestHealthzReportsVersion(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	var h healthz
	if status, raw := doJSON(t, ts.Client(), "GET", ts.URL+"/healthz", nil, &h); status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, raw)
	}
	if h.Status != "ok" || h.Version == "" {
		t.Errorf("healthz = %+v", h)
	}
	if !strings.Contains(h.Version, runtime.Version()) {
		t.Errorf("version %q missing the Go version stamp", h.Version)
	}
}

// TestMineRequestTimeout: a request-level deadline cancels a stuck mine
// and maps to 504 on the synchronous path and a failed job on the
// async path.
func TestMineRequestTimeout(t *testing.T) {
	s := New(Options{Workers: 1})
	s.mineHook = func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	var info datasetInfo
	doJSON(t, client, "POST", ts.URL+"/datasets/table", []byte("r1,a,b\n"), &info)
	req := fmt.Sprintf(`{"dataset":%q,"config":{"minSupport":0.5},"timeoutMillis":30}`, info.Digest)
	if status, raw := doJSON(t, client, "POST", ts.URL+"/mine", []byte(req), nil); status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out mine: %d %s, want 504", status, raw)
	}
	var st JobStatus
	if status, raw := doJSON(t, client, "POST", ts.URL+"/jobs", []byte(req), &st); status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	j, _ := s.jobs.Get(st.ID)
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timed-out job did not finish")
	}
	if got := s.jobs.Status(j); got.State != JobFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("timed-out job = %+v, want failed with a deadline error", got)
	}
}
