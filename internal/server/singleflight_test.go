package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func testTrace() *obs.Trace {
	return obs.New(obs.NewRingCollector(64))
}

// waitCounter polls a trace counter until it reaches want or the
// deadline passes.
func waitCounter(t *testing.T, trace *obs.Trace, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for trace.Counters()[name] < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s = %d, want %d", name, trace.Counters()[name], want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingEndToEnd is the tentpole's acceptance test: N identical
// concurrent sync mines share exactly ONE computation — proven by the
// counters, not by timing — and every caller receives byte-identical
// bytes.
func TestCoalescingEndToEnd(t *testing.T) {
	const n = 8
	s := New(Options{Workers: 2})
	// Gate the computation so all N requests are provably concurrent:
	// the hook blocks the (single) leader until the test has counted
	// n-1 coalesce hits.
	entered := make(chan struct{}, n)
	release := make(chan struct{})
	s.mineHook = func(ctx context.Context) error {
		entered <- struct{}{}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	client := ts.Client()

	var info datasetInfo
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/datasets/table", []byte("r1,a,b\nr2,a,b\nr3,a,c\n"), &info); status != http.StatusCreated {
		t.Fatalf("upload: %d %s", status, raw)
	}
	body := fmt.Sprintf(`{"dataset":%q,"config":{"minSupport":0.5}}`, info.Digest)

	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = doJSON(t, client, "POST", ts.URL+"/v1/mine", []byte(body), nil)
		}(i)
	}
	<-entered // the leader is mid-compute
	// All other requests must join its flight, never start their own.
	waitCounter(t, s.trace, "coalesce.hits", n-1)
	select {
	case <-entered:
		t.Fatal("a second computation started for an identical in-flight request")
	default:
	}
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, statuses[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d response differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var first MineResponse
	if err := json.Unmarshal([]byte(bodies[0]), &first); err != nil {
		t.Fatalf("bad mine response %q: %v", bodies[0], err)
	}
	if first.Cached {
		t.Error("coalesced responses must not be marked cached")
	}
	c := s.trace.Counters()
	if c["coalesce.leaders"] != 1 {
		t.Errorf("coalesce.leaders = %d, want 1", c["coalesce.leaders"])
	}
	if c["coalesce.hits"] != n-1 {
		t.Errorf("coalesce.hits = %d, want %d", c["coalesce.hits"], n-1)
	}
	if c["server.mine.runs"] != 1 {
		t.Errorf("server.mine.runs = %d, want exactly 1 computation for %d requests", c["server.mine.runs"], n)
	}
	if got := s.flights.inFlight(); got != 0 {
		t.Errorf("%d flights still live after completion", got)
	}

	// The leader's cache fill serves request n+1 without a new flight.
	var followUp MineResponse
	if status, raw := doJSON(t, client, "POST", ts.URL+"/v1/mine", []byte(body), &followUp); status != http.StatusOK || !followUp.Cached {
		t.Errorf("follow-up request: %d %s, want a cache hit", status, raw)
	}
	if c := s.trace.Counters(); c["coalesce.leaders"] != 1 {
		t.Errorf("cache hit started a new flight (leaders = %d)", c["coalesce.leaders"])
	}
}

// TestFlightFollowerSurvivesLeaderCancel: the computation is detached
// from the leader's context — when the leader's request dies, a
// follower still waiting must receive the result.
func TestFlightFollowerSurvivesLeaderCancel(t *testing.T) {
	g := newFlightGroup(testTrace())
	computing := make(chan struct{})
	release := make(chan struct{})
	want := &MineResponse{Algorithm: "test"}
	compute := func(ctx context.Context) (*MineResponse, error) {
		close(computing)
		select {
		case <-release:
			return want, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderOut := make(chan error, 1)
	go func() {
		_, err := g.do(leaderCtx, context.Background(), "k", compute)
		leaderOut <- err
	}()
	<-computing

	followerOut := make(chan *MineResponse, 1)
	go func() {
		resp, err := g.do(context.Background(), context.Background(), "k", compute)
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerOut <- resp
	}()
	// The follower must have joined (not started a second flight)
	// before we kill the leader.
	waitCounterGroup(t, g, 2)

	cancelLeader()
	if err := <-leaderOut; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader got %v", err)
	}
	close(release)
	if resp := <-followerOut; resp != want {
		t.Fatalf("follower got %v, want the shared result", resp)
	}
	if n := g.trace.Counters()["coalesce.abandoned"]; n != 0 {
		t.Errorf("coalesce.abandoned = %d with a live follower", n)
	}
}

// waitCounterGroup polls until the flight for any key has the wanted
// waiter count.
func waitCounterGroup(t *testing.T, g *flightGroup, waiters int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		n := 0
		for _, fl := range g.flights {
			n += fl.waiters
		}
		g.mu.Unlock()
		if n >= waiters {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flights never reached %d waiters", waiters)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlightAbandonedWhenAllWaitersLeave: when the last waiter's
// context ends, the computation is cancelled instead of burning CPU for
// nobody, and the key is free for the next request.
func TestFlightAbandonedWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup(testTrace())
	computing := make(chan struct{})
	computeCancelled := make(chan struct{})
	compute := func(ctx context.Context) (*MineResponse, error) {
		close(computing)
		<-ctx.Done()
		close(computeCancelled)
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan error, 1)
	go func() {
		_, err := g.do(ctx, context.Background(), "k", compute)
		out <- err
	}()
	<-computing
	cancel()
	if err := <-out; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want Canceled", err)
	}
	select {
	case <-computeCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned computation was never cancelled")
	}
	waitCounter(t, g.trace, "coalesce.abandoned", 1)
	// The key is immediately reusable: a fresh request leads anew.
	deadline := time.Now().Add(5 * time.Second)
	for g.inFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight still registered")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := g.do(context.Background(), context.Background(), "k",
		func(context.Context) (*MineResponse, error) { return &MineResponse{Algorithm: "fresh"}, nil })
	if err != nil || resp.Algorithm != "fresh" {
		t.Fatalf("fresh flight after abandon: %v %v", resp, err)
	}
	if n := g.trace.Counters()["coalesce.leaders"]; n != 2 {
		t.Errorf("coalesce.leaders = %d, want 2", n)
	}
}
