package server

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// flight is one in-progress mining computation shared by every
// concurrent request for the same cache key. The first request (the
// leader) starts the computation; later identical requests (followers)
// join as waiters. resp/err are written once, before done is closed.
type flight struct {
	done    chan struct{}
	resp    *MineResponse
	err     error
	waiters int                // guarded by the group's mu
	cancel  context.CancelFunc // cancels the detached computation
}

// flightGroup implements single-flight coalescing over result-cache
// keys: N concurrent requests for the same (dataset digest, canonical
// config) share exactly one computation and one cache fill. Counters:
//
//	coalesce.leaders    computations started (one per key in flight)
//	coalesce.hits       requests that joined an existing flight
//	coalesce.abandoned  computations cancelled because every waiter left
//
// The computation runs detached from any single request's cancellation
// (a follower — or the leader — disconnecting must not fail the rest),
// but inherits the leader's deadline so a coalesced flight cannot
// outlive the timeout budget it was admitted under.
type flightGroup struct {
	trace *obs.Trace

	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup(trace *obs.Trace) *flightGroup {
	return &flightGroup{trace: trace, flights: make(map[string]*flight)}
}

// do returns compute's result for key, starting compute only when no
// flight for key is in progress. ctx is the calling request's context:
// it bounds only this caller's wait — when it ends, the caller leaves
// the flight, and the computation is cancelled only if nobody else is
// still waiting. detachCtx parents the computation itself (the server
// passes its base context, so shutdown still stops everything).
func (g *flightGroup) do(ctx, detachCtx context.Context, key string, compute func(context.Context) (*MineResponse, error)) (*MineResponse, error) {
	g.mu.Lock()
	fl, ok := g.flights[key]
	if ok {
		fl.waiters++
		g.mu.Unlock()
		g.trace.Add("coalesce.hits", 1)
	} else {
		fl = &flight{done: make(chan struct{}), waiters: 1}
		runCtx := detachCtx
		if deadline, has := ctx.Deadline(); has {
			runCtx, fl.cancel = context.WithDeadline(detachCtx, deadline)
		} else {
			runCtx, fl.cancel = context.WithCancel(detachCtx)
		}
		g.flights[key] = fl
		g.mu.Unlock()
		g.trace.Add("coalesce.leaders", 1)
		go g.lead(key, fl, runCtx, compute)
	}

	select {
	case <-fl.done:
		return fl.resp, fl.err
	case <-ctx.Done():
		g.leave(key, fl)
		return nil, ctx.Err()
	}
}

// lead runs the computation and publishes its result to the flight.
func (g *flightGroup) lead(key string, fl *flight, runCtx context.Context, compute func(context.Context) (*MineResponse, error)) {
	resp, err := compute(runCtx)
	g.mu.Lock()
	fl.resp, fl.err = resp, err
	// Only remove the map entry if it is still ours: when every waiter
	// left, leave() already removed it — and a fresh flight may have
	// taken the key since.
	if g.flights[key] == fl {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	close(fl.done)
	fl.cancel() // release the deadline timer
}

// leave drops one waiter from a flight whose context ended. The last
// waiter out cancels the now-unwanted computation and retires the key
// so the next identical request starts fresh.
func (g *flightGroup) leave(key string, fl *flight) {
	g.mu.Lock()
	fl.waiters--
	abandoned := fl.waiters == 0
	if abandoned {
		select {
		case <-fl.done:
			abandoned = false // finished in the meantime; nothing to cancel
		default:
			if g.flights[key] == fl {
				delete(g.flights, key)
			}
		}
	}
	g.mu.Unlock()
	if abandoned {
		fl.cancel()
		g.trace.Add("coalesce.abandoned", 1)
	}
}

// inFlight reports the number of live flights (tests and metrics).
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
