package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/api"
	"repro/internal/colocation"
	"repro/internal/core"
	"repro/internal/dataset"
)

func colocateBody(t *testing.T, digest string, cfg colocation.Config) []byte {
	t.Helper()
	body, err := json.Marshal(api.ColocateRequest{Dataset: digest, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestColocateEndToEnd: POST /v1/colocate on the sample scene matches a
// direct engine run, the second identical request is a counter-verified
// cache hit, and the cached response round-trips byte-equal.
func TestColocateEndToEnd(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	info := uploadSampleScene(t, ts.Client(), ts.URL+"/v1")
	cfg := colocation.Config{Distance: 3, MinPI: 0.2}
	body := colocateBody(t, info.Digest, cfg)

	var resp api.MineResponse
	status, raw := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate", body, &resp)
	if status != http.StatusOK {
		t.Fatalf("colocate: %d %s", status, raw)
	}
	if resp.Algorithm != "colocation" || resp.Colocation == nil {
		t.Fatalf("response missing colocation block: %+v", resp)
	}
	want, err := colocation.Mine(dataset.PortoAlegreScene(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Colocation.Prevalent) != len(want.Prevalent) {
		t.Fatalf("served %d prevalent, engine says %d", len(resp.Colocation.Prevalent), len(want.Prevalent))
	}
	for i, p := range want.Prevalent {
		got := resp.Colocation.Prevalent[i]
		if !reflect.DeepEqual(got.Types, p.Types) || got.ParticipationIndex != p.PI || got.RowInstances != p.Rows {
			t.Fatalf("pattern %d: served %+v, engine %+v", i, got, p)
		}
	}
	if resp.Colocation.RefinedPairs != want.RefinedPairs || resp.Colocation.Instances != want.Instances {
		t.Fatalf("counters diverge: served %+v, engine %+v", resp.Colocation, want)
	}

	// Re-submission: cache hit, no second engine run.
	runs := s.trace.Counter("server.colocate.runs")
	hits := s.trace.Counter("server.cache.hits")
	var again api.MineResponse
	status, raw = doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate", body, &again)
	if status != http.StatusOK {
		t.Fatalf("colocate again: %d %s", status, raw)
	}
	if !again.Cached {
		t.Fatalf("second response not marked cached: %s", raw)
	}
	if got := s.trace.Counter("server.colocate.runs"); got != runs {
		t.Fatalf("re-submission re-ran the engine: runs %d -> %d", runs, got)
	}
	if got := s.trace.Counter("server.cache.hits"); got != hits+1 {
		t.Fatalf("cache hit counter %d -> %d, want +1", hits, got)
	}
	again.Cached = false
	if !reflect.DeepEqual(again, resp) {
		t.Fatalf("cached response diverged from original")
	}
}

// TestColocateValidation: the rejection surface of POST /v1/colocate.
func TestColocateValidation(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	info := uploadSampleScene(t, ts.Client(), ts.URL+"/v1")

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"no dataset", `{"config":{"distance":1,"minPI":0.5}}`, http.StatusBadRequest},
		{"bad config", fmt.Sprintf(`{"dataset":%q,"config":{"distance":-1,"minPI":0.5}}`, info.Digest), http.StatusBadRequest},
		{"bad minPI", fmt.Sprintf(`{"dataset":%q,"config":{"distance":1,"minPI":0}}`, info.Digest), http.StatusBadRequest},
		{"unknown field", fmt.Sprintf(`{"dataset":%q,"config":{"distance":1,"minPI":0.5},"nope":1}`, info.Digest), http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"feedbeef","config":{"distance":1,"minPI":0.5}}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate", []byte(tc.body), nil)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (%s)", status, tc.status, raw)
			}
		})
	}

	// A table dataset is rejected as a config error.
	tableCSV := []byte("r1,a,b\nr2,a,c\n")
	var tinfo datasetInfo
	if status, raw := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/datasets/table", tableCSV, &tinfo); status != http.StatusCreated {
		t.Fatalf("table upload: %d %s", status, raw)
	}
	status, raw := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate",
		colocateBody(t, tinfo.Digest, colocation.Config{Distance: 1, MinPI: 0.5}), nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("table colocate: %d %s, want 422", status, raw)
	}

	// A colocate field on /v1/mine is turned away toward /v1/colocate.
	status, raw = doJSON(t, ts.Client(), "POST", ts.URL+"/v1/mine",
		[]byte(fmt.Sprintf(`{"dataset":%q,"colocate":{"distance":1,"minPI":0.5}}`, info.Digest)), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("mine with colocate: %d %s, want 400", status, raw)
	}
}

// TestColocateAsyncJob: POST /v1/colocate/jobs rides the shared job
// manager and the /v1/jobs/{id} poll surface, and its result matches
// the sync endpoint's.
func TestColocateAsyncJob(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	info := uploadSampleScene(t, ts.Client(), ts.URL+"/v1")
	body := colocateBody(t, info.Digest, colocation.Config{Distance: 3, MinPI: 0.2, Parallelism: 2})

	var st api.JobStatus
	status, raw := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate/jobs", body, &st)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if status, raw = doJSON(t, ts.Client(), "GET", ts.URL+"/v1/jobs/"+st.ID, nil, &st); status != http.StatusOK {
			t.Fatalf("poll: %d %s", status, raw)
		}
	}
	if st.State != api.JobDone || st.Result == nil || st.Result.Colocation == nil {
		t.Fatalf("job ended %s (%s); result %+v", st.State, st.Error, st.Result)
	}

	var sync api.MineResponse
	if status, raw = doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate", body, &sync); status != http.StatusOK {
		t.Fatalf("sync: %d %s", status, raw)
	}
	// The sync request after the job is a cache hit on the same key —
	// the two surfaces share the result cache.
	if !sync.Cached {
		t.Fatalf("sync after job not served from cache")
	}
	if !reflect.DeepEqual(sync.Colocation, st.Result.Colocation) {
		t.Fatalf("job and sync results diverge:\n job %+v\nsync %+v", st.Result.Colocation, sync.Colocation)
	}
}

// TestColocateCacheKeyDisjoint: colocate and transaction-mining keys
// for one dataset can never collide, and distinct colocate configs get
// distinct keys.
func TestColocateCacheKeyDisjoint(t *testing.T) {
	mineKey, err := CacheKey("d", core.Config{Algorithm: core.AlgEclatKCPlus, MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	colocKey, err := ColocateCacheKey("d", colocation.Config{Distance: 1, MinPI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if mineKey == colocKey {
		t.Fatalf("keys collide: %q", mineKey)
	}
	other, err := ColocateCacheKey("d", colocation.Config{Distance: 2, MinPI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if other == colocKey {
		t.Fatalf("distinct configs share key %q", other)
	}
	same, err := ColocateCacheKey("d", colocation.Config{Distance: 1, MinPI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if same != colocKey {
		t.Fatalf("identical configs key differently: %q vs %q", same, colocKey)
	}
	// TopK changes the served patterns, so it must fork the key.
	topk, err := ColocateCacheKey("d", colocation.Config{Distance: 1, MinPI: 0.5, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if topk == colocKey {
		t.Fatalf("topK config shares key %q with the unbounded config", topk)
	}
}

// TestColocateCacheKeyIgnoresEngine: the Engine knob selects a
// strategy, not a result, so every engine spelling of one config maps
// to a single cache entry.
func TestColocateCacheKeyIgnoresEngine(t *testing.T) {
	base, err := ColocateCacheKey("d", colocation.Config{Distance: 1, MinPI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []colocation.Engine{colocation.EngineClique, colocation.EngineJoinless} {
		key, err := ColocateCacheKey("d", colocation.Config{Distance: 1, MinPI: 0.5, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if key != base {
			t.Fatalf("engine %q forked the cache key: %q vs %q", eng, key, base)
		}
	}
}

// TestColocateEngineSharesCacheEntry: end to end, a clique request
// followed by a joinless request of the same config is one engine run
// and one cache entry — the second POST is a counter-verified cache
// hit with an identical body.
func TestColocateEngineSharesCacheEntry(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	info := uploadSampleScene(t, ts.Client(), ts.URL+"/v1")

	cfg := colocation.Config{Distance: 3, MinPI: 0.2, Engine: colocation.EngineClique}
	var first api.MineResponse
	status, raw := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate", colocateBody(t, info.Digest, cfg), &first)
	if status != http.StatusOK {
		t.Fatalf("clique colocate: %d %s", status, raw)
	}
	runs := s.trace.Counter("server.colocate.runs")

	cfg.Engine = colocation.EngineJoinless
	var second api.MineResponse
	status, raw = doJSON(t, ts.Client(), "POST", ts.URL+"/v1/colocate", colocateBody(t, info.Digest, cfg), &second)
	if status != http.StatusOK {
		t.Fatalf("joinless colocate: %d %s", status, raw)
	}
	if !second.Cached {
		t.Fatalf("joinless request after clique run not served from cache: %s", raw)
	}
	if got := s.trace.Counter("server.colocate.runs"); got != runs {
		t.Fatalf("engine switch re-ran the miner: runs %d -> %d", runs, got)
	}
	second.Cached = false
	if !reflect.DeepEqual(second, first) {
		t.Fatalf("engines served different bodies:\n clique %+v\njoinless %+v", first, second)
	}
}
