package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// blockingRun returns a run function that signals started, then blocks
// until its context is cancelled (returning ctx.Err()) or release is
// closed (returning an empty response).
func blockingRun(started chan<- string, release <-chan struct{}) func(context.Context, MineRequest) (*MineResponse, error) {
	return func(ctx context.Context, req MineRequest) (*MineResponse, error) {
		if started != nil {
			started <- req.Dataset
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &MineResponse{Dataset: req.Dataset}, nil
		}
	}
}

func waitState(t *testing.T, m *JobManager, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := m.Status(j); st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", j.id, m.Status(j).State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	m := NewJobManager(context.Background(), 1, 4, blockingRun(started, release))
	defer m.Shutdown(context.Background())

	j, err := m.Submit(MineRequest{Dataset: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waitState(t, m, j, JobRunning)
	close(release)
	<-j.Done()
	st := m.Status(j)
	if st.State != JobDone || st.Result == nil || st.Result.Dataset != "d1" {
		t.Fatalf("status = %+v", st)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Error("timestamps missing on a finished job")
	}
	if s := m.Stats(); s.Done != 1 || s.Submitted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestJobCancelRunning(t *testing.T) {
	started := make(chan string, 1)
	m := NewJobManager(context.Background(), 1, 4, blockingRun(started, nil))
	defer m.Shutdown(context.Background())

	j, err := m.Submit(MineRequest{Dataset: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waitState(t, m, j, JobRunning)
	if _, ok := m.Cancel(j.id); !ok {
		t.Fatal("cancel of a known job failed")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job did not finish promptly")
	}
	if st := m.Status(j); st.State != JobCancelled {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
	if _, ok := m.Cancel("j99999999"); ok {
		t.Error("cancel of an unknown job must report false")
	}
	// Cancelling a terminal job is a no-op.
	if state, ok := m.Cancel(j.id); !ok || state != JobCancelled {
		t.Errorf("re-cancel = %q/%v", state, ok)
	}
}

func TestJobCancelQueued(t *testing.T) {
	started := make(chan string, 1)
	m := NewJobManager(context.Background(), 1, 4, blockingRun(started, nil))
	defer m.Shutdown(context.Background())

	// Fill the single worker, then queue a second job.
	j1, err := m.Submit(MineRequest{Dataset: "running"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := m.Submit(MineRequest{Dataset: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Status(j2); st.State != JobQueued {
		t.Fatalf("second job state = %q, want queued", st.State)
	}
	if _, ok := m.Cancel(j2.id); !ok {
		t.Fatal("cancel queued job failed")
	}
	<-j2.Done()
	if st := m.Status(j2); st.State != JobCancelled {
		t.Fatalf("queued job state = %q, want cancelled", st.State)
	}
	// The worker must skip the cancelled job entirely: cancel j1 and
	// confirm the run function was never invoked for j2.
	m.Cancel(j1.id)
	<-j1.Done()
	select {
	case ds := <-started:
		t.Fatalf("cancelled queued job ran anyway (%q)", ds)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestJobQueueFullAndDraining(t *testing.T) {
	started := make(chan string, 1)
	m := NewJobManager(context.Background(), 1, 1, blockingRun(started, nil))

	if _, err := m.Submit(MineRequest{Dataset: "a"}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy
	if _, err := m.Submit(MineRequest{Dataset: "b"}); err != nil {
		t.Fatal(err) // fills the queue
	}
	if _, err := m.Submit(MineRequest{Dataset: "c"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}

	// Shutdown with an immediate deadline cancels the running job and
	// the queued one, and Submit starts failing with ErrDraining.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired-deadline shutdown err = %v", err)
	}
	if _, err := m.Submit(MineRequest{Dataset: "d"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-shutdown submit err = %v, want ErrDraining", err)
	}
	st := m.Stats()
	if st.Cancelled != 2 || st.Running != 0 || st.Queued != 0 {
		t.Errorf("post-shutdown stats = %+v, want 2 cancelled and nothing live", st)
	}
}

func TestJobShutdownDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	var runs atomic.Int64
	m := NewJobManager(context.Background(), 1, 4, func(ctx context.Context, req MineRequest) (*MineResponse, error) {
		runs.Add(1)
		return blockingRun(started, release)(ctx, req)
	})
	j, err := m.Submit(MineRequest{Dataset: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	// The in-flight job is allowed to finish within the deadline.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("drain within deadline must return nil, got %v", err)
	}
	if st := m.Status(j); st.State != JobDone {
		t.Fatalf("drained job state = %q, want done", st.State)
	}
	if runs.Load() != 1 {
		t.Errorf("run invoked %d times", runs.Load())
	}
	// A second Shutdown is a no-op.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
