package server

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"

	"repro/api"
	"repro/internal/dataset"
)

// DatasetKind discriminates the two upload formats.
type DatasetKind = api.DatasetKind

// Dataset kinds.
const (
	// KindScene is a WKT-JSON geographic scene (mined via extraction).
	KindScene = api.KindScene
	// KindTable is a transaction-table CSV (mined directly).
	KindTable = api.KindTable
)

// StoredDataset is one uploaded dataset, content-addressed by the
// SHA-256 digest of the uploaded bytes. Exactly one of Scene/Table is
// non-nil, matching Kind. The parsed value is immutable once stored.
type StoredDataset struct {
	// Digest is the lowercase hex SHA-256 of the upload body.
	Digest string
	// Kind says which field below is populated.
	Kind DatasetKind
	// Scene is the parsed geographic dataset (KindScene).
	Scene *dataset.Dataset
	// Table is the parsed transaction table (KindTable).
	Table *dataset.Table
	// Bytes is the size of the uploaded body (the LRU accounting unit).
	Bytes int64
	// Rows counts reference features (scene) or transactions (table).
	Rows int
}

// Digest returns the content address of an upload body.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Store holds uploaded datasets in memory, content-addressed, with LRU
// eviction under an entry cap and a byte cap. Re-uploading identical
// bytes is idempotent and refreshes recency. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	lru       *lru[string, *StoredDataset]
	evictions int64
}

// NewStore returns a Store with the given caps (0 = unlimited).
func NewStore(maxEntries int, maxBytes int64) *Store {
	return &Store{lru: newLRU[string, *StoredDataset](maxEntries, maxBytes)}
}

// PutScene stores a parsed scene under the digest of its upload body.
func (s *Store) PutScene(body []byte, d *dataset.Dataset) *StoredDataset {
	return s.put(&StoredDataset{
		Digest: Digest(body),
		Kind:   KindScene,
		Scene:  d,
		Bytes:  int64(len(body)),
		Rows:   d.Reference.Len(),
	})
}

// PutTable stores a parsed transaction table under the digest of its
// upload body.
func (s *Store) PutTable(body []byte, t *dataset.Table) *StoredDataset {
	return s.put(&StoredDataset{
		Digest: Digest(body),
		Kind:   KindTable,
		Table:  t,
		Bytes:  int64(len(body)),
		Rows:   t.Len(),
	})
}

func (s *Store) put(sd *StoredDataset) *StoredDataset {
	s.mu.Lock()
	s.evictions += int64(s.lru.put(sd.Digest, sd, sd.Bytes))
	s.mu.Unlock()
	return sd
}

// Get returns the dataset stored under digest, refreshing its recency.
func (s *Store) Get(digest string) (*StoredDataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.get(digest)
}

// List snapshots every stored dataset's metadata, ordered by digest so
// the listing is deterministic (and mergeable across cluster nodes).
// Listing does not touch recency.
func (s *Store) List() []*StoredDataset {
	s.mu.Lock()
	keys := s.lru.keys()
	out := make([]*StoredDataset, 0, len(keys))
	for _, k := range keys {
		if el, ok := s.lru.items[k]; ok {
			out = append(out, el.Value.(*lruEntry[string, *StoredDataset]).val)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Delete removes the dataset stored under digest, reporting whether it
// was present. Callers are responsible for invalidating any results
// derived from it.
func (s *Store) Delete(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.remove(digest)
}

// StoreStats is the store's /metrics snapshot.
type StoreStats = api.StoreStats

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Entries: s.lru.len(), Bytes: s.lru.size(), Evictions: s.evictions}
}
