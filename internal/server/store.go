package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/api"
	"repro/internal/dataset"
)

// DatasetKind discriminates the two upload formats.
type DatasetKind = api.DatasetKind

// Dataset kinds.
const (
	// KindScene is a WKT-JSON geographic scene (mined via extraction).
	KindScene = api.KindScene
	// KindTable is a transaction-table CSV (mined directly).
	KindTable = api.KindTable
)

// StoredDataset is one uploaded dataset, content-addressed by the
// SHA-256 digest of the uploaded bytes. Exactly one of Scene/Table is
// non-nil, matching Kind. The parsed value is immutable once stored.
type StoredDataset struct {
	// Digest is the lowercase hex SHA-256 of the upload body.
	Digest string
	// Kind says which field below is populated.
	Kind DatasetKind
	// Scene is the parsed geographic dataset (KindScene).
	Scene *dataset.Dataset
	// Table is the parsed transaction table (KindTable).
	Table *dataset.Table
	// Bytes is the size of the uploaded body (the LRU accounting unit).
	Bytes int64
	// Rows counts reference features (scene) or transactions (table).
	Rows int
}

// Digest returns the content address of an upload body.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Store holds uploaded datasets in memory, content-addressed, with LRU
// eviction under an entry cap and a byte cap. Re-uploading identical
// bytes is idempotent and refreshes recency. With a DatasetPersistence
// attached, uploads write through to disk and a memory miss lazily
// re-parses the persisted bytes, so the LRU becomes a cache over a
// durable tier instead of the only copy. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	lru       *lru[string, *StoredDataset]
	evictions int64
	persist   DatasetPersistence     // nil = memory-only
	onEvict   func(digests []string) // called outside mu with LRU-evicted digests
}

// NewStore returns a Store with the given caps (0 = unlimited).
func NewStore(maxEntries int, maxBytes int64) *Store {
	return &Store{lru: newLRU[string, *StoredDataset](maxEntries, maxBytes)}
}

// Persist attaches the durable tier. Set before serving traffic.
func (s *Store) Persist(p DatasetPersistence) { s.persist = p }

// OnEvict registers a callback receiving the digests the LRU evicted
// (capacity pressure only — Delete is the caller's own act). The
// server wires it to result-cache and delta-manager invalidation so an
// evicted dataset cannot pin derived state. Set before serving
// traffic; the callback runs without the store lock held.
func (s *Store) OnEvict(fn func(digests []string)) { s.onEvict = fn }

// PutScene stores a parsed scene under the digest of its upload body.
func (s *Store) PutScene(body []byte, d *dataset.Dataset) (*StoredDataset, error) {
	return s.put(body, &StoredDataset{
		Digest: Digest(body),
		Kind:   KindScene,
		Scene:  d,
		Bytes:  int64(len(body)),
		Rows:   d.Reference.Len(),
	})
}

// PutTable stores a parsed transaction table under the digest of its
// upload body.
func (s *Store) PutTable(body []byte, t *dataset.Table) (*StoredDataset, error) {
	return s.put(body, &StoredDataset{
		Digest: Digest(body),
		Kind:   KindTable,
		Table:  t,
		Bytes:  int64(len(body)),
		Rows:   t.Len(),
	})
}

func (s *Store) put(body []byte, sd *StoredDataset) (*StoredDataset, error) {
	if s.persist != nil {
		// Write-through before the memory insert: an acknowledged upload
		// is on disk, or the client hears about the failure.
		if err := s.persist.SaveDataset(sd.Digest, body, sd.Kind, sd.Rows); err != nil {
			return nil, err
		}
	}
	s.insert(sd)
	return sd, nil
}

// insert places sd in the LRU and dispatches eviction notifications.
func (s *Store) insert(sd *StoredDataset) {
	s.mu.Lock()
	evicted := s.lru.put(sd.Digest, sd, sd.Bytes)
	s.evictions += int64(len(evicted))
	s.mu.Unlock()
	if len(evicted) > 0 && s.onEvict != nil {
		s.onEvict(evicted)
	}
}

// Get returns the dataset stored under digest, refreshing its recency.
// On a memory miss with a durable tier attached, the persisted bytes
// are re-parsed and re-admitted to the LRU, so datasets survive both
// restarts and capacity evictions.
func (s *Store) Get(digest string) (*StoredDataset, bool) {
	s.mu.Lock()
	if sd, ok := s.lru.get(digest); ok {
		s.mu.Unlock()
		return sd, true
	}
	s.mu.Unlock()
	if s.persist == nil {
		return nil, false
	}
	sd, err := s.reload(digest)
	if err != nil {
		return nil, false
	}
	s.insert(sd)
	return sd, true
}

// reload re-parses a persisted upload body (outside the store lock —
// parsing a large scene must not stall unrelated requests).
func (s *Store) reload(digest string) (*StoredDataset, error) {
	body, kind, _, err := s.persist.LoadDataset(digest)
	if err != nil {
		return nil, err
	}
	sd := &StoredDataset{Digest: digest, Kind: kind, Bytes: int64(len(body))}
	switch kind {
	case KindScene:
		d, err := dataset.ReadJSON(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("server: re-parsing persisted scene %s: %w", digest, err)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("server: re-validating persisted scene %s: %w", digest, err)
		}
		sd.Scene, sd.Rows = d, d.Reference.Len()
	case KindTable:
		t, err := dataset.ReadTableCSV(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("server: re-parsing persisted table %s: %w", digest, err)
		}
		sd.Table, sd.Rows = t, t.Len()
	default:
		return nil, fmt.Errorf("server: persisted dataset %s has unknown kind %q", digest, kind)
	}
	return sd, nil
}

// List snapshots every stored dataset's metadata, ordered by digest so
// the listing is deterministic (and mergeable across cluster nodes).
// Listing does not touch recency, and with a durable tier it includes
// datasets currently evicted from memory (metadata from the sidecar,
// no re-parse).
func (s *Store) List() []*StoredDataset {
	s.mu.Lock()
	keys := s.lru.keys()
	out := make([]*StoredDataset, 0, len(keys))
	for _, k := range keys {
		if sd, ok := s.lru.peek(k); ok {
			out = append(out, sd)
		}
	}
	s.mu.Unlock()
	if s.persist != nil {
		inMemory := make(map[string]bool, len(out))
		for _, sd := range out {
			inMemory[sd.Digest] = true
		}
		for _, info := range s.persist.ListDatasets() {
			if !inMemory[info.Digest] {
				out = append(out, &StoredDataset{Digest: info.Digest, Kind: info.Kind, Rows: info.Rows, Bytes: info.Bytes})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Delete removes the dataset stored under digest — from memory and the
// durable tier — reporting whether it was present in either. Callers
// are responsible for invalidating any results derived from it.
func (s *Store) Delete(digest string) bool {
	s.mu.Lock()
	ok := s.lru.remove(digest)
	s.mu.Unlock()
	if s.persist != nil && s.persist.DeleteDataset(digest) {
		ok = true
	}
	return ok
}

// StoreStats is the store's /metrics snapshot.
type StoreStats = api.StoreStats

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Entries: s.lru.len(), Bytes: s.lru.size(), Evictions: s.evictions}
}
