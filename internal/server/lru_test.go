package server

import (
	"reflect"
	"testing"
)

func TestLRUPutReportsEvictedOldestFirst(t *testing.T) {
	l := newLRU[string, int](2, 0)
	if ev := l.put("a", 1, 0); ev != nil {
		t.Fatalf("under cap evicted %v", ev)
	}
	l.put("b", 2, 0)
	if ev := l.put("c", 3, 0); !reflect.DeepEqual(ev, []string{"a"}) {
		t.Errorf("evicted %v, want [a]", ev)
	}
	// A byte cap can push several entries out of one insert; they report
	// oldest first so owners invalidate in eviction order.
	l2 := newLRU[string, int](0, 10)
	l2.put("a", 1, 4)
	l2.put("b", 2, 4)
	if ev := l2.put("c", 3, 9); !reflect.DeepEqual(ev, []string{"a", "b"}) {
		t.Errorf("evicted %v, want [a b]", ev)
	}
}

// TestLRUPeekDoesNotTouchRecency pins the Store.List fix: enumerating
// entries must not perturb the eviction order the way get would.
func TestLRUPeekDoesNotTouchRecency(t *testing.T) {
	l := newLRU[string, int](2, 0)
	l.put("old", 1, 0)
	l.put("new", 2, 0)
	if v, ok := l.peek("old"); !ok || v != 1 {
		t.Fatalf("peek(old) = %d, %v", v, ok)
	}
	// Had peek refreshed "old", this insert would evict "new" instead.
	if ev := l.put("next", 3, 0); !reflect.DeepEqual(ev, []string{"old"}) {
		t.Errorf("after peek, evicted %v, want [old] (peek must not refresh)", ev)
	}
	if _, ok := l.peek("missing"); ok {
		t.Error("peek invented a value")
	}
}

// TestLRURefreshOverByteCapEvictsOldestNotRefreshed is the regression
// test for re-upload growth: refreshing an existing key with a larger
// size that pushes the cache over its byte cap must evict the oldest
// entries — never the key just refreshed, even when it is alone.
func TestLRURefreshOverByteCapEvictsOldestNotRefreshed(t *testing.T) {
	l := newLRU[string, int](0, 10)
	l.put("a", 1, 4)
	l.put("b", 2, 4)
	// Refresh "b" to a size that overflows the cap: "a" goes, "b" stays.
	if ev := l.put("b", 22, 8); !reflect.DeepEqual(ev, []string{"a"}) {
		t.Fatalf("refresh evicted %v, want [a]", ev)
	}
	if v, ok := l.peek("b"); !ok || v != 22 {
		t.Fatalf("refreshed entry = %d, %v — evicted or stale", v, ok)
	}
	if l.size() != 8 {
		t.Errorf("accounted bytes = %d, want 8", l.size())
	}
	// Even a lone entry larger than the whole cap is kept (the caller
	// enforces per-upload limits); it must not evict itself.
	if ev := l.put("b", 23, 99); ev != nil {
		t.Errorf("lone oversized refresh evicted %v", ev)
	}
	if _, ok := l.peek("b"); !ok {
		t.Error("oversized refresh evicted the refreshed key itself")
	}
}
