package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/api"
	"repro/internal/server/persist"
)

// JobState is the lifecycle state of an async mining job.
type JobState = api.JobState

// Job states. Queued and running jobs are live; the other states are
// terminal.
const (
	JobQueued    = api.JobQueued
	JobRunning   = api.JobRunning
	JobDone      = api.JobDone
	JobFailed    = api.JobFailed
	JobCancelled = api.JobCancelled
)

// Job manager submission errors; handlers map them to 503.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server: draining, not accepting new jobs")
	// ErrQueueFull rejects submissions when the bounded queue is at
	// capacity.
	ErrQueueFull = errors.New("server: job queue full")
)

// Job is one async mining run. Fields are guarded by the manager's
// lock; Status returns consistent snapshots.
type Job struct {
	id       string
	req      MineRequest
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	result   *MineResponse
	err      error
	cancel   context.CancelFunc // non-nil while running
	userStop bool               // DELETE /jobs/{id} was called
	lost     bool               // failed because a crash interrupted it
	done     chan struct{}      // closed on reaching a terminal state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the wire form of a job (GET /v1/jobs/{id}).
type JobStatus = api.JobStatus

// JobManager runs submitted mining jobs on a bounded worker pool fed by
// a bounded submission queue. Jobs are cancellable while queued or
// running; Shutdown drains in-flight work under a caller deadline.
// With a JobJournal attached (Recover), every state transition is
// appended to the write-ahead journal — fsynced before the transition
// is acknowledged — so a crashed process's successor can replay it.
type JobManager struct {
	run     func(context.Context, MineRequest) (*MineResponse, error)
	baseCtx context.Context
	queue   chan *Job
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	idPrefix string // random per-process prefix: IDs stay unique across a cluster
	nextID   uint64
	closed   bool
	counts   map[JobState]int64 // terminal-state tallies + submissions
	submits  int64
	journal  JobJournal // nil = no durability
	// Replay tallies (merged into the /metrics persist block).
	recovered, lostJobs int64
}

// NewJobManager starts workers goroutines pulling from a queue of
// capacity queueCap. run executes one job under its context; baseCtx
// parents every job context, so cancelling it stops all jobs.
func NewJobManager(baseCtx context.Context, workers, queueCap int, run func(context.Context, MineRequest) (*MineResponse, error)) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	m := &JobManager{
		run:      run,
		baseCtx:  baseCtx,
		queue:    make(chan *Job, queueCap),
		jobs:     make(map[string]*Job),
		idPrefix: newRequestID()[:6],
		counts:   make(map[JobState]int64),
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues a job and returns it (state queued). It fails with
// ErrDraining after Shutdown began and ErrQueueFull when the bounded
// queue is at capacity.
func (m *JobManager) Submit(req MineRequest) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.nextID++
	j := &Job{
		id:      fmt.Sprintf("j%s-%08d", m.idPrefix, m.nextID),
		req:     req,
		state:   JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.submits++
	// Journal before acknowledging: once the caller sees the 202, the
	// submission is on disk (fsynced) and survives a crash.
	m.appendLocked(persist.JobRecord{Type: persist.RecSubmitted, ID: j.id, Time: j.created, Req: &j.req})
	m.mu.Unlock()
	return j, nil
}

// appendLocked writes one journal record; the journal itself counts
// write failures (durability degrades, service stays up). Callers hold
// m.mu, which totally orders records with state transitions.
func (m *JobManager) appendLocked(rec persist.JobRecord) {
	if m.journal == nil {
		return
	}
	_ = m.journal.AppendJob(rec)
}

// Get returns the job with the given ID.
func (m *JobManager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: a queued job is finished as
// cancelled immediately, a running job has its context cancelled (the
// mining walk observes it mid-DFS and returns promptly). Cancelling a
// job already in a terminal state is a no-op. The second return is
// false when no job has this ID.
func (m *JobManager) Cancel(id string) (JobState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", false
	}
	switch j.state {
	case JobQueued:
		j.userStop = true
		m.finishLocked(j, JobCancelled, nil, context.Canceled)
	case JobRunning:
		j.userStop = true
		j.cancel()
	}
	return j.state, true
}

// Status snapshots a job for the wire.
func (m *JobManager) Status(j *Job) JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Dataset:   j.req.Dataset,
		CreatedAt: j.created,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	st.Lost = j.lost
	return st
}

// JobStats is the manager's /metrics snapshot.
type JobStats = api.JobStats

// Stats snapshots the job counters.
func (m *JobManager) Stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStats{
		Submitted: m.submits,
		Done:      m.counts[JobDone],
		Failed:    m.counts[JobFailed],
		Cancelled: m.counts[JobCancelled],
	}
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		}
	}
	return st
}

// Shutdown stops accepting submissions and drains the queue and running
// jobs. When ctx expires first, every live job is cancelled and the
// call waits only for the (prompt, context-aware) cancellations to
// land, returning ctx.Err(). Safe to call more than once.
func (m *JobManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: cancel everything still live. Workers then finish
	// promptly (the miners poll their context mid-DFS) and queued jobs
	// are skipped by the workers as already-terminal.
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			m.finishLocked(j, JobCancelled, nil, context.Canceled)
		case JobRunning:
			j.cancel()
		}
	}
	m.mu.Unlock()
	<-drained
	return ctx.Err()
}

// worker pulls jobs off the queue until it is closed and drained.
func (m *JobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job under a cancellable per-job context.
func (m *JobManager) runJob(j *Job) {
	m.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	m.appendLocked(persist.JobRecord{Type: persist.RecStarted, ID: j.id, Time: j.started})
	m.mu.Unlock()
	defer cancel()

	res, err := m.run(ctx, j.req)

	m.mu.Lock()
	state := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state = JobCancelled
	default:
		state = JobFailed
	}
	m.finishLocked(j, state, res, err)
	m.mu.Unlock()
}

// finishLocked moves a job to a terminal state. Callers hold m.mu.
func (m *JobManager) finishLocked(j *Job, state JobState, res *MineResponse, err error) {
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.err = err
	j.cancel = nil
	m.counts[state]++
	rec := persist.JobRecord{Type: persist.RecFinished, ID: j.id, Time: j.finished, State: state, Lost: j.lost}
	if state == JobCancelled {
		rec = persist.JobRecord{Type: persist.RecCancelled, ID: j.id, Time: j.finished}
	} else if err != nil {
		rec.Error = err.Error()
	}
	m.appendLocked(rec)
	close(j.done)
}

// RecoveryStats reports the startup journal-replay tallies: jobs
// re-enqueued and jobs marked lost.
func (m *JobManager) RecoveryStats() (recovered, lost int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered, m.lostJobs
}

// maxTerminalHistory bounds how many terminal jobs a journal
// compaction carries across a restart, so job status survives exactly
// as long as it is useful without the journal growing unboundedly.
const maxTerminalHistory = 1024

// Recover attaches the write-ahead journal and replays it: jobs that
// were submitted but never started are re-enqueued under their
// original IDs; jobs the journal shows in flight when the process died
// are marked failed with a lost: true detail (their partial work is
// unrecoverable, but the ID stays pollable); terminal jobs keep their
// recorded state (without results — those live in the result cache,
// verified by digest chain). The journal is then compacted to exactly
// the retained records. Call once, before serving traffic.
func (m *JobManager) Recover(journal JobJournal) error {
	recs, err := journal.ReplayJobs()
	if err != nil {
		m.mu.Lock()
		m.journal = journal
		m.mu.Unlock()
		return err
	}
	// Fold the append-ordered records by job ID.
	type agg struct{ sub, started, fin *persist.JobRecord }
	byID := make(map[string]*agg, len(recs))
	var order []string
	for i := range recs {
		rec := &recs[i]
		a := byID[rec.ID]
		if a == nil {
			a = &agg{}
			byID[rec.ID] = a
			order = append(order, rec.ID)
		}
		switch rec.Type {
		case persist.RecSubmitted:
			a.sub = rec
		case persist.RecStarted:
			a.started = rec
		case persist.RecFinished:
			a.fin = rec
		case persist.RecCancelled:
			fin := *rec
			fin.Type = persist.RecFinished
			fin.State = JobCancelled
			a.fin = &fin
		}
	}
	var terminal, requeue []*agg
	for _, id := range order {
		a := byID[id]
		if a.sub == nil || a.sub.Req == nil {
			continue // torn or foreign records without a submission
		}
		switch {
		case a.fin != nil:
			terminal = append(terminal, a)
		case a.started != nil:
			// In flight at the crash: synthesise the terminal record the
			// process never got to write.
			a.fin = &persist.JobRecord{
				Type: persist.RecFinished, ID: id, Time: time.Now(),
				State: JobFailed, Error: lostError.Error(), Lost: true,
			}
			terminal = append(terminal, a)
		default:
			requeue = append(requeue, a)
		}
	}
	if len(terminal) > maxTerminalHistory {
		terminal = terminal[len(terminal)-maxTerminalHistory:]
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	keep := make([]persist.JobRecord, 0, 3*len(terminal)+len(requeue))
	for _, a := range terminal {
		j := &Job{
			id:       a.sub.ID,
			req:      *a.sub.Req,
			state:    a.fin.State,
			created:  a.sub.Time,
			finished: a.fin.Time,
			lost:     a.fin.Lost,
			done:     closedChan(),
		}
		if a.started != nil {
			j.started = a.started.Time
		}
		if a.fin.Error != "" {
			j.err = errors.New(a.fin.Error)
		} else if a.fin.State == JobCancelled {
			j.err = context.Canceled
		}
		m.jobs[j.id] = j
		m.counts[j.state]++
		if j.lost {
			m.lostJobs++
		}
		keep = append(keep, *a.sub)
		if a.started != nil {
			keep = append(keep, *a.started)
		}
		keep = append(keep, *a.fin)
	}
	// Queued-at-crash jobs re-enter the queue under their original IDs;
	// their submitted records go into the compacted journal (re-pushing
	// is not a new submission).
	var overflow []*Job
	for _, a := range requeue {
		j := &Job{id: a.sub.ID, req: *a.sub.Req, state: JobQueued, created: a.sub.Time, done: make(chan struct{})}
		m.jobs[j.id] = j
		select {
		case m.queue <- j:
			m.submits++
			m.recovered++
			keep = append(keep, *a.sub)
		default:
			// No capacity left for this one: report it lost rather than
			// let it vanish. Its terminal record lands after compaction.
			overflow = append(overflow, j)
		}
	}
	if err := journal.CompactJobs(keep); err != nil {
		// Keep appending to the uncompacted journal: replay stays
		// correct, merely longer.
		err = fmt.Errorf("server: compacting job journal: %w", err)
		m.journal = journal
		for _, j := range overflow {
			j.lost = true
			m.lostJobs++
			m.finishLocked(j, JobFailed, nil, errors.New("server: job queue full during crash recovery"))
		}
		return err
	}
	m.journal = journal
	for _, j := range overflow {
		j.lost = true
		m.lostJobs++
		m.finishLocked(j, JobFailed, nil, errors.New("server: job queue full during crash recovery"))
	}
	return nil
}

// lostError is the error a lost job reports after a crash recovery.
var lostError = errors.New("server: job lost — the server restarted while it was in flight")

// closedChan returns an already-closed done channel for jobs recovered
// directly into a terminal state.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
