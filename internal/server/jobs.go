package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/api"
)

// JobState is the lifecycle state of an async mining job.
type JobState = api.JobState

// Job states. Queued and running jobs are live; the other states are
// terminal.
const (
	JobQueued    = api.JobQueued
	JobRunning   = api.JobRunning
	JobDone      = api.JobDone
	JobFailed    = api.JobFailed
	JobCancelled = api.JobCancelled
)

// Job manager submission errors; handlers map them to 503.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server: draining, not accepting new jobs")
	// ErrQueueFull rejects submissions when the bounded queue is at
	// capacity.
	ErrQueueFull = errors.New("server: job queue full")
)

// Job is one async mining run. Fields are guarded by the manager's
// lock; Status returns consistent snapshots.
type Job struct {
	id       string
	req      MineRequest
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	result   *MineResponse
	err      error
	cancel   context.CancelFunc // non-nil while running
	userStop bool               // DELETE /jobs/{id} was called
	done     chan struct{}      // closed on reaching a terminal state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the wire form of a job (GET /v1/jobs/{id}).
type JobStatus = api.JobStatus

// JobManager runs submitted mining jobs on a bounded worker pool fed by
// a bounded submission queue. Jobs are cancellable while queued or
// running; Shutdown drains in-flight work under a caller deadline.
type JobManager struct {
	run     func(context.Context, MineRequest) (*MineResponse, error)
	baseCtx context.Context
	queue   chan *Job
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	idPrefix string // random per-process prefix: IDs stay unique across a cluster
	nextID   uint64
	closed   bool
	counts   map[JobState]int64 // terminal-state tallies + submissions
	submits  int64
}

// NewJobManager starts workers goroutines pulling from a queue of
// capacity queueCap. run executes one job under its context; baseCtx
// parents every job context, so cancelling it stops all jobs.
func NewJobManager(baseCtx context.Context, workers, queueCap int, run func(context.Context, MineRequest) (*MineResponse, error)) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	m := &JobManager{
		run:      run,
		baseCtx:  baseCtx,
		queue:    make(chan *Job, queueCap),
		jobs:     make(map[string]*Job),
		idPrefix: newRequestID()[:6],
		counts:   make(map[JobState]int64),
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues a job and returns it (state queued). It fails with
// ErrDraining after Shutdown began and ErrQueueFull when the bounded
// queue is at capacity.
func (m *JobManager) Submit(req MineRequest) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.nextID++
	j := &Job{
		id:      fmt.Sprintf("j%s-%08d", m.idPrefix, m.nextID),
		req:     req,
		state:   JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.submits++
	m.mu.Unlock()
	return j, nil
}

// Get returns the job with the given ID.
func (m *JobManager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: a queued job is finished as
// cancelled immediately, a running job has its context cancelled (the
// mining walk observes it mid-DFS and returns promptly). Cancelling a
// job already in a terminal state is a no-op. The second return is
// false when no job has this ID.
func (m *JobManager) Cancel(id string) (JobState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", false
	}
	switch j.state {
	case JobQueued:
		j.userStop = true
		m.finishLocked(j, JobCancelled, nil, context.Canceled)
	case JobRunning:
		j.userStop = true
		j.cancel()
	}
	return j.state, true
}

// Status snapshots a job for the wire.
func (m *JobManager) Status(j *Job) JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Dataset:   j.req.Dataset,
		CreatedAt: j.created,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// JobStats is the manager's /metrics snapshot.
type JobStats = api.JobStats

// Stats snapshots the job counters.
func (m *JobManager) Stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStats{
		Submitted: m.submits,
		Done:      m.counts[JobDone],
		Failed:    m.counts[JobFailed],
		Cancelled: m.counts[JobCancelled],
	}
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		}
	}
	return st
}

// Shutdown stops accepting submissions and drains the queue and running
// jobs. When ctx expires first, every live job is cancelled and the
// call waits only for the (prompt, context-aware) cancellations to
// land, returning ctx.Err(). Safe to call more than once.
func (m *JobManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: cancel everything still live. Workers then finish
	// promptly (the miners poll their context mid-DFS) and queued jobs
	// are skipped by the workers as already-terminal.
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			m.finishLocked(j, JobCancelled, nil, context.Canceled)
		case JobRunning:
			j.cancel()
		}
	}
	m.mu.Unlock()
	<-drained
	return ctx.Err()
}

// worker pulls jobs off the queue until it is closed and drained.
func (m *JobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job under a cancellable per-job context.
func (m *JobManager) runJob(j *Job) {
	m.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	m.mu.Unlock()
	defer cancel()

	res, err := m.run(ctx, j.req)

	m.mu.Lock()
	state := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state = JobCancelled
	default:
		state = JobFailed
	}
	m.finishLocked(j, state, res, err)
	m.mu.Unlock()
}

// finishLocked moves a job to a terminal state. Callers hold m.mu.
func (m *JobManager) finishLocked(j *Job, state JobState, res *MineResponse, err error) {
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.err = err
	j.cancel = nil
	m.counts[state]++
	close(j.done)
}
