package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/transact"
)

// DeltaManager tracks everything the delta pipeline can reuse across
// requests: dataset lineage (which digest was PATCHed into which, and
// the structured change set between them), incremental extraction
// states, and the (database, result) pairs behind cached mining
// responses. All three are small LRU side caches — losing an entry
// only costs a recompute, never correctness. Safe for concurrent use.
type DeltaManager struct {
	mu sync.Mutex
	// lineage maps a successor digest to its parent and change set.
	lineage *lru[string, *lineageRecord]
	// states holds incremental extraction states keyed by
	// digest + "|" + canonical extraction options. States are claimed
	// exclusively (get removes the entry) because Apply mutates them.
	states *lru[string, *transact.State]
	// mines holds the mining database and raw result behind a cached
	// response, keyed by the full result-cache key. Claimed exclusively
	// for the same reason.
	mines *lru[string, *mineEntry]
}

type lineageRecord struct {
	parent string
	cs     *dataset.ChangeSet
}

// mineEntry pairs a mining database with the result computed from it,
// in the database's own dictionary ID space.
type mineEntry struct {
	db  *itemset.DB
	res *mining.Result
}

func newDeltaManager() *DeltaManager {
	return &DeltaManager{
		lineage: newLRU[string, *lineageRecord](64, 0),
		states:  newLRU[string, *transact.State](8, 0),
		mines:   newLRU[string, *mineEntry](16, 0),
	}
}

// recordLineage remembers that child was derived from parent by cs.
// A no-op mutation batch can reproduce the parent byte-for-byte; such
// self-loops are not recorded.
func (m *DeltaManager) recordLineage(child, parent string, cs *dataset.ChangeSet) {
	if child == parent {
		return
	}
	m.mu.Lock()
	m.lineage.put(child, &lineageRecord{parent: parent, cs: cs}, 0)
	m.mu.Unlock()
}

// parentOf looks up a digest's recorded parent and change set.
func (m *DeltaManager) parentOf(digest string) (string, *dataset.ChangeSet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.lineage.get(digest)
	if !ok {
		return "", nil, false
	}
	return rec.parent, rec.cs, true
}

// claimState removes and returns the state under key (nil on miss).
// Exclusive claiming keeps concurrent mines from mutating one state.
func (m *DeltaManager) claimState(key string) *transact.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states.get(key)
	if !ok {
		return nil
	}
	m.states.remove(key)
	return st
}

// putState stores (or returns a claimed) state under key.
func (m *DeltaManager) putState(key string, st *transact.State) {
	m.mu.Lock()
	m.states.put(key, st, 0)
	m.mu.Unlock()
}

// claimMine removes and returns the mine entry under key (nil on miss).
func (m *DeltaManager) claimMine(key string) *mineEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	me, ok := m.mines.get(key)
	if !ok {
		return nil
	}
	m.mines.remove(key)
	return me
}

// putMine stores a mine entry under key.
func (m *DeltaManager) putMine(key string, me *mineEntry) {
	m.mu.Lock()
	m.mines.put(key, me, 0)
	m.mu.Unlock()
}

// forget drops everything keyed to digest: lineage records where it is
// child or parent, and its extraction states and mine entries (their
// keys are digest-prefixed, mirroring the result cache).
func (m *DeltaManager) forget(digest string) {
	prefix := digest + "|"
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, k := range m.lineage.keys() {
		if rec, ok := m.lineage.get(k); ok && (k == digest || rec.parent == digest) {
			m.lineage.remove(k)
		}
	}
	for _, k := range m.states.keys() {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			m.states.remove(k)
		}
	}
	for _, k := range m.mines.keys() {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			m.mines.remove(k)
		}
	}
}

// resolveExtraction mirrors core.RunContext's options defaulting.
func resolveExtraction(cfg core.Config) transact.Options {
	opts := cfg.Extraction
	if opts.IsZero() {
		opts = transact.DefaultOptions()
	}
	return opts
}

// deltaEligible reports whether a cached mining result for cfg can be
// patched forward by a row delta. Post-filters truncate the frequent
// set (making additive correction unsound) and rule generation depends
// on it, so both force the cold path. FP-growth is also excluded: its
// cold runs tally the pair-filter prunes during the projection
// recursion rather than over the k=2 pairs of frequent 1-items, so a
// patched result (whose tallies follow the Apriori/Eclat definition)
// could not reproduce its response byte-for-byte. Extraction-state
// reuse is unaffected by any of these.
func deltaEligible(cfg core.Config) bool {
	return cfg.PostFilter == core.NoPostFilter && !cfg.GenerateRules &&
		cfg.Algorithm != core.AlgFPGrowthKCPlus
}

// computeScene is the scene branch of a cache-miss mine: it reuses (or
// builds) the incremental extraction state for the dataset, and when
// the dataset is a recorded PATCH successor it re-extracts only the
// dirty region and patches the parent's cached mining result instead
// of mining from scratch. Falls back to the full pipeline whenever any
// reusable piece is missing — the response is identical either way.
func (s *Server) computeScene(ctx context.Context, ds *StoredDataset, key string, cfg core.Config) (*MineResponse, error) {
	opts := resolveExtraction(cfg)
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		// No stable state-cache key: run the plain pipeline.
		out, err := core.RunContext(ctx, ds.Scene, cfg)
		if err != nil {
			return nil, err
		}
		return buildResponse(ds.Digest, out, cfg), nil
	}
	suffix := "|" + string(optsJSON)
	tr := obs.FromContext(ctx)

	var st *transact.State
	var td *transact.TableDelta
	var parent string
	if st = s.deltas.claimState(ds.Digest + suffix); st != nil {
		tr.Add("delta.state.reused", 1)
	} else if p, cs, ok := s.deltas.parentOf(ds.Digest); ok {
		if pst := s.deltas.claimState(p + suffix); pst != nil {
			sp := tr.Stage("extract.delta")
			d, err := pst.Apply(ctx, ds.Scene, cs)
			sp.End()
			if err == nil {
				st, td, parent = pst, d, p
			} else {
				tr.Add("delta.apply.errors", 1)
			}
		}
	}
	if st == nil {
		sp := tr.Stage("extract")
		st, err = transact.NewStateContext(ctx, ds.Scene, opts)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: extraction: %w", err)
		}
	}
	// The state now represents this digest; park it for the next mine or
	// PATCH successor regardless of how mining below goes.
	defer s.deltas.putState(ds.Digest+suffix, st)

	table := st.Table()
	if td != nil && deltaEligible(cfg) {
		if pkey, err := CacheKey(parent, cfg); err == nil {
			if me := s.deltas.claimMine(pkey); me != nil {
				if resp, err := s.patchMine(ctx, ds, table, me, td, cfg, key); err == nil {
					return resp, nil
				}
				tr.Add("delta.patch.errors", 1)
			}
		}
	}

	out, err := core.RunTableContext(ctx, table, cfg)
	if err != nil {
		return nil, err
	}
	if deltaEligible(cfg) {
		s.deltas.putMine(key, &mineEntry{db: out.DB, res: out.Result})
	}
	return buildResponse(ds.Digest, out, cfg), nil
}

// patchMine advances a parent's (database, result) pair by a table
// delta: tidsets are bit-flipped in place for the changed rows, and the
// parent's frequent set is additively corrected plus a restricted walk
// over the changed items. The response is canonicalised to the order a
// cold mine of the successor would produce, so cached and delta-served
// responses are indistinguishable on the wire.
func (s *Server) patchMine(ctx context.Context, ds *StoredDataset, table *dataset.Table, me *mineEntry, td *transact.TableDelta, cfg core.Config, key string) (*MineResponse, error) {
	tr := obs.FromContext(ctx)
	mcfg, err := core.EffectiveMiningConfig(cfg)
	if err != nil {
		return nil, err
	}
	// Capture old row contents before the in-place patch replaces them.
	deltas := make([]mining.RowDelta, 0, len(td.Changed)+len(td.Deleted))
	edits := make([]itemset.RowEdit, 0, len(td.Changed))
	for _, c := range td.Changed {
		d := mining.RowDelta{New: internItems(me.db, c.New)}
		if old := td.NewFromOld[c.Row]; old >= 0 {
			d.Old = me.db.Rows[old]
		}
		deltas = append(deltas, d)
		edits = append(edits, itemset.RowEdit{Row: c.Row, Items: c.New})
	}
	for _, del := range td.Deleted {
		deltas = append(deltas, mining.RowDelta{Old: me.db.Rows[del.Row]})
	}
	ps := me.db.ApplyDelta(td.NewFromOld, edits)
	tr.Add("delta.tidsets.patched", int64(ps.TidsetsPatched))

	sp := tr.Stage("mine.delta")
	res, _, err := mining.PatchResultContext(ctx, me.db, me.res, mcfg, deltas)
	sp.End()
	if err != nil {
		return nil, err
	}
	tr.Add("delta.mine.patched", 1)
	me.res = res
	s.deltas.putMine(key, me)
	return canonicalResponse(ds.Digest, table, me.db.Dict, res, cfg), nil
}

// internItems interns a row's item names against db's dictionary.
func internItems(db *itemset.DB, items []string) itemset.Itemset {
	ids := make([]int32, len(items))
	for i, name := range items {
		ids[i] = db.Dict.Intern(name)
	}
	return itemset.NewItemset(ids...)
}

// canonicalResponse renders a result whose itemsets live in an older
// dictionary in the exact order a cold mine of table would produce:
// items ranked by first appearance in row order (a fresh dictionary's
// interning order), names within an itemset in rank order, itemsets by
// size then rank-vector. Every engine normalises to that order, so the
// wire form is independent of which dictionary the result was mined in.
func canonicalResponse(digest string, table *dataset.Table, dict *itemset.Dictionary, res *mining.Result, cfg core.Config) *MineResponse {
	rank := make(map[string]int)
	for _, tx := range table.Transactions {
		for _, it := range tx.Items {
			if _, ok := rank[it]; !ok {
				rank[it] = len(rank)
			}
		}
	}
	rankOf := func(name string) int {
		if r, ok := rank[name]; ok {
			return r
		}
		return 1 << 30 // unseen items (impossible for support >= 1) sort last
	}
	type ranked struct {
		names   []string
		ranks   []int
		support int
	}
	rows := make([]ranked, 0, len(res.Frequent))
	for _, f := range res.Frequent {
		names := append([]string{}, f.Items.Names(dict)...)
		sort.Slice(names, func(i, j int) bool {
			ri, rj := rankOf(names[i]), rankOf(names[j])
			if ri != rj {
				return ri < rj
			}
			return names[i] < names[j]
		})
		ranks := make([]int, len(names))
		for i, n := range names {
			ranks[i] = rankOf(n)
		}
		rows = append(rows, ranked{names: names, ranks: ranks, support: f.Support})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if len(a.ranks) != len(b.ranks) {
			return len(a.ranks) < len(b.ranks)
		}
		for k := range a.ranks {
			if a.ranks[k] != b.ranks[k] {
				return a.ranks[k] < b.ranks[k]
			}
		}
		return false
	})
	resp := &MineResponse{
		Algorithm:         cfg.Algorithm.String(),
		Dataset:           digest,
		Transactions:      res.NumTransactions,
		MinSupportCount:   res.MinSupportCount,
		PrunedDeps:        res.PrunedDeps,
		PrunedSameFeature: res.PrunedSameFeature,
		MiningMicros:      res.Duration.Microseconds(),
		Frequent:          make([]ItemsetResult, 0, len(rows)),
	}
	for _, r := range rows {
		resp.Frequent = append(resp.Frequent, ItemsetResult{Items: r.names, Support: r.support})
	}
	return resp
}
