package server

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// MineRequest is the body of POST /mine and POST /jobs: which stored
// dataset to mine and the full pipeline configuration. Config is
// core.Config's JSON form — algorithm, minSupport, dependencies,
// counting, parallelism, postFilter, rules, and (for scenes) the
// extraction options.
type MineRequest struct {
	// Dataset is the digest returned by a dataset upload.
	Dataset string `json:"dataset"`
	// Config is the pipeline configuration.
	Config core.Config `json:"config"`
	// TimeoutMillis bounds this request's wall time; 0 uses the server
	// default.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

// MineResponse is the mining result: the frequent itemsets (all sizes),
// optional association rules, and the run's headline numbers.
type MineResponse struct {
	Algorithm         string          `json:"algorithm"`
	Dataset           string          `json:"dataset"`
	Transactions      int             `json:"transactions"`
	MinSupportCount   int             `json:"minSupportCount"`
	PrunedDeps        int             `json:"prunedDependencies"`
	PrunedSameFeature int             `json:"prunedSameFeature"`
	MiningMicros      int64           `json:"miningMicros"`
	Frequent          []ItemsetResult `json:"frequent"`
	Rules             []RuleResult    `json:"rules,omitempty"`
	// Cached reports whether this response was served from the result
	// cache without re-mining.
	Cached bool `json:"cached,omitempty"`
}

// ItemsetResult is one frequent itemset with its absolute support.
type ItemsetResult struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

// RuleResult is one association rule.
type RuleResult struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift"`
}

// errUnknownDataset is returned (wrapped) when a request names a digest
// the store does not hold; handlers map it to 404.
type errUnknownDataset string

func (e errUnknownDataset) Error() string {
	return fmt.Sprintf("server: unknown dataset %q (upload it first)", string(e))
}

// mine resolves the request's dataset, consults the result cache, and
// otherwise runs the pipeline under ctx with the server's trace
// attached. Identical (dataset, canonical config) requests after the
// first are cache hits and never re-mine.
func (s *Server) mine(ctx context.Context, req MineRequest) (*MineResponse, error) {
	ds, ok := s.store.Get(req.Dataset)
	if !ok {
		return nil, errUnknownDataset(req.Dataset)
	}
	key, err := CacheKey(ds.Digest, req.Config)
	if err != nil {
		return nil, err
	}
	if resp, ok := s.cache.Get(key); ok {
		s.trace.Add("server.cache.hits", 1)
		return resp, nil
	}
	s.trace.Add("server.cache.misses", 1)
	if s.mineHook != nil {
		// Test seam: lets tests hold a "running" mine open deterministically.
		if err := s.mineHook(ctx); err != nil {
			return nil, err
		}
	}
	ctx = obs.WithTrace(ctx, s.trace)
	var out *core.Outcome
	if ds.Kind == KindScene {
		out, err = core.RunContext(ctx, ds.Scene, req.Config)
	} else {
		out, err = core.RunTableContext(ctx, ds.Table, req.Config)
	}
	if err != nil {
		return nil, err
	}
	resp := buildResponse(ds.Digest, out, req.Config)
	s.cache.Put(key, resp)
	return resp, nil
}

// buildResponse converts a pipeline outcome to the wire form.
func buildResponse(digest string, out *core.Outcome, cfg core.Config) *MineResponse {
	res := out.Result
	resp := &MineResponse{
		Algorithm:         cfg.Algorithm.String(),
		Dataset:           digest,
		Transactions:      res.NumTransactions,
		MinSupportCount:   res.MinSupportCount,
		PrunedDeps:        res.PrunedDeps,
		PrunedSameFeature: res.PrunedSameFeature,
		MiningMicros:      res.Duration.Microseconds(),
		Frequent:          make([]ItemsetResult, 0, len(res.Frequent)),
	}
	for _, f := range res.Frequent {
		resp.Frequent = append(resp.Frequent, ItemsetResult{Items: f.Items.Names(out.DB.Dict), Support: f.Support})
	}
	for _, r := range out.Rules {
		resp.Rules = append(resp.Rules, RuleResult{
			Antecedent: r.Antecedent.Names(out.DB.Dict),
			Consequent: r.Consequent.Names(out.DB.Dict),
			Support:    r.Support,
			Confidence: r.Confidence,
			Lift:       r.Lift,
		})
	}
	return resp
}
