package server

import (
	"context"
	"fmt"

	"repro/api"
	"repro/internal/core"
	"repro/internal/obs"
)

// The wire documents are defined once in repro/api (shared with the
// typed client and the multi-node proxy, so the surfaces cannot drift)
// and aliased here under their historical names.
type (
	// MineRequest is the body of POST /v1/mine and POST /v1/jobs.
	MineRequest = api.MineRequest
	// MineResponse is the mining result document.
	MineResponse = api.MineResponse
	// ItemsetResult is one frequent itemset with its absolute support.
	ItemsetResult = api.ItemsetResult
	// RuleResult is one association rule.
	RuleResult = api.RuleResult
)

// errUnknownDataset is returned (wrapped) when a request names a digest
// the store does not hold; handlers map it to 404.
type errUnknownDataset string

func (e errUnknownDataset) Error() string {
	return fmt.Sprintf("server: unknown dataset %q (upload it first)", string(e))
}

// mine resolves the request's dataset, consults the result cache, and
// otherwise joins the single-flight group for the request's cache key:
// concurrent identical (dataset, canonical config) requests share one
// computation and one cache fill, and identical requests after the
// first completes are cache hits that never re-mine.
func (s *Server) mine(ctx context.Context, req MineRequest) (*MineResponse, error) {
	ds, ok := s.store.Get(req.Dataset)
	if !ok {
		return nil, errUnknownDataset(req.Dataset)
	}
	var key string
	var err error
	if req.Colocate != nil {
		key, err = ColocateCacheKey(ds.Digest, *req.Colocate)
	} else {
		key, err = CacheKey(ds.Digest, req.Config)
	}
	if err != nil {
		return nil, err
	}
	if resp, ok := s.cache.Get(key); ok {
		s.trace.Add("server.cache.hits", 1)
		return resp, nil
	}
	s.trace.Add("server.cache.misses", 1)
	return s.flights.do(ctx, s.baseCtx, key, func(runCtx context.Context) (*MineResponse, error) {
		if req.Colocate != nil {
			return s.computeColocation(runCtx, ds, key, *req.Colocate)
		}
		return s.compute(runCtx, ds, key, req)
	})
}

// compute runs the pipeline once for a cache-missing key and fills the
// result cache. At most one compute per key is in flight at any time
// (enforced by the flight group); the server.mine.runs counter tallies
// real pipeline executions, which coalescing tests pin against the
// number of concurrent requests served.
func (s *Server) compute(ctx context.Context, ds *StoredDataset, key string, req MineRequest) (*MineResponse, error) {
	s.trace.Add("server.mine.runs", 1)
	if s.mineHook != nil {
		// Test seam: lets tests hold a "running" mine open deterministically.
		if err := s.mineHook(ctx); err != nil {
			return nil, err
		}
	}
	ctx = obs.WithTrace(ctx, s.trace)
	var resp *MineResponse
	if ds.Kind == KindScene {
		// Scenes route through the delta pipeline: the extraction state is
		// reused across requests, and PATCH successors re-extract only the
		// dirty region and patch the parent's cached result forward.
		var err error
		resp, err = s.computeScene(ctx, ds, key, req.Config)
		if err != nil {
			return nil, err
		}
	} else {
		out, err := core.RunTableContext(ctx, ds.Table, req.Config)
		if err != nil {
			return nil, err
		}
		resp = buildResponse(ds.Digest, out, req.Config)
	}
	s.cache.Put(key, resp)
	return resp, nil
}

// buildResponse converts a pipeline outcome to the wire form.
func buildResponse(digest string, out *core.Outcome, cfg core.Config) *MineResponse {
	res := out.Result
	resp := &MineResponse{
		Algorithm:         cfg.Algorithm.String(),
		Dataset:           digest,
		Transactions:      res.NumTransactions,
		MinSupportCount:   res.MinSupportCount,
		PrunedDeps:        res.PrunedDeps,
		PrunedSameFeature: res.PrunedSameFeature,
		MiningMicros:      res.Duration.Microseconds(),
		Frequent:          make([]ItemsetResult, 0, len(res.Frequent)),
	}
	for _, f := range res.Frequent {
		resp.Frequent = append(resp.Frequent, ItemsetResult{Items: f.Items.Names(out.DB.Dict), Support: f.Support})
	}
	for _, r := range out.Rules {
		resp.Rules = append(resp.Rules, RuleResult{
			Antecedent: r.Antecedent.Names(out.DB.Dict),
			Consequent: r.Consequent.Names(out.DB.Dict),
			Support:    r.Support,
			Confidence: r.Confidence,
			Lift:       r.Lift,
		})
	}
	return resp
}
