package transact

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/qsr"
)

// stateOptionsUnderTest covers every relation family and index kind the
// incremental state must stay equivalent under.
func stateOptionsUnderTest() map[string]Options {
	return map[string]Options{
		"topological":  {Topological: true, IncludeIsA: true, Index: RTreeIndex},
		"withDisjoint": {Topological: true, IncludeDisjoint: true, Index: GridIndex},
		"distance":     {Distance: true, Thresholds: qsr.DefaultThresholds(10), Index: RTreeIndex},
		"farFrom":      {Distance: true, Thresholds: qsr.DefaultThresholds(10), IncludeFarFrom: true, Index: GridIndex},
		"directional":  {Directional: true, Index: NoIndex},
		"combined":     {Topological: true, Distance: true, Thresholds: qsr.DefaultThresholds(10), IncludeIsA: true, Index: RTreeIndex},
		"unprepared":   {Topological: true, NoPrepare: true, Index: RTreeIndex},
	}
}

// sceneForState generates a small deterministic scene.
func sceneForState(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	d, err := datagen.GenerateScene(datagen.DefaultScene(4, 3, seed))
	if err != nil {
		t.Fatalf("GenerateScene: %v", err)
	}
	return d
}

// assertTablesEqual requires positionally identical tables.
func assertTablesEqual(t *testing.T, got, want *dataset.Table, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Transactions {
		g, w := got.Transactions[i], want.Transactions[i]
		if g.RefID != w.RefID {
			t.Fatalf("%s: row %d RefID = %q, want %q", label, i, g.RefID, w.RefID)
		}
		if fmt.Sprint(g.Items) != fmt.Sprint(w.Items) {
			t.Fatalf("%s: row %d (%s) items =\n%v\nwant\n%v", label, i, g.RefID, g.Items, w.Items)
		}
	}
}

func TestStateTableMatchesExtract(t *testing.T) {
	d := sceneForState(t, 7)
	for name, opts := range stateOptionsUnderTest() {
		t.Run(name, func(t *testing.T) {
			want, err := Extract(d, opts)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			st, err := NewState(d, opts)
			if err != nil {
				t.Fatalf("NewState: %v", err)
			}
			assertTablesEqual(t, st.Table(), want, "state table")
		})
	}
}

// rectWKT renders an axis-aligned rectangle as polygon WKT.
func rectWKT(minX, minY, maxX, maxY float64) string {
	return fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))",
		minX, minY, maxX, minY, maxX, maxY, minX, maxY, minX, minY)
}

// randomSceneOps builds a valid mutation batch against d using every op
// kind across the reference and relevant layers. tag keeps insert IDs
// unique across successive batches.
func randomSceneOps(rng *rand.Rand, d *dataset.Dataset, nOps int, tag string) []dataset.Op {
	var ops []dataset.Op
	deleted := map[string]bool{}
	inserted := 0
	for len(ops) < nOps {
		// Pick a layer: mostly relevant ones, sometimes the reference.
		var layer *dataset.Layer
		if rng.Float64() < 0.2 {
			layer = d.Reference
		} else {
			layer = d.Relevant[rng.Intn(len(d.Relevant))]
		}
		if layer.Len() == 0 {
			continue
		}
		f := layer.Features[rng.Intn(layer.Len())]
		key := layer.Type + "/" + f.ID
		switch rng.Intn(4) {
		case 3: // attribute update on a reference district: a numeric
			// value shifts (or first creates) the crimeRate column's
			// fitted cuts, exercising the refit path
			rf := d.Reference.Features[rng.Intn(d.Reference.Len())]
			rkey := d.Reference.Type + "/" + rf.ID
			if deleted[rkey] {
				continue
			}
			ops = append(ops, dataset.Op{
				Action: dataset.OpUpdate, Layer: d.Reference.Type, ID: rf.ID,
				Attrs: map[string]dataset.Value{"crimeRate": rng.Float64() * 100},
			})
		case 0: // update: replace with a nudged rectangle (pad degenerate
			// point/line envelopes so the polygon stays valid)
			if deleted[key] {
				continue
			}
			env := f.Geometry.Envelope()
			w := env.MaxX - env.MinX
			if w < 0.5 {
				w = 0.5
			}
			h := env.MaxY - env.MinY
			if h < 0.5 {
				h = 0.5
			}
			dx, dy := (rng.Float64()-0.5)*4, (rng.Float64()-0.5)*4
			wkt := rectWKT(env.MinX+dx, env.MinY+dy, env.MinX+dx+w, env.MinY+dy+h)
			ops = append(ops, dataset.Op{Action: dataset.OpUpdate, Layer: layer.Type, ID: f.ID, WKT: wkt})
		case 1: // insert a fresh rectangle
			x, y := rng.Float64()*40, rng.Float64()*30
			id := fmt.Sprintf("new_%s_%s_%d", tag, layer.Type, inserted)
			inserted++
			ops = append(ops, dataset.Op{Action: dataset.OpInsert, Layer: layer.Type, ID: id, WKT: rectWKT(x, y, x+2, y+2)})
		default: // delete (keep the reference layer populated)
			if deleted[key] || (layer == d.Reference && layer.Len() < 4) {
				continue
			}
			deleted[key] = true
			ops = append(ops, dataset.Op{Action: dataset.OpDelete, Layer: layer.Type, ID: f.ID})
		}
	}
	return ops
}

func TestStateApplyMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, opts := range stateOptionsUnderTest() {
		t.Run(name, func(t *testing.T) {
			d := sceneForState(t, 13)
			st, err := NewState(d, opts)
			if err != nil {
				t.Fatalf("NewState: %v", err)
			}
			for step := 0; step < 4; step++ {
				ops := randomSceneOps(rng, d, 1+rng.Intn(4), fmt.Sprintf("%s%d", name, step))
				nd, cs, err := d.ApplyOps(ops)
				if err != nil {
					t.Fatalf("step %d: ApplyOps: %v", step, err)
				}
				prevTable := st.Table()
				delta, err := st.Apply(context.Background(), nd, cs)
				if err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				want, err := Extract(nd, opts)
				if err != nil {
					t.Fatalf("step %d: Extract: %v", step, err)
				}
				got := st.Table()
				assertTablesEqual(t, got, want, fmt.Sprintf("step %d", step))
				verifyDelta(t, delta, prevTable, got, step)
				d = nd
			}
		})
	}
}

// verifyDelta cross-checks a TableDelta against the actual before/after
// tables: the mapping is consistent, every changed row is reported with
// its exact old/new items, and every unreported surviving row is
// unchanged.
func verifyDelta(t *testing.T, delta *TableDelta, before, after *dataset.Table, step int) {
	t.Helper()
	if delta.RowsTotal != after.Len() {
		t.Fatalf("step %d: RowsTotal = %d, want %d", step, delta.RowsTotal, after.Len())
	}
	if delta.RowsDirty+delta.RowsReused != delta.RowsTotal {
		t.Fatalf("step %d: dirty %d + reused %d != total %d", step, delta.RowsDirty, delta.RowsReused, delta.RowsTotal)
	}
	changed := map[int]RowChange{}
	for _, c := range delta.Changed {
		changed[c.Row] = c
	}
	for j, old := range delta.NewFromOld {
		a := after.Transactions[j]
		c, isChanged := changed[j]
		if old < 0 {
			if !isChanged || c.Old != nil {
				t.Fatalf("step %d: inserted row %d must be reported with nil Old", step, j)
			}
			continue
		}
		b := before.Transactions[old]
		if a.RefID != b.RefID {
			t.Fatalf("step %d: NewFromOld[%d]=%d maps %q to %q", step, j, old, b.RefID, a.RefID)
		}
		if isChanged {
			if fmt.Sprint(c.Old) != fmt.Sprint(b.Items) || fmt.Sprint(c.New) != fmt.Sprint(a.Items) {
				t.Fatalf("step %d: changed row %d items mismatch", step, j)
			}
			if fmt.Sprint(b.Items) == fmt.Sprint(a.Items) {
				t.Fatalf("step %d: row %d reported changed but identical", step, j)
			}
		} else if fmt.Sprint(a.Items) != fmt.Sprint(b.Items) {
			t.Fatalf("step %d: row %d (%s) changed but unreported:\nold %v\nnew %v",
				step, j, a.RefID, b.Items, a.Items)
		}
	}
	// Deleted rows: exactly the old indices missing from NewFromOld.
	missing := map[int]bool{}
	for old := 0; old < before.Len(); old++ {
		missing[old] = true
	}
	for _, old := range delta.NewFromOld {
		if old >= 0 {
			delete(missing, old)
		}
	}
	if len(missing) != len(delta.Deleted) {
		t.Fatalf("step %d: %d deleted rows reported, want %d", step, len(delta.Deleted), len(missing))
	}
	for _, del := range delta.Deleted {
		if !missing[del.Row] || del.New != nil {
			t.Fatalf("step %d: bad deletion record %+v", step, del)
		}
		if fmt.Sprint(del.Old) != fmt.Sprint(before.Transactions[del.Row].Items) {
			t.Fatalf("step %d: deleted row %d items mismatch", step, del.Row)
		}
	}
}

// TestStateApplyAttributeShiftMatchesFromScratch pins the review repro:
// an attribute edit that moves the fitted discretizer cuts, combined
// with a geometry nudge on another reference feature. The nudged row
// re-extracts fully and must render its (unchanged) numeric attribute
// under the refit cuts — with stale cuts it keeps its old bin label and
// diverges from a cold extraction.
func TestStateApplyAttributeShiftMatchesFromScratch(t *testing.T) {
	districts := dataset.NewLayer("district")
	for i, pop := range []float64{1, 2, 3, 4} {
		x := float64(i) * 10
		districts.Add(dataset.Feature{
			ID:       fmt.Sprintf("c%d", i),
			Geometry: geom.Rect(x, 0, x+10, 10),
			Attrs:    map[string]dataset.Value{"pop": pop},
		})
	}
	schools := dataset.NewLayer("school")
	schools.AddGeometry(geom.Pt(5, 5))
	d := &dataset.Dataset{
		Reference:       districts,
		Relevant:        []*dataset.Layer{schools},
		NonSpatialAttrs: []string{"pop"},
	}
	opts := Options{Topological: true, Index: RTreeIndex}
	st, err := NewState(d, opts)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	// pop 1 -> 100 moves the tercile cuts from [2,3] to [3,4]: c3's
	// pop=4 drops from the high bin to the medium one.
	nd, cs, err := d.ApplyOps([]dataset.Op{
		{Action: dataset.OpUpdate, Layer: "district", ID: "c0", Attrs: map[string]dataset.Value{"pop": 100.0}},
		{Action: dataset.OpUpdate, Layer: "district", ID: "c3", WKT: rectWKT(30.5, 0, 40.5, 10)},
	})
	if err != nil {
		t.Fatalf("ApplyOps: %v", err)
	}
	if _, err := st.Apply(context.Background(), nd, cs); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want, err := Extract(nd, opts)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	assertTablesEqual(t, st.Table(), want, "attribute shift")
}

func TestStateApplySingleEditIsSparse(t *testing.T) {
	d := sceneForState(t, 29)
	opts := Options{Topological: true, IncludeIsA: true, Index: RTreeIndex}
	st, err := NewState(d, opts)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	// Move one slum within its district: only nearby rows may re-extract.
	layer := d.Relevant[0]
	f := layer.Features[0]
	env := f.Geometry.Envelope()
	wkt := fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))",
		env.MinX+1, env.MinY, env.MaxX+1, env.MinY,
		env.MaxX+1, env.MaxY, env.MinX+1, env.MaxY, env.MinX+1, env.MinY)
	nd, cs, err := d.ApplyOps([]dataset.Op{{Action: dataset.OpUpdate, Layer: layer.Type, ID: f.ID, WKT: wkt}})
	if err != nil {
		t.Fatalf("ApplyOps: %v", err)
	}
	delta, err := st.Apply(context.Background(), nd, cs)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if delta.RowsDirty >= delta.RowsTotal {
		t.Errorf("single topological edit dirtied every row (%d/%d)", delta.RowsDirty, delta.RowsTotal)
	}
	if delta.RowsReused == 0 {
		t.Errorf("expected reused rows, got none")
	}
	if delta.PreparedReused == 0 {
		t.Errorf("expected reused prepared geometries, got none")
	}
	want, err := Extract(nd, opts)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	assertTablesEqual(t, st.Table(), want, "sparse apply")
}

func TestStateApplyParallelism(t *testing.T) {
	d := sceneForState(t, 3)
	for _, par := range []int{1, 4} {
		opts := Options{Topological: true, Distance: true, Thresholds: qsr.DefaultThresholds(10), Index: RTreeIndex, Parallelism: par}
		st, err := NewState(d, opts)
		if err != nil {
			t.Fatalf("NewState(par=%d): %v", par, err)
		}
		layer := d.Relevant[1]
		nd, cs, err := d.ApplyOps([]dataset.Op{
			{Action: dataset.OpInsert, Layer: layer.Type, ID: "pp", WKT: "POINT (17 12)"},
		})
		if err != nil {
			t.Fatalf("ApplyOps: %v", err)
		}
		if _, err := st.Apply(context.Background(), nd, cs); err != nil {
			t.Fatalf("Apply(par=%d): %v", par, err)
		}
		want, err := Extract(nd, opts)
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		assertTablesEqual(t, st.Table(), want, fmt.Sprintf("par=%d", par))
	}
}
