package transact

import "testing"

func TestEqualWidth(t *testing.T) {
	fd, err := EqualWidth{Bins: 3}.Fit([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]string{0: "low", 3: "low", 3.1: "medium", 6: "medium", 6.1: "high", 9: "high"}
	for v, want := range cases {
		if got := fd.Label(v); got != want {
			t.Errorf("Label(%v) = %q, want %q", v, got, want)
		}
	}
	// Out-of-range values clamp to the extreme bins.
	if fd.Label(-100) != "low" || fd.Label(1e9) != "high" {
		t.Error("out-of-range labeling wrong")
	}
}

func TestEqualWidthErrors(t *testing.T) {
	if _, err := (EqualWidth{Bins: 1}).Fit([]float64{1}); err == nil {
		t.Error("1 bin should fail")
	}
	if _, err := (EqualWidth{Bins: 3}).Fit(nil); err == nil {
		t.Error("empty column should fail")
	}
}

func TestEqualFrequency(t *testing.T) {
	// Skewed column: equal width would put almost everything in one bin;
	// equal frequency must split by rank.
	col := []float64{1, 1, 2, 2, 3, 3, 100, 100, 1000}
	fd, err := EqualFrequency{Bins: 3}.Fit(col)
	if err != nil {
		t.Fatal(err)
	}
	if got := fd.Label(1); got != "low" {
		t.Errorf("Label(1) = %q", got)
	}
	if got := fd.Label(1000); got != "high" {
		t.Errorf("Label(1000) = %q", got)
	}
	if got := fd.Label(3); got == fd.Label(1000) {
		t.Error("middle and top of a skewed column should differ")
	}
}

func TestEqualFrequencyErrors(t *testing.T) {
	if _, err := (EqualFrequency{Bins: 0}).Fit([]float64{1}); err == nil {
		t.Error("0 bins should fail")
	}
	if _, err := (EqualFrequency{Bins: 2}).Fit(nil); err == nil {
		t.Error("empty column should fail")
	}
}

func TestThresholds(t *testing.T) {
	fd, err := Thresholds{Cuts: []float64{10, 20}, Labels: []string{"low", "medium", "high"}}.Fit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Label(5) != "low" || fd.Label(15) != "medium" || fd.Label(25) != "high" {
		t.Error("threshold labeling wrong")
	}
	if fd.Label(10) != "low" || fd.Label(20) != "medium" {
		t.Error("boundary values belong to the lower bin")
	}
}

func TestThresholdsErrors(t *testing.T) {
	if _, err := (Thresholds{Cuts: []float64{1}, Labels: []string{"a"}}).Fit(nil); err == nil {
		t.Error("label/cut count mismatch should fail")
	}
	if _, err := (Thresholds{Cuts: []float64{5, 3}, Labels: []string{"a", "b", "c"}}).Fit(nil); err == nil {
		t.Error("descending cuts should fail")
	}
}

func TestDefaultLabels(t *testing.T) {
	if got := defaultLabels(2); got[0] != "low" || got[1] != "high" {
		t.Errorf("2 bins = %v", got)
	}
	if got := defaultLabels(5); got[0] != "b0" || got[4] != "b4" {
		t.Errorf("5 bins = %v", got)
	}
}

func TestDefaultDiscretizer(t *testing.T) {
	fd, err := DefaultDiscretizer().Fit([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Labels) != 3 {
		t.Errorf("default discretizer bins = %d", len(fd.Labels))
	}
}
