package transact

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
)

// wideDataset builds a dataset with many reference features, so the
// parallel extraction path engages.
func wideDataset(n int) *dataset.Dataset {
	refs := dataset.NewLayer("cell")
	for i := 0; i < n; i++ {
		x := float64(i % 10 * 20)
		y := float64(i / 10 * 20)
		refs.Add(dataset.Feature{
			ID: fmt.Sprintf("C%03d", i), Geometry: geom.Rect(x, y, x+10, y+10),
			Attrs: map[string]dataset.Value{"kind": "plain"},
		})
	}
	pts := dataset.NewLayer("poi")
	for i := 0; i < n; i++ {
		pts.AddGeometry(geom.Pt(float64(i%10*20+5), float64(i/10*20+5)))
	}
	return &dataset.Dataset{
		Reference:       refs,
		Relevant:        []*dataset.Layer{pts},
		NonSpatialAttrs: []string{"kind"},
	}
}

func TestExtractContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 0} {
		opts := DefaultOptions()
		opts.Parallelism = par
		if _, err := ExtractContext(ctx, wideDataset(60), opts); !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
	}
}

func TestExtractContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	if _, err := ExtractContext(ctx, wideDataset(60), DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestExtractContextMatchesExtract(t *testing.T) {
	d := wideDataset(25)
	plain, err := Extract(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := ExtractContext(context.Background(), d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != traced.Len() {
		t.Fatalf("rows = %d vs %d", plain.Len(), traced.Len())
	}
}

func TestExtractCounters(t *testing.T) {
	tr := obs.New(nil)
	ctx := obs.WithTrace(context.Background(), tr)
	table, err := ExtractContext(ctx, wideDataset(25), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Counter("extract.rows"); got != int64(table.Len()) {
		t.Errorf("extract.rows = %d, want %d", got, table.Len())
	}
	if tr.Counter("extract.candidates") == 0 || tr.Counter("extract.items") == 0 {
		t.Errorf("counters = %v", tr.Counters())
	}
}

// TestExtractAttributesOnly: a deliberately non-zero Options with every
// relation family off emits only attribute (and is_a) items.
func TestExtractAttributesOnly(t *testing.T) {
	opts := Options{IncludeIsA: true}
	if opts.IsZero() {
		t.Fatal("options with IncludeIsA must not be zero")
	}
	table, err := Extract(smallDataset(), opts)
	if err != nil {
		t.Fatalf("attributes-only extraction must succeed: %v", err)
	}
	for _, tx := range table.Transactions {
		for _, it := range tx.Items {
			if !strings.Contains(it, "=") && !strings.HasPrefix(it, "is_a_") {
				t.Errorf("unexpected spatial item %q in attributes-only table", it)
			}
		}
		if len(tx.Items) == 0 {
			t.Errorf("transaction %s is empty", tx.RefID)
		}
	}
	if !(Options{}).IsZero() {
		t.Error("zero options must report IsZero")
	}
	if DefaultOptions().IsZero() {
		t.Error("default options must not report IsZero")
	}
}

// TestExtractParallelCancelledPromptly: cancelling mid-extraction stops
// the worker pool without waiting for the remaining rows.
func TestExtractParallelCancelledPromptly(t *testing.T) {
	d := wideDataset(100)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Parallelism = 4
	done := make(chan error, 1)
	go func() {
		_, err := ExtractContext(ctx, d, opts)
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want nil (finished first) or context.Canceled", err)
	}
}
