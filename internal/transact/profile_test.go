package transact

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func TestProfilePortoAlegre(t *testing.T) {
	p := Profile(dataset.PortoAlegreTable())
	if p.Transactions != 6 {
		t.Errorf("transactions = %d", p.Transactions)
	}
	// The paper's Section 2 statistics: 7 spatial predicates, 2
	// non-spatial attributes.
	if p.SpatialPredicates != 7 {
		t.Errorf("spatial predicates = %d, want 7", p.SpatialPredicates)
	}
	if len(p.Attributes) != 2 {
		t.Errorf("attributes = %v", p.Attributes)
	}
	if got := p.FeatureTypes["slum"]; got != 4 {
		t.Errorf("slum relations = %d, want 4", got)
	}
	if got := p.FeatureTypes["school"]; got != 2 {
		t.Errorf("school relations = %d, want 2", got)
	}
	// Same-feature pairs: C(4,2) + C(2,2) + C(1,2)=0 -> 7.
	if p.SameFeaturePairs != 7 {
		t.Errorf("same-feature pairs = %d, want 7", p.SameFeaturePairs)
	}
	if p.ItemSupport["contains_slum"] != 6 {
		t.Errorf("support(contains_slum) = %d", p.ItemSupport["contains_slum"])
	}
	if len(p.Attributes["murderRate"]) != 2 {
		t.Errorf("murderRate values = %v", p.Attributes["murderRate"])
	}
	if p.AvgItemsPerRow <= 5 || p.AvgItemsPerRow >= 8 {
		t.Errorf("avg items per row = %v", p.AvgItemsPerRow)
	}
}

func TestProfileMatchesPublishedDatasetStats(t *testing.T) {
	// The generator statistics tests in datagen assert these numbers
	// independently; Profile must agree.
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, 500)
	if err != nil {
		t.Fatal(err)
	}
	p := Profile(table)
	if p.SpatialPredicates != 13 {
		t.Errorf("dataset 1 spatial predicates = %d, want 13", p.SpatialPredicates)
	}
	if p.SameFeaturePairs != 9 {
		t.Errorf("dataset 1 same-feature pairs = %d, want 9", p.SameFeaturePairs)
	}
	if len(p.FeatureTypes) != 6 {
		t.Errorf("dataset 1 feature types = %d, want 6", len(p.FeatureTypes))
	}
}

func TestProfileFormat(t *testing.T) {
	p := Profile(dataset.PortoAlegreTable())
	out := p.Format()
	for _, want := range []string{
		"transactions:        6",
		"spatial predicates:  7 over 3 feature types",
		"same-feature pairs:  7",
		"slum",
		"murderRate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestProfileEmpty(t *testing.T) {
	p := Profile(dataset.NewTable(nil))
	if p.Transactions != 0 || p.AvgItemsPerRow != 0 || p.SpatialPredicates != 0 {
		t.Errorf("empty profile = %+v", p)
	}
}
