// Incremental extraction: a State keeps everything ExtractContext
// computes — fitted discretizers, per-layer prepared geometries and
// spatial indexes, and each reference row's item parts — so that a
// mutated successor dataset re-extracts only its dirty region instead
// of the whole scene.
//
// The dirty-region math inverts gatherCandidates: a changed relevant
// feature can only affect a reference row if the row's candidate gather
// could include the feature's old or new envelope. An R-tree over the
// reference envelopes answers that reverse query with the same radius
// the forward gather uses (everything for directional/disjoint/farFrom
// families, CloseMax+Eps for distance, Eps for pure topology), so the
// set of re-extracted rows is exactly the set whose candidate lists can
// change. Prepared geometries of untouched features — both relevant-
// layer features and the reference geometries of partially re-extracted
// rows — are reused, never rebuilt.
package transact

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/obs"
)

// State is a reusable extraction context bound to one dataset and one
// Options value. Build it with NewStateContext (a full extraction),
// read the result with Table, and advance it to a mutated successor
// dataset with Apply. A State is not safe for concurrent mutation;
// callers serialise Apply against Table.
type State struct {
	d    *dataset.Dataset
	opts Options
	disc Discretizer
	cuts map[string]*FittedDiscretizer

	anyFamily bool
	// prep[li][j] is the prepared geometry of relevant layer li's
	// feature j; nil when prepared geometries are disabled or no
	// relation family is on.
	prep [][]*geom.Prepared
	// indexes[li] is the candidate-filter index over layer li.
	indexes []index.SpatialIndex
	// refIndex answers the reverse dirty-row query: which reference
	// rows can a changed envelope affect.
	refIndex index.SpatialIndex
	// prepRef[j] is row j's prepared reference geometry (nil entries
	// when unprepared).
	prepRef []*geom.Prepared

	// attr[j] holds row j's non-spatial items (is_a + attributes);
	// spatial[j][li] holds row j's spatial items against layer li. The
	// transaction is their concatenation, normalised by dataset.NewTable.
	attr    [][]string
	spatial [][][]string
}

// RowChange records one row whose normalised items differ between a
// State and its patched successor. Old is nil for inserted rows; New is
// nil for deleted rows (whose Row is the predecessor index).
type RowChange struct {
	Row      int
	Old, New []string
}

// TableDelta describes how Apply changed the transaction table, in
// exactly the shape the incremental miner consumes.
type TableDelta struct {
	// NewFromOld maps every successor row index to its predecessor row
	// index (-1 for inserted rows).
	NewFromOld []int
	// Changed lists surviving rows whose normalised items differ
	// (successor indexing), including inserted rows.
	Changed []RowChange
	// Deleted lists removed rows (predecessor indexing, New == nil).
	Deleted []RowChange
	// RowsTotal / RowsDirty / RowsReused count the successor rows, the
	// rows whose spatial parts were re-extracted, and the rows carried
	// over untouched.
	RowsTotal, RowsDirty, RowsReused int
	// PreparedReused / PreparedBuilt count prepared geometries carried
	// over versus newly built during the patch.
	PreparedReused, PreparedBuilt int
}

// Identity reports whether the delta changes no row.
func (td *TableDelta) Identity() bool {
	return len(td.Changed) == 0 && len(td.Deleted) == 0
}

// NewState builds extraction state with a full extraction; see
// NewStateContext.
func NewState(d *dataset.Dataset, opts Options) (*State, error) {
	return NewStateContext(context.Background(), d, opts)
}

// NewStateContext performs a full extraction of d under opts, keeping
// every intermediate the delta path reuses. The table it produces is
// identical to ExtractContext's (the incremental equivalence tests pin
// this), and it reports the same extract.* counters.
func NewStateContext(ctx context.Context, d *dataset.Dataset, opts Options) (*State, error) {
	if d.Reference == nil {
		return nil, fmt.Errorf("transact: dataset has no reference layer")
	}
	if opts.IsZero() {
		return nil, fmt.Errorf("transact: zero Options (enable a relation family, or configure attributes-only extraction explicitly)")
	}
	disc := opts.Discretizer
	if disc == nil {
		disc = DefaultDiscretizer()
	}
	cuts, err := fitNumericAttrs(d, disc)
	if err != nil {
		return nil, err
	}
	s := &State{
		d:         d,
		opts:      opts,
		disc:      disc,
		cuts:      cuts,
		anyFamily: opts.Topological || opts.Distance || opts.Directional,
	}
	tr := obs.FromContext(ctx)

	var preparedBuilds, preparedEdges int64
	if s.anyFamily && !opts.NoPrepare {
		sp := tr.Stage("extract.prepare")
		s.prep = make([][]*geom.Prepared, len(d.Relevant))
		for i, layer := range d.Relevant {
			if err := ctx.Err(); err != nil {
				sp.End()
				return nil, err
			}
			prep := make([]*geom.Prepared, layer.Len())
			for j := range layer.Features {
				prep[j] = geom.Prepare(layer.Features[j].Geometry)
				preparedBuilds++
				preparedEdges += int64(prep[j].NumEdges())
			}
			s.prep[i] = prep
		}
		sp.End()
	}
	if s.anyFamily {
		s.indexes = make([]index.SpatialIndex, len(d.Relevant))
		for i, layer := range d.Relevant {
			idx, err := buildLayerIndex(opts.Index, layer, s.layerPrep(i))
			if err != nil {
				return nil, err
			}
			s.indexes[i] = idx
		}
		s.refIndex = buildRefIndex(d.Reference)
	}

	n := d.Reference.Len()
	s.attr = make([][]string, n)
	s.spatial = make([][][]string, n)
	s.prepRef = make([]*geom.Prepared, n)

	var candidatesExamined, itemsEmitted atomic.Int64
	var relatesRefined, refinesSkipped atomic.Int64
	var refPreparedBuilds, refPreparedEdges atomic.Int64
	rows := make([]int, n)
	for j := range rows {
		rows[j] = j
	}
	workers := workerCount(opts.Parallelism, n)
	bufs := make([][]int, workers)
	err = forEachRow(ctx, rows, workers, func(w, j int) {
		var st refineStats
		attr, spatial, pref, nCand := s.extractRowParts(d, s.cuts, j, &bufs[w], &st)
		s.attr[j] = attr
		s.spatial[j] = spatial
		s.prepRef[j] = pref
		candidatesExamined.Add(nCand)
		items := int64(len(attr))
		for _, part := range spatial {
			items += int64(len(part))
		}
		itemsEmitted.Add(items)
		relatesRefined.Add(st.relates)
		refinesSkipped.Add(st.skipped)
		if pref != nil {
			refPreparedBuilds.Add(1)
			refPreparedEdges.Add(int64(pref.NumEdges()))
		}
	})
	if err != nil {
		return nil, err
	}
	tr.Add("extract.rows", int64(n))
	tr.Add("extract.candidates", candidatesExamined.Load())
	tr.Add("extract.items", itemsEmitted.Load())
	tr.Add("extract.relates", relatesRefined.Load())
	tr.Add("extract.refine.skipped", refinesSkipped.Load())
	if s.prep != nil {
		tr.Add("extract.prepared.builds", preparedBuilds+refPreparedBuilds.Load())
		tr.Add("extract.prepared.edges", preparedEdges+refPreparedEdges.Load())
	}
	return s, nil
}

// Dataset returns the dataset the state currently reflects.
func (s *State) Dataset() *dataset.Dataset { return s.d }

// Options returns the extraction options the state was built with.
func (s *State) Options() Options { return s.opts }

// Table assembles the current transaction table. Each row concatenates
// its non-spatial part with the per-layer spatial parts; NewTable's
// normalisation (sort + dedupe) makes the result independent of part
// boundaries, hence identical to a from-scratch ExtractContext.
func (s *State) Table() *dataset.Table {
	rows := make([]dataset.Transaction, len(s.attr))
	for j := range rows {
		items := make([]string, 0, len(s.attr[j])+8)
		items = append(items, s.attr[j]...)
		for _, part := range s.spatial[j] {
			items = append(items, part...)
		}
		rows[j] = dataset.Transaction{RefID: s.d.Reference.Features[j].ID, Items: items}
	}
	return dataset.NewTable(rows)
}

// Apply advances the state to the mutated successor dataset nd, whose
// difference from the current dataset is described by cs (both from
// dataset.ApplyOps). Only the dirty region re-extracts:
//
//   - a changed relevant feature re-extracts exactly the (row, layer)
//     pairs whose candidate gather can see its old or new envelope;
//   - a changed reference feature re-extracts its own row fully;
//   - a discretizer cut change re-renders every row's attribute items
//     (no geometry work);
//   - everything else — item parts, prepared geometries, indexes of
//     untouched layers — is carried over.
//
// The returned TableDelta is the exact row-level difference of the
// transaction tables, ready for itemset.DB.ApplyDelta and
// mining.PatchResultContext. Counters delta.rows.total/dirty/reused and
// delta.prepared.reused/builds report the reuse to any obs.Trace.
func (s *State) Apply(ctx context.Context, nd *dataset.Dataset, cs *dataset.ChangeSet) (*TableDelta, error) {
	if nd.Reference == nil || nd.Reference.Type != s.d.Reference.Type {
		return nil, fmt.Errorf("transact: delta: reference layer mismatch")
	}
	if len(nd.Relevant) != len(s.d.Relevant) {
		return nil, fmt.Errorf("transact: delta: relevant layer count changed")
	}
	for i := range nd.Relevant {
		if nd.Relevant[i].Type != s.d.Relevant[i].Type {
			return nil, fmt.Errorf("transact: delta: relevant layer %d type changed", i)
		}
	}
	tr := obs.FromContext(ctx)

	newCuts, err := fitNumericAttrs(nd, s.disc)
	if err != nil {
		return nil, err
	}
	attrsChanged := !cutsEqual(newCuts, s.cuts)

	// Map successor reference rows onto predecessor rows by feature ID.
	oldRef := s.d.Reference
	oldByID := make(map[string]int, oldRef.Len())
	for i := range oldRef.Features {
		oldByID[oldRef.Features[i].ID] = i
	}
	refDiff := cs.Layer(oldRef.Type)
	var refUpdated map[string]bool
	if refDiff != nil {
		refUpdated = stringSet(refDiff.Updated)
	}
	n := nd.Reference.Len()
	newFromOld := make([]int, n)
	oldToNew := make([]int, oldRef.Len())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	fullRow := make([]bool, n)
	for j := range nd.Reference.Features {
		id := nd.Reference.Features[j].ID
		old, ok := oldByID[id]
		if !ok {
			newFromOld[j] = -1
			fullRow[j] = true
			continue
		}
		newFromOld[j] = old
		oldToNew[old] = j
		if refUpdated[id] {
			fullRow[j] = true
		}
	}

	// Advance changed relevant layers (prepared cache + index) and mark
	// the rows their dirty envelopes can reach.
	var preparedReused, preparedBuilt int64
	layerDirty := make([][]bool, len(nd.Relevant))
	allDirty := s.opts.Directional || s.opts.IncludeDisjoint || (s.opts.Distance && s.opts.IncludeFarFrom)
	var queryBuf []int
	for li := range nd.Relevant {
		ld := cs.Layer(nd.Relevant[li].Type)
		if ld.Empty() {
			continue
		}
		oldLayer, newLayer := s.d.Relevant[li], nd.Relevant[li]
		oldIdx := make(map[string]int, oldLayer.Len())
		for i := range oldLayer.Features {
			oldIdx[oldLayer.Features[i].ID] = i
		}
		updated := stringSet(ld.Updated)
		if s.prep != nil {
			newPrep := make([]*geom.Prepared, newLayer.Len())
			for j := range newLayer.Features {
				if oi, ok := oldIdx[newLayer.Features[j].ID]; ok && !updated[newLayer.Features[j].ID] {
					newPrep[j] = s.prep[li][oi]
					preparedReused++
				} else {
					newPrep[j] = geom.Prepare(newLayer.Features[j].Geometry)
					preparedBuilt++
				}
			}
			s.prep[li] = newPrep
		}
		if s.anyFamily {
			idx, err := buildLayerIndex(s.opts.Index, newLayer, s.layerPrep(li))
			if err != nil {
				return nil, err
			}
			s.indexes[li] = idx

			dirty := make([]bool, n)
			if allDirty {
				for j := range dirty {
					dirty[j] = true
				}
			} else {
				mark := func(env geom.Envelope) {
					queryBuf = s.dirtyRowQuery(env, queryBuf[:0])
					for _, oldRow := range queryBuf {
						if nj := oldToNew[oldRow]; nj >= 0 {
							dirty[nj] = true
						}
					}
				}
				for _, id := range ld.Updated {
					if oi, ok := oldIdx[id]; ok {
						mark(oldLayer.Features[oi].Geometry.Envelope())
					}
					if ni, ok := layerFeatureIdx(newLayer, id); ok {
						mark(newLayer.Features[ni].Geometry.Envelope())
					}
				}
				for _, id := range ld.Inserted {
					if ni, ok := layerFeatureIdx(newLayer, id); ok {
						mark(newLayer.Features[ni].Geometry.Envelope())
					}
				}
				for _, id := range ld.Deleted {
					if oi, ok := oldIdx[id]; ok {
						mark(oldLayer.Features[oi].Geometry.Envelope())
					}
				}
			}
			layerDirty[li] = dirty
		}
	}

	// Assemble the successor row parts: carry untouched parts over,
	// collect the rows that need (partial or full) re-extraction.
	oldAttr, oldSpatial, oldPrepRef := s.attr, s.spatial, s.prepRef
	newAttr := make([][]string, n)
	newSpatial := make([][][]string, n)
	newPrepRef := make([]*geom.Prepared, n)
	dirtyLayersOf := make([][]int, n)
	var jobs []int
	var attrJobs []int
	dirtyRows := 0
	for j := 0; j < n; j++ {
		if fullRow[j] {
			jobs = append(jobs, j)
			dirtyRows++
			continue
		}
		old := newFromOld[j]
		newAttr[j] = oldAttr[old]
		newSpatial[j] = oldSpatial[old]
		newPrepRef[j] = oldPrepRef[old]
		var dls []int
		for li := range layerDirty {
			if layerDirty[li] != nil && layerDirty[li][j] {
				dls = append(dls, li)
			}
		}
		if len(dls) > 0 {
			dirtyLayersOf[j] = dls
			// Copy the part slice so overwriting dirty entries cannot
			// alias the predecessor's (still needed for Old items).
			newSpatial[j] = append([][]string{}, oldSpatial[old]...)
			jobs = append(jobs, j)
			dirtyRows++
		} else if attrsChanged {
			attrJobs = append(attrJobs, j)
		}
	}

	var refPreparedBuilds, prefReused atomic.Int64
	workers := workerCount(s.opts.Parallelism, len(jobs))
	bufs := make([][]int, workers)
	err = forEachRow(ctx, jobs, workers, func(w, j int) {
		var st refineStats
		if fullRow[j] {
			attr, spatial, pref, _ := s.extractRowParts(nd, newCuts, j, &bufs[w], &st)
			newAttr[j] = attr
			newSpatial[j] = spatial
			newPrepRef[j] = pref
			if pref != nil {
				refPreparedBuilds.Add(1)
			}
			return
		}
		// Partial re-extraction: reuse the prepared reference geometry,
		// redo only the dirty layers.
		pref := newPrepRef[j]
		if pref != nil {
			prefReused.Add(1)
		}
		ref := &nd.Reference.Features[j]
		refEnv := ref.Geometry.Envelope()
		if pref != nil {
			refEnv = pref.Envelope()
		}
		for _, li := range dirtyLayersOf[j] {
			bufs[w] = gatherCandidates(s.indexes[li], refEnv, s.opts, bufs[w][:0])
			newSpatial[j][li] = appendSpatialItems(nil, ref, pref, nd.Relevant[li], s.prep, li, refEnv, bufs[w], s.opts, &st)
		}
		if attrsChanged {
			newAttr[j] = s.computeAttrPart(nd, newCuts, j)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, j := range attrJobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		newAttr[j] = s.computeAttrPart(nd, newCuts, j)
	}

	// Diff the tables row by row (normalised) to produce the exact
	// mining delta; untouched rows are equal by construction and are
	// not compared.
	delta := &TableDelta{
		NewFromOld:     newFromOld,
		RowsTotal:      n,
		RowsDirty:      dirtyRows,
		RowsReused:     n - dirtyRows,
		PreparedReused: int(preparedReused + prefReused.Load()),
		PreparedBuilt:  int(preparedBuilt + refPreparedBuilds.Load()),
	}
	oldRowItems := func(old int) []string {
		items := append([]string{}, oldAttr[old]...)
		for _, part := range oldSpatial[old] {
			items = append(items, part...)
		}
		return dataset.NormalizeItems(items)
	}
	newRowItems := func(j int) []string {
		items := append([]string{}, newAttr[j]...)
		for _, part := range newSpatial[j] {
			items = append(items, part...)
		}
		return dataset.NormalizeItems(items)
	}
	recomputed := make(map[int]bool, len(jobs)+len(attrJobs))
	for _, j := range jobs {
		recomputed[j] = true
	}
	for _, j := range attrJobs {
		recomputed[j] = true
	}
	for j := 0; j < n; j++ {
		if !recomputed[j] {
			continue
		}
		newItems := newRowItems(j)
		if newFromOld[j] < 0 {
			delta.Changed = append(delta.Changed, RowChange{Row: j, New: newItems})
			continue
		}
		oldItems := oldRowItems(newFromOld[j])
		if !stringSlicesEqual(oldItems, newItems) {
			delta.Changed = append(delta.Changed, RowChange{Row: j, Old: oldItems, New: newItems})
		}
	}
	for old := range oldToNew {
		if oldToNew[old] < 0 {
			delta.Deleted = append(delta.Deleted, RowChange{Row: old, Old: oldRowItems(old)})
		}
	}

	// Commit the successor state.
	s.d = nd
	s.cuts = newCuts
	s.attr = newAttr
	s.spatial = newSpatial
	s.prepRef = newPrepRef
	if s.anyFamily && !refDiff.Empty() {
		s.refIndex = buildRefIndex(nd.Reference)
	}

	tr.Add("delta.rows.total", int64(delta.RowsTotal))
	tr.Add("delta.rows.dirty", int64(delta.RowsDirty))
	tr.Add("delta.rows.reused", int64(delta.RowsReused))
	tr.Add("delta.prepared.reused", int64(delta.PreparedReused))
	tr.Add("delta.prepared.builds", int64(delta.PreparedBuilt))
	if attrsChanged {
		tr.Add("delta.attr.refits", 1)
	}
	return delta, nil
}

// extractRowParts performs a full single-row extraction under the given
// fitted cuts, returning the non-spatial part, per-layer spatial parts,
// the prepared reference geometry (nil when unprepared), and the
// candidate count. The cuts are a parameter, not s.cuts: Apply renders
// full rows under the successor's refit before committing it.
func (s *State) extractRowParts(d *dataset.Dataset, cuts map[string]*FittedDiscretizer, j int, buf *[]int, st *refineStats) ([]string, [][]string, *geom.Prepared, int64) {
	attr := s.computeAttrPart(d, cuts, j)
	if !s.anyFamily {
		return attr, make([][]string, len(d.Relevant)), nil, 0
	}
	ref := &d.Reference.Features[j]
	var pref *geom.Prepared
	refEnv := ref.Geometry.Envelope()
	if s.prep != nil {
		pref = geom.Prepare(ref.Geometry)
		refEnv = pref.Envelope()
	}
	spatial := make([][]string, len(d.Relevant))
	var nCand int64
	for li := range d.Relevant {
		*buf = gatherCandidates(s.indexes[li], refEnv, s.opts, (*buf)[:0])
		nCand += int64(len(*buf))
		spatial[li] = appendSpatialItems(nil, ref, pref, d.Relevant[li], s.prep, li, refEnv, *buf, s.opts, st)
	}
	return attr, spatial, pref, nCand
}

// computeAttrPart renders row j's non-spatial items under the given
// fitted cuts.
func (s *State) computeAttrPart(d *dataset.Dataset, cuts map[string]*FittedDiscretizer, j int) []string {
	ref := &d.Reference.Features[j]
	items := make([]string, 0, 4)
	if s.opts.IncludeIsA {
		items = append(items, "is_a_"+d.Reference.Type)
	}
	return appendAttrItems(items, ref, d.NonSpatialAttrs, cuts)
}

// dirtyRowQuery returns the predecessor reference rows whose candidate
// gather can include a feature with envelope env — the reverse of
// gatherCandidates, with the same per-family radius. Callers handle the
// take-everything families before getting here.
func (s *State) dirtyRowQuery(env geom.Envelope, dst []int) []int {
	if s.opts.Distance {
		return s.refIndex.SearchDistance(env, s.opts.Thresholds.CloseMax+geom.Eps, dst)
	}
	return s.refIndex.Search(env.Buffer(geom.Eps), dst)
}

// layerPrep returns the prepared slice of layer li, nil when disabled.
func (s *State) layerPrep(li int) []*geom.Prepared {
	if s.prep == nil {
		return nil
	}
	return s.prep[li]
}

// buildLayerIndex builds the candidate-filter index for one layer,
// reusing prepared envelopes when available.
func buildLayerIndex(kind IndexKind, layer *dataset.Layer, prep []*geom.Prepared) (index.SpatialIndex, error) {
	items := make([]index.Item, layer.Len())
	for j := range layer.Features {
		if prep != nil {
			items[j] = index.Item{Env: prep[j].Envelope(), ID: j}
		} else {
			items[j] = index.Item{Env: layer.Features[j].Geometry.Envelope(), ID: j}
		}
	}
	switch kind {
	case RTreeIndex:
		return index.NewRTreeBulk(items), nil
	case GridIndex:
		return index.NewGridBulk(items), nil
	case NoIndex:
		return index.NewLinear(items), nil
	}
	return nil, fmt.Errorf("transact: unknown index kind %d", kind)
}

// buildRefIndex builds the reverse-query R-tree over the reference
// envelopes. Always an R-tree regardless of Options.Index: it only
// accelerates dirty-row discovery and never affects extraction output.
func buildRefIndex(ref *dataset.Layer) index.SpatialIndex {
	items := make([]index.Item, ref.Len())
	for j := range ref.Features {
		items[j] = index.Item{Env: ref.Features[j].Geometry.Envelope(), ID: j}
	}
	return index.NewRTreeBulk(items)
}

// cutsEqual compares two fitted discretizer maps field-wise.
func cutsEqual(a, b map[string]*FittedDiscretizer) bool {
	if len(a) != len(b) {
		return false
	}
	for k, fa := range a {
		fb, ok := b[k]
		if !ok || !reflect.DeepEqual(fa, fb) {
			return false
		}
	}
	return true
}

// stringSet builds a membership set.
func stringSet(ss []string) map[string]bool {
	if len(ss) == 0 {
		return nil
	}
	set := make(map[string]bool, len(ss))
	for _, s := range ss {
		set[s] = true
	}
	return set
}

// stringSlicesEqual compares two string slices element-wise.
func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// layerFeatureIdx finds a feature by ID within a layer.
func layerFeatureIdx(l *dataset.Layer, id string) (int, bool) {
	for i := range l.Features {
		if l.Features[i].ID == id {
			return i, true
		}
	}
	return 0, false
}

// workerCount resolves the effective worker-pool size for n jobs.
func workerCount(parallelism, n int) int {
	w := parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if n < 2 {
		w = 1
	}
	return w
}

// forEachRow fans the given rows out over a fixed worker pool (fn
// receives the worker index for per-worker scratch). Sequential when
// workers is 1. Returns ctx.Err() if cancelled.
func forEachRow(ctx context.Context, rows []int, workers int, fn func(worker, row int)) error {
	if workers <= 1 {
		for _, r := range rows {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, r)
		}
		return ctx.Err()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := range next {
				if ctx.Err() != nil {
					continue
				}
				fn(w, r)
			}
		}(w)
	}
	for _, r := range rows {
		if ctx.Err() != nil {
			break
		}
		next <- r
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
