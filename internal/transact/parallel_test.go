package transact

import (
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/qsr"
)

// TestParallelExtractionDeterministic: extraction output must be
// identical at every parallelism level, including with the race detector.
func TestParallelExtractionDeterministic(t *testing.T) {
	scene, err := datagen.GenerateScene(datagen.DefaultScene(8, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	var baseline *dataset.Table
	for _, workers := range []int{1, 0, 2, 7} {
		opts := DefaultOptions()
		opts.Parallelism = workers
		got, err := Extract(scene, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if got.Len() != baseline.Len() {
			t.Fatalf("workers=%d: %d rows, want %d", workers, got.Len(), baseline.Len())
		}
		for i := range baseline.Transactions {
			if !reflect.DeepEqual(baseline.Transactions[i], got.Transactions[i]) {
				t.Fatalf("workers=%d row %d differs:\n  %v\n  %v",
					workers, i, baseline.Transactions[i], got.Transactions[i])
			}
		}
	}
}

func TestParallelExtractionWithDistance(t *testing.T) {
	// Distance extraction shares the per-layer indexes across workers.
	scene, err := datagen.GenerateScene(datagen.DefaultScene(6, 6, 9))
	if err != nil {
		t.Fatal(err)
	}
	seq := Options{
		Distance:    true,
		Thresholds:  qsr.DistanceThresholds{VeryCloseMax: 1, CloseMax: 8},
		Parallelism: 1,
		Index:       GridIndex,
	}
	par := seq
	par.Parallelism = 4
	a, err := Extract(scene, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(scene, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Transactions, b.Transactions) {
		t.Error("parallel distance extraction differs from sequential")
	}
}
