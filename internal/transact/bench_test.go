package transact

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/qsr"
)

// benchScene generates the benchmark scene outside the timed region so
// every iteration measures extraction, not generation.
func benchScene(b *testing.B, grid int) *dataset.Dataset {
	b.Helper()
	d, err := datagen.GenerateScene(datagen.DefaultScene(grid, grid, 1))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkExtractScenePrepared measures full-table extraction with the
// prepared-geometry refine path (the default); its Unprepared sibling is
// the before-number of the filter-and-refine rework.
func BenchmarkExtractScenePrepared(b *testing.B) {
	benchmarkExtractScene(b, false)
}

func BenchmarkExtractSceneUnprepared(b *testing.B) {
	benchmarkExtractScene(b, true)
}

func benchmarkExtractScene(b *testing.B, noPrepare bool) {
	d := benchScene(b, 10)
	opts := DefaultOptions()
	opts.Distance = true
	opts.Thresholds = qsr.DefaultThresholds(10)
	opts.NoPrepare = noPrepare
	rows := d.Reference.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := Extract(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		if table.Len() != rows {
			b.Fatal(fmt.Errorf("extracted %d rows, want %d", table.Len(), rows))
		}
	}
}
