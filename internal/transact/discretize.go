package transact

import (
	"fmt"
	"sort"
)

// Discretizer fits cut points over a numeric column and labels values.
// Implementations must be deterministic: mining results depend on labels.
type Discretizer interface {
	// Fit computes cut points from the column values.
	Fit(values []float64) (*FittedDiscretizer, error)
}

// FittedDiscretizer holds fitted cut points and bin labels. A value v maps
// to bin i when v <= Cuts[i] (and to the last bin beyond all cuts).
type FittedDiscretizer struct {
	// Cuts are the len(Labels)-1 ascending upper bounds of all bins but
	// the last.
	Cuts []float64
	// Labels name the bins ("low", "medium", "high" or "b0".."bn").
	Labels []string
}

// Label maps a value to its bin label.
func (f *FittedDiscretizer) Label(v float64) string {
	for i, c := range f.Cuts {
		if v <= c {
			return f.Labels[i]
		}
	}
	return f.Labels[len(f.Labels)-1]
}

// defaultLabels returns human-friendly names for small bin counts and
// generated names otherwise.
func defaultLabels(bins int) []string {
	switch bins {
	case 2:
		return []string{"low", "high"}
	case 3:
		return []string{"low", "medium", "high"}
	}
	out := make([]string, bins)
	for i := range out {
		out[i] = fmt.Sprintf("b%d", i)
	}
	return out
}

// EqualWidth discretises into bins of equal value range.
type EqualWidth struct {
	Bins int
}

// Fit implements Discretizer.
func (e EqualWidth) Fit(values []float64) (*FittedDiscretizer, error) {
	if e.Bins < 2 {
		return nil, fmt.Errorf("transact: equal-width bins must be >= 2, got %d", e.Bins)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("transact: cannot fit on an empty column")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	cuts := make([]float64, e.Bins-1)
	width := (hi - lo) / float64(e.Bins)
	for i := range cuts {
		cuts[i] = lo + width*float64(i+1)
	}
	return &FittedDiscretizer{Cuts: cuts, Labels: defaultLabels(e.Bins)}, nil
}

// EqualFrequency discretises into bins holding (approximately) the same
// number of column values.
type EqualFrequency struct {
	Bins int
}

// Fit implements Discretizer.
func (e EqualFrequency) Fit(values []float64) (*FittedDiscretizer, error) {
	if e.Bins < 2 {
		return nil, fmt.Errorf("transact: equal-frequency bins must be >= 2, got %d", e.Bins)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("transact: cannot fit on an empty column")
	}
	sorted := append([]float64{}, values...)
	sort.Float64s(sorted)
	cuts := make([]float64, e.Bins-1)
	for i := range cuts {
		idx := (i + 1) * len(sorted) / e.Bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		cuts[i] = sorted[idx]
	}
	return &FittedDiscretizer{Cuts: cuts, Labels: defaultLabels(e.Bins)}, nil
}

// Thresholds is a discretizer with explicit, pre-chosen cut points (domain
// knowledge: "murderRate > 3.2 per 1000 is high").
type Thresholds struct {
	Cuts   []float64
	Labels []string
}

// Fit implements Discretizer: the cuts are fixed, the column is ignored.
func (t Thresholds) Fit([]float64) (*FittedDiscretizer, error) {
	if len(t.Labels) != len(t.Cuts)+1 {
		return nil, fmt.Errorf("transact: thresholds need len(labels) == len(cuts)+1, got %d and %d",
			len(t.Labels), len(t.Cuts))
	}
	for i := 1; i < len(t.Cuts); i++ {
		if t.Cuts[i] <= t.Cuts[i-1] {
			return nil, fmt.Errorf("transact: threshold cuts must be strictly ascending")
		}
	}
	return &FittedDiscretizer{Cuts: t.Cuts, Labels: t.Labels}, nil
}

// DefaultDiscretizer is the tercile low/medium/high equal-frequency
// discretizer the examples use.
func DefaultDiscretizer() Discretizer { return EqualFrequency{Bins: 3} }
