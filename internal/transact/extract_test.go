package transact

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/qsr"
)

// TestPortoAlegreSceneReproducesTable1 is the pipeline's golden test: the
// crafted geometric scene must extract to exactly the paper's Table 1.
func TestPortoAlegreSceneReproducesTable1(t *testing.T) {
	for _, idx := range []IndexKind{RTreeIndex, GridIndex, NoIndex} {
		opts := DefaultOptions()
		opts.Index = idx
		got, err := Extract(dataset.PortoAlegreScene(), opts)
		if err != nil {
			t.Fatalf("index %d: %v", idx, err)
		}
		want := dataset.PortoAlegreTable()
		if got.Len() != want.Len() {
			t.Fatalf("index %d: rows = %d, want %d", idx, got.Len(), want.Len())
		}
		for i := range want.Transactions {
			w, g := want.Transactions[i], got.Transactions[i]
			if w.RefID != g.RefID {
				t.Errorf("index %d row %d: id %q, want %q", idx, i, g.RefID, w.RefID)
				continue
			}
			if !reflect.DeepEqual(w.Items, g.Items) {
				t.Errorf("index %d %s:\n  got  %v\n  want %v", idx, w.RefID, g.Items, w.Items)
			}
		}
	}
}

// smallDataset builds a two-district scene exercising every relation
// family.
func smallDataset() *dataset.Dataset {
	districts := dataset.NewLayer("district")
	districts.Add(dataset.Feature{
		ID: "D1", Geometry: geom.Rect(0, 0, 10, 10),
		Attrs: map[string]dataset.Value{"rate": "high", "pop": 1000.0},
	})
	districts.Add(dataset.Feature{
		ID: "D2", Geometry: geom.Rect(20, 0, 30, 10),
		Attrs: map[string]dataset.Value{"rate": "low", "pop": 200.0},
	})
	rivers := dataset.NewLayer("river")
	rivers.AddGeometry(geom.Line(geom.Pt(-5, 5), geom.Pt(15, 5))) // crosses D1
	schools := dataset.NewLayer("school")
	schools.AddGeometry(geom.Pt(5, 5))  // in D1, far-ish from D2
	schools.AddGeometry(geom.Pt(25, 5)) // in D2
	return &dataset.Dataset{
		Reference:       districts,
		Relevant:        []*dataset.Layer{rivers, schools},
		NonSpatialAttrs: []string{"rate", "pop"},
	}
}

func TestExtractTopological(t *testing.T) {
	table, err := Extract(smallDataset(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d1 := table.Transactions[0]
	if !hasItem(d1.Items, "crosses_river") {
		t.Errorf("D1 items = %v, want crosses_river", d1.Items)
	}
	if !hasItem(d1.Items, "contains_school") {
		t.Errorf("D1 items = %v, want contains_school", d1.Items)
	}
	if !hasItem(d1.Items, "rate=high") {
		t.Errorf("D1 items = %v, want rate=high", d1.Items)
	}
	// Disjoint suppressed by default: D2 has no river predicates.
	d2 := table.Transactions[1]
	for _, it := range d2.Items {
		if strings.Contains(it, "river") {
			t.Errorf("D2 should have no river predicate, got %v", it)
		}
	}
}

func TestExtractIncludeDisjoint(t *testing.T) {
	opts := DefaultOptions()
	opts.IncludeDisjoint = true
	table, err := Extract(smallDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d2 := table.Transactions[1]
	if !hasItem(d2.Items, "disjoint_river") {
		t.Errorf("D2 items = %v, want disjoint_river", d2.Items)
	}
}

func TestExtractDistance(t *testing.T) {
	opts := Options{
		Distance:       true,
		Thresholds:     qsr.DistanceThresholds{VeryCloseMax: 1, CloseMax: 12},
		IncludeFarFrom: true,
		Index:          RTreeIndex,
	}
	table, err := Extract(smallDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d1 := table.Transactions[0]
	// D1 contains school0 (distance 0 -> veryCloseTo) and is 15 from
	// school1 (-> farFrom): the paper's police-center situation where one
	// reference object gets both relations for one feature type.
	if !hasItem(d1.Items, "veryCloseTo_school") {
		t.Errorf("D1 items = %v, want veryCloseTo_school", d1.Items)
	}
	if !hasItem(d1.Items, "farFrom_school") {
		t.Errorf("D1 items = %v, want farFrom_school", d1.Items)
	}
	// Without IncludeFarFrom the far predicate disappears.
	opts.IncludeFarFrom = false
	table, err = Extract(smallDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if hasItem(table.Transactions[0].Items, "farFrom_school") {
		t.Error("farFrom_school present despite IncludeFarFrom=false")
	}
}

func TestExtractDirectional(t *testing.T) {
	opts := Options{Directional: true, Index: RTreeIndex}
	table, err := Extract(smallDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d1 := table.Transactions[0]
	// school1 at (25,5) is east of D1's centroid (5,5).
	if !hasItem(d1.Items, "eastOf_school") {
		t.Errorf("D1 items = %v, want eastOf_school", d1.Items)
	}
	d2 := table.Transactions[1]
	if !hasItem(d2.Items, "westOf_school") {
		t.Errorf("D2 items = %v, want westOf_school", d2.Items)
	}
}

func TestExtractInstanceGranularity(t *testing.T) {
	opts := DefaultOptions()
	opts.Granularity = InstanceLevel
	table, err := Extract(smallDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d1 := table.Transactions[0]
	if !hasItem(d1.Items, "contains_school0") {
		t.Errorf("D1 items = %v, want contains_school0", d1.Items)
	}
	if hasItem(d1.Items, "contains_school") {
		t.Error("type-level predicate leaked into instance granularity")
	}
}

func TestExtractNumericDiscretisation(t *testing.T) {
	table, err := Extract(smallDataset(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// pop 1000 vs 200 under tercile equal-frequency: distinct labels.
	var labels []string
	for _, tx := range table.Transactions {
		for _, it := range tx.Items {
			if strings.HasPrefix(it, "pop=") {
				labels = append(labels, it)
			}
		}
	}
	if len(labels) != 2 || labels[0] == labels[1] {
		t.Errorf("pop labels = %v, want two distinct", labels)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(&dataset.Dataset{}, DefaultOptions()); err == nil {
		t.Error("missing reference layer should fail")
	}
	if _, err := Extract(smallDataset(), Options{}); err == nil {
		t.Error("no relation family should fail")
	}
	opts := DefaultOptions()
	opts.Index = IndexKind(99)
	if _, err := Extract(smallDataset(), opts); err == nil {
		t.Error("unknown index kind should fail")
	}
}

func TestExtractMissingAttrSkipped(t *testing.T) {
	d := smallDataset()
	d.NonSpatialAttrs = append(d.NonSpatialAttrs, "absent")
	table, err := Extract(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range table.Transactions {
		for _, it := range tx.Items {
			if strings.HasPrefix(it, "absent") {
				t.Errorf("absent attribute produced item %q", it)
			}
		}
	}
}

func hasItem(items []string, want string) bool {
	for _, it := range items {
		if it == want {
			return true
		}
	}
	return false
}

func TestExtractIncludeIsA(t *testing.T) {
	opts := DefaultOptions()
	opts.IncludeIsA = true
	table, err := Extract(smallDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range table.Transactions {
		if !hasItem(tx.Items, "is_a_district") {
			t.Errorf("%s missing is_a_district item: %v", tx.RefID, tx.Items)
		}
	}
	// Off by default.
	table, err = Extract(smallDataset(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hasItem(table.Transactions[0].Items, "is_a_district") {
		t.Error("is_a item present without IncludeIsA")
	}
}

// TestTable2SceneReproducesReconstruction: the second golden pipeline
// test — the Table 2 scene extracts to exactly the reconstruction table.
func TestTable2SceneReproducesReconstruction(t *testing.T) {
	got, err := Extract(dataset.Table2ReconstructionScene(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Table2Reconstruction()
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Transactions {
		w, g := want.Transactions[i], got.Transactions[i]
		if w.RefID != g.RefID || !reflect.DeepEqual(w.Items, g.Items) {
			t.Errorf("%s:\n  got  %v\n  want %v", w.RefID, g.Items, w.Items)
		}
	}
}
