package transact

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/qsr"
)

// TestExtractPreparedMatchesUnprepared is the acceptance property of the
// prepared-geometry rework: for every relation family, both granularities,
// and sequential as well as parallel extraction, the prepared refine path
// must produce a byte-identical transaction table to the unprepared one.
func TestExtractPreparedMatchesUnprepared(t *testing.T) {
	d, err := datagen.GenerateScene(datagen.DefaultScene(8, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]Options{
		"topological":  {Topological: true, Index: RTreeIndex},
		"withDisjoint": {Topological: true, IncludeDisjoint: true, Index: GridIndex},
		"distance":     {Distance: true, Thresholds: qsr.DefaultThresholds(10), IncludeFarFrom: true, Index: RTreeIndex},
		"directional":  {Directional: true, Index: NoIndex},
		"all": {
			Topological: true,
			Distance:    true, Thresholds: qsr.DefaultThresholds(10),
			Directional: true,
			IncludeIsA:  true,
			Index:       RTreeIndex,
		},
	}
	for name, base := range families {
		for _, gran := range []Granularity{TypeLevel, InstanceLevel} {
			for _, par := range []int{1, 4} {
				opts := base
				opts.Granularity = gran
				opts.Parallelism = par
				t.Run(fmt.Sprintf("%s/gran=%d/par=%d", name, gran, par), func(t *testing.T) {
					prepared, err := Extract(d, opts)
					if err != nil {
						t.Fatal(err)
					}
					raw := opts
					raw.NoPrepare = true
					unprepared, err := Extract(d, raw)
					if err != nil {
						t.Fatal(err)
					}
					if len(prepared.Transactions) != len(unprepared.Transactions) {
						t.Fatalf("row counts diverge: %d vs %d",
							len(prepared.Transactions), len(unprepared.Transactions))
					}
					for i := range prepared.Transactions {
						p, u := prepared.Transactions[i], unprepared.Transactions[i]
						if p.RefID != u.RefID || !reflect.DeepEqual(p.Items, u.Items) {
							t.Fatalf("row %d diverges:\n prepared   %s %v\n unprepared %s %v",
								i, p.RefID, p.Items, u.RefID, u.Items)
						}
					}
				})
			}
		}
	}
}

// TestExtractRefineCounters pins the new filter-and-refine observability:
// the exact-relate and envelope-skip tallies and the prepared-build stats
// must reach the attached trace.
func TestExtractRefineCounters(t *testing.T) {
	d, err := datagen.GenerateScene(datagen.DefaultScene(8, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Distance = true
	opts.Thresholds = qsr.DefaultThresholds(10)

	tr := obs.New(nil)
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := ExtractContext(ctx, d, opts); err != nil {
		t.Fatal(err)
	}
	if got := tr.Counter("extract.relates"); got == 0 {
		t.Errorf("extract.relates = 0, want > 0 (counters: %v)", tr.Counters())
	}
	if got := tr.Counter("extract.prepared.builds"); got == 0 {
		t.Errorf("extract.prepared.builds = 0, want > 0")
	}
	if got := tr.Counter("extract.prepared.edges"); got == 0 {
		t.Errorf("extract.prepared.edges = 0, want > 0")
	}
	// Envelope short-circuits happen on the scene (distant candidates
	// under the distance family, disjoint envelopes under topological).
	if got := tr.Counter("extract.refine.skipped"); got == 0 {
		t.Errorf("extract.refine.skipped = 0, want > 0 (counters: %v)", tr.Counters())
	}

	// The unprepared path must not report prepared builds.
	tr2 := obs.New(nil)
	raw := opts
	raw.NoPrepare = true
	if _, err := ExtractContext(obs.WithTrace(context.Background(), tr2), d, raw); err != nil {
		t.Fatal(err)
	}
	if got := tr2.Counter("extract.prepared.builds"); got != 0 {
		t.Errorf("NoPrepare extraction reported %d prepared builds", got)
	}
	if got := tr2.Counter("extract.relates"); got == 0 {
		t.Errorf("unprepared extraction must still count relates")
	}
	// Identical work happens on both paths, so the refine tallies agree.
	if a, b := tr.Counter("extract.relates"), tr2.Counter("extract.relates"); a != b {
		t.Errorf("relate counts diverge: prepared %d vs unprepared %d", a, b)
	}
	if a, b := tr.Counter("extract.refine.skipped"), tr2.Counter("extract.refine.skipped"); a != b {
		t.Errorf("skip counts diverge: prepared %d vs unprepared %d", a, b)
	}
}
