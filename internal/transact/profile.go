package transact

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/qsr"
)

// TableProfile summarises a transaction table the way the paper describes
// its experimental datasets: how many spatial predicates over how many
// feature types, how many same-feature pairs, attribute columns, and
// per-item supports. It answers "what will the KC+ filter have to work
// with" before mining.
type TableProfile struct {
	// Transactions is the row count.
	Transactions int
	// SpatialPredicates is the number of distinct spatial predicate
	// items.
	SpatialPredicates int
	// FeatureTypes maps each relevant feature type to its number of
	// distinct relations in the table.
	FeatureTypes map[string]int
	// SameFeaturePairs counts the predicate pairs sharing a feature type
	// — the candidates Apriori-KC+ removes at k=2 (if frequent).
	SameFeaturePairs int
	// Attributes maps each non-spatial attribute to its distinct values.
	Attributes map[string][]string
	// ItemSupport maps every item to its absolute support.
	ItemSupport map[string]int
	// AvgItemsPerRow is the mean transaction length.
	AvgItemsPerRow float64
}

// Profile computes the table profile.
func Profile(t *dataset.Table) *TableProfile {
	p := &TableProfile{
		Transactions: t.Len(),
		FeatureTypes: map[string]int{},
		Attributes:   map[string][]string{},
		ItemSupport:  map[string]int{},
	}
	totalItems := 0
	attrValues := map[string]map[string]struct{}{}
	for _, tx := range t.Transactions {
		totalItems += len(tx.Items)
		for _, it := range tx.Items {
			p.ItemSupport[it]++
		}
	}
	for it := range p.ItemSupport {
		if i := strings.IndexByte(it, '='); i >= 0 {
			name, value := it[:i], it[i+1:]
			if attrValues[name] == nil {
				attrValues[name] = map[string]struct{}{}
			}
			attrValues[name][value] = struct{}{}
			continue
		}
		if pred, err := qsr.ParsePredicate(it); err == nil {
			p.SpatialPredicates++
			p.FeatureTypes[pred.FeatureType]++
		}
	}
	for name, values := range attrValues {
		vs := make([]string, 0, len(values))
		for v := range values {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		p.Attributes[name] = vs
	}
	for _, c := range p.FeatureTypes {
		p.SameFeaturePairs += c * (c - 1) / 2
	}
	if t.Len() > 0 {
		p.AvgItemsPerRow = float64(totalItems) / float64(t.Len())
	}
	return p
}

// Format renders the profile as readable text.
func (p *TableProfile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transactions:        %d\n", p.Transactions)
	fmt.Fprintf(&b, "avg items per row:   %.1f\n", p.AvgItemsPerRow)
	fmt.Fprintf(&b, "spatial predicates:  %d over %d feature types\n",
		p.SpatialPredicates, len(p.FeatureTypes))
	fmt.Fprintf(&b, "same-feature pairs:  %d\n", p.SameFeaturePairs)
	types := make([]string, 0, len(p.FeatureTypes))
	for ft := range p.FeatureTypes {
		types = append(types, ft)
	}
	sort.Strings(types)
	for _, ft := range types {
		fmt.Fprintf(&b, "  %-24s %d relations\n", ft, p.FeatureTypes[ft])
	}
	attrs := make([]string, 0, len(p.Attributes))
	for a := range p.Attributes {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		fmt.Fprintf(&b, "attribute %-16s values %v\n", a, p.Attributes[a])
	}
	return b.String()
}
