package transact

import "fmt"

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case TypeLevel:
		return "type"
	case InstanceLevel:
		return "instance"
	}
	return fmt.Sprintf("transact.Granularity(%d)", int(g))
}

// ParseGranularity inverts Granularity.String.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "type", "":
		return TypeLevel, nil
	case "instance":
		return InstanceLevel, nil
	}
	return 0, fmt.Errorf("transact: unknown granularity %q (want type or instance)", s)
}

// MarshalText implements encoding.TextMarshaler, so a Granularity drops
// into flag.TextVar, JSON, and config decoders.
func (g Granularity) MarshalText() ([]byte, error) {
	switch g {
	case TypeLevel, InstanceLevel:
		return []byte(g.String()), nil
	}
	return nil, fmt.Errorf("transact: cannot marshal unknown granularity %d", int(g))
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseGranularity.
func (g *Granularity) UnmarshalText(text []byte) error {
	parsed, err := ParseGranularity(string(text))
	if err != nil {
		return err
	}
	*g = parsed
	return nil
}

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case RTreeIndex:
		return "rtree"
	case GridIndex:
		return "grid"
	case NoIndex:
		return "none"
	}
	return fmt.Sprintf("transact.IndexKind(%d)", int(k))
}

// ParseIndexKind inverts IndexKind.String.
func ParseIndexKind(s string) (IndexKind, error) {
	switch s {
	case "rtree", "":
		return RTreeIndex, nil
	case "grid":
		return GridIndex, nil
	case "none":
		return NoIndex, nil
	}
	return 0, fmt.Errorf("transact: unknown index kind %q (want rtree, grid, or none)", s)
}

// MarshalText implements encoding.TextMarshaler.
func (k IndexKind) MarshalText() ([]byte, error) {
	switch k {
	case RTreeIndex, GridIndex, NoIndex:
		return []byte(k.String()), nil
	}
	return nil, fmt.Errorf("transact: cannot marshal unknown index kind %d", int(k))
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseIndexKind.
func (k *IndexKind) UnmarshalText(text []byte) error {
	parsed, err := ParseIndexKind(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}
