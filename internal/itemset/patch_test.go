package itemset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// tableOf builds a table from item lists.
func tableOf(rows ...[]string) *dataset.Table {
	txs := make([]dataset.Transaction, len(rows))
	for i, items := range rows {
		txs[i] = dataset.Transaction{RefID: fmt.Sprintf("r%d", i), Items: items}
	}
	return dataset.NewTable(txs)
}

// assertSupportsMatch compares every single-item support (and a few
// pairs) of the patched DB against a freshly interned oracle DB over the
// same rows.
func assertSupportsMatch(t *testing.T, patched *DB, rows [][]string) {
	t.Helper()
	oracle := NewDB(tableOf(rows...))
	if got, want := len(patched.Rows), len(oracle.Rows); got != want {
		t.Fatalf("row count %d, want %d", got, want)
	}
	for i := range oracle.Rows {
		// Interning order differs between the DBs, so compare by name.
		gotNames := append([]string{}, patched.Rows[i].Names(patched.Dict)...)
		wantNames := append([]string{}, oracle.Rows[i].Names(oracle.Dict)...)
		sort.Strings(gotNames)
		sort.Strings(wantNames)
		if fmt.Sprint(gotNames) != fmt.Sprint(wantNames) {
			t.Fatalf("row %d = %v, want %v", i, gotNames, wantNames)
		}
	}
	// Every item's vertical support must equal the oracle's.
	for name, wantID := range dictNames(oracle.Dict) {
		gotID, ok := patched.Dict.Lookup(name)
		if !ok {
			t.Fatalf("item %q missing from patched dictionary", name)
		}
		got := patched.SupportVertical(NewItemset(gotID))
		want := oracle.SupportVertical(NewItemset(wantID))
		if got != want {
			t.Errorf("support(%q) = %d, want %d", name, got, want)
		}
	}
}

// dictNames enumerates every interned name with its ID.
func dictNames(d *Dictionary) map[string]int32 {
	out := make(map[string]int32, d.Len())
	for id := int32(0); int(id) < d.Len(); id++ {
		out[d.Name(id)] = id
	}
	return out
}

func TestApplyDeltaInPlace(t *testing.T) {
	rows := [][]string{
		{"a", "b", "c"},
		{"a", "c"},
		{"b", "d"},
		{"a", "d"},
	}
	db := NewDB(tableOf(rows...))
	db.BuildTidsets()

	// Update row 1, update row 2 with a brand-new item, append row 4.
	next := [][]string{
		{"a", "b", "c"},
		{"b", "c"},
		{"b", "e"},
		{"a", "d"},
		{"a", "e"},
	}
	stats := db.ApplyDelta([]int{0, 1, 2, 3, -1}, []RowEdit{
		{Row: 1, Items: next[1]},
		{Row: 2, Items: next[2]},
		{Row: 4, Items: next[4]},
	})
	if stats.Rebuilt {
		t.Fatalf("identity+append shape should patch in place, got rebuild")
	}
	if stats.TidsetsPatched == 0 {
		t.Fatalf("expected bit flips, got none")
	}
	assertSupportsMatch(t, db, next)
}

func TestApplyDeltaRebuildOnDeletion(t *testing.T) {
	rows := [][]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	db := NewDB(tableOf(rows...))
	db.BuildTidsets()

	// Delete row 1: rows shift, forcing a rebuild.
	next := [][]string{{"a", "b"}, {"a", "c"}}
	stats := db.ApplyDelta([]int{0, 2}, nil)
	if !stats.Rebuilt {
		t.Fatalf("row deletion must rebuild tidsets")
	}
	assertSupportsMatch(t, db, next)
}

func TestApplyDeltaWithoutTidsets(t *testing.T) {
	rows := [][]string{{"a", "b"}, {"b", "c"}}
	db := NewDB(tableOf(rows...))
	// No BuildTidsets: patching only swaps rows; vertical support still
	// works afterwards via the lazy build.
	next := [][]string{{"a", "b"}, {"b", "d"}}
	stats := db.ApplyDelta([]int{0, 1}, []RowEdit{{Row: 1, Items: next[1]}})
	if stats.Rebuilt || stats.TidsetsPatched != 0 {
		t.Fatalf("no-tidset patch should be free, got %+v", stats)
	}
	assertSupportsMatch(t, db, next)
}

func TestApplyDeltaRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	randomRow := func() []string {
		var items []string
		for _, it := range alphabet {
			if rng.Float64() < 0.4 {
				items = append(items, it)
			}
		}
		return items
	}
	rows := make([][]string, 20)
	for i := range rows {
		rows[i] = randomRow()
	}
	db := NewDB(tableOf(rows...))
	db.BuildTidsets()

	for step := 0; step < 25; step++ {
		var newFromOld []int
		var next [][]string
		var edits []RowEdit
		switch rng.Intn(3) {
		case 0: // edit a random row in place
			newFromOld = identity(len(rows))
			next = append([][]string{}, rows...)
			r := rng.Intn(len(rows))
			next[r] = randomRow()
			edits = []RowEdit{{Row: r, Items: next[r]}}
		case 1: // append a row
			newFromOld = append(identity(len(rows)), -1)
			next = append(append([][]string{}, rows...), randomRow())
			edits = []RowEdit{{Row: len(rows), Items: next[len(rows)]}}
		default: // delete a random row
			if len(rows) < 3 {
				continue
			}
			r := rng.Intn(len(rows))
			for old := range rows {
				if old == r {
					continue
				}
				newFromOld = append(newFromOld, old)
				next = append(next, rows[old])
			}
		}
		db.ApplyDelta(newFromOld, edits)
		assertSupportsMatch(t, db, next)
		rows = next
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
