// Package itemset provides the frequent-pattern plumbing shared by the
// mining algorithms: an interning dictionary that knows each item's
// semantics (spatial predicate with its feature type, or non-spatial
// attribute), sorted integer itemsets with the Apriori join, and a
// transaction database with both horizontal (row-scan) and vertical
// (bitmap tidset) support counting.
package itemset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/qsr"
)

// Kind classifies an item.
type Kind int

// Item kinds.
const (
	// KindNonSpatial marks attribute items ("murderRate=high").
	KindNonSpatial Kind = iota
	// KindSpatial marks qualitative spatial predicates ("contains_slum").
	KindSpatial
)

// Meta is the semantic information attached to an interned item. The
// Apriori-KC+ filter consumes FeatureType; everything else is labeling.
type Meta struct {
	// Name is the item string.
	Name string
	// Kind distinguishes spatial predicates from attribute items.
	Kind Kind
	// FeatureType is the relevant feature type for spatial predicates
	// ("slum" in "contains_slum"), empty for non-spatial items.
	FeatureType string
	// Relation is the qualitative relation of spatial predicates.
	Relation qsr.Relation
}

// Dictionary interns item strings to dense int32 IDs and keeps their
// metadata. IDs are assigned in first-seen order.
type Dictionary struct {
	byName map[string]int32
	metas  []Meta
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]int32)}
}

// Intern returns the ID for name, assigning one on first sight. Spatial
// predicate semantics are parsed from the name: anything of the form
// "<relation>_<featureType>" with a known relation is spatial; everything
// else (notably "attr=value" items) is non-spatial.
func (d *Dictionary) Intern(name string) int32 {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := int32(len(d.metas))
	meta := Meta{Name: name, Kind: KindNonSpatial}
	if !strings.ContainsRune(name, '=') {
		if p, err := qsr.ParsePredicate(name); err == nil {
			meta.Kind = KindSpatial
			meta.FeatureType = p.FeatureType
			meta.Relation = p.Relation
		}
	}
	d.byName[name] = id
	d.metas = append(d.metas, meta)
	return id
}

// Lookup returns the ID for name without interning.
func (d *Dictionary) Lookup(name string) (int32, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Meta returns the metadata of an interned item.
func (d *Dictionary) Meta(id int32) Meta { return d.metas[id] }

// Name returns the item string of an interned item.
func (d *Dictionary) Name(id int32) string { return d.metas[id].Name }

// Len reports the number of interned items.
func (d *Dictionary) Len() int { return len(d.metas) }

// SameFeatureType reports whether two items are spatial predicates over
// the same relevant feature type — the Apriori-KC+ pruning condition.
func (d *Dictionary) SameFeatureType(a, b int32) bool {
	ma, mb := d.metas[a], d.metas[b]
	return ma.Kind == KindSpatial && mb.Kind == KindSpatial &&
		ma.FeatureType == mb.FeatureType
}

// Itemset is a set of interned items, sorted ascending. The zero value is
// the empty set.
type Itemset []int32

// NewItemset builds a normalised itemset from IDs.
func NewItemset(ids ...int32) Itemset {
	s := append(Itemset{}, ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	j := 0
	for i, v := range s {
		if i == 0 || v != s[j-1] {
			s[j] = v
			j++
		}
	}
	return s[:j]
}

// FromNames interns the names and builds the itemset.
func FromNames(d *Dictionary, names ...string) Itemset {
	ids := make([]int32, len(names))
	for i, n := range names {
		ids[i] = d.Intern(n)
	}
	return NewItemset(ids...)
}

// Equal reports element-wise equality.
func (s Itemset) Equal(o Itemset) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether s is a superset of sub (both sorted).
func (s Itemset) ContainsAll(sub Itemset) bool {
	i := 0
	for _, v := range sub {
		for i < len(s) && s[i] < v {
			i++
		}
		if i >= len(s) || s[i] != v {
			return false
		}
		i++
	}
	return true
}

// Contains reports membership of a single item.
func (s Itemset) Contains(id int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Without returns a copy of s with the item at index idx removed.
func (s Itemset) Without(idx int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:idx]...)
	return append(out, s[idx+1:]...)
}

// Union returns the sorted union of two itemsets.
func (s Itemset) Union(o Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	return append(out, o[j:]...)
}

// Minus returns s with all members of o removed.
func (s Itemset) Minus(o Itemset) Itemset {
	out := make(Itemset, 0, len(s))
	for _, v := range s {
		if !o.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// JoinPrefix implements the Apriori join: if s and o have length k-1,
// share their first k-2 items, and s's last item is smaller than o's, the
// join is their k-item union. ok is false otherwise.
func (s Itemset) JoinPrefix(o Itemset) (Itemset, bool) {
	n := len(s)
	if n == 0 || len(o) != n {
		return nil, false
	}
	for i := 0; i < n-1; i++ {
		if s[i] != o[i] {
			return nil, false
		}
	}
	if s[n-1] >= o[n-1] {
		return nil, false
	}
	out := make(Itemset, n+1)
	copy(out, s)
	out[n] = o[n-1]
	return out, true
}

// Key returns a compact map key for the itemset.
func (s Itemset) Key() string {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// Names renders the member item strings.
func (s Itemset) Names(d *Dictionary) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = d.Name(id)
	}
	return out
}

// Format renders the paper's itemset notation: "{a, b, c}".
func (s Itemset) Format(d *Dictionary) string {
	return "{" + strings.Join(s.Names(d), ", ") + "}"
}

// HasSameFeaturePair reports whether the itemset contains two spatial
// predicates over the same feature type — the property that makes a
// pattern "meaningless" in the paper's sense.
func (s Itemset) HasSameFeaturePair(d *Dictionary) bool {
	seen := make(map[string]struct{}, len(s))
	for _, id := range s {
		m := d.Meta(id)
		if m.Kind != KindSpatial {
			continue
		}
		if _, dup := seen[m.FeatureType]; dup {
			return true
		}
		seen[m.FeatureType] = struct{}{}
	}
	return false
}

// DB is a transaction database ready for mining: interned sorted rows plus
// lazily built vertical bitmaps.
type DB struct {
	Dict *Dictionary
	// Rows hold each transaction's sorted item IDs.
	Rows []Itemset
	// tidsetsOnce guards the one-time construction of tidsets, so the
	// lazy vertical build is safe when goroutines race to the first use.
	tidsetsOnce sync.Once
	// tidsets[i] is the bitmap of rows containing item i; nil until
	// BuildTidsets runs.
	tidsets []bitset
}

// NewDB interns a dataset table into a mining-ready database.
func NewDB(t *dataset.Table) *DB {
	db := &DB{Dict: NewDictionary()}
	for _, tx := range t.Transactions {
		ids := make([]int32, len(tx.Items))
		for i, name := range tx.Items {
			ids[i] = db.Dict.Intern(name)
		}
		db.Rows = append(db.Rows, NewItemset(ids...))
	}
	return db
}

// NumTransactions reports the number of rows.
func (db *DB) NumTransactions() int { return len(db.Rows) }

// BuildTidsets materialises the vertical representation. Idempotent and
// safe for concurrent use: racing goroutines block until the single
// build completes, then share the read-only bitmaps.
func (db *DB) BuildTidsets() {
	db.tidsetsOnce.Do(db.buildTidsets)
}

func (db *DB) buildTidsets() {
	tidsets := make([]bitset, db.Dict.Len())
	words := (len(db.Rows) + 63) / 64
	for i := range tidsets {
		tidsets[i] = make(bitset, words)
	}
	for row, items := range db.Rows {
		for _, id := range items {
			tidsets[id].set(row)
		}
	}
	db.tidsets = tidsets
}

// Tidset returns the bitmap of rows containing the item, building the
// vertical representation on first use (safe for concurrent use).
func (db *DB) Tidset(id int32) []uint64 {
	db.BuildTidsets()
	return db.tidsets[id]
}

// SupportHorizontal counts rows containing every item of s by scanning.
func (db *DB) SupportHorizontal(s Itemset) int {
	count := 0
	for _, row := range db.Rows {
		if row.ContainsAll(s) {
			count++
		}
	}
	return count
}

// SupportVertical counts rows containing every item of s by intersecting
// the member tidsets, building the vertical representation on first use
// (safe for concurrent use). For bulk counting over a sorted candidate
// stream, NewVerticalCounter is both allocation-free and prefix-cached.
func (db *DB) SupportVertical(s Itemset) int {
	if len(s) == 0 {
		return len(db.Rows)
	}
	db.BuildTidsets()
	if len(s) == 1 {
		return db.tidsets[s[0]].count()
	}
	if len(s) == 2 {
		return andCount(db.tidsets[s[0]], db.tidsets[s[1]])
	}
	acc := append(bitset{}, db.tidsets[s[0]]...)
	for _, id := range s[1 : len(s)-1] {
		acc.and(db.tidsets[id])
	}
	return andCount(acc, db.tidsets[s[len(s)-1]])
}

// VerticalCounter computes candidate supports against one DB with a
// prefix-intersection cache and pooled buffers. Candidates produced by
// the Apriori join arrive sorted, so consecutive k-candidates share a
// (k-1)-prefix; the counter keeps one intersection bitmap per prefix
// depth and re-intersects only the suffix that changed, finishing with a
// popcount-only AND of the final item's tidset. Steady-state counting is
// allocation-free. A counter is not safe for concurrent use; give each
// goroutine its own (they share the DB's read-only tidsets).
type VerticalCounter struct {
	db    *DB
	words int
	// prefix is the candidate prefix the layers were built for.
	prefix Itemset
	// layers[d] is the intersection of the tidsets of prefix[0..d],
	// materialised for d >= 1 (depth 0 reads the item tidset directly).
	layers []bitset
}

// NewVerticalCounter builds the vertical representation if needed and
// returns a fresh counter; constructing counters concurrently on a
// fresh DB is safe (the first build is synchronised).
func (db *DB) NewVerticalCounter() *VerticalCounter {
	db.BuildTidsets()
	return &VerticalCounter{db: db, words: (len(db.Rows) + 63) / 64}
}

// Support counts the rows containing every item of s. Calling it with a
// sorted candidate stream reuses the shared-prefix intersections across
// calls; arbitrary orders stay correct, merely uncached.
func (c *VerticalCounter) Support(s Itemset) int {
	k := len(s)
	tids := c.db.tidsets
	switch k {
	case 0:
		return len(c.db.Rows)
	case 1:
		return tids[s[0]].count()
	case 2:
		return andCount(tids[s[0]], tids[s[1]])
	}
	// Longest prefix (up to k-1 items) still valid from the last call.
	p := 0
	for p < len(c.prefix) && p < k-1 && c.prefix[p] == s[p] {
		p++
	}
	for len(c.layers) < k-1 {
		c.layers = append(c.layers, make(bitset, c.words))
	}
	// layers[d] depends on s[0..d]: rebuild depths p..k-2 (depth 0 is
	// the raw tidset, so rebuilding starts at 1 at the earliest).
	start := p
	if start < 1 {
		start = 1
	}
	for d := start; d <= k-2; d++ {
		if d == 1 {
			andInto(c.layers[1], tids[s[0]], tids[s[1]])
		} else {
			andInto(c.layers[d], c.layers[d-1], tids[s[d]])
		}
	}
	c.prefix = append(c.prefix[:0], s[:k-1]...)
	return andCount(c.layers[k-2], tids[s[k-1]])
}

// ProjectRows returns the rows with every item id for which keep[id] is
// false removed, preserving row indices (a fully pruned row becomes the
// empty set, keeping tid alignment). All surviving items share one
// backing array, so the projection costs one allocation plus the
// headers. Rows shorter than the current pass's k can then be skipped by
// horizontal counting — no k-candidate fits in them.
func (db *DB) ProjectRows(keep []bool) []Itemset {
	total := 0
	for _, row := range db.Rows {
		for _, id := range row {
			if keep[id] {
				total++
			}
		}
	}
	backing := make([]int32, 0, total)
	out := make([]Itemset, len(db.Rows))
	for i, row := range db.Rows {
		start := len(backing)
		for _, id := range row {
			if keep[id] {
				backing = append(backing, id)
			}
		}
		out[i] = Itemset(backing[start:len(backing):len(backing)])
	}
	return out
}

// ItemCounts returns the per-item support counts in one pass, the
// workhorse of the first Apriori pass.
func (db *DB) ItemCounts() []int {
	counts := make([]int, db.Dict.Len())
	for _, row := range db.Rows {
		for _, id := range row {
			counts[id]++
		}
	}
	return counts
}

// String renders a compact summary for debugging.
func (db *DB) String() string {
	return fmt.Sprintf("itemset.DB{%d rows, %d items}", len(db.Rows), db.Dict.Len())
}
