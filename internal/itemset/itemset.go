// Package itemset provides the frequent-pattern plumbing shared by the
// mining algorithms: an interning dictionary that knows each item's
// semantics (spatial predicate with its feature type, or non-spatial
// attribute), sorted integer itemsets with the Apriori join, and a
// transaction database with both horizontal (row-scan) and vertical
// (bitmap tidset) support counting.
package itemset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/qsr"
)

// Kind classifies an item.
type Kind int

// Item kinds.
const (
	// KindNonSpatial marks attribute items ("murderRate=high").
	KindNonSpatial Kind = iota
	// KindSpatial marks qualitative spatial predicates ("contains_slum").
	KindSpatial
)

// Meta is the semantic information attached to an interned item. The
// Apriori-KC+ filter consumes FeatureType; everything else is labeling.
type Meta struct {
	// Name is the item string.
	Name string
	// Kind distinguishes spatial predicates from attribute items.
	Kind Kind
	// FeatureType is the relevant feature type for spatial predicates
	// ("slum" in "contains_slum"), empty for non-spatial items.
	FeatureType string
	// Relation is the qualitative relation of spatial predicates.
	Relation qsr.Relation
}

// Dictionary interns item strings to dense int32 IDs and keeps their
// metadata. IDs are assigned in first-seen order.
type Dictionary struct {
	byName map[string]int32
	metas  []Meta
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]int32)}
}

// Intern returns the ID for name, assigning one on first sight. Spatial
// predicate semantics are parsed from the name: anything of the form
// "<relation>_<featureType>" with a known relation is spatial; everything
// else (notably "attr=value" items) is non-spatial.
func (d *Dictionary) Intern(name string) int32 {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := int32(len(d.metas))
	meta := Meta{Name: name, Kind: KindNonSpatial}
	if !strings.ContainsRune(name, '=') {
		if p, err := qsr.ParsePredicate(name); err == nil {
			meta.Kind = KindSpatial
			meta.FeatureType = p.FeatureType
			meta.Relation = p.Relation
		}
	}
	d.byName[name] = id
	d.metas = append(d.metas, meta)
	return id
}

// Lookup returns the ID for name without interning.
func (d *Dictionary) Lookup(name string) (int32, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Meta returns the metadata of an interned item.
func (d *Dictionary) Meta(id int32) Meta { return d.metas[id] }

// Name returns the item string of an interned item.
func (d *Dictionary) Name(id int32) string { return d.metas[id].Name }

// Len reports the number of interned items.
func (d *Dictionary) Len() int { return len(d.metas) }

// SameFeatureType reports whether two items are spatial predicates over
// the same relevant feature type — the Apriori-KC+ pruning condition.
func (d *Dictionary) SameFeatureType(a, b int32) bool {
	ma, mb := d.metas[a], d.metas[b]
	return ma.Kind == KindSpatial && mb.Kind == KindSpatial &&
		ma.FeatureType == mb.FeatureType
}

// Itemset is a set of interned items, sorted ascending. The zero value is
// the empty set.
type Itemset []int32

// NewItemset builds a normalised itemset from IDs.
func NewItemset(ids ...int32) Itemset {
	s := append(Itemset{}, ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	j := 0
	for i, v := range s {
		if i == 0 || v != s[j-1] {
			s[j] = v
			j++
		}
	}
	return s[:j]
}

// FromNames interns the names and builds the itemset.
func FromNames(d *Dictionary, names ...string) Itemset {
	ids := make([]int32, len(names))
	for i, n := range names {
		ids[i] = d.Intern(n)
	}
	return NewItemset(ids...)
}

// Equal reports element-wise equality.
func (s Itemset) Equal(o Itemset) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether s is a superset of sub (both sorted).
func (s Itemset) ContainsAll(sub Itemset) bool {
	i := 0
	for _, v := range sub {
		for i < len(s) && s[i] < v {
			i++
		}
		if i >= len(s) || s[i] != v {
			return false
		}
		i++
	}
	return true
}

// Contains reports membership of a single item.
func (s Itemset) Contains(id int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Without returns a copy of s with the item at index idx removed.
func (s Itemset) Without(idx int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:idx]...)
	return append(out, s[idx+1:]...)
}

// Union returns the sorted union of two itemsets.
func (s Itemset) Union(o Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	return append(out, o[j:]...)
}

// Minus returns s with all members of o removed.
func (s Itemset) Minus(o Itemset) Itemset {
	out := make(Itemset, 0, len(s))
	for _, v := range s {
		if !o.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// JoinPrefix implements the Apriori join: if s and o have length k-1,
// share their first k-2 items, and s's last item is smaller than o's, the
// join is their k-item union. ok is false otherwise.
func (s Itemset) JoinPrefix(o Itemset) (Itemset, bool) {
	n := len(s)
	if n == 0 || len(o) != n {
		return nil, false
	}
	for i := 0; i < n-1; i++ {
		if s[i] != o[i] {
			return nil, false
		}
	}
	if s[n-1] >= o[n-1] {
		return nil, false
	}
	out := make(Itemset, n+1)
	copy(out, s)
	out[n] = o[n-1]
	return out, true
}

// Key returns a compact map key for the itemset.
func (s Itemset) Key() string {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// Names renders the member item strings.
func (s Itemset) Names(d *Dictionary) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = d.Name(id)
	}
	return out
}

// Format renders the paper's itemset notation: "{a, b, c}".
func (s Itemset) Format(d *Dictionary) string {
	return "{" + strings.Join(s.Names(d), ", ") + "}"
}

// HasSameFeaturePair reports whether the itemset contains two spatial
// predicates over the same feature type — the property that makes a
// pattern "meaningless" in the paper's sense.
func (s Itemset) HasSameFeaturePair(d *Dictionary) bool {
	seen := make(map[string]struct{}, len(s))
	for _, id := range s {
		m := d.Meta(id)
		if m.Kind != KindSpatial {
			continue
		}
		if _, dup := seen[m.FeatureType]; dup {
			return true
		}
		seen[m.FeatureType] = struct{}{}
	}
	return false
}

// DB is a transaction database ready for mining: interned sorted rows plus
// lazily built vertical bitmaps.
type DB struct {
	Dict *Dictionary
	// Rows hold each transaction's sorted item IDs.
	Rows []Itemset
	// tidsets[i] is the bitmap of rows containing item i; nil until
	// BuildTidsets runs.
	tidsets []bitset
}

// NewDB interns a dataset table into a mining-ready database.
func NewDB(t *dataset.Table) *DB {
	db := &DB{Dict: NewDictionary()}
	for _, tx := range t.Transactions {
		ids := make([]int32, len(tx.Items))
		for i, name := range tx.Items {
			ids[i] = db.Dict.Intern(name)
		}
		db.Rows = append(db.Rows, NewItemset(ids...))
	}
	return db
}

// NumTransactions reports the number of rows.
func (db *DB) NumTransactions() int { return len(db.Rows) }

// BuildTidsets materialises the vertical representation. Idempotent.
func (db *DB) BuildTidsets() {
	if db.tidsets != nil {
		return
	}
	db.tidsets = make([]bitset, db.Dict.Len())
	words := (len(db.Rows) + 63) / 64
	for i := range db.tidsets {
		db.tidsets[i] = make(bitset, words)
	}
	for row, items := range db.Rows {
		for _, id := range items {
			db.tidsets[id].set(row)
		}
	}
}

// Tidset returns the bitmap of rows containing the item. BuildTidsets must
// have run.
func (db *DB) Tidset(id int32) []uint64 {
	if db.tidsets == nil {
		panic("itemset: Tidset called before BuildTidsets")
	}
	return db.tidsets[id]
}

// SupportHorizontal counts rows containing every item of s by scanning.
func (db *DB) SupportHorizontal(s Itemset) int {
	count := 0
	for _, row := range db.Rows {
		if row.ContainsAll(s) {
			count++
		}
	}
	return count
}

// SupportVertical counts rows containing every item of s by intersecting
// the member tidsets. BuildTidsets must have run.
func (db *DB) SupportVertical(s Itemset) int {
	if len(s) == 0 {
		return len(db.Rows)
	}
	if db.tidsets == nil {
		panic("itemset: SupportVertical called before BuildTidsets")
	}
	acc := append(bitset{}, db.tidsets[s[0]]...)
	for _, id := range s[1:] {
		acc.and(db.tidsets[id])
	}
	return acc.count()
}

// ItemCounts returns the per-item support counts in one pass, the
// workhorse of the first Apriori pass.
func (db *DB) ItemCounts() []int {
	counts := make([]int, db.Dict.Len())
	for _, row := range db.Rows {
		for _, id := range row {
			counts[id]++
		}
	}
	return counts
}

// String renders a compact summary for debugging.
func (db *DB) String() string {
	return fmt.Sprintf("itemset.DB{%d rows, %d items}", len(db.Rows), db.Dict.Len())
}
