package itemset

// RowEdit names the new content of one transaction row in a patched
// database: Row indexes the successor row numbering, Items is the row's
// complete new item list (normalisation is not required; items are
// interned and sorted here).
type RowEdit struct {
	Row   int
	Items []string
}

// PatchStats reports what ApplyDelta did to the vertical representation.
type PatchStats struct {
	// TidsetsPatched counts individual (item, row) bit flips applied to
	// the existing bitmaps — the "tidsets patched in place" signal.
	TidsetsPatched int
	// Rebuilt is set when the row set changed shape (deletions or
	// moves), forcing a full tidset rebuild instead of in-place patching.
	Rebuilt bool
}

// ApplyDelta restructures the database to a successor transaction table
// without re-interning unchanged rows: newFromOld maps every successor
// row index to its predecessor row index (-1 for rows that did not exist
// before), and edits carries the new items of each row whose content
// changed (which must include every newFromOld[j] == -1 row). Rows not
// named by an edit keep their interned Itemset by reference.
//
// New item names are interned into the existing dictionary, so all
// previously assigned IDs — and therefore all previously mined itemsets
// — remain valid against the patched database.
//
// When the vertical representation has been built, it is maintained:
// pure in-place updates (and appends) flip only the affected bits;
// deletions or row moves rebuild the bitmaps. A database that never
// built tidsets pays nothing here and builds them lazily as before.
//
// Not safe for concurrent use with readers of the same DB; callers
// serialise patching against mining.
func (db *DB) ApplyDelta(newFromOld []int, edits []RowEdit) PatchStats {
	var stats PatchStats
	oldRows := db.Rows

	// Classify the shape: identity-with-appends keeps every surviving
	// old row at its index and only appends new rows at the tail.
	inPlace := len(newFromOld) >= len(oldRows)
	if inPlace {
		for j, old := range newFromOld {
			if j < len(oldRows) {
				if old != j {
					inPlace = false
					break
				}
			} else if old != -1 {
				inPlace = false
				break
			}
		}
	}

	newRows := make([]Itemset, len(newFromOld))
	for j, old := range newFromOld {
		if old >= 0 {
			newRows[j] = oldRows[old]
		}
	}
	for _, e := range edits {
		ids := make([]int32, len(e.Items))
		for i, name := range e.Items {
			ids[i] = db.Dict.Intern(name)
		}
		newRows[e.Row] = NewItemset(ids...)
	}

	if db.tidsets == nil {
		// Vertical representation never built: nothing to maintain.
		db.Rows = newRows
		return stats
	}

	if !inPlace {
		db.Rows = newRows
		db.buildTidsets()
		stats.Rebuilt = true
		return stats
	}

	// In-place patch. Grow the bitmaps to the new row count and item
	// count first, then flip exactly the bits that changed.
	words := (len(newRows) + 63) / 64
	for i := range db.tidsets {
		for len(db.tidsets[i]) < words {
			db.tidsets[i] = append(db.tidsets[i], 0)
		}
	}
	for db.Dict.Len() > len(db.tidsets) {
		db.tidsets = append(db.tidsets, make(bitset, words))
	}
	for _, e := range edits {
		var old Itemset
		if e.Row < len(oldRows) {
			old = oldRows[e.Row]
		}
		stats.TidsetsPatched += db.patchRow(e.Row, old, newRows[e.Row])
	}
	db.Rows = newRows
	return stats
}

// patchRow flips the tidset bits of one row from its old itemset to its
// new one, returning the number of flips. Both sets are sorted.
func (db *DB) patchRow(row int, old, new Itemset) int {
	flips := 0
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		switch {
		case j >= len(new) || (i < len(old) && old[i] < new[j]):
			db.tidsets[old[i]].clear(row)
			flips++
			i++
		case i >= len(old) || new[j] < old[i]:
			db.tidsets[new[j]].set(row)
			flips++
			j++
		default: // equal: bit already correct
			i++
			j++
		}
	}
	return flips
}
