package itemset

import "math/bits"

// bitset is a fixed-width bitmap over transaction row indices.
type bitset []uint64

// set marks row i.
func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }

// clear unmarks row i.
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

// get reports whether row i is marked.
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// and intersects b with o in place. Lengths must match.
func (b bitset) and(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// andInto sets dst = a & b. All lengths must match.
func andInto(dst, a, b bitset) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// andNotInto sets dst = a &^ b. All lengths must match.
func andNotInto(dst, a, b bitset) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

// andCount returns popcount(a & b) without materialising the
// intersection — the final AND of a cached-prefix support count.
func andCount(a, b bitset) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}
