package itemset

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/qsr"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("contains_slum")
	b := d.Intern("murderRate=high")
	if a2 := d.Intern("contains_slum"); a2 != a {
		t.Error("re-intern must return the same ID")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	ma := d.Meta(a)
	if ma.Kind != KindSpatial || ma.FeatureType != "slum" || ma.Relation != qsr.Contains {
		t.Errorf("spatial meta = %+v", ma)
	}
	mb := d.Meta(b)
	if mb.Kind != KindNonSpatial || mb.FeatureType != "" {
		t.Errorf("non-spatial meta = %+v", mb)
	}
	if d.Name(a) != "contains_slum" {
		t.Errorf("Name = %q", d.Name(a))
	}
	if _, ok := d.Lookup("contains_slum"); !ok {
		t.Error("Lookup known item failed")
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Error("Lookup unknown item succeeded")
	}
	// An item that looks predicate-ish but has an unknown relation is
	// non-spatial.
	c := d.Intern("is_a_District")
	if d.Meta(c).Kind != KindNonSpatial {
		t.Error("unknown relation should not be spatial")
	}
}

func TestDictionarySameFeatureType(t *testing.T) {
	d := NewDictionary()
	cs := d.Intern("contains_slum")
	ts := d.Intern("touches_slum")
	csch := d.Intern("contains_school")
	attr := d.Intern("murderRate=high")
	if !d.SameFeatureType(cs, ts) {
		t.Error("contains_slum/touches_slum must share feature type")
	}
	if d.SameFeatureType(cs, csch) {
		t.Error("slum/school must not share feature type")
	}
	if d.SameFeatureType(cs, attr) || d.SameFeatureType(attr, attr) {
		t.Error("non-spatial items never share a feature type")
	}
}

func TestNewItemsetNormalises(t *testing.T) {
	s := NewItemset(3, 1, 2, 1, 3)
	if !s.Equal(Itemset{1, 2, 3}) {
		t.Errorf("NewItemset = %v", s)
	}
	if len(NewItemset()) != 0 {
		t.Error("empty construction")
	}
}

func TestItemsetOps(t *testing.T) {
	s := Itemset{1, 3, 5}
	if !s.ContainsAll(Itemset{1, 5}) || !s.ContainsAll(nil) {
		t.Error("ContainsAll positives failed")
	}
	if s.ContainsAll(Itemset{1, 2}) || s.ContainsAll(Itemset{1, 3, 5, 7}) {
		t.Error("ContainsAll negatives failed")
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if got := s.Without(1); !got.Equal(Itemset{1, 5}) {
		t.Errorf("Without = %v", got)
	}
	if got := s.Union(Itemset{2, 3, 9}); !got.Equal(Itemset{1, 2, 3, 5, 9}) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Minus(Itemset{3}); !got.Equal(Itemset{1, 5}) {
		t.Errorf("Minus = %v", got)
	}
}

func TestJoinPrefix(t *testing.T) {
	a := Itemset{1, 2, 3}
	b := Itemset{1, 2, 5}
	joined, ok := a.JoinPrefix(b)
	if !ok || !joined.Equal(Itemset{1, 2, 3, 5}) {
		t.Errorf("JoinPrefix = %v, %v", joined, ok)
	}
	// Reversed order fails (last item not smaller).
	if _, ok := b.JoinPrefix(a); ok {
		t.Error("reversed join should fail")
	}
	// Different prefixes fail.
	if _, ok := a.JoinPrefix(Itemset{1, 4, 5}); ok {
		t.Error("prefix mismatch should fail")
	}
	// Length mismatch fails.
	if _, ok := a.JoinPrefix(Itemset{1, 2}); ok {
		t.Error("length mismatch should fail")
	}
	if _, ok := (Itemset{}).JoinPrefix(Itemset{}); ok {
		t.Error("empty join should fail")
	}
	// Size-1 join.
	j, ok := (Itemset{1}).JoinPrefix(Itemset{2})
	if !ok || !j.Equal(Itemset{1, 2}) {
		t.Errorf("1-item join = %v, %v", j, ok)
	}
}

func TestItemsetKeyUnique(t *testing.T) {
	f := func(a, b []int32) bool {
		sa, sb := NewItemset(a...), NewItemset(b...)
		return (sa.Key() == sb.Key()) == sa.Equal(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestItemsetFormat(t *testing.T) {
	d := NewDictionary()
	s := FromNames(d, "contains_slum", "murderRate=high")
	got := s.Format(d)
	if got != "{contains_slum, murderRate=high}" && got != "{murderRate=high, contains_slum}" {
		t.Errorf("Format = %q", got)
	}
	names := s.Names(d)
	if len(names) != 2 {
		t.Errorf("Names = %v", names)
	}
}

func TestHasSameFeaturePair(t *testing.T) {
	d := NewDictionary()
	withPair := FromNames(d, "contains_slum", "touches_slum", "murderRate=high")
	if !withPair.HasSameFeaturePair(d) {
		t.Error("slum pair not detected")
	}
	without := FromNames(d, "contains_slum", "touches_school", "murderRate=high")
	if without.HasSameFeaturePair(d) {
		t.Error("false positive on distinct feature types")
	}
	attrsOnly := FromNames(d, "murderRate=high", "theftRate=low")
	if attrsOnly.HasSameFeaturePair(d) {
		t.Error("non-spatial items can never form a same-feature pair")
	}
}

func testTable() *dataset.Table {
	return dataset.NewTable([]dataset.Transaction{
		{RefID: "r1", Items: []string{"a", "b", "c"}},
		{RefID: "r2", Items: []string{"a", "b"}},
		{RefID: "r3", Items: []string{"a", "c"}},
		{RefID: "r4", Items: []string{"b"}},
	})
}

func TestDBCounting(t *testing.T) {
	db := NewDB(testTable())
	if db.NumTransactions() != 4 {
		t.Fatalf("NumTransactions = %d", db.NumTransactions())
	}
	a, _ := db.Dict.Lookup("a")
	b, _ := db.Dict.Lookup("b")
	c, _ := db.Dict.Lookup("c")

	counts := db.ItemCounts()
	if counts[a] != 3 || counts[b] != 3 || counts[c] != 2 {
		t.Errorf("ItemCounts = %v", counts)
	}
	ab := NewItemset(a, b)
	if got := db.SupportHorizontal(ab); got != 2 {
		t.Errorf("horizontal support(ab) = %d", got)
	}
	db.BuildTidsets()
	if got := db.SupportVertical(ab); got != 2 {
		t.Errorf("vertical support(ab) = %d", got)
	}
	if got := db.SupportVertical(NewItemset(a, b, c)); got != 1 {
		t.Errorf("vertical support(abc) = %d", got)
	}
	if got := db.SupportVertical(Itemset{}); got != 4 {
		t.Errorf("vertical support(empty) = %d", got)
	}
	// Tidset for item a has rows 0, 1, 2 set.
	ts := db.Tidset(a)
	if ts[0] != 0b0111 {
		t.Errorf("tidset(a) = %b", ts[0])
	}
	if got := db.String(); got != "itemset.DB{4 rows, 3 items}" {
		t.Errorf("String = %q", got)
	}
}

func TestSupportStrategiesAgree(t *testing.T) {
	// Property: horizontal and vertical counting agree on random subsets.
	db := NewDB(dataset.PortoAlegreTable())
	db.BuildTidsets()
	n := int32(db.Dict.Len())
	f := func(raw []int32) bool {
		ids := make([]int32, 0, len(raw))
		for _, v := range raw {
			id := v % n
			if id < 0 {
				id += n
			}
			ids = append(ids, id)
		}
		s := NewItemset(ids...)
		return db.SupportHorizontal(s) == db.SupportVertical(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerticalAutoBuildsTidsets(t *testing.T) {
	// SupportVertical (and Tidset) build the vertical representation on
	// first use instead of panicking.
	db := NewDB(testTable())
	s := NewItemset(0)
	if got, want := db.SupportVertical(s), db.SupportHorizontal(s); got != want {
		t.Errorf("SupportVertical without BuildTidsets = %d, want %d", got, want)
	}
	db2 := NewDB(testTable())
	if got := bitset(db2.Tidset(0)).count(); got != db2.SupportHorizontal(s) {
		t.Errorf("Tidset without BuildTidsets popcount = %d, want %d", got, db2.SupportHorizontal(s))
	}
}

func TestConcurrentCountersOnFreshDB(t *testing.T) {
	// The lazy tidset build is synchronised: goroutines racing to
	// construct VerticalCounters (or grab Tidsets) on a fresh DB all see
	// the one completed build. Run under -race in CI, this is the
	// regression test for the unguarded db.tidsets publication.
	db := NewDB(dataset.PortoAlegreTable())
	s := NewItemset(0, 1)
	want := db.SupportHorizontal(s)
	const goroutines = 8
	got := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vc := db.NewVerticalCounter()
			got[g] = vc.Support(s)
		}(g)
	}
	wg.Wait()
	for g, sup := range got {
		if sup != want {
			t.Errorf("goroutine %d: support = %d, want %d", g, sup, want)
		}
	}
	// Racing Tidset readers on another fresh DB agree too.
	db2 := NewDB(dataset.PortoAlegreTable())
	counts := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counts[g] = bitset(db2.Tidset(0)).count()
		}(g)
	}
	wg.Wait()
	want0 := db2.SupportHorizontal(NewItemset(0))
	for g, c := range counts {
		if c != want0 {
			t.Errorf("goroutine %d: tidset popcount = %d, want %d", g, c, want0)
		}
	}
}

func TestVerticalCounterMatchesHorizontal(t *testing.T) {
	// Property: the prefix-cached counter agrees with horizontal scans on
	// random candidate streams, sorted (the cached case) or not.
	db := NewDB(dataset.PortoAlegreTable())
	vc := db.NewVerticalCounter()
	n := int32(db.Dict.Len())
	f := func(raw []int32) bool {
		ids := make([]int32, 0, len(raw))
		for _, v := range raw {
			id := v % n
			if id < 0 {
				id += n
			}
			ids = append(ids, id)
		}
		s := NewItemset(ids...)
		return vc.Support(s) == db.SupportHorizontal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerticalCounterSortedStream(t *testing.T) {
	// Consecutive shared-prefix candidates (the aprioriGen output shape)
	// exercise the layer cache explicitly.
	db := NewDB(dataset.PortoAlegreTable())
	vc := db.NewVerticalCounter()
	n := int32(db.Dict.Len())
	var stream []Itemset
	for a := int32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				stream = append(stream, Itemset{a, b, c})
			}
		}
	}
	for _, s := range stream {
		if got, want := vc.Support(s), db.SupportHorizontal(s); got != want {
			t.Fatalf("Support(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestProjectRows(t *testing.T) {
	db := NewDB(dataset.PortoAlegreTable())
	keep := make([]bool, db.Dict.Len())
	for id := 0; id < db.Dict.Len(); id += 2 {
		keep[id] = true
	}
	rows := db.ProjectRows(keep)
	if len(rows) != len(db.Rows) {
		t.Fatalf("ProjectRows changed row count: %d != %d", len(rows), len(db.Rows))
	}
	for i, row := range rows {
		want := make(Itemset, 0, len(db.Rows[i]))
		for _, id := range db.Rows[i] {
			if keep[id] {
				want = append(want, id)
			}
		}
		if !row.Equal(want) {
			t.Errorf("row %d = %v, want %v", i, row, want)
		}
	}
}

func TestBitset(t *testing.T) {
	b := make(bitset, 2)
	b.set(0)
	b.set(63)
	b.set(64)
	if !b.get(0) || !b.get(63) || !b.get(64) || b.get(1) {
		t.Error("set/get wrong")
	}
	if b.count() != 3 {
		t.Errorf("count = %d", b.count())
	}
	o := make(bitset, 2)
	o.set(0)
	o.set(64)
	b.and(o)
	if b.count() != 2 || b.get(63) {
		t.Error("and wrong")
	}
}
