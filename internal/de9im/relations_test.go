package de9im

import (
	"testing"

	"repro/internal/geom"
)

func TestClassifyPolygonPolygon(t *testing.T) {
	// The "Nonoai district" scenarios of the paper's Figure 2: a district
	// touches slum180, covers slum183, overlaps slum174 and contains
	// slum159 — plus equals and disjoint for completeness.
	district := "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"
	cases := []struct {
		name string
		b    string
		want Relation
	}{
		{"contains (strictly inside)", "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))", Contains},
		{"covers (inside, shared edge)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", Covers},
		{"touches (external edge)", "POLYGON ((10 0, 14 0, 14 4, 10 4, 10 0))", Touches},
		{"touches (corner only)", "POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))", Touches},
		{"overlaps (straddles boundary)", "POLYGON ((8 8, 14 8, 14 14, 8 14, 8 8))", Overlaps},
		{"equals", district, Equals},
		{"disjoint", "POLYGON ((20 20, 22 20, 22 22, 20 22, 20 20))", Disjoint},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(wkt(district), wkt(tc.b))
			if got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
			// The inverse relation must hold in the other direction.
			if inv := Classify(wkt(tc.b), wkt(district)); inv != tc.want.Inverse() {
				t.Errorf("inverse Classify = %v, want %v", inv, tc.want.Inverse())
			}
		})
	}
}

func TestClassifyWithinCoveredBy(t *testing.T) {
	big := "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"
	small := "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))"
	if got := Classify(wkt(small), wkt(big)); got != Within {
		t.Errorf("small in big = %v, want within", got)
	}
	edge := "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"
	if got := Classify(wkt(edge), wkt(big)); got != CoveredBy {
		t.Errorf("edge-sharing in big = %v, want coveredBy", got)
	}
}

func TestClassifyPointCases(t *testing.T) {
	sq := "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"
	cases := []struct {
		name string
		a, b string
		want Relation
	}{
		// The paper's "district contains policeCenter" point predicate.
		{"polygon contains interior point", sq, "POINT (2 2)", Contains},
		{"point within polygon", "POINT (2 2)", sq, Within},
		{"boundary point touches", "POINT (4 2)", sq, Touches},
		{"outside point disjoint", "POINT (9 9)", sq, Disjoint},
		{"equal points", "POINT (1 1)", "POINT (1 1)", Equals},
		{"point within line", "POINT (2 0)", "LINESTRING (0 0, 4 0)", Within},
		{"point touches line endpoint", "POINT (0 0)", "LINESTRING (0 0, 4 0)", Touches},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(wkt(tc.a), wkt(tc.b)); got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassifyLineCases(t *testing.T) {
	sq := "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"
	cases := []struct {
		name string
		a, b string
		want Relation
	}{
		// The paper's "city crossed by river" predicate.
		{"line crosses polygon", "LINESTRING (-2 2, 6 2)", sq, Crosses},
		{"line within polygon", "LINESTRING (1 1, 3 3)", sq, Within},
		{"line coveredBy polygon (endpoint on rim)", "LINESTRING (0 2, 2 2)", sq, CoveredBy},
		{"line touches polygon edge", "LINESTRING (0 0, 4 0)", sq, Touches},
		{"line touches at endpoint", "LINESTRING (4 2, 8 2)", sq, Touches},
		{"line disjoint", "LINESTRING (9 9, 12 12)", sq, Disjoint},
		{"lines cross", "LINESTRING (0 0, 4 4)", "LINESTRING (0 4, 4 0)", Crosses},
		{"lines overlap", "LINESTRING (0 0, 4 0)", "LINESTRING (2 0, 6 0)", Overlaps},
		{"lines touch endpoints", "LINESTRING (0 0, 2 0)", "LINESTRING (2 0, 4 0)", Touches},
		{"line within line", "LINESTRING (1 0, 3 0)", "LINESTRING (0 0, 4 0)", Within},
		{"line coveredBy line (shared endpoint)", "LINESTRING (0 0, 3 0)", "LINESTRING (0 0, 4 0)", CoveredBy},
		{"lines equal", "LINESTRING (0 0, 4 0)", "LINESTRING (0 0, 4 0)", Equals},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(wkt(tc.a), wkt(tc.b)); got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got := Classify(geom.MultiPoint{}, wkt("POINT (0 0)")); got != RelationNone {
		t.Errorf("empty operand = %v, want none", got)
	}
	if got := Classify(nil, wkt("POINT (0 0)")); got != RelationNone {
		t.Errorf("nil operand = %v, want none", got)
	}
}

func TestClassifyMutuallyExclusive(t *testing.T) {
	// Over a grid of shifted squares, exactly one canonical relation holds
	// and it is consistent with the inverse classification.
	base := wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	for dx := -5.0; dx <= 5; dx++ {
		for dy := -5.0; dy <= 5; dy++ {
			other := geom.Translate(base, dx, dy)
			r := Classify(base, other)
			if r == RelationNone {
				t.Fatalf("no relation for shift (%v, %v)", dx, dy)
			}
			inv := Classify(other, base)
			if inv != r.Inverse() {
				t.Errorf("shift (%v,%v): %v vs inverse %v", dx, dy, r, inv)
			}
		}
	}
}

func TestOGCPredicates(t *testing.T) {
	big := wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	small := wkt("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))")
	edge := wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	far := wkt("POLYGON ((20 20, 22 20, 22 22, 20 22, 20 20))")

	m := Relate(big, small)
	if !m.IsContains() || !m.IsCovers() || m.IsWithin() || m.IsTouches() {
		t.Errorf("big/small OGC predicates wrong: %s", m)
	}
	// OGC contains holds even with boundary contact (unlike the
	// Egenhofer strict reading used by Classify).
	m = Relate(big, edge)
	if !m.IsContains() || !m.IsCovers() {
		t.Errorf("big/edge should OGC-contain: %s", m)
	}
	m = Relate(edge, big)
	if !m.IsWithin() || !m.IsCoveredBy() {
		t.Errorf("edge/big should be OGC-within: %s", m)
	}
	m = Relate(big, far)
	if !m.IsDisjoint() || m.IsIntersects() {
		t.Errorf("disjoint predicates wrong: %s", m)
	}
	m = Relate(big, big)
	if !m.IsEquals() || !m.IsWithin() || !m.IsContains() {
		t.Errorf("self relate wrong: %s", m)
	}
}

func TestHolds(t *testing.T) {
	sq := wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	inner := wkt("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))")
	line := wkt("LINESTRING (-2 2, 6 2)")
	overl := wkt("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	cases := []struct {
		r    Relation
		a, b geom.Geometry
		want bool
	}{
		{Contains, sq, inner, true},
		{Within, inner, sq, true},
		{Covers, sq, inner, true},
		{CoveredBy, inner, sq, true},
		{Equals, sq, sq, true},
		{Disjoint, inner, overl, false},
		{Touches, sq, geom.Translate(sq, 4, 0), true},
		{Crosses, line, sq, true},
		{Overlaps, sq, overl, true},
		{Crosses, sq, overl, false},
		{RelationNone, sq, sq, false},
	}
	for _, tc := range cases {
		if got := Holds(tc.r, tc.a, tc.b); got != tc.want {
			t.Errorf("Holds(%v, %s, %s) = %v, want %v", tc.r, tc.a.WKT(), tc.b.WKT(), got, tc.want)
		}
	}
	if Holds(Equals, geom.MultiPoint{}, sq) {
		t.Error("Holds with empty operand should be false")
	}
}

func TestClassifyOverlapsSameDimLines(t *testing.T) {
	// Collinear partial overlap is overlaps (dim 1 interior intersection).
	a := wkt("LINESTRING (0 0, 4 0)")
	b := wkt("LINESTRING (2 0, 6 0)")
	if got := Classify(a, b); got != Overlaps {
		t.Errorf("collinear overlap = %v, want overlaps", got)
	}
	// X crossing has a 0-dim interior intersection: crosses.
	c := wkt("LINESTRING (0 4, 4 0)")
	d := wkt("LINESTRING (0 0, 4 4)")
	if got := Classify(c, d); got != Crosses {
		t.Errorf("X crossing = %v, want crosses", got)
	}
}
