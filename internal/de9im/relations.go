package de9im

import (
	"fmt"

	"repro/internal/geom"
)

// Relation names a topological relation of the paper's qualitative
// vocabulary (Egenhofer & Franzosa 9-intersection relations, extended with
// the OGC crosses relation for mixed dimensions).
type Relation int

// Topological relations. RelationNone is returned by Classify for empty
// operands only.
const (
	RelationNone Relation = iota
	Equals
	Disjoint
	Touches
	Contains
	Within
	Covers
	CoveredBy
	Crosses
	Overlaps
)

// String returns the lower-camel name used in predicate rendering
// ("contains", "coveredBy", ...).
func (r Relation) String() string {
	switch r {
	case RelationNone:
		return "none"
	case Equals:
		return "equals"
	case Disjoint:
		return "disjoint"
	case Touches:
		return "touches"
	case Contains:
		return "contains"
	case Within:
		return "within"
	case Covers:
		return "covers"
	case CoveredBy:
		return "coveredBy"
	case Crosses:
		return "crosses"
	case Overlaps:
		return "overlaps"
	}
	return fmt.Sprintf("de9im.Relation(%d)", int(r))
}

// Inverse returns the relation seen from the swapped operand order.
func (r Relation) Inverse() Relation {
	switch r {
	case Contains:
		return Within
	case Within:
		return Contains
	case Covers:
		return CoveredBy
	case CoveredBy:
		return Covers
	default:
		// equals, disjoint, touches, crosses, overlaps are symmetric.
		return r
	}
}

// AllRelations lists every named relation, in a stable order.
func AllRelations() []Relation {
	return []Relation{
		Equals, Disjoint, Touches, Contains, Within,
		Covers, CoveredBy, Crosses, Overlaps,
	}
}

// OGC boolean predicates over a computed matrix. These follow the standard
// simple-features pattern definitions and are not mutually exclusive
// (contains implies covers, equals implies within, ...). The paper's
// mutually exclusive Egenhofer classification is provided by Classify.

// IsEquals reports point-set equality.
func (m Matrix) IsEquals() bool { return m.Matches("T*F**FFF*") }

// IsDisjoint reports an empty intersection.
func (m Matrix) IsDisjoint() bool { return m.Matches("FF*FF****") }

// IsIntersects reports a non-empty intersection.
func (m Matrix) IsIntersects() bool { return !m.IsDisjoint() }

// IsTouches reports boundary-only contact.
func (m Matrix) IsTouches() bool {
	return m.Matches("FT*******") || m.Matches("F**T*****") || m.Matches("F***T****")
}

// IsContains reports that b lies in a with interior contact (OGC contains).
func (m Matrix) IsContains() bool { return m.Matches("T*****FF*") }

// IsWithin reports that a lies in b with interior contact (OGC within).
func (m Matrix) IsWithin() bool { return m.Matches("T*F**F***") }

// IsCovers reports that b lies in the closure of a.
func (m Matrix) IsCovers() bool {
	return m.Matches("T*****FF*") || m.Matches("*T****FF*") ||
		m.Matches("***T**FF*") || m.Matches("****T*FF*")
}

// IsCoveredBy reports that a lies in the closure of b.
func (m Matrix) IsCoveredBy() bool {
	return m.Matches("T*F**F***") || m.Matches("*TF**F***") ||
		m.Matches("**FT*F***") || m.Matches("**F*TF***")
}

// IsCrosses reports a lower-dimensional interior crossing for operand
// dimensions dimA and dimB (geometry dimensions, 0-2).
func (m Matrix) IsCrosses(dimA, dimB int) bool {
	switch {
	case dimA < dimB:
		return m.Matches("T*T******")
	case dimA > dimB:
		return m.Matches("T*****T**")
	case dimA == 1 && dimB == 1:
		return m.Matches("0********")
	}
	return false
}

// IsOverlaps reports a same-dimension partial overlap for operand
// dimensions dimA and dimB.
func (m Matrix) IsOverlaps(dimA, dimB int) bool {
	if dimA != dimB {
		return false
	}
	if dimA == 1 {
		return m.Matches("1*T***T**")
	}
	return m.Matches("T*T***T**")
}

// Classify returns the single canonical Egenhofer relation between a and
// b. The relations are mutually exclusive and exhaustive for non-empty
// operands: exactly one of equals, disjoint, touches, contains, covers,
// within, coveredBy, crosses, overlaps holds under this classification.
//
// The decision rules follow the 9-intersection reading used by the paper:
// contains/within are strict (no boundary contact), covers/coveredBy have
// boundary contact, touches has meeting boundaries but disjoint interiors,
// crosses is the mixed-dimension (or 0-dimensional line/line) interior
// crossing, and overlaps is the same-dimension partial overlap.
func Classify(a, b geom.Geometry) Relation {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return RelationNone
	}
	m := Relate(a, b)
	return ClassifyMatrix(m, a.Dimension(), b.Dimension())
}

// ClassifyPrepared is Classify over prepared geometries, computing the
// matrix through RelatePrepared's cached structures and edge trees.
func ClassifyPrepared(a, b *geom.Prepared) Relation {
	if a.IsEmpty() || b.IsEmpty() {
		return RelationNone
	}
	m := RelatePrepared(a, b)
	return ClassifyMatrix(m, a.Geometry().Dimension(), b.Geometry().Dimension())
}

// ClassifyMatrix classifies a precomputed matrix; see Classify.
func ClassifyMatrix(m Matrix, dimA, dimB int) Relation {
	if m.IsDisjoint() {
		return Disjoint
	}
	if m.IsEquals() {
		return Equals
	}
	if m[Int][Int] == F {
		return Touches
	}
	// Interiors intersect. Containment of b in a?
	if m[Ext][Int] == F && m[Ext][Bnd] == F {
		// b inside closure(a); strict when b avoids a's boundary.
		if m[Bnd][Int] == F && m[Bnd][Bnd] == F {
			return Contains
		}
		return Covers
	}
	if m[Int][Ext] == F && m[Bnd][Ext] == F {
		if m[Int][Bnd] == F && m[Bnd][Bnd] == F {
			return Within
		}
		return CoveredBy
	}
	// Partial intersection: crosses when the interior intersection has
	// lower dimension than the higher-dimensional operand, overlaps
	// otherwise.
	maxDim := dimA
	if dimB > maxDim {
		maxDim = dimB
	}
	if int(m[Int][Int]) < maxDim {
		return Crosses
	}
	return Overlaps
}

// Holds reports whether the named relation holds between a and b under the
// OGC (non-exclusive) reading. Covers/contains and their inverses use the
// OGC patterns; crosses and overlaps take the operand dimensions into
// account.
func Holds(r Relation, a, b geom.Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	m := Relate(a, b)
	switch r {
	case Equals:
		return m.IsEquals()
	case Disjoint:
		return m.IsDisjoint()
	case Touches:
		return m.IsTouches()
	case Contains:
		return m.IsContains()
	case Within:
		return m.IsWithin()
	case Covers:
		return m.IsCovers()
	case CoveredBy:
		return m.IsCoveredBy()
	case Crosses:
		return m.IsCrosses(a.Dimension(), b.Dimension())
	case Overlaps:
		return m.IsOverlaps(a.Dimension(), b.Dimension())
	}
	return false
}
