package de9im

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func ngon(n int, cx, cy, r float64) geom.Polygon {
	coords := make([]geom.Point, n)
	for i := range coords {
		theta := 2 * math.Pi * float64(i) / float64(n)
		coords[i] = geom.Pt(cx+r*math.Cos(theta), cy+r*math.Sin(theta))
	}
	return geom.Polygon{Shell: geom.Ring{Coords: coords}}
}

func BenchmarkRelatePolygonsOverlapping(b *testing.B) {
	a := ngon(32, 0, 0, 10)
	c := ngon(32, 8, 0, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(a, c)
	}
}

// BenchmarkRelatePreparedPolygonsOverlapping is the prepared counterpart
// of BenchmarkRelatePolygonsOverlapping: the per-geometry derived
// structures are built once outside the loop, as a spatial join reuses
// them across the whole join.
func BenchmarkRelatePreparedPolygonsOverlapping(b *testing.B) {
	pa := geom.Prepare(ngon(32, 0, 0, 10))
	pc := geom.Prepare(ngon(32, 8, 0, 10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelatePrepared(pa, pc)
	}
}

func BenchmarkRelatePreparedPolygonsTouching(b *testing.B) {
	pa := geom.Prepare(geom.Rect(0, 0, 10, 10))
	pc := geom.Prepare(geom.Rect(10, 0, 20, 10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelatePrepared(pa, pc)
	}
}

func BenchmarkRelatePreparedLinePolygon(b *testing.B) {
	pp := geom.Prepare(ngon(32, 0, 0, 10))
	pl := geom.Prepare(geom.Line(geom.Pt(-15, 0), geom.Pt(15, 0)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelatePrepared(pl, pp)
	}
}

// BenchmarkPrepare measures the one-off preparation cost the join
// amortises.
func BenchmarkPrepare(b *testing.B) {
	poly := ngon(32, 0, 0, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.Prepare(poly)
	}
}

func BenchmarkRelatePolygonsDisjoint(b *testing.B) {
	a := ngon(32, 0, 0, 10)
	c := ngon(32, 100, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(a, c)
	}
}

func BenchmarkRelateLinePolygon(b *testing.B) {
	poly := ngon(32, 0, 0, 10)
	line := geom.Line(geom.Pt(-15, 0), geom.Pt(15, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(line, poly)
	}
}

func BenchmarkClassify(b *testing.B) {
	a := ngon(16, 0, 0, 10)
	c := ngon(16, 3, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Classify(a, c); got != Contains {
			b.Fatalf("relation = %v", got)
		}
	}
}
