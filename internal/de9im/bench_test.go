package de9im

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func ngon(n int, cx, cy, r float64) geom.Polygon {
	coords := make([]geom.Point, n)
	for i := range coords {
		theta := 2 * math.Pi * float64(i) / float64(n)
		coords[i] = geom.Pt(cx+r*math.Cos(theta), cy+r*math.Sin(theta))
	}
	return geom.Polygon{Shell: geom.Ring{Coords: coords}}
}

func BenchmarkRelatePolygonsOverlapping(b *testing.B) {
	a := ngon(32, 0, 0, 10)
	c := ngon(32, 8, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(a, c)
	}
}

func BenchmarkRelatePolygonsDisjoint(b *testing.B) {
	a := ngon(32, 0, 0, 10)
	c := ngon(32, 100, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(a, c)
	}
}

func BenchmarkRelateLinePolygon(b *testing.B) {
	poly := ngon(32, 0, 0, 10)
	line := geom.Line(geom.Pt(-15, 0), geom.Pt(15, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Relate(line, poly)
	}
}

func BenchmarkClassify(b *testing.B) {
	a := ngon(16, 0, 0, 10)
	c := ngon(16, 3, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Classify(a, c); got != Contains {
			b.Fatalf("relation = %v", got)
		}
	}
}
