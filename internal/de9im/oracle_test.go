package de9im

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// This file checks Relate against a Monte-Carlo oracle: DE-9IM entries
// are definitions over point sets, so dense sampling of the plane can
// estimate each interior/exterior intersection independently of the
// implementation. Boundary entries are excluded (boundaries have measure
// zero under area sampling); for them we rely on the exact construction
// tests in relate_test.go.

// sampleLocate estimates whether the interiors/exteriors of a and b
// intersect with positive area by classifying a dense grid of points.
func sampleOracle(a, b geom.Geometry, minX, minY, maxX, maxY float64, step float64) (ii, ie, ei bool) {
	for x := minX; x <= maxX; x += step {
		for y := minY; y <= maxY; y += step {
			p := geom.Pt(x, y)
			la := geom.Locate(p, a)
			lb := geom.Locate(p, b)
			if la == geom.Interior && lb == geom.Interior {
				ii = true
			}
			if la == geom.Interior && lb == geom.Exterior {
				ie = true
			}
			if la == geom.Exterior && lb == geom.Interior {
				ei = true
			}
		}
	}
	return
}

// randomOracleRect returns a rectangle with half-integer coordinates so
// that the sampling grid (offset by 0.25) never lands on a boundary.
func randomOracleRect(rng *rand.Rand) geom.Polygon {
	x := float64(rng.Intn(16)) / 2
	y := float64(rng.Intn(16)) / 2
	w := float64(1+rng.Intn(8)) / 2
	h := float64(1+rng.Intn(8)) / 2
	return geom.Rect(x, y, x+w, y+h)
}

func TestRelateAgainstSamplingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		a := randomOracleRect(rng)
		b := randomOracleRect(rng)
		m := Relate(a, b)

		// Sample with an offset grid that avoids all boundaries
		// (boundaries are at multiples of 0.25; sample at 0.125 offsets).
		ii, ie, ei := sampleOracle(a, b, -1+0.125, -1+0.125, 14, 14, 0.25)

		if ii != (m[Int][Int] == D2) {
			t.Fatalf("trial %d: II sampled=%v matrix=%s\n a=%s\n b=%s",
				trial, ii, m, a.WKT(), b.WKT())
		}
		if ie != (m[Int][Ext] == D2) {
			t.Fatalf("trial %d: IE sampled=%v matrix=%s\n a=%s\n b=%s",
				trial, ie, m, a.WKT(), b.WKT())
		}
		if ei != (m[Ext][Int] == D2) {
			t.Fatalf("trial %d: EI sampled=%v matrix=%s\n a=%s\n b=%s",
				trial, ei, m, a.WKT(), b.WKT())
		}
	}
}

func TestRelateDonutAgainstSamplingOracle(t *testing.T) {
	// Holed polygons against random rectangles: the hardest area cases.
	donut := geom.Polygon{
		Shell: geom.Ring{Coords: []geom.Point{geom.Pt(1, 1), geom.Pt(7, 1), geom.Pt(7, 7), geom.Pt(1, 7)}},
		Holes: []geom.Ring{{Coords: []geom.Point{geom.Pt(3, 3), geom.Pt(5, 3), geom.Pt(5, 5), geom.Pt(3, 5)}}},
	}
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 100; trial++ {
		b := randomOracleRect(rng)
		m := Relate(donut, b)
		ii, ie, ei := sampleOracle(donut, b, 0.125, 0.125, 13, 13, 0.25)
		if ii != (m[Int][Int] == D2) || ie != (m[Int][Ext] == D2) || ei != (m[Ext][Int] == D2) {
			t.Fatalf("trial %d: sampled (%v %v %v) vs matrix %s\n b=%s",
				trial, ii, ie, ei, m, b.WKT())
		}
	}
}

func TestClassifyAgreesWithOracleContainment(t *testing.T) {
	// Containment relations must agree with a pure point-sampling test:
	// b within a iff no sample of b's interior is outside a.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		a := randomOracleRect(rng)
		b := randomOracleRect(rng)
		rel := Classify(a, b)
		_, _, ei := sampleOracle(a, b, 0.125, 0.125, 13, 13, 0.25)
		containsLike := rel == Contains || rel == Covers || rel == Equals
		if containsLike && ei {
			t.Fatalf("trial %d: %v but b has interior outside a\n a=%s\n b=%s",
				trial, rel, a.WKT(), b.WKT())
		}
		if !containsLike && rel != Disjoint && rel != Touches && !ei {
			// Interiors intersect and b pokes nowhere outside a: must be
			// a containment-like classification (or within/coveredBy
			// when a is the smaller operand — those have ei=false only
			// if b covers a... not possible here since ei is about b's
			// interior outside a).
			if rel != Within && rel != CoveredBy {
				t.Fatalf("trial %d: rel=%v but b fully inside a\n a=%s\n b=%s",
					trial, rel, a.WKT(), b.WKT())
			}
		}
	}
}
