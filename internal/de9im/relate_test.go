package de9im

import (
	"testing"

	"repro/internal/geom"
)

// wkt is a test shorthand.
func wkt(s string) geom.Geometry { return geom.MustParseWKT(s) }

func TestRelatePolygonPolygonMatrices(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want string
	}{
		{
			"disjoint squares",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
			"POLYGON ((5 5, 7 5, 7 7, 5 7, 5 5))",
			"FF2FF1212",
		},
		{
			"equal squares",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
			"2FFF1FFF2",
		},
		{
			"overlapping squares",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))",
			"212101212",
		},
		{
			"edge touch",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
			"POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))",
			"FF2F11212",
		},
		{
			"corner touch",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
			"POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))",
			"FF2F01212",
		},
		{
			"strict containment (a contains b)",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
			"POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))",
			"212FF1FF2",
		},
		{
			"covers with shared edge",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"212F11FF2",
		},
		{
			"strict within (a within b)",
			"POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
			"2FF1FF212",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Relate(wkt(tc.a), wkt(tc.b))
			if m.String() != tc.want {
				t.Errorf("Relate = %s, want %s", m, tc.want)
			}
		})
	}
}

func TestRelateSymmetryTranspose(t *testing.T) {
	pairs := [][2]string{
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))"},
		{"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))", "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))"},
		{"LINESTRING (0 0, 4 0)", "POLYGON ((1 -1, 3 -1, 3 1, 1 1, 1 -1))"},
		{"POINT (1 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"},
		{"LINESTRING (0 0, 4 4)", "LINESTRING (0 4, 4 0)"},
	}
	for _, pair := range pairs {
		a, b := wkt(pair[0]), wkt(pair[1])
		ab := Relate(a, b)
		ba := Relate(b, a)
		if ab.Transpose() != ba {
			t.Errorf("Relate(%s, %s) = %s but reverse = %s (not transpose)",
				pair[0], pair[1], ab, ba)
		}
	}
}

func TestRelatePointCases(t *testing.T) {
	sq := "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"
	cases := []struct {
		name string
		a, b string
		want string
	}{
		{"point inside polygon", "POINT (2 2)", sq, "0FFFFF212"},
		{"point on polygon boundary", "POINT (4 2)", sq, "F0FFFF212"},
		{"point outside polygon", "POINT (9 9)", sq, "FF0FFF212"},
		{"point on line interior", "POINT (2 0)", "LINESTRING (0 0, 4 0)", "0FFFFF102"},
		{"point on line endpoint", "POINT (0 0)", "LINESTRING (0 0, 4 0)", "F0FFFF102"},
		{"equal points", "POINT (1 1)", "POINT (1 1)", "0FFFFFFF2"},
		{"distinct points", "POINT (1 1)", "POINT (2 2)", "FF0FFF0F2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Relate(wkt(tc.a), wkt(tc.b))
			if m.String() != tc.want {
				t.Errorf("Relate = %s, want %s", m, tc.want)
			}
		})
	}
}

func TestRelateLinePolygon(t *testing.T) {
	sq := "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"
	cases := []struct {
		name string
		a    string
		want string
	}{
		{"line crossing through", "LINESTRING (-2 2, 6 2)", "101FF0212"},
		{"line inside", "LINESTRING (1 1, 3 3)", "1FF0FF212"},
		{"line along boundary", "LINESTRING (0 0, 4 0)", "F1FF0F212"},
		{"line touching boundary at endpoint", "LINESTRING (4 2, 8 2)", "FF1F00212"},
		{"line outside", "LINESTRING (5 5, 8 8)", "FF1FF0212"},
		{"line inside with endpoint on boundary", "LINESTRING (0 2, 2 2)", "1FF00F212"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Relate(wkt(tc.a), wkt(sq))
			if m.String() != tc.want {
				t.Errorf("Relate = %s, want %s", m, tc.want)
			}
		})
	}
}

func TestRelateLineLine(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want string
	}{
		{"crossing X", "LINESTRING (0 0, 4 4)", "LINESTRING (0 4, 4 0)", "0F1FF0102"},
		{"equal lines", "LINESTRING (0 0, 4 0)", "LINESTRING (0 0, 4 0)", "1FFF0FFF2"},
		{"collinear partial overlap", "LINESTRING (0 0, 4 0)", "LINESTRING (2 0, 6 0)", "1010F0102"},
		{"endpoint-to-endpoint touch", "LINESTRING (0 0, 2 0)", "LINESTRING (2 0, 4 0)", "FF1F00102"},
		{"T junction (endpoint on interior)", "LINESTRING (0 0, 4 0)", "LINESTRING (2 0, 2 4)", "F01FF0102"},
		{"disjoint", "LINESTRING (0 0, 1 0)", "LINESTRING (0 5, 1 5)", "FF1FF0102"},
		{"sub-segment within", "LINESTRING (1 0, 3 0)", "LINESTRING (0 0, 4 0)", "1FF0FF102"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Relate(wkt(tc.a), wkt(tc.b))
			if m.String() != tc.want {
				t.Errorf("Relate = %s, want %s", m, tc.want)
			}
		})
	}
}

func TestRelateEmptyOperands(t *testing.T) {
	sq := wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	empty := geom.MultiPoint{}
	m := Relate(sq, empty)
	if m.String() != "FF2FF1FF2" {
		t.Errorf("area vs empty = %s", m)
	}
	m = Relate(empty, sq)
	if m.String() != "FFFFFF212" {
		t.Errorf("empty vs area = %s", m)
	}
	m = Relate(empty, empty)
	if m.String() != "FFFFFFFF2" {
		t.Errorf("empty vs empty = %s", m)
	}
	line := wkt("LINESTRING (0 0, 1 0)")
	m = Relate(line, empty)
	if m.String() != "FF1FF0FF2" {
		t.Errorf("line vs empty = %s", m)
	}
	pt := wkt("POINT (0 0)")
	m = Relate(pt, empty)
	if m.String() != "FF0FFFFF2" {
		t.Errorf("point vs empty = %s", m)
	}
	// Closed line has empty boundary even against an empty operand.
	closed := wkt("LINESTRING (0 0, 1 0, 1 1, 0 0)")
	m = Relate(closed, empty)
	if m.String() != "FF1FFFFF2" {
		t.Errorf("closed line vs empty = %s", m)
	}
}

func TestRelateDonutCases(t *testing.T) {
	donut := "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))"
	// A polygon exactly filling the hole: boundaries coincide, interiors
	// are disjoint (the hole is the donut's exterior).
	filler := "POLYGON ((3 3, 7 3, 7 7, 3 7, 3 3))"
	m := Relate(wkt(filler), wkt(donut))
	if m[Int][Int] != F {
		t.Errorf("filler/donut II = %v, want F (matrix %s)", m[Int][Int], m)
	}
	if m[Int][Ext] != D2 {
		t.Errorf("filler/donut IE = %v, want 2 (matrix %s)", m[Int][Ext], m)
	}
	if got := ClassifyMatrix(m, 2, 2); got != Touches {
		t.Errorf("filler/donut relation = %v, want touches", got)
	}
	// A small island strictly inside the hole: disjoint from the donut.
	island := "POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))"
	m = Relate(wkt(island), wkt(donut))
	if !m.IsDisjoint() {
		t.Errorf("island/donut = %s, want disjoint", m)
	}
	// A polygon covering donut + hole: contains must fail (the hole pokes
	// through), but interiors do intersect.
	cover := "POLYGON ((-1 -1, 11 -1, 11 11, -1 11, -1 -1))"
	m = Relate(wkt(cover), wkt(donut))
	if m[Int][Int] != D2 {
		t.Errorf("cover/donut II = %v (matrix %s)", m[Int][Int], m)
	}
	if got := ClassifyMatrix(m, 2, 2); got != Contains {
		t.Errorf("cover/donut relation = %v, want contains", got)
	}
	// Point in the hole is exterior to the donut.
	m = Relate(wkt("POINT (5 5)"), wkt(donut))
	if m.String() != "FF0FFF212" {
		t.Errorf("hole point = %s", m)
	}
}

func TestRelateMultiPoint(t *testing.T) {
	sq := wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	// One point in, one point out: OGC crosses for P/A.
	mp := geom.MultiPoint{Points: []geom.Point{geom.Pt(2, 2), geom.Pt(9, 9)}}
	m := Relate(mp, sq)
	if m.String() != "0F0FFF212" {
		t.Errorf("multipoint partial = %s", m)
	}
	if got := ClassifyMatrix(m, 0, 2); got != Crosses {
		t.Errorf("multipoint relation = %v, want crosses", got)
	}
}

func TestRelateVertexOnlyRingTouch(t *testing.T) {
	// Two triangles sharing exactly one vertex; only the node-point pass
	// can see the 0-dimensional boundary contact.
	a := wkt("POLYGON ((0 0, 2 0, 0 2, 0 0))")
	b := wkt("POLYGON ((2 0, 4 0, 4 2, 2 0))")
	m := Relate(a, b)
	if m[Bnd][Bnd] != D0 {
		t.Errorf("shared vertex BB = %v (matrix %s), want 0", m[Bnd][Bnd], m)
	}
	if got := ClassifyMatrix(m, 2, 2); got != Touches {
		t.Errorf("relation = %v, want touches", got)
	}
}
