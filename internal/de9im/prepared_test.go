package de9im

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomRelateGeometry draws a geometry of a random kind on a small
// half-integer lattice so pairs frequently touch, overlap, share
// vertices, or nest — the regimes where the prepared edge-tree queries
// must reproduce the unprepared scans bit for bit.
func randomRelateGeometry(rng *rand.Rand) geom.Geometry {
	half := func(n int) float64 { return float64(rng.Intn(n)) / 2 }
	switch rng.Intn(7) {
	case 0: // rectangle
		x, y := half(12), half(12)
		return geom.Rect(x, y, x+0.5+half(8), y+0.5+half(8))
	case 1: // jittered convex n-gon
		cx, cy := 1+half(10), 1+half(10)
		r := 0.5 + half(5)
		n := 5 + rng.Intn(8)
		var coords []geom.Point
		for k := 0; k < n; k++ {
			ang := 2 * math.Pi * float64(k) / float64(n)
			rr := r * (0.7 + 0.3*rng.Float64())
			coords = append(coords, geom.Pt(cx+rr*math.Cos(ang), cy+rr*math.Sin(ang)))
		}
		return geom.Polygon{Shell: geom.Ring{Coords: coords}}
	case 2: // donut
		x, y := half(8), half(8)
		return geom.Polygon{
			Shell: geom.Ring{Coords: []geom.Point{geom.Pt(x, y), geom.Pt(x + 4, y), geom.Pt(x + 4, y + 4), geom.Pt(x, y + 4)}},
			Holes: []geom.Ring{{Coords: []geom.Point{geom.Pt(x + 1.5, y + 1.5), geom.Pt(x + 2.5, y + 1.5), geom.Pt(x + 2.5, y + 2.5), geom.Pt(x + 1.5, y + 2.5)}}},
		}
	case 3: // multipolygon
		x, y := half(6), half(6)
		return geom.MultiPolygon{Polygons: []geom.Polygon{
			geom.Rect(x, y, x+1.5, y+1.5),
			geom.Rect(x+3, y+3, x+4.5, y+4.5),
		}}
	case 4: // polyline (sometimes closed)
		x, y := half(12), half(12)
		coords := []geom.Point{geom.Pt(x, y)}
		for k := 0; k < 2+rng.Intn(4); k++ {
			x += half(6) - 1.5
			y += half(6) - 1.5
			coords = append(coords, geom.Pt(x, y))
		}
		if rng.Intn(3) == 0 {
			coords = append(coords, coords[0])
		}
		return geom.LineString{Coords: coords}
	case 5: // multiline with a shared endpoint (mod-2 boundary rule)
		x, y := half(10), half(10)
		return geom.MultiLineString{Lines: []geom.LineString{
			geom.Line(geom.Pt(x, y), geom.Pt(x+2, y)),
			geom.Line(geom.Pt(x+2, y), geom.Pt(x+2, y+2)),
		}}
	default: // point / multipoint
		if rng.Intn(2) == 0 {
			return geom.Pt(half(16), half(16))
		}
		return geom.MultiPoint{Points: []geom.Point{
			geom.Pt(half(16), half(16)),
			geom.Pt(half(16), half(16)),
		}}
	}
}

// TestRelatePreparedMatchesRelate is the core equivalence property of the
// prepared-geometry layer: the matrix (and hence every classification
// built on it) must be exactly the unprepared one for arbitrary pairs.
func TestRelatePreparedMatchesRelate(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 500; trial++ {
		a := randomRelateGeometry(rng)
		b := randomRelateGeometry(rng)
		pa, pb := geom.Prepare(a), geom.Prepare(b)
		want := Relate(a, b)
		got := RelatePrepared(pa, pb)
		if got != want {
			t.Fatalf("trial %d: RelatePrepared=%s Relate=%s\n a=%s\n b=%s",
				trial, got, want, a.WKT(), b.WKT())
		}
		if cw, cg := Classify(a, b), ClassifyPrepared(pa, pb); cw != cg {
			t.Fatalf("trial %d: ClassifyPrepared=%v Classify=%v\n a=%s\n b=%s",
				trial, cg, cw, a.WKT(), b.WKT())
		}
		// Prepared values are immutable: a second relate of the same pair
		// must not be perturbed by the first.
		if again := RelatePrepared(pa, pb); again != want {
			t.Fatalf("trial %d: second RelatePrepared=%s want %s", trial, again, want)
		}
	}
}

func TestRelatePreparedEmptyOperands(t *testing.T) {
	poly := geom.Rect(0, 0, 2, 2)
	cases := []struct{ a, b geom.Geometry }{
		{nil, nil},
		{nil, poly},
		{poly, nil},
		{geom.MultiPoint{}, poly},
		{poly, geom.LineString{}},
		{geom.MultiPolygon{}, geom.MultiLineString{}},
	}
	for i, c := range cases {
		want := Relate(c.a, c.b)
		got := RelatePrepared(geom.Prepare(c.a), geom.Prepare(c.b))
		if got != want {
			t.Errorf("case %d: prepared=%s unprepared=%s", i, got, want)
		}
	}
}

// FuzzRelatePrepared cross-checks the prepared relate against the
// unprepared oracle on arbitrary WKT pairs.
func FuzzRelatePrepared(f *testing.F) {
	seeds := [][2]string{
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))"},
		{"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))", "POINT (3 3)"},
		{"LINESTRING (0 0, 5 5)", "LINESTRING (0 5, 5 0)"},
		{"MULTILINESTRING ((0 0, 1 0), (1 0, 1 1))", "POINT (1 0)"},
		{"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((2 2, 3 2, 3 3, 2 3, 2 2)))", "LINESTRING (0 0, 3 3)"},
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((4 0, 8 0, 8 4, 4 4, 4 0))"},
		{"MULTIPOINT ((1 1), (2 2))", "LINESTRING (0 0, 3 3)"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, wa, wb string) {
		a, err := geom.ParseWKT(wa)
		if err != nil {
			return
		}
		b, err := geom.ParseWKT(wb)
		if err != nil {
			return
		}
		// Guard against coordinates that overflow the arithmetic into
		// NaN/Inf; the geometric predicates are only meaningful on finite
		// inputs.
		for _, g := range []geom.Geometry{a, b} {
			env := g.Envelope()
			if !g.IsEmpty() {
				for _, v := range []float64{env.MinX, env.MinY, env.MaxX, env.MaxY} {
					if math.IsNaN(v) || math.Abs(v) > 1e9 {
						return
					}
				}
			}
		}
		want := Relate(a, b)
		got := RelatePrepared(geom.Prepare(a), geom.Prepare(b))
		if got != want {
			t.Fatalf("RelatePrepared=%s Relate=%s\n a=%s\n b=%s", got, want, wa, wb)
		}
	})
}
