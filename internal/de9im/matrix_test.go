package de9im

import (
	"testing"

	"repro/internal/geom"
)

func TestDimRune(t *testing.T) {
	cases := map[Dim]byte{F: 'F', D0: '0', D1: '1', D2: '2', Dim(7): '?'}
	for d, want := range cases {
		if got := d.Rune(); got != want {
			t.Errorf("Dim(%d).Rune() = %c, want %c", d, got, want)
		}
	}
}

func TestNewMatrixAllEmpty(t *testing.T) {
	m := NewMatrix()
	if m.String() != "FFFFFFFFF" {
		t.Errorf("new matrix = %s", m)
	}
}

func TestMatrixSetMonotone(t *testing.T) {
	m := NewMatrix()
	m.Set(0, 0, D1)
	m.Set(0, 0, D0) // must not lower
	if m[0][0] != D1 {
		t.Errorf("Set lowered entry to %v", m[0][0])
	}
	m.Set(0, 0, D2)
	if m[0][0] != D2 {
		t.Errorf("Set did not raise entry: %v", m[0][0])
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrix()
	m.Set(Int, Ext, D2)
	m.Set(Bnd, Int, D1)
	tr := m.Transpose()
	if tr[Ext][Int] != D2 || tr[Int][Bnd] != D1 {
		t.Errorf("transpose = %s", tr)
	}
	if tr.Transpose() != m {
		t.Error("double transpose must be identity")
	}
}

func TestParseMatrixRoundTrip(t *testing.T) {
	for _, s := range []string{"FFFFFFFFF", "212101212", "F0F1F2F0F"} {
		m, err := ParseMatrix(s)
		if err != nil {
			t.Fatalf("ParseMatrix(%q): %v", s, err)
		}
		if m.String() != s {
			t.Errorf("round trip: %q -> %q", s, m.String())
		}
	}
	if _, err := ParseMatrix("TOOSHORT"); err == nil {
		t.Error("short string should fail")
	}
	if _, err := ParseMatrix("XXXXXXXXX"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestMatrixMatches(t *testing.T) {
	m, _ := ParseMatrix("212F11FF2")
	cases := []struct {
		pattern string
		want    bool
	}{
		{"*********", true},
		{"212F11FF2", true},
		{"T*T***FF*", true},
		{"T********", true},
		{"F********", false},
		{"***T*****", false},
		{"2********", true},
		{"1********", false},
	}
	for _, tc := range cases {
		if got := m.Matches(tc.pattern); got != tc.want {
			t.Errorf("Matches(%q) = %v, want %v", tc.pattern, got, tc.want)
		}
	}
}

func TestMatrixMatchesPanics(t *testing.T) {
	m := NewMatrix()
	mustPanic(t, func() { m.Matches("short") })
	mustPanic(t, func() { m.Matches("XXXXXXXXX") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestRelationString(t *testing.T) {
	cases := map[Relation]string{
		RelationNone: "none",
		Equals:       "equals",
		Disjoint:     "disjoint",
		Touches:      "touches",
		Contains:     "contains",
		Within:       "within",
		Covers:       "covers",
		CoveredBy:    "coveredBy",
		Crosses:      "crosses",
		Overlaps:     "overlaps",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Relation(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRelationInverse(t *testing.T) {
	cases := map[Relation]Relation{
		Contains:  Within,
		Within:    Contains,
		Covers:    CoveredBy,
		CoveredBy: Covers,
		Equals:    Equals,
		Disjoint:  Disjoint,
		Touches:   Touches,
		Crosses:   Crosses,
		Overlaps:  Overlaps,
	}
	for r, want := range cases {
		if got := r.Inverse(); got != want {
			t.Errorf("%v.Inverse() = %v, want %v", r, got, want)
		}
	}
}

func TestAllRelationsComplete(t *testing.T) {
	rs := AllRelations()
	if len(rs) != 9 {
		t.Fatalf("AllRelations has %d entries, want 9", len(rs))
	}
	seen := map[Relation]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Errorf("duplicate relation %v", r)
		}
		seen[r] = true
	}
}

func TestLocToCol(t *testing.T) {
	if locToCol(geom.Interior) != Int || locToCol(geom.Boundary) != Bnd ||
		locToCol(geom.Exterior) != Ext {
		t.Error("locToCol mapping wrong")
	}
}
