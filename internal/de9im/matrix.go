// Package de9im computes the dimensionally extended nine-intersection
// model (DE-9IM) of Clementini/Egenhofer for pairs of planar geometries and
// derives the named topological relations the paper's predicate extraction
// uses: equals, disjoint, touches, contains, within, covers, coveredBy,
// crosses, and overlaps — the vocabulary of Egenhofer & Franzosa's
// 9-intersection model cited as [10] in the paper.
//
// The computation follows the classic relate strategy: decompose both
// geometries into tagged linework and points (geom.BuildSoup), node the
// linework at mutual intersections, classify each resulting sub-segment
// midpoint and isolated point against the other geometry, and fill in the
// area entries by containment reasoning.
package de9im

import (
	"fmt"
	"strings"

	"repro/internal/geom"
)

// Dim is a DE-9IM matrix entry: the dimension of an intersection, or F
// (empty).
type Dim int8

// Matrix entry values.
const (
	// F marks an empty intersection.
	F Dim = -1
	// D0, D1, D2 are intersection dimensions 0, 1, and 2.
	D0 Dim = 0
	D1 Dim = 1
	D2 Dim = 2
)

// Rune returns the standard DE-9IM character for the entry.
func (d Dim) Rune() byte {
	switch d {
	case F:
		return 'F'
	case D0:
		return '0'
	case D1:
		return '1'
	case D2:
		return '2'
	}
	return '?'
}

// Matrix is a DE-9IM matrix. Rows index the first geometry's interior,
// boundary, and exterior; columns the second geometry's.
type Matrix [3][3]Dim

// Row/column indices into a Matrix.
const (
	Int = 0
	Bnd = 1
	Ext = 2
)

// NewMatrix returns a matrix with all entries empty (F).
func NewMatrix() Matrix {
	var m Matrix
	for i := range m {
		for j := range m[i] {
			m[i][j] = F
		}
	}
	return m
}

// Set raises entry (r, c) to at least d. Entries only ever grow: a
// dimension-2 intersection subsumes evidence of lower dimension.
func (m *Matrix) Set(r, c int, d Dim) {
	if d > m[r][c] {
		m[r][c] = d
	}
}

// Transpose returns the matrix of the swapped operand order.
func (m Matrix) Transpose() Matrix {
	var t Matrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[j][i] = m[i][j]
		}
	}
	return t
}

// String renders the matrix in the standard 9-character form, row-major.
func (m Matrix) String() string {
	var b strings.Builder
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b.WriteByte(m[i][j].Rune())
		}
	}
	return b.String()
}

// ParseMatrix parses a 9-character DE-9IM string ("T*F**FFF*" patterns are
// parsed by ParsePattern instead; this accepts only F, 0, 1, 2).
func ParseMatrix(s string) (Matrix, error) {
	if len(s) != 9 {
		return Matrix{}, fmt.Errorf("de9im: matrix string must have 9 characters, got %d", len(s))
	}
	var m Matrix
	for i := 0; i < 9; i++ {
		var d Dim
		switch s[i] {
		case 'F', 'f':
			d = F
		case '0':
			d = D0
		case '1':
			d = D1
		case '2':
			d = D2
		default:
			return Matrix{}, fmt.Errorf("de9im: invalid matrix character %q", s[i])
		}
		m[i/3][i%3] = d
	}
	return m, nil
}

// Matches reports whether the matrix satisfies a 9-character DE-9IM
// pattern. Pattern characters: 'T' (non-empty), 'F' (empty), '*' (any),
// and '0'/'1'/'2' (exact dimension).
func (m Matrix) Matches(pattern string) bool {
	if len(pattern) != 9 {
		panic(fmt.Sprintf("de9im: pattern must have 9 characters, got %q", pattern))
	}
	for i := 0; i < 9; i++ {
		e := m[i/3][i%3]
		switch pattern[i] {
		case '*':
		case 'T', 't':
			if e == F {
				return false
			}
		case 'F', 'f':
			if e != F {
				return false
			}
		case '0':
			if e != D0 {
				return false
			}
		case '1':
			if e != D1 {
				return false
			}
		case '2':
			if e != D2 {
				return false
			}
		default:
			panic(fmt.Sprintf("de9im: invalid pattern character %q", pattern[i]))
		}
	}
	return true
}

// locToCol maps a geom.Location to the matrix column index for the second
// geometry.
func locToCol(l geom.Location) int {
	switch l {
	case geom.Interior:
		return Int
	case geom.Boundary:
		return Bnd
	default:
		return Ext
	}
}
