package de9im

import "repro/internal/geom"

// operand abstracts the two inputs of the relate computation so the same
// core serves raw geometries (derived structures built on demand, as
// before) and prepared geometries (everything cached in geom.Prepared and
// the hot queries answered through its edge tree). Both implementations
// perform identical floating-point arithmetic, so the matrices agree
// exactly.
type operand interface {
	IsEmpty() bool
	Envelope() geom.Envelope
	Soup() *geom.Soup
	Locate(p geom.Point) geom.Location
	AreaSamples() []geom.Point
}

// rawOperand wraps an unprepared geometry. The soup is built lazily and
// memoized so the short-circuit paths (empty operand, disjoint
// envelopes) keep their allocation profile, and the main path builds each
// soup once, as the previous implementation did.
type rawOperand struct {
	g    geom.Geometry
	soup *geom.Soup
}

func (o *rawOperand) IsEmpty() bool           { return o.g == nil || o.g.IsEmpty() }
func (o *rawOperand) Envelope() geom.Envelope { return o.g.Envelope() }
func (o *rawOperand) Soup() *geom.Soup {
	if o.soup == nil {
		o.soup = geom.BuildSoup(o.g)
	}
	return o.soup
}
func (o *rawOperand) Locate(p geom.Point) geom.Location { return geom.Locate(p, o.g) }
func (o *rawOperand) AreaSamples() []geom.Point         { return geom.AreaSamples(o.g) }

// nodeOperands nodes the two operands' linework: a tree join when both
// sides are prepared, the all-pairs sweep otherwise.
func nodeOperands(a, b operand) geom.NodeResult {
	if pa, ok := a.(*geom.Prepared); ok {
		if pb, ok := b.(*geom.Prepared); ok {
			return geom.NodePrepared(pa, pb)
		}
	}
	return geom.NodeSoups(a.Soup(), b.Soup())
}

// Relate computes the DE-9IM matrix of geometry a against geometry b.
//
// Algorithm: both geometries are decomposed into tagged linework and points
// (geom.BuildSoup); the linework is noded at every mutual intersection;
// each resulting sub-segment midpoint, isolated point, and node point is
// classified against the other geometry; finally the 2-D (area) entries are
// filled in by containment reasoning over the classified boundary pieces
// and per-component interior sample points.
//
// Inputs are assumed valid (simple rings, holes inside shells, multi-part
// members with disjoint interiors); geom.Validate can check this.
func Relate(a, b geom.Geometry) Matrix {
	oa, ob := rawOperand{g: a}, rawOperand{g: b}
	return relateOperands(&oa, &ob)
}

// RelatePrepared is Relate over prepared geometries: the cached soups,
// envelopes, and sample points are reused, point location is answered by
// the edge tree's stabbing and ray queries, and noding by a tree join.
// The matrix is exactly Relate(a.Geometry(), b.Geometry()).
func RelatePrepared(a, b *geom.Prepared) Matrix {
	return relateOperands(a, b)
}

// relateOperands is the relate core shared by Relate and RelatePrepared.
func relateOperands(a, b operand) Matrix {
	m := NewMatrix()
	aEmpty, bEmpty := a.IsEmpty(), b.IsEmpty()
	m[Ext][Ext] = D2 // two bounded (possibly empty) geometries in the plane
	if aEmpty && bEmpty {
		return m
	}
	if aEmpty {
		t := relateOperands(b, a).Transpose()
		return t
	}
	if bEmpty {
		// All of a lies in b's exterior.
		fillAllExterior(&m, a.Soup(), false)
		return m
	}
	// Disjoint envelopes imply disjoint geometries: fill both exterior
	// slices directly and skip the noding machinery entirely. This is
	// the common case of a spatial join after the index filter.
	if !a.Envelope().Buffer(geom.Eps).Intersects(b.Envelope()) {
		fillAllExterior(&m, a.Soup(), false)
		fillAllExterior(&m, b.Soup(), true)
		return m
	}

	sa, sb := a.Soup(), b.Soup()
	noded := nodeOperands(a, b)

	// Classification evidence gathered along the way, used by the area
	// entries below.
	var (
		aRingInIntB, aRingOnBndB, aRingInExtB bool
		bRingInIntA, bRingOnBndA, bRingInExtA bool
	)

	// Classify a's sub-segments against b.
	for _, ts := range noded.SubA {
		loc := b.Locate(ts.Seg.Midpoint())
		row := Int
		if ts.Role == geom.RoleRingBoundary {
			row = Bnd
			switch loc {
			case geom.Interior:
				aRingInIntB = true
			case geom.Boundary:
				aRingOnBndB = true
			default:
				aRingInExtB = true
			}
		}
		m.Set(row, locToCol(loc), D1)
	}
	// Classify b's sub-segments against a (transposed roles).
	for _, ts := range noded.SubB {
		loc := a.Locate(ts.Seg.Midpoint())
		col := Int
		if ts.Role == geom.RoleRingBoundary {
			col = Bnd
			switch loc {
			case geom.Interior:
				bRingInIntA = true
			case geom.Boundary:
				bRingOnBndA = true
			default:
				bRingInExtA = true
			}
		}
		m.Set(rowOfLoc(loc), col, D1)
	}
	// Isolated interior points (Point/MultiPoint members).
	for _, p := range sa.InteriorPoints {
		m.Set(Int, locToCol(b.Locate(p)), D0)
	}
	for _, p := range sb.InteriorPoints {
		m.Set(rowOfLoc(a.Locate(p)), Int, D0)
	}
	// Linestring boundary (endpoint) points.
	for _, p := range sa.BoundaryPoints {
		m.Set(Bnd, locToCol(b.Locate(p)), D0)
	}
	for _, p := range sb.BoundaryPoints {
		m.Set(rowOfLoc(a.Locate(p)), Bnd, D0)
	}
	// Noding intersection points: 0-dimensional contacts that the
	// sub-segment midpoints cannot see (e.g. two rings meeting at a
	// single vertex).
	for _, p := range noded.Nodes {
		la, lb := a.Locate(p), b.Locate(p)
		m.Set(rowOfLoc(la), locToCol(lb), D0)
	}

	// Area (dimension-2) entries.
	if sa.HasArea || sb.HasArea {
		// Interior samples, one per polygonal component.
		samplesA := a.AreaSamples()
		samplesB := b.AreaSamples()
		var aSampleInIntB, aSampleInExtB, bSampleInIntA, bSampleInExtA bool
		for _, p := range samplesA {
			switch b.Locate(p) {
			case geom.Interior:
				aSampleInIntB = true
			case geom.Exterior:
				aSampleInExtB = true
			}
		}
		for _, p := range samplesB {
			switch a.Locate(p) {
			case geom.Interior:
				bSampleInIntA = true
			case geom.Exterior:
				bSampleInExtA = true
			}
		}
		if sa.HasArea && sb.HasArea {
			// Interior/interior overlap.
			if aRingInIntB || bRingInIntA || aSampleInIntB || bSampleInIntA {
				m.Set(Int, Int, D2)
			}
			// a's interior outside closure(b)?
			if aRingInExtB || bRingInIntA || aSampleInExtB {
				m.Set(Int, Ext, D2)
			}
			// b's interior outside closure(a)?
			if bRingInExtA || aRingInIntB || bSampleInExtA {
				m.Set(Ext, Int, D2)
			}
			_ = aRingOnBndB
			_ = bRingOnBndA
		} else if sa.HasArea {
			// b is lower-dimensional: it cannot cover a's interior.
			m.Set(Int, Ext, D2)
			// b's linework/points inside Int(a) already recorded by the
			// classification passes above.
		} else {
			m.Set(Ext, Int, D2)
		}
	}
	return m
}

// fillAllExterior records that every part of the souped geometry lies in
// the other operand's exterior: rows (transpose=false) or columns
// (transpose=true) against Ext.
func fillAllExterior(m *Matrix, s *geom.Soup, transpose bool) {
	set := func(r int, d Dim) {
		if transpose {
			m.Set(Ext, r, d)
		} else {
			m.Set(r, Ext, d)
		}
	}
	if s.HasArea {
		set(Int, D2)
		set(Bnd, D1)
	}
	if s.HasLine {
		set(Int, D1)
		if len(s.BoundaryPoints) > 0 {
			set(Bnd, D0)
		}
	}
	if s.HasPoint {
		set(Int, D0)
	}
}

// rowOfLoc maps a location of a point relative to geometry a onto the
// matrix row index.
func rowOfLoc(l geom.Location) int {
	switch l {
	case geom.Interior:
		return Int
	case geom.Boundary:
		return Bnd
	default:
		return Ext
	}
}
