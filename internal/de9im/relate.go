package de9im

import "repro/internal/geom"

// Relate computes the DE-9IM matrix of geometry a against geometry b.
//
// Algorithm: both geometries are decomposed into tagged linework and points
// (geom.BuildSoup); the linework is noded at every mutual intersection;
// each resulting sub-segment midpoint, isolated point, and node point is
// classified against the other geometry; finally the 2-D (area) entries are
// filled in by containment reasoning over the classified boundary pieces
// and per-component interior sample points.
//
// Inputs are assumed valid (simple rings, holes inside shells, multi-part
// members with disjoint interiors); geom.Validate can check this.
func Relate(a, b geom.Geometry) Matrix {
	m := NewMatrix()
	aEmpty, bEmpty := a == nil || a.IsEmpty(), b == nil || b.IsEmpty()
	m[Ext][Ext] = D2 // two bounded (possibly empty) geometries in the plane
	if aEmpty && bEmpty {
		return m
	}
	if aEmpty {
		t := Relate(b, a).Transpose()
		return t
	}
	if bEmpty {
		// All of a lies in b's exterior.
		fillAllExterior(&m, geom.BuildSoup(a), false)
		return m
	}
	// Disjoint envelopes imply disjoint geometries: fill both exterior
	// slices directly and skip the noding machinery entirely. This is
	// the common case of a spatial join after the index filter.
	if !a.Envelope().Buffer(geom.Eps).Intersects(b.Envelope()) {
		fillAllExterior(&m, geom.BuildSoup(a), false)
		fillAllExterior(&m, geom.BuildSoup(b), true)
		return m
	}

	sa, sb := geom.BuildSoup(a), geom.BuildSoup(b)
	noded := geom.NodeSoups(sa, sb)

	// Classification evidence gathered along the way, used by the area
	// entries below.
	var (
		aRingInIntB, aRingOnBndB, aRingInExtB bool
		bRingInIntA, bRingOnBndA, bRingInExtA bool
	)

	// Classify a's sub-segments against b.
	for _, ts := range noded.SubA {
		loc := geom.Locate(ts.Seg.Midpoint(), b)
		row := Int
		if ts.Role == geom.RoleRingBoundary {
			row = Bnd
			switch loc {
			case geom.Interior:
				aRingInIntB = true
			case geom.Boundary:
				aRingOnBndB = true
			default:
				aRingInExtB = true
			}
		}
		m.Set(row, locToCol(loc), D1)
	}
	// Classify b's sub-segments against a (transposed roles).
	for _, ts := range noded.SubB {
		loc := geom.Locate(ts.Seg.Midpoint(), a)
		col := Int
		if ts.Role == geom.RoleRingBoundary {
			col = Bnd
			switch loc {
			case geom.Interior:
				bRingInIntA = true
			case geom.Boundary:
				bRingOnBndA = true
			default:
				bRingInExtA = true
			}
		}
		m.Set(rowOfLoc(loc), col, D1)
	}
	// Isolated interior points (Point/MultiPoint members).
	for _, p := range sa.InteriorPoints {
		m.Set(Int, locToCol(geom.Locate(p, b)), D0)
	}
	for _, p := range sb.InteriorPoints {
		m.Set(rowOfLoc(geom.Locate(p, a)), Int, D0)
	}
	// Linestring boundary (endpoint) points.
	for _, p := range sa.BoundaryPoints {
		m.Set(Bnd, locToCol(geom.Locate(p, b)), D0)
	}
	for _, p := range sb.BoundaryPoints {
		m.Set(rowOfLoc(geom.Locate(p, a)), Bnd, D0)
	}
	// Noding intersection points: 0-dimensional contacts that the
	// sub-segment midpoints cannot see (e.g. two rings meeting at a
	// single vertex).
	for _, p := range noded.Nodes {
		la, lb := geom.Locate(p, a), geom.Locate(p, b)
		m.Set(rowOfLoc(la), locToCol(lb), D0)
	}

	// Area (dimension-2) entries.
	if sa.HasArea || sb.HasArea {
		// Interior samples, one per polygonal component.
		samplesA := areaSamples(a)
		samplesB := areaSamples(b)
		var aSampleInIntB, aSampleInExtB, bSampleInIntA, bSampleInExtA bool
		for _, p := range samplesA {
			switch geom.Locate(p, b) {
			case geom.Interior:
				aSampleInIntB = true
			case geom.Exterior:
				aSampleInExtB = true
			}
		}
		for _, p := range samplesB {
			switch geom.Locate(p, a) {
			case geom.Interior:
				bSampleInIntA = true
			case geom.Exterior:
				bSampleInExtA = true
			}
		}
		if sa.HasArea && sb.HasArea {
			// Interior/interior overlap.
			if aRingInIntB || bRingInIntA || aSampleInIntB || bSampleInIntA {
				m.Set(Int, Int, D2)
			}
			// a's interior outside closure(b)?
			if aRingInExtB || bRingInIntA || aSampleInExtB {
				m.Set(Int, Ext, D2)
			}
			// b's interior outside closure(a)?
			if bRingInExtA || aRingInIntB || bSampleInExtA {
				m.Set(Ext, Int, D2)
			}
			_ = aRingOnBndB
			_ = bRingOnBndA
		} else if sa.HasArea {
			// b is lower-dimensional: it cannot cover a's interior.
			m.Set(Int, Ext, D2)
			// b's linework/points inside Int(a) already recorded by the
			// classification passes above.
		} else {
			m.Set(Ext, Int, D2)
		}
	}
	return m
}

// fillAllExterior records that every part of the souped geometry lies in
// the other operand's exterior: rows (transpose=false) or columns
// (transpose=true) against Ext.
func fillAllExterior(m *Matrix, s *geom.Soup, transpose bool) {
	set := func(r int, d Dim) {
		if transpose {
			m.Set(Ext, r, d)
		} else {
			m.Set(r, Ext, d)
		}
	}
	if s.HasArea {
		set(Int, D2)
		set(Bnd, D1)
	}
	if s.HasLine {
		set(Int, D1)
		if len(s.BoundaryPoints) > 0 {
			set(Bnd, D0)
		}
	}
	if s.HasPoint {
		set(Int, D0)
	}
}

// rowOfLoc maps a location of a point relative to geometry a onto the
// matrix row index.
func rowOfLoc(l geom.Location) int {
	switch l {
	case geom.Interior:
		return Int
	case geom.Boundary:
		return Bnd
	default:
		return Ext
	}
}

// areaSamples returns one interior sample point per polygonal component.
func areaSamples(g geom.Geometry) []geom.Point {
	switch t := g.(type) {
	case geom.Polygon:
		if p, ok := geom.InteriorPoint(t); ok {
			return []geom.Point{p}
		}
	case geom.MultiPolygon:
		var pts []geom.Point
		for _, poly := range t.Polygons {
			if p, ok := geom.InteriorPoint(poly); ok {
				pts = append(pts, p)
			}
		}
		return pts
	}
	return nil
}
