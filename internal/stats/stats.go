// Package stats provides the small reporting utilities the experiment
// harness uses: labelled numeric series, summary statistics, and an ASCII
// bar-chart renderer for terminal-friendly figure reproduction.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is a labelled sequence of numeric observations, one per x-axis
// point.
type Series struct {
	Name   string
	Values []float64
}

// Summary holds basic descriptive statistics.
type Summary struct {
	Min, Max, Mean, StdDev float64
	N                      int
}

// Summarize computes descriptive statistics of a slice. Empty input
// yields a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Min: values[0], Max: values[0], N: len(values)}
	sum := 0.0
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(values))
	var sq float64
	for _, v := range values {
		d := v - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(values)))
	return s
}

// BarChart renders grouped horizontal ASCII bars: one group per x label,
// one bar per series, scaled to width characters. The output reproduces
// the visual shape of the paper's bar figures in a terminal.
//
//	minsup=5%   apriori  ############################ 1735
//	            kc       ################# 1088
//	            kc+      ###### 399
func BarChart(labels []string, series []Series, width int) string {
	if width < 10 {
		width = 10
	}
	maxVal := 0.0
	nameWidth := 0
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for xi, label := range labels {
		for si, s := range series {
			if xi >= len(s.Values) {
				continue
			}
			v := s.Values[xi]
			bar := 0
			if maxVal > 0 {
				bar = int(math.Round(v / maxVal * float64(width)))
			}
			if bar == 0 && v > 0 {
				bar = 1
			}
			rowLabel := label
			if si > 0 {
				rowLabel = ""
			}
			fmt.Fprintf(&b, "%-*s  %-*s %s %v\n",
				labelWidth, rowLabel, nameWidth, s.Name,
				strings.Repeat("#", bar), trimFloat(v))
		}
	}
	return b.String()
}

// trimFloat renders integers without a decimal point.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
