package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]float64{3})
	if one.Min != 3 || one.Max != 3 || one.StdDev != 0 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart(
		[]string{"5%", "10%"},
		[]Series{
			{Name: "apriori", Values: []float64{100, 50}},
			{Name: "kc+", Values: []float64{25, 10}},
		},
		20,
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	// The maximum value fills the full width.
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	// Half the max gets half the bar.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) || strings.Contains(lines[2], strings.Repeat("#", 11)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	// Group labels appear once per group.
	if !strings.HasPrefix(lines[0], "5%") || strings.HasPrefix(lines[1], "5%") {
		t.Errorf("labels wrong:\n%s", out)
	}
	// Values are printed.
	if !strings.Contains(lines[0], "100") {
		t.Errorf("value missing: %q", lines[0])
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	// Tiny positive values still render one hash.
	out := BarChart([]string{"x"}, []Series{{Name: "s", Values: []float64{0.001, 0}}, {Name: "big", Values: []float64{1000}}}, 30)
	if !strings.Contains(out, "#") {
		t.Error("tiny value lost its bar")
	}
	// Zero-width clamps.
	out = BarChart([]string{"x"}, []Series{{Name: "s", Values: []float64{5}}}, 0)
	if !strings.Contains(out, "#") {
		t.Error("clamped width chart empty")
	}
	// Series shorter than labels are skipped gracefully.
	out = BarChart([]string{"a", "b"}, []Series{{Name: "s", Values: []float64{1}}}, 10)
	if strings.Count(out, "\n") != 1 {
		t.Errorf("short series handling wrong:\n%q", out)
	}
	// All-zero series renders without bars but with values.
	out = BarChart([]string{"a"}, []Series{{Name: "s", Values: []float64{0}}}, 10)
	if !strings.Contains(out, "0") {
		t.Error("zero value not printed")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(42) != "42" {
		t.Errorf("trimFloat(42) = %q", trimFloat(42))
	}
	if trimFloat(42.5) != "42.50" {
		t.Errorf("trimFloat(42.5) = %q", trimFloat(42.5))
	}
}
