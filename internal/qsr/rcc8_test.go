package qsr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func allRCC8() []RCC8 {
	return []RCC8{DC, EC, PO, EQ, TPP, NTPP, TPPi, NTPPi}
}

func TestRCC8Strings(t *testing.T) {
	want := map[RCC8]string{
		DC: "DC", EC: "EC", PO: "PO", EQ: "EQ",
		TPP: "TPP", NTPP: "NTPP", TPPi: "TPPi", NTPPi: "NTPPi",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%v.String() = %q", r, r.String())
		}
	}
	if RCC8(99).String() != "qsr.RCC8(99)" {
		t.Error("unknown RCC8 string")
	}
}

func TestRCC8ConverseInvolution(t *testing.T) {
	for _, r := range allRCC8() {
		if r.Converse().Converse() != r {
			t.Errorf("converse not involutive for %v", r)
		}
	}
	if TPP.Converse() != TPPi || NTPP.Converse() != NTPPi {
		t.Error("proper-part converses wrong")
	}
	for _, sym := range []RCC8{DC, EC, PO, EQ} {
		if sym.Converse() != sym {
			t.Errorf("%v should be symmetric", sym)
		}
	}
}

func TestRCC8ConversionRoundTrip(t *testing.T) {
	for _, r := range allRCC8() {
		rel := FromRCC8(r)
		back, ok := ToRCC8(rel)
		if !ok || back != r {
			t.Errorf("round trip %v -> %v -> %v (%v)", r, rel, back, ok)
		}
	}
	for _, noRCC8 := range []Relation{Crosses, CloseTo, NorthOf} {
		if _, ok := ToRCC8(noRCC8); ok {
			t.Errorf("%v should have no RCC8 counterpart", noRCC8)
		}
	}
}

func TestRCC8SetOps(t *testing.T) {
	s := NewRCC8Set(DC, EC)
	if !s.Has(DC) || !s.Has(EC) || s.Has(PO) {
		t.Error("membership wrong")
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	if s.String() != "{DC, EC}" {
		t.Errorf("String = %q", s.String())
	}
	if Universal.Size() != 8 {
		t.Error("universal size")
	}
	if !RCC8Set(0).IsEmpty() || s.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if s.Intersect(NewRCC8Set(EC, PO)) != NewRCC8Set(EC) {
		t.Error("Intersect wrong")
	}
	if s.Union(NewRCC8Set(PO)) != NewRCC8Set(DC, EC, PO) {
		t.Error("Union wrong")
	}
	if NewRCC8Set(TPP, DC).Converse() != NewRCC8Set(TPPi, DC) {
		t.Error("set Converse wrong")
	}
	rels := NewRCC8Set(PO, DC).Relations()
	if len(rels) != 2 || rels[0] != DC || rels[1] != PO {
		t.Errorf("Relations = %v", rels)
	}
}

func TestCompositionIdentity(t *testing.T) {
	// EQ is the identity of the algebra.
	for _, r := range allRCC8() {
		if got := Compose(EQ, r); got != NewRCC8Set(r) {
			t.Errorf("EQ ∘ %v = %v", r, got)
		}
		if got := Compose(r, EQ); got != NewRCC8Set(r) {
			t.Errorf("%v ∘ EQ = %v", r, got)
		}
	}
}

func TestCompositionConverseLaw(t *testing.T) {
	// (r ∘ s)^-1 == s^-1 ∘ r^-1 must hold entry-wise in the table.
	for _, r := range allRCC8() {
		for _, s := range allRCC8() {
			lhs := Compose(r, s).Converse()
			rhs := ComposeSets(NewRCC8Set(s.Converse()), NewRCC8Set(r.Converse()))
			if lhs != rhs {
				t.Errorf("converse law fails for %v ∘ %v: %v vs %v", r, s, lhs, rhs)
			}
		}
	}
}

func TestCompositionContainsWitness(t *testing.T) {
	// Every table entry must contain at least one relation (RCC8
	// composition is never empty), and identity-related sanity rows.
	for _, r := range allRCC8() {
		for _, s := range allRCC8() {
			if Compose(r, s).IsEmpty() {
				t.Errorf("empty composition %v ∘ %v", r, s)
			}
		}
	}
	// Transitivity of strict containment.
	if Compose(NTPP, NTPP) != NewRCC8Set(NTPP) {
		t.Error("NTPP ∘ NTPP must be {NTPP}")
	}
	if Compose(NTPPi, NTPPi) != NewRCC8Set(NTPPi) {
		t.Error("NTPPi ∘ NTPPi must be {NTPPi}")
	}
	// A strict part of a region disconnected from c is disconnected too.
	if Compose(NTPP, DC) != NewRCC8Set(DC) {
		t.Error("NTPP ∘ DC must be {DC}")
	}
}

// randomRegion returns a random axis-aligned rectangle with small integer
// coordinates, occasionally snapped to share edges/containment with a
// base square to exercise the rarer relations.
func randomRegion(rng *rand.Rand) geom.Geometry {
	switch rng.Intn(6) {
	case 0: // the base square itself (EQ opportunities)
		return geom.Rect(2, 2, 6, 6)
	case 1: // strictly inside the base square (NTPP)
		return geom.Rect(3, 3, 5, 5)
	case 2: // inside sharing an edge (TPP)
		return geom.Rect(2, 3, 4, 5)
	case 3: // touching the base square (EC)
		return geom.Rect(6, 2, 8, 4)
	default:
		x := float64(rng.Intn(8))
		y := float64(rng.Intn(8))
		w := float64(1 + rng.Intn(5))
		h := float64(1 + rng.Intn(5))
		return geom.Rect(x, y, x+w, y+h)
	}
}

// TestCompositionSoundOnGeometry is the generative soundness check: for
// random region triples, the observed relation between a and c must be a
// member of the composition of the observed relations (a,b) and (b,c).
// A single wrong entry in the composition table fails this quickly.
func TestCompositionSoundOnGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 3000; trial++ {
		a, b, c := randomRegion(rng), randomRegion(rng), randomRegion(rng)
		rab, ok1 := RCC8Of(a, b)
		rbc, ok2 := RCC8Of(b, c)
		rac, ok3 := RCC8Of(a, c)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		checked++
		if !Compose(rab, rbc).Has(rac) {
			t.Fatalf("composition unsound: %v(a,b) ∘ %v(b,c) = %v but observed %v(a,c)\n a=%s\n b=%s\n c=%s",
				rab, rbc, Compose(rab, rbc), rac, a.WKT(), b.WKT(), c.WKT())
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d triples checked; generator too restrictive", checked)
	}
}

func TestNetworkBasics(t *testing.T) {
	net := NewNetwork(3)
	if net.Size() != 3 {
		t.Fatal("size")
	}
	if net.Constraint(0, 0) != NewRCC8Set(EQ) {
		t.Error("diagonal must be EQ")
	}
	if net.Constraint(0, 1) != Universal {
		t.Error("off-diagonal must start universal")
	}
	if !net.Constrain(0, 1, NewRCC8Set(TPP)) {
		t.Fatal("constrain failed")
	}
	if net.Constraint(1, 0) != NewRCC8Set(TPPi) {
		t.Error("converse edge not maintained")
	}
	// Conflicting constraint empties the edge.
	if net.Constrain(0, 1, NewRCC8Set(DC)) {
		t.Error("conflicting constraint should report unsatisfiable")
	}
}

func TestPathConsistencyInfersComposition(t *testing.T) {
	// a NTPP b, b NTPP c: closure must infer a NTPP c.
	net := NewNetwork(3)
	net.Constrain(0, 1, NewRCC8Set(NTPP))
	net.Constrain(1, 2, NewRCC8Set(NTPP))
	if !net.PathConsistent() {
		t.Fatal("consistent network reported inconsistent")
	}
	if got := net.Constraint(0, 2); got != NewRCC8Set(NTPP) {
		t.Errorf("inferred (0,2) = %v, want {NTPP}", got)
	}
}

func TestPathConsistencyDetectsInconsistency(t *testing.T) {
	// a NTPP b, b NTPP c, a DC c is impossible (a must be inside c).
	net := NewNetwork(3)
	net.Constrain(0, 1, NewRCC8Set(NTPP))
	net.Constrain(1, 2, NewRCC8Set(NTPP))
	net.Constrain(0, 2, NewRCC8Set(DC))
	if net.PathConsistent() {
		t.Error("inconsistent network not detected")
	}
}

func TestNetworkFromSceneIsPathConsistent(t *testing.T) {
	// Any network observed from real geometry must be path-consistent —
	// another strong generative check of the composition table.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		regions := make([]geom.Geometry, 6)
		for i := range regions {
			regions[i] = randomRegion(rng)
		}
		net := NetworkFromScene(regions)
		if !net.PathConsistent() {
			t.Fatalf("observed scene network inconsistent (trial %d)", trial)
		}
	}
}

func TestNewNetworkPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNetwork(-1)
}

func BenchmarkPathConsistency(b *testing.B) {
	// A 12-region network observed from geometry, re-closed each
	// iteration.
	rng := rand.New(rand.NewSource(9))
	regions := make([]geom.Geometry, 12)
	for i := range regions {
		regions[i] = randomRegion(rng)
	}
	base := NetworkFromScene(regions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := NewNetwork(base.Size())
		for x := 0; x < base.Size(); x++ {
			for y := x + 1; y < base.Size(); y++ {
				net.Constrain(x, y, base.Constraint(x, y))
			}
		}
		if !net.PathConsistent() {
			b.Fatal("observed network inconsistent")
		}
	}
}

func BenchmarkRCC8Classify(b *testing.B) {
	a := geom.Rect(0, 0, 10, 10)
	c := geom.Rect(2, 2, 6, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, ok := RCC8Of(a, c); !ok || r != NTPPi {
			b.Fatal("classification wrong")
		}
	}
}
