package qsr

import (
	"testing"

	"repro/internal/geom"
)

func TestRelationStringsAndParse(t *testing.T) {
	all := append(append(TopologicalRelations(), DistanceRelations()...), DirectionalRelations()...)
	if len(all) != 16 {
		t.Fatalf("relation vocabulary has %d entries, want 16", len(all))
	}
	for _, r := range all {
		parsed, err := ParseRelation(r.String())
		if err != nil {
			t.Errorf("ParseRelation(%q): %v", r.String(), err)
			continue
		}
		if parsed != r {
			t.Errorf("round trip %v -> %v", r, parsed)
		}
	}
	if _, err := ParseRelation("bogus"); err == nil {
		t.Error("ParseRelation should reject unknown names")
	}
}

func TestRelationFamilies(t *testing.T) {
	for _, r := range TopologicalRelations() {
		if r.Family() != FamilyTopological {
			t.Errorf("%v family = %v", r, r.Family())
		}
	}
	for _, r := range DistanceRelations() {
		if r.Family() != FamilyDistance {
			t.Errorf("%v family = %v", r, r.Family())
		}
	}
	for _, r := range DirectionalRelations() {
		if r.Family() != FamilyDirectional {
			t.Errorf("%v family = %v", r, r.Family())
		}
	}
	if FamilyTopological.String() != "topological" ||
		FamilyDistance.String() != "distance" ||
		FamilyDirectional.String() != "directional" {
		t.Error("family strings wrong")
	}
}

func TestTopologicalClassification(t *testing.T) {
	district := geom.Rect(0, 0, 10, 10)
	cases := []struct {
		name string
		b    geom.Geometry
		want Relation
	}{
		{"contains", geom.Rect(2, 2, 4, 4), Contains},
		{"covers", geom.Rect(0, 0, 4, 4), Covers},
		{"touches", geom.Rect(10, 0, 14, 4), Touches},
		{"overlaps", geom.Rect(8, 8, 14, 14), Overlaps},
		{"disjoint", geom.Rect(20, 20, 22, 22), Disjoint},
		{"equals", geom.Rect(0, 0, 10, 10), Equals},
	}
	for _, tc := range cases {
		got, ok := Topological(district, tc.b)
		if !ok {
			t.Errorf("%s: no relation", tc.name)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, ok := Topological(geom.MultiPoint{}, district); ok {
		t.Error("empty operand should yield no relation")
	}
}

func TestDistanceThresholds(t *testing.T) {
	th := DistanceThresholds{VeryCloseMax: 1, CloseMax: 5}
	cases := []struct {
		d    float64
		want Relation
	}{
		{0, VeryClose},
		{1, VeryClose},
		{1.01, CloseTo},
		{5, CloseTo},
		{5.01, FarFrom},
		{1e9, FarFrom},
	}
	for _, tc := range cases {
		if got := th.Classify(tc.d); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds(100)
	if th.VeryCloseMax != 10 || th.CloseMax != 50 {
		t.Errorf("DefaultThresholds = %+v", th)
	}
}

func TestDistanceRelation(t *testing.T) {
	th := DistanceThresholds{VeryCloseMax: 1, CloseMax: 5}
	a := geom.Rect(0, 0, 2, 2)
	// Contained police center: distance 0, very close — the paper's
	// "districts Cristal and Cavalhada will be very close, since they
	// contain police centers".
	if got := DistanceRelation(a, geom.Pt(1, 1), th); got != VeryClose {
		t.Errorf("contained point = %v, want veryCloseTo", got)
	}
	if got := DistanceRelation(a, geom.Pt(6, 1), th); got != CloseTo {
		t.Errorf("4 away = %v, want closeTo", got)
	}
	if got := DistanceRelation(a, geom.Pt(50, 1), th); got != FarFrom {
		t.Errorf("48 away = %v, want farFrom", got)
	}
}

func TestDirectional(t *testing.T) {
	center := geom.Rect(0, 0, 2, 2) // centroid (1,1)
	cases := []struct {
		name string
		b    geom.Geometry
		want Relation
	}{
		{"north", geom.Pt(1, 9), NorthOf},
		{"south", geom.Pt(1, -9), SouthOf},
		{"east", geom.Pt(9, 1), EastOf},
		{"west", geom.Pt(-9, 1), WestOf},
		{"northeast leans north", geom.Pt(3, 9), NorthOf},
		{"northeast leans east", geom.Pt(9, 3), EastOf},
	}
	for _, tc := range cases {
		got, ok := Directional(center, tc.b)
		if !ok || got != tc.want {
			t.Errorf("%s: got %v ok=%v, want %v", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := Directional(center, geom.Pt(1, 1)); ok {
		t.Error("coincident centroids should yield no direction")
	}
}

func TestPredicateStringAndParse(t *testing.T) {
	p := Predicate{Relation: Contains, FeatureType: "slum"}
	if p.String() != "contains_slum" {
		t.Errorf("String = %q", p.String())
	}
	parsed, err := ParsePredicate("contains_slum")
	if err != nil || parsed != p {
		t.Errorf("ParsePredicate = %+v, %v", parsed, err)
	}
	// Feature types with underscores split at the first separator.
	parsed, err = ParsePredicate("closeTo_police_center")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Relation != CloseTo || parsed.FeatureType != "police_center" {
		t.Errorf("underscore feature type = %+v", parsed)
	}
	for _, bad := range []string{"nounderscore", "bogus_slum", "contains_"} {
		if _, err := ParsePredicate(bad); err == nil {
			t.Errorf("ParsePredicate(%q) should fail", bad)
		}
	}
}

func TestSameFeatureType(t *testing.T) {
	a := Predicate{Contains, "slum"}
	b := Predicate{Touches, "slum"}
	c := Predicate{Touches, "school"}
	if !SameFeatureType(a, b) {
		t.Error("contains_slum and touches_slum share a feature type")
	}
	if SameFeatureType(a, c) {
		t.Error("slum and school are distinct feature types")
	}
	// Identical predicates trivially share the type.
	if !SameFeatureType(a, a) {
		t.Error("self comparison")
	}
}
