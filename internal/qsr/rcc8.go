package qsr

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/geom"
)

// RCC8 is a relation of the Region Connection Calculus, the standard
// qualitative spatial reasoning algebra over regions. The paper's
// topological vocabulary (Egenhofer 9-intersection relations) corresponds
// one-to-one to RCC8 for region pairs; this file provides the calculus
// side: conversion, converses, the full composition table, and a
// path-consistency (algebraic closure) solver for constraint networks —
// the reasoning machinery "qualitative spatial reasoning" refers to.
type RCC8 uint8

// The eight RCC8 base relations.
const (
	// DC: disconnected.
	DC RCC8 = iota
	// EC: externally connected (touching boundaries).
	EC
	// PO: partially overlapping.
	PO
	// EQ: equal.
	EQ
	// TPP: tangential proper part (inside, touching the boundary).
	TPP
	// NTPP: non-tangential proper part (strictly inside).
	NTPP
	// TPPi: inverse tangential proper part (covers).
	TPPi
	// NTPPi: inverse non-tangential proper part (contains).
	NTPPi

	numRCC8 = 8
)

// String implements fmt.Stringer.
func (r RCC8) String() string {
	switch r {
	case DC:
		return "DC"
	case EC:
		return "EC"
	case PO:
		return "PO"
	case EQ:
		return "EQ"
	case TPP:
		return "TPP"
	case NTPP:
		return "NTPP"
	case TPPi:
		return "TPPi"
	case NTPPi:
		return "NTPPi"
	}
	return fmt.Sprintf("qsr.RCC8(%d)", uint8(r))
}

// Converse returns the relation seen from the swapped operand order.
func (r RCC8) Converse() RCC8 {
	switch r {
	case TPP:
		return TPPi
	case TPPi:
		return TPP
	case NTPP:
		return NTPPi
	case NTPPi:
		return NTPP
	default:
		return r // DC, EC, PO, EQ are symmetric
	}
}

// ToRCC8 maps the paper's topological relation onto RCC8. ok is false for
// relations without a region-pair RCC8 counterpart (crosses and the
// non-topological families).
func ToRCC8(r Relation) (RCC8, bool) {
	switch r {
	case Disjoint:
		return DC, true
	case Touches:
		return EC, true
	case Overlaps:
		return PO, true
	case Equals:
		return EQ, true
	case CoveredBy:
		return TPP, true
	case Within:
		return NTPP, true
	case Covers:
		return TPPi, true
	case Contains:
		return NTPPi, true
	}
	return 0, false
}

// FromRCC8 maps an RCC8 base relation back to the paper's vocabulary.
func FromRCC8(r RCC8) Relation {
	switch r {
	case DC:
		return Disjoint
	case EC:
		return Touches
	case PO:
		return Overlaps
	case EQ:
		return Equals
	case TPP:
		return CoveredBy
	case NTPP:
		return Within
	case TPPi:
		return Covers
	default:
		return Contains
	}
}

// RCC8Of classifies two region geometries directly into RCC8. ok is
// false for empty operands or a non-region relation (crosses between
// mixed dimensions).
func RCC8Of(a, b geom.Geometry) (RCC8, bool) {
	rel, ok := Topological(a, b)
	if !ok {
		return 0, false
	}
	return ToRCC8(rel)
}

// RCC8Set is a disjunction of base relations, represented as a bitmask.
// The zero value is the empty (inconsistent) set.
type RCC8Set uint8

// Universal is the full disjunction (no information).
const Universal RCC8Set = (1 << numRCC8) - 1

// NewRCC8Set builds a set from base relations.
func NewRCC8Set(rs ...RCC8) RCC8Set {
	var s RCC8Set
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// Has reports membership.
func (s RCC8Set) Has(r RCC8) bool { return s&(1<<r) != 0 }

// IsEmpty reports the inconsistent (empty) disjunction.
func (s RCC8Set) IsEmpty() bool { return s == 0 }

// Size returns the number of base relations in the disjunction.
func (s RCC8Set) Size() int { return bits.OnesCount8(uint8(s)) }

// Intersect returns the conjunction of two disjunctions.
func (s RCC8Set) Intersect(o RCC8Set) RCC8Set { return s & o }

// Union returns the disjunction of two disjunctions.
func (s RCC8Set) Union(o RCC8Set) RCC8Set { return s | o }

// Converse returns the converse of every member.
func (s RCC8Set) Converse() RCC8Set {
	var out RCC8Set
	for r := RCC8(0); r < numRCC8; r++ {
		if s.Has(r) {
			out |= 1 << r.Converse()
		}
	}
	return out
}

// Relations lists the member base relations in canonical order.
func (s RCC8Set) Relations() []RCC8 {
	out := make([]RCC8, 0, s.Size())
	for r := RCC8(0); r < numRCC8; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders "{EC, PO}" notation; "{}" for the empty set.
func (s RCC8Set) String() string {
	parts := make([]string, 0, s.Size())
	for _, r := range s.Relations() {
		parts = append(parts, r.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// rcc8Composition is the full RCC8 composition table:
// rcc8Composition[r][s] is the set of possible relations x(a, c) given
// r(a, b) and s(b, c). Source: Randell, Cui & Cohn (1992), in the
// standard presentation (e.g. Cohn et al. 1997, table 2).
var rcc8Composition = [numRCC8][numRCC8]RCC8Set{
	DC: {
		DC:    Universal,
		EC:    NewRCC8Set(DC, EC, PO, TPP, NTPP),
		PO:    NewRCC8Set(DC, EC, PO, TPP, NTPP),
		EQ:    NewRCC8Set(DC),
		TPP:   NewRCC8Set(DC, EC, PO, TPP, NTPP),
		NTPP:  NewRCC8Set(DC, EC, PO, TPP, NTPP),
		TPPi:  NewRCC8Set(DC),
		NTPPi: NewRCC8Set(DC),
	},
	EC: {
		DC:    NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
		EC:    NewRCC8Set(DC, EC, PO, TPP, TPPi, EQ),
		PO:    NewRCC8Set(DC, EC, PO, TPP, NTPP),
		EQ:    NewRCC8Set(EC),
		TPP:   NewRCC8Set(EC, PO, TPP, NTPP),
		NTPP:  NewRCC8Set(PO, TPP, NTPP),
		TPPi:  NewRCC8Set(DC, EC),
		NTPPi: NewRCC8Set(DC),
	},
	PO: {
		DC:    NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
		EC:    NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
		PO:    Universal,
		EQ:    NewRCC8Set(PO),
		TPP:   NewRCC8Set(PO, TPP, NTPP),
		NTPP:  NewRCC8Set(PO, TPP, NTPP),
		TPPi:  NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
		NTPPi: NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
	},
	EQ: {
		DC:    NewRCC8Set(DC),
		EC:    NewRCC8Set(EC),
		PO:    NewRCC8Set(PO),
		EQ:    NewRCC8Set(EQ),
		TPP:   NewRCC8Set(TPP),
		NTPP:  NewRCC8Set(NTPP),
		TPPi:  NewRCC8Set(TPPi),
		NTPPi: NewRCC8Set(NTPPi),
	},
	TPP: {
		DC:    NewRCC8Set(DC),
		EC:    NewRCC8Set(DC, EC),
		PO:    NewRCC8Set(DC, EC, PO, TPP, NTPP),
		EQ:    NewRCC8Set(TPP),
		TPP:   NewRCC8Set(TPP, NTPP),
		NTPP:  NewRCC8Set(NTPP),
		TPPi:  NewRCC8Set(DC, EC, PO, TPP, TPPi, EQ),
		NTPPi: NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
	},
	NTPP: {
		DC:    NewRCC8Set(DC),
		EC:    NewRCC8Set(DC),
		PO:    NewRCC8Set(DC, EC, PO, TPP, NTPP),
		EQ:    NewRCC8Set(NTPP),
		TPP:   NewRCC8Set(NTPP),
		NTPP:  NewRCC8Set(NTPP),
		TPPi:  NewRCC8Set(DC, EC, PO, TPP, NTPP),
		NTPPi: Universal,
	},
	TPPi: {
		DC:    NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
		EC:    NewRCC8Set(EC, PO, TPPi, NTPPi),
		PO:    NewRCC8Set(PO, TPPi, NTPPi),
		EQ:    NewRCC8Set(TPPi),
		TPP:   NewRCC8Set(PO, TPP, TPPi, EQ),
		NTPP:  NewRCC8Set(PO, TPP, NTPP),
		TPPi:  NewRCC8Set(TPPi, NTPPi),
		NTPPi: NewRCC8Set(NTPPi),
	},
	NTPPi: {
		DC:    NewRCC8Set(DC, EC, PO, TPPi, NTPPi),
		EC:    NewRCC8Set(PO, TPPi, NTPPi),
		PO:    NewRCC8Set(PO, TPPi, NTPPi),
		EQ:    NewRCC8Set(NTPPi),
		TPP:   NewRCC8Set(PO, TPPi, NTPPi),
		NTPP:  NewRCC8Set(PO, TPP, NTPP, TPPi, NTPPi, EQ),
		TPPi:  NewRCC8Set(NTPPi),
		NTPPi: NewRCC8Set(NTPPi),
	},
}

// Compose returns the composition r ∘ s: the possible relations between a
// and c given r(a, b) and s(b, c).
func Compose(r, s RCC8) RCC8Set { return rcc8Composition[r][s] }

// ComposeSets lifts composition to disjunctions.
func ComposeSets(r, s RCC8Set) RCC8Set {
	var out RCC8Set
	for _, br := range r.Relations() {
		for _, bs := range s.Relations() {
			out |= Compose(br, bs)
			if out == Universal {
				return out
			}
		}
	}
	return out
}

// Network is an RCC8 constraint network over n regions: a complete graph
// of disjunctive constraints. Unconstrained edges are Universal.
type Network struct {
	n     int
	edges []RCC8Set // row-major n x n
}

// NewNetwork creates an unconstrained network over n regions. Diagonal
// entries are EQ.
func NewNetwork(n int) *Network {
	if n < 0 {
		panic("qsr: negative network size")
	}
	net := &Network{n: n, edges: make([]RCC8Set, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				net.edges[i*n+j] = NewRCC8Set(EQ)
			} else {
				net.edges[i*n+j] = Universal
			}
		}
	}
	return net
}

// Size returns the number of regions.
func (net *Network) Size() int { return net.n }

// Constraint returns the current constraint between regions i and j.
func (net *Network) Constraint(i, j int) RCC8Set { return net.edges[i*net.n+j] }

// Constrain conjoins a constraint onto edge (i, j), keeping (j, i)
// consistent via the converse. It reports whether the edge remains
// satisfiable.
func (net *Network) Constrain(i, j int, s RCC8Set) bool {
	ni := net.edges[i*net.n+j].Intersect(s)
	net.edges[i*net.n+j] = ni
	net.edges[j*net.n+i] = ni.Converse()
	return !ni.IsEmpty()
}

// PathConsistent runs the path-consistency (algebraic closure) algorithm:
// every edge (i, j) is refined by composition through every intermediate
// k until a fixed point. It returns false when some edge becomes empty —
// the network is certainly inconsistent. (Path consistency is complete
// for deciding consistency of base-relation RCC8 networks.)
func (net *Network) PathConsistent() bool {
	n := net.n
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				cur := net.edges[i*n+j]
				for k := 0; k < n; k++ {
					if k == i || k == j {
						continue
					}
					refined := cur.Intersect(ComposeSets(net.edges[i*n+k], net.edges[k*n+j]))
					if refined != cur {
						cur = refined
						changed = true
					}
					if cur.IsEmpty() {
						net.edges[i*n+j] = cur
						net.edges[j*n+i] = cur
						return false
					}
				}
				if cur != net.edges[i*n+j] {
					net.edges[i*n+j] = cur
					net.edges[j*n+i] = cur.Converse()
				}
			}
		}
	}
	return true
}

// NetworkFromScene builds the base-relation constraint network observed
// between the given region geometries. Non-region pairs (no RCC8
// counterpart) are left Universal.
func NetworkFromScene(regions []geom.Geometry) *Network {
	net := NewNetwork(len(regions))
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if r, ok := RCC8Of(regions[i], regions[j]); ok {
				net.Constrain(i, j, NewRCC8Set(r))
			}
		}
	}
	return net
}
