package qsr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestPreparedWrappersMatchUnprepared pins the three prepared entry
// points against their unprepared counterparts over random polygon,
// line, and point pairs.
func TestPreparedWrappersMatchUnprepared(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	half := func(n int) float64 { return float64(rng.Intn(n)) / 2 }
	randGeom := func() geom.Geometry {
		switch rng.Intn(3) {
		case 0:
			x, y := half(10), half(10)
			return geom.Rect(x, y, x+0.5+half(6), y+0.5+half(6))
		case 1:
			x, y := half(10), half(10)
			return geom.Line(geom.Pt(x, y), geom.Pt(x+half(6), y+half(6)), geom.Pt(x+half(6), y))
		default:
			return geom.Pt(half(12), half(12))
		}
	}
	thresholds := []DistanceThresholds{
		DefaultThresholds(4),
		{VeryCloseMax: 0.5, CloseMax: 1},
		{VeryCloseMax: 0, CloseMax: 0}, // everything beyond contact is farFrom
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randGeom(), randGeom()
		pa, pb := geom.Prepare(a), geom.Prepare(b)

		relW, okW := Topological(a, b)
		relG, okG := TopologicalPrepared(pa, pb)
		if relW != relG || okW != okG {
			t.Fatalf("trial %d: Topological (%v,%v) vs prepared (%v,%v)\n a=%s\n b=%s",
				trial, relW, okW, relG, okG, a.WKT(), b.WKT())
		}
		for _, th := range thresholds {
			if w, g := DistanceRelation(a, b, th), DistanceRelationPrepared(pa, pb, th); w != g {
				t.Fatalf("trial %d: DistanceRelation %v vs prepared %v (thresholds %+v)\n a=%s\n b=%s",
					trial, w, g, th, a.WKT(), b.WKT())
			}
		}
		dW, okW := Directional(a, b)
		dG, okG := DirectionalPrepared(pa, pb)
		if dW != dG || okW != okG {
			t.Fatalf("trial %d: Directional (%v,%v) vs prepared (%v,%v)", trial, dW, okW, dG, okG)
		}
	}
}
