package qsr

import (
	"testing"

	"repro/internal/geom"
)

func TestNeighborhoodSymmetric(t *testing.T) {
	for _, r := range allRCC8() {
		for _, s := range Neighbors(r).Relations() {
			if !Neighbors(s).Has(r) {
				t.Errorf("neighborhood not symmetric: %v -> %v", r, s)
			}
		}
	}
}

func TestNeighborhoodConnected(t *testing.T) {
	// Every relation reaches every other in at most 4 steps.
	for _, r := range allRCC8() {
		for _, s := range allRCC8() {
			d := NeighborhoodDistance(r, s)
			if d < 0 || d > 4 {
				t.Errorf("distance %v -> %v = %d", r, s, d)
			}
		}
	}
	if NeighborhoodDistance(DC, NTPP) != 4 {
		t.Errorf("DC->NTPP = %d, want 4 (DC-EC-PO-TPP-NTPP)", NeighborhoodDistance(DC, NTPP))
	}
	if NeighborhoodDistance(EQ, EQ) != 0 {
		t.Error("self distance")
	}
	if NeighborhoodDistance(TPP, TPPi) != 2 {
		t.Errorf("TPP->TPPi = %d, want 2 (via EQ or PO)", NeighborhoodDistance(TPP, TPPi))
	}
}

func TestIsNeighborhoodMove(t *testing.T) {
	cases := []struct {
		r, s RCC8
		want bool
	}{
		{DC, EC, true},
		{DC, DC, true},
		{DC, PO, false},   // must pass through EC
		{DC, NTPP, false}, // the canonical implausible jump
		{TPP, EQ, true},
		{EQ, PO, false}, // EQ deforms through TPP/TPPi first
		{NTPP, TPP, true},
	}
	for _, tc := range cases {
		if got := IsNeighborhoodMove(tc.r, tc.s); got != tc.want {
			t.Errorf("IsNeighborhoodMove(%v, %v) = %v, want %v", tc.r, tc.s, got, tc.want)
		}
	}
}

func TestPlausibleSequence(t *testing.T) {
	approach := []RCC8{DC, EC, PO, TPP, NTPP} // region entering another
	if !PlausibleSequence(approach) {
		t.Error("continuous approach must be plausible")
	}
	teleport := []RCC8{DC, NTPP}
	if PlausibleSequence(teleport) {
		t.Error("DC -> NTPP jump must be implausible")
	}
	if !PlausibleSequence(nil) || !PlausibleSequence([]RCC8{PO}) {
		t.Error("trivial sequences must be plausible")
	}
}

func TestNeighborhoodMatchesContinuousMotion(t *testing.T) {
	// Generative check: slide a square across a fixed one in small steps
	// and verify the observed relation sequence is neighborhood-
	// plausible (after removing consecutive duplicates).
	fixed := geom.Rect(0, 0, 10, 10)
	var seq []RCC8
	for x := -30.0; x <= 30; x += 0.5 {
		moving := geom.Rect(x, 2, x+6, 8)
		r, ok := RCC8Of(moving, fixed)
		if !ok {
			t.Fatal("no relation")
		}
		if len(seq) == 0 || seq[len(seq)-1] != r {
			seq = append(seq, r)
		}
	}
	if !PlausibleSequence(seq) {
		t.Errorf("observed motion sequence implausible: %v", seq)
	}
	// The pass must actually traverse several relations.
	if len(seq) < 5 {
		t.Errorf("motion produced only %v", seq)
	}
}
