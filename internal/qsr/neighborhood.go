package qsr

// Conceptual neighborhood of RCC8 (Randell, Cui & Cohn): two relations
// are neighbors when one can transform continuously into the other
// without passing through a third relation — e.g. two disconnected
// regions moving towards each other become externally connected before
// they can partially overlap. Neighborhood structure powers qualitative
// simulation and coarse plausibility checks on observation sequences
// (a tracked region cannot jump from DC to NTPP between two frames).
//
// We implement the standard diagram for the combined move/deform
// transition semantics:
//
//	DC — EC — PO — TPP  — NTPP
//	            \  |  \
//	             \ EQ   (TPP—EQ, TPPi—EQ)
//	              \|  /
//	               TPPi — NTPPi
var rcc8Neighbors = map[RCC8]RCC8Set{
	DC:    NewRCC8Set(EC),
	EC:    NewRCC8Set(DC, PO),
	PO:    NewRCC8Set(EC, TPP, TPPi),
	TPP:   NewRCC8Set(PO, NTPP, EQ),
	NTPP:  NewRCC8Set(TPP),
	TPPi:  NewRCC8Set(PO, NTPPi, EQ),
	NTPPi: NewRCC8Set(TPPi),
	EQ:    NewRCC8Set(TPP, TPPi),
}

// Neighbors returns the conceptual neighborhood of an RCC8 relation: the
// relations reachable by one continuous transformation step.
func Neighbors(r RCC8) RCC8Set { return rcc8Neighbors[r] }

// IsNeighborhoodMove reports whether a transition from r to s is
// continuously possible in one step (staying put counts).
func IsNeighborhoodMove(r, s RCC8) bool {
	return r == s || rcc8Neighbors[r].Has(s)
}

// NeighborhoodDistance returns the minimal number of neighborhood steps
// from r to s — a qualitative "how different are these configurations"
// metric (0 for identical, 1 for neighbors, up to 4 across the diagram).
func NeighborhoodDistance(r, s RCC8) int {
	if r == s {
		return 0
	}
	// Breadth-first search over the 8-node graph.
	visited := NewRCC8Set(r)
	frontier := NewRCC8Set(r)
	for depth := 1; ; depth++ {
		var next RCC8Set
		for _, cur := range frontier.Relations() {
			next = next.Union(rcc8Neighbors[cur])
		}
		next = next.Intersect(^visited & Universal)
		if next.IsEmpty() {
			return -1 // unreachable; cannot happen on the connected graph
		}
		if next.Has(s) {
			return depth
		}
		visited = visited.Union(next)
		frontier = next
	}
}

// PlausibleSequence reports whether a sequence of observed RCC8 relations
// (e.g. per-frame relations of a moving region against a fixed one) is
// continuity-plausible: every consecutive pair must be a neighborhood
// move. Empty and single-element sequences are trivially plausible.
func PlausibleSequence(seq []RCC8) bool {
	for i := 1; i < len(seq); i++ {
		if !IsNeighborhoodMove(seq[i-1], seq[i]) {
			return false
		}
	}
	return true
}
