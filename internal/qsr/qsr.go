// Package qsr defines the qualitative spatial relation vocabulary the
// paper mines over — topological relations (from the 9-intersection model),
// qualitative distance relations (veryClose / close / far, cut by
// thresholds), and directional (order) relations — together with the
// Predicate type that couples a relation with a relevant feature type
// ("contains_slum", "closeTo_policeCenter").
//
// The same-feature-type reasoning at the heart of Apriori-KC+ lives here:
// two predicates are "meaningless together" exactly when their feature
// types coincide, regardless of the relations involved.
package qsr

import (
	"fmt"
	"strings"

	"repro/internal/de9im"
	"repro/internal/geom"
)

// Family groups qualitative relations by kind, following the paper's
// "topological, distance, or order" taxonomy (citing Güting).
type Family int

// Relation families.
const (
	FamilyTopological Family = iota
	FamilyDistance
	FamilyDirectional
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyTopological:
		return "topological"
	case FamilyDistance:
		return "distance"
	case FamilyDirectional:
		return "directional"
	}
	return fmt.Sprintf("qsr.Family(%d)", int(f))
}

// Relation is a qualitative spatial relation from any family.
type Relation int

// Topological relations mirror de9im's canonical Egenhofer set.
const (
	Equals Relation = iota
	Disjoint
	Touches
	Contains
	Within
	Covers
	CoveredBy
	Crosses
	Overlaps
	// Distance relations.
	VeryClose
	CloseTo
	FarFrom
	// Directional relations (of the reference object's centroid relative
	// to the related object: "slum northOf district" is rendered from the
	// district's point of view as northOf_slum meaning the slum lies to
	// the north).
	NorthOf
	SouthOf
	EastOf
	WestOf
)

// String returns the predicate-friendly name ("contains", "closeTo",
// "northOf", ...), matching the paper's rendering.
func (r Relation) String() string {
	switch r {
	case Equals:
		return "equals"
	case Disjoint:
		return "disjoint"
	case Touches:
		return "touches"
	case Contains:
		return "contains"
	case Within:
		return "within"
	case Covers:
		return "covers"
	case CoveredBy:
		return "coveredBy"
	case Crosses:
		return "crosses"
	case Overlaps:
		return "overlaps"
	case VeryClose:
		return "veryCloseTo"
	case CloseTo:
		return "closeTo"
	case FarFrom:
		return "farFrom"
	case NorthOf:
		return "northOf"
	case SouthOf:
		return "southOf"
	case EastOf:
		return "eastOf"
	case WestOf:
		return "westOf"
	}
	return fmt.Sprintf("qsr.Relation(%d)", int(r))
}

// Family reports which family the relation belongs to.
func (r Relation) Family() Family {
	switch r {
	case VeryClose, CloseTo, FarFrom:
		return FamilyDistance
	case NorthOf, SouthOf, EastOf, WestOf:
		return FamilyDirectional
	default:
		return FamilyTopological
	}
}

// ParseRelation inverts Relation.String.
func ParseRelation(s string) (Relation, error) {
	for r := Equals; r <= WestOf; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("qsr: unknown relation %q", s)
}

// TopologicalRelations lists the nine named 9-intersection relations in
// the order the paper enumerates them.
func TopologicalRelations() []Relation {
	return []Relation{Contains, Within, Touches, Crosses, Covers, CoveredBy, Overlaps, Equals, Disjoint}
}

// DistanceRelations lists the qualitative distance vocabulary.
func DistanceRelations() []Relation { return []Relation{VeryClose, CloseTo, FarFrom} }

// DirectionalRelations lists the order vocabulary.
func DirectionalRelations() []Relation { return []Relation{NorthOf, SouthOf, EastOf, WestOf} }

// fromDE9IM maps the de9im canonical relation onto the qsr vocabulary.
func fromDE9IM(r de9im.Relation) (Relation, bool) {
	switch r {
	case de9im.Equals:
		return Equals, true
	case de9im.Disjoint:
		return Disjoint, true
	case de9im.Touches:
		return Touches, true
	case de9im.Contains:
		return Contains, true
	case de9im.Within:
		return Within, true
	case de9im.Covers:
		return Covers, true
	case de9im.CoveredBy:
		return CoveredBy, true
	case de9im.Crosses:
		return Crosses, true
	case de9im.Overlaps:
		return Overlaps, true
	}
	return 0, false
}

// Topological classifies the canonical Egenhofer relation between two
// geometries. The boolean is false for empty operands.
func Topological(a, b geom.Geometry) (Relation, bool) {
	return fromDE9IM(de9im.Classify(a, b))
}

// TopologicalPrepared is Topological over prepared geometries, reusing
// their cached soups, sample points, and edge trees. The result is
// identical to Topological on the wrapped geometries.
func TopologicalPrepared(a, b *geom.Prepared) (Relation, bool) {
	return fromDE9IM(de9im.ClassifyPrepared(a, b))
}

// DistanceThresholds cuts continuous distance into the qualitative
// vocabulary: d <= VeryCloseMax is veryCloseTo, d <= CloseMax is closeTo,
// anything further is farFrom.
type DistanceThresholds struct {
	VeryCloseMax float64
	CloseMax     float64
}

// DefaultThresholds returns thresholds scaled to a reference extent (e.g.
// the typical district diameter): very close within 10%, close within 50%.
func DefaultThresholds(referenceExtent float64) DistanceThresholds {
	return DistanceThresholds{
		VeryCloseMax: 0.1 * referenceExtent,
		CloseMax:     0.5 * referenceExtent,
	}
}

// Classify maps a distance to its qualitative relation.
func (t DistanceThresholds) Classify(d float64) Relation {
	switch {
	case d <= t.VeryCloseMax:
		return VeryClose
	case d <= t.CloseMax:
		return CloseTo
	default:
		return FarFrom
	}
}

// DistanceRelation classifies the qualitative distance between two
// geometries under the thresholds.
func DistanceRelation(a, b geom.Geometry, t DistanceThresholds) Relation {
	return t.Classify(geom.Distance(a, b))
}

// DistanceRelationPrepared is DistanceRelation over prepared geometries:
// the distance comes from the branch-and-bound over the cached edge
// trees and equals geom.Distance on the wrapped geometries exactly, so
// the classification cannot differ.
func DistanceRelationPrepared(a, b *geom.Prepared, t DistanceThresholds) Relation {
	return t.Classify(a.DistanceTo(b))
}

// Directional returns the dominant cardinal direction of b relative to a,
// comparing centroids: b northOf a when the vertical offset dominates and
// is positive, etc. The boolean is false when the centroids coincide (no
// meaningful direction).
func Directional(a, b geom.Geometry) (Relation, bool) {
	return directionalFrom(geom.Centroid(a), geom.Centroid(b))
}

// DirectionalPrepared is Directional over prepared geometries, reusing
// their cached centroids.
func DirectionalPrepared(a, b *geom.Prepared) (Relation, bool) {
	return directionalFrom(a.Centroid(), b.Centroid())
}

// directionalFrom compares two centroids under the dominant-axis rule.
func directionalFrom(ca, cb geom.Point) (Relation, bool) {
	dx, dy := cb.X-ca.X, cb.Y-ca.Y
	if dx == 0 && dy == 0 {
		return 0, false
	}
	if abs(dy) >= abs(dx) {
		if dy > 0 {
			return NorthOf, true
		}
		return SouthOf, true
	}
	if dx > 0 {
		return EastOf, true
	}
	return WestOf, true
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Predicate is a qualitative spatial predicate at feature-type
// granularity: a relation paired with the relevant feature type it holds
// against, e.g. {Contains, "slum"} rendered as "contains_slum". This is
// the paper's "item" for spatial entries of a transaction.
type Predicate struct {
	Relation    Relation
	FeatureType string
}

// String renders the paper's predicate notation.
func (p Predicate) String() string {
	return p.Relation.String() + "_" + p.FeatureType
}

// ParsePredicate inverts Predicate.String. The feature type may itself
// contain underscores; the split happens at the first underscore.
func ParsePredicate(s string) (Predicate, error) {
	i := strings.IndexByte(s, '_')
	if i < 0 {
		return Predicate{}, fmt.Errorf("qsr: predicate %q has no relation/feature separator", s)
	}
	rel, err := ParseRelation(s[:i])
	if err != nil {
		return Predicate{}, err
	}
	if s[i+1:] == "" {
		return Predicate{}, fmt.Errorf("qsr: predicate %q has empty feature type", s)
	}
	return Predicate{Relation: rel, FeatureType: s[i+1:]}, nil
}

// SameFeatureType reports whether two predicates refer to the same
// relevant feature type — the exact condition under which Apriori-KC+
// prunes their pair from C2. The relations themselves are irrelevant.
func SameFeatureType(a, b Predicate) bool {
	return a.FeatureType == b.FeatureType
}
