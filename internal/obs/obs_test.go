package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Stage("extract") // must not panic
	sp.End()
	tr.Pass(PassEvent{K: 2, Candidates: 10})
	tr.Add("x", 1)
	if tr.Counter("x") != 0 {
		t.Error("nil trace counter must read 0")
	}
	if tr.Counters() != nil {
		t.Error("nil trace Counters must be nil")
	}
	if tr.TrackAllocations() != nil {
		t.Error("nil trace TrackAllocations must return nil")
	}
	Span{}.End() // zero span is also a no-op
}

func TestCollectorStagesAndPasses(t *testing.T) {
	c := NewCollector()
	tr := New(c)
	sp := tr.Stage("extract")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Pass(PassEvent{K: 2, Candidates: 105, PrunedDeps: 3, PrunedSameFeature: 9, Frequent: 40, Duration: time.Millisecond})

	stages := c.Stages()
	if len(stages) != 1 || stages[0].Name != "extract" {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Duration <= 0 {
		t.Errorf("stage duration = %v, want > 0", stages[0].Duration)
	}
	passes := c.Passes()
	if len(passes) != 1 || passes[0].Candidates != 105 || passes[0].PrunedSameFeature != 9 {
		t.Fatalf("passes = %+v", passes)
	}
	// Events retain the begin/end pair plus the pass.
	if events := c.Events(); len(events) != 3 || events[0].Kind != KindStageBegin {
		t.Fatalf("events = %+v", events)
	}
	// Pass counts fold into aggregate counters.
	if tr.Counter("mine.candidates") != 105 || tr.Counter("mine.frequent") != 40 {
		t.Errorf("counters = %v", tr.Counters())
	}
	if tr.Counter("stage.extract.nanos") <= 0 {
		t.Error("stage counter missing")
	}
}

func TestCountersConcurrent(t *testing.T) {
	tr := New(nil) // nil sink: counters only
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Counter("n"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestTrackAllocations(t *testing.T) {
	c := NewCollector()
	tr := New(c).TrackAllocations()
	sp := tr.Stage("alloc")
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	sp.End()
	stages := c.Stages()
	if len(stages) != 1 || stages[0].AllocBytes == 0 {
		t.Errorf("alloc bytes not tracked: %+v", stages)
	}
}

func TestTextSink(t *testing.T) {
	var b strings.Builder
	tr := New(NewTextSink(&b))
	sp := tr.Stage("mine")
	sp.End()
	tr.Pass(PassEvent{K: 2, Candidates: 7, Frequent: 3})
	out := b.String()
	if !strings.Contains(out, "stage mine") {
		t.Errorf("missing stage line: %q", out)
	}
	if !strings.Contains(out, "pass k=2") || !strings.Contains(out, "candidates=7") {
		t.Errorf("missing pass line: %q", out)
	}
}

func TestJSONSinkEmitsNDJSON(t *testing.T) {
	var b strings.Builder
	tr := New(NewJSONSink(&b))
	sp := tr.Stage("mine")
	sp.End()
	tr.Pass(PassEvent{K: 3, Frequent: 2})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (begin, end, pass): %q", len(lines), b.String())
	}
	for _, l := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("line %q is not JSON: %v", l, err)
		}
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty Multi must be nil")
	}
	if Multi(a) != Sink(a) {
		t.Error("single Multi must unwrap")
	}
	tr := New(Multi(a, nil, b))
	tr.Pass(PassEvent{K: 2})
	if len(a.Passes()) != 1 || len(b.Passes()) != 1 {
		t.Error("multi sink must fan out")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("plain context must yield nil trace")
	}
	tr := New(nil)
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace did not round-trip")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Error("nil trace must not wrap the context")
	}
}

func TestCollectorMetrics(t *testing.T) {
	c := NewCollector()
	tr := New(c)
	sp := tr.Stage("rules")
	sp.End()
	tr.Pass(PassEvent{K: 2, Frequent: 1})
	m := c.Metrics(tr)
	if len(m.Stages) != 1 || len(m.Passes) != 1 || m.Counters["mine.frequent"] != 1 {
		t.Errorf("metrics = %+v", m)
	}
	var b strings.Builder
	if err := c.WriteJSON(&b, tr); err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if len(back.Stages) != 1 || back.Stages[0].Name != "rules" {
		t.Errorf("decoded metrics = %+v", back)
	}
}

func TestFormatCounters(t *testing.T) {
	out := FormatCounters(map[string]int64{"b": 2, "a": 1})
	ai, bi := strings.Index(out, "a"), strings.Index(out, "b")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("counters not sorted: %q", out)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		KindStageBegin: "stage-begin",
		KindStageEnd:   "stage-end",
		KindPass:       "pass",
		EventKind(0):   "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestRingCollector pins the bounded retention the qsrmined daemon
// relies on: only the most recent limit events survive, in order, with
// the overflow counted, and Reset clears everything.
func TestRingCollector(t *testing.T) {
	c := NewRingCollector(3)
	for k := 1; k <= 5; k++ {
		c.Emit(Event{Kind: KindPass, Pass: PassEvent{K: k}})
	}
	passes := c.Passes()
	if len(passes) != 3 {
		t.Fatalf("retained %d events, want 3", len(passes))
	}
	for i, want := range []int{3, 4, 5} {
		if passes[i].K != want {
			t.Errorf("passes[%d].K = %d, want %d (ring must keep the newest in order)", i, passes[i].K, want)
		}
	}
	if m := c.Metrics(nil); m.DroppedEvents != 2 {
		t.Errorf("DroppedEvents = %d, want 2", m.DroppedEvents)
	}
	c.Reset()
	if got := c.Events(); len(got) != 0 {
		t.Errorf("Reset left %d events", len(got))
	}
	if m := c.Metrics(nil); m.DroppedEvents != 0 {
		t.Errorf("Reset left DroppedEvents = %d", m.DroppedEvents)
	}
	// After a reset the ring refills from scratch.
	c.Emit(Event{Kind: KindPass, Pass: PassEvent{K: 9}})
	if passes := c.Passes(); len(passes) != 1 || passes[0].K != 9 {
		t.Errorf("post-reset passes = %+v", passes)
	}
	// An unbounded collector never drops.
	u := NewCollector()
	for k := 0; k < 100; k++ {
		u.Emit(Event{Kind: KindPass, Pass: PassEvent{K: k}})
	}
	if len(u.Events()) != 100 || u.Metrics(nil).DroppedEvents != 0 {
		t.Error("unbounded collector must retain everything")
	}
}
