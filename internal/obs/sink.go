package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// StageRecord is one completed stage as retained by a Collector.
type StageRecord struct {
	// Name is the stage name.
	Name string `json:"name"`
	// Start is when the stage began.
	Start time.Time `json:"start"`
	// Duration is the stage wall time.
	Duration time.Duration `json:"wallNanos"`
	// AllocBytes is the allocation delta (0 unless tracking was enabled).
	AllocBytes uint64 `json:"allocBytes,omitempty"`
}

// Collector is an in-memory Sink retaining every event, with typed views
// over the completed stages and mining passes. Safe for concurrent use.
// A Collector built with NewRingCollector instead retains only the most
// recent events, so a long-running process (the qsrmined daemon) can keep
// one wired in permanently without unbounded growth.
type Collector struct {
	mu      sync.Mutex
	events  []Event
	limit   int // 0 = unbounded
	start   int // ring read position when limit > 0
	dropped uint64
}

// NewCollector returns an empty, unbounded Collector.
func NewCollector() *Collector { return &Collector{} }

// NewRingCollector returns a Collector retaining only the limit most
// recent events; older events are dropped (and counted — see Metrics).
// A non-positive limit is treated as unbounded.
func NewRingCollector(limit int) *Collector {
	if limit < 0 {
		limit = 0
	}
	return &Collector{limit: limit}
}

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	if c.limit > 0 && len(c.events) == c.limit {
		c.events[c.start] = e
		c.start = (c.start + 1) % c.limit
		c.dropped++
	} else {
		c.events = append(c.events, e)
	}
	c.mu.Unlock()
}

// Reset drops every retained event (the dropped-event count included),
// e.g. after a metrics scrape that consumed them.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.start = 0
	c.dropped = 0
	c.mu.Unlock()
}

// snapshot returns the retained events in emission order. Callers hold mu.
func (c *Collector) snapshot() []Event {
	out := make([]Event, 0, len(c.events))
	out = append(out, c.events[c.start:]...)
	out = append(out, c.events[:c.start]...)
	return out
}

// Events returns a snapshot copy of the retained events in emission
// order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshot()
}

// Stages returns the completed stages in completion order.
func (c *Collector) Stages() []StageRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []StageRecord
	for _, e := range c.snapshot() {
		if e.Kind == KindStageEnd {
			out = append(out, StageRecord{
				Name:       e.Stage,
				Start:      e.Time.Add(-e.Duration),
				Duration:   e.Duration,
				AllocBytes: e.AllocBytes,
			})
		}
	}
	return out
}

// Passes returns the mining pass events in emission order.
func (c *Collector) Passes() []PassEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PassEvent
	for _, e := range c.snapshot() {
		if e.Kind == KindPass {
			out = append(out, e.Pass)
		}
	}
	return out
}

// Metrics is the machine-readable summary of one traced run (or, for a
// permanently wired collector, of the process so far): completed stages,
// mining passes, and the trace's aggregate counters. DroppedEvents
// counts events a ring collector has discarded since the last Reset.
type Metrics struct {
	Stages        []StageRecord    `json:"stages"`
	Passes        []PassEvent      `json:"passes"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	DroppedEvents uint64           `json:"droppedEvents,omitempty"`
}

// Metrics assembles the summary document. t may be nil (counters are
// then omitted).
func (c *Collector) Metrics(t *Trace) Metrics {
	c.mu.Lock()
	dropped := c.dropped
	c.mu.Unlock()
	return Metrics{Stages: c.Stages(), Passes: c.Passes(), Counters: t.Counters(), DroppedEvents: dropped}
}

// WriteJSON writes the Metrics summary as one indented JSON document.
func (c *Collector) WriteJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Metrics(t))
}

// TextSink streams human-readable trace lines to a writer: one line per
// completed stage and one per mining pass. Begin events are not printed.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a TextSink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink.
func (s *TextSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case KindStageEnd:
		if e.AllocBytes > 0 {
			fmt.Fprintf(s.w, "[trace] stage %-12s %12v  alloc %s\n", e.Stage, e.Duration, formatBytes(e.AllocBytes))
		} else {
			fmt.Fprintf(s.w, "[trace] stage %-12s %12v\n", e.Stage, e.Duration)
		}
	case KindPass:
		p := e.Pass
		fmt.Fprintf(s.w, "[trace]   pass k=%d  candidates=%d pruned_deps=%d pruned_same=%d frequent=%d  (%v)\n",
			p.K, p.Candidates, p.PrunedDeps, p.PrunedSameFeature, p.Frequent, p.Duration)
	case KindAnnotation:
		fmt.Fprintf(s.w, "[trace] note  %-12s %s\n", e.Stage, e.Detail)
	}
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// JSONSink streams every event as one JSON object per line (NDJSON).
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink returns a JSONSink writing to w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

// Emit implements Sink.
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encoding errors are unreportable from a sink; drop them.
	_ = s.enc.Encode(e)
}

// multiSink fans events out to several sinks.
type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi combines sinks into one. Nil entries are skipped; a single
// surviving sink is returned unwrapped, and zero sinks yield nil.
func Multi(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// FormatCounters renders a counter snapshot as sorted "name value"
// lines, for the CLI's -trace epilogue.
func FormatCounters(counters map[string]int64) string {
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	var b []byte
	for _, n := range names {
		b = append(b, fmt.Sprintf("[trace] counter %-28s %d\n", n, counters[n])...)
	}
	return string(b)
}
