package obs

import "context"

// ctxKey is the private context key for the attached Trace.
type ctxKey struct{}

// WithTrace attaches a Trace to a context. A nil trace returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the attached Trace, or nil when none is attached —
// and a nil Trace is a valid no-op receiver, so callers use the result
// unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
