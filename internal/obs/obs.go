// Package obs is the pipeline observability layer: stage spans with wall
// time (and optionally allocation deltas), monotonic named counters, and
// per-Apriori-pass events carrying candidate/pruned/frequent counts, all
// delivered to a pluggable Sink.
//
// The layer is allocation-conscious and safe to leave permanently wired
// into hot paths: a nil *Trace is a valid receiver for every method and
// costs a single predictable branch, spans are value types that never
// escape to the heap on the no-op path, and events are emitted by value.
// A Trace is attached to a context.Context with WithTrace and recovered
// with FromContext, so the pipeline stages need no extra parameters.
//
//	tr := obs.New(obs.NewTextSink(os.Stderr))
//	ctx := obs.WithTrace(context.Background(), tr)
//	out, err := core.RunContext(ctx, scene, cfg)
package obs

import (
	"runtime"
	"strconv"
	"sync"
	"time"
)

// EventKind discriminates Event payloads.
type EventKind uint8

// Event kinds.
const (
	// KindStageBegin marks the start of a named pipeline stage.
	KindStageBegin EventKind = iota + 1
	// KindStageEnd carries the stage's wall time (and allocation delta
	// when allocation tracking is enabled).
	KindStageEnd
	// KindPass carries one mining pass's candidate/pruned/frequent
	// counts.
	KindPass
	// KindAnnotation is a free-form note attached to a named subsystem —
	// the server emits one per HTTP request (carrying the request ID) and
	// one per micro-batch flush (carrying size and flush reason).
	KindAnnotation
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindStageBegin:
		return "stage-begin"
	case KindStageEnd:
		return "stage-end"
	case KindPass:
		return "pass"
	case KindAnnotation:
		return "annotation"
	}
	return "unknown"
}

// PassEvent records one mining pass — the per-pass numbers behind the
// paper's Figures 4-7 and the substrate for candidate-explosion
// diagnosis.
type PassEvent struct {
	// K is the itemset size of the pass.
	K int `json:"k"`
	// Candidates counts C_k before any filtering.
	Candidates int `json:"candidates"`
	// PrunedDeps counts Φ dependency pairs removed at k=2.
	PrunedDeps int `json:"prunedDeps"`
	// PrunedSameFeature counts same-feature pairs removed at k=2 (KC+).
	PrunedSameFeature int `json:"prunedSameFeature"`
	// Frequent counts L_k.
	Frequent int `json:"frequent"`
	// Duration is the wall-clock time of the pass.
	Duration time.Duration `json:"wallNanos"`
}

// Event is one observation delivered to a Sink. It is passed by value so
// sinks can retain it without aliasing concerns.
type Event struct {
	// Kind selects which fields are meaningful.
	Kind EventKind `json:"kind"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Stage names the pipeline stage (stage events only).
	Stage string `json:"stage,omitempty"`
	// Duration is the stage wall time (KindStageEnd only).
	Duration time.Duration `json:"wallNanos,omitempty"`
	// AllocBytes is the heap allocation delta of the stage, populated on
	// KindStageEnd when allocation tracking is enabled.
	AllocBytes uint64 `json:"allocBytes,omitempty"`
	// Pass is the pass payload (KindPass only).
	Pass PassEvent `json:"pass"`
	// Detail is the annotation text (KindAnnotation only).
	Detail string `json:"detail,omitempty"`
}

// Sink receives events. Implementations must be safe for concurrent use;
// the pipeline emits from worker goroutines.
type Sink interface {
	Emit(Event)
}

// Trace is the per-run observability handle. The zero of *Trace (nil) is
// a valid no-op: every method checks the receiver, so call sites need no
// guards and pay no measurable cost when tracing is off.
type Trace struct {
	sink        Sink
	trackAllocs bool

	mu       sync.Mutex
	counters map[string]int64
}

// New returns a Trace emitting to sink. A nil sink is allowed: the trace
// then only accumulates counters.
func New(sink Sink) *Trace {
	return &Trace{sink: sink, counters: make(map[string]int64)}
}

// TrackAllocations enables heap-allocation deltas on stage spans. It
// calls runtime.ReadMemStats at both span edges, which briefly stops the
// world — leave it off for latency-sensitive runs. Returns t for
// chaining; must be called before the trace is shared.
func (t *Trace) TrackAllocations() *Trace {
	if t != nil {
		t.trackAllocs = true
	}
	return t
}

// Span measures one pipeline stage. It is a value type: the no-op span
// (zero value, or any span from a nil Trace) costs nothing to End.
type Span struct {
	t          *Trace
	name       string
	start      time.Time
	startAlloc uint64
}

// Stage starts a span for a named stage. Safe on a nil receiver.
func (t *Trace) Stage(name string) Span {
	if t == nil {
		return Span{}
	}
	sp := Span{t: t, name: name, start: time.Now()}
	if t.trackAllocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sp.startAlloc = ms.TotalAlloc
	}
	if t.sink != nil {
		t.sink.Emit(Event{Kind: KindStageBegin, Time: sp.start, Stage: name})
	}
	return sp
}

// End closes the span, emitting a KindStageEnd event with the wall time
// and adding it to the "stage.<name>.nanos" counter.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Now()
	e := Event{Kind: KindStageEnd, Time: now, Stage: s.name, Duration: now.Sub(s.start)}
	if s.t.trackAllocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.TotalAlloc >= s.startAlloc {
			e.AllocBytes = ms.TotalAlloc - s.startAlloc
		}
	}
	s.t.Add("stage."+s.name+".nanos", int64(e.Duration))
	if s.t.sink != nil {
		s.t.sink.Emit(e)
	}
}

// Pass emits a mining pass event and folds its counts into the aggregate
// counters. Safe on a nil receiver.
func (t *Trace) Pass(p PassEvent) {
	if t == nil {
		return
	}
	t.Add("mine.candidates", int64(p.Candidates))
	t.Add("mine.frequent", int64(p.Frequent))
	t.Add("mine.pruned_deps", int64(p.PrunedDeps))
	t.Add("mine.pruned_same_feature", int64(p.PrunedSameFeature))
	if t.sink != nil {
		t.sink.Emit(Event{Kind: KindPass, Time: time.Now(), Pass: p})
	}
}

// Annotate emits a KindAnnotation event for a named subsystem. Safe on
// a nil receiver; a trace without a sink drops the annotation (there is
// no counter side to a note).
func (t *Trace) Annotate(stage, detail string) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Emit(Event{Kind: KindAnnotation, Time: time.Now(), Stage: stage, Detail: detail})
}

// Add increments a monotonic named counter. Safe on a nil receiver and
// for concurrent use.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// WorkerCounter formats the canonical name of a per-worker counter:
// "<subsystem>.worker.<n>.<metric>". Parallel stages (the Eclat walk,
// the vertical counting pool) emit their fan-out balance under this
// convention so sinks and dashboards can group worker series without
// guessing at ad-hoc names.
func WorkerCounter(subsystem string, worker int, metric string) string {
	return subsystem + ".worker." + strconv.Itoa(worker) + "." + metric
}

// Counter returns the current value of one counter.
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Counters returns a snapshot copy of all counters.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}
