package dataset

import (
	"encoding/json"
	"testing"

	"repro/internal/geom"
)

// mustWKT parses a WKT literal or fails the test.
func mustWKT(t *testing.T, wkt string) geom.Geometry {
	t.Helper()
	g, err := geom.ParseWKT(wkt)
	if err != nil {
		t.Fatalf("ParseWKT(%q): %v", wkt, err)
	}
	return g
}

// mutableDataset builds a small two-layer dataset for mutation tests.
func mutableDataset(t *testing.T) *Dataset {
	t.Helper()
	ref := NewLayer("district")
	ref.Add(Feature{ID: "d0", Geometry: mustWKT(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")})
	ref.Add(Feature{ID: "d1", Geometry: mustWKT(t, "POLYGON ((10 0, 20 0, 20 10, 10 10, 10 0))")})
	slums := NewLayer("slum")
	slums.Add(Feature{ID: "s0", Geometry: mustWKT(t, "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))")})
	slums.Add(Feature{ID: "s1", Geometry: mustWKT(t, "POLYGON ((12 1, 14 1, 14 3, 12 3, 12 1))")})
	d := &Dataset{Reference: ref, Relevant: []*Layer{slums}, NonSpatialAttrs: []string{"crimeRate"}}
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return d
}

func TestApplyOpsBasic(t *testing.T) {
	d := mutableDataset(t)
	nd, cs, err := d.ApplyOps([]Op{
		{Action: OpUpdate, Layer: "slum", ID: "s0", WKT: "POLYGON ((5 5, 7 5, 7 7, 5 7, 5 5))"},
		{Action: OpInsert, Layer: "slum", ID: "s2", WKT: "POLYGON ((15 5, 17 5, 17 7, 15 7, 15 5))"},
		{Action: OpDelete, Layer: "slum", ID: "s1"},
		{Action: OpUpdate, Layer: "district", ID: "d0", Attrs: map[string]Value{"crimeRate": "high"}},
	})
	if err != nil {
		t.Fatalf("ApplyOps: %v", err)
	}
	ld := cs.Layer("slum")
	if got, want := ld.Updated, []string{"s0"}; !equalStrings(got, want) {
		t.Errorf("updated = %v, want %v", got, want)
	}
	if got, want := ld.Inserted, []string{"s2"}; !equalStrings(got, want) {
		t.Errorf("inserted = %v, want %v", got, want)
	}
	if got, want := ld.Deleted, []string{"s1"}; !equalStrings(got, want) {
		t.Errorf("deleted = %v, want %v", got, want)
	}
	if got, want := cs.Layer("district").Updated, []string{"d0"}; !equalStrings(got, want) {
		t.Errorf("district updated = %v, want %v", got, want)
	}
	if cs.Count() != 4 {
		t.Errorf("Count() = %d, want 4", cs.Count())
	}

	// Successor has the edits applied.
	slum := nd.Relevant[0]
	if slum.Len() != 2 {
		t.Fatalf("successor slum layer has %d features, want 2", slum.Len())
	}
	if slum.Features[0].ID != "s0" || slum.Features[1].ID != "s2" {
		t.Errorf("successor slum IDs = %v, %v", slum.Features[0].ID, slum.Features[1].ID)
	}
	if env := slum.Features[0].Geometry.Envelope(); env.MinX != 5 {
		t.Errorf("s0 geometry not updated: envelope %+v", env)
	}
	if nd.Reference.Features[0].Attrs["crimeRate"] != "high" {
		t.Errorf("d0 attrs not updated: %v", nd.Reference.Features[0].Attrs)
	}
	if err := nd.Validate(); err != nil {
		t.Errorf("successor invalid: %v", err)
	}

	// The predecessor is untouched (copy-on-write).
	if d.Relevant[0].Len() != 2 || d.Relevant[0].Features[1].ID != "s1" {
		t.Errorf("predecessor slum layer mutated: %+v", d.Relevant[0].Features)
	}
	if env := d.Relevant[0].Features[0].Geometry.Envelope(); env.MinX != 1 {
		t.Errorf("predecessor s0 geometry mutated: %+v", env)
	}
	if d.Reference.Features[0].Attrs != nil {
		t.Errorf("predecessor d0 attrs mutated: %v", d.Reference.Features[0].Attrs)
	}
}

func TestApplyOpsNetEffects(t *testing.T) {
	d := mutableDataset(t)

	// Insert then delete within one batch: net no-op for that feature.
	_, cs, err := d.ApplyOps([]Op{
		{Action: OpInsert, Layer: "slum", ID: "tmp", WKT: "POINT (1 1)"},
		{Action: OpDelete, Layer: "slum", ID: "tmp"},
		{Action: OpUpdate, Layer: "slum", ID: "s0", WKT: "POINT (2 2)"},
	})
	if err != nil {
		t.Fatalf("ApplyOps: %v", err)
	}
	ld := cs.Layer("slum")
	if len(ld.Inserted) != 0 || len(ld.Deleted) != 0 {
		t.Errorf("insert+delete should be a net no-op, got %+v", ld)
	}
	if !equalStrings(ld.Updated, []string{"s0"}) {
		t.Errorf("updated = %v, want [s0]", ld.Updated)
	}

	// Insert then update stays an insert.
	_, cs, err = d.ApplyOps([]Op{
		{Action: OpInsert, Layer: "slum", ID: "s9", WKT: "POINT (1 1)"},
		{Action: OpUpdate, Layer: "slum", ID: "s9", WKT: "POINT (2 2)"},
	})
	if err != nil {
		t.Fatalf("ApplyOps: %v", err)
	}
	ld = cs.Layer("slum")
	if !equalStrings(ld.Inserted, []string{"s9"}) || len(ld.Updated) != 0 {
		t.Errorf("insert+update should stay inserted, got %+v", ld)
	}

	// Delete then re-insert an existing feature: reported as both (the
	// feature moved to the end of the layer).
	nd, cs, err := d.ApplyOps([]Op{
		{Action: OpDelete, Layer: "slum", ID: "s0"},
		{Action: OpInsert, Layer: "slum", ID: "s0", WKT: "POINT (3 3)"},
	})
	if err != nil {
		t.Fatalf("ApplyOps: %v", err)
	}
	ld = cs.Layer("slum")
	if !equalStrings(ld.Deleted, []string{"s0"}) || !equalStrings(ld.Inserted, []string{"s0"}) {
		t.Errorf("delete+reinsert should report deleted+inserted, got %+v", ld)
	}
	if last := nd.Relevant[0].Features[nd.Relevant[0].Len()-1]; last.ID != "s0" {
		t.Errorf("reinserted feature should be last, layer = %+v", nd.Relevant[0].Features)
	}
}

func TestApplyOpsValidation(t *testing.T) {
	d := mutableDataset(t)
	cases := []struct {
		name string
		ops  []Op
	}{
		{"empty batch", nil},
		{"unknown layer", []Op{{Action: OpInsert, Layer: "nope", ID: "x", WKT: "POINT (0 0)"}}},
		{"unknown action", []Op{{Action: "upsert", Layer: "slum", ID: "s0", WKT: "POINT (0 0)"}}},
		{"empty id", []Op{{Action: OpInsert, Layer: "slum", WKT: "POINT (0 0)"}}},
		{"duplicate insert", []Op{{Action: OpInsert, Layer: "slum", ID: "s0", WKT: "POINT (0 0)"}}},
		{"insert without wkt", []Op{{Action: OpInsert, Layer: "slum", ID: "sX"}}},
		{"bad wkt", []Op{{Action: OpInsert, Layer: "slum", ID: "sX", WKT: "POLYGON 1 2 3"}}},
		{"update missing", []Op{{Action: OpUpdate, Layer: "slum", ID: "ghost", WKT: "POINT (0 0)"}}},
		{"update changes nothing", []Op{{Action: OpUpdate, Layer: "slum", ID: "s0"}}},
		{"delete missing", []Op{{Action: OpDelete, Layer: "slum", ID: "ghost"}}},
		{"delete all reference rows", []Op{
			{Action: OpDelete, Layer: "district", ID: "d0"},
			{Action: OpDelete, Layer: "district", ID: "d1"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := d.ApplyOps(tc.ops); err == nil {
				t.Fatalf("ApplyOps(%v) succeeded, want error", tc.ops)
			}
		})
	}
	// A failed batch leaves the original untouched.
	if d.Relevant[0].Len() != 2 || d.Reference.Len() != 2 {
		t.Fatalf("failed batches mutated the dataset")
	}
}

func TestMutationJSONRoundTrip(t *testing.T) {
	m := Mutation{Ops: []Op{
		{Action: OpUpdate, Layer: "slum", ID: "s0", WKT: "POINT (1 2)"},
		{Action: OpInsert, Layer: "school", ID: "sc9", WKT: "POINT (3 4)", Attrs: map[string]Value{"grade": "A"}},
		{Action: OpDelete, Layer: "river", ID: "r1"},
	}}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Mutation
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Ops) != 3 {
		t.Fatalf("round trip lost ops: %+v", back.Ops)
	}
	if o := back.Ops[0]; o.Action != OpUpdate || o.Layer != "slum" || o.ID != "s0" || o.WKT != "POINT (1 2)" {
		t.Errorf("round trip lost data: %+v", o)
	}
	if back.Ops[1].Attrs["grade"] != "A" {
		t.Errorf("attrs lost: %+v", back.Ops[1])
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
