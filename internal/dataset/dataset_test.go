package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestLayerBasics(t *testing.T) {
	l := NewLayer("slum")
	l.AddGeometry(geom.Rect(0, 0, 2, 2)).AddGeometry(geom.Rect(4, 4, 6, 6))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Features[0].ID != "slum0" || l.Features[1].ID != "slum1" {
		t.Errorf("auto IDs = %q, %q", l.Features[0].ID, l.Features[1].ID)
	}
	env := l.Envelope()
	if env.MinX != 0 || env.MaxX != 6 {
		t.Errorf("layer envelope = %+v", env)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLayerValidateErrors(t *testing.T) {
	l := NewLayer("bad")
	l.Add(Feature{ID: "f1"})
	if err := l.Validate(); err == nil || !strings.Contains(err.Error(), "no geometry") {
		t.Errorf("missing geometry: %v", err)
	}
	l = NewLayer("bad2")
	l.Add(Feature{ID: "f1", Geometry: geom.Poly(geom.Pt(0, 0), geom.Pt(1, 1))})
	if err := l.Validate(); err == nil {
		t.Error("invalid geometry should fail validation")
	}
}

func TestFeatureAttrs(t *testing.T) {
	var f Feature
	if _, ok := f.Attr("x"); ok {
		t.Error("empty feature has no attrs")
	}
	f.SetAttr("murderRate", "high")
	v, ok := f.Attr("murderRate")
	if !ok || v != "high" {
		t.Errorf("Attr = %v, %v", v, ok)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{}
	if err := d.Validate(); err == nil {
		t.Error("dataset without reference must fail")
	}
	ref := NewLayer("district")
	ref.AddGeometry(geom.Rect(0, 0, 10, 10))
	d = &Dataset{Reference: ref, Relevant: []*Layer{NewLayer("slum"), NewLayer("slum")}}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate layer type") {
		t.Errorf("duplicate layer: %v", err)
	}
	d = &Dataset{Reference: ref, Relevant: []*Layer{NewLayer("slum"), NewLayer("school")}}
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset: %v", err)
	}
	if got := d.RelevantTypes(); len(got) != 2 || got[0] != "slum" || got[1] != "school" {
		t.Errorf("RelevantTypes = %v", got)
	}
}

func TestNormalizeItems(t *testing.T) {
	got := NormalizeItems([]string{"b", "a", "b", "c", "a"})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("NormalizeItems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeItems = %v, want %v", got, want)
		}
	}
	if len(NormalizeItems(nil)) != 0 {
		t.Error("nil input should normalise to empty")
	}
}

func TestTableBasics(t *testing.T) {
	table := NewTable([]Transaction{
		{RefID: "a", Items: []string{"y", "x", "x"}},
		{RefID: "b", Items: []string{"x", "z"}},
		{RefID: "c", Items: []string{"z"}},
	})
	if table.Len() != 3 {
		t.Fatalf("Len = %d", table.Len())
	}
	items := table.Items()
	if len(items) != 3 || items[0] != "x" || items[2] != "z" {
		t.Errorf("Items = %v", items)
	}
	if got := table.SupportCount([]string{"x"}); got != 2 {
		t.Errorf("support(x) = %d", got)
	}
	if got := table.SupportCount([]string{"x", "z"}); got != 1 {
		t.Errorf("support(x,z) = %d", got)
	}
	if got := table.SupportCount([]string{"nope"}); got != 0 {
		t.Errorf("support(nope) = %d", got)
	}
	if got := table.SupportCount(nil); got != 3 {
		t.Errorf("support(empty) = %d, want all rows", got)
	}
}

func TestPortoAlegreTableMatchesPaper(t *testing.T) {
	table := PortoAlegreTable()
	if table.Len() != 6 {
		t.Fatalf("rows = %d, want 6", table.Len())
	}
	// The dataset has 9 distinct predicates: 2 non-spatial and 7 spatial,
	// as the paper states in Section 2.
	items := table.Items()
	distinct := map[string]bool{}
	nonSpatial := 0
	for _, it := range items {
		distinct[it] = true
		if strings.Contains(it, "=") {
			nonSpatial++
		}
	}
	// murderRate and theftRate each have two values -> 4 "attr=value"
	// items, but the paper counts predicates: 2 non-spatial attributes
	// and 7 spatial predicates.
	spatial := map[string]bool{}
	attrs := map[string]bool{}
	for it := range distinct {
		if i := strings.IndexByte(it, '='); i >= 0 {
			attrs[it[:i]] = true
		} else {
			spatial[it] = true
		}
	}
	if len(attrs) != 2 {
		t.Errorf("non-spatial attributes = %d, want 2", len(attrs))
	}
	if len(spatial) != 7 {
		t.Errorf("spatial predicates = %d, want 7: %v", len(spatial), spatial)
	}
	// Row sanity: Nonoai has all four slum relations.
	for _, tx := range table.Transactions {
		if tx.RefID != "Nonoai" {
			continue
		}
		for _, want := range []string{"contains_slum", "touches_slum", "overlaps_slum", "covers_slum"} {
			if table.SupportCount([]string{want}) == 0 {
				t.Errorf("missing %s", want)
			}
			found := false
			for _, it := range tx.Items {
				if it == want {
					found = true
				}
			}
			if !found {
				t.Errorf("Nonoai missing %s", want)
			}
		}
	}
	// Frequent-itemset preconditions the paper derives from this table.
	if got := table.SupportCount([]string{"contains_slum"}); got != 6 {
		t.Errorf("support(contains_slum) = %d, want 6", got)
	}
	if got := table.SupportCount([]string{"murderRate=high"}); got != 4 {
		t.Errorf("support(murderRate=high) = %d, want 4", got)
	}
	if got := table.SupportCount([]string{"contains_policeCenter"}); got != 2 {
		t.Errorf("support(contains_policeCenter) = %d, want 2", got)
	}
}

func TestPortoAlegreSceneValid(t *testing.T) {
	scene := PortoAlegreScene()
	if err := scene.Validate(); err != nil {
		t.Fatalf("scene invalid: %v", err)
	}
	if scene.Reference.Len() != 6 {
		t.Errorf("districts = %d", scene.Reference.Len())
	}
	// Slums: Teresopolis 2, Vila Nova 2, Cavalhada 3, Cristal 3,
	// Nonoai 4, Camaqua 2 -> 16 total.
	if got := scene.Relevant[0].Len(); got != 16 {
		t.Errorf("slums = %d, want 16", got)
	}
	// The paper's Nonoai slum instances exist.
	ids := map[string]bool{}
	for _, f := range scene.Relevant[0].Features {
		ids[f.ID] = true
	}
	for _, want := range []string{"slum159", "slum174", "slum180", "slum183"} {
		if !ids[want] {
			t.Errorf("missing paper slum instance %s", want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	scene := PortoAlegreScene()
	var buf bytes.Buffer
	if err := scene.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reference.Type != "district" || back.Reference.Len() != 6 {
		t.Errorf("reference layer mangled: %s/%d", back.Reference.Type, back.Reference.Len())
	}
	if len(back.Relevant) != 3 {
		t.Fatalf("relevant layers = %d", len(back.Relevant))
	}
	if back.Relevant[0].Len() != scene.Relevant[0].Len() {
		t.Errorf("slum count changed: %d -> %d", scene.Relevant[0].Len(), back.Relevant[0].Len())
	}
	// Attribute survives.
	if v, ok := back.Reference.Features[0].Attr("murderRate"); !ok || v != "high" {
		t.Errorf("attr lost: %v %v", v, ok)
	}
	// Geometry survives.
	if back.Reference.Features[0].Geometry.Envelope() != scene.Reference.Features[0].Geometry.Envelope() {
		t.Error("geometry changed in round trip")
	}
	if len(back.NonSpatialAttrs) != 2 {
		t.Errorf("nonSpatialAttrs = %v", back.NonSpatialAttrs)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"reference": {"type": "d", "features": [{"id": "x", "wkt": "JUNK"}]}}`)); err == nil {
		t.Error("bad WKT should fail")
	}
}

func TestSaveLoadJSON(t *testing.T) {
	scene := PortoAlegreScene()
	path := t.TempDir() + "/scene.json"
	if err := scene.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reference.Len() != 6 {
		t.Errorf("loaded districts = %d", back.Reference.Len())
	}
	if _, err := LoadJSON(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestWriteTableCSV(t *testing.T) {
	table := NewTable([]Transaction{{RefID: "a", Items: []string{"x", "y"}}})
	var buf bytes.Buffer
	if err := table.WriteTableCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,x,y\n" {
		t.Errorf("CSV = %q", got)
	}
}
