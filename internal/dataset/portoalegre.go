package dataset

import "repro/internal/geom"

// District names of the paper's Table 1 sample, in table order.
var portoAlegreDistricts = []string{
	"Teresopolis", "Vila Nova", "Cavalhada", "Cristal", "Nonoai", "Camaqua",
}

// PortoAlegreTable returns the paper's Table 1 verbatim: six districts of
// Porto Alegre with their murder/theft rates and topological predicates
// against slums, schools, and police centers.
func PortoAlegreTable() *Table {
	rows := []Transaction{
		{RefID: "Teresopolis", Items: []string{
			"murderRate=high", "theftRate=low",
			"contains_slum", "overlaps_slum",
			"contains_school", "touches_school",
		}},
		{RefID: "Vila Nova", Items: []string{
			"murderRate=low", "theftRate=low",
			"contains_slum", "touches_slum",
			"touches_school",
		}},
		{RefID: "Cavalhada", Items: []string{
			"murderRate=low", "theftRate=high",
			"contains_slum", "touches_slum", "overlaps_slum",
			"contains_school", "touches_school",
			"contains_policeCenter",
		}},
		{RefID: "Cristal", Items: []string{
			"murderRate=high", "theftRate=high",
			"contains_slum", "overlaps_slum", "covers_slum",
			"contains_school", "touches_school",
			"contains_policeCenter",
		}},
		{RefID: "Nonoai", Items: []string{
			"murderRate=high", "theftRate=high",
			"contains_slum", "touches_slum", "overlaps_slum", "covers_slum",
			"contains_school", "touches_school",
		}},
		{RefID: "Camaqua", Items: []string{
			"murderRate=high", "theftRate=low",
			"contains_slum", "overlaps_slum",
			"contains_school", "touches_school",
		}},
	}
	return NewTable(rows)
}

// Table2Reconstruction returns a 6-district dataset that is exactly
// consistent with the paper's Table 2, unlike the printed Table 1.
//
// The printed Table 1 cannot produce Table 2: e.g. {murderRate=high,
// theftRate=low} holds in only 2 of its 6 rows, yet Table 2 lists it as
// frequent at minimum support 50% (3 rows). Mining the printed Table 1
// yields 47 frequent itemsets with largest size 5 — not the 60 with
// largest size 6 that Table 2 shows and that Section 4.1 verifies against
// the sum-of-binomials lower bound (57).
//
// This reconstruction is the minimal transaction table consistent with
// Table 2: three districts carry the full largest itemset {murderRate=
// high, theftRate=low, contains_slum, overlaps_slum, contains_school,
// touches_school} (giving all 57 of its sub-itemsets minimum support) and
// three districts carry {contains_slum, touches_slum, touches_school}
// (adding the three remaining Table 2 entries), for exactly 60 frequent
// itemsets of size >= 2 with the printed largest itemset. 30 of the 60
// contain a same-feature-type pair; the paper says 31, an off-by-one we
// attribute to the same arithmetic slips visible in its Formula 1 example
// (see EXPERIMENTS.md).
func Table2Reconstruction() *Table {
	rows := []Transaction{
		{RefID: "Teresopolis", Items: []string{
			"murderRate=high", "theftRate=low",
			"contains_slum", "overlaps_slum", "contains_school", "touches_school",
		}},
		{RefID: "Camaqua", Items: []string{
			"murderRate=high", "theftRate=low",
			"contains_slum", "overlaps_slum", "contains_school", "touches_school",
		}},
		{RefID: "Partenon", Items: []string{
			"murderRate=high", "theftRate=low",
			"contains_slum", "overlaps_slum", "contains_school", "touches_school",
		}},
		{RefID: "Vila Nova", Items: []string{
			"murderRate=low", "theftRate=low",
			"contains_slum", "touches_slum", "touches_school",
		}},
		{RefID: "Cavalhada", Items: []string{
			"murderRate=low", "theftRate=high",
			"contains_slum", "touches_slum", "covers_slum", "touches_school",
		}},
		{RefID: "Cristal", Items: []string{
			"murderRate=high", "theftRate=high",
			"contains_slum", "touches_slum", "covers_slum", "touches_school",
			"contains_policeCenter",
		}},
	}
	return NewTable(rows)
}

// Table2ReconstructionScene builds a geometric scene whose extraction
// reproduces Table2Reconstruction exactly, so the Table 2 experiments can
// also be driven end-to-end from geometry. Same construction idea as
// PortoAlegreScene: six spread-out 10x10 districts furnished per row.
func Table2ReconstructionScene() *Dataset {
	districts := NewLayer("district")
	slums := NewLayer("slum")
	schools := NewLayer("school")
	police := NewLayer("policeCenter")

	seq := 0
	id := func(prefix string) string {
		seq++
		return prefix + itoa(seq)
	}
	for i, tx := range Table2Reconstruction().Transactions {
		ox := float64(i) * 100
		attrs := map[string]Value{}
		for _, item := range tx.Items {
			switch {
			case item == "murderRate=high":
				attrs["murderRate"] = "high"
			case item == "murderRate=low":
				attrs["murderRate"] = "low"
			case item == "theftRate=high":
				attrs["theftRate"] = "high"
			case item == "theftRate=low":
				attrs["theftRate"] = "low"
			case item == "contains_slum":
				slums.Add(Feature{ID: id("slum"), Geometry: geom.Rect(ox+1, 1, ox+3, 3)})
			case item == "touches_slum":
				slums.Add(Feature{ID: id("slum"), Geometry: geom.Rect(ox+10, 0, ox+12, 2)})
			case item == "overlaps_slum":
				slums.Add(Feature{ID: id("slum"), Geometry: geom.Rect(ox+8, 4, ox+12, 6)})
			case item == "covers_slum":
				slums.Add(Feature{ID: id("slum"), Geometry: geom.Rect(ox, 6, ox+2, 8)})
			case item == "contains_school":
				schools.Add(Feature{ID: id("school"), Geometry: geom.Pt(ox+5, 5)})
			case item == "touches_school":
				schools.Add(Feature{ID: id("school"), Geometry: geom.Pt(ox+5, 0)})
			case item == "contains_policeCenter":
				police.Add(Feature{ID: id("policeCenter"), Geometry: geom.Pt(ox+7, 7)})
			}
		}
		districts.Add(Feature{ID: tx.RefID, Geometry: geom.Rect(ox, 0, ox+10, 10), Attrs: attrs})
	}
	return &Dataset{
		Reference:       districts,
		Relevant:        []*Layer{slums, schools, police},
		NonSpatialAttrs: []string{"murderRate", "theftRate"},
	}
}

// PortoAlegreScene builds a synthetic geometric scene whose topological
// predicate extraction reproduces Table 1 exactly: six 10x10 district
// squares spaced far apart, each furnished with slum polygons, school
// points, and police-center points realising precisely the relationships
// the table records. The feature IDs of the Nonoai district reuse the
// instance numbers the paper mentions (slum159, slum174, slum180,
// slum183).
//
// This is the geometric ground truth for the end-to-end pipeline tests:
// scene -> DE-9IM extraction -> transactions must equal PortoAlegreTable.
func PortoAlegreScene() *Dataset {
	districts := NewLayer("district")
	slums := NewLayer("slum")
	schools := NewLayer("school")
	police := NewLayer("policeCenter")

	// Per-district relationship recipe matching Table 1.
	type recipe struct {
		murder, theft                 string
		containsSlum, touchesSlum     bool
		overlapsSlum, coversSlum      bool
		containsSchool, touchesSchool bool
		containsPolice                bool
	}
	recipes := map[string]recipe{
		"Teresopolis": {murder: "high", theft: "low", containsSlum: true, overlapsSlum: true, containsSchool: true, touchesSchool: true},
		"Vila Nova":   {murder: "low", theft: "low", containsSlum: true, touchesSlum: true, touchesSchool: true},
		"Cavalhada":   {murder: "low", theft: "high", containsSlum: true, touchesSlum: true, overlapsSlum: true, containsSchool: true, touchesSchool: true, containsPolice: true},
		"Cristal":     {murder: "high", theft: "high", containsSlum: true, overlapsSlum: true, coversSlum: true, containsSchool: true, touchesSchool: true, containsPolice: true},
		"Nonoai":      {murder: "high", theft: "high", containsSlum: true, touchesSlum: true, overlapsSlum: true, coversSlum: true, containsSchool: true, touchesSchool: true},
		"Camaqua":     {murder: "high", theft: "low", containsSlum: true, overlapsSlum: true, containsSchool: true, touchesSchool: true},
	}
	// The paper's slum instance numbers for Nonoai; other districts get
	// sequential IDs.
	nonoaiSlumIDs := map[string]string{
		"contains": "slum159", "touches": "slum180",
		"overlaps": "slum174", "covers": "slum183",
	}

	slumSeq, schoolSeq, policeSeq := 0, 0, 0
	nextID := func(prefix string, seq *int) string {
		*seq++
		return prefix + itoa(*seq)
	}
	slumID := func(district, kind string) string {
		if district == "Nonoai" {
			return nonoaiSlumIDs[kind]
		}
		return nextID("slum", &slumSeq)
	}

	for i, name := range portoAlegreDistricts {
		r := recipes[name]
		ox := float64(i) * 100 // districts spaced out so features never interfere
		oy := 0.0
		district := Feature{
			ID:       name,
			Geometry: geom.Rect(ox, oy, ox+10, oy+10),
			Attrs: map[string]Value{
				"murderRate": r.murder,
				"theftRate":  r.theft,
			},
		}
		districts.Add(district)

		if r.containsSlum {
			// Strictly inside: district contains the slum.
			slums.Add(Feature{ID: slumID(name, "contains"), Geometry: geom.Rect(ox+1, oy+1, ox+3, oy+3)})
		}
		if r.touchesSlum {
			// Outside, sharing the right edge: touches.
			slums.Add(Feature{ID: slumID(name, "touches"), Geometry: geom.Rect(ox+10, oy, ox+12, oy+2)})
		}
		if r.overlapsSlum {
			// Straddling the right edge: overlaps.
			slums.Add(Feature{ID: slumID(name, "overlaps"), Geometry: geom.Rect(ox+8, oy+4, ox+12, oy+6)})
		}
		if r.coversSlum {
			// Inside but sharing part of the left edge: district covers it.
			slums.Add(Feature{ID: slumID(name, "covers"), Geometry: geom.Rect(ox, oy+6, ox+2, oy+8)})
		}
		if r.containsSchool {
			schools.Add(Feature{ID: nextID("school", &schoolSeq), Geometry: geom.Pt(ox+5, oy+5)})
		}
		if r.touchesSchool {
			// A point on the district boundary touches it.
			schools.Add(Feature{ID: nextID("school", &schoolSeq), Geometry: geom.Pt(ox+5, oy)})
		}
		if r.containsPolice {
			police.Add(Feature{ID: nextID("policeCenter", &policeSeq), Geometry: geom.Pt(ox+7, oy+7)})
		}
	}

	return &Dataset{
		Reference:       districts,
		Relevant:        []*Layer{slums, schools, police},
		NonSpatialAttrs: []string{"murderRate", "theftRate"},
	}
}

// itoa is a minimal positive-integer formatter (avoids strconv for a
// three-call-site helper).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
