package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// GeoJSON interchange: each layer maps to one FeatureCollection. This is
// the format real GIS tools exchange, so datasets prepared in QGIS or
// PostGIS can be mined directly.

// geoJSONCollection is a GeoJSON FeatureCollection.
type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string           `json:"type"`
	ID         string           `json:"id,omitempty"`
	Geometry   *geoJSONGeometry `json:"geometry"`
	Properties map[string]Value `json:"properties,omitempty"`
}

type geoJSONGeometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

// WriteGeoJSON serialises one layer as a GeoJSON FeatureCollection.
func (l *Layer) WriteGeoJSON(w io.Writer) error {
	coll := geoJSONCollection{Type: "FeatureCollection"}
	for i := range l.Features {
		f := &l.Features[i]
		gj, err := geometryToGeoJSON(f.Geometry)
		if err != nil {
			return fmt.Errorf("dataset: layer %q feature %q: %w", l.Type, f.ID, err)
		}
		coll.Features = append(coll.Features, geoJSONFeature{
			Type: "Feature", ID: f.ID, Geometry: gj, Properties: f.Attrs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(coll)
}

// ReadGeoJSON parses a GeoJSON FeatureCollection into a layer of the
// given feature type.
func ReadGeoJSON(r io.Reader, featureType string) (*Layer, error) {
	var coll geoJSONCollection
	if err := json.NewDecoder(r).Decode(&coll); err != nil {
		return nil, fmt.Errorf("dataset: decoding GeoJSON: %w", err)
	}
	if coll.Type != "FeatureCollection" {
		return nil, fmt.Errorf("dataset: expected FeatureCollection, got %q", coll.Type)
	}
	layer := NewLayer(featureType)
	for i, gf := range coll.Features {
		if gf.Geometry == nil {
			return nil, fmt.Errorf("dataset: feature %d has no geometry", i)
		}
		g, err := geometryFromGeoJSON(gf.Geometry)
		if err != nil {
			return nil, fmt.Errorf("dataset: feature %d: %w", i, err)
		}
		id := gf.ID
		if id == "" {
			id = fmt.Sprintf("%s%d", featureType, i)
		}
		layer.Add(Feature{ID: id, Geometry: g, Attrs: gf.Properties})
	}
	return layer, nil
}

// geometryToGeoJSON converts a geometry to its GeoJSON representation.
func geometryToGeoJSON(g geom.Geometry) (*geoJSONGeometry, error) {
	if g == nil {
		return nil, fmt.Errorf("nil geometry")
	}
	marshal := func(v interface{}) json.RawMessage {
		raw, err := json.Marshal(v)
		if err != nil {
			panic(err) // positions of float64 always marshal
		}
		return raw
	}
	switch t := g.(type) {
	case geom.Point:
		return &geoJSONGeometry{Type: "Point", Coordinates: marshal(pos(t))}, nil
	case geom.MultiPoint:
		return &geoJSONGeometry{Type: "MultiPoint", Coordinates: marshal(posList(t.Points))}, nil
	case geom.LineString:
		return &geoJSONGeometry{Type: "LineString", Coordinates: marshal(posList(t.Coords))}, nil
	case geom.MultiLineString:
		lines := make([][][2]float64, len(t.Lines))
		for i, l := range t.Lines {
			lines[i] = posList(l.Coords)
		}
		return &geoJSONGeometry{Type: "MultiLineString", Coordinates: marshal(lines)}, nil
	case geom.Polygon:
		return &geoJSONGeometry{Type: "Polygon", Coordinates: marshal(polyCoords(t))}, nil
	case geom.MultiPolygon:
		polys := make([][][][2]float64, len(t.Polygons))
		for i, p := range t.Polygons {
			polys[i] = polyCoords(p)
		}
		return &geoJSONGeometry{Type: "MultiPolygon", Coordinates: marshal(polys)}, nil
	}
	return nil, fmt.Errorf("unsupported geometry type %T", g)
}

func pos(p geom.Point) [2]float64 { return [2]float64{p.X, p.Y} }

func posList(ps []geom.Point) [][2]float64 {
	out := make([][2]float64, len(ps))
	for i, p := range ps {
		out[i] = pos(p)
	}
	return out
}

// polyCoords renders rings with the explicit closing position GeoJSON
// requires.
func polyCoords(p geom.Polygon) [][][2]float64 {
	rings := p.Rings()
	out := make([][][2]float64, len(rings))
	for i, r := range rings {
		coords := posList(r.Coords)
		if len(coords) > 0 {
			coords = append(coords, coords[0])
		}
		out[i] = coords
	}
	return out
}

// geometryFromGeoJSON converts a GeoJSON geometry back.
func geometryFromGeoJSON(gj *geoJSONGeometry) (geom.Geometry, error) {
	switch gj.Type {
	case "Point":
		var c [2]float64
		if err := json.Unmarshal(gj.Coordinates, &c); err != nil {
			return nil, err
		}
		return geom.Point{X: c[0], Y: c[1]}, nil
	case "MultiPoint":
		var cs [][2]float64
		if err := json.Unmarshal(gj.Coordinates, &cs); err != nil {
			return nil, err
		}
		return geom.MultiPoint{Points: points(cs)}, nil
	case "LineString":
		var cs [][2]float64
		if err := json.Unmarshal(gj.Coordinates, &cs); err != nil {
			return nil, err
		}
		return geom.LineString{Coords: points(cs)}, nil
	case "MultiLineString":
		var ls [][][2]float64
		if err := json.Unmarshal(gj.Coordinates, &ls); err != nil {
			return nil, err
		}
		out := geom.MultiLineString{Lines: make([]geom.LineString, len(ls))}
		for i, cs := range ls {
			out.Lines[i] = geom.LineString{Coords: points(cs)}
		}
		return out, nil
	case "Polygon":
		var rings [][][2]float64
		if err := json.Unmarshal(gj.Coordinates, &rings); err != nil {
			return nil, err
		}
		return polygonFromRings(rings)
	case "MultiPolygon":
		var polys [][][][2]float64
		if err := json.Unmarshal(gj.Coordinates, &polys); err != nil {
			return nil, err
		}
		out := geom.MultiPolygon{Polygons: make([]geom.Polygon, len(polys))}
		for i, rings := range polys {
			p, err := polygonFromRings(rings)
			if err != nil {
				return nil, err
			}
			out.Polygons[i] = p
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported GeoJSON geometry type %q", gj.Type)
}

func points(cs [][2]float64) []geom.Point {
	out := make([]geom.Point, len(cs))
	for i, c := range cs {
		out[i] = geom.Point{X: c[0], Y: c[1]}
	}
	return out
}

// polygonFromRings strips the GeoJSON closing positions.
func polygonFromRings(rings [][][2]float64) (geom.Polygon, error) {
	if len(rings) == 0 {
		return geom.Polygon{}, fmt.Errorf("polygon with no rings")
	}
	toRing := func(cs [][2]float64) geom.Ring {
		ps := points(cs)
		if len(ps) > 1 && ps[0].Equal(ps[len(ps)-1]) {
			ps = ps[:len(ps)-1]
		}
		return geom.Ring{Coords: ps}
	}
	poly := geom.Polygon{Shell: toRing(rings[0])}
	for _, h := range rings[1:] {
		poly.Holes = append(poly.Holes, toRing(h))
	}
	return poly, nil
}
