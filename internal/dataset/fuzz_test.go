package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// The parsers below face untrusted bytes directly in the qsrmined
// upload endpoints, so each gets a fuzz target: any input may be
// rejected with an error, but none may panic, and anything that parses
// must survive Validate and a write/re-read round trip.

func FuzzReadJSON(f *testing.F) {
	// A real scene, hand-written corner cases, and plain garbage.
	var buf bytes.Buffer
	if err := PortoAlegreScene().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"reference":{"type":"d","features":[{"id":"x","wkt":"POINT(1 2)"}]}}`))
	f.Add([]byte(`{"reference":{"type":"d","features":[{"id":"x","wkt":"POINT(1 2)","attrs":{"a":"b"}}]},` +
		`"relevant":[{"type":"w","features":[{"id":"y","wkt":"LINESTRING(0 0, 1 1)"}]}]}`))
	f.Add([]byte(`{"reference":{"features":[{"wkt":"POLYGON((0 0, 1 0, 1 1, 0 0))"}]}}`))
	f.Add([]byte(`{"reference":{"type":"d","features":[{"id":"x","wkt":"POINT(NaN Inf)"}]}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[`))
	f.Add([]byte("\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent and re-encodable.
		_ = ds.Validate()
		var out bytes.Buffer
		if err := ds.WriteJSON(&out); err != nil {
			return
		}
		if _, err := ReadJSON(&out); err != nil {
			t.Fatalf("round trip broke: %v\ninput: %q", err, data)
		}
	})
}

func FuzzReadGeoJSON(f *testing.F) {
	f.Add([]byte(`{"type":"FeatureCollection","features":[]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","id":"a","geometry":{"type":"Point","coordinates":[1,2]},"properties":{"k":"v"}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[2,3]]}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","geometry":{"type":"Polygon","coordinates":[]}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":null}]}`))
	f.Add([]byte(`{"type":"Polygon"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadGeoJSON(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		_ = l.Validate()
		var out bytes.Buffer
		if err := l.WriteGeoJSON(&out); err != nil {
			return
		}
		if _, err := ReadGeoJSON(&out, "fuzz"); err != nil {
			t.Fatalf("round trip broke: %v\ninput: %q", err, data)
		}
	})
}

func FuzzReadTableCSV(f *testing.F) {
	f.Add("r1,a,b\nr2,a,c\n")
	f.Add("# comment\nr1,a\n\nr2,b,b,b\n")
	f.Add("r1, padded , items \n")
	f.Add("r1,a\nr1,b\n") // duplicate reference IDs
	f.Add(",missing-ref\n")
	f.Add("lonely-ref\n")
	f.Add("r1,\"quoted,item\",b\n")
	f.Add("\x00")
	f.Add(strings.Repeat(",", 100))

	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadTableCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted tables must be well-formed and re-encodable.
		for _, tx := range tab.Transactions {
			if tx.RefID == "" {
				t.Fatalf("accepted transaction with empty reference ID from %q", data)
			}
		}
		var out bytes.Buffer
		if err := tab.WriteTableCSV(&out); err != nil {
			t.Fatalf("re-encoding accepted table: %v", err)
		}
		back, err := ReadTableCSV(&out)
		if err != nil {
			t.Fatalf("round trip broke: %v\ninput: %q", err, data)
		}
		if back.Len() != tab.Len() {
			t.Fatalf("round trip changed row count %d -> %d for %q", tab.Len(), back.Len(), data)
		}
	})
}
