package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/geom"
)

// Mutation op actions.
const (
	// OpInsert appends a new feature to a layer.
	OpInsert = "insert"
	// OpUpdate replaces the geometry and/or attributes of a feature.
	OpUpdate = "update"
	// OpDelete removes a feature from a layer.
	OpDelete = "delete"
)

// Op is one dataset mutation: insert, update, or delete a feature in a
// named layer (the reference layer or any relevant layer, addressed by
// feature-type name). It is the wire form of PATCH /v1/datasets/{digest}
// and of the CLI -mutate file.
type Op struct {
	// Action is one of OpInsert, OpUpdate, OpDelete.
	Action string `json:"action"`
	// Layer names the target layer by feature type.
	Layer string `json:"layer"`
	// ID addresses the feature within the layer.
	ID string `json:"id"`
	// WKT is the geometry for inserts (required) and updates (optional:
	// empty keeps the current geometry).
	WKT string `json:"wkt,omitempty"`
	// Attrs are the non-spatial attributes for inserts, and the full
	// replacement attribute map for updates when non-nil.
	Attrs map[string]Value `json:"attrs,omitempty"`
}

// Mutation is a batch of ops applied atomically: either every op
// applies, or the dataset is unchanged.
type Mutation struct {
	Ops []Op `json:"ops"`
}

// LoadMutation reads a mutation batch from a JSON file of the form
// {"ops":[{"action":"insert","layer":"slum","id":"s9","wkt":"..."}]}.
// Unknown fields are rejected so typos surface as errors, not silent
// no-ops.
func LoadMutation(path string) (*Mutation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading mutation %s: %w", path, err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var m Mutation
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("dataset: loading mutation %s: %w", path, err)
	}
	if len(m.Ops) == 0 {
		return nil, fmt.Errorf("dataset: loading mutation %s: no ops", path)
	}
	return &m, nil
}

// LayerDiff summarises what changed in one layer, by feature ID.
type LayerDiff struct {
	Updated  []string `json:"updated,omitempty"`
	Inserted []string `json:"inserted,omitempty"`
	Deleted  []string `json:"deleted,omitempty"`
}

// Empty reports whether the diff records no change.
func (ld *LayerDiff) Empty() bool {
	return ld == nil || (len(ld.Updated) == 0 && len(ld.Inserted) == 0 && len(ld.Deleted) == 0)
}

// Count returns the number of changed features.
func (ld *LayerDiff) Count() int {
	if ld == nil {
		return 0
	}
	return len(ld.Updated) + len(ld.Inserted) + len(ld.Deleted)
}

// ChangeSet is the structured delta between a dataset and its mutated
// successor: per-layer feature diffs keyed by feature-type name. The
// incremental extraction state consumes it to invalidate exactly the
// dirty region.
type ChangeSet struct {
	// ByLayer maps feature-type name to that layer's diff. Layers with
	// no change have no entry.
	ByLayer map[string]*LayerDiff `json:"byLayer"`
}

// Layer returns the diff for a layer (nil when unchanged).
func (cs *ChangeSet) Layer(name string) *LayerDiff {
	if cs == nil {
		return nil
	}
	return cs.ByLayer[name]
}

// Empty reports whether nothing changed.
func (cs *ChangeSet) Empty() bool {
	if cs == nil {
		return true
	}
	for _, ld := range cs.ByLayer {
		if !ld.Empty() {
			return false
		}
	}
	return true
}

// Count returns the total number of changed features across layers.
func (cs *ChangeSet) Count() int {
	if cs == nil {
		return 0
	}
	n := 0
	for _, ld := range cs.ByLayer {
		n += ld.Count()
	}
	return n
}

// ApplyOps applies a batch of mutation ops to d, returning the successor
// dataset and the change set. d itself is never modified: layers are
// copied, and untouched features share their geometry values (immutable
// by convention) with the original. Updates replace features in place
// (row order is preserved), deletes remove them (later rows shift up),
// and inserts append. The ops are validated up front — an unknown layer
// or ID, a duplicate insert, or invalid WKT fails the whole batch.
//
// A feature deleted and re-inserted in one batch moves to the end of its
// layer and is reported as deleted + inserted, not updated.
func (d *Dataset) ApplyOps(ops []Op) (*Dataset, *ChangeSet, error) {
	if d.Reference == nil {
		return nil, nil, fmt.Errorf("dataset: mutate: no reference layer")
	}
	if len(ops) == 0 {
		return nil, nil, fmt.Errorf("dataset: mutate: empty op batch")
	}

	// Copy-on-write scaffolding: one mutable copy per touched layer.
	nd := &Dataset{
		Reference:       d.Reference,
		Relevant:        append([]*Layer{}, d.Relevant...),
		NonSpatialAttrs: d.NonSpatialAttrs,
	}
	copied := make(map[string]*Layer) // layer type -> mutable copy
	layerOf := func(name string) (*Layer, error) {
		if l, ok := copied[name]; ok {
			return l, nil
		}
		var src *Layer
		if d.Reference.Type == name {
			src = d.Reference
		} else {
			for _, l := range d.Relevant {
				if l.Type == name {
					src = l
					break
				}
			}
		}
		if src == nil {
			return nil, fmt.Errorf("dataset: mutate: unknown layer %q", name)
		}
		cp := &Layer{Type: src.Type, Features: append([]Feature{}, src.Features...)}
		copied[name] = cp
		if src == d.Reference {
			nd.Reference = cp
		} else {
			for i, l := range nd.Relevant {
				if l.Type == name {
					nd.Relevant[i] = cp
				}
			}
		}
		return cp, nil
	}

	// Track the net effect per (layer, id): features present before the
	// batch and modified are "updated"; features added by the batch are
	// "inserted" (an insert then update stays inserted); present-before
	// features removed are "deleted".
	type featState struct {
		existedBefore bool
		inserted      bool
		updated       bool
		deleted       bool
	}
	states := make(map[string]map[string]*featState)
	stateOf := func(layer, id string, existedBefore bool) *featState {
		if states[layer] == nil {
			states[layer] = make(map[string]*featState)
		}
		st, ok := states[layer][id]
		if !ok {
			st = &featState{existedBefore: existedBefore}
			states[layer][id] = st
		}
		return st
	}

	for i, op := range ops {
		l, err := layerOf(op.Layer)
		if err != nil {
			return nil, nil, fmt.Errorf("op %d: %w", i, err)
		}
		if op.ID == "" {
			return nil, nil, fmt.Errorf("dataset: mutate: op %d: empty feature ID", i)
		}
		at := -1
		for j := range l.Features {
			if l.Features[j].ID == op.ID {
				at = j
				break
			}
		}
		switch op.Action {
		case OpInsert:
			if at >= 0 {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: insert: feature %q already exists in layer %q", i, op.ID, op.Layer)
			}
			if op.WKT == "" {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: insert needs a wkt geometry", i)
			}
			g, err := geom.ParseWKT(op.WKT)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: %w", i, err)
			}
			if err := geom.Validate(g); err != nil {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: %w", i, err)
			}
			l.Features = append(l.Features, Feature{ID: op.ID, Geometry: g, Attrs: copyAttrs(op.Attrs)})
			st := stateOf(op.Layer, op.ID, false)
			st.inserted, st.deleted = true, false
		case OpUpdate:
			if at < 0 {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: update: no feature %q in layer %q", i, op.ID, op.Layer)
			}
			f := l.Features[at] // value copy; the original layer keeps its own
			if op.WKT != "" {
				g, err := geom.ParseWKT(op.WKT)
				if err != nil {
					return nil, nil, fmt.Errorf("dataset: mutate: op %d: %w", i, err)
				}
				if err := geom.Validate(g); err != nil {
					return nil, nil, fmt.Errorf("dataset: mutate: op %d: %w", i, err)
				}
				f.Geometry = g
			}
			if op.Attrs != nil {
				f.Attrs = copyAttrs(op.Attrs)
			}
			if op.WKT == "" && op.Attrs == nil {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: update changes neither wkt nor attrs", i)
			}
			l.Features[at] = f
			st := stateOf(op.Layer, op.ID, true)
			if !st.inserted {
				st.updated = true
			}
		case OpDelete:
			if at < 0 {
				return nil, nil, fmt.Errorf("dataset: mutate: op %d: delete: no feature %q in layer %q", i, op.ID, op.Layer)
			}
			l.Features = append(l.Features[:at], l.Features[at+1:]...)
			st := stateOf(op.Layer, op.ID, true)
			if st.inserted && !st.existedBefore {
				// Inserted then deleted within the batch: net no-op.
				delete(states[op.Layer], op.ID)
			} else {
				st.deleted, st.inserted, st.updated = true, false, false
			}
		default:
			return nil, nil, fmt.Errorf("dataset: mutate: op %d: unknown action %q (want insert, update, or delete)", i, op.Action)
		}
	}

	cs := &ChangeSet{ByLayer: make(map[string]*LayerDiff)}
	for layer, byID := range states {
		ld := &LayerDiff{}
		for id, st := range byID {
			switch {
			case st.deleted:
				ld.Deleted = append(ld.Deleted, id)
			case st.inserted && st.existedBefore:
				// Deleted then re-inserted within the batch: the feature
				// moved to the end of its layer.
				ld.Deleted = append(ld.Deleted, id)
				ld.Inserted = append(ld.Inserted, id)
			case st.inserted:
				ld.Inserted = append(ld.Inserted, id)
			case st.updated:
				ld.Updated = append(ld.Updated, id)
			}
		}
		sort.Strings(ld.Updated)
		sort.Strings(ld.Inserted)
		sort.Strings(ld.Deleted)
		if !ld.Empty() {
			cs.ByLayer[layer] = ld
		}
	}
	if nd.Reference.Len() == 0 {
		return nil, nil, fmt.Errorf("dataset: mutate: batch deletes every reference feature")
	}
	return nd, cs, nil
}

// copyAttrs clones an attribute map so the successor never aliases the
// caller's (or the wire decoder's) map.
func copyAttrs(attrs map[string]Value) map[string]Value {
	if attrs == nil {
		return nil
	}
	cp := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	return cp
}
