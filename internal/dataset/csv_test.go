package dataset

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestTableCSVRoundTrip(t *testing.T) {
	orig := PortoAlegreTable()
	var buf bytes.Buffer
	if err := orig.WriteTableCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("rows %d -> %d", orig.Len(), back.Len())
	}
	for i := range orig.Transactions {
		a, b := orig.Transactions[i], back.Transactions[i]
		if a.RefID != b.RefID {
			t.Errorf("row %d: %q -> %q", i, a.RefID, b.RefID)
		}
		if strings.Join(a.Items, "|") != strings.Join(b.Items, "|") {
			t.Errorf("row %d items changed", i)
		}
	}
}

func TestReadTableCSVComments(t *testing.T) {
	src := `# a comment
d1,contains_slum,touches_school

d2, contains_slum , contains_slum
`
	table, err := ReadTableCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (comment/blank skipped)", table.Len())
	}
	// Whitespace trimmed, duplicates removed.
	if len(table.Transactions[1].Items) != 1 || table.Transactions[1].Items[0] != "contains_slum" {
		t.Errorf("row 2 items = %v", table.Transactions[1].Items)
	}
}

func TestReadTableCSVErrors(t *testing.T) {
	if _, err := ReadTableCSV(strings.NewReader(",item\n")); err == nil {
		t.Error("empty reference ID should fail")
	}
}

func TestLoadTableCSV(t *testing.T) {
	path := t.TempDir() + "/table.csv"
	orig := PortoAlegreTable()
	var buf bytes.Buffer
	if err := orig.WriteTableCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	table, err := LoadTableCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 6 {
		t.Errorf("rows = %d", table.Len())
	}
	if _, err := LoadTableCSV(t.TempDir() + "/missing.csv"); err == nil {
		t.Error("missing file should fail")
	}
}

// writeFile is a minimal test helper around os.WriteFile.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
