// Package dataset models the spatial data layer the mining pipeline
// consumes: feature types, features with geometry and attributes, layers,
// and the full spatial dataset of one reference layer (the "transaction"
// objects, e.g. districts) plus relevant layers (slums, schools, ...).
// It also ships the paper's Table 1 Porto Alegre sample, both as a ready
// transaction table and as a crafted geometric scene whose predicate
// extraction reproduces that table exactly.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Value is a non-spatial attribute value. Only strings and float64 occur;
// numeric attributes are discretised before mining.
type Value interface{}

// Feature is one spatial object: an identifier unique within its layer, a
// geometry, and optional non-spatial attributes.
type Feature struct {
	ID       string
	Geometry geom.Geometry
	Attrs    map[string]Value
}

// Attr returns the named attribute and whether it exists.
func (f *Feature) Attr(name string) (Value, bool) {
	v, ok := f.Attrs[name]
	return v, ok
}

// SetAttr sets an attribute, allocating the map on first use.
func (f *Feature) SetAttr(name string, v Value) {
	if f.Attrs == nil {
		f.Attrs = make(map[string]Value)
	}
	f.Attrs[name] = v
}

// Layer is a homogeneous collection of features of one feature type
// ("district", "slum", "school", ...).
type Layer struct {
	// Type is the feature-type name used in predicates.
	Type string
	// Features are the members of the layer.
	Features []Feature
}

// NewLayer constructs an empty layer of the given feature type.
func NewLayer(featureType string) *Layer {
	return &Layer{Type: featureType}
}

// Add appends a feature and returns the layer for chaining.
func (l *Layer) Add(f Feature) *Layer {
	l.Features = append(l.Features, f)
	return l
}

// AddGeometry appends a feature with an auto-generated ID.
func (l *Layer) AddGeometry(g geom.Geometry) *Layer {
	return l.Add(Feature{
		ID:       fmt.Sprintf("%s%d", l.Type, len(l.Features)),
		Geometry: g,
	})
}

// Len reports the number of features.
func (l *Layer) Len() int { return len(l.Features) }

// Envelope returns the bounding box of the whole layer.
func (l *Layer) Envelope() geom.Envelope {
	e := geom.EmptyEnvelope()
	for i := range l.Features {
		if l.Features[i].Geometry != nil {
			e = e.Union(l.Features[i].Geometry.Envelope())
		}
	}
	return e
}

// Validate checks all feature geometries; see geom.Validate.
func (l *Layer) Validate() error {
	for i := range l.Features {
		f := &l.Features[i]
		if f.Geometry == nil {
			return fmt.Errorf("dataset: layer %q feature %q has no geometry", l.Type, f.ID)
		}
		if err := geom.Validate(f.Geometry); err != nil {
			return fmt.Errorf("dataset: layer %q feature %q: %w", l.Type, f.ID, err)
		}
	}
	return nil
}

// Dataset is a complete mining input: the reference layer whose features
// become transactions, the relevant layers whose relationships become
// spatial predicates, and the names of the reference attributes to carry
// into the transactions as non-spatial items.
type Dataset struct {
	// Reference is the target feature type (the paper's districts).
	Reference *Layer
	// Relevant are the related feature types (slums, schools, ...).
	Relevant []*Layer
	// NonSpatialAttrs names the Reference attributes included as items.
	NonSpatialAttrs []string
}

// RelevantTypes returns the relevant feature-type names in layer order.
func (d *Dataset) RelevantTypes() []string {
	out := make([]string, len(d.Relevant))
	for i, l := range d.Relevant {
		out[i] = l.Type
	}
	return out
}

// Validate checks every layer and structural consistency (distinct layer
// type names, reference layer present).
func (d *Dataset) Validate() error {
	if d.Reference == nil {
		return fmt.Errorf("dataset: no reference layer")
	}
	if err := d.Reference.Validate(); err != nil {
		return err
	}
	seen := map[string]bool{d.Reference.Type: true}
	for _, l := range d.Relevant {
		if seen[l.Type] {
			return fmt.Errorf("dataset: duplicate layer type %q", l.Type)
		}
		seen[l.Type] = true
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Transaction is one mined row: the reference feature ID plus its item
// strings (non-spatial "attr=value" items and spatial "relation_type"
// predicates). Items are kept sorted and deduplicated.
type Transaction struct {
	RefID string
	Items []string
}

// Table is an ordered set of transactions — the direct input to the
// mining algorithms.
type Table struct {
	Transactions []Transaction
}

// NewTable builds a table from raw rows, normalising each row's items
// (sorted, deduplicated).
func NewTable(rows []Transaction) *Table {
	t := &Table{Transactions: make([]Transaction, len(rows))}
	for i, r := range rows {
		t.Transactions[i] = Transaction{RefID: r.RefID, Items: NormalizeItems(r.Items)}
	}
	return t
}

// NormalizeItems returns a sorted copy of items with duplicates removed.
func NormalizeItems(items []string) []string {
	out := append([]string{}, items...)
	sort.Strings(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[j-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}

// Len reports the number of transactions.
func (t *Table) Len() int { return len(t.Transactions) }

// Items returns the distinct items across all transactions, sorted.
func (t *Table) Items() []string {
	set := map[string]struct{}{}
	for _, tx := range t.Transactions {
		for _, it := range tx.Items {
			set[it] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Strings(out)
	return out
}

// SupportCount returns how many transactions contain every item in the
// given set.
func (t *Table) SupportCount(items []string) int {
	count := 0
	for _, tx := range t.Transactions {
		if containsAll(tx.Items, items) {
			count++
		}
	}
	return count
}

// containsAll reports whether sorted haystack contains every needle.
func containsAll(haystack, needles []string) bool {
	for _, n := range needles {
		i := sort.SearchStrings(haystack, n)
		if i >= len(haystack) || haystack[i] != n {
			return false
		}
	}
	return true
}
