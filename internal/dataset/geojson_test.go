package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestGeoJSONRoundTripAllTypes(t *testing.T) {
	layer := NewLayer("mixed")
	layer.Add(Feature{ID: "pt", Geometry: geom.Pt(1, 2),
		Attrs: map[string]Value{"name": "a point"}})
	layer.Add(Feature{ID: "mp", Geometry: geom.MultiPoint{Points: []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}}})
	layer.Add(Feature{ID: "ls", Geometry: geom.Line(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 0))})
	layer.Add(Feature{ID: "mls", Geometry: geom.MultiLineString{Lines: []geom.LineString{
		geom.Line(geom.Pt(0, 0), geom.Pt(1, 0)),
		geom.Line(geom.Pt(0, 1), geom.Pt(1, 1)),
	}}})
	layer.Add(Feature{ID: "poly", Geometry: geom.Polygon{
		Shell: geom.Ring{Coords: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}},
		Holes: []geom.Ring{{Coords: []geom.Point{geom.Pt(2, 2), geom.Pt(4, 2), geom.Pt(4, 4), geom.Pt(2, 4)}}},
	}})
	layer.Add(Feature{ID: "mpoly", Geometry: geom.MultiPolygon{Polygons: []geom.Polygon{
		geom.Rect(0, 0, 1, 1), geom.Rect(5, 5, 6, 6),
	}}})

	var buf bytes.Buffer
	if err := layer.WriteGeoJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGeoJSON(&buf, "mixed")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != layer.Len() {
		t.Fatalf("feature count %d -> %d", layer.Len(), back.Len())
	}
	for i := range layer.Features {
		orig, got := &layer.Features[i], &back.Features[i]
		if orig.ID != got.ID {
			t.Errorf("feature %d: ID %q -> %q", i, orig.ID, got.ID)
		}
		if orig.Geometry.WKT() != got.Geometry.WKT() {
			t.Errorf("feature %q: geometry changed:\n  %s\n  %s",
				orig.ID, orig.Geometry.WKT(), got.Geometry.WKT())
		}
	}
	// Attributes survive as properties.
	if v, ok := back.Features[0].Attr("name"); !ok || v != "a point" {
		t.Errorf("attrs lost: %v %v", v, ok)
	}
}

func TestReadGeoJSONHandWritten(t *testing.T) {
	src := `{
	  "type": "FeatureCollection",
	  "features": [
	    {"type": "Feature",
	     "geometry": {"type": "Polygon",
	       "coordinates": [[[0,0],[4,0],[4,4],[0,4],[0,0]]]},
	     "properties": {"murderRate": "high"}}
	  ]
	}`
	layer, err := ReadGeoJSON(strings.NewReader(src), "district")
	if err != nil {
		t.Fatal(err)
	}
	if layer.Len() != 1 {
		t.Fatalf("features = %d", layer.Len())
	}
	f := &layer.Features[0]
	if f.ID != "district0" {
		t.Errorf("auto ID = %q", f.ID)
	}
	poly, ok := f.Geometry.(geom.Polygon)
	if !ok {
		t.Fatalf("geometry type %T", f.Geometry)
	}
	if len(poly.Shell.Coords) != 4 {
		t.Errorf("closing coordinate not stripped: %d coords", len(poly.Shell.Coords))
	}
	if v, _ := f.Attr("murderRate"); v != "high" {
		t.Errorf("property = %v", v)
	}
}

func TestReadGeoJSONErrors(t *testing.T) {
	cases := []string{
		`{nope`,
		`{"type": "Feature"}`,
		`{"type": "FeatureCollection", "features": [{"type": "Feature"}]}`,
		`{"type": "FeatureCollection", "features": [
		  {"type": "Feature", "geometry": {"type": "Circle", "coordinates": [0,0]}}]}`,
		`{"type": "FeatureCollection", "features": [
		  {"type": "Feature", "geometry": {"type": "Point", "coordinates": "x"}}]}`,
		`{"type": "FeatureCollection", "features": [
		  {"type": "Feature", "geometry": {"type": "Polygon", "coordinates": []}}]}`,
	}
	for _, src := range cases {
		if _, err := ReadGeoJSON(strings.NewReader(src), "x"); err == nil {
			t.Errorf("ReadGeoJSON(%q) should fail", src)
		}
	}
}

func TestWriteGeoJSONNilGeometry(t *testing.T) {
	layer := NewLayer("bad")
	layer.Add(Feature{ID: "f"})
	var buf bytes.Buffer
	if err := layer.WriteGeoJSON(&buf); err == nil {
		t.Error("nil geometry should fail")
	}
}

func TestGeoJSONSceneLayer(t *testing.T) {
	// A whole Porto Alegre layer survives the trip.
	scene := PortoAlegreScene()
	var buf bytes.Buffer
	if err := scene.Relevant[0].WriteGeoJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGeoJSON(&buf, "slum")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != scene.Relevant[0].Len() {
		t.Errorf("slum count %d -> %d", scene.Relevant[0].Len(), back.Len())
	}
	if back.Envelope() != scene.Relevant[0].Envelope() {
		t.Error("layer envelope changed")
	}
}
