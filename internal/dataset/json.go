package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/geom"
)

// jsonDataset is the on-disk representation of a Dataset: geometries are
// WKT strings inside plain JSON, so files are diffable and editable.
type jsonDataset struct {
	Reference       jsonLayer   `json:"reference"`
	Relevant        []jsonLayer `json:"relevant"`
	NonSpatialAttrs []string    `json:"nonSpatialAttrs,omitempty"`
}

type jsonLayer struct {
	Type     string        `json:"type"`
	Features []jsonFeature `json:"features"`
}

type jsonFeature struct {
	ID    string           `json:"id"`
	WKT   string           `json:"wkt"`
	Attrs map[string]Value `json:"attrs,omitempty"`
}

// WriteJSON serialises the dataset to w as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	jd := jsonDataset{
		Reference:       layerToJSON(d.Reference),
		NonSpatialAttrs: d.NonSpatialAttrs,
	}
	for _, l := range d.Relevant {
		jd.Relevant = append(jd.Relevant, layerToJSON(l))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

// SaveJSON writes the dataset to a file.
func (d *Dataset) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: saving %s: %w", path, err)
	}
	defer f.Close()
	if err := d.WriteJSON(f); err != nil {
		return fmt.Errorf("dataset: saving %s: %w", path, err)
	}
	return f.Close()
}

func layerToJSON(l *Layer) jsonLayer {
	jl := jsonLayer{Type: l.Type}
	for i := range l.Features {
		f := &l.Features[i]
		jf := jsonFeature{ID: f.ID, Attrs: f.Attrs}
		if f.Geometry != nil {
			jf.WKT = f.Geometry.WKT()
		}
		jl.Features = append(jl.Features, jf)
	}
	return jl
}

// ReadJSON parses a dataset from r; see WriteJSON for the format.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("dataset: decoding JSON: %w", err)
	}
	ref, err := layerFromJSON(jd.Reference)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Reference: ref, NonSpatialAttrs: jd.NonSpatialAttrs}
	for _, jl := range jd.Relevant {
		l, err := layerFromJSON(jl)
		if err != nil {
			return nil, err
		}
		d.Relevant = append(d.Relevant, l)
	}
	return d, nil
}

// LoadJSON reads a dataset from a file.
func LoadJSON(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading %s: %w", path, err)
	}
	defer f.Close()
	d, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading %s: %w", path, err)
	}
	return d, nil
}

func layerFromJSON(jl jsonLayer) (*Layer, error) {
	l := NewLayer(jl.Type)
	for _, jf := range jl.Features {
		g, err := geom.ParseWKT(jf.WKT)
		if err != nil {
			return nil, fmt.Errorf("dataset: layer %q feature %q: %w", jl.Type, jf.ID, err)
		}
		l.Add(Feature{ID: jf.ID, Geometry: g, Attrs: jf.Attrs})
	}
	return l, nil
}

// WriteTableCSV writes the transaction table in a simple CSV-ish format:
// one line per transaction, reference ID first, then comma-separated
// items. Readable by ReadTableCSV and by eyeball.
func (t *Table) WriteTableCSV(w io.Writer) error {
	for _, tx := range t.Transactions {
		if _, err := fmt.Fprintf(w, "%s", tx.RefID); err != nil {
			return err
		}
		for _, it := range tx.Items {
			if _, err := fmt.Fprintf(w, ",%s", it); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadTableCSV parses the WriteTableCSV format: one transaction per line,
// "refID,item,item,...". Blank lines and lines starting with '#' are
// skipped; items are normalised (sorted, deduplicated).
func ReadTableCSV(r io.Reader) (*Table, error) {
	var rows []Transaction
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if fields[0] == "" {
			return nil, fmt.Errorf("dataset: line %d: empty reference ID", lineNo)
		}
		items := make([]string, 0, len(fields)-1)
		for _, f := range fields[1:] {
			if f = strings.TrimSpace(f); f != "" {
				items = append(items, f)
			}
		}
		rows = append(rows, Transaction{RefID: fields[0], Items: items})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading table: %w", err)
	}
	return NewTable(rows), nil
}

// LoadTableCSV reads a transaction table from a file.
func LoadTableCSV(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading %s: %w", path, err)
	}
	defer f.Close()
	t, err := ReadTableCSV(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading %s: %w", path, err)
	}
	return t, nil
}
