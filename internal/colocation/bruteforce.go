package colocation

import (
	"context"
	"errors"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// MineBruteForce is the oracle the engine is cross-checked against: it
// enumerates every feature-type set of size >= 2 and every instance
// combination, testing each pair with a raw geom.Distance call — no
// R-tree filter, no prepared geometries, no participation-index
// pruning. Partial combinations that already violate the distance are
// abandoned (exact, since a row instance needs every pair within
// Distance), which keeps the oracle usable on test-sized scenes without
// changing what it finds. Output ordering and participation-index
// arithmetic match the engine exactly, so results are comparable with
// reflect.DeepEqual on Prevalent.
func MineBruteForce(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, errors.New("colocation: nil dataset")
	}
	start := time.Now()
	types := gatherTypes(ds)
	res := &Result{
		Distance: cfg.Distance,
		MinPI:    cfg.MinPI,
		Types:    typeNames(types),
	}
	for _, t := range types {
		res.Instances += len(t.geoms)
	}
	// The neighbor test the whole oracle reduces to: one raw distance.
	near := func(ti, a, tj, b int) bool {
		return geom.Distance(types[ti].geoms[a], types[tj].geoms[b]) <= cfg.Distance
	}

	// Enumerate type subsets in (size, lex) order to match the engine's
	// level-by-level output.
	maxSize := len(types)
	if cfg.MaxSize > 0 && cfg.MaxSize < maxSize {
		maxSize = cfg.MaxSize
	}
	for size := 2; size <= maxSize; size++ {
		subset := make([]int, size)
		var rec func(pos, from int)
		rec = func(pos, from int) {
			if pos == size {
				if p, ok := bruteForcePattern(types, subset, cfg, near); ok {
					res.Prevalent = append(res.Prevalent, p)
				}
				return
			}
			for t := from; t < len(types); t++ {
				subset[pos] = t
				rec(pos+1, t+1)
			}
		}
		rec(0, 0)
	}
	if cfg.TopK > 0 {
		res.Prevalent = selectTopK(res.Prevalent, cfg.TopK)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// MineBruteForceContext runs the oracle under a context deadline.
func MineBruteForceContext(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return MineBruteForce(ds, cfg)
}

// bruteForcePattern enumerates every row instance of one candidate set
// directly and reports the pattern when its participation index clears
// MinPI.
func bruteForcePattern(types []typeSet, subset []int, cfg Config, near func(ti, a, tj, b int) bool) (Pattern, bool) {
	k := len(subset)
	part := make([][]bool, k)
	for i, t := range subset {
		part[i] = make([]bool, len(types[t].geoms))
	}
	rows := 0
	row := make([]int, k)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			rows++
			for i, a := range row {
				part[i][a] = true
			}
			return
		}
		t := subset[pos]
	next:
		for a := range types[t].geoms {
			for prev := 0; prev < pos; prev++ {
				if !near(subset[prev], row[prev], t, a) {
					continue next
				}
			}
			row[pos] = a
			rec(pos + 1)
		}
	}
	rec(0)
	if rows == 0 {
		return Pattern{}, false
	}
	pi := 1.0
	for i, t := range subset {
		cnt := 0
		for _, p := range part[i] {
			if p {
				cnt++
			}
		}
		r := float64(cnt) / float64(len(types[t].geoms))
		if r < pi {
			pi = r
		}
	}
	if pi < cfg.MinPI {
		return Pattern{}, false
	}
	return Pattern{Types: namesOf(types, subset), PI: pi, Rows: rows}, true
}
