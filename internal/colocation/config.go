package colocation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ParseConfig decodes and validates a co-location configuration from
// its JSON wire form. Decoding is strict — unknown fields and trailing
// data are errors — so the CLI, the /v1/colocate handler, and the fuzz
// target all accept exactly the same documents.
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("colocation: decoding config: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return Config{}, fmt.Errorf("colocation: trailing data after config document")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
