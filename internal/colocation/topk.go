package colocation

import "container/heap"

// selectTopK keeps the k best patterns from prevalent — highest PI
// first, ties broken by smaller size, then lexicographically smaller
// type names (two distinct patterns can never tie fully, so selection
// is deterministic) — and returns them in the canonical size-then-name
// order the walk produced. A bounded min-heap of size k holds the
// current survivors with the worst at the root, so selection costs
// O(n log k) and never copies the full table.
func selectTopK(prevalent []Pattern, k int) []Pattern {
	if k <= 0 || len(prevalent) <= k {
		return prevalent
	}
	h := &patternHeap{idx: make([]int, 0, k), pats: prevalent}
	for i := range prevalent {
		if h.Len() < k {
			heap.Push(h, i)
		} else if betterPattern(&prevalent[i], &prevalent[h.idx[0]]) {
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	keep := make([]bool, len(prevalent))
	for _, i := range h.idx {
		keep[i] = true
	}
	out := make([]Pattern, 0, k)
	for i := range prevalent {
		if keep[i] {
			out = append(out, prevalent[i])
		}
	}
	return out
}

// betterPattern ranks a strictly above b: higher PI, then smaller
// size, then lexicographically smaller type names.
func betterPattern(a, b *Pattern) bool {
	if a.PI != b.PI {
		return a.PI > b.PI
	}
	if len(a.Types) != len(b.Types) {
		return len(a.Types) < len(b.Types)
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return a.Types[i] < b.Types[i]
		}
	}
	return false
}

// patternHeap is a min-heap of indices into pats ordered so the worst
// surviving pattern sits at the root.
type patternHeap struct {
	idx  []int
	pats []Pattern
}

func (h *patternHeap) Len() int { return len(h.idx) }
func (h *patternHeap) Less(i, j int) bool {
	return betterPattern(&h.pats[h.idx[j]], &h.pats[h.idx[i]])
}
func (h *patternHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *patternHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *patternHeap) Pop() any           { n := len(h.idx) - 1; v := h.idx[n]; h.idx = h.idx[:n]; return v }
