package colocation_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/colocation"
	"repro/internal/datagen"
)

// TestColocationMatchesBruteForceOnGeneratedScenes is the property test
// mirroring TestEnginesEquivalentOnGeneratedScenes: across generated
// planted scenes × distances × minPI × Parallelism ∈ {1, 4} × both
// engines, the R-tree + participation-index engine must report exactly
// the oracle's prevalent patterns — same sets, same PI floats, same row
// counts, same order.
func TestColocationMatchesBruteForceOnGeneratedScenes(t *testing.T) {
	scenes := []struct {
		name string
		cfg  datagen.ColocationSceneConfig
	}{
		{"default", datagen.DefaultColocationScene(7)},
		{"dense", datagen.ColocationSceneConfig{
			Seed: 11, Types: []string{"p", "q", "r"}, Extent: 20,
			Clusters: 10, ClusterSpread: 0.8, Noise: 5,
		}},
		{"sparse noise-only", datagen.ColocationSceneConfig{
			Seed: 3, Types: []string{"x", "y", "z", "w"}, Extent: 60,
			Clusters: 0, ClusterSpread: 0.5, Noise: 12,
		}},
		{"tight overlapping plants", datagen.ColocationSceneConfig{
			Seed: 23, Types: []string{"a", "b", "c", "d"}, Extent: 40,
			Clusters: 8, ClusterSpread: 0.3,
			Planted: [][]string{{"a", "b", "c"}, {"b", "c", "d"}, {"a", "d"}},
			Noise:   4,
		}},
	}
	for _, sc := range scenes {
		ds, err := datagen.GenerateColocationScene(sc.cfg)
		if err != nil {
			t.Fatalf("%s: generate: %v", sc.name, err)
		}
		for _, dist := range []float64{0.5, 2, 8} {
			for _, minPI := range []float64{0.2, 0.5} {
				cfg := colocation.Config{Distance: dist, MinPI: minPI}
				want, err := colocation.MineBruteForce(ds, cfg)
				if err != nil {
					t.Fatalf("%s: oracle: %v", sc.name, err)
				}
				for _, par := range []int{1, 4} {
					for _, eng := range []colocation.Engine{colocation.EngineClique, colocation.EngineJoinless} {
						cfg.Parallelism = par
						cfg.Engine = eng
						t.Run(fmt.Sprintf("%s/dist=%v/minpi=%v/par=%d/%s", sc.name, dist, minPI, par, eng), func(t *testing.T) {
							got, err := colocation.Mine(ds, cfg)
							if err != nil {
								t.Fatalf("Mine: %v", err)
							}
							if !reflect.DeepEqual(got.Prevalent, want.Prevalent) {
								t.Fatalf("engine != oracle:\n got %+v\nwant %+v", got.Prevalent, want.Prevalent)
							}
							if got.Instances != want.Instances || !reflect.DeepEqual(got.Types, want.Types) {
								t.Fatalf("world mismatch: got %d %v, want %d %v",
									got.Instances, got.Types, want.Instances, want.Types)
							}
						})
					}
				}
			}
		}
	}
}

// TestGeneratedSceneDeterministic: one seed, one scene.
func TestGeneratedSceneDeterministic(t *testing.T) {
	a, err := datagen.GenerateColocationScene(datagen.DefaultColocationScene(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := datagen.GenerateColocationScene(datagen.DefaultColocationScene(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scenes")
	}
}

// TestPlantedPatternsPrevalent: at a distance covering the cluster
// spread and a PI below the planting rate, every planted set (and by
// anti-monotonicity each of its subsets) must surface.
func TestPlantedPatternsPrevalent(t *testing.T) {
	cfg := datagen.ColocationSceneConfig{
		Seed: 5, Types: []string{"atm", "busStop", "cafe"}, Extent: 200,
		Clusters: 10, ClusterSpread: 0.5,
		Planted: [][]string{{"atm", "busStop", "cafe"}},
		Noise:   3,
	}
	ds, err := datagen.GenerateColocationScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 of 13 instances of each type sit in planted cliques.
	res, err := colocation.Mine(ds, colocation.Config{Distance: 1.0, MinPI: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Prevalent {
		if reflect.DeepEqual(p.Types, []string{"atm", "busStop", "cafe"}) {
			found = true
			if p.PI < 0.6 {
				t.Fatalf("planted pattern PI = %v", p.PI)
			}
		}
	}
	if !found {
		t.Fatalf("planted {atm,busStop,cafe} not prevalent; got %+v", res.Prevalent)
	}
}
