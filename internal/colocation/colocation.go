// Package colocation mines spatial co-location patterns: sets of
// feature types whose instances are frequently located near each other.
// Unlike the reference-feature transaction model of the source paper
// (one transaction per reference feature), co-location treats every
// feature type symmetrically: a row instance of a candidate set
// {f1, ..., fk} is a clique of instances — one per type — in which
// every pair lies within the neighborhood distance. The prevalence
// measure is the participation index
//
//	PI(c) = min over fi in c of  |distinct fi instances in any row of c| / |fi instances|
//
// which is anti-monotone (adding a type can only shrink every
// participation ratio), so a level-wise Apriori-style walk prunes
// soundly on it.
//
// The engine materializes the neighbor relation once per type pair with
// an STR-packed R-tree envelope filter refined by exact prepared-
// geometry distances, then walks candidate type sets level by level,
// extending each prevalent set's row-instance table by sorted-list
// intersection of the precomputed adjacency. Candidate expansion shards
// across Config.Parallelism workers the same way the Eclat walk does,
// with byte-identical output at any worker count.
package colocation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/obs"
)

// Config parameterises a co-location mining run. Its JSON form is the
// wire configuration of POST /v1/colocate.
type Config struct {
	// Distance is the neighborhood threshold: two instances are
	// neighbors when their exact geometric distance is <= Distance.
	Distance float64 `json:"distance"`
	// MinPI is the minimum participation index in (0, 1]; only feature
	// type sets with PI >= MinPI are reported.
	MinPI float64 `json:"minPI"`
	// MaxSize caps the largest pattern size mined (0 = unlimited).
	MaxSize int `json:"maxSize,omitempty"`
	// Parallelism shards candidate expansion: 1 = sequential,
	// 0 = GOMAXPROCS. Output is byte-identical at any worker count.
	Parallelism int `json:"parallelism,omitempty"`
}

// Validate checks the configuration bounds.
func (c Config) Validate() error {
	if math.IsNaN(c.Distance) || math.IsInf(c.Distance, 0) || c.Distance < 0 {
		return fmt.Errorf("colocation: distance must be finite and >= 0 (got %v)", c.Distance)
	}
	if math.IsNaN(c.MinPI) || c.MinPI <= 0 || c.MinPI > 1 {
		return fmt.Errorf("colocation: minPI must be in (0, 1] (got %v)", c.MinPI)
	}
	if c.MaxSize < 0 {
		return fmt.Errorf("colocation: maxSize must be >= 0 (got %d)", c.MaxSize)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("colocation: parallelism must be >= 0 (got %d)", c.Parallelism)
	}
	return nil
}

// Pattern is one prevalent co-location: a set of feature types, its
// participation index, and how many row instances (neighbor cliques)
// support it.
type Pattern struct {
	Types []string `json:"types"`
	// PI is the participation index: the minimum over the pattern's
	// types of the fraction of that type's instances participating in
	// at least one row instance.
	PI float64 `json:"participationIndex"`
	// Rows counts the pattern's row instances (cliques).
	Rows int `json:"rowInstances"`
}

// Result is a co-location mining run's output.
type Result struct {
	// Distance and MinPI echo the mined configuration.
	Distance float64
	MinPI    float64
	// Types are the feature types considered (those with at least one
	// instance), sorted.
	Types []string
	// Instances is the total instance count across Types.
	Instances int
	// CandidatePairs counts envelope-stage neighbor candidates from the
	// R-tree filter; RefinedPairs counts pairs surviving the exact
	// distance refinement (the materialized neighbor relation).
	CandidatePairs int64
	RefinedPairs   int64
	// Candidates counts candidate type sets (size >= 2) whose row
	// instances were materialized during the walk.
	Candidates int
	// Prevalent holds the patterns with PI >= MinPI, sorted by size
	// then lexicographically by type names.
	Prevalent []Pattern
	// Duration is the wall time of the whole run.
	Duration time.Duration
}

// Mine runs co-location mining over the dataset's layers.
func Mine(ds *dataset.Dataset, cfg Config) (*Result, error) {
	return MineContext(context.Background(), ds, cfg)
}

// MineContext is Mine with cancellation and tracing via the context.
func MineContext(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, errors.New("colocation: nil dataset")
	}
	tr := obs.FromContext(ctx)
	start := time.Now()

	types := gatherTypes(ds)
	res := &Result{
		Distance: cfg.Distance,
		MinPI:    cfg.MinPI,
		Types:    typeNames(types),
	}
	for _, t := range types {
		res.Instances += len(t.geoms)
	}

	sp := tr.Stage("colocate.neighbors")
	adj, cand, refined := materializeNeighbors(types, cfg.Distance)
	sp.End()
	tr.Add("coloc.pairs.candidates", cand)
	tr.Add("coloc.pairs.refined", refined)
	res.CandidatePairs = cand
	res.RefinedPairs = refined

	sp = tr.Stage("colocate.walk")
	err := prevalenceWalk(ctx, tr, types, adj, cfg, res)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

// typeSet is one feature type's instances. Instances keep the layer's
// feature order; the index into geoms is the instance identity used by
// the adjacency lists and row tables.
type typeSet struct {
	name  string
	geoms []geom.Geometry
}

// gatherTypes collects the dataset's layers — reference and relevant
// alike, since co-location has no reference/relevant asymmetry — into
// per-type instance sets, merging layers that share a type name,
// skipping nil geometries, and dropping types with no instances.
// Types come back sorted by name, the canonical order every candidate
// set and pattern uses.
func gatherTypes(ds *dataset.Dataset) []typeSet {
	layers := make([]*dataset.Layer, 0, 1+len(ds.Relevant))
	if ds.Reference != nil {
		layers = append(layers, ds.Reference)
	}
	layers = append(layers, ds.Relevant...)

	byName := map[string]int{}
	var types []typeSet
	for _, l := range layers {
		if l == nil {
			continue
		}
		i, ok := byName[l.Type]
		if !ok {
			i = len(types)
			byName[l.Type] = i
			types = append(types, typeSet{name: l.Type})
		}
		for _, f := range l.Features {
			if f.Geometry == nil {
				continue
			}
			types[i].geoms = append(types[i].geoms, f.Geometry)
		}
	}
	kept := types[:0]
	for _, t := range types {
		if len(t.geoms) > 0 {
			kept = append(kept, t)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].name < kept[j].name })
	return kept
}

func typeNames(types []typeSet) []string {
	names := make([]string, len(types))
	for i, t := range types {
		names[i] = t.name
	}
	return names
}

// adjacency holds the materialized neighbor relation: adj[i][j][a] is
// the sorted list of type-j instance indices within Distance of type-i
// instance a (i != j; same-type neighborhoods are never needed because
// a candidate set holds distinct types).
type adjacency [][][][]int32

// materializeNeighbors builds the neighbor-pair tables for every
// unordered type pair: an STR R-tree over each type's envelopes serves
// SearchDistance as the filter stage, and prepared-geometry DistanceTo
// refines each candidate exactly. Returns the adjacency plus the
// filter/refine pair counts.
func materializeNeighbors(types []typeSet, dist float64) (adjacency, int64, int64) {
	n := len(types)
	prepared := make([][]*geom.Prepared, n)
	trees := make([]*index.RTree, n)
	for i, t := range types {
		prepared[i] = make([]*geom.Prepared, len(t.geoms))
		items := make([]index.Item, len(t.geoms))
		for a, g := range t.geoms {
			pg := geom.Prepare(g)
			prepared[i][a] = pg
			items[a] = index.Item{Env: pg.Envelope(), ID: a}
		}
		trees[i] = index.NewRTreeBulk(items)
	}

	adj := make(adjacency, n)
	for i := range adj {
		adj[i] = make([][][]int32, n)
		for j := range adj[i] {
			if i != j {
				adj[i][j] = make([][]int32, len(types[i].geoms))
			}
		}
	}
	var candidates, refined int64
	var buf []int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for a := range types[i].geoms {
				pa := prepared[i][a]
				buf = trees[j].SearchDistance(pa.Envelope(), dist, buf[:0])
				candidates += int64(len(buf))
				for _, b := range buf {
					if pa.DistanceTo(prepared[j][b]) > dist {
						continue
					}
					refined++
					adj[i][j][a] = append(adj[i][j][a], int32(b))
					adj[j][i][b] = append(adj[j][i][b], int32(a))
				}
			}
			// SearchDistance returns tree order; the walk intersects
			// these lists, which must be sorted ascending.
			for a := range adj[i][j] {
				sortInt32(adj[i][j][a])
			}
			for b := range adj[j][i] {
				sortInt32(adj[j][i][b])
			}
		}
	}
	return adj, candidates, refined
}

func sortInt32(s []int32) {
	sort.Slice(s, func(x, y int) bool { return s[x] < s[y] })
}

// candidateSet is one candidate type set during the walk, with the row
// instances materialized for it (kept only while the next level still
// needs them for extension).
type candidateSet struct {
	types []int     // indices into the sorted type list, ascending
	rows  [][]int32 // one instance index per position
	pi    float64
}

// colocWorkers resolves the Parallelism knob exactly like the Eclat
// pool: 0 means GOMAXPROCS, never more workers than candidates, at
// least one.
func colocWorkers(parallelism, candidates int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > candidates {
		w = candidates
	}
	if w < 1 {
		w = 1
	}
	return w
}

// prevalenceWalk is the level-wise participation-index walk. Level 1 is
// every type (each trivially prevalent, PI = 1); each next level joins
// prevalent sets sharing a (k-2)-prefix, prunes candidates with a
// non-prevalent subset (sound by PI anti-monotonicity), and expands
// each survivor's row table from its prefix parent by intersecting
// adjacency lists. Candidates shard across workers via an atomic
// cursor; results land in per-candidate slots and are merged in
// candidate order, so output is byte-identical at any worker count.
func prevalenceWalk(ctx context.Context, tr *obs.Trace, types []typeSet, adj adjacency, cfg Config, res *Result) error {
	if len(types) < 2 {
		return ctx.Err()
	}
	// Level 1: every type, with single-instance rows.
	level := make([]candidateSet, len(types))
	for i, t := range types {
		rows := make([][]int32, len(t.geoms))
		for a := range t.geoms {
			rows[a] = []int32{int32(a)}
		}
		level[i] = candidateSet{types: []int{i}, rows: rows, pi: 1}
	}

	for k := 2; cfg.MaxSize == 0 || k <= cfg.MaxSize; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		candidates := aprioriGenTypes(level)
		if len(candidates) == 0 {
			break
		}
		res.Candidates += len(candidates)
		tr.Add("coloc.candidates", int64(len(candidates)))

		// The prefix parents the expansion extends from, keyed by the
		// candidate's first k-1 types.
		parents := make(map[string]*candidateSet, len(level))
		for i := range level {
			parents[typeKey(level[i].types)] = &level[i]
		}

		expanded := make([]candidateSet, len(candidates))
		workers := colocWorkers(cfg.Parallelism, len(candidates))
		if k == 2 {
			tr.Add("coloc.workers", int64(workers))
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var done int64
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(candidates) || ctx.Err() != nil {
						break
					}
					expanded[i] = expandCandidate(candidates[i], parents, types, adj)
					done++
				}
				tr.Add(obs.WorkerCounter("coloc", w, "candidates"), done)
			}(w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}

		// Merge in candidate order: deterministic regardless of which
		// worker expanded which slot.
		next := expanded[:0]
		for _, c := range expanded {
			if len(c.rows) > 0 && c.pi >= cfg.MinPI {
				next = append(next, c)
			}
		}
		for _, c := range next {
			res.Prevalent = append(res.Prevalent, Pattern{
				Types: namesOf(types, c.types),
				PI:    c.pi,
				Rows:  len(c.rows),
			})
		}
		tr.Add("coloc.prevalent", int64(len(next)))
		if len(next) == 0 {
			break
		}
		level = next
	}
	return nil
}

// aprioriGenTypes joins the prevalent sets of one level into the next
// level's candidates: pairs sharing their first k-1 elements produce a
// (k+1)-set, kept only when every k-subset is prevalent (PI is
// anti-monotone, so a missing subset proves the candidate cannot
// reach any MinPI its subsets missed). The input is lexicographically
// sorted and the blockwise join preserves that order.
func aprioriGenTypes(level []candidateSet) [][]int {
	prevalent := make(map[string]bool, len(level))
	for _, c := range level {
		prevalent[typeKey(c.types)] = true
	}
	k := len(level[0].types)
	var out [][]int
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if !samePrefix(level[i].types, level[j].types, k-1) {
				break
			}
			cand := make([]int, k+1)
			copy(cand, level[i].types)
			cand[k] = level[j].types[k-1]
			if allSubsetsPrevalent(cand, prevalent) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []int, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsPrevalent checks every (k-1)-subset of cand. The two
// subsets dropping the last elements are the join parents and known
// prevalent, but checking them costs little and keeps this obviously
// exhaustive.
func allSubsetsPrevalent(cand []int, prevalent map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, t := range cand {
			if i != drop {
				sub = append(sub, t)
			}
		}
		if !prevalent[typeKey(sub)] {
			return false
		}
	}
	return true
}

// expandCandidate materializes a candidate's row instances by extending
// its (k-1)-prefix parent's rows: an instance y of the new last type
// joins a row when y neighbors every row member, i.e. y lies in the
// intersection of the members' adjacency lists toward the new type.
// Because parent rows are cliques, every extended row is a clique.
func expandCandidate(cand []int, parents map[string]*candidateSet, types []typeSet, adj adjacency) candidateSet {
	k := len(cand)
	parent := parents[typeKey(cand[:k-1])]
	newType := cand[k-1]

	part := make([][]bool, k)
	for i, t := range cand {
		part[i] = make([]bool, len(types[t].geoms))
	}
	var rows [][]int32
	var buf []int32
	for _, row := range parent.rows {
		ext := adj[cand[0]][newType][row[0]]
		for m := 1; m < k-1 && len(ext) > 0; m++ {
			ext = intersectSorted(ext, adj[cand[m]][newType][row[m]], buf[:0])
			buf = ext // reuse the scratch for the next intersection
		}
		if len(ext) == 0 {
			buf = buf[:0]
			continue
		}
		for _, y := range ext {
			nr := make([]int32, k)
			copy(nr, row)
			nr[k-1] = y
			rows = append(rows, nr)
			part[k-1][y] = true
		}
		for m, x := range row {
			part[m][x] = true
		}
		buf = buf[:0]
	}
	if len(rows) == 0 {
		return candidateSet{types: cand}
	}
	pi := 1.0
	for i, t := range cand {
		cnt := 0
		for _, p := range part[i] {
			if p {
				cnt++
			}
		}
		r := float64(cnt) / float64(len(types[t].geoms))
		if r < pi {
			pi = r
		}
	}
	return candidateSet{types: cand, rows: rows, pi: pi}
}

// intersectSorted writes the intersection of two ascending lists into
// dst and returns it.
func intersectSorted(a, b []int32, dst []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

func namesOf(types []typeSet, idx []int) []string {
	names := make([]string, len(idx))
	for i, t := range idx {
		names[i] = types[t].name
	}
	return names
}

// typeKey is the canonical map key of a type-index set.
func typeKey(ts []int) string {
	b := make([]byte, 0, len(ts)*3)
	for _, t := range ts {
		b = append(b, byte(t), byte(t>>8), byte(t>>16))
	}
	return string(b)
}
