// Package colocation mines spatial co-location patterns: sets of
// feature types whose instances are frequently located near each other.
// Unlike the reference-feature transaction model of the source paper
// (one transaction per reference feature), co-location treats every
// feature type symmetrically: a row instance of a candidate set
// {f1, ..., fk} is a clique of instances — one per type — in which
// every pair lies within the neighborhood distance. The prevalence
// measure is the participation index
//
//	PI(c) = min over fi in c of  |distinct fi instances in any row of c| / |fi instances|
//
// which is anti-monotone (adding a type can only shrink every
// participation ratio), so a level-wise Apriori-style walk prunes
// soundly on it.
//
// The engine materializes the neighbor relation once per ordered type
// pair into a flat CSR layout (one offsets array plus one ids array),
// sharding the STR R-tree filter → prepared-geometry refine loop across
// a Config.Parallelism worker pool with a deterministic merge, then
// walks candidate type sets level by level, extending each prevalent
// set's row-instance table by sorted-list intersection of the CSR rows.
// Two engines share that walk: the clique engine materializes every
// candidate's row table, while the joinless engine (the default) first
// screens each candidate with the star participation index — an
// anti-monotone upper bound on the clique PI computed from per-instance
// star neighborhoods — and materializes rows only for candidates whose
// upper bound clears MinPI. Both engines produce identical output at
// any worker count.
package colocation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/obs"
)

// Engine selects the candidate-evaluation strategy. Both engines return
// byte-identical results; they differ only in how much work candidate
// evaluation does before a candidate is ruled out.
type Engine string

// Engines.
const (
	// EngineJoinless (the default) computes per-instance star
	// neighborhoods from the CSR graph and prunes each candidate whose
	// star participation index — an anti-monotone upper bound on the
	// clique PI — falls below MinPI, materializing row tables only for
	// the survivors.
	EngineJoinless Engine = "joinless"
	// EngineClique materializes the full clique row-instance table for
	// every generated candidate, as the original level-wise engine did.
	EngineClique Engine = "clique"
)

// Config parameterises a co-location mining run. Its JSON form is the
// wire configuration of POST /v1/colocate.
type Config struct {
	// Distance is the neighborhood threshold: two instances are
	// neighbors when their exact geometric distance is <= Distance.
	Distance float64 `json:"distance"`
	// MinPI is the minimum participation index in (0, 1]; only feature
	// type sets with PI >= MinPI are reported.
	MinPI float64 `json:"minPI"`
	// MaxSize caps the largest pattern size mined (0 = unlimited).
	MaxSize int `json:"maxSize,omitempty"`
	// Parallelism shards the neighbor-graph materialization and the
	// candidate expansion: 1 = sequential, 0 = GOMAXPROCS. Output is
	// byte-identical at any worker count.
	Parallelism int `json:"parallelism,omitempty"`
	// Engine picks the candidate-evaluation strategy: "joinless" (the
	// default when empty) screens candidates with the star
	// participation upper bound before materializing rows; "clique"
	// materializes every candidate. Results are identical either way,
	// so the server's result cache deliberately ignores this knob.
	Engine Engine `json:"engine,omitempty"`
	// TopK, when positive, keeps only the k highest-PI prevalent
	// patterns (ties broken by smaller size, then lexicographic type
	// names; equal patterns cannot tie). 0 reports every prevalent
	// pattern.
	TopK int `json:"topK,omitempty"`
}

// Validate checks the configuration bounds.
func (c Config) Validate() error {
	if math.IsNaN(c.Distance) || math.IsInf(c.Distance, 0) || c.Distance < 0 {
		return fmt.Errorf("colocation: distance must be finite and >= 0 (got %v)", c.Distance)
	}
	if math.IsNaN(c.MinPI) || c.MinPI <= 0 || c.MinPI > 1 {
		return fmt.Errorf("colocation: minPI must be in (0, 1] (got %v)", c.MinPI)
	}
	if c.MaxSize < 0 {
		return fmt.Errorf("colocation: maxSize must be >= 0 (got %d)", c.MaxSize)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("colocation: parallelism must be >= 0 (got %d)", c.Parallelism)
	}
	switch c.Engine {
	case "", EngineJoinless, EngineClique:
	default:
		return fmt.Errorf("colocation: unknown engine %q (want %q or %q)", c.Engine, EngineClique, EngineJoinless)
	}
	if c.TopK < 0 {
		return fmt.Errorf("colocation: topK must be >= 0 (got %d)", c.TopK)
	}
	return nil
}

// engine resolves the Engine knob's default.
func (c Config) engine() Engine {
	if c.Engine == "" {
		return EngineJoinless
	}
	return c.Engine
}

// Pattern is one prevalent co-location: a set of feature types, its
// participation index, and how many row instances (neighbor cliques)
// support it.
type Pattern struct {
	Types []string `json:"types"`
	// PI is the participation index: the minimum over the pattern's
	// types of the fraction of that type's instances participating in
	// at least one row instance.
	PI float64 `json:"participationIndex"`
	// Rows counts the pattern's row instances (cliques).
	Rows int `json:"rowInstances"`
}

// Result is a co-location mining run's output.
type Result struct {
	// Distance and MinPI echo the mined configuration.
	Distance float64
	MinPI    float64
	// Types are the feature types considered (those with at least one
	// instance), sorted.
	Types []string
	// Instances is the total instance count across Types.
	Instances int
	// CandidatePairs counts envelope-stage neighbor candidates from the
	// R-tree filter; RefinedPairs counts pairs surviving the exact
	// distance refinement (the materialized neighbor relation).
	CandidatePairs int64
	RefinedPairs   int64
	// Candidates counts candidate type sets (size >= 2) generated
	// during the walk. Identical for both engines: the joinless engine
	// generates the same candidates and only skips materializing rows
	// for those its upper bound rules out.
	Candidates int
	// StarPruned counts candidates the joinless engine discarded on the
	// star-participation upper bound without materializing any rows
	// (always 0 for the clique engine; diagnostic, not part of the wire
	// result).
	StarPruned int
	// Prevalent holds the patterns with PI >= MinPI, sorted by size
	// then lexicographically by type names. With TopK set, only the k
	// highest-PI patterns remain (still in size-then-name order).
	Prevalent []Pattern
	// Duration is the wall time of the whole run.
	Duration time.Duration
}

// Mine runs co-location mining over the dataset's layers.
func Mine(ds *dataset.Dataset, cfg Config) (*Result, error) {
	return MineContext(context.Background(), ds, cfg)
}

// MineContext is Mine with cancellation and tracing via the context.
func MineContext(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, errors.New("colocation: nil dataset")
	}
	tr := obs.FromContext(ctx)
	start := time.Now()

	types := gatherTypes(ds)
	res := &Result{
		Distance: cfg.Distance,
		MinPI:    cfg.MinPI,
		Types:    typeNames(types),
	}
	for _, t := range types {
		res.Instances += len(t.geoms)
	}

	sp := tr.Stage("colocate.neighbors")
	graph, cand, refined, workers := materializeNeighbors(types, cfg.Distance, cfg.Parallelism)
	sp.End()
	tr.Add("coloc.pairs.candidates", cand)
	tr.Add("coloc.pairs.refined", refined)
	tr.Add("coloc.neighbors.workers", int64(workers))
	res.CandidatePairs = cand
	res.RefinedPairs = refined

	sp = tr.Stage("colocate.walk")
	err := prevalenceWalk(ctx, tr, types, graph, cfg, res)
	sp.End()
	if err != nil {
		return nil, err
	}
	if cfg.TopK > 0 {
		res.Prevalent = selectTopK(res.Prevalent, cfg.TopK)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// typeSet is one feature type's instances. Instances keep the layer's
// feature order; the index into geoms is the instance identity used by
// the CSR rows and row tables.
type typeSet struct {
	name  string
	geoms []geom.Geometry
}

// gatherTypes collects the dataset's layers — reference and relevant
// alike, since co-location has no reference/relevant asymmetry — into
// per-type instance sets, merging layers that share a type name,
// skipping nil geometries, and dropping types with no instances.
// Types come back sorted by name, the canonical order every candidate
// set and pattern uses.
func gatherTypes(ds *dataset.Dataset) []typeSet {
	layers := make([]*dataset.Layer, 0, 1+len(ds.Relevant))
	if ds.Reference != nil {
		layers = append(layers, ds.Reference)
	}
	layers = append(layers, ds.Relevant...)

	byName := map[string]int{}
	var types []typeSet
	for _, l := range layers {
		if l == nil {
			continue
		}
		i, ok := byName[l.Type]
		if !ok {
			i = len(types)
			byName[l.Type] = i
			types = append(types, typeSet{name: l.Type})
		}
		for _, f := range l.Features {
			if f.Geometry == nil {
				continue
			}
			types[i].geoms = append(types[i].geoms, f.Geometry)
		}
	}
	kept := types[:0]
	for _, t := range types {
		if len(t.geoms) > 0 {
			kept = append(kept, t)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].name < kept[j].name })
	return kept
}

func typeNames(types []typeSet) []string {
	names := make([]string, len(types))
	for i, t := range types {
		names[i] = t.name
	}
	return names
}

// csrPair holds one ordered type pair's neighbor lists in CSR form: the
// neighbors of type-i instance a among type-j instances are
// ids[offsets[a] : offsets[a+1]], sorted ascending. Two flat arrays per
// pair replace the per-instance slice headers (and their per-element
// append growth) of a nested layout.
type csrPair struct {
	offsets []int32
	ids     []int32
}

// row returns instance a's sorted neighbor list.
func (p *csrPair) row(a int32) []int32 { return p.ids[p.offsets[a]:p.offsets[a+1]] }

// degree returns instance a's neighbor count — the size of its star
// neighborhood toward the pair's second type.
func (p *csrPair) degree(a int32) int32 { return p.offsets[a+1] - p.offsets[a] }

// neighborGraph is the materialized neighbor relation: one csrPair per
// ordered type pair (i != j; same-type neighborhoods are never needed
// because a candidate set holds distinct types).
type neighborGraph struct {
	n     int
	pairs []csrPair
}

// at returns the CSR block of the ordered pair (i, j).
func (g *neighborGraph) at(i, j int) *csrPair { return &g.pairs[i*g.n+j] }

// neighborChunk is the instance-range granularity of one parallel
// materialization work unit: coarse enough to amortize scheduling,
// fine enough to balance skewed type sizes.
const neighborChunk = 64

// neighborUnit is one work unit of the parallel filter→refine loop: a
// contiguous instance range of the first type of one unordered pair.
type neighborUnit struct {
	pair     int // index into the unordered pair list
	aLo, aHi int
}

// neighborUnitResult is a unit's output: per-instance neighbor counts
// and the concatenated (per-instance sorted) neighbor ids, plus the
// filter/refine tallies. Units write only their own slot, so the merge
// is deterministic regardless of which worker ran which unit.
type neighborUnitResult struct {
	counts              []int32
	ids                 []int32
	candidates, refined int64
}

// materializeNeighbors builds the CSR neighbor graph for every ordered
// type pair: an STR R-tree over each type's envelopes serves
// SearchDistance as the filter stage, and prepared-geometry DistanceTo
// refines each candidate exactly. Geometry preparation, tree builds,
// and the filter→refine loop all shard across a parallelism-sized
// worker pool; the merge walks work units in their deterministic order,
// so the graph is identical at any worker count. Returns the graph, the
// filter/refine pair counts, and the worker count used.
func materializeNeighbors(types []typeSet, dist float64, parallelism int) (*neighborGraph, int64, int64, int) {
	n := len(types)
	graph := &neighborGraph{n: n, pairs: make([]csrPair, n*n)}
	if n < 2 {
		return graph, 0, 0, 0
	}

	// Phase 1: prepared geometries + one R-tree per type, type-sharded.
	prepared := make([][]*geom.Prepared, n)
	trees := make([]*index.RTree, n)
	prepWorkers := colocWorkers(parallelism, n)
	var prepCursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < prepWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(prepCursor.Add(1)) - 1
				if i >= n {
					return
				}
				t := types[i]
				pg := make([]*geom.Prepared, len(t.geoms))
				items := make([]index.Item, len(t.geoms))
				for a, g := range t.geoms {
					p := geom.Prepare(g)
					pg[a] = p
					items[a] = index.Item{Env: p.Envelope(), ID: a}
				}
				prepared[i] = pg
				trees[i] = index.NewRTreeBulk(items)
			}
		}()
	}
	wg.Wait()

	// Phase 2: the filter→refine loop over unordered pairs, chunked by
	// first-type instance ranges into units claimed off an atomic
	// cursor. Each unit's output lands in its own slot.
	type orderedPair struct{ i, j int }
	var pairList []orderedPair
	var units []neighborUnit
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := len(pairList)
			pairList = append(pairList, orderedPair{i, j})
			for lo := 0; lo < len(types[i].geoms); lo += neighborChunk {
				hi := min(lo+neighborChunk, len(types[i].geoms))
				units = append(units, neighborUnit{pair: p, aLo: lo, aHi: hi})
			}
		}
	}
	results := make([]neighborUnitResult, len(units))
	workers := colocWorkers(parallelism, len(units))
	var cursor atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int
			for {
				u := int(cursor.Add(1)) - 1
				if u >= len(units) {
					return
				}
				unit := units[u]
				i, j := pairList[unit.pair].i, pairList[unit.pair].j
				out := &results[u]
				out.counts = make([]int32, unit.aHi-unit.aLo)
				for a := unit.aLo; a < unit.aHi; a++ {
					pa := prepared[i][a]
					buf = trees[j].SearchDistance(pa.Envelope(), dist, buf[:0])
					out.candidates += int64(len(buf))
					start := len(out.ids)
					for _, b := range buf {
						if pa.DistanceTo(prepared[j][b]) > dist {
							continue
						}
						out.ids = append(out.ids, int32(b))
					}
					// SearchDistance returns tree order; the walk
					// intersects these lists, which must be sorted
					// ascending.
					slices.Sort(out.ids[start:])
					out.counts[a-unit.aLo] = int32(len(out.ids) - start)
				}
				out.refined += int64(len(out.ids))
			}
		}()
	}
	wg.Wait()

	// Phase 3: deterministic merge. Units are ordered by (pair,
	// ascending instance range), so concatenating per pair yields the
	// forward CSR directly; the reverse direction is a counting
	// transpose (rows stay sorted because the fill scans instances in
	// ascending order).
	var candidates, refined int64
	for _, r := range results {
		candidates += r.candidates
		refined += r.refined
	}
	u := 0
	for p, op := range pairList {
		i, j := op.i, op.j
		ni, nj := len(types[i].geoms), len(types[j].geoms)
		offsets := make([]int32, ni+1)
		total := 0
		for v := u; v < len(units) && units[v].pair == p; v++ {
			for k, c := range results[v].counts {
				offsets[units[v].aLo+k+1] = c
			}
			total += len(results[v].ids)
		}
		for a := 0; a < ni; a++ {
			offsets[a+1] += offsets[a]
		}
		ids := make([]int32, 0, total)
		for ; u < len(units) && units[u].pair == p; u++ {
			ids = append(ids, results[u].ids...)
			results[u] = neighborUnitResult{} // free the unit's scratch
		}
		fwd := csrPair{offsets: offsets, ids: ids}
		*graph.at(i, j) = fwd

		roffsets := make([]int32, nj+1)
		for _, b := range ids {
			roffsets[b+1]++
		}
		for b := 0; b < nj; b++ {
			roffsets[b+1] += roffsets[b]
		}
		rids := make([]int32, len(ids))
		fill := make([]int32, nj)
		for a := 0; a < ni; a++ {
			for _, b := range fwd.row(int32(a)) {
				rids[roffsets[b]+fill[b]] = int32(a)
				fill[b]++
			}
		}
		*graph.at(j, i) = csrPair{offsets: roffsets, ids: rids}
	}
	return graph, candidates, refined, workers
}

// candidateSet is one candidate type set during the walk, with the row
// instances materialized for it. Rows are stored flat (row-major,
// stride len(types)) so a table of any size costs one allocation; rows
// are kept only while the next level still needs them for extension.
type candidateSet struct {
	types []int   // indices into the sorted type list, ascending
	rows  []int32 // flat row instances, stride len(types)
	nrows int
	pi    float64
}

// colocWorkers resolves the Parallelism knob exactly like the Eclat
// pool: 0 means GOMAXPROCS, never more workers than work items, at
// least one.
func colocWorkers(parallelism, items int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// expander is one walk worker's pooled scratch: the intersection buffer
// and the per-position participation flags are reused across every
// candidate the worker expands, so steady-state expansion allocates
// only each candidate's flat row table.
type expander struct {
	buf  []int32
	part [][]bool
}

// parts returns participation flag slices sized for cand, reusing (and
// clearing) the pooled backing arrays.
func (e *expander) parts(cand []int, types []typeSet) [][]bool {
	for len(e.part) < len(cand) {
		e.part = append(e.part, nil)
	}
	for i, t := range cand {
		need := len(types[t].geoms)
		if cap(e.part[i]) < need {
			e.part[i] = make([]bool, need)
		} else {
			e.part[i] = e.part[i][:need]
			clear(e.part[i])
		}
	}
	return e.part[:len(cand)]
}

// prevalenceWalk is the level-wise participation-index walk. Level 1 is
// every type (each trivially prevalent, PI = 1); each next level joins
// prevalent sets sharing a (k-2)-prefix, prunes candidates with a
// non-prevalent subset (sound by PI anti-monotonicity), and evaluates
// each survivor — the joinless engine first via the star participation
// upper bound, materializing rows only when the bound clears MinPI; the
// clique engine by materializing every candidate. Candidates shard
// across workers via an atomic cursor; results land in per-candidate
// slots and are merged in candidate order, so output is byte-identical
// at any worker count and for either engine.
func prevalenceWalk(ctx context.Context, tr *obs.Trace, types []typeSet, g *neighborGraph, cfg Config, res *Result) error {
	if len(types) < 2 {
		return ctx.Err()
	}
	joinless := cfg.engine() == EngineJoinless
	// Level 1: every type, with single-instance rows.
	level := make([]candidateSet, len(types))
	for i, t := range types {
		rows := make([]int32, len(t.geoms))
		for a := range rows {
			rows[a] = int32(a)
		}
		level[i] = candidateSet{types: []int{i}, rows: rows, nrows: len(rows), pi: 1}
	}
	rowsPeak := 0

	for k := 2; cfg.MaxSize == 0 || k <= cfg.MaxSize; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		candidates := aprioriGenTypes(level)
		if len(candidates) == 0 {
			break
		}
		res.Candidates += len(candidates)
		tr.Add("coloc.candidates", int64(len(candidates)))

		// The prefix parents the expansion extends from, keyed by the
		// candidate's first k-1 types.
		parents := make(map[string]*candidateSet, len(level))
		for i := range level {
			parents[typeKey(level[i].types)] = &level[i]
		}

		expanded := make([]candidateSet, len(candidates))
		workers := colocWorkers(cfg.Parallelism, len(candidates))
		if k == 2 {
			tr.Add("coloc.workers", int64(workers))
		}
		pruned := make([]int64, workers)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var e expander
				var done int64
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(candidates) || ctx.Err() != nil {
						break
					}
					cand := candidates[i]
					if joinless && starPI(cand, types, g, cfg.MinPI) < cfg.MinPI {
						// The star upper bound already rules the
						// candidate out: skip the instance join.
						expanded[i] = candidateSet{types: cand}
						pruned[w]++
					} else {
						expanded[i] = expandCandidate(&e, cand, parents, types, g)
					}
					done++
				}
				tr.Add(obs.WorkerCounter("coloc", w, "candidates"), done)
			}(w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, p := range pruned {
			res.StarPruned += int(p)
		}

		// The expansion peak holds the parent tables plus every
		// candidate's table at once; record it, then drop the parents —
		// the next level extends only the new tables.
		liveRows := 0
		for i := range level {
			liveRows += len(level[i].rows)
		}
		for i := range expanded {
			liveRows += len(expanded[i].rows)
		}
		rowsPeak = max(rowsPeak, liveRows)
		for i := range level {
			level[i].rows = nil
		}

		// Merge in candidate order: deterministic regardless of which
		// worker expanded which slot.
		next := expanded[:0]
		for _, c := range expanded {
			if c.nrows > 0 && c.pi >= cfg.MinPI {
				next = append(next, c)
			}
		}
		for _, c := range next {
			res.Prevalent = append(res.Prevalent, Pattern{
				Types: namesOf(types, c.types),
				PI:    c.pi,
				Rows:  c.nrows,
			})
		}
		tr.Add("coloc.prevalent", int64(len(next)))
		if len(next) == 0 {
			break
		}
		level = next
	}
	tr.Add("coloc.star.pruned", int64(res.StarPruned))
	tr.Add("coloc.rows.peak", int64(rowsPeak))
	return nil
}

// starPI computes the star participation index of a candidate: for each
// member type, the fraction of its instances whose star neighborhood
// (its CSR row) is non-empty toward every other member type. Any
// instance participating in a clique row neighbors every other member,
// so starPI(c) >= PI(c) for every candidate — a sound coarse prune —
// and adding a type only shrinks each per-type star set, so the bound
// is anti-monotone like PI itself. Costs O(Σ|type| · k) integer
// subtractions against the CSR offsets; no instance join. Returns early
// once the bound falls below floor.
func starPI(cand []int, types []typeSet, g *neighborGraph, floor float64) float64 {
	pi := 1.0
	for i, ti := range cand {
		total := len(types[ti].geoms)
		cnt := 0
		for a := 0; a < total; a++ {
			// Even if every remaining instance qualified, the ratio
			// cannot reach floor anymore: abandon this type early.
			if float64(cnt+total-a)/float64(total) < floor {
				break
			}
			ok := true
			for j, tj := range cand {
				if j == i {
					continue
				}
				if g.at(ti, tj).degree(int32(a)) == 0 {
					ok = false
					break
				}
			}
			if ok {
				cnt++
			}
		}
		if r := float64(cnt) / float64(total); r < pi {
			pi = r
		}
		if pi < floor {
			return pi
		}
	}
	return pi
}

// aprioriGenTypes joins the prevalent sets of one level into the next
// level's candidates: pairs sharing their first k-1 elements produce a
// (k+1)-set, kept only when every k-subset is prevalent (PI is
// anti-monotone, so a missing subset proves the candidate cannot
// reach any MinPI its subsets missed). The input is lexicographically
// sorted and the blockwise join preserves that order.
func aprioriGenTypes(level []candidateSet) [][]int {
	prevalent := make(map[string]bool, len(level))
	for _, c := range level {
		prevalent[typeKey(c.types)] = true
	}
	k := len(level[0].types)
	var out [][]int
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if !samePrefix(level[i].types, level[j].types, k-1) {
				break
			}
			cand := make([]int, k+1)
			copy(cand, level[i].types)
			cand[k] = level[j].types[k-1]
			if allSubsetsPrevalent(cand, prevalent) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []int, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsPrevalent checks every (k-1)-subset of cand. The two
// subsets dropping the last elements are the join parents and known
// prevalent, but checking them costs little and keeps this obviously
// exhaustive.
func allSubsetsPrevalent(cand []int, prevalent map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, t := range cand {
			if i != drop {
				sub = append(sub, t)
			}
		}
		if !prevalent[typeKey(sub)] {
			return false
		}
	}
	return true
}

// expandCandidate materializes a candidate's row instances by extending
// its (k-1)-prefix parent's rows: an instance y of the new last type
// joins a row when y neighbors every row member, i.e. y lies in the
// intersection of the members' CSR rows toward the new type. Because
// parent rows are cliques, every extended row is a clique. Rows stream
// into one flat table preallocated from the parent's row count; the
// intersection scratch and participation flags come pooled from the
// worker's expander.
func expandCandidate(e *expander, cand []int, parents map[string]*candidateSet, types []typeSet, g *neighborGraph) candidateSet {
	k := len(cand)
	parent := parents[typeKey(cand[:k-1])]
	newType := cand[k-1]
	pk := k - 1 // parent row stride

	part := e.parts(cand, types)
	adjFirst := g.at(cand[0], newType)
	// Capacity hint: tables usually stay near the parent's row count
	// (each parent row extends to a handful of instances or dies).
	rows := make([]int32, 0, parent.nrows*k)
	nrows := 0
	for r := 0; r < parent.nrows; r++ {
		row := parent.rows[r*pk : r*pk+pk]
		ext := adjFirst.row(row[0])
		for m := 1; m < pk && len(ext) > 0; m++ {
			// Writing into e.buf while ext aliases it is safe: the
			// intersection only overwrites already-consumed positions.
			e.buf = intersectSorted(ext, g.at(cand[m], newType).row(row[m]), e.buf[:0])
			ext = e.buf
		}
		if len(ext) == 0 {
			continue
		}
		for _, y := range ext {
			rows = append(rows, row...)
			rows = append(rows, y)
			part[k-1][y] = true
		}
		nrows += len(ext)
		for m, x := range row {
			part[m][x] = true
		}
	}
	if nrows == 0 {
		return candidateSet{types: cand}
	}
	pi := 1.0
	for i, t := range cand {
		cnt := 0
		for _, p := range part[i] {
			if p {
				cnt++
			}
		}
		r := float64(cnt) / float64(len(types[t].geoms))
		if r < pi {
			pi = r
		}
	}
	return candidateSet{types: cand, rows: rows, nrows: nrows, pi: pi}
}

// intersectSorted writes the intersection of two ascending lists into
// dst and returns it.
func intersectSorted(a, b []int32, dst []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

func namesOf(types []typeSet, idx []int) []string {
	names := make([]string, len(idx))
	for i, t := range idx {
		names[i] = types[t].name
	}
	return names
}

// typeKey is the canonical map key of a type-index set.
func typeKey(ts []int) string {
	b := make([]byte, 0, len(ts)*3)
	for _, t := range ts {
		b = append(b, byte(t), byte(t>>8), byte(t>>16))
	}
	return string(b)
}
