package colocation_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/colocation"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
)

// pointLayer builds a point layer from coordinate pairs.
func pointLayer(name string, coords ...float64) *dataset.Layer {
	l := dataset.NewLayer(name)
	for i := 0; i+1 < len(coords); i += 2 {
		l.AddGeometry(geom.Pt(coords[i], coords[i+1]))
	}
	return l
}

func mustMine(t *testing.T, ds *dataset.Dataset, cfg colocation.Config) *colocation.Result {
	t.Helper()
	res, err := colocation.Mine(ds, cfg)
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return res
}

// TestKnownScene pins the engine on a scene small enough to verify by
// hand: A and B co-locate at two of three sites, C joins at one.
//
//	a1(0,0) b1(0,1)        a2(10,0) b2(10,1) c1(10,2)       a3(20,0)
//	b3(30,30)  c2(40,40)
func TestKnownScene(t *testing.T) {
	ds := &dataset.Dataset{
		Reference: pointLayer("A", 0, 0, 10, 0, 20, 0),
		Relevant: []*dataset.Layer{
			pointLayer("B", 0, 1, 10, 1, 30, 30),
			pointLayer("C", 10, 2, 40, 40),
		},
	}
	res := mustMine(t, ds, colocation.Config{Distance: 2.5, MinPI: 0.3})

	if got, want := res.Types, []string{"A", "B", "C"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Types = %v, want %v", got, want)
	}
	if res.Instances != 8 {
		t.Fatalf("Instances = %d, want 8", res.Instances)
	}
	want := []colocation.Pattern{
		// a1-b1 and a2-b2: 2/3 of A, 2/3 of B.
		{Types: []string{"A", "B"}, PI: 2.0 / 3.0, Rows: 2},
		// a2-c1: 1/3 of A, 1/2 of C.
		{Types: []string{"A", "C"}, PI: 1.0 / 3.0, Rows: 1},
		// b2-c1: 1/3 of B, 1/2 of C.
		{Types: []string{"B", "C"}, PI: 1.0 / 3.0, Rows: 1},
		// a2-b2-c1: 1/3, 1/3, 1/2 -> PI 1/3.
		{Types: []string{"A", "B", "C"}, PI: 1.0 / 3.0, Rows: 1},
	}
	if !reflect.DeepEqual(res.Prevalent, want) {
		t.Fatalf("Prevalent = %+v, want %+v", res.Prevalent, want)
	}
	if res.RefinedPairs != 4 {
		t.Fatalf("RefinedPairs = %d, want 4 (a1b1, a2b2, a2c1, b2c1)", res.RefinedPairs)
	}
	if res.CandidatePairs < res.RefinedPairs {
		t.Fatalf("CandidatePairs = %d < RefinedPairs = %d", res.CandidatePairs, res.RefinedPairs)
	}
}

// TestMinPIPrunes verifies the threshold actually filters: the same
// scene at a strict MinPI keeps only the strong pair.
func TestMinPIPrunes(t *testing.T) {
	ds := &dataset.Dataset{
		Reference: pointLayer("A", 0, 0, 10, 0, 20, 0),
		Relevant: []*dataset.Layer{
			pointLayer("B", 0, 1, 10, 1, 30, 30),
			pointLayer("C", 10, 2, 40, 40),
		},
	}
	res := mustMine(t, ds, colocation.Config{Distance: 2.5, MinPI: 0.5})
	want := []colocation.Pattern{{Types: []string{"A", "B"}, PI: 2.0 / 3.0, Rows: 2}}
	if !reflect.DeepEqual(res.Prevalent, want) {
		t.Fatalf("Prevalent = %+v, want %+v", res.Prevalent, want)
	}
}

// TestZeroDistanceCoincidentPoints: at distance 0 only exactly
// coincident instances are neighbors.
func TestZeroDistanceCoincidentPoints(t *testing.T) {
	ds := &dataset.Dataset{
		Reference: pointLayer("A", 1, 1, 5, 5),
		Relevant: []*dataset.Layer{
			pointLayer("B", 1, 1, 9, 9),
		},
	}
	res := mustMine(t, ds, colocation.Config{Distance: 0, MinPI: 0.5})
	want := []colocation.Pattern{{Types: []string{"A", "B"}, PI: 0.5, Rows: 1}}
	if !reflect.DeepEqual(res.Prevalent, want) {
		t.Fatalf("Prevalent = %+v, want %+v", res.Prevalent, want)
	}
}

// TestDegenerateDatasets: empty layers, a single type, and nil
// geometries must not panic and must report nothing prevalent.
func TestDegenerateDatasets(t *testing.T) {
	cfg := colocation.Config{Distance: 1, MinPI: 0.5}
	cases := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"empty layers", &dataset.Dataset{Reference: dataset.NewLayer("A"), Relevant: []*dataset.Layer{dataset.NewLayer("B")}}},
		{"single type", &dataset.Dataset{Reference: pointLayer("A", 0, 0, 1, 1)}},
		{"nil relevant entry", &dataset.Dataset{Reference: pointLayer("A", 0, 0), Relevant: []*dataset.Layer{nil}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := mustMine(t, tc.ds, cfg)
			if len(res.Prevalent) != 0 {
				t.Fatalf("Prevalent = %+v, want none", res.Prevalent)
			}
		})
	}
	if _, err := colocation.Mine(nil, cfg); err == nil {
		t.Fatalf("Mine(nil) should error")
	}
}

// TestMergedLayersSameType: two layers with one type name are one
// instance population.
func TestMergedLayersSameType(t *testing.T) {
	ds := &dataset.Dataset{
		Reference: pointLayer("A", 0, 0),
		Relevant: []*dataset.Layer{
			pointLayer("B", 0, 1),
			pointLayer("B", 50, 50), // far-away second B population
		},
	}
	res := mustMine(t, ds, colocation.Config{Distance: 2, MinPI: 0.5})
	want := []colocation.Pattern{{Types: []string{"A", "B"}, PI: 0.5, Rows: 1}}
	if !reflect.DeepEqual(res.Prevalent, want) {
		t.Fatalf("Prevalent = %+v, want %+v", res.Prevalent, want)
	}
}

// TestMaxSizeCapsWalk: MaxSize 2 stops before the triple.
func TestMaxSizeCapsWalk(t *testing.T) {
	ds := &dataset.Dataset{
		Reference: pointLayer("A", 0, 0),
		Relevant: []*dataset.Layer{
			pointLayer("B", 0, 1),
			pointLayer("C", 1, 0),
		},
	}
	res := mustMine(t, ds, colocation.Config{Distance: 2, MinPI: 1, MaxSize: 2})
	for _, p := range res.Prevalent {
		if len(p.Types) > 2 {
			t.Fatalf("pattern %v exceeds MaxSize 2", p.Types)
		}
	}
	if len(res.Prevalent) != 3 {
		t.Fatalf("Prevalent = %+v, want the 3 pairs", res.Prevalent)
	}
}

// TestParallelismByteIdentical: the full result is identical at any
// worker count, including counters and pattern order.
func TestParallelismByteIdentical(t *testing.T) {
	ds := gridScene()
	base := mustMine(t, ds, colocation.Config{Distance: 1.5, MinPI: 0.2, Parallelism: 1})
	for _, par := range []int{0, 2, 4, 9} {
		got := mustMine(t, ds, colocation.Config{Distance: 1.5, MinPI: 0.2, Parallelism: par})
		got.Duration = base.Duration
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("parallelism %d diverged:\n got %+v\nwant %+v", par, got, base)
		}
	}
}

// gridScene lays four types on overlapping lattices so many pairs and
// triples clear low thresholds.
func gridScene() *dataset.Dataset {
	names := []string{"A", "B", "C", "D"}
	layers := make([]*dataset.Layer, len(names))
	for i, n := range names {
		layers[i] = dataset.NewLayer(n)
		for x := 0; x < 5; x++ {
			for y := 0; y < 3; y++ {
				layers[i].AddGeometry(geom.Pt(float64(x)*3+float64(i)*0.4, float64(y)*3+float64(i)*0.3))
			}
		}
	}
	return &dataset.Dataset{Reference: layers[0], Relevant: layers[1:]}
}

// TestCancellation: a pre-cancelled context aborts the walk.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := colocation.MineContext(ctx, gridScene(), colocation.Config{Distance: 1.5, MinPI: 0.2})
	if err == nil {
		t.Fatalf("expected context error")
	}
}

// TestTraceCounters: the materialization counters flow through obs.
func TestTraceCounters(t *testing.T) {
	tr := obs.New(nil)
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := colocation.MineContext(ctx, gridScene(), colocation.Config{Distance: 1.5, MinPI: 0.2})
	if err != nil {
		t.Fatalf("MineContext: %v", err)
	}
	if got := tr.Counter("coloc.pairs.candidates"); got != res.CandidatePairs || got == 0 {
		t.Fatalf("coloc.pairs.candidates = %d, result says %d", got, res.CandidatePairs)
	}
	if got := tr.Counter("coloc.pairs.refined"); got != res.RefinedPairs || got == 0 {
		t.Fatalf("coloc.pairs.refined = %d, result says %d", got, res.RefinedPairs)
	}
	if tr.Counter("coloc.candidates") == 0 || tr.Counter("coloc.workers") == 0 {
		t.Fatalf("walk counters missing: %v", tr.Counters())
	}
	if tr.Counter("coloc.neighbors.workers") == 0 {
		t.Fatalf("coloc.neighbors.workers missing: %v", tr.Counters())
	}
	if tr.Counter("coloc.rows.peak") == 0 {
		t.Fatalf("coloc.rows.peak missing: %v", tr.Counters())
	}
	if got := tr.Counter("coloc.star.pruned"); got != int64(res.StarPruned) {
		t.Fatalf("coloc.star.pruned = %d, result says %d", got, res.StarPruned)
	}
}

// TestConfigValidate sweeps the rejection surface.
func TestConfigValidate(t *testing.T) {
	bad := []colocation.Config{
		{Distance: -1, MinPI: 0.5},
		{Distance: math.NaN(), MinPI: 0.5},
		{Distance: math.Inf(1), MinPI: 0.5},
		{Distance: 1, MinPI: 0},
		{Distance: 1, MinPI: -0.1},
		{Distance: 1, MinPI: 1.01},
		{Distance: 1, MinPI: math.NaN()},
		{Distance: 1, MinPI: 0.5, MaxSize: -1},
		{Distance: 1, MinPI: 0.5, Parallelism: -2},
		{Distance: 1, MinPI: 0.5, Engine: "starjoin"},
		{Distance: 1, MinPI: 0.5, TopK: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cfg)
		}
	}
	for _, good := range []colocation.Config{
		{Distance: 0, MinPI: 1},
		{Distance: 1, MinPI: 0.5, Engine: colocation.EngineClique},
		{Distance: 1, MinPI: 0.5, Engine: colocation.EngineJoinless, TopK: 3},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", good, err)
		}
	}
}

// TestParseConfig: strictness of the wire decoder.
func TestParseConfig(t *testing.T) {
	cfg, err := colocation.ParseConfig([]byte(`{"distance":2,"minPI":0.4,"maxSize":3,"parallelism":2,"engine":"clique","topK":5}`))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if cfg.Distance != 2 || cfg.MinPI != 0.4 || cfg.MaxSize != 3 || cfg.Parallelism != 2 ||
		cfg.Engine != colocation.EngineClique || cfg.TopK != 5 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{
		``,
		`{`,
		`{"distance":1}`,                      // minPI missing -> 0, invalid
		`{"distance":1,"minPI":0.5,"nope":1}`, // unknown field
		`{"distance":1,"minPI":0.5} trailing`, // trailing data
		`{"distance":-2,"minPI":0.5}`,         // invalid bounds
		`{"distance":"far","minPI":0.5}`,      // wrong type
		`[{"distance":1,"minPI":0.5}]`,        // wrong shape
		`{"distance":1,"minPI":0.5,"engine":"starjoin"}`, // unknown engine
		`{"distance":1,"minPI":0.5,"topK":-3}`,           // negative topK
	} {
		if _, err := colocation.ParseConfig([]byte(bad)); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}
