package colocation_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/colocation"
	"repro/internal/datagen"
)

// normalizeEngineResult zeroes the fields that legitimately differ
// between engines: wall time and the joinless-only prune diagnostic.
// Everything else — patterns, PI floats, row counts, candidate and
// pair tallies, ordering — must match exactly.
func normalizeEngineResult(r *colocation.Result) {
	r.Duration = 0
	r.StarPruned = 0
}

// TestColocationEnginesByteIdentical is the clique ≡ joinless property
// sweep: across generated scenes × distances × minPI × Parallelism
// ∈ {1, 4}, the two engines (each at every worker count) must produce
// the same Result down to every field except Duration and the
// StarPruned diagnostic. Run under -race in CI, this also exercises
// the parallel CSR materialization and the sharded walk of both
// engines for data races.
func TestColocationEnginesByteIdentical(t *testing.T) {
	scenes := []struct {
		name string
		cfg  datagen.ColocationSceneConfig
	}{
		{"default", datagen.DefaultColocationScene(19)},
		{"clutter", datagen.ColocationSceneConfig{
			Seed: 29, Types: []string{"a", "b", "c", "d"}, Extent: 12,
			Clusters: 8, ClusterSpread: 0.6, Noise: 40,
		}},
		{"planted cliques", datagen.ColocationSceneConfig{
			Seed: 31, Types: []string{"p", "q", "r"}, Extent: 50,
			Clusters: 12, ClusterSpread: 0.4,
			Planted: [][]string{{"p", "p", "q", "q", "r"}, {"q", "r"}},
			Noise:   6,
		}},
	}
	for _, sc := range scenes {
		ds, err := datagen.GenerateColocationScene(sc.cfg)
		if err != nil {
			t.Fatalf("%s: generate: %v", sc.name, err)
		}
		for _, dist := range []float64{1, 4} {
			for _, minPI := range []float64{0.2, 0.5} {
				base := colocation.Config{
					Distance: dist, MinPI: minPI,
					Parallelism: 1, Engine: colocation.EngineClique,
				}
				want, err := colocation.Mine(ds, base)
				if err != nil {
					t.Fatalf("%s: clique/par=1: %v", sc.name, err)
				}
				if want.StarPruned != 0 {
					t.Fatalf("%s: clique engine reported StarPruned=%d", sc.name, want.StarPruned)
				}
				normalizeEngineResult(want)
				for _, eng := range []colocation.Engine{colocation.EngineClique, colocation.EngineJoinless} {
					for _, par := range []int{1, 4} {
						if eng == colocation.EngineClique && par == 1 {
							continue // the reference run itself
						}
						cfg := base
						cfg.Engine = eng
						cfg.Parallelism = par
						t.Run(fmt.Sprintf("%s/dist=%v/minpi=%v/%s/par=%d", sc.name, dist, minPI, eng, par), func(t *testing.T) {
							got, err := colocation.Mine(ds, cfg)
							if err != nil {
								t.Fatalf("Mine: %v", err)
							}
							normalizeEngineResult(got)
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("engine output diverged:\n got %+v\nwant %+v", got, want)
							}
						})
					}
				}
			}
		}
	}
}

// TestJoinlessStarPrunesOnDenseScene pins that the joinless engine's
// upper bound actually fires somewhere: on a cluttered scene with a
// high MinPI there are candidates whose star bound rules them out, and
// the prune must not change the mined patterns.
func TestJoinlessStarPrunesOnDenseScene(t *testing.T) {
	ds, err := datagen.GenerateColocationScene(datagen.ColocationSceneConfig{
		Seed: 37, Types: []string{"a", "b", "c", "d", "e"}, Extent: 14,
		Clusters: 6, ClusterSpread: 0.7, Noise: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := colocation.Config{Distance: 1, MinPI: 0.55, Engine: colocation.EngineJoinless}
	got, err := colocation.Mine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.StarPruned == 0 {
		t.Fatalf("expected the star upper bound to prune at least one candidate (candidates=%d)", got.Candidates)
	}
	cfg.Engine = colocation.EngineClique
	want, err := colocation.Mine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Prevalent, want.Prevalent) || got.Candidates != want.Candidates {
		t.Fatalf("pruning changed output:\n got %+v (candidates=%d)\nwant %+v (candidates=%d)",
			got.Prevalent, got.Candidates, want.Prevalent, want.Candidates)
	}
}

// TestTopKTruncation pins the top-k contract: the k highest-PI
// patterns survive, ties break by smaller size then name order, the
// kept patterns stay in the walk's canonical size-then-name order, and
// the oracle truncates identically.
func TestTopKTruncation(t *testing.T) {
	ds, err := datagen.GenerateColocationScene(datagen.ColocationSceneConfig{
		Seed: 41, Types: []string{"a", "b", "c", "d"}, Extent: 30,
		Clusters: 10, ClusterSpread: 0.4,
		Planted: [][]string{{"a", "b", "c"}, {"c", "d"}},
		Noise:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := colocation.Mine(ds, colocation.Config{Distance: 1, MinPI: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Prevalent) < 3 {
		t.Fatalf("scene too sparse for a top-k test: %d prevalent", len(full.Prevalent))
	}
	for k := 1; k <= len(full.Prevalent)+1; k++ {
		cfg := colocation.Config{Distance: 1, MinPI: 0.2, TopK: k}
		got, err := colocation.Mine(ds, cfg)
		if err != nil {
			t.Fatalf("topK=%d: %v", k, err)
		}
		want := topKReference(full.Prevalent, k)
		if !reflect.DeepEqual(got.Prevalent, want) {
			t.Fatalf("topK=%d:\n got %+v\nwant %+v", k, got.Prevalent, want)
		}
		oracle, err := colocation.MineBruteForce(ds, cfg)
		if err != nil {
			t.Fatalf("topK=%d oracle: %v", k, err)
		}
		if !reflect.DeepEqual(oracle.Prevalent, want) {
			t.Fatalf("topK=%d oracle diverged:\n got %+v\nwant %+v", k, oracle.Prevalent, want)
		}
	}
}

// topKReference is an independent O(n²) selection of the k best
// patterns — by (higher PI, smaller size, lex-smaller names) — kept in
// their original order, against which the engine's bounded heap is
// checked.
func topKReference(prevalent []colocation.Pattern, k int) []colocation.Pattern {
	if k >= len(prevalent) {
		return prevalent
	}
	rank := func(i int) int {
		r := 0
		for j := range prevalent {
			if j == i {
				continue
			}
			a, b := &prevalent[j], &prevalent[i]
			switch {
			case a.PI != b.PI:
				if a.PI > b.PI {
					r++
				}
			case len(a.Types) != len(b.Types):
				if len(a.Types) < len(b.Types) {
					r++
				}
			default:
				for x := range a.Types {
					if a.Types[x] != b.Types[x] {
						if a.Types[x] < b.Types[x] {
							r++
						}
						break
					}
				}
			}
		}
		return r
	}
	out := make([]colocation.Pattern, 0, k)
	for i := range prevalent {
		if rank(i) < k {
			out = append(out, prevalent[i])
		}
	}
	return out
}
