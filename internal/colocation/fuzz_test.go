package colocation_test

import (
	"encoding/json"
	"testing"

	"repro/internal/colocation"
)

// FuzzColocationConfig fuzzes the strict wire-config decoder shared by
// the CLI and POST /v1/colocate, in the ReadJSON/ReadGeoJSON mold:
// arbitrary bytes must either produce an error or a Config that
// validates and survives a marshal/reparse round trip unchanged.
func FuzzColocationConfig(f *testing.F) {
	seeds := []string{
		`{"distance":2,"minPI":0.4}`,
		`{"distance":0,"minPI":1}`,
		`{"distance":1.5,"minPI":0.25,"maxSize":3,"parallelism":4}`,
		`{"distance":1,"minPI":0.5,"engine":"joinless"}`,
		`{"distance":1,"minPI":0.5,"engine":"clique","topK":2}`,
		`{"distance":1,"minPI":0.5,"engine":"starjoin"}`,
		`{"distance":1,"minPI":0.5,"topK":-1}`,
		`{"distance":1e-9,"minPI":0.0001}`,
		`{"distance":-1,"minPI":0.5}`,
		`{"distance":1,"minPI":0.5,"unknown":true}`,
		`{"distance":1,"minPI":0.5} trailing`,
		`{"minPI":0.5}`,
		`{}`,
		`null`,
		`[]`,
		`{"distance":"far","minPI":0.5}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := colocation.ParseConfig(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails Validate: %v (%+v)", verr, cfg)
		}
		out, merr := json.Marshal(cfg)
		if merr != nil {
			t.Fatalf("accepted config does not marshal: %v", merr)
		}
		back, perr := colocation.ParseConfig(out)
		if perr != nil {
			t.Fatalf("marshalled config does not reparse: %v (%s)", perr, out)
		}
		if back != cfg {
			t.Fatalf("round trip changed config: %+v -> %+v", cfg, back)
		}
	})
}
