package taxonomy

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// cityHierarchy: slum, favela -> settlement -> landuse; school ->
// publicService -> landuse; river is a root.
func cityHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h := NewHierarchy()
	for _, edge := range [][2]string{
		{"slum", "settlement"},
		{"favela", "settlement"},
		{"settlement", "landuse"},
		{"school", "publicService"},
		{"publicService", "landuse"},
	} {
		if err := h.Add(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHierarchyStructure(t *testing.T) {
	h := cityHierarchy(t)
	if p, ok := h.Parent("slum"); !ok || p != "settlement" {
		t.Errorf("Parent(slum) = %q, %v", p, ok)
	}
	if _, ok := h.Parent("landuse"); ok {
		t.Error("root must have no parent")
	}
	anc := h.Ancestors("slum")
	if len(anc) != 2 || anc[0] != "settlement" || anc[1] != "landuse" {
		t.Errorf("Ancestors(slum) = %v", anc)
	}
	if h.Depth("slum") != 2 || h.Depth("landuse") != 0 {
		t.Error("depths wrong")
	}
	if h.Levels() != 2 {
		t.Errorf("Levels = %d", h.Levels())
	}
	types := h.Types()
	if len(types) != 6 {
		t.Errorf("Types = %v", types)
	}
}

func TestHierarchyAtLevel(t *testing.T) {
	h := cityHierarchy(t)
	cases := []struct {
		typ   string
		level int
		want  string
	}{
		{"slum", 0, "landuse"},
		{"slum", 1, "settlement"},
		{"slum", 2, "slum"},
		{"slum", 9, "slum"}, // deeper than the chain: unchanged
		{"landuse", 0, "landuse"},
		{"river", 0, "river"}, // outside the hierarchy: unchanged
		{"school", 1, "publicService"},
	}
	for _, tc := range cases {
		if got := h.AtLevel(tc.typ, tc.level); got != tc.want {
			t.Errorf("AtLevel(%q, %d) = %q, want %q", tc.typ, tc.level, got, tc.want)
		}
	}
}

func TestHierarchyAddErrors(t *testing.T) {
	h := NewHierarchy()
	if err := h.Add("a", "a"); err == nil {
		t.Error("self-parent must fail")
	}
	if err := h.Add("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("a", "c"); err == nil {
		t.Error("second parent must fail")
	}
	if err := h.Add("a", "b"); err != nil {
		t.Error("re-adding the same edge is fine")
	}
	if err := h.Add("b", "a"); err == nil {
		t.Error("cycle must fail")
	}
	h.MustAdd("b", "c")
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on error")
		}
	}()
	h.MustAdd("c", "a") // cycle a -> b -> c -> a
}

func TestGeneralizeTable(t *testing.T) {
	h := cityHierarchy(t)
	table := dataset.NewTable([]dataset.Transaction{
		{RefID: "d1", Items: []string{
			"contains_slum", "touches_favela", "contains_school",
			"crosses_river", "murderRate=high",
		}},
	})
	gen := GeneralizeTable(table, h, 1)
	items := gen.Transactions[0].Items
	want := map[string]bool{
		"contains_settlement":    true,
		"touches_settlement":     true,
		"contains_publicService": true,
		"crosses_river":          true, // root outside hierarchy levels
		"murderRate=high":        true, // non-spatial untouched
	}
	if len(items) != len(want) {
		t.Fatalf("generalised items = %v", items)
	}
	for _, it := range items {
		if !want[it] {
			t.Errorf("unexpected item %q", it)
		}
	}
}

func TestGeneralizeMergesSiblings(t *testing.T) {
	// Two sibling predicates with the same relation collapse into one
	// item, raising its support at the general level.
	h := cityHierarchy(t)
	table := dataset.NewTable([]dataset.Transaction{
		{RefID: "d1", Items: []string{"contains_slum", "contains_favela"}},
		{RefID: "d2", Items: []string{"contains_slum"}},
		{RefID: "d3", Items: []string{"contains_favela"}},
	})
	gen := GeneralizeTable(table, h, 1)
	if got := gen.SupportCount([]string{"contains_settlement"}); got != 3 {
		t.Errorf("generalised support = %d, want 3", got)
	}
	if len(gen.Transactions[0].Items) != 1 {
		t.Errorf("sibling predicates did not merge: %v", gen.Transactions[0].Items)
	}
}

// TestMultiLevelMiningWithKCPlus is the integration story: mine at the
// general level where sibling types merge, and KC+ still filters the
// same-feature pairs that emerge from generalisation.
func TestMultiLevelMiningWithKCPlus(t *testing.T) {
	h := cityHierarchy(t)
	table := dataset.NewTable([]dataset.Transaction{
		{RefID: "1", Items: []string{"contains_slum", "touches_favela", "murderRate=high"}},
		{RefID: "2", Items: []string{"contains_slum", "touches_favela", "murderRate=high"}},
		{RefID: "3", Items: []string{"contains_favela", "touches_slum", "murderRate=high"}},
		{RefID: "4", Items: []string{"contains_slum", "murderRate=low"}},
	})
	gen := GeneralizeTable(table, h, 1)
	db := itemset.NewDB(gen)
	res, err := mining.AprioriKCPlus(db, mining.Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// At the settlement level, {contains_settlement, touches_settlement}
	// is frequent in the raw data (3 of 4 rows) but must be filtered.
	if res.PrunedSameFeature == 0 {
		t.Error("generalised same-feature pair not pruned")
	}
	for _, f := range res.Frequent {
		if f.Items.HasSameFeaturePair(db.Dict) {
			t.Errorf("same-feature itemset leaked: %s", f.Items.Format(db.Dict))
		}
	}
	// The cross-feature association survives.
	cs, ok1 := db.Dict.Lookup("contains_settlement")
	mh, ok2 := db.Dict.Lookup("murderRate=high")
	if !ok1 || !ok2 {
		t.Fatal("generalised items missing")
	}
	if _, ok := res.Support(itemset.NewItemset(cs, mh)); !ok {
		t.Error("cross-feature generalised set lost")
	}
}
