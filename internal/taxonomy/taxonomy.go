// Package taxonomy implements concept hierarchies over feature types and
// multi-level predicate generalisation — the "general granularity levels"
// the paper mines at (Section 1, citing Han's multi-level mining [12]).
//
// A Hierarchy maps feature types to parents ("slum" -> "settlement" ->
// "landuse"). Generalising a transaction table rewrites each spatial
// predicate's feature type to its ancestor at a chosen level, so
// "contains_slum" and "contains_favela" can both become
// "contains_settlement" and support accumulates across siblings. The KC+
// same-feature filter then operates at the generalised granularity, which
// is exactly where the paper's meaningless-pattern problem lives.
package taxonomy

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/qsr"
)

// Hierarchy is a forest of feature-type concepts: each type may have one
// parent. Types without an entry are roots.
type Hierarchy struct {
	parent map[string]string
}

// NewHierarchy creates an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parent: make(map[string]string)}
}

// Add declares parent(child) = parent. It returns an error when the edge
// would create a cycle or the child already has a different parent.
func (h *Hierarchy) Add(child, parent string) error {
	if child == parent {
		return fmt.Errorf("taxonomy: %q cannot be its own parent", child)
	}
	if existing, ok := h.parent[child]; ok && existing != parent {
		return fmt.Errorf("taxonomy: %q already has parent %q", child, existing)
	}
	// Walk up from the proposed parent; meeting the child means a cycle.
	for cur := parent; ; {
		next, ok := h.parent[cur]
		if !ok {
			break
		}
		if next == child {
			return fmt.Errorf("taxonomy: adding %q -> %q creates a cycle", child, parent)
		}
		cur = next
	}
	h.parent[child] = parent
	return nil
}

// MustAdd is Add that panics, for static hierarchy literals.
func (h *Hierarchy) MustAdd(child, parent string) *Hierarchy {
	if err := h.Add(child, parent); err != nil {
		panic(err)
	}
	return h
}

// Parent returns the immediate parent and whether one exists.
func (h *Hierarchy) Parent(t string) (string, bool) {
	p, ok := h.parent[t]
	return p, ok
}

// Ancestors returns the chain from t's parent up to its root, nearest
// first.
func (h *Hierarchy) Ancestors(t string) []string {
	var out []string
	for {
		p, ok := h.parent[t]
		if !ok {
			return out
		}
		out = append(out, p)
		t = p
	}
}

// Depth returns t's distance from its root (0 for roots).
func (h *Hierarchy) Depth(t string) int { return len(h.Ancestors(t)) }

// AtLevel returns the ancestor of t whose depth from the root equals
// level (level 0 is the root; higher levels are more specific). When t is
// already at or above the requested level it is returned unchanged.
func (h *Hierarchy) AtLevel(t string, level int) string {
	chain := append([]string{t}, h.Ancestors(t)...)
	// chain[i] has depth len(chain)-1-i.
	idx := len(chain) - 1 - level
	if idx <= 0 {
		return t
	}
	return chain[idx]
}

// Types lists every feature type mentioned by the hierarchy, sorted.
func (h *Hierarchy) Types() []string {
	set := map[string]struct{}{}
	for c, p := range h.parent {
		set[c] = struct{}{}
		set[p] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// GeneralizeTable rewrites every spatial predicate of the table to the
// feature-type granularity of the given level (0 = roots). Non-spatial
// items and predicates over types outside the hierarchy pass through
// unchanged. Items are re-normalised, so predicates that collapse onto
// the same generalised predicate merge.
func GeneralizeTable(t *dataset.Table, h *Hierarchy, level int) *dataset.Table {
	rows := make([]dataset.Transaction, len(t.Transactions))
	for i, tx := range t.Transactions {
		items := make([]string, len(tx.Items))
		for j, it := range tx.Items {
			items[j] = generalizeItem(it, h, level)
		}
		rows[i] = dataset.Transaction{RefID: tx.RefID, Items: items}
	}
	return dataset.NewTable(rows)
}

// generalizeItem rewrites one item if it is a parseable spatial
// predicate.
func generalizeItem(item string, h *Hierarchy, level int) string {
	p, err := qsr.ParsePredicate(item)
	if err != nil {
		return item
	}
	gen := h.AtLevel(p.FeatureType, level)
	if gen == p.FeatureType {
		return item
	}
	return qsr.Predicate{Relation: p.Relation, FeatureType: gen}.String()
}

// Levels returns the maximum depth across the hierarchy (0 for an empty
// hierarchy): the number of distinct granularity levels minus one.
func (h *Hierarchy) Levels() int {
	max := 0
	for c := range h.parent {
		if d := h.Depth(c); d > max {
			max = d
		}
	}
	return max
}
