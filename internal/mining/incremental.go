// Incremental mining: patch a previous Result to reflect row-level
// edits of the transaction database instead of re-running the engine.
//
// The patch is exact, not approximate. Support counts are additively
// corrected per changed row; itemsets that fall below minsup are
// dropped; and newly frequent itemsets are discovered by a depth-first
// walk restricted to subsets of the changed rows' new item sets — any
// itemset whose support increased must be contained in at least one
// changed row, so the restricted walk cannot miss one. The walk prunes
// with true supports from the (already patched) vertical bitmaps and
// applies the same Φ-dependency / same-feature pair filters as the full
// engines, so the patched result is identical to a from-scratch run.
package mining

import (
	"context"
	"sort"
	"time"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// RowDelta describes one transaction whose content differs between the
// previously mined database and its patched successor. Old is nil for
// inserted rows, New is nil for deleted rows; both are interned against
// the shared (stable-ID) dictionary.
type RowDelta struct {
	Old itemset.Itemset
	New itemset.Itemset
}

// PatchStats reports how a result patch was computed.
type PatchStats struct {
	// Patched counts previously frequent itemsets whose supports were
	// additively corrected; Dropped how many fell below minsup;
	// Discovered how many newly frequent itemsets the restricted walk
	// found.
	Patched, Dropped, Discovered int
	// Rewalk is set when patching was not applicable (threshold count
	// changed, no previous result, or the edit batch rivals the database
	// size) and the engine re-ran on the patched database instead.
	Rewalk bool
}

// PatchResultContext produces the mining result of the patched database
// db (whose rows and tidsets must already reflect the edits, e.g. via
// itemset.DB.ApplyDelta) given the previous result prev of the same
// configuration and the row deltas that separate the two databases.
//
// The incremental path applies when the absolute minsup count is
// unchanged and the edit batch is small relative to the database;
// otherwise the generic engine re-runs on db — still skipping the
// dominant extraction/interning/tidset work. Either way the returned
// Frequent list is identical (same order, same supports) to mining db
// from scratch under cfg.
//
// Pass statistics are not re-derived on the incremental path: Stats is
// empty. The PrunedDeps/PrunedSameFeature tallies are recomputed from
// the patched database — they are a pure function of the frequent
// 1-items and the pair filters (the count of filtered unordered pairs
// at k=2, as the Apriori and Eclat engines define them), and edits can
// change which single items are frequent.
func PatchResultContext(ctx context.Context, db *itemset.DB, prev *Result, cfg Config, deltas []RowDelta) (*Result, PatchStats, error) {
	var stats PatchStats
	minCount, err := resolveMinSupport(db, cfg)
	if err != nil {
		return nil, stats, err
	}
	tr := obs.FromContext(ctx)
	if prev == nil || minCount != prev.MinSupportCount || 2*len(deltas) > db.NumTransactions() {
		stats.Rewalk = true
		tr.Add("delta.mine.rewalks", 1)
		rcfg := cfg
		rcfg.Counting = VerticalCounting
		res, err := MineContext(ctx, db, rcfg)
		return res, stats, err
	}
	start := time.Now()

	// Phase 1: correct the supports of every previously frequent
	// itemset by its membership change across the edited rows.
	kept := make([]FrequentItemset, 0, len(prev.Frequent))
	prevKeys := make(map[string]struct{}, len(prev.Frequent))
	for _, f := range prev.Frequent {
		prevKeys[f.Items.Key()] = struct{}{}
		sup := f.Support
		for _, d := range deltas {
			if d.Old.ContainsAll(f.Items) {
				sup--
			}
			if d.New.ContainsAll(f.Items) {
				sup++
			}
		}
		if sup >= minCount {
			kept = append(kept, FrequentItemset{Items: f.Items, Support: sup})
		} else {
			stats.Dropped++
		}
	}
	stats.Patched = len(prev.Frequent)

	// Phase 2: discover newly frequent itemsets. Any itemset that became
	// frequent gained support, so it is a subset of some changed row's
	// new items; walk exactly that space, pruning by true support
	// (anti-monotone) and the pair filters.
	changed := make([]itemset.Itemset, 0, len(deltas))
	for _, d := range deltas {
		if d.New != nil {
			changed = append(changed, d.New)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	discovered := discoverNew(ctx, db, cfg, minCount, prevKeys, changed)
	stats.Discovered = len(discovered)

	all := append(kept, discovered...)
	sort.SliceStable(all, func(i, j int) bool {
		if len(all[i].Items) != len(all[j].Items) {
			return len(all[i].Items) < len(all[j].Items)
		}
		return compareItems(all[i].Items, all[j].Items) < 0
	})
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	prunedDeps, prunedSame := countPairPrunes(db, cfg, minCount)
	tr.Add("delta.itemsets.patched", int64(stats.Patched))
	tr.Add("delta.itemsets.dropped", int64(stats.Dropped))
	tr.Add("delta.itemsets.discovered", int64(stats.Discovered))
	return &Result{
		Frequent:          all,
		MinSupportCount:   minCount,
		NumTransactions:   db.NumTransactions(),
		Duration:          time.Since(start),
		PrunedDeps:        prunedDeps,
		PrunedSameFeature: prunedSame,
	}, stats, nil
}

// countPairPrunes recounts the k=2 pair-filter tallies over the patched
// database: every unordered pair of frequent 1-items removed by the Φ
// dependency set or the same-feature filter, dependency precedence
// first — exactly what Apriori's C2 filterPairs and Eclat's root-level
// walk count on a cold run.
func countPairPrunes(db *itemset.DB, cfg Config, minCount int) (deps, same int) {
	depSet := buildDepSet(db.Dict, cfg.Dependencies)
	if len(depSet) == 0 && !cfg.FilterSameFeature {
		return 0, 0
	}
	counts := db.ItemCounts()
	f1 := make([]int32, 0, len(counts))
	for id, c := range counts {
		if c >= minCount {
			f1 = append(f1, int32(id))
		}
	}
	for i, a := range f1 {
		for _, b := range f1[i+1:] {
			if _, bad := depSet[[2]int32{a, b}]; bad {
				deps++
				continue
			}
			if cfg.FilterSameFeature && db.Dict.SameFeatureType(a, b) {
				same++
			}
		}
	}
	return deps, same
}

// discoverNew walks the subsets of the changed rows' new item sets in
// ascending-ID order, returning those frequent under minCount, allowed
// by the pair filters, and not previously frequent. The walk visits
// each candidate set exactly once (combinations, not permutations), so
// the output needs no deduplication; it prunes a branch as soon as the
// true support drops below minCount or no changed row contains the
// prefix.
func discoverNew(ctx context.Context, db *itemset.DB, cfg Config, minCount int, prevKeys map[string]struct{}, changed []itemset.Itemset) []FrequentItemset {
	if len(changed) == 0 {
		return nil
	}
	universe := make(map[int32]struct{})
	for _, row := range changed {
		for _, id := range row {
			universe[id] = struct{}{}
		}
	}
	items := make([]int32, 0, len(universe))
	for id := range universe {
		items = append(items, id)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	vc := db.NewVerticalCounter()
	depSet := buildDepSet(db.Dict, cfg.Dependencies)
	var out []FrequentItemset

	// walk extends x (ascending, contained in every changed[live] row)
	// with items after position from in the universe.
	var walk func(x itemset.Itemset, live []int, from int)
	walk = func(x itemset.Itemset, live []int, from int) {
		if ctx.Err() != nil {
			return
		}
		if cfg.MaxLen > 0 && len(x) >= cfg.MaxLen {
			return
		}
		for p := from; p < len(items); p++ {
			id := items[p]
			var next []int
			for _, li := range live {
				if changed[li].Contains(id) {
					next = append(next, li)
				}
			}
			if len(next) == 0 {
				continue
			}
			if len(x) > 0 && violates(x, id, db.Dict, depSet, cfg.FilterSameFeature) != violationNone {
				continue
			}
			ext := append(append(itemset.Itemset{}, x...), id)
			sup := vc.Support(ext)
			if sup < minCount {
				continue
			}
			if _, known := prevKeys[ext.Key()]; !known {
				out = append(out, FrequentItemset{Items: ext, Support: sup})
			}
			walk(ext, next, p+1)
		}
	}
	allRows := make([]int, len(changed))
	for i := range changed {
		allRows[i] = i
	}
	walk(nil, allRows, 0)
	return out
}
