package mining

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/itemset"
)

// Measure identifies an objective interestingness measure over an
// association rule A -> C. The paper's related work ([5, 16, 17]) surveys
// these as the transactional approach to pattern filtering — the approach
// Apriori-KC+ complements (measures cannot eliminate qualitative
// same-feature patterns, which is the paper's core argument; see
// TestMeasuresCannotFilterSameFeaturePatterns).
type Measure int

// Supported measures.
const (
	// MeasureSupport is sup(AC)/N.
	MeasureSupport Measure = iota
	// MeasureConfidence is sup(AC)/sup(A).
	MeasureConfidence
	// MeasureLift is conf / (sup(C)/N).
	MeasureLift
	// MeasureLeverage is sup(AC)/N − sup(A)sup(C)/N².
	MeasureLeverage
	// MeasureConviction is (1 − sup(C)/N)/(1 − conf).
	MeasureConviction
	// MeasureJaccard is sup(AC)/(sup(A)+sup(C)−sup(AC)).
	MeasureJaccard
	// MeasureCosine is sup(AC)/sqrt(sup(A)·sup(C)).
	MeasureCosine
	// MeasureKulczynski is (conf(A->C)+conf(C->A))/2.
	MeasureKulczynski
	// MeasureAllConfidence is sup(AC)/max(sup(A), sup(C)).
	MeasureAllConfidence
	// MeasurePhi is the φ correlation coefficient of the 2x2
	// contingency table.
	MeasurePhi
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case MeasureSupport:
		return "support"
	case MeasureConfidence:
		return "confidence"
	case MeasureLift:
		return "lift"
	case MeasureLeverage:
		return "leverage"
	case MeasureConviction:
		return "conviction"
	case MeasureJaccard:
		return "jaccard"
	case MeasureCosine:
		return "cosine"
	case MeasureKulczynski:
		return "kulczynski"
	case MeasureAllConfidence:
		return "allConfidence"
	case MeasurePhi:
		return "phi"
	}
	return fmt.Sprintf("mining.Measure(%d)", int(m))
}

// AllMeasures lists every supported measure.
func AllMeasures() []Measure {
	return []Measure{
		MeasureSupport, MeasureConfidence, MeasureLift, MeasureLeverage,
		MeasureConviction, MeasureJaccard, MeasureCosine,
		MeasureKulczynski, MeasureAllConfidence, MeasurePhi,
	}
}

// Evaluate computes a measure for the rule A -> C against a mining
// result. The antecedent, consequent, and their union must be frequent in
// the result (true for every rule GenerateRules emits); otherwise an
// error is returned.
func Evaluate(m Measure, res *Result, ante, cons itemset.Itemset) (float64, error) {
	n := float64(res.NumTransactions)
	supA, okA := res.Support(ante)
	supC, okC := res.Support(cons)
	supAC, okAC := res.Support(ante.Union(cons))
	if !okA || !okC || !okAC {
		return 0, fmt.Errorf("mining: rule parts not all frequent in result")
	}
	a, c, ac := float64(supA), float64(supC), float64(supAC)
	switch m {
	case MeasureSupport:
		return ac / n, nil
	case MeasureConfidence:
		return ac / a, nil
	case MeasureLift:
		return (ac / a) / (c / n), nil
	case MeasureLeverage:
		return ac/n - (a/n)*(c/n), nil
	case MeasureConviction:
		conf := ac / a
		if conf >= 1 {
			return math.Inf(1), nil
		}
		return (1 - c/n) / (1 - conf), nil
	case MeasureJaccard:
		return ac / (a + c - ac), nil
	case MeasureCosine:
		return ac / math.Sqrt(a*c), nil
	case MeasureKulczynski:
		return (ac/a + ac/c) / 2, nil
	case MeasureAllConfidence:
		return ac / math.Max(a, c), nil
	case MeasurePhi:
		den := math.Sqrt(a * c * (n - a) * (n - c))
		if den == 0 {
			return 0, nil
		}
		return (n*ac - a*c) / den, nil
	}
	return 0, fmt.Errorf("mining: unknown measure %d", m)
}

// RankRules orders rules by a measure, descending; ties break by support
// then antecedent size. Rules whose parts are not in the result are
// skipped.
func RankRules(m Measure, res *Result, rules []Rule) []Rule {
	type scored struct {
		rule  Rule
		score float64
	}
	ss := make([]scored, 0, len(rules))
	for _, r := range rules {
		v, err := Evaluate(m, res, r.Antecedent, r.Consequent)
		if err != nil {
			continue
		}
		ss = append(ss, scored{r, v})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		if ss[i].rule.Support != ss[j].rule.Support {
			return ss[i].rule.Support > ss[j].rule.Support
		}
		return len(ss[i].rule.Antecedent) < len(ss[j].rule.Antecedent)
	})
	out := make([]Rule, len(ss))
	for i, s := range ss {
		out[i] = s.rule
	}
	return out
}
