package mining

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/obs"
)

// ctxTable builds a table wide enough for several passes.
func ctxTable() *dataset.Table {
	var rows []dataset.Transaction
	for r := 0; r < 40; r++ {
		var items []string
		for i := 0; i < 12; i++ {
			if (r+i)%3 != 0 {
				items = append(items, fmt.Sprintf("item%02d", i))
			}
		}
		rows = append(rows, dataset.Transaction{RefID: fmt.Sprintf("R%d", r), Items: items})
	}
	return dataset.NewTable(rows)
}

func TestMineContextPreCancelled(t *testing.T) {
	db := itemset.NewDB(ctxTable())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, counting := range []CountingStrategy{VerticalCounting, HorizontalCounting} {
		if _, err := MineContext(ctx, db, Config{MinSupport: 0.2, Counting: counting}); !errors.Is(err, context.Canceled) {
			t.Errorf("counting %d: err = %v, want context.Canceled", counting, err)
		}
	}
}

// passCanceller cancels at the first pass event, so the k=2 boundary
// check fires deterministically.
type passCanceller struct{ cancel context.CancelFunc }

func (s *passCanceller) Emit(e obs.Event) {
	if e.Kind == obs.KindPass {
		s.cancel()
	}
}

func TestMineContextCancelBetweenPasses(t *testing.T) {
	db := itemset.NewDB(ctxTable())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := obs.New(&passCanceller{cancel: cancel})
	res, err := MineContext(obs.WithTrace(ctx, tr), db, Config{MinSupport: 0.2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled mine must not return a partial result")
	}
}

func TestFPGrowthContextPreCancelled(t *testing.T) {
	db := itemset.NewDB(ctxTable())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FPGrowthContext(ctx, db, Config{MinSupport: 0.2}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestFPGrowthStatsAndDuration(t *testing.T) {
	db := itemset.NewDB(dataset.Table2Reconstruction())
	res, err := FPGrowthContext(context.Background(), db, Config{MinSupport: 0.5, FilterSameFeature: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Error("FP-growth result must record a duration")
	}
	if len(res.Stats) != res.MaxLen() {
		t.Fatalf("stats = %d entries, want one per size up to %d", len(res.Stats), res.MaxLen())
	}
	bySize := res.CountBySize()
	for _, s := range res.Stats {
		if s.Frequent != bySize[s.K] {
			t.Errorf("stat k=%d frequent = %d, want %d", s.K, s.Frequent, bySize[s.K])
		}
	}
	if res.PrunedSameFeature == 0 {
		t.Error("KC+ FP-growth run must count same-feature branch prunes")
	}
	if res.Stats[1].PrunedSameFeature != res.PrunedSameFeature {
		t.Error("branch prune totals must surface on the k=2 stat")
	}
}

// TestMineParallelismDeterministic asserts identical frequent itemsets
// at Parallelism 1 and GOMAXPROCS — run under -race in CI, this is also
// the data-race canary for the counting worker pool.
func TestMineParallelismDeterministic(t *testing.T) {
	table := ctxTable()
	seq, err := Mine(itemset.NewDB(table), Config{MinSupport: 0.1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(itemset.NewDB(table), Config{MinSupport: 0.1, Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Frequent) != len(par.Frequent) {
		t.Fatalf("sequential %d vs parallel %d itemsets", len(seq.Frequent), len(par.Frequent))
	}
	for i := range seq.Frequent {
		a, b := seq.Frequent[i], par.Frequent[i]
		if !a.Items.Equal(b.Items) || a.Support != b.Support {
			t.Fatalf("itemset %d differs: %v/%d vs %v/%d", i, a.Items, a.Support, b.Items, b.Support)
		}
	}
}

func TestMineContextEmitsPassEvents(t *testing.T) {
	c := obs.NewCollector()
	ctx := obs.WithTrace(context.Background(), obs.New(c))
	res, err := MineContext(ctx, itemset.NewDB(ctxTable()), Config{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	passes := c.Passes()
	if len(passes) != len(res.Stats) {
		t.Fatalf("pass events = %d, want %d", len(passes), len(res.Stats))
	}
	for i, p := range passes {
		s := res.Stats[i]
		if p.K != s.K || p.Candidates != s.Candidates || p.Frequent != s.Frequent {
			t.Errorf("pass %d event %+v != stat %+v", i, p, s)
		}
	}
}
