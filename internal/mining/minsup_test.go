package mining

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// uniformDB builds a database of n rows; item "anchor" appears in
// exactly anchorRows of them alongside a per-row filler item.
func uniformDB(n, anchorRows int) *itemset.DB {
	var rows []dataset.Transaction
	for r := 0; r < n; r++ {
		items := []string{fmt.Sprintf("filler=%d", r%5)}
		if r < anchorRows {
			items = append(items, "anchor=yes")
		}
		rows = append(rows, dataset.Transaction{RefID: fmt.Sprintf("R%d", r), Items: items})
	}
	return itemset.NewDB(dataset.NewTable(rows))
}

// TestResolveMinSupportRounding pins the epsilon-tolerant ceiling over
// adversarial fractions whose binary-float product lands just above the
// true integer (0.07×100 = 7.000000000000001): the paper's definition
// counts support/N >= minsup as frequent, so the threshold must not be
// inflated by rounding jitter. The 0.07/100, 0.28/25, 0.14/50, and
// 0.55/100 rows fail on the raw float comparison this replaced (the
// old code resolved them one too high).
func TestResolveMinSupportRounding(t *testing.T) {
	cases := []struct {
		minsup float64
		n      int
		want   int
	}{
		{0.07, 100, 7},  // 7.000000000000001, old code said 8
		{0.28, 25, 7},   // old code said 8
		{0.14, 50, 7},   // old code said 8
		{0.55, 100, 55}, // old code said 56
		{0.1, 30, 3},    // jitter rounds back to exactly 3.0
		{0.2, 35, 7},
		{0.3, 10, 3}, // 2.9999999999999996, jitter below
		{0.29, 100, 29},
		{0.05, 30, 2}, // genuine ceiling: 1.5 -> 2
		{0.17, 6, 2},  // genuine ceiling: 1.02 -> 2
		{0.5, 7, 4},
		{1.0, 7, 7},
		{0.001, 3, 1}, // floor of one transaction
	}
	for _, c := range cases {
		db := uniformDB(c.n, c.n)
		got, err := resolveMinSupport(db, Config{MinSupport: c.minsup})
		if err != nil {
			t.Fatalf("minsup=%g n=%d: %v", c.minsup, c.n, err)
		}
		if got != c.want {
			t.Errorf("resolveMinSupport(%g × %d) = %d, want %d", c.minsup, c.n, got, c.want)
		}
	}
}

// TestMinSupportBoundaryItemsetKeptByAllEngines mines databases where an
// item sits exactly on the support/N = minsup boundary of an adversarial
// fraction, asserting every engine keeps it and that all four agree.
// Pre-fix, the inflated threshold silently dropped the boundary item.
func TestMinSupportBoundaryItemsetKeptByAllEngines(t *testing.T) {
	engines := []struct {
		name string
		fn   func(*itemset.DB, Config) (*Result, error)
	}{
		{"apriori", Apriori},
		{"apriori-kc+", AprioriKCPlus},
		{"fpgrowth", FPGrowth},
		{"eclat", Eclat},
	}
	cases := []struct {
		minsup float64
		n      int
		count  int // boundary support: exactly ceil(minsup*n)
	}{
		{0.07, 100, 7},
		{0.28, 25, 7},
		{0.14, 50, 7},
		{0.1, 30, 3},
	}
	for _, c := range cases {
		db := uniformDB(c.n, c.count)
		anchor, ok := db.Dict.Lookup("anchor=yes")
		if !ok {
			t.Fatal("anchor item missing")
		}
		var results []*Result
		for _, e := range engines {
			res, err := e.fn(db, Config{MinSupport: c.minsup})
			if err != nil {
				t.Fatalf("%s minsup=%g: %v", e.name, c.minsup, err)
			}
			if res.MinSupportCount != c.count {
				t.Errorf("%s minsup=%g n=%d: resolved count %d, want %d",
					e.name, c.minsup, c.n, res.MinSupportCount, c.count)
			}
			if sup, frequent := res.Support(itemset.Itemset{anchor}); !frequent || sup != c.count {
				t.Errorf("%s minsup=%g n=%d: boundary item support = %d, frequent = %v; want %d, true",
					e.name, c.minsup, c.n, sup, frequent, c.count)
			}
			results = append(results, res)
		}
		for i := 1; i < len(results); i++ {
			resultsEqual(t, fmt.Sprintf("minsup=%g/%s-vs-%s", c.minsup, engines[0].name, engines[i].name),
				results[0], results[i], db.Dict)
		}
	}
}
