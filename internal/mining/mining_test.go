package mining

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// paperDB returns the printed Table 1 database.
func paperDB() *itemset.DB {
	return itemset.NewDB(dataset.PortoAlegreTable())
}

// table2DB returns the Table 2-consistent reconstruction (see
// dataset.Table2Reconstruction for why the printed Table 1 cannot
// reproduce Table 2).
func table2DB() *itemset.DB {
	return itemset.NewDB(dataset.Table2Reconstruction())
}

// cfg50 is the paper's Section 2 configuration: minimum support 50%.
func cfg50() Config { return Config{MinSupport: 0.5} }

// TestTable2Counts reproduces the paper's Table 2 on the reconstruction:
// minimum support 50% yields 60 frequent itemsets of size >= 2 with the
// largest itemset having 6 elements, 30 of them containing a same-feature
// pair (the paper prints 31; see dataset.Table2Reconstruction).
func TestTable2Counts(t *testing.T) {
	db := table2DB()
	res, err := Apriori(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.NumFrequent(2); got != 60 {
		t.Errorf("frequent itemsets (size >= 2) = %d, want 60 (paper Table 2)", got)
	}
	same := 0
	for _, f := range res.Frequent {
		if len(f.Items) >= 2 && f.Items.HasSameFeaturePair(db.Dict) {
			same++
		}
	}
	if same != 30 {
		t.Errorf("same-feature itemsets = %d, want 30 (paper prints 31)", same)
	}
	if got := res.MaxLen(); got != 6 {
		t.Errorf("largest frequent itemset = %d, want 6", got)
	}
	// Size histogram of Table 2: 17 + 21 + 15 + 6 + 1 = 60.
	bySize := res.CountBySize()
	for size, want := range map[int]int{2: 17, 3: 21, 4: 15, 5: 6, 6: 1} {
		if bySize[size] != want {
			t.Errorf("size-%d itemsets = %d, want %d", size, bySize[size], want)
		}
	}
}

// TestPrintedTable1Counts records what the printed Table 1 actually
// yields at 50% support — the inconsistency with Table 2 documented in
// EXPERIMENTS.md.
func TestPrintedTable1Counts(t *testing.T) {
	db := paperDB()
	res, err := Apriori(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.NumFrequent(2); got != 47 {
		t.Errorf("printed Table 1 frequent (size >= 2) = %d, want 47 (measured)", got)
	}
	if got := res.MaxLen(); got != 5 {
		t.Errorf("printed Table 1 largest itemset = %d, want 5 (measured)", got)
	}
}

// TestTable2KCPlusCounts verifies the KC+ pass on the reconstruction: all
// 30 same-feature itemsets disappear, 30 frequent sets of size >= 2
// remain, via exactly 4 pruned pairs.
func TestTable2KCPlusCounts(t *testing.T) {
	db := table2DB()
	res, err := AprioriKCPlus(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.NumFrequent(2); got != 30 {
		t.Errorf("KC+ frequent (size >= 2) = %d, want 60 - 30 = 30", got)
	}
	for _, f := range res.Frequent {
		if f.Items.HasSameFeaturePair(db.Dict) {
			t.Errorf("KC+ leaked same-feature itemset %s", f.Items.Format(db.Dict))
		}
	}
	// The k=2 pruning removed pairs, not larger sets: slum has 3 frequent
	// relations (contains, touches, overlaps — covers has support 2 of 6)
	// and school 2, so C(3,2) + C(2,2) = 4 pairs.
	if res.PrunedSameFeature != 4 {
		t.Errorf("pruned same-feature pairs = %d, want 4", res.PrunedSameFeature)
	}
}

// TestPostFilterEquivalence asserts the paper's Section 3 claim: pruning
// the pairs at k=2 loses exactly the same-feature itemsets and nothing
// else — Apriori followed by an aposteriori filter equals Apriori-KC+.
func TestPostFilterEquivalence(t *testing.T) {
	db := table2DB()
	full, err := Apriori(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	plus, err := AprioriKCPlus(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	post := FilterSameFeaturePost(full.Frequent, db.Dict)
	if len(post) != len(plus.Frequent) {
		t.Fatalf("post filter = %d sets, KC+ = %d", len(post), len(plus.Frequent))
	}
	plusByKey := map[string]int{}
	for _, f := range plus.Frequent {
		plusByKey[f.Items.Key()] = f.Support
	}
	for _, f := range post {
		sup, ok := plusByKey[f.Items.Key()]
		if !ok {
			t.Errorf("post-filtered set %s missing from KC+", f.Items.Format(db.Dict))
			continue
		}
		if sup != f.Support {
			t.Errorf("support mismatch for %s: %d vs %d", f.Items.Format(db.Dict), f.Support, sup)
		}
	}
}

// TestAprioriKCWithDependencies checks the Φ filter: declaring
// {contains_slum, contains_school} a known dependency removes it and all
// its supersets, and nothing else.
func TestAprioriKCWithDependencies(t *testing.T) {
	db := table2DB()
	deps := []Pair{{A: "contains_slum", B: "contains_school"}}
	cfg := cfg50()
	cfg.Dependencies = deps
	res, err := AprioriKC(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedDeps != 1 {
		t.Errorf("pruned dependencies = %d, want 1", res.PrunedDeps)
	}
	if res.PrunedSameFeature != 0 {
		t.Errorf("KC must not prune same-feature pairs, got %d", res.PrunedSameFeature)
	}
	a, _ := db.Dict.Lookup("contains_slum")
	b, _ := db.Dict.Lookup("contains_school")
	for _, f := range res.Frequent {
		if f.Items.Contains(a) && f.Items.Contains(b) {
			t.Errorf("dependency pair survived in %s", f.Items.Format(db.Dict))
		}
	}
	// Equivalence with the aposteriori dependency filter.
	full, _ := Apriori(db, cfg50())
	post := FilterDependenciesPost(full.Frequent, db.Dict, deps)
	if len(post) != len(res.Frequent) {
		t.Errorf("KC = %d sets, post filter = %d", len(res.Frequent), len(post))
	}
	// Unknown dependency items are ignored gracefully.
	cfg.Dependencies = []Pair{{A: "nope", B: "nada"}}
	res2, err := AprioriKC(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PrunedDeps != 0 || res2.NumFrequent(2) != 60 {
		t.Error("unknown dependencies must be no-ops")
	}
}

// TestAntiMonotone is the paper's correctness argument: every subset of a
// frequent itemset is frequent, with support at least as large.
func TestAntiMonotone(t *testing.T) {
	res, err := Apriori(paperDB(), Config{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Frequent {
		for i := range f.Items {
			if len(f.Items) < 2 {
				continue
			}
			sub := f.Items.Without(i)
			subSup, ok := res.Support(sub)
			if !ok {
				t.Fatalf("subset %v of frequent set not frequent", sub)
			}
			if subSup < f.Support {
				t.Fatalf("subset support %d < superset support %d", subSup, f.Support)
			}
		}
	}
}

// TestNoInformationLoss verifies Section 3's argument: for a frequent set
// {A, B, C} where {A, B} is a same-feature pair, the cross-feature pairs
// {A, C} and {B, C} survive KC+.
func TestNoInformationLoss(t *testing.T) {
	db := table2DB()
	res, err := AprioriKCPlus(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	mustHave := [][]string{
		{"contains_slum", "murderRate=high"},
		{"touches_slum", "touches_school"},
		{"contains_slum", "contains_school"},
		{"overlaps_slum", "theftRate=low"},
	}
	for _, names := range mustHave {
		s := lookupSet(t, db.Dict, names)
		if _, ok := res.Support(s); !ok {
			t.Errorf("cross-feature set %v lost by KC+", names)
		}
	}
}

func lookupSet(t *testing.T, d *itemset.Dictionary, names []string) itemset.Itemset {
	t.Helper()
	ids := make([]int32, len(names))
	for i, n := range names {
		id, ok := d.Lookup(n)
		if !ok {
			t.Fatalf("item %q not in dictionary", n)
		}
		ids[i] = id
	}
	return itemset.NewItemset(ids...)
}

func TestCountingStrategiesProduceSameResult(t *testing.T) {
	for _, minsup := range []float64{0.2, 0.5, 0.8} {
		v, err := Apriori(paperDB(), Config{MinSupport: minsup, Counting: VerticalCounting})
		if err != nil {
			t.Fatal(err)
		}
		h, err := Apriori(paperDB(), Config{MinSupport: minsup, Counting: HorizontalCounting})
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Frequent) != len(h.Frequent) {
			t.Fatalf("minsup %v: vertical %d sets, horizontal %d", minsup, len(v.Frequent), len(h.Frequent))
		}
		for i := range v.Frequent {
			if !v.Frequent[i].Items.Equal(h.Frequent[i].Items) ||
				v.Frequent[i].Support != h.Frequent[i].Support {
				t.Fatalf("minsup %v: result %d differs", minsup, i)
			}
		}
	}
}

func TestMinSupportResolution(t *testing.T) {
	db := paperDB() // 6 transactions
	cases := []struct {
		minsup float64
		want   int
	}{
		{0.5, 3},
		{0.51, 4},
		{0.05, 1},
		{1.0, 6},
	}
	for _, tc := range cases {
		got, err := resolveMinSupport(db, Config{MinSupport: tc.minsup})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("resolve(%v) = %d, want %d", tc.minsup, got, tc.want)
		}
	}
	// Absolute count overrides.
	if got, _ := resolveMinSupport(db, Config{MinSupport: 0.5, MinSupportCount: 2}); got != 2 {
		t.Errorf("absolute override = %d", got)
	}
}

func TestMineErrors(t *testing.T) {
	db := paperDB()
	if _, err := Mine(db, Config{}); err == nil {
		t.Error("zero minsup should fail")
	}
	if _, err := Mine(db, Config{MinSupport: 1.5}); err == nil {
		t.Error("minsup > 1 should fail")
	}
	if _, err := Mine(db, Config{MinSupport: 0.5, Counting: CountingStrategy(9)}); err == nil {
		t.Error("unknown counting strategy should fail")
	}
	empty := itemset.NewDB(dataset.NewTable(nil))
	if _, err := Mine(empty, Config{MinSupport: 0.5}); err == nil {
		t.Error("empty database should fail")
	}
}

func TestMaxLenBound(t *testing.T) {
	res, err := Apriori(paperDB(), Config{MinSupport: 0.5, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen() != 2 {
		t.Errorf("MaxLen bound violated: %d", res.MaxLen())
	}
	// Unbounded run on the Table 2 reconstruction goes to 6.
	res, _ = Apriori(table2DB(), cfg50())
	if res.MaxLen() != 6 {
		t.Errorf("unbounded MaxLen = %d", res.MaxLen())
	}
}

func TestPassStats(t *testing.T) {
	res, err := AprioriKCPlus(paperDB(), cfg50())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) < 2 {
		t.Fatalf("stats = %d passes", len(res.Stats))
	}
	if res.Stats[0].K != 1 || res.Stats[1].K != 2 {
		t.Error("pass numbering wrong")
	}
	if res.Stats[1].PrunedSameFeature != res.PrunedSameFeature {
		t.Error("k=2 pruning stats not mirrored to result")
	}
	// Candidate counts weakly decrease against frequents at each level.
	for _, s := range res.Stats {
		if s.Frequent > s.Candidates && s.K > 1 {
			t.Errorf("pass %d: more frequent (%d) than candidates (%d)", s.K, s.Frequent, s.Candidates)
		}
	}
}

func TestSupportValuesAgainstHandCount(t *testing.T) {
	// Hand-verified supports from Table 1.
	db := paperDB()
	res, err := Apriori(db, Config{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		names []string
		want  int
	}{
		{[]string{"contains_slum"}, 6},
		{[]string{"covers_slum"}, 2},
		{[]string{"murderRate=high", "theftRate=high"}, 2},
		{[]string{"contains_slum", "overlaps_slum", "contains_school", "touches_school"}, 5},
		{[]string{"murderRate=high", "theftRate=low", "contains_slum", "overlaps_slum",
			"contains_school", "touches_school"}, 2},
	}
	for _, tc := range cases {
		s := lookupSet(t, db.Dict, tc.names)
		got, ok := res.Support(s)
		if !ok {
			t.Errorf("%v not frequent at 10%%", tc.names)
			continue
		}
		if got != tc.want {
			t.Errorf("support(%v) = %d, want %d", tc.names, got, tc.want)
		}
	}
}

func TestParallelCountingDeterministic(t *testing.T) {
	table, err := dataset.PortoAlegreTable(), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	var baseline *Result
	for _, workers := range []int{1, 0, 3, 16} {
		db := itemset.NewDB(table)
		res, err := Apriori(db, Config{MinSupport: 0.2, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if len(res.Frequent) != len(baseline.Frequent) {
			t.Fatalf("workers=%d: %d itemsets, want %d", workers, len(res.Frequent), len(baseline.Frequent))
		}
		for i := range baseline.Frequent {
			if !res.Frequent[i].Items.Equal(baseline.Frequent[i].Items) ||
				res.Frequent[i].Support != baseline.Frequent[i].Support {
				t.Fatalf("workers=%d: itemset %d differs", workers, i)
			}
		}
	}
}

// TestMinSupportMonotonicity: raising the threshold can only shrink the
// frequent set, and every surviving itemset keeps its support.
func TestMinSupportMonotonicity(t *testing.T) {
	db := itemset.NewDB(dataset.Table2Reconstruction())
	var prev *Result
	for _, count := range []int{1, 2, 3, 4, 5, 6} {
		res, err := Apriori(db, Config{MinSupportCount: count})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(res.Frequent) > len(prev.Frequent) {
				t.Fatalf("count=%d: frequent set grew: %d > %d",
					count, len(res.Frequent), len(prev.Frequent))
			}
			for _, f := range res.Frequent {
				sup, ok := prev.Support(f.Items)
				if !ok || sup != f.Support {
					t.Fatalf("count=%d: itemset %v changed support", count, f.Items)
				}
			}
		}
		prev = res
	}
}
