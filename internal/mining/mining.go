// Package mining implements the paper's frequent spatial pattern miners:
// classic Apriori (the baseline), Apriori-KC (which removes candidate
// pairs listed in a background-knowledge dependency set Φ), and
// Apriori-KC+ (the paper's contribution: Apriori-KC plus removal of every
// candidate pair whose two predicates share the same relevant feature
// type). All pruning happens in pass k = 2, where the anti-monotone
// property guarantees no superset of a removed pair can ever be generated
// — Listing 1 of the paper.
//
// The package also generates association rules with the standard
// interestingness measures, and provides closed/maximal post-filters (the
// paper's future-work direction) and an aposteriori same-feature filter
// used by the filter-placement ablation.
package mining

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// Pair is an unordered pair of item names, used for the dependency set Φ.
type Pair struct {
	A, B string
}

// CountingStrategy selects how candidate supports are computed.
type CountingStrategy int

// Counting strategies. VerticalCounting intersects per-item row bitmaps
// (fast, the default); HorizontalCounting scans transactions per candidate
// exactly as Listing 1 of the paper does.
const (
	VerticalCounting CountingStrategy = iota
	HorizontalCounting
)

// String implements fmt.Stringer.
func (c CountingStrategy) String() string {
	switch c {
	case VerticalCounting:
		return "vertical"
	case HorizontalCounting:
		return "horizontal"
	}
	return fmt.Sprintf("mining.CountingStrategy(%d)", int(c))
}

// MarshalText implements encoding.TextMarshaler, so the strategy drops
// into flag.TextVar, JSON, or any config decoder.
func (c CountingStrategy) MarshalText() ([]byte, error) {
	switch c {
	case VerticalCounting, HorizontalCounting:
		return []byte(c.String()), nil
	}
	return nil, fmt.Errorf("mining: unknown counting strategy %d", int(c))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *CountingStrategy) UnmarshalText(text []byte) error {
	switch string(text) {
	case "vertical":
		*c = VerticalCounting
	case "horizontal":
		*c = HorizontalCounting
	default:
		return fmt.Errorf("mining: unknown counting strategy %q (want vertical or horizontal)", text)
	}
	return nil
}

// Config parameterises a mining run.
type Config struct {
	// MinSupport is the relative minimum support in (0, 1]. Ignored when
	// MinSupportCount is positive.
	MinSupport float64
	// MinSupportCount is the absolute minimum support count; overrides
	// MinSupport when positive.
	MinSupportCount int
	// Dependencies is Φ, the background-knowledge pairs removed from C2
	// (Apriori-KC). Pairs whose items do not occur in the data are
	// ignored.
	Dependencies []Pair
	// FilterSameFeature enables the Apriori-KC+ step: remove every C2
	// pair whose items are spatial predicates with the same feature type.
	FilterSameFeature bool
	// Counting selects the support-counting strategy.
	Counting CountingStrategy
	// MaxLen bounds the itemset size mined; 0 means unbounded.
	MaxLen int
	// Parallelism bounds the mining fan-out: vertical support counting
	// in the Apriori engines and the equivalence-class walk in Eclat
	// both shard over this many workers. 1 (or negative) is sequential,
	// 0 uses GOMAXPROCS. Results are identical at any setting.
	Parallelism int
}

// PassStat records one Apriori pass for the efficiency figures.
type PassStat struct {
	// K is the itemset size of the pass.
	K int
	// Candidates counts C_k before any filtering.
	Candidates int
	// PrunedDeps and PrunedSameFeature count pairs removed at k=2.
	PrunedDeps, PrunedSameFeature int
	// Frequent counts L_k.
	Frequent int
	// Duration is the wall-clock time of the pass.
	Duration time.Duration
}

// Event converts the pass statistics into an observability pass event.
func (p PassStat) Event() obs.PassEvent {
	return obs.PassEvent{
		K:                 p.K,
		Candidates:        p.Candidates,
		PrunedDeps:        p.PrunedDeps,
		PrunedSameFeature: p.PrunedSameFeature,
		Frequent:          p.Frequent,
		Duration:          p.Duration,
	}
}

// FrequentItemset couples an itemset with its absolute support count.
type FrequentItemset struct {
	Items   itemset.Itemset
	Support int
}

// Result is the outcome of a mining run.
type Result struct {
	// Frequent lists every frequent itemset of size >= 1, ordered by
	// size then lexicographically by item IDs.
	Frequent []FrequentItemset
	// Stats has one entry per executed pass.
	Stats []PassStat
	// MinSupportCount is the resolved absolute threshold.
	MinSupportCount int
	// NumTransactions is the database size.
	NumTransactions int
	// Duration is the total mining wall-clock time.
	Duration time.Duration
	// PrunedDeps / PrunedSameFeature total the k=2 removals.
	PrunedDeps, PrunedSameFeature int

	supportByKey map[string]int
}

// Support returns the absolute support count of a frequent itemset from
// the result, and whether the set is frequent. The lookup index is built
// lazily on first use (mining itself never needs it), so the first call
// is not safe for concurrent use.
func (r *Result) Support(s itemset.Itemset) (int, bool) {
	if r.supportByKey == nil {
		r.supportByKey = make(map[string]int, len(r.Frequent))
		for _, f := range r.Frequent {
			r.supportByKey[f.Items.Key()] = f.Support
		}
	}
	c, ok := r.supportByKey[s.Key()]
	return c, ok
}

// CountBySize returns a map from itemset size to the number of frequent
// itemsets of that size.
func (r *Result) CountBySize() map[int]int {
	out := make(map[int]int)
	for _, f := range r.Frequent {
		out[len(f.Items)]++
	}
	return out
}

// NumFrequent returns the number of frequent itemsets with at least
// minSize items; the paper reports sizes >= 2.
func (r *Result) NumFrequent(minSize int) int {
	n := 0
	for _, f := range r.Frequent {
		if len(f.Items) >= minSize {
			n++
		}
	}
	return n
}

// MaxLen returns the size of the largest frequent itemset.
func (r *Result) MaxLen() int {
	m := 0
	for _, f := range r.Frequent {
		if len(f.Items) > m {
			m = len(f.Items)
		}
	}
	return m
}

// Apriori runs the classic algorithm: no dependency filter, no
// same-feature filter.
func Apriori(db *itemset.DB, cfg Config) (*Result, error) {
	return AprioriContext(context.Background(), db, cfg)
}

// AprioriContext is Apriori honouring ctx cancellation/deadlines and
// emitting pass events to any obs.Trace attached to ctx.
func AprioriContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	cfg.Dependencies = nil
	cfg.FilterSameFeature = false
	return MineContext(ctx, db, cfg)
}

// AprioriKC runs Apriori with the dependency set Φ removed from C2.
func AprioriKC(db *itemset.DB, cfg Config) (*Result, error) {
	return AprioriKCContext(context.Background(), db, cfg)
}

// AprioriKCContext is AprioriKC honouring ctx cancellation/deadlines and
// emitting pass events to any obs.Trace attached to ctx.
func AprioriKCContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	cfg.FilterSameFeature = false
	return MineContext(ctx, db, cfg)
}

// AprioriKCPlus runs the paper's algorithm: Φ removal plus same-feature
// pair removal at k = 2.
func AprioriKCPlus(db *itemset.DB, cfg Config) (*Result, error) {
	return AprioriKCPlusContext(context.Background(), db, cfg)
}

// AprioriKCPlusContext is AprioriKCPlus honouring ctx
// cancellation/deadlines and emitting pass events to any obs.Trace
// attached to ctx.
func AprioriKCPlusContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	cfg.FilterSameFeature = true
	return MineContext(ctx, db, cfg)
}

// Mine is the generic engine behind the three named algorithms, following
// Listing 1 of the paper.
func Mine(db *itemset.DB, cfg Config) (*Result, error) {
	return MineContext(context.Background(), db, cfg)
}

// MineContext is Mine with cancellation and observability: ctx is checked
// between passes and periodically inside support counting (a cancelled
// run returns ctx.Err() promptly and discards partial output), and each
// pass is reported to the obs.Trace attached to ctx, if any.
func MineContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	minCount, err := resolveMinSupport(db, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(ctx)
	start := time.Now()
	if cfg.Counting == VerticalCounting {
		db.BuildTidsets()
	}
	res := &Result{
		MinSupportCount: minCount,
		NumTransactions: db.NumTransactions(),
	}
	depSet := buildDepSet(db.Dict, cfg.Dependencies)

	// Pass 1: large 1-predicate sets.
	pass1 := time.Now()
	counts := db.ItemCounts()
	// Ascending-ID iteration makes the level lexicographically sorted by
	// construction — the order aprioriGen's block join expects.
	var level []FrequentItemset
	for id, c := range counts {
		if c >= minCount {
			level = append(level, FrequentItemset{Items: itemset.Itemset{int32(id)}, Support: c})
		}
	}
	res.addLevel(level)
	stat1 := PassStat{K: 1, Candidates: db.Dict.Len(), Frequent: len(level), Duration: time.Since(pass1)}
	res.Stats = append(res.Stats, stat1)
	tr.Pass(stat1.Event())

	// DB projection for horizontal counting: drop infrequent items from
	// the rows once, so every later pass scans shorter rows and skips
	// those that cannot hold a k-candidate.
	var projRows []itemset.Itemset
	if cfg.Counting == HorizontalCounting {
		keep := make([]bool, db.Dict.Len())
		for id, c := range counts {
			keep[id] = c >= minCount
		}
		projRows = db.ProjectRows(keep)
	}

	for k := 2; len(level) > 0 && (cfg.MaxLen == 0 || k <= cfg.MaxLen); k++ {
		// Long low-support runs honour cancellation between passes.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		passStart := time.Now()
		stat := PassStat{K: k}

		candidates := aprioriGen(level)
		stat.Candidates = len(candidates)

		if k == 2 {
			candidates, stat.PrunedDeps, stat.PrunedSameFeature =
				filterPairs(db.Dict, candidates, depSet, cfg.FilterSameFeature)
			res.PrunedDeps = stat.PrunedDeps
			res.PrunedSameFeature = stat.PrunedSameFeature
		}

		var supports []int
		switch cfg.Counting {
		case VerticalCounting:
			supports = countVertical(ctx, db, candidates, cfg.Parallelism)
		case HorizontalCounting:
			supports = countHorizontal(ctx, projRows, candidates, k)
		default:
			return nil, fmt.Errorf("mining: unknown counting strategy %d", cfg.Counting)
		}
		// A cancellation inside the counters leaves partial supports;
		// discard them rather than emit a wrong level.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// aprioriGen emits candidates in lexicographic order and the
		// filters preserve it, so the next level is sorted by
		// construction.
		next := make([]FrequentItemset, 0, len(candidates))
		for i, c := range candidates {
			if supports[i] >= minCount {
				next = append(next, FrequentItemset{Items: c, Support: supports[i]})
			}
		}
		stat.Frequent = len(next)
		stat.Duration = time.Since(passStart)
		res.Stats = append(res.Stats, stat)
		tr.Pass(stat.Event())
		res.addLevel(next)
		level = next
	}
	res.Duration = time.Since(start)
	return res, nil
}

// minSupportEps is the relative tolerance of the MinSupport×N ceiling.
// Float64 multiplication is accurate to ~1e-16 relative, so 1e-9 is
// orders of magnitude wider than any rounding jitter while far smaller
// than the 1/N quantum that separates genuine thresholds.
const minSupportEps = 1e-9

// resolveMinSupport converts the configured threshold to an absolute
// count, validating the configuration.
func resolveMinSupport(db *itemset.DB, cfg Config) (int, error) {
	if db.NumTransactions() == 0 {
		return 0, fmt.Errorf("mining: empty database")
	}
	if cfg.MinSupportCount > 0 {
		return cfg.MinSupportCount, nil
	}
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return 0, fmt.Errorf("mining: MinSupport must be in (0, 1], got %v", cfg.MinSupport)
	}
	// Ceiling: a set is frequent when support/N >= MinSupport. The
	// ceiling must be epsilon-tolerant: binary-float jitter in the
	// product (0.1×30 = 3.0000000000000004) would otherwise inflate the
	// threshold by one and silently drop itemsets the paper's
	// support/N >= minsup definition counts as frequent.
	n := float64(db.NumTransactions())
	v := cfg.MinSupport * n
	count := int(math.Ceil(v - v*minSupportEps))
	if count < 1 {
		count = 1
	}
	return count, nil
}

// buildDepSet resolves the Φ pairs to interned ID pairs. Unknown items are
// skipped (they cannot occur in any candidate anyway).
func buildDepSet(d *itemset.Dictionary, deps []Pair) map[[2]int32]struct{} {
	if len(deps) == 0 {
		return nil
	}
	set := make(map[[2]int32]struct{}, len(deps))
	for _, p := range deps {
		a, okA := d.Lookup(p.A)
		b, okB := d.Lookup(p.B)
		if !okA || !okB {
			continue
		}
		if a > b {
			a, b = b, a
		}
		set[[2]int32{a, b}] = struct{}{}
	}
	return set
}

// filterPairs applies the k=2 filters of Apriori-KC (Φ) and Apriori-KC+
// (same feature type), returning the surviving candidates and the two
// removal counts.
func filterPairs(d *itemset.Dictionary, candidates []itemset.Itemset, deps map[[2]int32]struct{}, sameFeature bool) ([]itemset.Itemset, int, int) {
	out := candidates[:0]
	prunedDeps, prunedSame := 0, 0
	for _, c := range candidates {
		if len(deps) > 0 {
			key := [2]int32{c[0], c[1]}
			if _, dep := deps[key]; dep {
				prunedDeps++
				continue
			}
		}
		if sameFeature && d.SameFeatureType(c[0], c[1]) {
			prunedSame++
			continue
		}
		out = append(out, c)
	}
	return out, prunedDeps, prunedSame
}

// aprioriGen produces C_k from L_{k-1}: the join of prefix-sharing pairs
// followed by the subset prune (every (k-1)-subset must be frequent).
// The level is sorted lexicographically, so equal-(k-2)-prefix itemsets
// form contiguous blocks and the join runs block-locally — O(Σ block²)
// pairs instead of O(L²). The subset prune hashes the level's itemsets
// to integers (no Key() strings, no subset copies); a hash collision can
// only admit an extra candidate whose support count then rejects it, so
// results are unaffected. Candidates come out in lexicographic order,
// carved from a chunked arena (one allocation per ~thousand candidates).
func aprioriGen(level []FrequentItemset) []itemset.Itemset {
	if len(level) == 0 {
		return nil
	}
	n := len(level[0].Items) // k-1
	var prev map[uint64]struct{}
	if n >= 2 { // the k=2 join needs no subset prune
		prev = make(map[uint64]struct{}, len(level))
		for _, f := range level {
			prev[hashItems(f.Items, -1)] = struct{}{}
		}
	}
	var out []itemset.Itemset
	var arena []int32
	cand := make(itemset.Itemset, n+1) // join scratch, copied only on survival
	for bs := 0; bs < len(level); {
		// The block is the run sharing the first k-2 items.
		be := bs + 1
		for be < len(level) && equalPrefix(level[bs].Items, level[be].Items, n-1) {
			be++
		}
		for i := bs; i < be; i++ {
			copy(cand, level[i].Items)
			for j := i + 1; j < be; j++ {
				cand[n] = level[j].Items[n-1]
				if allSubsetsInLevel(cand, prev) {
					if len(arena)+n+1 > cap(arena) {
						arena = make([]int32, 0, 1024*(n+1))
					}
					s := len(arena)
					arena = append(arena, cand...)
					out = append(out, itemset.Itemset(arena[s:len(arena):len(arena)]))
				}
			}
		}
		bs = be
	}
	return out
}

// equalPrefix reports whether the first p items of a and b match.
func equalPrefix(a, b itemset.Itemset, p int) bool {
	for i := 0; i < p; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashItems is FNV-1a over the items, skipping the drop index (-1 keeps
// all items) — the (k-1)-subset hash without building the subset.
func hashItems(s itemset.Itemset, drop int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, v := range s {
		if i == drop {
			continue
		}
		h ^= uint64(uint32(v))
		h *= prime64
	}
	return h
}

// allSubsetsInLevel implements the Apriori prune step for a candidate of
// size k: every (k-1)-subset must appear in the previous level. The two
// subsets dropping one of the candidate's last two items are its join
// parents — frequent by construction — so only the first k-2 drop
// positions are probed.
func allSubsetsInLevel(c itemset.Itemset, prev map[uint64]struct{}) bool {
	if len(c) <= 2 {
		return true
	}
	for drop := 0; drop < len(c)-2; drop++ {
		if _, ok := prev[hashItems(c, drop)]; !ok {
			return false
		}
	}
	return true
}

// compareItems orders itemsets lexicographically by IDs, shorter first
// on equal prefixes — the sortLevel order.
func compareItems(a, b itemset.Itemset) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// cancelCheckStride bounds how many hot-loop iterations run between
// ctx.Err() checks: rare enough to be free, frequent enough that a
// cancelled pass stops promptly.
const cancelCheckStride = 256

// countVertical computes candidate supports with a prefix-cached
// vertical counter, fanning large candidate sets out over a worker pool
// (candidates are independent, and each worker's contiguous chunk of the
// sorted stream keeps its own counter's prefix cache warm). A cancelled
// ctx makes the counters bail out early; the caller must check ctx
// before using the (then partial) supports.
func countVertical(ctx context.Context, db *itemset.DB, candidates []itemset.Itemset, parallelism int) []int {
	supports := make([]int, len(candidates))
	workers := parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Below a few hundred candidates the goroutine overhead dominates.
	if workers <= 1 || len(candidates) < 256 {
		vc := db.NewVerticalCounter()
		for i, c := range candidates {
			if i%cancelCheckStride == 0 && ctx.Err() != nil {
				return supports
			}
			supports[i] = vc.Support(c)
		}
		return supports
	}
	var wg sync.WaitGroup
	chunk := (len(candidates) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(candidates) {
			break
		}
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			vc := db.NewVerticalCounter()
			for i := lo; i < hi; i++ {
				if (i-lo)%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				supports[i] = vc.Support(candidates[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return supports
}

// countHorizontal computes candidate supports with one scan over the
// (projected) rows, testing each candidate per row — the subset() loop
// of Listing 1. Rows shorter than k cannot contain a k-candidate and are
// skipped. Cancellation is checked per row; the caller must check ctx
// before using the (then partial) supports.
func countHorizontal(ctx context.Context, rows []itemset.Itemset, candidates []itemset.Itemset, k int) []int {
	supports := make([]int, len(candidates))
	for ri, row := range rows {
		if ri%cancelCheckStride == 0 && ctx.Err() != nil {
			return supports
		}
		if len(row) < k {
			continue
		}
		for i, c := range candidates {
			if row.ContainsAll(c) {
				supports[i]++
			}
		}
	}
	return supports
}

// addLevel appends a pass's frequent sets to the result; the support
// index is built lazily by Result.Support.
func (r *Result) addLevel(level []FrequentItemset) {
	r.Frequent = append(r.Frequent, level...)
}
