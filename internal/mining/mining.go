// Package mining implements the paper's frequent spatial pattern miners:
// classic Apriori (the baseline), Apriori-KC (which removes candidate
// pairs listed in a background-knowledge dependency set Φ), and
// Apriori-KC+ (the paper's contribution: Apriori-KC plus removal of every
// candidate pair whose two predicates share the same relevant feature
// type). All pruning happens in pass k = 2, where the anti-monotone
// property guarantees no superset of a removed pair can ever be generated
// — Listing 1 of the paper.
//
// The package also generates association rules with the standard
// interestingness measures, and provides closed/maximal post-filters (the
// paper's future-work direction) and an aposteriori same-feature filter
// used by the filter-placement ablation.
package mining

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// Pair is an unordered pair of item names, used for the dependency set Φ.
type Pair struct {
	A, B string
}

// CountingStrategy selects how candidate supports are computed.
type CountingStrategy int

// Counting strategies. VerticalCounting intersects per-item row bitmaps
// (fast, the default); HorizontalCounting scans transactions per candidate
// exactly as Listing 1 of the paper does.
const (
	VerticalCounting CountingStrategy = iota
	HorizontalCounting
)

// Config parameterises a mining run.
type Config struct {
	// MinSupport is the relative minimum support in (0, 1]. Ignored when
	// MinSupportCount is positive.
	MinSupport float64
	// MinSupportCount is the absolute minimum support count; overrides
	// MinSupport when positive.
	MinSupportCount int
	// Dependencies is Φ, the background-knowledge pairs removed from C2
	// (Apriori-KC). Pairs whose items do not occur in the data are
	// ignored.
	Dependencies []Pair
	// FilterSameFeature enables the Apriori-KC+ step: remove every C2
	// pair whose items are spatial predicates with the same feature type.
	FilterSameFeature bool
	// Counting selects the support-counting strategy.
	Counting CountingStrategy
	// MaxLen bounds the itemset size mined; 0 means unbounded.
	MaxLen int
	// Parallelism bounds concurrent support counting with the vertical
	// strategy: 1 (or negative) is sequential, 0 uses GOMAXPROCS.
	// Results are identical at any setting.
	Parallelism int
}

// PassStat records one Apriori pass for the efficiency figures.
type PassStat struct {
	// K is the itemset size of the pass.
	K int
	// Candidates counts C_k before any filtering.
	Candidates int
	// PrunedDeps and PrunedSameFeature count pairs removed at k=2.
	PrunedDeps, PrunedSameFeature int
	// Frequent counts L_k.
	Frequent int
	// Duration is the wall-clock time of the pass.
	Duration time.Duration
}

// Event converts the pass statistics into an observability pass event.
func (p PassStat) Event() obs.PassEvent {
	return obs.PassEvent{
		K:                 p.K,
		Candidates:        p.Candidates,
		PrunedDeps:        p.PrunedDeps,
		PrunedSameFeature: p.PrunedSameFeature,
		Frequent:          p.Frequent,
		Duration:          p.Duration,
	}
}

// FrequentItemset couples an itemset with its absolute support count.
type FrequentItemset struct {
	Items   itemset.Itemset
	Support int
}

// Result is the outcome of a mining run.
type Result struct {
	// Frequent lists every frequent itemset of size >= 1, ordered by
	// size then lexicographically by item IDs.
	Frequent []FrequentItemset
	// Stats has one entry per executed pass.
	Stats []PassStat
	// MinSupportCount is the resolved absolute threshold.
	MinSupportCount int
	// NumTransactions is the database size.
	NumTransactions int
	// Duration is the total mining wall-clock time.
	Duration time.Duration
	// PrunedDeps / PrunedSameFeature total the k=2 removals.
	PrunedDeps, PrunedSameFeature int

	supportByKey map[string]int
}

// Support returns the absolute support count of a frequent itemset from
// the result, and whether the set is frequent.
func (r *Result) Support(s itemset.Itemset) (int, bool) {
	c, ok := r.supportByKey[s.Key()]
	return c, ok
}

// CountBySize returns a map from itemset size to the number of frequent
// itemsets of that size.
func (r *Result) CountBySize() map[int]int {
	out := make(map[int]int)
	for _, f := range r.Frequent {
		out[len(f.Items)]++
	}
	return out
}

// NumFrequent returns the number of frequent itemsets with at least
// minSize items; the paper reports sizes >= 2.
func (r *Result) NumFrequent(minSize int) int {
	n := 0
	for _, f := range r.Frequent {
		if len(f.Items) >= minSize {
			n++
		}
	}
	return n
}

// MaxLen returns the size of the largest frequent itemset.
func (r *Result) MaxLen() int {
	m := 0
	for _, f := range r.Frequent {
		if len(f.Items) > m {
			m = len(f.Items)
		}
	}
	return m
}

// Apriori runs the classic algorithm: no dependency filter, no
// same-feature filter.
func Apriori(db *itemset.DB, cfg Config) (*Result, error) {
	return AprioriContext(context.Background(), db, cfg)
}

// AprioriContext is Apriori honouring ctx cancellation/deadlines and
// emitting pass events to any obs.Trace attached to ctx.
func AprioriContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	cfg.Dependencies = nil
	cfg.FilterSameFeature = false
	return MineContext(ctx, db, cfg)
}

// AprioriKC runs Apriori with the dependency set Φ removed from C2.
func AprioriKC(db *itemset.DB, cfg Config) (*Result, error) {
	return AprioriKCContext(context.Background(), db, cfg)
}

// AprioriKCContext is AprioriKC honouring ctx cancellation/deadlines and
// emitting pass events to any obs.Trace attached to ctx.
func AprioriKCContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	cfg.FilterSameFeature = false
	return MineContext(ctx, db, cfg)
}

// AprioriKCPlus runs the paper's algorithm: Φ removal plus same-feature
// pair removal at k = 2.
func AprioriKCPlus(db *itemset.DB, cfg Config) (*Result, error) {
	return AprioriKCPlusContext(context.Background(), db, cfg)
}

// AprioriKCPlusContext is AprioriKCPlus honouring ctx
// cancellation/deadlines and emitting pass events to any obs.Trace
// attached to ctx.
func AprioriKCPlusContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	cfg.FilterSameFeature = true
	return MineContext(ctx, db, cfg)
}

// Mine is the generic engine behind the three named algorithms, following
// Listing 1 of the paper.
func Mine(db *itemset.DB, cfg Config) (*Result, error) {
	return MineContext(context.Background(), db, cfg)
}

// MineContext is Mine with cancellation and observability: ctx is checked
// between passes and periodically inside support counting (a cancelled
// run returns ctx.Err() promptly and discards partial output), and each
// pass is reported to the obs.Trace attached to ctx, if any.
func MineContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	minCount, err := resolveMinSupport(db, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(ctx)
	start := time.Now()
	if cfg.Counting == VerticalCounting {
		db.BuildTidsets()
	}
	res := &Result{
		MinSupportCount: minCount,
		NumTransactions: db.NumTransactions(),
		supportByKey:    make(map[string]int),
	}
	depSet := buildDepSet(db.Dict, cfg.Dependencies)

	// Pass 1: large 1-predicate sets.
	pass1 := time.Now()
	counts := db.ItemCounts()
	var level []FrequentItemset
	for id, c := range counts {
		if c >= minCount {
			level = append(level, FrequentItemset{Items: itemset.Itemset{int32(id)}, Support: c})
		}
	}
	sortLevel(level)
	res.addLevel(level)
	stat1 := PassStat{K: 1, Candidates: db.Dict.Len(), Frequent: len(level), Duration: time.Since(pass1)}
	res.Stats = append(res.Stats, stat1)
	tr.Pass(stat1.Event())

	for k := 2; len(level) > 0 && (cfg.MaxLen == 0 || k <= cfg.MaxLen); k++ {
		// Long low-support runs honour cancellation between passes.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		passStart := time.Now()
		stat := PassStat{K: k}

		candidates := aprioriGen(level)
		stat.Candidates = len(candidates)

		if k == 2 {
			candidates, stat.PrunedDeps, stat.PrunedSameFeature =
				filterPairs(db.Dict, candidates, depSet, cfg.FilterSameFeature)
			res.PrunedDeps = stat.PrunedDeps
			res.PrunedSameFeature = stat.PrunedSameFeature
		}

		var supports []int
		switch cfg.Counting {
		case VerticalCounting:
			supports = countVertical(ctx, db, candidates, cfg.Parallelism)
		case HorizontalCounting:
			supports = countHorizontal(ctx, db, candidates)
		default:
			return nil, fmt.Errorf("mining: unknown counting strategy %d", cfg.Counting)
		}
		// A cancellation inside the counters leaves partial supports;
		// discard them rather than emit a wrong level.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := make([]FrequentItemset, 0, len(candidates))
		for i, c := range candidates {
			if supports[i] >= minCount {
				next = append(next, FrequentItemset{Items: c, Support: supports[i]})
			}
		}
		sortLevel(next)
		stat.Frequent = len(next)
		stat.Duration = time.Since(passStart)
		res.Stats = append(res.Stats, stat)
		tr.Pass(stat.Event())
		res.addLevel(next)
		level = next
	}
	res.Duration = time.Since(start)
	return res, nil
}

// resolveMinSupport converts the configured threshold to an absolute
// count, validating the configuration.
func resolveMinSupport(db *itemset.DB, cfg Config) (int, error) {
	if db.NumTransactions() == 0 {
		return 0, fmt.Errorf("mining: empty database")
	}
	if cfg.MinSupportCount > 0 {
		return cfg.MinSupportCount, nil
	}
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return 0, fmt.Errorf("mining: MinSupport must be in (0, 1], got %v", cfg.MinSupport)
	}
	// Ceiling: a set is frequent when support/N >= MinSupport.
	n := float64(db.NumTransactions())
	count := int(cfg.MinSupport * n)
	if float64(count) < cfg.MinSupport*n {
		count++
	}
	if count < 1 {
		count = 1
	}
	return count, nil
}

// buildDepSet resolves the Φ pairs to interned ID pairs. Unknown items are
// skipped (they cannot occur in any candidate anyway).
func buildDepSet(d *itemset.Dictionary, deps []Pair) map[[2]int32]struct{} {
	if len(deps) == 0 {
		return nil
	}
	set := make(map[[2]int32]struct{}, len(deps))
	for _, p := range deps {
		a, okA := d.Lookup(p.A)
		b, okB := d.Lookup(p.B)
		if !okA || !okB {
			continue
		}
		if a > b {
			a, b = b, a
		}
		set[[2]int32{a, b}] = struct{}{}
	}
	return set
}

// filterPairs applies the k=2 filters of Apriori-KC (Φ) and Apriori-KC+
// (same feature type), returning the surviving candidates and the two
// removal counts.
func filterPairs(d *itemset.Dictionary, candidates []itemset.Itemset, deps map[[2]int32]struct{}, sameFeature bool) ([]itemset.Itemset, int, int) {
	out := candidates[:0]
	prunedDeps, prunedSame := 0, 0
	for _, c := range candidates {
		if len(deps) > 0 {
			key := [2]int32{c[0], c[1]}
			if _, dep := deps[key]; dep {
				prunedDeps++
				continue
			}
		}
		if sameFeature && d.SameFeatureType(c[0], c[1]) {
			prunedSame++
			continue
		}
		out = append(out, c)
	}
	return out, prunedDeps, prunedSame
}

// aprioriGen produces C_k from L_{k-1}: the join of prefix-sharing pairs
// followed by the subset prune (every (k-1)-subset must be frequent).
func aprioriGen(level []FrequentItemset) []itemset.Itemset {
	prev := make(map[string]struct{}, len(level))
	for _, f := range level {
		prev[f.Items.Key()] = struct{}{}
	}
	var out []itemset.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			joined, ok := level[i].Items.JoinPrefix(level[j].Items)
			if !ok {
				// level is sorted lexicographically, so once the prefix
				// stops matching no later j can match either.
				break
			}
			if allSubsetsFrequent(joined, prev) {
				out = append(out, joined)
			}
		}
	}
	return out
}

// allSubsetsFrequent implements the Apriori prune step.
func allSubsetsFrequent(c itemset.Itemset, prev map[string]struct{}) bool {
	if len(c) <= 2 {
		return true // both 1-subsets are frequent by construction
	}
	for i := range c {
		if _, ok := prev[c.Without(i).Key()]; !ok {
			return false
		}
	}
	return true
}

// cancelCheckStride bounds how many hot-loop iterations run between
// ctx.Err() checks: rare enough to be free, frequent enough that a
// cancelled pass stops promptly.
const cancelCheckStride = 256

// countVertical computes candidate supports by tidset intersection,
// fanning large candidate sets out over a worker pool (candidates are
// independent). A cancelled ctx makes the counters bail out early; the
// caller must check ctx before using the (then partial) supports.
func countVertical(ctx context.Context, db *itemset.DB, candidates []itemset.Itemset, parallelism int) []int {
	supports := make([]int, len(candidates))
	workers := parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Below a few hundred candidates the goroutine overhead dominates.
	if workers <= 1 || len(candidates) < 256 {
		for i, c := range candidates {
			if i%cancelCheckStride == 0 && ctx.Err() != nil {
				return supports
			}
			supports[i] = db.SupportVertical(c)
		}
		return supports
	}
	var wg sync.WaitGroup
	chunk := (len(candidates) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(candidates) {
			break
		}
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				supports[i] = db.SupportVertical(candidates[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return supports
}

// countHorizontal computes candidate supports with one scan over the
// rows, testing each candidate per row — the subset() loop of Listing 1.
// Cancellation is checked per row; the caller must check ctx before
// using the (then partial) supports.
func countHorizontal(ctx context.Context, db *itemset.DB, candidates []itemset.Itemset) []int {
	supports := make([]int, len(candidates))
	for ri, row := range db.Rows {
		if ri%cancelCheckStride == 0 && ctx.Err() != nil {
			return supports
		}
		for i, c := range candidates {
			if row.ContainsAll(c) {
				supports[i]++
			}
		}
	}
	return supports
}

// sortLevel orders itemsets lexicographically by IDs — the order
// aprioriGen's prefix join expects.
func sortLevel(level []FrequentItemset) {
	sort.Slice(level, func(i, j int) bool {
		a, b := level[i].Items, level[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// addLevel appends a pass's frequent sets to the result and indexes their
// supports.
func (r *Result) addLevel(level []FrequentItemset) {
	for _, f := range level {
		r.supportByKey[f.Items.Key()] = f.Support
	}
	r.Frequent = append(r.Frequent, level...)
}
