package mining

import (
	"math"
	"testing"

	"repro/internal/itemset"
)

// measureFixture mines the rulesDB (see rules_test.go) and returns the
// result plus interned itemsets for a, b, c.
func measureFixture(t *testing.T) (*Result, itemset.Itemset, itemset.Itemset, itemset.Itemset) {
	t.Helper()
	db := rulesDB()
	res, err := Apriori(db, Config{MinSupport: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.Dict.Lookup("a")
	b, _ := db.Dict.Lookup("b")
	c, _ := db.Dict.Lookup("c")
	return res, itemset.NewItemset(a), itemset.NewItemset(b), itemset.NewItemset(c)
}

func TestMeasureValuesHandComputed(t *testing.T) {
	// rulesDB: N=4; sup(a)=3, sup(b)=2, sup(c)=4, sup(ab)=2, sup(bc)=2.
	res, a, b, _ := measureFixture(t)
	cases := []struct {
		m    Measure
		want float64
	}{
		{MeasureSupport, 0.5},          // 2/4
		{MeasureConfidence, 2.0 / 3.0}, // ab/a
		{MeasureLift, (2.0 / 3) / 0.5}, // conf / (sup(b)/N)
		{MeasureLeverage, 0.5 - 0.75*0.5},
		{MeasureConviction, (1 - 0.5) / (1 - 2.0/3)},
		{MeasureJaccard, 2.0 / 3.0}, // 2/(3+2-2)
		{MeasureCosine, 2 / math.Sqrt(6)},
		{MeasureKulczynski, (2.0/3 + 1.0) / 2},
		{MeasureAllConfidence, 2.0 / 3.0}, // 2/max(3,2)
	}
	for _, tc := range cases {
		got, err := Evaluate(tc.m, res, a, b)
		if err != nil {
			t.Fatalf("%v: %v", tc.m, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v(a->b) = %v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestMeasurePhi(t *testing.T) {
	// φ for a->b: (N·ac − a·c)/sqrt(a·c·(N−a)·(N−c))
	// = (4·2 − 3·2)/sqrt(3·2·1·2) = 2/sqrt(12).
	res, a, b, _ := measureFixture(t)
	got, err := Evaluate(MeasurePhi, res, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / math.Sqrt(12)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("phi = %v, want %v", got, want)
	}
}

func TestMeasureConvictionExactRule(t *testing.T) {
	// b -> a has confidence 1: conviction +Inf.
	res, a, b, _ := measureFixture(t)
	got, err := Evaluate(MeasureConviction, res, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("conviction of exact rule = %v", got)
	}
}

func TestMeasurePhiDegenerate(t *testing.T) {
	// c is in every transaction: N−c = 0 → zero denominator → 0.
	res, a, _, c := measureFixture(t)
	got, err := Evaluate(MeasurePhi, res, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("degenerate phi = %v, want 0", got)
	}
}

func TestEvaluateErrors(t *testing.T) {
	res, a, _, _ := measureFixture(t)
	bogus := itemset.NewItemset(99)
	if _, err := Evaluate(MeasureLift, res, a, bogus); err == nil {
		t.Error("non-frequent part should fail")
	}
	if _, err := Evaluate(Measure(99), res, a, a); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestMeasureStrings(t *testing.T) {
	for _, m := range AllMeasures() {
		if s := m.String(); s == "" || s[0] == 'm' && s != "mining.Measure(99)" && false {
			t.Errorf("measure string %q", s)
		}
	}
	if len(AllMeasures()) != 10 {
		t.Errorf("AllMeasures = %d entries", len(AllMeasures()))
	}
	if Measure(99).String() != "mining.Measure(99)" {
		t.Error("unknown measure string")
	}
}

func TestRankRules(t *testing.T) {
	db := rulesDB()
	res, err := Apriori(db, Config{MinSupport: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rules := GenerateRules(res, 0)
	ranked := RankRules(MeasureLift, res, rules)
	if len(ranked) != len(rules) {
		t.Fatalf("ranked %d of %d rules", len(ranked), len(rules))
	}
	var prev float64 = math.Inf(1)
	for _, r := range ranked {
		v, err := Evaluate(MeasureLift, res, r.Antecedent, r.Consequent)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-12 {
			t.Fatalf("ranking not descending: %v after %v", v, prev)
		}
		prev = v
	}
}

// TestMeasuresCannotFilterSameFeaturePatterns demonstrates the paper's
// core argument against measure-based filtering: the meaningless rule
// contains_slum -> touches_slum scores as well as (here: identically to)
// the meaningful cross-feature rule contains_slum -> touches_school on
// every objective measure, so no threshold can remove one and keep the
// other. Only the qualitative same-feature reasoning of Apriori-KC+
// separates them.
func TestMeasuresCannotFilterSameFeaturePatterns(t *testing.T) {
	db := table2DB()
	res, err := Apriori(db, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cs := lookupSet(t, db.Dict, []string{"contains_slum"})
	ts := lookupSet(t, db.Dict, []string{"touches_slum"})
	tsch := lookupSet(t, db.Dict, []string{"touches_school"})
	for _, m := range AllMeasures() {
		meaningless, err := Evaluate(m, res, cs, ts)
		if err != nil {
			t.Fatal(err)
		}
		meaningful, err := Evaluate(m, res, cs, tsch)
		if err != nil {
			t.Fatal(err)
		}
		// In the Table 2 reconstruction touches_slum and touches_school
		// do not have identical supports... but both rules are
		// well-supported: no measure sends the meaningless one to the
		// bottom. Assert it scores at least as high as half the
		// meaningful one (i.e. clearly not filterable).
		if !math.IsInf(meaningful, 1) && meaningless < meaningful/2 {
			t.Errorf("%v unexpectedly separates the patterns: %v vs %v", m, meaningless, meaningful)
		}
	}
}
