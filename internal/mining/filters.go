package mining

import "repro/internal/itemset"

// ClosedOnly filters a frequent-itemset list down to the closed sets:
// those with no frequent superset of identical support. This implements
// the redundancy elimination the paper cites from the closed-pattern
// literature ([4, 9, 19]) and names as future work for Apriori-KC+.
func ClosedOnly(freq []FrequentItemset) []FrequentItemset {
	out := make([]FrequentItemset, 0, len(freq))
	for i, f := range freq {
		closed := true
		for j, g := range freq {
			if i == j || len(g.Items) <= len(f.Items) {
				continue
			}
			if g.Support == f.Support && g.Items.ContainsAll(f.Items) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, f)
		}
	}
	return out
}

// MaximalOnly filters down to the maximal sets: those with no frequent
// superset at all — the most aggressive redundancy elimination.
func MaximalOnly(freq []FrequentItemset) []FrequentItemset {
	out := make([]FrequentItemset, 0, len(freq))
	for i, f := range freq {
		maximal := true
		for j, g := range freq {
			if i == j || len(g.Items) <= len(f.Items) {
				continue
			}
			if g.Items.ContainsAll(f.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, f)
		}
	}
	return out
}

// FilterSameFeaturePost removes every frequent itemset containing two
// spatial predicates over the same feature type — the aposteriori
// placement of the KC+ filter. Running standard Apriori and then this
// filter yields exactly the Apriori-KC+ frequent sets (the ablation
// benchmark measures what the apriori placement saves in compute); the
// equivalence is asserted by TestPostFilterEquivalence.
func FilterSameFeaturePost(freq []FrequentItemset, d *itemset.Dictionary) []FrequentItemset {
	out := make([]FrequentItemset, 0, len(freq))
	for _, f := range freq {
		if !f.Items.HasSameFeaturePair(d) {
			out = append(out, f)
		}
	}
	return out
}

// FilterDependenciesPost removes every frequent itemset containing a Φ
// pair — the aposteriori placement of the KC filter.
func FilterDependenciesPost(freq []FrequentItemset, d *itemset.Dictionary, deps []Pair) []FrequentItemset {
	depSet := buildDepSet(d, deps)
	if len(depSet) == 0 {
		return append([]FrequentItemset{}, freq...)
	}
	out := make([]FrequentItemset, 0, len(freq))
	for _, f := range freq {
		if !containsDepPair(f.Items, depSet) {
			out = append(out, f)
		}
	}
	return out
}

// containsDepPair reports whether any two members of s form a Φ pair.
func containsDepPair(s itemset.Itemset, deps map[[2]int32]struct{}) bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if _, ok := deps[[2]int32{s[i], s[j]}]; ok {
				return true
			}
		}
	}
	return false
}
