package mining

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

func TestEclatMatchesApriori(t *testing.T) {
	tables := map[string]*dataset.Table{
		"table1":         dataset.PortoAlegreTable(),
		"reconstruction": dataset.Table2Reconstruction(),
	}
	for name, table := range tables {
		for _, minsup := range []float64{0.17, 0.34, 0.5, 0.84} {
			db := itemset.NewDB(table)
			ap, err := Apriori(db, Config{MinSupport: minsup})
			if err != nil {
				t.Fatal(err)
			}
			ec, err := Eclat(db, Config{MinSupport: minsup})
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, name, ap, ec, db.Dict)
			resultsEqual(t, name+"/reverse", ec, ap, db.Dict)
		}
	}
}

func TestEclatKCPlusMatchesAprioriKCPlus(t *testing.T) {
	db := table2DB()
	cfg := Config{MinSupport: 0.5, FilterSameFeature: true,
		Dependencies: []Pair{{A: "contains_slum", B: "contains_school"}}}
	ap, err := Mine(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := Eclat(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "kc+", ap, ec, db.Dict)
	resultsEqual(t, "kc+/reverse", ec, ap, db.Dict)
	if ec.PrunedDeps != ap.PrunedDeps {
		t.Errorf("PrunedDeps: eclat %d vs apriori %d", ec.PrunedDeps, ap.PrunedDeps)
	}
	if ec.PrunedSameFeature != ap.PrunedSameFeature {
		t.Errorf("PrunedSameFeature: eclat %d vs apriori %d", ec.PrunedSameFeature, ap.PrunedSameFeature)
	}
}

func TestEclatBruteForce(t *testing.T) {
	// Ground-truth oracle: on small random tables Eclat must produce
	// exactly the itemsets found by exhaustive subset enumeration. The
	// random tables mix supports above and below the diffset switching
	// threshold, so both representations are exercised.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		table := randomTable(rng, 12, 8)
		db := itemset.NewDB(table)
		minsup := 0.25
		minCount, err := resolveMinSupport(db, Config{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		n := db.Dict.Len()
		truth := map[string]int{}
		for mask := 1; mask < 1<<uint(n); mask++ {
			var s itemset.Itemset
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					s = append(s, int32(i))
				}
			}
			if sup := db.SupportHorizontal(s); sup >= minCount {
				truth[s.Key()] = sup
			}
		}
		res, err := Eclat(db, Config{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Frequent) != len(truth) {
			t.Errorf("trial %d: %d itemsets, truth %d", trial, len(res.Frequent), len(truth))
		}
		for _, f := range res.Frequent {
			sup, ok := truth[f.Items.Key()]
			if !ok {
				t.Errorf("trial %d: spurious %s", trial, f.Items.Format(db.Dict))
				continue
			}
			if sup != f.Support {
				t.Errorf("trial %d: support %d, truth %d for %s",
					trial, f.Support, sup, f.Items.Format(db.Dict))
			}
		}
	}
}

func TestEclatMaxLen(t *testing.T) {
	db := table2DB()
	for _, maxLen := range []int{1, 2, 3} {
		ap, err := Apriori(db, Config{MinSupport: 0.34, MaxLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		ec, err := Eclat(db, Config{MinSupport: 0.34, MaxLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		if ec.MaxLen() > maxLen {
			t.Errorf("MaxLen %d: eclat emitted size-%d itemset", maxLen, ec.MaxLen())
		}
		resultsEqual(t, "maxlen", ap, ec, db.Dict)
		resultsEqual(t, "maxlen/reverse", ec, ap, db.Dict)
	}
}

func TestEclatSupportLookupAndStats(t *testing.T) {
	db := table2DB()
	res, err := Eclat(db, Config{MinSupport: 0.34})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Frequent {
		if sup, ok := res.Support(f.Items); !ok || sup != f.Support {
			t.Errorf("Support(%s) = %d,%v want %d", f.Items.Format(db.Dict), sup, ok, f.Support)
		}
	}
	bySize := res.CountBySize()
	if len(res.Stats) != res.MaxLen() {
		t.Fatalf("stats: %d entries, max len %d", len(res.Stats), res.MaxLen())
	}
	for _, s := range res.Stats {
		if s.Frequent != bySize[s.K] {
			t.Errorf("pass %d: stat %d vs counted %d", s.K, s.Frequent, bySize[s.K])
		}
	}
}

func TestEclatErrorsAndCancellation(t *testing.T) {
	db := paperDB()
	if _, err := Eclat(db, Config{}); err == nil {
		t.Error("zero minsup should fail")
	}
	empty := itemset.NewDB(dataset.NewTable(nil))
	if _, err := Eclat(empty, Config{MinSupport: 0.5}); err == nil {
		t.Error("empty database should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EclatContext(ctx, db, Config{MinSupport: 0.17}); err != context.Canceled {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}
