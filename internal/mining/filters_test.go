package mining

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

func TestClosedOnly(t *testing.T) {
	// Classic example: b occurs only with a, so {b} is not closed
	// ({a, b} has the same support) but {a} is (support 3 > 2).
	db := itemset.NewDB(dataset.NewTable([]dataset.Transaction{
		{RefID: "1", Items: []string{"a", "b"}},
		{RefID: "2", Items: []string{"a", "b"}},
		{RefID: "3", Items: []string{"a"}},
	}))
	res, err := Apriori(db, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	closed := ClosedOnly(res.Frequent)
	keys := map[string]bool{}
	for _, f := range closed {
		keys[f.Items.Format(db.Dict)] = true
	}
	if !keys["{a}"] {
		t.Error("{a} must be closed (support 3)")
	}
	if keys["{b}"] {
		t.Error("{b} must not be closed ({a, b} has equal support)")
	}
	if !keys["{a, b}"] {
		t.Error("{a, b} must be closed")
	}
}

func TestMaximalOnly(t *testing.T) {
	db := table2DB()
	res, err := Apriori(db, cfg50())
	if err != nil {
		t.Fatal(err)
	}
	maximal := MaximalOnly(res.Frequent)
	// Every maximal set must have no frequent superset; every frequent
	// set must be a subset of some maximal set.
	for _, m := range maximal {
		for _, f := range res.Frequent {
			if len(f.Items) > len(m.Items) && f.Items.ContainsAll(m.Items) {
				t.Errorf("maximal set %s has frequent superset %s",
					m.Items.Format(db.Dict), f.Items.Format(db.Dict))
			}
		}
	}
	for _, f := range res.Frequent {
		covered := false
		for _, m := range maximal {
			if m.Items.ContainsAll(f.Items) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("frequent set %s not covered by any maximal set", f.Items.Format(db.Dict))
		}
	}
	// The Table 2 reconstruction has exactly 2 maximal sets: the big
	// 6-set and {contains_slum, touches_slum, touches_school}.
	if len(maximal) != 2 {
		t.Errorf("maximal sets = %d, want 2", len(maximal))
	}
}

func TestClosedSubsumesMaximal(t *testing.T) {
	// Property: every maximal itemset is closed, and
	// maximal <= closed <= all.
	db := table2DB()
	res, _ := Apriori(db, Config{MinSupport: 0.34})
	closed := ClosedOnly(res.Frequent)
	maximal := MaximalOnly(res.Frequent)
	if len(maximal) > len(closed) || len(closed) > len(res.Frequent) {
		t.Fatalf("sizes: maximal %d, closed %d, all %d", len(maximal), len(closed), len(res.Frequent))
	}
	closedKeys := map[string]bool{}
	for _, f := range closed {
		closedKeys[f.Items.Key()] = true
	}
	for _, m := range maximal {
		if !closedKeys[m.Items.Key()] {
			t.Errorf("maximal set %s not closed", m.Items.Format(db.Dict))
		}
	}
}

func TestFilterDependenciesPostEmptyDeps(t *testing.T) {
	db := table2DB()
	res, _ := Apriori(db, cfg50())
	out := FilterDependenciesPost(res.Frequent, db.Dict, nil)
	if len(out) != len(res.Frequent) {
		t.Error("empty Φ must be a no-op copy")
	}
	// The copy must be independent.
	if len(out) > 0 {
		out[0].Support = -1
		if res.Frequent[0].Support == -1 {
			t.Error("post filter aliases the input slice")
		}
	}
}

func TestFilterSameFeaturePostCounts(t *testing.T) {
	db := table2DB()
	res, _ := Apriori(db, cfg50())
	filtered := FilterSameFeaturePost(res.Frequent, db.Dict)
	removed := len(res.Frequent) - len(filtered)
	// 30 same-feature itemsets of size >= 2 (size-1 sets never qualify).
	if removed != 30 {
		t.Errorf("post filter removed %d, want 30", removed)
	}
}
