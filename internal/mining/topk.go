package mining

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
)

// MineTopK returns (at least) the k highest-support frequent itemsets of
// size >= minSize without requiring the caller to guess a minimum
// support: the threshold starts at the database size and halves until
// enough itemsets qualify, then the result is trimmed to the support of
// the k-th itemset (so equal-support ties are all included). The cfg's
// filters (Φ, same-feature) apply as usual; cfg support settings are
// ignored.
//
// Top-k mining is the practical entry point when a user cannot name a
// support threshold — a common situation with spatial data, where
// predicate frequencies vary wildly between feature types (the paper's
// streets-vs-rivers remark at the end of Section 4.2).
func MineTopK(db *itemset.DB, cfg Config, k, minSize int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mining: k must be positive, got %d", k)
	}
	if minSize < 1 {
		minSize = 1
	}
	if db.NumTransactions() == 0 {
		return nil, fmt.Errorf("mining: empty database")
	}
	threshold := db.NumTransactions()
	var res *Result
	for {
		cfg.MinSupport = 0
		cfg.MinSupportCount = threshold
		var err error
		res, err = Mine(db, cfg)
		if err != nil {
			return nil, err
		}
		if res.NumFrequent(minSize) >= k || threshold == 1 {
			break
		}
		threshold /= 2
		if threshold < 1 {
			threshold = 1
		}
	}
	// Collect qualifying itemsets, best-support first.
	qualifying := make([]FrequentItemset, 0, res.NumFrequent(minSize))
	for _, f := range res.Frequent {
		if len(f.Items) >= minSize {
			qualifying = append(qualifying, f)
		}
	}
	sort.SliceStable(qualifying, func(i, j int) bool {
		return qualifying[i].Support > qualifying[j].Support
	})
	if len(qualifying) > k {
		// Keep everything tied with the k-th support.
		cut := qualifying[k-1].Support
		end := k
		for end < len(qualifying) && qualifying[end].Support == cut {
			end++
		}
		qualifying = qualifying[:end]
	}
	// Rebuild the result view around the trimmed set (Support lookups
	// keep working for every mined itemset).
	res.Frequent = qualifying
	return res, nil
}
