package mining

import (
	"math"
	"sort"
	"strings"

	"repro/internal/itemset"
)

// Rule is an association rule A -> C with the standard interestingness
// measures. Support figures are relative (fractions of the database).
type Rule struct {
	Antecedent, Consequent itemset.Itemset
	// SupportCount is the absolute support of A ∪ C.
	SupportCount int
	// Support = sup(A ∪ C) / N.
	Support float64
	// Confidence = sup(A ∪ C) / sup(A).
	Confidence float64
	// Lift = confidence / (sup(C) / N); > 1 indicates positive
	// correlation.
	Lift float64
	// Leverage = sup(AC)/N − sup(A)/N · sup(C)/N.
	Leverage float64
	// Conviction = (1 − sup(C)/N) / (1 − confidence); +Inf for exact
	// rules.
	Conviction float64
}

// Format renders the rule in the paper's arrow notation.
func (r Rule) Format(d *itemset.Dictionary) string {
	return strings.TrimPrefix(r.Antecedent.Format(d), "") + " -> " + r.Consequent.Format(d)
}

// GenerateRules derives all association rules with confidence >= minConf
// from the frequent itemsets of a mining result. Rules are ordered by
// descending confidence, then descending support, then antecedent size.
func GenerateRules(res *Result, minConf float64) []Rule {
	n := float64(res.NumTransactions)
	var rules []Rule
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		for _, ante := range properSubsets(f.Items) {
			cons := f.Items.Minus(ante)
			anteSup, ok := res.Support(ante)
			if !ok || anteSup == 0 {
				continue
			}
			conf := float64(f.Support) / float64(anteSup)
			if conf < minConf {
				continue
			}
			consSup, ok := res.Support(cons)
			if !ok {
				continue
			}
			consFrac := float64(consSup) / n
			rule := Rule{
				Antecedent:   ante,
				Consequent:   cons,
				SupportCount: f.Support,
				Support:      float64(f.Support) / n,
				Confidence:   conf,
				Leverage:     float64(f.Support)/n - float64(anteSup)/n*consFrac,
			}
			if consFrac > 0 {
				rule.Lift = conf / consFrac
			}
			if conf < 1 {
				rule.Conviction = (1 - consFrac) / (1 - conf)
			} else {
				rule.Conviction = math.Inf(1)
			}
			rules = append(rules, rule)
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return len(rules[i].Antecedent) < len(rules[j].Antecedent)
	})
	return rules
}

// properSubsets enumerates the non-empty proper subsets of s. Sizes are
// bounded by frequent-itemset lengths, so the 2^n enumeration is fine.
func properSubsets(s itemset.Itemset) []itemset.Itemset {
	n := len(s)
	out := make([]itemset.Itemset, 0, (1<<n)-2)
	for mask := 1; mask < (1<<n)-1; mask++ {
		sub := make(itemset.Itemset, 0, n-1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, s[i])
			}
		}
		out = append(out, sub)
	}
	return out
}
