package mining

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

func TestNonRedundantRulesBasic(t *testing.T) {
	// Database where b occurs exactly when a does: rules {a}->{b} and
	// {a,c}->{b} have identical support/confidence on the c-rows, making
	// the longer antecedent redundant.
	db := itemset.NewDB(dataset.NewTable([]dataset.Transaction{
		{RefID: "1", Items: []string{"a", "b", "c"}},
		{RefID: "2", Items: []string{"a", "b", "c"}},
		{RefID: "3", Items: []string{"c"}},
	}))
	res, err := Apriori(db, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rules := GenerateRules(res, 0.9)
	filtered := NonRedundantRules(rules)
	if len(filtered) >= len(rules) {
		t.Fatalf("nothing filtered: %d -> %d", len(rules), len(filtered))
	}
	has := func(rs []Rule, ante, cons []string) bool {
		a := itemset.FromNames(db.Dict, ante...)
		c := itemset.FromNames(db.Dict, cons...)
		for _, r := range rs {
			if r.Antecedent.Equal(a) && r.Consequent.Equal(c) {
				return true
			}
		}
		return false
	}
	// The most general, most informative rule survives...
	if !has(filtered, []string{"a"}, []string{"b", "c"}) {
		t.Error("{a} -> {b,c} must survive")
	}
	// ...and its strictly weaker variants disappear.
	if has(filtered, []string{"a", "c"}, []string{"b"}) {
		t.Error("{a,c} -> {b} is redundant (same support/confidence as {a} -> {b,c})")
	}
	if has(filtered, []string{"a"}, []string{"b"}) {
		t.Error("{a} -> {b} is redundant (consequent of {a} -> {b,c} is larger)")
	}
}

func TestNonRedundantRulesKeepsDistinctQuality(t *testing.T) {
	// Rules with different confidence are never redundant w.r.t. each
	// other.
	db := rulesDB()
	res, err := Apriori(db, Config{MinSupport: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rules := GenerateRules(res, 0)
	filtered := NonRedundantRules(rules)
	find := func(rs []Rule, ante, cons []string) bool {
		a := itemset.FromNames(db.Dict, ante...)
		c := itemset.FromNames(db.Dict, cons...)
		for _, r := range rs {
			if r.Antecedent.Equal(a) && r.Consequent.Equal(c) {
				return true
			}
		}
		return false
	}
	// c->a (conf 0.75) is incomparable with the conf-1 rules: survives.
	if !find(filtered, []string{"c"}, []string{"a"}) {
		t.Error("c -> a must survive (distinct confidence)")
	}
	// b -> {a,c} (conf 1) survives; b -> a is redundant against it.
	if !find(filtered, []string{"b"}, []string{"a", "c"}) {
		t.Error("b -> {a,c} must survive")
	}
	if find(filtered, []string{"b"}, []string{"a"}) {
		t.Error("b -> a is redundant against b -> {a,c}")
	}
}

func TestNonRedundantRulesIdenticalDuplicates(t *testing.T) {
	// Exact duplicate rules must not eliminate each other (strictness
	// check); both survive.
	db := rulesDB()
	res, _ := Apriori(db, Config{MinSupport: 0.25})
	rules := GenerateRules(res, 0.99)
	doubled := append(append([]Rule{}, rules...), rules...)
	filtered := NonRedundantRules(doubled)
	if len(filtered) != 2*len(NonRedundantRules(rules)) {
		t.Errorf("duplicate handling wrong: %d vs %d", len(filtered), 2*len(NonRedundantRules(rules)))
	}
}

func TestNonRedundantEmpty(t *testing.T) {
	if got := NonRedundantRules(nil); len(got) != 0 {
		t.Error("empty input")
	}
}
