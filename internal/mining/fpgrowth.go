package mining

import (
	"context"
	"sort"
	"time"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// FPGrowth mines the same frequent itemsets as Apriori using the
// FP-growth algorithm (Han, Pei & Yin): a prefix-tree compression of the
// database followed by recursive conditional-tree projection. It serves
// two purposes here: an independent implementation that cross-checks the
// Apriori-family miners (TestFPGrowthMatchesApriori), and a faster engine
// for dense low-support workloads.
//
// The KC+ same-feature filter and the Φ dependency filter are applied as
// pattern filters during enumeration: a branch is cut as soon as its
// prefix contains a forbidden pair, which preserves the anti-monotone
// semantics of the k=2 candidate pruning in the Apriori formulation.
func FPGrowth(db *itemset.DB, cfg Config) (*Result, error) {
	return FPGrowthContext(context.Background(), db, cfg)
}

// FPGrowthContext is FPGrowth honouring ctx cancellation/deadlines
// (checked per header-table projection, so deep recursions stop
// promptly) and emitting per-size pass events to any obs.Trace attached
// to ctx. FP-growth generates no explicit candidate sets, so the
// synthesized pass stats report Candidates equal to Frequent; branch
// prunes from the Φ and same-feature filters are totalled on the k=2
// stat.
func FPGrowthContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	minCount, err := resolveMinSupport(db, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	tr := obs.FromContext(ctx)
	res := &Result{
		MinSupportCount: minCount,
		NumTransactions: db.NumTransactions(),
		supportByKey:    make(map[string]int),
	}
	deps := buildDepSet(db.Dict, cfg.Dependencies)

	// Pass 1: frequent single items, in descending support order (the
	// FP-tree insertion order).
	pass1 := time.Now()
	counts := db.ItemCounts()
	type itemCount struct {
		id    int32
		count int
	}
	var frequent []itemCount
	for id, c := range counts {
		if c >= minCount {
			frequent = append(frequent, itemCount{int32(id), c})
		}
	}
	sort.Slice(frequent, func(i, j int) bool {
		if frequent[i].count != frequent[j].count {
			return frequent[i].count > frequent[j].count
		}
		return frequent[i].id < frequent[j].id
	})
	order := make(map[int32]int, len(frequent)) // id -> insertion rank
	for rank, ic := range frequent {
		order[ic.id] = rank
	}

	// Build the FP-tree.
	tree := newFPTree(len(frequent))
	row := make([]int32, 0, 16)
	for _, tx := range db.Rows {
		row = row[:0]
		for _, id := range tx {
			if _, ok := order[id]; ok {
				row = append(row, id)
			}
		}
		sort.Slice(row, func(i, j int) bool { return order[row[i]] < order[row[j]] })
		tree.insert(row, 1, order)
	}

	// Recursive growth.
	var collect func(prefix itemset.Itemset, t *fpTree) error
	collect = func(prefix itemset.Itemset, t *fpTree) error {
		// Headers iterate in reverse insertion order (least frequent
		// first), the standard bottom-up projection. The ctx check per
		// projection keeps deep low-support recursions cancellable.
		if err := ctx.Err(); err != nil {
			return err
		}
		for rank := len(t.headers) - 1; rank >= 0; rank-- {
			h := t.headers[rank]
			if h.total < minCount || h.head == nil {
				continue
			}
			id := h.id
			ext := prefix.Union(itemset.Itemset{id})
			switch violates(ext, id, db.Dict, deps, cfg.FilterSameFeature) {
			case violationDep:
				res.PrunedDeps++
				continue
			case violationSameFeature:
				res.PrunedSameFeature++
				continue
			}
			res.supportByKey[ext.Key()] = h.total
			res.Frequent = append(res.Frequent, FrequentItemset{Items: ext, Support: h.total})
			// Build the conditional tree for this item.
			cond := t.conditional(rank, minCount)
			if cond != nil {
				if err := collect(ext, cond); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := collect(nil, tree); err != nil {
		return nil, err
	}

	// Normalise output order to match the Apriori result: by size, then
	// lexicographic item IDs.
	sort.Slice(res.Frequent, func(i, j int) bool {
		a, b := res.Frequent[i].Items, res.Frequent[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	res.Stats = enumerationStats(res, time.Since(pass1))
	for _, s := range res.Stats {
		tr.Pass(s.Event())
	}
	res.Duration = time.Since(start)
	return res, nil
}

// enumerationStats synthesizes per-size pass statistics from a sorted
// result of a pattern-enumeration engine (FP-growth, Eclat), attributing
// the whole enumeration's wall time to pass 1 (the engines have no
// per-pass phases) and the branch-prune totals to k=2.
func enumerationStats(res *Result, elapsed time.Duration) []PassStat {
	bySize := res.CountBySize()
	maxLen := res.MaxLen()
	stats := make([]PassStat, 0, maxLen)
	for k := 1; k <= maxLen; k++ {
		s := PassStat{K: k, Candidates: bySize[k], Frequent: bySize[k]}
		if k == 1 {
			s.Duration = elapsed
		}
		if k == 2 {
			s.PrunedDeps = res.PrunedDeps
			s.PrunedSameFeature = res.PrunedSameFeature
		}
		stats = append(stats, s)
	}
	return stats
}

// violation classifies why a pattern extension is forbidden.
type violation int

// Violation kinds; violationNone means the extension is admissible.
const (
	violationNone violation = iota
	violationDep
	violationSameFeature
)

// violates reports whether adding item id to the pattern creates a
// forbidden pair (Φ dependency or same feature type) with any existing
// member, and which filter fired.
func violates(ext itemset.Itemset, id int32, d *itemset.Dictionary, deps map[[2]int32]struct{}, sameFeature bool) violation {
	for _, other := range ext {
		if other == id {
			continue
		}
		a, b := other, id
		if a > b {
			a, b = b, a
		}
		if _, bad := deps[[2]int32{a, b}]; bad {
			return violationDep
		}
		if sameFeature && d.SameFeatureType(a, b) {
			return violationSameFeature
		}
	}
	return violationNone
}

// fpNode is one FP-tree node.
type fpNode struct {
	id       int32
	count    int
	parent   *fpNode
	next     *fpNode // header-list chaining
	children map[int32]*fpNode
}

// fpHeader is the header-table entry for one item.
type fpHeader struct {
	id    int32
	total int
	head  *fpNode
}

// fpTree is an FP-tree with its header table, ordered by insertion rank.
type fpTree struct {
	root    *fpNode
	headers []fpHeader
}

func newFPTree(numItems int) *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[int32]*fpNode)},
		headers: make([]fpHeader, 0, numItems),
	}
}

// headerIndex finds (or creates) the header slot for an item at a given
// rank. Ranks are dense and assigned in first-insertion order.
func (t *fpTree) headerAt(rank int, id int32) *fpHeader {
	for len(t.headers) <= rank {
		t.headers = append(t.headers, fpHeader{id: -1})
	}
	h := &t.headers[rank]
	if h.id == -1 {
		h.id = id
	}
	return h
}

// insert adds one (ordered) transaction with a count.
func (t *fpTree) insert(row []int32, count int, order map[int32]int) {
	node := t.root
	for _, id := range row {
		child, ok := node.children[id]
		if !ok {
			child = &fpNode{id: id, parent: node, children: make(map[int32]*fpNode)}
			h := t.headerAt(order[id], id)
			child.next = h.head
			h.head = child
			node.children[id] = child
		}
		child.count += count
		h := t.headerAt(order[id], id)
		h.total += count
		node = child
	}
}

// conditional builds the conditional FP-tree of the item at header rank,
// keeping only items with conditional support >= minCount. Returns nil
// when the conditional base is empty.
func (t *fpTree) conditional(rank int, minCount int) *fpTree {
	h := t.headers[rank]
	// Gather conditional pattern base: prefix paths with their counts.
	type path struct {
		items []int32 // root-to-parent order (by construction ascending rank)
		count int
	}
	var base []path
	condCounts := map[int32]int{}
	for node := h.head; node != nil; node = node.next {
		var items []int32
		for p := node.parent; p != nil && p.parent != nil; p = p.parent {
			items = append(items, p.id)
		}
		if len(items) == 0 {
			continue
		}
		// items are parent-to-root; reverse to root-to-parent.
		for i, j := 0, len(items)-1; i < j; i, j = i+1, j-1 {
			items[i], items[j] = items[j], items[i]
		}
		base = append(base, path{items, node.count})
		for _, id := range items {
			condCounts[id] += node.count
		}
	}
	if len(base) == 0 {
		return nil
	}
	// Frequent conditional items, ranked by conditional support.
	type itemCount struct {
		id    int32
		count int
	}
	var freq []itemCount
	for id, c := range condCounts {
		if c >= minCount {
			freq = append(freq, itemCount{id, c})
		}
	}
	if len(freq) == 0 {
		return nil
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].count != freq[j].count {
			return freq[i].count > freq[j].count
		}
		return freq[i].id < freq[j].id
	})
	order := make(map[int32]int, len(freq))
	for rank, ic := range freq {
		order[ic.id] = rank
	}
	cond := newFPTree(len(freq))
	row := make([]int32, 0, 8)
	for _, p := range base {
		row = row[:0]
		for _, id := range p.items {
			if _, ok := order[id]; ok {
				row = append(row, id)
			}
		}
		sort.Slice(row, func(i, j int) bool { return order[row[i]] < order[row[j]] })
		cond.insert(row, p.count, order)
	}
	return cond
}
