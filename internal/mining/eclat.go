package mining

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// Eclat mines the same frequent itemsets as Apriori with the vertical
// Eclat algorithm (Zaki): a depth-first walk over prefix equivalence
// classes, where each class member carries the tid-bitmap of its
// itemset and extensions are set intersections. Dense prefixes switch
// to the dEclat diffset representation — a child stores the rows its
// parent has and it lacks, and supports come from subtraction — which
// keeps the bitmaps sparse exactly where tidsets would be near-full.
//
// The KC+ same-feature filter and the Φ dependency filter are applied
// when a class is built: a forbidden pair kills the extension before its
// support is ever computed, which preserves the anti-monotone semantics
// of the k=2 candidate pruning in the Apriori formulation.
func Eclat(db *itemset.DB, cfg Config) (*Result, error) {
	return EclatContext(context.Background(), db, cfg)
}

// EclatContext is Eclat honouring ctx cancellation/deadlines (checked
// per equivalence class, so deep low-support recursions stop promptly)
// and emitting per-size pass events to any obs.Trace attached to ctx.
// Eclat generates no explicit candidate sets, so the synthesized pass
// stats report Candidates equal to Frequent; prunes from the Φ and
// same-feature filters are totalled on the k=2 stat.
//
// Config.Parallelism shards the root equivalence class across a worker
// pool: each top-level subtree is independent (later siblings only ever
// combine among themselves against read-only bitmaps), so workers pull
// subtrees from a shared queue, mine them with private bitmap pools and
// result buffers, and the buffers are merged and sorted afterwards —
// the output is identical to the sequential walk at any setting.
// Config.Counting does not apply: the walk is vertical by construction,
// and an explicitly requested HorizontalCounting is a config error.
func EclatContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	if cfg.Counting == HorizontalCounting {
		return nil, fmt.Errorf("mining: the eclat engine counts vertically; Counting=horizontal is not supported (leave Counting unset or use an apriori algorithm)")
	}
	minCount, err := resolveMinSupport(db, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	tr := obs.FromContext(ctx)
	db.BuildTidsets()
	res := &Result{
		MinSupportCount: minCount,
		NumTransactions: db.NumTransactions(),
	}

	// Pass 1: the root equivalence class is every frequent item with its
	// tidset, in ascending ID order so prefixes extend in sorted order.
	counts := db.ItemCounts()
	var root []eclatNode
	for id, c := range counts {
		if c >= minCount {
			root = append(root, eclatNode{id: int32(id), set: db.Tidset(int32(id)), support: c})
		}
	}
	for _, n := range root {
		res.Frequent = append(res.Frequent, FrequentItemset{Items: itemset.Itemset{n.id}, Support: n.support})
	}
	if cfg.MaxLen != 1 {
		if err := eclatWalk(ctx, tr, db, cfg, minCount, root, res); err != nil {
			return nil, err
		}
	}

	// Normalise output order to match the Apriori result: by size, then
	// lexicographic item IDs. This is also what makes the parallel walk
	// deterministic — every (itemset, support) is produced exactly once,
	// so the sorted merge is byte-identical to the sequential output.
	sort.Slice(res.Frequent, func(i, j int) bool {
		a, b := res.Frequent[i].Items, res.Frequent[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return compareItems(a, b) < 0
	})
	res.Stats = enumerationStats(res, time.Since(start))
	for _, s := range res.Stats {
		tr.Pass(s.Event())
	}
	res.Duration = time.Since(start)
	return res, nil
}

// eclatWorkers resolves the Parallelism knob exactly like countVertical:
// 0 means GOMAXPROCS, negative or 1 means sequential, and the pool is
// never wider than the number of root subtrees to hand out.
func eclatWorkers(parallelism, roots int) int {
	w := parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > roots {
		w = roots
	}
	if w < 1 {
		w = 1
	}
	return w
}

// eclatWalk runs the depth-first walk below the root class, sequentially
// or sharded over a worker pool, and merges the outcome into res.
func eclatWalk(ctx context.Context, tr *obs.Trace, db *itemset.DB, cfg Config, minCount int, root []eclatNode, res *Result) error {
	words := (db.NumTransactions() + 63) / 64
	deps := buildDepSet(db.Dict, cfg.Dependencies)
	newMiner := func() *eclatMiner {
		return &eclatMiner{
			ctx:         ctx,
			dict:        db.Dict,
			minCount:    minCount,
			maxLen:      cfg.MaxLen,
			deps:        deps,
			sameFeature: cfg.FilterSameFeature,
			words:       words,
		}
	}
	numTx := db.NumTransactions()
	workers := eclatWorkers(cfg.Parallelism, len(root))
	if workers <= 1 {
		m := newMiner()
		for i := range root {
			// The root sets are the DB's shared tidsets, never pooled.
			if err := m.mineMember(nil, root, i, false, numTx, false); err != nil {
				return err
			}
		}
		m.merge(res)
		return nil
	}

	// Shared-queue fan-out: the unit of work is one root member's whole
	// subtree. next is the queue head; workers steal the next unclaimed
	// subtree as they drain, so a skewed subtree (low item IDs see the
	// most siblings) never idles the rest of the pool. Root bitmaps are
	// the DB's shared read-only tidsets; everything deeper is built from
	// the worker's private pool.
	var next atomic.Int64
	miners := make([]*eclatMiner, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		m := newMiner()
		miners[w] = m
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(root) {
					return
				}
				if err := m.mineMember(nil, root, i, false, numTx, false); err != nil {
					errs[w] = err
					return
				}
				m.roots++
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	tr.Add("eclat.workers", int64(workers))
	for w, m := range miners {
		m.merge(res)
		// Per-worker fan-out balance: how many subtrees each worker
		// claimed and how many itemsets they yielded.
		tr.Add(obs.WorkerCounter("eclat", w, "roots"), int64(m.roots))
		tr.Add(obs.WorkerCounter("eclat", w, "itemsets"), int64(len(m.frequent)))
	}
	return nil
}

// eclatNode is one member of a prefix equivalence class: the itemset
// prefix∪{id}, represented by a tidset or (when the class is in diffset
// mode) the diffset against the prefix's tidset.
type eclatNode struct {
	id      int32
	set     []uint64
	support int
}

// eclatMiner carries one walker's immutable configuration, a free list
// of bitmap buffers (so steady-state class construction reuses released
// buffers instead of allocating), and its private output buffers. Each
// worker of the parallel walk owns one miner; they share only the
// read-only dictionary, dependency set, and root tidsets.
type eclatMiner struct {
	ctx         context.Context
	dict        *itemset.Dictionary
	minCount    int
	maxLen      int
	deps        map[[2]int32]struct{}
	sameFeature bool
	words       int
	pool        [][]uint64

	// Private output, merged into the shared Result after the walk.
	frequent   []FrequentItemset
	prunedDeps int
	prunedSame int
	// roots counts top-level subtrees claimed from the shared queue.
	roots int
}

// merge folds the miner's private output into the shared result; called
// after the walk (or worker pool) has fully stopped.
func (m *eclatMiner) merge(res *Result) {
	res.Frequent = append(res.Frequent, m.frequent...)
	res.PrunedDeps += m.prunedDeps
	res.PrunedSameFeature += m.prunedSame
}

func (m *eclatMiner) get() []uint64 {
	if n := len(m.pool); n > 0 {
		b := m.pool[n-1]
		m.pool = m.pool[:n-1]
		return b
	}
	return make([]uint64, m.words)
}

func (m *eclatMiner) put(b []uint64) { m.pool = append(m.pool, b) }

// mine walks one equivalence class: for each member a it emits the
// extensions a×(later siblings) that survive the pair filters and the
// support threshold, then recurses into the surviving class. classDiff
// says whether the class sets are diffsets; prefixSupport is the support
// of the class's common prefix (the diffset subtraction base). pooled
// marks class sets owned by the miner's free list (everything but the
// root's shared tidsets), released as each member's subtree completes.
func (m *eclatMiner) mine(prefix itemset.Itemset, class []eclatNode, classDiff bool, prefixSupport int, pooled bool) error {
	for i := range class {
		if err := m.mineMember(prefix, class, i, classDiff, prefixSupport, pooled); err != nil {
			return err
		}
	}
	return nil
}

// mineMember walks the subtree rooted at class[i] — the unit the
// parallel walk shards, since member i only ever combines with its later
// siblings and reads their bitmaps. It releases class[i]'s bitmap (when
// pooled) once the subtree completes.
func (m *eclatMiner) mineMember(prefix itemset.Itemset, class []eclatNode, i int, classDiff bool, prefixSupport int, pooled bool) error {
	if err := m.ctx.Err(); err != nil {
		return err
	}
	a := class[i]
	ext := make(itemset.Itemset, len(prefix)+1)
	copy(ext, prefix)
	ext[len(prefix)] = a.id
	if m.maxLen != 0 && len(ext) >= m.maxLen {
		if pooled {
			m.put(a.set)
		}
		return nil
	}
	// Dense-prefix switch: once a prefix retains most of its parent's
	// rows, children store what they lose rather than what they keep.
	childDiff := classDiff || 2*a.support > prefixSupport
	var children []eclatNode
	for j := i + 1; j < len(class); j++ {
		b := class[j]
		if v := violates(ext, b.id, m.dict, m.deps, m.sameFeature); v != violationNone {
			// Each unordered pair is first seen at the root (size-2
			// extension); deeper re-checks of other pairs never
			// re-count it.
			if len(ext) == 1 {
				switch v {
				case violationDep:
					m.prunedDeps++
				case violationSameFeature:
					m.prunedSame++
				}
			}
			continue
		}
		buf := m.get()
		var support int
		switch {
		case !classDiff && !childDiff:
			// t(Pab) = t(Pa) ∩ t(Pb)
			intersectInto(buf, a.set, b.set)
			support = popcount(buf)
		case !classDiff && childDiff:
			// d(Pab) = t(Pa) − t(Pb); σ(Pab) = σ(Pa) − |d(Pab)|
			subtractInto(buf, a.set, b.set)
			support = a.support - popcount(buf)
		default:
			// d(Pab) = d(Pb) − d(Pa); σ(Pab) = σ(Pa) − |d(Pab)|
			subtractInto(buf, b.set, a.set)
			support = a.support - popcount(buf)
		}
		if support < m.minCount {
			m.put(buf)
			continue
		}
		children = append(children, eclatNode{id: b.id, set: buf, support: support})
	}
	for _, c := range children {
		child := make(itemset.Itemset, len(ext)+1)
		copy(child, ext)
		child[len(ext)] = c.id
		m.frequent = append(m.frequent, FrequentItemset{Items: child, Support: c.support})
	}
	if len(children) > 0 {
		if err := m.mine(ext, children, childDiff, a.support, true); err != nil {
			return err
		}
	}
	// Later siblings only combine among themselves; a's bitmap is dead.
	if pooled {
		m.put(a.set)
	}
	return nil
}

// intersectInto sets dst = a & b.
func intersectInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// subtractInto sets dst = a &^ b.
func subtractInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

// popcount returns the number of set bits.
func popcount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
