package mining

import (
	"context"
	"math/bits"
	"sort"
	"time"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// Eclat mines the same frequent itemsets as Apriori with the vertical
// Eclat algorithm (Zaki): a depth-first walk over prefix equivalence
// classes, where each class member carries the tid-bitmap of its
// itemset and extensions are set intersections. Dense prefixes switch
// to the dEclat diffset representation — a child stores the rows its
// parent has and it lacks, and supports come from subtraction — which
// keeps the bitmaps sparse exactly where tidsets would be near-full.
//
// The KC+ same-feature filter and the Φ dependency filter are applied
// when a class is built: a forbidden pair kills the extension before its
// support is ever computed, which preserves the anti-monotone semantics
// of the k=2 candidate pruning in the Apriori formulation.
func Eclat(db *itemset.DB, cfg Config) (*Result, error) {
	return EclatContext(context.Background(), db, cfg)
}

// EclatContext is Eclat honouring ctx cancellation/deadlines (checked
// per equivalence class, so deep low-support recursions stop promptly)
// and emitting per-size pass events to any obs.Trace attached to ctx.
// Eclat generates no explicit candidate sets, so the synthesized pass
// stats report Candidates equal to Frequent; prunes from the Φ and
// same-feature filters are totalled on the k=2 stat. The Counting and
// Parallelism knobs of Config do not apply — the walk is vertical and
// sequential by construction.
func EclatContext(ctx context.Context, db *itemset.DB, cfg Config) (*Result, error) {
	minCount, err := resolveMinSupport(db, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	tr := obs.FromContext(ctx)
	db.BuildTidsets()
	res := &Result{
		MinSupportCount: minCount,
		NumTransactions: db.NumTransactions(),
		supportByKey:    make(map[string]int),
	}
	m := &eclatMiner{
		ctx:         ctx,
		dict:        db.Dict,
		minCount:    minCount,
		maxLen:      cfg.MaxLen,
		deps:        buildDepSet(db.Dict, cfg.Dependencies),
		sameFeature: cfg.FilterSameFeature,
		res:         res,
		words:       (db.NumTransactions() + 63) / 64,
	}

	// Pass 1: the root equivalence class is every frequent item with its
	// tidset, in ascending ID order so prefixes extend in sorted order.
	counts := db.ItemCounts()
	var root []eclatNode
	for id, c := range counts {
		if c >= minCount {
			root = append(root, eclatNode{id: int32(id), set: db.Tidset(int32(id)), support: c})
		}
	}
	for _, n := range root {
		ext := itemset.Itemset{n.id}
		res.supportByKey[ext.Key()] = n.support
		res.Frequent = append(res.Frequent, FrequentItemset{Items: ext, Support: n.support})
	}
	if cfg.MaxLen != 1 {
		// The root sets are the DB's shared tidsets, never pooled.
		if err := m.mine(nil, root, false, db.NumTransactions(), false); err != nil {
			return nil, err
		}
	}

	// Normalise output order to match the Apriori result: by size, then
	// lexicographic item IDs.
	sort.Slice(res.Frequent, func(i, j int) bool {
		a, b := res.Frequent[i].Items, res.Frequent[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return compareItems(a, b) < 0
	})
	res.Stats = enumerationStats(res, time.Since(start))
	for _, s := range res.Stats {
		tr.Pass(s.Event())
	}
	res.Duration = time.Since(start)
	return res, nil
}

// eclatNode is one member of a prefix equivalence class: the itemset
// prefix∪{id}, represented by a tidset or (when the class is in diffset
// mode) the diffset against the prefix's tidset.
type eclatNode struct {
	id      int32
	set     []uint64
	support int
}

// eclatMiner carries the walk's immutable configuration and a free list
// of bitmap buffers, so steady-state class construction reuses released
// buffers instead of allocating.
type eclatMiner struct {
	ctx         context.Context
	dict        *itemset.Dictionary
	minCount    int
	maxLen      int
	deps        map[[2]int32]struct{}
	sameFeature bool
	res         *Result
	words       int
	pool        [][]uint64
}

func (m *eclatMiner) get() []uint64 {
	if n := len(m.pool); n > 0 {
		b := m.pool[n-1]
		m.pool = m.pool[:n-1]
		return b
	}
	return make([]uint64, m.words)
}

func (m *eclatMiner) put(b []uint64) { m.pool = append(m.pool, b) }

// mine walks one equivalence class: for each member a it emits the
// extensions a×(later siblings) that survive the pair filters and the
// support threshold, then recurses into the surviving class. classDiff
// says whether the class sets are diffsets; prefixSupport is the support
// of the class's common prefix (the diffset subtraction base). pooled
// marks class sets owned by the miner's free list (everything but the
// root's shared tidsets), released as each member's subtree completes.
func (m *eclatMiner) mine(prefix itemset.Itemset, class []eclatNode, classDiff bool, prefixSupport int, pooled bool) error {
	if err := m.ctx.Err(); err != nil {
		return err
	}
	for i := range class {
		a := class[i]
		ext := make(itemset.Itemset, len(prefix)+1)
		copy(ext, prefix)
		ext[len(prefix)] = a.id
		if m.maxLen != 0 && len(ext) >= m.maxLen {
			if pooled {
				m.put(a.set)
			}
			continue
		}
		// Dense-prefix switch: once a prefix retains most of its parent's
		// rows, children store what they lose rather than what they keep.
		childDiff := classDiff || 2*a.support > prefixSupport
		var children []eclatNode
		for j := i + 1; j < len(class); j++ {
			b := class[j]
			if v := violates(ext, b.id, m.dict, m.deps, m.sameFeature); v != violationNone {
				// Each unordered pair is first seen at the root (size-2
				// extension); deeper re-checks of other pairs never
				// re-count it.
				if len(ext) == 1 {
					switch v {
					case violationDep:
						m.res.PrunedDeps++
					case violationSameFeature:
						m.res.PrunedSameFeature++
					}
				}
				continue
			}
			buf := m.get()
			var support int
			switch {
			case !classDiff && !childDiff:
				// t(Pab) = t(Pa) ∩ t(Pb)
				intersectInto(buf, a.set, b.set)
				support = popcount(buf)
			case !classDiff && childDiff:
				// d(Pab) = t(Pa) − t(Pb); σ(Pab) = σ(Pa) − |d(Pab)|
				subtractInto(buf, a.set, b.set)
				support = a.support - popcount(buf)
			default:
				// d(Pab) = d(Pb) − d(Pa); σ(Pab) = σ(Pa) − |d(Pab)|
				subtractInto(buf, b.set, a.set)
				support = a.support - popcount(buf)
			}
			if support < m.minCount {
				m.put(buf)
				continue
			}
			children = append(children, eclatNode{id: b.id, set: buf, support: support})
		}
		for _, c := range children {
			child := make(itemset.Itemset, len(ext)+1)
			copy(child, ext)
			child[len(ext)] = c.id
			m.res.supportByKey[child.Key()] = c.support
			m.res.Frequent = append(m.res.Frequent, FrequentItemset{Items: child, Support: c.support})
		}
		if len(children) > 0 {
			if err := m.mine(ext, children, childDiff, a.support, true); err != nil {
				return err
			}
		}
		// Later siblings only combine among themselves; a's bitmap is dead.
		if pooled {
			m.put(a.set)
		}
	}
	return nil
}

// intersectInto sets dst = a & b.
func intersectInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// subtractInto sets dst = a &^ b.
func subtractInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

// popcount returns the number of set bits.
func popcount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
