package mining

// Rule-level redundancy elimination, after Bastide et al. [4] and Zaki
// [19] (the paper's related work on non-redundant association rules).
// A rule A -> C is redundant when a simpler rule with at least as much
// information exists at identical quality: some A' ⊆ A and C' ⊇ C with
// the same support and confidence. The paper's point stands: this removes
// *redundant* rules, but "non-interesting and meaningless rules are still
// generated" — only KC+'s semantic filter removes those.

// NonRedundantRules filters a rule list down to the minimal non-redundant
// rules: r survives unless another rule r' has r'.Antecedent ⊆
// r.Antecedent, r'.Consequent ⊇ r.Consequent, equal support count and
// equal confidence, and (r'.Antecedent, r'.Consequent) ≠ (r.Antecedent,
// r.Consequent). The input order is preserved.
func NonRedundantRules(rules []Rule) []Rule {
	out := make([]Rule, 0, len(rules))
	for i, r := range rules {
		redundant := false
		for j, o := range rules {
			if i == j {
				continue
			}
			if o.SupportCount != r.SupportCount || o.Confidence != r.Confidence {
				continue
			}
			if !r.Antecedent.ContainsAll(o.Antecedent) || !o.Consequent.ContainsAll(r.Consequent) {
				continue
			}
			// o is at least as general; strictness check avoids mutual
			// elimination of identical rules.
			if len(o.Antecedent) < len(r.Antecedent) || len(o.Consequent) > len(r.Consequent) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, r)
		}
	}
	return out
}
