package mining

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// patchTable builds a table from item lists.
func patchTable(rows [][]string) *dataset.Table {
	txs := make([]dataset.Transaction, len(rows))
	for i, items := range rows {
		txs[i] = dataset.Transaction{RefID: fmt.Sprintf("r%d", i), Items: items}
	}
	return dataset.NewTable(txs)
}

// internRow interns a row's items against db's dictionary.
func internRow(db *itemset.DB, items []string) itemset.Itemset {
	ids := make([]int32, len(items))
	for i, name := range items {
		ids[i] = db.Dict.Intern(name)
	}
	return itemset.NewItemset(ids...)
}

// resultByNames renders a result as a support map keyed by the sorted
// item names, making results comparable across dictionaries with
// different interning orders.
func resultByNames(r *Result, dict *itemset.Dictionary) map[string]int {
	out := make(map[string]int, len(r.Frequent))
	for _, f := range r.Frequent {
		names := append([]string{}, f.Items.Names(dict)...)
		sort.Strings(names)
		out[fmt.Sprint(names)] = f.Support
	}
	return out
}

// assertSameResult compares two results by (itemset names, support).
// The patched result reuses the parent dictionary while a from-scratch
// oracle interns in row order, so positional/ID comparison would only
// test interning order, not mining output.
func assertSameResult(t *testing.T, got *Result, gotDict *itemset.Dictionary, want *Result, wantDict *itemset.Dictionary) {
	t.Helper()
	if got.MinSupportCount != want.MinSupportCount {
		t.Fatalf("minCount = %d, want %d", got.MinSupportCount, want.MinSupportCount)
	}
	if got.NumTransactions != want.NumTransactions {
		t.Fatalf("numTransactions = %d, want %d", got.NumTransactions, want.NumTransactions)
	}
	if got.PrunedDeps != want.PrunedDeps || got.PrunedSameFeature != want.PrunedSameFeature {
		t.Fatalf("prune tallies = (%d deps, %d same-feature), want (%d, %d)",
			got.PrunedDeps, got.PrunedSameFeature, want.PrunedDeps, want.PrunedSameFeature)
	}
	g, w := resultByNames(got, gotDict), resultByNames(want, wantDict)
	if len(got.Frequent) != len(g) || len(want.Frequent) != len(w) {
		t.Fatalf("duplicate itemsets in a result: got %d/%d, want %d/%d",
			len(g), len(got.Frequent), len(w), len(want.Frequent))
	}
	for k, sup := range w {
		if g[k] != sup {
			t.Fatalf("support(%s) = %d, want %d", k, g[k], sup)
		}
	}
	for k := range g {
		if _, ok := w[k]; !ok {
			t.Fatalf("spurious frequent itemset %s", k)
		}
	}
}

// runPatchEquivalence mines prev rows, patches to next rows, and checks
// PatchResultContext against a from-scratch mine of next.
func runPatchEquivalence(t *testing.T, cfg Config, prevRows, nextRows [][]string, newFromOld []int, editedRows []int) PatchStats {
	t.Helper()
	ctx := context.Background()

	db := itemset.NewDB(patchTable(prevRows))
	db.BuildTidsets()
	prev, err := MineContext(ctx, db, cfg)
	if err != nil {
		t.Fatalf("mine prev: %v", err)
	}

	// Build the row deltas (interned old/new contents) and the edits.
	var deltas []RowDelta
	var edits []itemset.RowEdit
	edited := make(map[int]bool, len(editedRows))
	for _, r := range editedRows {
		edited[r] = true
	}
	for j, old := range newFromOld {
		if old >= 0 && !edited[j] {
			continue
		}
		d := RowDelta{New: internRow(db, nextRows[j])}
		if old >= 0 {
			d.Old = db.Rows[old]
		}
		deltas = append(deltas, d)
		edits = append(edits, itemset.RowEdit{Row: j, Items: nextRows[j]})
	}
	for old := range prevRows {
		found := false
		for _, o := range newFromOld {
			if o == old {
				found = true
				break
			}
		}
		if !found {
			deltas = append(deltas, RowDelta{Old: db.Rows[old]})
		}
	}

	db.ApplyDelta(newFromOld, edits)
	got, stats, err := PatchResultContext(ctx, db, prev, cfg, deltas)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}

	oracleDB := itemset.NewDB(patchTable(nextRows))
	rcfg := cfg
	rcfg.Counting = VerticalCounting
	want, err := MineContext(ctx, oracleDB, rcfg)
	if err != nil {
		t.Fatalf("mine oracle: %v", err)
	}
	assertSameResult(t, got, db.Dict, want, oracleDB.Dict)
	return stats
}

func TestPatchResultSingleEdit(t *testing.T) {
	prev := [][]string{
		{"a", "b", "c"},
		{"a", "b"},
		{"a", "c"},
		{"b", "c"},
		{"a", "b", "c"},
		{"d"},
		{"a", "d"},
		{"b", "d"},
	}
	next := append([][]string{}, prev...)
	next[5] = []string{"a", "b", "c"} // {a,b,c} reaches support 3 = minCount
	stats := runPatchEquivalence(t, Config{MinSupport: 0.375},
		prev, next, identityMap(len(prev)), []int{5})
	if stats.Rewalk {
		t.Fatalf("single edit of 8 rows should take the incremental path")
	}
	if stats.Discovered == 0 {
		t.Errorf("expected the walk to discover newly frequent itemsets")
	}
}

func TestPatchResultInsertAndDelete(t *testing.T) {
	prev := [][]string{
		{"a", "b"}, {"a", "b"}, {"a", "c"}, {"b", "c"},
		{"c", "d"}, {"a", "d"}, {"b", "d"}, {"a", "b", "c"},
		{"a"}, {"b"},
	}
	// Delete row 4, append two rows.
	newFromOld := []int{0, 1, 2, 3, 5, 6, 7, 8, 9, -1, -1}
	next := [][]string{
		prev[0], prev[1], prev[2], prev[3], prev[5], prev[6], prev[7], prev[8], prev[9],
		{"c", "d"}, {"a", "b", "d"},
	}
	// 0.15 keeps the absolute count at 2 across 10 -> 11 transactions,
	// which the incremental path requires.
	stats := runPatchEquivalence(t, Config{MinSupport: 0.15},
		prev, next, newFromOld, []int{9, 10})
	if stats.Rewalk {
		t.Fatalf("3-row delta of 10 rows should take the incremental path")
	}
}

func TestPatchResultFilters(t *testing.T) {
	// Items that parse as spatial predicates so the same-feature filter
	// and Φ dependencies engage (see itemset.Dictionary interning).
	prev := [][]string{
		{"touches_water", "contains_school", "closeTo_water"},
		{"touches_water", "contains_school"},
		{"touches_water", "closeTo_water"},
		{"contains_school", "closeTo_water"},
		{"touches_water", "contains_school", "closeTo_water"},
		{"crosses_river"},
	}
	next := append([][]string{}, prev...)
	next[5] = []string{"touches_water", "contains_school", "crosses_river"}
	cfg := Config{
		MinSupport:        0.3,
		FilterSameFeature: true,
		Dependencies:      []Pair{{A: "contains_school", B: "closeTo_water"}},
	}
	stats := runPatchEquivalence(t, cfg, prev, next, identityMap(len(prev)), []int{5})
	if stats.Rewalk {
		t.Fatalf("expected incremental path")
	}
}

// TestPatchResultRecomputesPruneTallies makes an item of a same-feature
// pair newly frequent, so the successor's k=2 prune tally differs from
// the parent's; the patched result must report the successor's count
// (assertSameResult compares the tallies against the oracle).
func TestPatchResultRecomputesPruneTallies(t *testing.T) {
	prev := [][]string{
		{"contains_school", "touches_water"},
		{"contains_school", "touches_water"},
		{"contains_school", "closeTo_school"},
		{"touches_water"},
		{"contains_school"},
		{"touches_water"},
	}
	next := append([][]string{}, prev...)
	next[3] = []string{"touches_water", "closeTo_school"}
	cfg := Config{MinSupport: 0.3, FilterSameFeature: true}
	stats := runPatchEquivalence(t, cfg, prev, next, identityMap(len(prev)), []int{3})
	if stats.Rewalk {
		t.Fatalf("single edit of 6 rows should take the incremental path")
	}
}

func TestPatchResultRewalkFallbacks(t *testing.T) {
	rows := [][]string{{"a", "b"}, {"a", "b"}, {"a", "c"}, {"b", "c"}}
	db := itemset.NewDB(patchTable(rows))
	cfg := Config{MinSupport: 0.5}
	ctx := context.Background()

	// No previous result: must rewalk.
	_, stats, err := PatchResultContext(ctx, db, nil, cfg, nil)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if !stats.Rewalk {
		t.Fatalf("nil prev must rewalk")
	}

	// Huge edit batch relative to the database: must rewalk.
	prev, err := MineContext(ctx, db, cfg)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	deltas := make([]RowDelta, 3)
	for i := range deltas {
		deltas[i] = RowDelta{Old: db.Rows[i], New: db.Rows[i]}
	}
	_, stats, err = PatchResultContext(ctx, db, prev, cfg, deltas)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if !stats.Rewalk {
		t.Fatalf("oversized edit batch must rewalk")
	}
}

func TestPatchResultRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alphabet := []string{"a", "b", "c", "d", "e", "f"}
	randomRow := func() []string {
		var items []string
		for _, it := range alphabet {
			if rng.Float64() < 0.45 {
				items = append(items, it)
			}
		}
		return items
	}
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(8)
		prev := make([][]string, n)
		for i := range prev {
			prev[i] = randomRow()
		}
		next := append([][]string{}, prev...)
		r := rng.Intn(n)
		next[r] = randomRow()
		cfg := Config{MinSupport: 0.15 + 0.2*rng.Float64(), MaxLen: rng.Intn(4)}
		runPatchEquivalence(t, cfg, prev, next, identityMap(n), []int{r})
	}
}

func identityMap(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
