package mining

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// resultsEqual compares two mining results as sets of (itemset, support).
func resultsEqual(t *testing.T, name string, a, b *Result, d *itemset.Dictionary) {
	t.Helper()
	if len(a.Frequent) != len(b.Frequent) {
		t.Errorf("%s: %d vs %d frequent itemsets", name, len(a.Frequent), len(b.Frequent))
	}
	bByKey := map[string]int{}
	for _, f := range b.Frequent {
		bByKey[f.Items.Key()] = f.Support
	}
	for _, f := range a.Frequent {
		sup, ok := bByKey[f.Items.Key()]
		if !ok {
			t.Errorf("%s: %s missing from second result", name, f.Items.Format(d))
			continue
		}
		if sup != f.Support {
			t.Errorf("%s: support mismatch for %s: %d vs %d", name, f.Items.Format(d), f.Support, sup)
		}
	}
}

func TestFPGrowthMatchesApriori(t *testing.T) {
	tables := map[string]*dataset.Table{
		"table1":         dataset.PortoAlegreTable(),
		"reconstruction": dataset.Table2Reconstruction(),
	}
	for name, table := range tables {
		for _, minsup := range []float64{0.17, 0.34, 0.5, 0.84} {
			db := itemset.NewDB(table)
			ap, err := Apriori(db, Config{MinSupport: minsup})
			if err != nil {
				t.Fatal(err)
			}
			fp, err := FPGrowth(db, Config{MinSupport: minsup})
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, name, ap, fp, db.Dict)
			resultsEqual(t, name+"/reverse", fp, ap, db.Dict)
		}
	}
}

func TestFPGrowthKCPlusMatchesAprioriKCPlus(t *testing.T) {
	db := table2DB()
	cfg := Config{MinSupport: 0.5, FilterSameFeature: true,
		Dependencies: []Pair{{A: "contains_slum", B: "contains_school"}}}
	ap, err := Mine(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := FPGrowth(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "kc+", ap, fp, db.Dict)
	resultsEqual(t, "kc+/reverse", fp, ap, db.Dict)
}

// randomTable builds a small random transaction table over an item
// vocabulary including same-feature predicate pairs.
func randomTable(rng *rand.Rand, rows, items int) *dataset.Table {
	vocab := []string{
		"contains_slum", "touches_slum", "overlaps_slum",
		"contains_school", "touches_school",
		"contains_river", "crosses_river",
		"rate=high", "rate=low", "zone=a",
	}
	if items > len(vocab) {
		items = len(vocab)
	}
	txs := make([]dataset.Transaction, rows)
	for i := range txs {
		var its []string
		for j := 0; j < items; j++ {
			if rng.Float64() < 0.45 {
				its = append(its, vocab[j])
			}
		}
		txs[i] = dataset.Transaction{RefID: "r", Items: its}
	}
	return dataset.NewTable(txs)
}

// TestMinersAgainstBruteForce is the ground-truth oracle: on small random
// tables, both miners must produce exactly the itemsets found by
// exhaustively testing every subset of the item vocabulary.
func TestMinersAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		table := randomTable(rng, 12, 8)
		db := itemset.NewDB(table)
		minsup := 0.25
		minCount, err := resolveMinSupport(db, Config{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}

		// Brute force over all 2^n subsets.
		n := db.Dict.Len()
		truth := map[string]int{}
		for mask := 1; mask < 1<<uint(n); mask++ {
			var s itemset.Itemset
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					s = append(s, int32(i))
				}
			}
			if sup := db.SupportHorizontal(s); sup >= minCount {
				truth[s.Key()] = sup
			}
		}

		for name, alg := range map[string]func(*itemset.DB, Config) (*Result, error){
			"apriori":  Apriori,
			"fpgrowth": FPGrowth,
		} {
			res, err := alg(db, Config{MinSupport: minsup})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Frequent) != len(truth) {
				t.Errorf("trial %d %s: %d itemsets, truth %d", trial, name, len(res.Frequent), len(truth))
			}
			for _, f := range res.Frequent {
				sup, ok := truth[f.Items.Key()]
				if !ok {
					t.Errorf("trial %d %s: spurious %s", trial, name, f.Items.Format(db.Dict))
					continue
				}
				if sup != f.Support {
					t.Errorf("trial %d %s: support %d, truth %d for %s",
						trial, name, f.Support, sup, f.Items.Format(db.Dict))
				}
			}
		}
	}
}

// TestKCPlusBruteForceEquivalence: KC+ (either engine) must equal the
// brute-force frequent sets minus those containing a same-feature pair.
func TestKCPlusBruteForceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		table := randomTable(rng, 15, 9)
		db := itemset.NewDB(table)
		full, err := Apriori(db, Config{MinSupport: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		want := FilterSameFeaturePost(full.Frequent, db.Dict)
		for name, alg := range map[string]func(*itemset.DB, Config) (*Result, error){
			"apriori-kc+": AprioriKCPlus,
			"fpgrowth-kc+": func(db *itemset.DB, cfg Config) (*Result, error) {
				cfg.FilterSameFeature = true
				return FPGrowth(db, cfg)
			},
		} {
			res, err := alg(db, Config{MinSupport: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Frequent) != len(want) {
				t.Errorf("trial %d %s: %d vs %d", trial, name, len(res.Frequent), len(want))
			}
		}
	}
}

func TestFPGrowthErrors(t *testing.T) {
	db := paperDB()
	if _, err := FPGrowth(db, Config{}); err == nil {
		t.Error("zero minsup should fail")
	}
	empty := itemset.NewDB(dataset.NewTable(nil))
	if _, err := FPGrowth(empty, Config{MinSupport: 0.5}); err == nil {
		t.Error("empty database should fail")
	}
}

func TestFPGrowthHighSupport(t *testing.T) {
	// At 100% support only the universally-present items survive.
	db := paperDB()
	res, err := FPGrowth(db, Config{MinSupport: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Frequent {
		if f.Support != 6 {
			t.Errorf("itemset %s has support %d at minsup 100%%", f.Items.Format(db.Dict), f.Support)
		}
	}
}
