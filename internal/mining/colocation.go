package mining

import (
	"context"

	"repro/internal/colocation"
	"repro/internal/dataset"
)

// Colocation mines spatial co-location patterns — prevalent feature-
// type sets under a neighborhood distance, measured by the
// anti-monotone participation index — over a geometric dataset's
// layers. It is the mining-package face of internal/colocation, the
// sibling workload to the reference-feature transaction engines: no
// extraction, no transactions, every layer a peer feature type.
func Colocation(ds *dataset.Dataset, cfg colocation.Config) (*colocation.Result, error) {
	return colocation.Mine(ds, cfg)
}

// ColocationContext is Colocation with cancellation and tracing via the
// context.
func ColocationContext(ctx context.Context, ds *dataset.Dataset, cfg colocation.Config) (*colocation.Result, error) {
	return colocation.MineContext(ctx, ds, cfg)
}
