package mining

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/itemset"
	"repro/internal/obs"
)

// parallelTestDB builds a datagen workload deep enough that the walk
// recurses several levels below the root class.
func parallelTestDB(t testing.TB) *itemset.DB {
	t.Helper()
	table, err := datagen.PaperDataset1(datagen.DefaultSeed, 600)
	if err != nil {
		t.Fatal(err)
	}
	return itemset.NewDB(table)
}

// TestEclatParallelByteIdentical asserts the parallel walk's output is
// exactly the sequential walk's — same itemsets, same supports, same
// order — across worker counts, minsups, and the KC+ filters.
func TestEclatParallelByteIdentical(t *testing.T) {
	db := parallelTestDB(t)
	deps := make([]Pair, 0, len(datagen.Dataset1Dependencies))
	for _, d := range datagen.Dataset1Dependencies {
		deps = append(deps, Pair{A: d.A, B: d.B})
	}
	for _, minsup := range []float64{0.05, 0.15} {
		for _, kc := range []bool{false, true} {
			cfg := Config{MinSupport: minsup, Parallelism: 1}
			if kc {
				cfg.FilterSameFeature = true
				cfg.Dependencies = deps
			}
			seq, err := Eclat(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				pcfg := cfg
				pcfg.Parallelism = workers
				par, err := Eclat(db, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(seq.Frequent) != len(par.Frequent) {
					t.Fatalf("minsup=%g kc=%v workers=%d: %d vs %d itemsets",
						minsup, kc, workers, len(seq.Frequent), len(par.Frequent))
				}
				for i := range seq.Frequent {
					a, b := seq.Frequent[i], par.Frequent[i]
					if !a.Items.Equal(b.Items) || a.Support != b.Support {
						t.Fatalf("minsup=%g kc=%v workers=%d: itemset %d differs: %v/%d vs %v/%d",
							minsup, kc, workers, i, a.Items, a.Support, b.Items, b.Support)
					}
				}
				if par.PrunedDeps != seq.PrunedDeps || par.PrunedSameFeature != seq.PrunedSameFeature {
					t.Errorf("minsup=%g kc=%v workers=%d: prunes %d/%d vs %d/%d",
						minsup, kc, workers, par.PrunedDeps, par.PrunedSameFeature,
						seq.PrunedDeps, seq.PrunedSameFeature)
				}
			}
		}
	}
}

// TestEclatParallelWorkerCounters asserts the parallel walk reports its
// fan-out balance through the obs layer: a workers counter plus
// per-worker subtree and itemset tallies that add up to the whole walk.
func TestEclatParallelWorkerCounters(t *testing.T) {
	db := parallelTestDB(t)
	const workers = 4
	tr := obs.New(nil)
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := EclatContext(ctx, db, Config{MinSupport: 0.05, Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Counter("eclat.workers"); got != workers {
		t.Fatalf("eclat.workers = %d, want %d", got, workers)
	}
	size1 := res.CountBySize()[1]
	var roots, itemsets int64
	for w := 0; w < workers; w++ {
		roots += tr.Counter(obs.WorkerCounter("eclat", w, "roots"))
		itemsets += tr.Counter(obs.WorkerCounter("eclat", w, "itemsets"))
	}
	if roots != int64(size1) {
		t.Errorf("worker roots sum to %d, want %d (one per frequent item)", roots, size1)
	}
	if want := int64(len(res.Frequent) - size1); itemsets != want {
		t.Errorf("worker itemsets sum to %d, want %d", itemsets, want)
	}
}

// cancelAfterCtx is a context whose Err flips to context.Canceled after
// a fixed number of polls — a deterministic mid-DFS cancellation without
// timing races. Value/Deadline/Done delegate to the embedded context.
type cancelAfterCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	fired bool
}

func (c *cancelAfterCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return context.Canceled
	}
	c.left--
	if c.left <= 0 {
		c.fired = true
		return context.Canceled
	}
	return nil
}

// TestEclatParallelCancellation cancels the context mid-DFS and asserts
// every worker stops promptly with ctx.Err() and none is leaked.
func TestEclatParallelCancellation(t *testing.T) {
	db := parallelTestDB(t)
	db.BuildTidsets() // keep the baseline goroutine count stable
	before := runtime.NumGoroutine()
	for _, pollsBeforeCancel := range []int{5, 40, 200} {
		ctx := &cancelAfterCtx{Context: context.Background(), left: pollsBeforeCancel}
		res, err := EclatContext(ctx, db, Config{MinSupport: 0.03, Parallelism: 8})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: err = %v, want context.Canceled", pollsBeforeCancel, err)
		}
		if res != nil {
			t.Fatalf("polls=%d: cancelled walk must not return a partial result", pollsBeforeCancel)
		}
	}
	// EclatContext only returns after wg.Wait, so no worker may outlive
	// it; poll briefly to let exiting goroutines be reaped.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEclatRejectsHorizontalCounting pins the config error: the eclat
// engine cannot honour an explicitly requested horizontal strategy and
// must say so instead of silently dropping it.
func TestEclatRejectsHorizontalCounting(t *testing.T) {
	db := parallelTestDB(t)
	_, err := Eclat(db, Config{MinSupport: 0.1, Counting: HorizontalCounting})
	if err == nil {
		t.Fatal("horizontal counting on eclat must be a config error")
	}
	if !strings.Contains(err.Error(), "horizontal") {
		t.Errorf("error %q does not name the strategy", err)
	}
	// The default (vertical) stays accepted.
	if _, err := Eclat(db, Config{MinSupport: 0.1, Counting: VerticalCounting}); err != nil {
		t.Errorf("vertical counting rejected: %v", err)
	}
}
