package mining

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/itemset"
)

func TestMineTopKBasic(t *testing.T) {
	db := table2DB()
	res, err := MineTopK(db, Config{}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) < 5 {
		t.Fatalf("top-5 returned %d itemsets", len(res.Frequent))
	}
	// Descending support, all of size >= 2.
	for i, f := range res.Frequent {
		if len(f.Items) < 2 {
			t.Errorf("itemset %d below minSize", i)
		}
		if i > 0 && f.Support > res.Frequent[i-1].Support {
			t.Error("not ordered by support")
		}
	}
	// Ties with the k-th support are all included: no itemset outside
	// the result may beat the last included support.
	full, _ := Apriori(db, Config{MinSupportCount: 1})
	last := res.Frequent[len(res.Frequent)-1].Support
	included := map[string]bool{}
	for _, f := range res.Frequent {
		included[f.Items.Key()] = true
	}
	for _, f := range full.Frequent {
		if len(f.Items) >= 2 && f.Support > last && !included[f.Items.Key()] {
			t.Errorf("itemset %s (support %d) beats included support %d but is missing",
				f.Items.Format(db.Dict), f.Support, last)
		}
	}
}

func TestMineTopKWithKCPlusFilter(t *testing.T) {
	db := table2DB()
	cfg := Config{FilterSameFeature: true}
	res, err := MineTopK(db, cfg, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Frequent {
		if f.Items.HasSameFeaturePair(db.Dict) {
			t.Errorf("same-feature itemset in top-k: %s", f.Items.Format(db.Dict))
		}
	}
}

func TestMineTopKMoreThanExists(t *testing.T) {
	db := paperDB()
	res, err := MineTopK(db, Config{}, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Must terminate at threshold 1 and return everything.
	full, _ := Apriori(db, Config{MinSupportCount: 1})
	if len(res.Frequent) != full.NumFrequent(2) {
		t.Errorf("exhaustive top-k = %d, want %d", len(res.Frequent), full.NumFrequent(2))
	}
}

func TestMineTopKErrors(t *testing.T) {
	db := paperDB()
	if _, err := MineTopK(db, Config{}, 0, 2); err == nil {
		t.Error("k=0 should fail")
	}
	empty := itemset.NewDB(dataset.NewTable(nil))
	if _, err := MineTopK(empty, Config{}, 5, 2); err == nil {
		t.Error("empty db should fail")
	}
}

func TestMineTopKOnGeneratedData(t *testing.T) {
	table, err := datagen.PaperDataset2(datagen.DefaultSeed, 500)
	if err != nil {
		t.Fatal(err)
	}
	db := itemset.NewDB(table)
	res, err := MineTopK(db, Config{FilterSameFeature: true}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) < 20 {
		t.Errorf("top-20 on 500 rows returned %d", len(res.Frequent))
	}
}
