package mining

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/transact"
)

// TestEnginesEquivalentOnGeneratedScenes is the cross-engine property
// test: on seeded datagen workloads of several sizes and minimum
// supports, Apriori, Apriori-KC+, FP-growth, and Eclat produce identical
// frequent-itemset sets and supports, at sequential, GOMAXPROCS, and
// forced-multi-worker parallelism alike (Parallelism drives both the
// Apriori counting pool and the sharded Eclat walk). Run under -race in
// CI at GOMAXPROCS 1, 2, and 8, this also proves the workers share the
// DB's read-only bitmaps safely.
func TestEnginesEquivalentOnGeneratedScenes(t *testing.T) {
	deps := make([]Pair, 0, len(datagen.Dataset1Dependencies))
	for _, d := range datagen.Dataset1Dependencies {
		deps = append(deps, Pair{A: d.A, B: d.B})
	}
	tables := map[string]*dataset.Table{}
	for _, rows := range []int{120, 600} {
		t1, err := datagen.PaperDataset1(datagen.DefaultSeed, rows)
		if err != nil {
			t.Fatal(err)
		}
		tables[fmt.Sprintf("dataset1/rows=%d", rows)] = t1
		t2, err := datagen.PaperDataset2(datagen.DefaultSeed, rows)
		if err != nil {
			t.Fatal(err)
		}
		tables[fmt.Sprintf("dataset2/rows=%d", rows)] = t2
	}
	// One geometric scene end to end: generated scene -> DE-9IM
	// extraction -> transactions.
	scene, err := datagen.GenerateScene(datagen.DefaultScene(8, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	extracted, err := transact.Extract(scene, transact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tables["scene8x8"] = extracted

	for name, table := range tables {
		for _, minsup := range []float64{0.05, 0.12, 0.3} {
			for _, par := range []int{1, 0, 4} {
				t.Run(fmt.Sprintf("%s/minsup=%g/par=%d", name, minsup, par), func(t *testing.T) {
					db := itemset.NewDB(table)
					plain := Config{MinSupport: minsup, Parallelism: par}
					kcplus := Config{MinSupport: minsup, Parallelism: par,
						FilterSameFeature: true, Dependencies: deps}

					apriori, err := Apriori(db, plain)
					if err != nil {
						t.Fatal(err)
					}
					eclat, err := Eclat(db, plain)
					if err != nil {
						t.Fatal(err)
					}
					resultsEqual(t, "apriori-vs-eclat", apriori, eclat, db.Dict)
					resultsEqual(t, "eclat-vs-apriori", eclat, apriori, db.Dict)

					horizontal := plain
					horizontal.Counting = HorizontalCounting
					hres, err := Apriori(db, horizontal)
					if err != nil {
						t.Fatal(err)
					}
					resultsEqual(t, "vertical-vs-horizontal", apriori, hres, db.Dict)
					resultsEqual(t, "horizontal-vs-vertical", hres, apriori, db.Dict)

					kc, err := Mine(db, kcplus)
					if err != nil {
						t.Fatal(err)
					}
					fp, err := FPGrowth(db, kcplus)
					if err != nil {
						t.Fatal(err)
					}
					ec, err := Eclat(db, kcplus)
					if err != nil {
						t.Fatal(err)
					}
					resultsEqual(t, "kc+-vs-fpgrowth", kc, fp, db.Dict)
					resultsEqual(t, "fpgrowth-vs-kc+", fp, kc, db.Dict)
					resultsEqual(t, "kc+-vs-eclat", kc, ec, db.Dict)
					resultsEqual(t, "eclat-vs-kc+", ec, kc, db.Dict)
				})
			}
		}
	}
}
