package index

import (
	"testing"

	"repro/internal/geom"
)

func TestNearestAgainstLinearReference(t *testing.T) {
	items := makeItems(400, 100, 8)
	ref := NewLinear(items)
	rt := NewRTreeBulk(items)
	gr := NewGridBulk(items)
	queries := []geom.Envelope{
		{MinX: 50, MinY: 50, MaxX: 50, MaxY: 50},
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 150, MinY: 150, MaxX: 151, MaxY: 151}, // outside the data
	}
	for _, q := range queries {
		for _, k := range []int{1, 5, 17, 400, 1000} {
			want := ref.Nearest(q, k)
			gotRT := rt.Nearest(q, k)
			if !equalIDs(gotRT, want) {
				// Equal-distance ties can legitimately reorder; compare
				// by distance sequence instead.
				if !sameDistances(items, q, gotRT, want) {
					t.Errorf("rtree Nearest(k=%d) = %v, want %v", k, gotRT, want)
				}
			}
			gotGrid := gr.Nearest(q, k)
			if !equalIDs(gotGrid, want) && !sameDistances(items, q, gotGrid, want) {
				t.Errorf("grid Nearest(k=%d) = %v, want %v", k, gotGrid, want)
			}
		}
	}
}

// sameDistances accepts permutations among equal-distance ties.
func sameDistances(items []Item, q geom.Envelope, got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		dg := items[got[i]].Env.Distance(q)
		dw := items[want[i]].Env.Distance(q)
		if dg != dw {
			return false
		}
	}
	return true
}

func TestNearestOrdering(t *testing.T) {
	items := []Item{
		{Env: geom.Envelope{MinX: 10, MinY: 0, MaxX: 11, MaxY: 1}, ID: 0}, // dist 9 from origin-ish
		{Env: geom.Envelope{MinX: 1, MinY: 0, MaxX: 2, MaxY: 1}, ID: 1},   // dist 0 (touches query)
		{Env: geom.Envelope{MinX: 5, MinY: 0, MaxX: 6, MaxY: 1}, ID: 2},   // dist 4
	}
	rt := NewRTreeBulk(items)
	q := geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	got := rt.Nearest(q, 3)
	want := []int{1, 2, 0}
	if !equalIDs(got, want) {
		t.Errorf("Nearest order = %v, want %v", got, want)
	}
	if got := rt.Nearest(q, 1); !equalIDs(got, []int{1}) {
		t.Errorf("Nearest(1) = %v", got)
	}
}

func TestNearestEdgeCases(t *testing.T) {
	empty := &RTree{}
	if got := empty.Nearest(geom.Envelope{}, 3); got != nil {
		t.Error("empty tree should return nil")
	}
	items := makeItems(10, 50, 4)
	rt := NewRTreeBulk(items)
	if got := rt.Nearest(geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := rt.Nearest(geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100); len(got) != 10 {
		t.Errorf("k beyond size returned %d items", len(got))
	}
	gr := NewGridBulk(items)
	if got := gr.Nearest(geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0); got != nil {
		t.Error("grid k=0 should return nil")
	}
	emptyGrid := NewGrid(1)
	if got := emptyGrid.Nearest(geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 2); got != nil {
		t.Error("empty grid should return nil")
	}
	lin := NewLinear(nil)
	if got := lin.Nearest(geom.Envelope{}, 2); len(got) != 0 {
		t.Error("empty linear should return nothing")
	}
}
