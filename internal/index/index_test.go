package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// makeItems generates n random small rectangles in a world of the given
// extent, deterministic per seed.
func makeItems(n int, extent float64, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * extent
		y := rng.Float64() * extent
		w := rng.Float64()*4 + 0.1
		h := rng.Float64()*4 + 0.1
		items[i] = Item{Env: geom.Envelope{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: i}
	}
	return items
}

// sortedIDs is a helper for order-insensitive comparison.
func sortedIDs(ids []int) []int {
	out := append([]int{}, ids...)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// indexBuilders enumerates every index implementation under test, each
// built from the same item set.
func indexBuilders() map[string]func([]Item) SpatialIndex {
	return map[string]func([]Item) SpatialIndex{
		"rtree-bulk": func(items []Item) SpatialIndex { return NewRTreeBulk(items) },
		"rtree-insert": func(items []Item) SpatialIndex {
			t := &RTree{}
			for _, it := range items {
				t.Insert(it)
			}
			return t
		},
		"grid": func(items []Item) SpatialIndex { return NewGridBulk(items) },
		"grid-fixed": func(items []Item) SpatialIndex {
			g := NewGrid(5)
			for _, it := range items {
				g.Insert(it)
			}
			return g
		},
		"linear": func(items []Item) SpatialIndex { return NewLinear(items) },
	}
}

func TestIndexesAgreeWithLinearScan(t *testing.T) {
	items := makeItems(500, 100, 1)
	reference := NewLinear(items)
	queries := []geom.Envelope{
		{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},     // everything
		{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20},     // window
		{MinX: 50, MinY: 50, MaxX: 50, MaxY: 50},     // point query
		{MinX: 200, MinY: 200, MaxX: 210, MaxY: 210}, // outside
	}
	for name, build := range indexBuilders() {
		idx := build(items)
		if idx.Len() != len(items) {
			t.Errorf("%s: Len = %d, want %d", name, idx.Len(), len(items))
		}
		for _, q := range queries {
			want := sortedIDs(reference.Search(q, nil))
			got := sortedIDs(idx.Search(q, nil))
			if !equalIDs(got, want) {
				t.Errorf("%s: Search(%+v) returned %d items, want %d", name, q, len(got), len(want))
			}
		}
	}
}

func TestIndexesAgreeOnDistanceSearch(t *testing.T) {
	items := makeItems(300, 100, 2)
	reference := NewLinear(items)
	q := geom.Envelope{MinX: 40, MinY: 40, MaxX: 45, MaxY: 45}
	for _, d := range []float64{0, 1, 5, 25, 1000} {
		want := sortedIDs(reference.SearchDistance(q, d, nil))
		for name, build := range indexBuilders() {
			got := sortedIDs(build(items).SearchDistance(q, d, nil))
			if !equalIDs(got, want) {
				t.Errorf("%s: SearchDistance(d=%v) = %d items, want %d", name, d, len(got), len(want))
			}
		}
	}
}

func TestRTreeEmpty(t *testing.T) {
	tr := &RTree{}
	if got := tr.Search(geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, nil); len(got) != 0 {
		t.Error("empty tree search should return nothing")
	}
	if got := tr.SearchDistance(geom.Envelope{}, 1, nil); len(got) != 0 {
		t.Error("empty tree distance search should return nothing")
	}
	if tr.Height() != 0 {
		t.Error("empty tree height should be 0")
	}
	bulk := NewRTreeBulk(nil)
	if bulk.Len() != 0 {
		t.Error("bulk empty tree Len != 0")
	}
}

func TestRTreeBulkBalance(t *testing.T) {
	items := makeItems(1000, 200, 3)
	tr := NewRTreeBulk(items)
	// STR over 1000 items with fanout 9: ceil(log9(1000/9)) + 1 levels.
	if h := tr.Height(); h < 2 || h > 4 {
		t.Errorf("bulk tree height = %d, want a balanced 2-4", h)
	}
	assertInvariants(t, tr.root, tr.Height())
}

func TestRTreeInsertInvariants(t *testing.T) {
	tr := &RTree{}
	items := makeItems(600, 100, 4)
	for _, it := range items {
		tr.Insert(it)
	}
	assertInvariants(t, tr.root, tr.Height())
	if tr.Len() != 600 {
		t.Errorf("Len = %d", tr.Len())
	}
}

// assertInvariants checks that every node's envelope covers its payload and
// that all leaves are at the same depth.
func assertInvariants(t *testing.T, n *rtreeNode, wantLeafDepth int) {
	t.Helper()
	var walk func(n *rtreeNode, depth int)
	walk = func(n *rtreeNode, depth int) {
		if n.leaf {
			if depth != wantLeafDepth {
				t.Errorf("leaf at depth %d, want %d", depth, wantLeafDepth)
			}
			for _, it := range n.items {
				if !n.env.Contains(it.Env) {
					t.Errorf("leaf envelope does not cover item %d", it.ID)
				}
			}
			return
		}
		if len(n.children) == 0 {
			t.Error("internal node with no children")
			return
		}
		for _, c := range n.children {
			if !n.env.Contains(c.env) {
				t.Error("node envelope does not cover child")
			}
			walk(c, depth+1)
		}
	}
	walk(n, 1)
}

func TestGridPanicsOnBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0) should panic")
		}
	}()
	NewGrid(0)
}

func TestGridBulkDegenerate(t *testing.T) {
	// All-point items give zero average extent; the constructor must
	// still produce a usable cell size.
	items := []Item{
		{Env: geom.Envelope{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, ID: 0},
		{Env: geom.Envelope{MinX: 2, MinY: 2, MaxX: 2, MaxY: 2}, ID: 1},
	}
	g := NewGridBulk(items)
	got := g.Search(geom.Envelope{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, nil)
	if len(got) != 2 {
		t.Errorf("degenerate grid search = %v", got)
	}
	empty := NewGridBulk(nil)
	if empty.Len() != 0 {
		t.Error("empty bulk grid Len != 0")
	}
}

func TestGridEmptyEnvelopeInsert(t *testing.T) {
	g := NewGrid(1)
	g.Insert(Item{Env: geom.EmptyEnvelope(), ID: 7})
	// The empty envelope is stored nowhere and never matches.
	if got := g.Search(geom.Envelope{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, nil); len(got) != 0 {
		t.Errorf("empty-envelope item matched: %v", got)
	}
}

func TestQuickIndexEquivalence(t *testing.T) {
	// Property: for random item sets and random query windows, R-tree and
	// grid return exactly the linear-scan result.
	f := func(seed int64, qx, qy, qw, qh uint8) bool {
		items := makeItems(80, 50, seed)
		q := geom.Envelope{
			MinX: float64(qx % 50), MinY: float64(qy % 50),
			MaxX: float64(qx%50) + float64(qw%20), MaxY: float64(qy%50) + float64(qh%20),
		}
		want := sortedIDs(NewLinear(items).Search(q, nil))
		rt := sortedIDs(NewRTreeBulk(items).Search(q, nil))
		gr := sortedIDs(NewGridBulk(items).Search(q, nil))
		return equalIDs(rt, want) && equalIDs(gr, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
