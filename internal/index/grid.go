package index

import (
	"math"

	"repro/internal/geom"
)

// Grid is a uniform grid index: each cell keeps the items whose envelopes
// intersect it. It serves as the simple baseline against the R-tree in the
// spatial-join ablation benchmarks.
type Grid struct {
	cellSize float64
	cells    map[cellKey][]Item
	size     int
	dataEnv  geom.Envelope // union of all inserted envelopes
}

type cellKey struct{ X, Y int }

var _ SpatialIndex = (*Grid)(nil)

// NewGrid creates a grid index with the given cell size. Cell size should
// approximate the median feature extent; too small wastes memory on
// duplicated entries, too large degenerates to a scan.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("index: grid cell size must be positive")
	}
	return &Grid{cellSize: cellSize, cells: make(map[cellKey][]Item), dataEnv: geom.EmptyEnvelope()}
}

// NewGridBulk creates a grid sized from the data (average envelope extent,
// clamped to a sane minimum) and inserts all items.
func NewGridBulk(items []Item) *Grid {
	var sum float64
	for _, it := range items {
		sum += math.Max(it.Env.Width(), it.Env.Height())
	}
	cell := 1.0
	if len(items) > 0 {
		cell = sum / float64(len(items))
		if cell <= 0 {
			cell = 1
		}
	}
	g := NewGrid(cell)
	for _, it := range items {
		g.Insert(it)
	}
	return g
}

// Len implements SpatialIndex.
func (g *Grid) Len() int { return g.size }

// Insert implements SpatialIndex.
func (g *Grid) Insert(item Item) {
	g.size++
	if item.Env.IsEmpty() {
		return
	}
	g.dataEnv = g.dataEnv.Union(item.Env)
	x0, x1, y0, y1 := g.cellRange(item.Env)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			k := cellKey{x, y}
			g.cells[k] = append(g.cells[k], item)
		}
	}
}

// cellRange returns the inclusive cell-coordinate range of an envelope.
func (g *Grid) cellRange(e geom.Envelope) (x0, x1, y0, y1 int) {
	x0 = int(math.Floor(e.MinX / g.cellSize))
	x1 = int(math.Floor(e.MaxX / g.cellSize))
	y0 = int(math.Floor(e.MinY / g.cellSize))
	y1 = int(math.Floor(e.MaxY / g.cellSize))
	return
}

// eachCell invokes fn for every occupied cell the query envelope touches.
// The query is clamped to the data extent first, and when it still covers
// more cells than are occupied the occupied-cell map is walked instead, so
// that unbounded queries (e.g. "everything within 1e18") stay linear in
// the data rather than in the query area.
func (g *Grid) eachCell(e geom.Envelope, fn func(cellKey)) {
	if e.IsEmpty() || g.dataEnv.IsEmpty() {
		return
	}
	// Clamp to the data extent: cells outside it are empty by definition.
	clamped := geom.Envelope{
		MinX: math.Max(e.MinX, g.dataEnv.MinX), MinY: math.Max(e.MinY, g.dataEnv.MinY),
		MaxX: math.Min(e.MaxX, g.dataEnv.MaxX), MaxY: math.Min(e.MaxY, g.dataEnv.MaxY),
	}
	if clamped.IsEmpty() {
		return
	}
	x0, x1, y0, y1 := g.cellRange(clamped)
	span := (float64(x1-x0) + 1) * (float64(y1-y0) + 1)
	if span > float64(len(g.cells)) {
		for k := range g.cells {
			if k.X >= x0 && k.X <= x1 && k.Y >= y0 && k.Y <= y1 {
				fn(k)
			}
		}
		return
	}
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			fn(cellKey{x, y})
		}
	}
}

// Search implements SpatialIndex. Results are deduplicated (an envelope
// spanning several cells is stored once per cell).
func (g *Grid) Search(query geom.Envelope, dst []int) []int {
	seen := make(map[int]struct{})
	g.eachCell(query, func(k cellKey) {
		for _, it := range g.cells[k] {
			if _, dup := seen[it.ID]; dup {
				continue
			}
			if it.Env.Intersects(query) {
				seen[it.ID] = struct{}{}
				dst = append(dst, it.ID)
			}
		}
	})
	return dst
}

// SearchDistance implements SpatialIndex.
func (g *Grid) SearchDistance(query geom.Envelope, d float64, dst []int) []int {
	seen := make(map[int]struct{})
	g.eachCell(query.Buffer(d), func(k cellKey) {
		for _, it := range g.cells[k] {
			if _, dup := seen[it.ID]; dup {
				continue
			}
			if it.Env.Distance(query) <= d {
				seen[it.ID] = struct{}{}
				dst = append(dst, it.ID)
			}
		}
	})
	return dst
}

// Linear is the degenerate no-index baseline: a flat list scanned on every
// query. It exists to quantify what the real indexes buy in the join
// benchmarks.
type Linear struct {
	items []Item
}

var _ SpatialIndex = (*Linear)(nil)

// NewLinear creates a Linear scan index over the items.
func NewLinear(items []Item) *Linear {
	return &Linear{items: append([]Item{}, items...)}
}

// Len implements SpatialIndex.
func (l *Linear) Len() int { return len(l.items) }

// Insert implements SpatialIndex.
func (l *Linear) Insert(item Item) { l.items = append(l.items, item) }

// Search implements SpatialIndex.
func (l *Linear) Search(query geom.Envelope, dst []int) []int {
	for _, it := range l.items {
		if it.Env.Intersects(query) {
			dst = append(dst, it.ID)
		}
	}
	return dst
}

// SearchDistance implements SpatialIndex.
func (l *Linear) SearchDistance(query geom.Envelope, d float64, dst []int) []int {
	for _, it := range l.items {
		if it.Env.Distance(query) <= d {
			dst = append(dst, it.ID)
		}
	}
	return dst
}
