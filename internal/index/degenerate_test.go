package index

import (
	"testing"

	"repro/internal/geom"
)

// The co-location neighborhood materialization leans on SearchDistance
// and kNN edges harder than extraction does: zero-distance thresholds
// (only coincident instances are neighbors), piles of exactly
// coincident points, and empty layers. These tests pin those edges on
// every index implementation.

func pointItems(coords ...float64) []Item {
	var items []Item
	for i := 0; i+1 < len(coords); i += 2 {
		items = append(items, Item{Env: geom.Pt(coords[i], coords[i+1]).Envelope(), ID: i / 2})
	}
	return items
}

func degenerateBuilders() map[string]func([]Item) SpatialIndex {
	return map[string]func([]Item) SpatialIndex{
		"rtree-bulk": func(items []Item) SpatialIndex { return NewRTreeBulk(items) },
		"rtree-insert": func(items []Item) SpatialIndex {
			tr := &RTree{}
			for _, it := range items {
				tr.Insert(it)
			}
			return tr
		},
		"grid-bulk": func(items []Item) SpatialIndex { return NewGridBulk(items) },
		"linear":    func(items []Item) SpatialIndex { return NewLinear(items) },
	}
}

// TestSearchDistanceZeroThreshold: with d=0 only items whose envelope
// touches the query are neighbors — exactly coincident points qualify,
// anything strictly apart does not.
func TestSearchDistanceZeroThreshold(t *testing.T) {
	items := pointItems(
		5, 5, // 0: coincident with the query point
		5, 5, // 1: duplicate of it
		5, 5.000001, // 2: strictly apart
		9, 9, // 3: far
	)
	q := geom.Pt(5, 5).Envelope()
	for name, build := range degenerateBuilders() {
		got := sortedIDs(build(items).SearchDistance(q, 0, nil))
		if !equalIDs(got, []int{0, 1}) {
			t.Errorf("%s: SearchDistance(d=0) = %v, want [0 1]", name, got)
		}
	}
}

// TestSearchDistanceExactBoundary: an item at exactly distance d is
// included (the predicate is <=, matching the engine's refinement).
func TestSearchDistanceExactBoundary(t *testing.T) {
	items := pointItems(
		0, 0, // 0: at distance 3 from (3,0)... query is (0,0); item 1 at 3.
	)
	items = append(items, Item{Env: geom.Pt(3, 0).Envelope(), ID: 1})
	items = append(items, Item{Env: geom.Pt(3.0000001, 0).Envelope(), ID: 2})
	q := geom.Pt(0, 0).Envelope()
	for name, build := range degenerateBuilders() {
		got := sortedIDs(build(items).SearchDistance(q, 3, nil))
		if !equalIDs(got, []int{0, 1}) {
			t.Errorf("%s: SearchDistance(d=3) = %v, want [0 1]", name, got)
		}
	}
}

// TestCoincidentPointPile: hundreds of items at one location must all
// come back from both distance search and kNN, at any k.
func TestCoincidentPointPile(t *testing.T) {
	const n = 300
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Env: geom.Pt(7, 7).Envelope(), ID: i}
	}
	q := geom.Pt(7, 7).Envelope()
	for name, build := range degenerateBuilders() {
		idx := build(items)
		if got := idx.SearchDistance(q, 0, nil); len(got) != n {
			t.Errorf("%s: SearchDistance over pile returned %d, want %d", name, len(got), n)
		}
		nn, ok := idx.(NearestNeighborer)
		if !ok {
			continue
		}
		for _, k := range []int{1, n / 2, n, n + 50} {
			want := k
			if want > n {
				want = n
			}
			if got := nn.Nearest(q, k); len(got) != want {
				t.Errorf("%s: Nearest(k=%d) over pile returned %d, want %d", name, k, len(got), want)
			}
		}
	}
}

// TestSearchDistanceEmptyIndex: an empty layer's index answers every
// distance query with nothing, at any threshold.
func TestSearchDistanceEmptyIndex(t *testing.T) {
	q := geom.Pt(1, 2).Envelope()
	for name, build := range degenerateBuilders() {
		idx := build(nil)
		for _, d := range []float64{0, 1, 1e9} {
			if got := idx.SearchDistance(q, d, nil); len(got) != 0 {
				t.Errorf("%s: empty index SearchDistance(d=%v) = %v", name, d, got)
			}
		}
	}
}

// TestNearestOnCoincidentTies: kNN over exact ties is complete (every
// returned item really is at distance zero) even when k splits the tie.
func TestNearestOnCoincidentTies(t *testing.T) {
	items := append(pointItems(4, 4, 4, 4, 4, 4), Item{Env: geom.Pt(50, 50).Envelope(), ID: 9})
	rt := NewRTreeBulk(items)
	got := rt.Nearest(geom.Pt(4, 4).Envelope(), 3)
	if len(got) != 3 {
		t.Fatalf("Nearest(3) = %v", got)
	}
	for _, id := range got {
		if id == 9 {
			t.Fatalf("Nearest(3) returned the far item over a zero-distance tie: %v", got)
		}
	}
}
